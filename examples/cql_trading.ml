(* Market surveillance written in the query language, end to end:
   parse + typecheck + compile examples/queries/trading.rql, run it on
   synthetic trades, profile it into a cost model, and place it
   resiliently.

   Run with: dune exec examples/cql_trading.exe *)

let query_path = "examples/queries/trading.rql"

let () =
  let compiled =
    match Cql.Frontend.compile_file ~path:query_path with
    | Ok c -> c
    | Error e ->
      Format.eprintf "%s: %s@." query_path (Cql.Frontend.error_to_string e);
      exit 1
  in
  print_string (Cql.Frontend.describe compiled);

  (* Synthetic trade tape: bursty arrivals so spikes actually occur. *)
  let rng = Random.State.make [| 99 |] in
  let trace =
    Workload.Trace.scale 120.
      (Workload.Trace.normalize
         (Workload.Bmodel.trace ~rng ~bias:0.72 ~levels:6 ~mean_rate:1. ~dt:1.))
  in
  let tape = Spe.Datagen.trades ~rng ~trace () in
  Format.printf "@.tape: %d trades over %.0f s@." (List.length tape)
    (Workload.Trace.duration trace);

  let profile = Spe.Profiler.profile compiled.Cql.Compile.network ~inputs:[| tape |] in
  let run = profile.Spe.Profiler.run in
  Format.printf "alerts: %d@." (List.length run.Spe.Executor.outputs);
  List.iteri
    (fun i (_, alert) ->
      if i < 3 then Format.printf "  %a@." Spe.Tuple.pp alert)
    run.Spe.Executor.outputs;

  (* Resilient placement of the compiled query on three nodes, gated
     by static analysis of the profiled load model. *)
  let caps = Rod.Problem.homogeneous_caps ~n:3 ~cap:1. in
  Analysis.Plan_check.assert_ok ~what:"trading plan"
    (Analysis.Plan_check.check_graph profile.Spe.Profiler.graph ~caps);
  let problem = Rod.Problem.of_graph profile.Spe.Profiler.graph ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  Format.printf "@.%a@." Rod.Plan.pp plan;
  let est = Rod.Plan.volume_qmc ~samples:8192 plan in
  Format.printf "feasible-set ratio vs ideal: %.3f@." est.Feasible.Volume.ratio
