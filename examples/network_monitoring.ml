(* Network traffic monitoring — the aggregation-heavy workload of §7.1.

   Four monitored links feed per-link parse/aggregate/threshold
   pipelines plus a global alert union.  Each link's rate follows a
   different self-similar trace (PKT/TCP/HTTP-style plus a flash
   crowd).  We place the graph with ROD and with LLF balanced at the
   observed mean rates, then replay the traces in the simulator and
   compare latency and overload behaviour.

   Run with: dune exec examples/network_monitoring.exe *)

module Vec = Linalg.Vec
module Trace = Workload.Trace

let () =
  let n_links = 4 and n_nodes = 3 in
  let graph = Query.Builder.traffic_monitoring ~n_links in
  let caps = Rod.Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  (* Static analysis first: a malformed or statically-infeasible model
     should fail here, not after minutes of simulation. *)
  Analysis.Plan_check.assert_ok ~what:"monitoring plan"
    (Analysis.Plan_check.check_graph graph ~caps);
  let problem = Rod.Problem.of_graph graph ~caps in
  Format.printf "monitoring %d links: %d operators over %d nodes@." n_links
    (Query.Graph.n_ops graph) n_nodes;

  (* Per-link traces, scaled so the mean total demand is ~55%% of the
     cluster and bursts push individual links well past their share. *)
  let rng = Random.State.make [| 2006 |] in
  let l = Rod.Problem.total_coefficients problem in
  let c_total = Rod.Problem.total_capacity problem in
  let base_rate k = 0.55 *. c_total /. (float_of_int n_links *. l.(k)) in
  let traces =
    Array.init n_links (fun k ->
        let shape =
          match k with
          | 0 -> Workload.Traces.synthesize ~levels:7 ~rng Workload.Traces.Pkt
          | 1 -> Workload.Traces.synthesize ~levels:7 ~rng Workload.Traces.Tcp
          | 2 -> Workload.Traces.synthesize ~levels:7 ~rng Workload.Traces.Http
          | _ ->
            Trace.normalize
              (Workload.Generators.flash_crowd ~rng ~n:128 ~dt:1. ~base_rate:1.
                 ~spike_prob:0.03 ~spike_factor:6. ~decay:0.7)
        in
        Trace.scale (base_rate k) shape)
  in
  Array.iteri
    (fun k trace -> Format.printf "  link %d: %a@." k Trace.pp_summary trace)
    traces;

  (* Two placements: resilient vs balanced-at-the-mean. *)
  let mean_rates = Vec.init n_links (fun k -> Trace.mean_rate traces.(k)) in
  let plans =
    [
      ("ROD", Rod.Rod_algorithm.place problem);
      ("LLF @ mean rates", Baselines.llf ~rates:mean_rates problem);
    ]
  in
  List.iter
    (fun (label, assignment) ->
      let ratio =
        (Rod.Plan.volume_qmc ~samples:8192 (Rod.Plan.make problem assignment))
          .Feasible.Volume.ratio
      in
      let metrics =
        Dsim.Probe.simulate_traces
          ~config:{ Dsim.Engine.default_config with warmup = 2. }
          ~rng:(Random.State.make [| 7 |])
          ~graph ~assignment ~caps ~traces ()
      in
      Format.printf
        "@.%s:@.  feasible-set ratio %.3f@.  max utilization %.1f%%  mean \
         latency %.1f ms  p95 %.1f ms  backlog %d@."
        label ratio
        (100. *. Dsim.Sim_metrics.max_utilization metrics)
        (1e3 *. Dsim.Sim_metrics.mean_latency metrics)
        (1e3 *. Dsim.Sim_metrics.p95_latency metrics)
        metrics.Dsim.Sim_metrics.backlog)
    plans
