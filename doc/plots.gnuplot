# Plot the paper's headline figures from the benchmark CSVs.
#
#   mkdir -p /tmp/rodcsv
#   dune exec bench/main.exe -- --csv /tmp/rodcsv
#   gnuplot -e "csvdir='/tmp/rodcsv'" doc/plots.gnuplot
#
# Produces fig14.svg, fig15.svg, fig9.svg next to the CSVs.

if (!exists("csvdir")) csvdir = "/tmp/rodcsv"
set datafile separator ","
set terminal svg size 720,480 font "Helvetica,13"
set key outside right top
set grid

# --- Figure 14(a): feasible-set ratio vs number of operators ---
set output csvdir."/fig14.svg"
set title "Resiliency vs number of operators (d=5, n=10)"
set xlabel "operators"
set ylabel "feasible-set size / ideal"
set yrange [0:1]
f14 = csvdir."/fig14-resiliency-vs-number-of-operators_1.csv"
plot f14 using 1:2 with linespoints lw 2 title "ROD", \
     f14 using 1:3 with linespoints lw 2 title "Correlation", \
     f14 using 1:4 with linespoints lw 2 title "LLF", \
     f14 using 1:5 with linespoints lw 2 title "Random", \
     f14 using 1:6 with linespoints lw 2 title "Connected"

# --- Figure 15: ratio to ROD vs number of inputs ---
set output csvdir."/fig15.svg"
set title "Relative performance vs number of input streams (n=10)"
set xlabel "input streams"
set ylabel "feasible-set size / ROD's"
set yrange [0:1.2]
f15 = csvdir."/fig15-resiliency-vs-number-of-input-streams_1.csv"
plot f15 using 1:2 with linespoints lw 2 title "Correlation", \
     f15 using 1:3 with linespoints lw 2 title "LLF", \
     f15 using 1:4 with linespoints lw 2 title "Random", \
     f15 using 1:5 with linespoints lw 2 title "Connected"

# --- Figure 9: plane distance vs feasible size (binned envelope) ---
set output csvdir."/fig9.svg"
set title "Feasible-set ratio vs normalized plane distance r/r*"
set xlabel "r/r* bin"
set ylabel "feasible-set size / ideal"
set yrange [0:*]
set style data linespoints
f9 = csvdir."/fig9-plane-distance-vs-feasible-size_1.csv"
plot f9 using 0:3:xtic(1) lw 2 title "min", \
     f9 using 0:4 lw 2 title "mean", \
     f9 using 0:5 lw 2 title "max"
