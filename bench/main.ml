(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (see DESIGN.md's experiment index): one Registry entry per artifact,
   printed as plain-text tables.

   Part 2 runs Bechamel micro-benchmarks of the placement algorithms and
   the supporting machinery, one Test.make per measured operation.  The
   results are printed as a table and also written to BENCH_rod.json
   (name -> ns/run, r^2) so the perf trajectory across PRs is diffable.

   Flags: --quick (smaller sweeps), --only <id> (a single experiment;
   with --micro-only, a substring filter on micro benchmark names),
   --list (show experiment ids), --no-micro / --micro-only,
   --json <path> (micro results destination, default BENCH_rod.json). *)

module Problem = Rod.Problem
module Plan = Rod.Plan

let has_flag flag = Array.exists (fun a -> a = flag) Sys.argv

let flag_value flag =
  let result = ref None in
  Array.iteri
    (fun i a ->
      if a = flag && i + 1 < Array.length Sys.argv then
        result := Some Sys.argv.(i + 1))
    Sys.argv;
  !result

(* --- part 1: paper artifacts --- *)

let run_experiments ~quick ~only fmt =
  let selected =
    match only with
    | None -> Experiments.Registry.all
    | Some id -> (
      match Experiments.Registry.find id with
      | Some e -> [ e ]
      | None ->
        Format.eprintf "unknown experiment %S; try --list@." id;
        exit 1)
  in
  List.iter
    (fun e ->
      let started = Sys.time () in
      e.Experiments.Registry.run ~quick fmt;
      Format.fprintf fmt "[%s finished in %.1fs cpu]@."
        e.Experiments.Registry.id
        (Sys.time () -. started))
    selected

(* --- part 2: micro-benchmarks --- *)

let fixture ~m ~d ~n_nodes =
  let rng = Random.State.make [| 4242 |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:(m / d)
  in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  (graph, problem)

let micro_tests ?only () =
  let open Bechamel in
  let graph100, problem100 = fixture ~m:100 ~d:5 ~n_nodes:10 in
  let _, problem200 = fixture ~m:200 ~d:5 ~n_nodes:10 in
  let rates = Linalg.Vec.create (Problem.dim problem100) 1. in
  let series =
    Linalg.Mat.init 32 (Problem.dim problem100) (fun t k ->
        float_of_int (((t * 31) + (k * 17)) mod 97) /. 97.)
  in
  let plan100 = Rod.Rod_algorithm.plan problem100 in
  let ln = Plan.node_loads plan100 in
  let caps = problem100.Problem.caps in
  let rng = Random.State.make [| 7 |] in
  let _, small_problem = fixture ~m:8 ~d:2 ~n_nodes:2 in
  let sim_graph = Query.Builder.chain ~n_ops:3 ~cost:1e-4 ~sel:1. () in
  let sim_trace = Workload.Trace.create ~dt:1. [| 500. |] in
  let keep test =
    match only with
    | None -> true
    | Some needles ->
      (* Comma-separated needles select the union of their matches,
         so one invocation can cover several rung families
         (e.g. --only place/,controller/).  Matching is anchored on
         whole '/'-segments — "place/ROD-m200" selects exactly that
         rung, never "place/ROD-m2000". *)
      List.exists
        (fun needle ->
          Benchdiff_core.rung_matches ~needle ("rod/" ^ Test.name test))
        (String.split_on_char ',' needles)
  in
  Test.make_grouped ~name:"rod"
    (List.filter keep
    [
      Test.make ~name:"place/ROD-m100"
        (Staged.stage (fun () -> Rod.Rod_algorithm.place problem100));
      Test.make ~name:"place/ROD-m200"
        (Staged.stage (fun () -> Rod.Rod_algorithm.place problem200));
      Test.make ~name:"place/ROD+SPLIT-m200"
        (Staged.stage
           (* Placement over a split graph: the 200-operator fixture's
              hottest splittable operator expanded into 4 replicas with
              hybrid shares.  The sketch profile and partitioner warm-up
              run once out here — the rung times ROD over the enlarged
              graph, not the sketches. *)
           (let graph, _ = fixture ~m:200 ~d:5 ~n_nodes:10 in
            let keys =
              Workload.Generators.zipf_keys
                ~rng:(Random.State.make [| 99 |])
                ~alpha:1.2 ~n_keys:100_000 ~n:100_000
            in
            let profile = Keyed.Estimator.profile keys in
            let part =
              Keyed.Estimator.hybrid_of_profile ~replicas:4 ~seed:99 profile
            in
            Keyed.Partitioner.warm part keys;
            let op =
              match Keyed.Split.hottest_splittable graph with
              | Some j -> j
              | None -> failwith "bench fixture has no splittable operator"
            in
            let split =
              Keyed.Split.split graph ~op
                ~shares:(Keyed.Partitioner.shares part)
            in
            let problem =
              Problem.of_graph split.Keyed.Split.graph
                ~caps:(Problem.homogeneous_caps ~n:10 ~cap:1.)
            in
            fun () -> Rod.Rod_algorithm.place problem));
      Test.make ~name:"place/ROD-m1000"
        (Staged.stage
           (let _, problem1000 = fixture ~m:1000 ~d:5 ~n_nodes:20 in
            fun () -> Rod.Rod_algorithm.place problem1000));
      Test.make ~name:"place/ROD+LS-m50"
        (Staged.stage
           (let _, problem50 = fixture ~m:50 ~d:5 ~n_nodes:10 in
            fun () -> Rod.Local_search.rod_polished ~samples:256 problem50));
      (* The scale ladder (ROADMAP item 3): each rung roughly an order
         of magnitude up, so the per-PR trajectory toward "1000
         operators under 100 ms" reads straight out of BENCH_rod.json.
         The 1000-operator rung caps passes — rung timings must bound
         the polish loop, not its luck on a given fixture. *)
      Test.make ~name:"place/ROD+LS-m200"
        (Staged.stage
           (let _, problem200' = fixture ~m:200 ~d:5 ~n_nodes:10 in
            fun () -> Rod.Local_search.rod_polished ~samples:256 problem200'));
      Test.make ~name:"place/ROD+LS-m1000-n64"
        (Staged.stage
           (let _, problem1000 = fixture ~m:1000 ~d:5 ~n_nodes:64 in
            fun () ->
              Rod.Local_search.rod_polished ~samples:256 ~max_passes:3
                problem1000));
      Test.make ~name:"place/ROD-m10000-n256"
        (Staged.stage
           (let _, problem10k = fixture ~m:10000 ~d:5 ~n_nodes:256 in
            fun () -> Rod.Rod_algorithm.place problem10k));
      Test.make ~name:"place/LLF-m100"
        (Staged.stage (fun () -> Baselines.llf ~rates problem100));
      Test.make ~name:"place/connected-m100"
        (Staged.stage (fun () ->
             Baselines.connected ~rates ~graph:graph100 problem100));
      Test.make ~name:"place/correlation-m100"
        (Staged.stage (fun () -> Baselines.correlation ~series problem100));
      Test.make ~name:"place/random-m100"
        (Staged.stage (fun () -> Baselines.random_balanced ~rng problem100));
      Test.make ~name:"controller/replan-m200"
        (Staged.stage
           (let _, problem = fixture ~m:200 ~d:5 ~n_nodes:10 in
            let assignment = Rod.Rod_algorithm.place problem in
            let l = Problem.total_coefficients problem in
            let c_total = Problem.total_capacity problem in
            let dim = Problem.dim problem in
            (* A drifted rate point (stream 0 well past its mean share)
               so the rung times both replanner phases: margin repair
               and budgeted volume polish. *)
            let drifted =
              Linalg.Vec.init dim (fun k ->
                  let base =
                    0.6 *. c_total /. (float_of_int dim *. l.(k))
                  in
                  if k = 0 then 2.4 *. base else base)
            in
            fun () ->
              Dynamic.Replanner.replan ~samples:1024 ~rates:drifted ~budget:3
                ~cost_of:(fun _ -> 0.)
                problem ~assignment));
      Test.make ~name:"volume/qmc-4096"
        (Staged.stage (fun () ->
             Feasible.Volume.ratio_qmc ~ln ~caps ~samples:4096 ()));
      Test.make ~name:"volume/exact-polygon"
        (Staged.stage (fun () ->
             let g = Query.Builder.example2 () in
             let p = Problem.of_graph g ~caps:(Linalg.Vec.of_list [ 1.; 1. ]) in
             let pl = Plan.make p [| 0; 1; 1; 0 |] in
             Feasible.Polygon.feasible_area ~ln:(Plan.node_loads pl)
               ~caps:p.Problem.caps ()));
      Test.make ~name:"optimal/search-m8-n2"
        (Staged.stage (fun () -> Rod.Optimal.search ~samples:256 small_problem));
      Test.make ~name:"sim/chain-1s-500tps"
        (Staged.stage (fun () ->
             let arrivals =
               [| Workload.Generators.deterministic_arrivals ~trace:sim_trace |]
             in
             Dsim.Engine.run ~graph:sim_graph ~assignment:[| 0; 0; 0 |]
               ~caps:(Linalg.Vec.of_list [ 1. ])
               ~arrivals ~until:1. ()));
      Test.make ~name:"workload/bmodel-4096"
        (Staged.stage (fun () ->
             Workload.Bmodel.generate ~rng ~bias:0.7 ~levels:12 ~total:1e6));
      Test.make ~name:"cql/compile-monitoring"
        (Staged.stage
           (let source =
              (* Read the shipped query when run from the repo root;
                 fall back to an embedded equivalent elsewhere. *)
              match open_in "examples/queries/monitoring.rql" with
              | ic ->
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              | exception Sys_error _ ->
                "stream s (src: string, bytes: int, proto: string);\n\
                 node clean = filter s where proto != \"icmp\";\n\
                 node vol = aggregate clean window 2.0 by src compute { v = \
                 sum(bytes) };\n\
                 node heavy = filter vol where v > 1000.0;\n\
                 output heavy;"
            in
            fun () -> Cql.Frontend.compile_string source));
      Test.make ~name:"query/partition-8way"
        (Staged.stage
           (let g =
              Query.Randgraph.generate_trees
                ~rng:(Random.State.make [| 5 |])
                ~n_inputs:3 ~ops_per_tree:5
            in
            fun () -> Query.Partition.split_all ~ways:8 g));
      Test.make ~name:"failure/mean-survival-m30"
        (Staged.stage
           (let _, p = fixture ~m:30 ~d:3 ~n_nodes:4 in
            let a = Rod.Rod_algorithm.place p in
            fun () -> Rod.Failure.mean_survival ~samples:512 p ~assignment:a));
    ])

(* Machine-readable twin of the plain-text table.  Since schema v2 the
   file accumulates one record per run (git revision + timings), so
   the perf trajectory across PRs reads straight out of git history;
   a v1 or foreign file is replaced by a fresh v2 file. *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic -> (
    let line = try Some (input_line ic) with End_of_file -> None in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> (
      match line with Some l when l <> "" -> Some l | Some _ | None -> None)
    | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> None)

let record_string ~quick rows =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v in
  out "    {\n";
  out "      \"rev\": %s,\n"
    (match git_rev () with Some r -> Printf.sprintf "%S" r | None -> "null");
  out "      \"quick\": %b,\n" quick;
  out "      \"domains\": %d,\n" (Parallel.Pool.ways (Parallel.Pool.global ()));
  (* The registry snapshot rides along with each record, so the
     counter/histogram totals behind the timings land in git history
     next to them (schema rod-obs-metrics/1, re-indented to nest). *)
  let obs_json =
    let doc = String.trim (Obs.Export.metrics_json (Obs.snapshot ())) in
    String.concat "\n      " (String.split_on_char '\n' doc)
  in
  out "      \"obs\": %s,\n" obs_json;
  out "      \"results\": {\n";
  List.iteri
    (fun idx (name, ns, r2) ->
      out "        %S: { \"ns_per_run\": %s, \"r_square\": %s }%s\n" name
        (num ns) (num r2)
        (if idx = List.length rows - 1 then "" else ","))
    rows;
  out "      }\n";
  out "    }";
  Buffer.contents buffer

let json_tail = "\n  ]\n}\n"

let write_json ~path ~quick rows =
  let record = record_string ~quick rows in
  let prior =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic))))
    else None
  in
  let appendable text =
    let tl = String.length json_tail and l = String.length text in
    let mem sub =
      let sl = String.length sub in
      let rec scan i =
        i + sl <= l && (String.sub text i sl = sub || scan (i + 1))
      in
      scan 0
    in
    mem "\"schema\": \"rod-microbench/2\""
    && l >= tl
    && String.sub text (l - tl) tl = json_tail
  in
  let content =
    match prior with
    | Some text when appendable text ->
      String.sub text 0 (String.length text - String.length json_tail)
      ^ ",\n" ^ record ^ json_tail
    | Some _ | None ->
      "{\n  \"schema\": \"rod-microbench/2\",\n  \"records\": [\n" ^ record
      ^ json_tail
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let run_micro ~quick ~only ~json fmt =
  let open Bechamel in
  Format.fprintf fmt
    "@.==================@.= Microbenchmarks =@.==================@.";
  let quota = if quick then 0.25 else 1.0 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:true ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ?only ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let time_ns =
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square result with Some r -> r | None -> nan
        in
        (name, time_ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  if rows = [] then
    Format.fprintf fmt "no micro benchmark matches the --only filter@."
  else begin
    Format.fprintf fmt "%-34s %14s %8s@." "benchmark" "time/run" "r^2";
    List.iter
      (fun (name, ns, r2) ->
        let pretty =
          if Float.is_nan ns then "n/a"
          else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
          else Printf.sprintf "%.1f ns" ns
        in
        Format.fprintf fmt "%-34s %14s %8.4f@." name pretty r2)
      rows;
    write_json ~path:json ~quick rows;
    Format.fprintf fmt "[micro results written to %s]@." json
  end

let () =
  let quick = has_flag "--quick" in
  let fmt = Format.std_formatter in
  if has_flag "--list" then begin
    List.iter print_endline (Experiments.Registry.ids ());
    exit 0
  end;
  (match flag_value "--csv" with
  | Some dir ->
    if not (Sys.file_exists dir && Sys.is_directory dir) then begin
      Format.eprintf "--csv: %s is not an existing directory@." dir;
      exit 1
    end;
    Experiments.Report.set_csv_dir (Some dir)
  | None -> ());
  let only = flag_value "--only" in
  let micro_only = has_flag "--micro-only" in
  let json =
    match flag_value "--json" with Some p -> p | None -> "BENCH_rod.json"
  in
  if not micro_only then run_experiments ~quick ~only fmt;
  (* Micros run by default (no --only, no --no-micro) and always under
     --micro-only, where --only narrows by benchmark-name substring
     instead of selecting an experiment. *)
  let micro_filter = if micro_only then only else None in
  if micro_only || ((not (has_flag "--no-micro")) && only = None) then
    run_micro ~quick ~only:micro_filter ~json fmt;
  Format.pp_print_flush fmt ()
