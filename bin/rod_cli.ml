(* rod-cli: command-line front end for the ROD library.

   Subcommands:
     place      build a query graph, place it, print plan + metrics
     volume     feasible-set size of a placement
     trace      synthesize a workload trace and print it
     simulate   place a graph and replay a bursty workload in the DES
     experiment run one of the paper-reproduction experiments *)

open Cmdliner

module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan

(* --- shared graph selection --- *)

type graph_kind =
  | Random_trees
  | Example2
  | Example3
  | Traffic
  | Compliance

let graph_kind_conv =
  let parse = function
    | "random" -> Ok Random_trees
    | "example2" -> Ok Example2
    | "example3" -> Ok Example3
    | "traffic" -> Ok Traffic
    | "compliance" -> Ok Compliance
    | s -> Error (`Msg (Printf.sprintf "unknown graph %S" s))
  in
  let print fmt k =
    Format.pp_print_string fmt
      (match k with
      | Random_trees -> "random"
      | Example2 -> "example2"
      | Example3 -> "example3"
      | Traffic -> "traffic"
      | Compliance -> "compliance")
  in
  Arg.conv (parse, print)

let graph_arg =
  Arg.(
    value
    & opt graph_kind_conv Random_trees
    & info [ "g"; "graph" ] ~docv:"KIND"
        ~doc:
          "Query graph: $(b,random) operator trees, the paper's \
           $(b,example2)/$(b,example3), a $(b,traffic) monitoring app or a \
           $(b,compliance) app.")

let inputs_arg =
  Arg.(
    value & opt int 5
    & info [ "d"; "inputs" ] ~docv:"D" ~doc:"Input streams (random graphs).")

let ops_arg =
  Arg.(
    value & opt int 20
    & info [ "ops-per-tree" ] ~docv:"K"
        ~doc:"Operators per tree (random graphs).")

let nodes_arg =
  Arg.(value & opt int 10 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster nodes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let samples_arg =
  Arg.(
    value & opt int 8192
    & info [ "samples" ] ~docv:"S" ~doc:"QMC samples for volume estimates.")

(* --- observability exports (shared by place/sim/chaos/experiment) --- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry snapshot as JSON (schema \
           rod-obs-metrics/1) to $(docv).")

let obs_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the span trace as Chrome trace_event JSON to $(docv); load \
           it in Perfetto or about:tracing.")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:"Write metrics in Prometheus text exposition format to $(docv).")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let export_obs metrics trace prom =
  let snapshot = lazy (Obs.snapshot ()) in
  Option.iter
    (fun path ->
      write_file path (Obs.Export.metrics_json (Lazy.force snapshot)))
    metrics;
  Option.iter
    (fun path -> write_file path (Obs.Export.trace_json (Obs.events ())))
    trace;
  Option.iter
    (fun path -> write_file path (Obs.Export.prometheus (Lazy.force snapshot)))
    prom

let build_graph kind ~seed ~inputs ~ops_per_tree =
  match kind with
  | Random_trees ->
    Query.Randgraph.generate_trees
      ~rng:(Random.State.make [| seed |])
      ~n_inputs:inputs ~ops_per_tree
  | Example2 -> Query.Builder.example2 ()
  | Example3 -> Query.Builder.example3 ()
  | Traffic -> Query.Builder.traffic_monitoring ~n_links:(max 1 inputs)
  | Compliance -> Query.Builder.financial_compliance ~n_rules:(max 1 ops_per_tree)

type algorithm_choice =
  | Rod_alg
  | Llf_alg
  | Connected_alg
  | Correlation_alg
  | Random_alg

let algorithm_conv =
  let parse = function
    | "rod" -> Ok Rod_alg
    | "llf" -> Ok Llf_alg
    | "connected" -> Ok Connected_alg
    | "correlation" -> Ok Correlation_alg
    | "random" -> Ok Random_alg
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a =
    Format.pp_print_string fmt
      (match a with
      | Rod_alg -> "rod"
      | Llf_alg -> "llf"
      | Connected_alg -> "connected"
      | Correlation_alg -> "correlation"
      | Random_alg -> "random")
  in
  Arg.conv (parse, print)

let algorithm_arg =
  Arg.(
    value & opt algorithm_conv Rod_alg
    & info [ "a"; "algorithm" ] ~docv:"ALG"
        ~doc:
          "Placement algorithm: $(b,rod), $(b,llf), $(b,connected), \
           $(b,correlation) or $(b,random).")

let run_algorithm algorithm ~seed ~graph ~problem =
  let rng = Random.State.make [| seed + 1 |] in
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let center = Vec.init d (fun k -> c_total /. (2. *. float_of_int d *. l.(k))) in
  match algorithm with
  | Rod_alg -> Rod.Rod_algorithm.place problem
  | Llf_alg -> Baselines.llf ~rates:center problem
  | Connected_alg -> Baselines.connected ~rates:center ~graph problem
  | Correlation_alg ->
    let series =
      Linalg.Mat.init 32 d (fun _ k -> Random.State.float rng (2. *. center.(k)))
    in
    Baselines.correlation ~series problem
  | Random_alg -> Baselines.random_balanced ~rng problem

(* --- place --- *)

let load_graph_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "load-graph" ] ~docv:"FILE"
        ~doc:"Read the query graph from a rodgraph file instead of building one.")

let save_graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-graph" ] ~docv:"FILE" ~doc:"Write the query graph to FILE.")

let save_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-plan" ] ~docv:"FILE"
        ~doc:"Write the computed assignment to FILE (rodplan format).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the greedy's decision log (one line per operator).")

let polish_arg =
  Arg.(
    value & flag
    & info [ "polish" ]
        ~doc:
          "Refine the placement by local search (relocations + swaps) on the \
           feasible-set objective.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write a Graphviz rendering of the placed graph (operators colored \
           by node) to FILE.")

let place_cmd =
  let run kind inputs ops_per_tree nodes seed algorithm samples load_graph
      save_graph save_plan polish dot explain metrics obs_trace prom =
    let graph =
      match load_graph with
      | Some path -> Query.Graph_io.load ~path
      | None -> build_graph kind ~seed ~inputs ~ops_per_tree
    in
    Option.iter (fun path -> Query.Graph_io.save graph ~path) save_graph;
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
    in
    let assignment =
      if explain && algorithm = Rod_alg then begin
        let assignment, trace = Rod.Rod_algorithm.place_traced problem in
        Format.printf "%a@." Rod.Rod_algorithm.pp_trace trace;
        assignment
      end
      else run_algorithm algorithm ~seed ~graph ~problem
    in
    let assignment =
      if polish then begin
        let out = Rod.Local_search.improve ~samples problem assignment in
        Format.printf "local search: %d moves over %d passes@."
          out.Rod.Local_search.moves out.Rod.Local_search.passes;
        out.Rod.Local_search.assignment
      end
      else assignment
    in
    Option.iter
      (fun path -> Query.Graph_io.save_assignment assignment ~path)
      save_plan;
    Option.iter
      (fun path -> Query.Graph_dot.save ~assignment graph ~path)
      dot;
    let plan = Plan.make problem assignment in
    Format.printf "%a@." Plan.pp plan;
    Format.printf "%a@." Rod.Metrics.pp_summary (Rod.Metrics.summary plan);
    let est = Plan.volume_qmc ~samples plan in
    Format.printf "feasible-set ratio vs ideal: %.4f@." est.Feasible.Volume.ratio;
    export_obs metrics obs_trace prom
  in
  let term =
    Term.(
      const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
      $ algorithm_arg $ samples_arg $ load_graph_arg $ save_graph_arg
      $ save_plan_arg $ polish_arg $ dot_arg $ explain_arg $ metrics_arg
      $ obs_trace_arg $ prom_arg)
  in
  Cmd.v
    (Cmd.info "place" ~doc:"Place a query graph and report its resiliency.")
    term

(* --- volume --- *)

let volume_cmd =
  let run kind inputs ops_per_tree nodes seed samples =
    let graph = build_graph kind ~seed ~inputs ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
    in
    Format.printf "ideal feasible-set volume: %.6g@." (Rod.Ideal.volume problem);
    List.iter
      (fun algorithm ->
        let assignment = run_algorithm algorithm ~seed ~graph ~problem in
        let est = Plan.volume_qmc ~samples (Plan.make problem assignment) in
        let name =
          Format.asprintf "%a" (Arg.conv_printer algorithm_conv) algorithm
        in
        Format.printf "%-12s ratio %.4f volume %.6g@." name
          est.Feasible.Volume.ratio est.Feasible.Volume.volume)
      [ Rod_alg; Correlation_alg; Llf_alg; Random_alg; Connected_alg ]
  in
  let term =
    Term.(
      const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
      $ samples_arg)
  in
  Cmd.v
    (Cmd.info "volume"
       ~doc:"Compare feasible-set volumes of all algorithms on one graph.")
    term

(* --- trace --- *)

let trace_cmd =
  let kind_conv =
    let parse = function
      | "pkt" -> Ok `Pkt
      | "tcp" -> Ok `Tcp
      | "http" -> Ok `Http
      | "poisson" -> Ok `Poisson
      | "flash" -> Ok `Flash
      | s -> Error (`Msg (Printf.sprintf "unknown trace kind %S" s))
    in
    let print fmt k =
      Format.pp_print_string fmt
        (match k with
        | `Pkt -> "pkt"
        | `Tcp -> "tcp"
        | `Http -> "http"
        | `Poisson -> "poisson"
        | `Flash -> "flash")
    in
    Arg.conv (parse, print)
  in
  let kind_arg =
    Arg.(
      value & opt kind_conv `Pkt
      & info [ "k"; "kind" ] ~docv:"KIND"
          ~doc:"$(b,pkt), $(b,tcp), $(b,http), $(b,poisson) or $(b,flash).")
  in
  let levels_arg =
    Arg.(
      value & opt int 8
      & info [ "levels" ] ~docv:"L" ~doc:"Length = 2^L intervals.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit interval,rate CSV lines.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also save the trace in rodtrace format.")
  in
  let run kind levels seed csv out =
    let rng = Random.State.make [| seed |] in
    let n = 1 lsl levels in
    let trace =
      match kind with
      | `Pkt -> Workload.Traces.synthesize ~levels ~rng Workload.Traces.Pkt
      | `Tcp -> Workload.Traces.synthesize ~levels ~rng Workload.Traces.Tcp
      | `Http -> Workload.Traces.synthesize ~levels ~rng Workload.Traces.Http
      | `Poisson ->
        Workload.Trace.normalize
          (Workload.Generators.poisson_counts ~rng ~n ~dt:1. ~mean_rate:100.)
      | `Flash ->
        Workload.Trace.normalize
          (Workload.Generators.flash_crowd ~rng ~n ~dt:1. ~base_rate:1.
             ~spike_prob:0.02 ~spike_factor:8. ~decay:0.8)
    in
    Option.iter (fun path -> Workload.Trace_io.save trace ~path) out;
    if csv then
      Array.iteri
        (fun i r -> Printf.printf "%d,%.6f\n" i r)
        trace.Workload.Trace.rates
    else begin
      Format.printf "%a@." Workload.Trace.pp_summary trace;
      Format.printf "hurst(R/S) = %.3f@."
        (Workload.Stats.hurst_rs trace.Workload.Trace.rates)
    end
  in
  let term =
    Term.(const run $ kind_arg $ levels_arg $ seed_arg $ csv_arg $ out_arg)
  in
  Cmd.v (Cmd.info "trace" ~doc:"Synthesize a self-similar workload trace.") term

(* --- simulate --- *)

let controller_summary ctl =
  let accepted, rejected, moves =
    List.fold_left
      (fun (a, r, m) (dec : Dynamic.Controller.decision) ->
        match dec.Dynamic.Controller.action with
        | Dynamic.Controller.Replanned o ->
          (a + 1, r, m + List.length o.Dynamic.Replanner.moves)
        | Dynamic.Controller.Rejected _ -> (a, r + 1, m)
        | Dynamic.Controller.Hold -> (a, r, m))
      (0, 0, 0)
      (Dynamic.Controller.decisions ctl)
  in
  Format.printf "controller: %d replans accepted (%d moves), %d rejected@."
    accepted moves rejected

let simulate_term =
  let load_arg =
    Arg.(
      value & opt float 0.7
      & info [ "load" ] ~docv:"PHI"
          ~doc:"Mean demand as a fraction of the ideal boundary.")
  in
  let duration_arg =
    Arg.(
      value & opt float 64.
      & info [ "duration" ] ~docv:"T" ~doc:"Simulated seconds.")
  in
  let controller_arg =
    Arg.(
      value & flag
      & info [ "controller" ]
          ~doc:
            "Run the $(b,rod.dynamic) margin controller over the simulation: \
             replan under a move budget when the modeled feasible-set margin \
             erodes, and migrate live (pause-drain-resume).")
  in
  let budget_arg =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"B"
          ~doc:"Migration budget per replan (with $(b,--controller)).")
  in
  let decisions_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "decisions" ] ~docv:"FILE"
          ~doc:
            "Write the controller's decision log as JSON (schema \
             rod-replan-log/1) to $(docv) (with $(b,--controller)).")
  in
  let run kind inputs ops_per_tree nodes seed algorithm load duration
      controller budget decisions obs_metrics obs_trace prom =
    let graph = build_graph kind ~seed ~inputs ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
    in
    let assignment = run_algorithm algorithm ~seed ~graph ~problem in
    let d = Query.Graph.n_inputs graph in
    let l = Problem.total_coefficients problem in
    let c_total = Problem.total_capacity problem in
    let rng = Random.State.make [| seed + 2 |] in
    let levels = max 1 (int_of_float (ceil (log duration /. log 2.))) in
    let traces =
      Array.init d (fun k ->
          let mean = load *. c_total /. (float_of_int d *. l.(k)) in
          Workload.Trace.scale mean
            (Workload.Trace.normalize
               (Workload.Bmodel.trace ~rng ~bias:0.65 ~levels ~mean_rate:1.
                  ~dt:1.)))
    in
    let config = { Dsim.Engine.default_config with warmup = 1. } in
    if controller then begin
      let ctl =
        Dynamic.Controller.create
          ~config:{ Dynamic.Controller.default_config with budget }
          ~cost_of:(Dynamic.Statesize.graph_cost graph)
          problem ~assignment
      in
      let arrivals =
        Array.map
          (fun trace -> Workload.Generators.deterministic_arrivals ~trace)
          traces
      in
      let metrics =
        Dsim.Engine.run ~graph ~assignment ~caps:problem.Problem.caps
          ~arrivals ~config
          ~dynamic:(Dynamic.Controller.engine_config ctl)
          ~until:duration ()
      in
      Format.printf "%a@." Dsim.Sim_metrics.pp metrics;
      controller_summary ctl;
      Option.iter
        (fun path -> write_file path (Dynamic.Controller.decisions_json ctl))
        decisions
    end
    else begin
      let metrics =
        Dsim.Probe.simulate_traces ~config ~graph ~assignment
          ~caps:problem.Problem.caps ~traces ()
      in
      Format.printf "%a@." Dsim.Sim_metrics.pp metrics
    end;
    export_obs obs_metrics obs_trace prom
  in
  Term.(
    const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
    $ algorithm_arg $ load_arg $ duration_arg $ controller_arg $ budget_arg
    $ decisions_arg $ metrics_arg $ obs_trace_arg $ prom_arg)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Replay a bursty workload against a placement in the simulator.")
    simulate_term

(* cmdliner has no subcommand aliases; "sim" is a second command sharing
   simulate's term. *)
let sim_cmd =
  Cmd.v (Cmd.info "sim" ~doc:"Alias for $(b,simulate).") simulate_term

(* --- cluster --- *)

let cluster_cmd =
  let xfer_arg =
    Arg.(
      value & opt float 1e-3
      & info [ "xfer" ] ~docv:"COST"
          ~doc:"Per-tuple network transfer cost in CPU seconds.")
  in
  let run inputs ops_per_tree nodes seed xfer samples =
    let rng = Random.State.make [| seed |] in
    let graph =
      Query.Randgraph.generate ~rng
        {
          Query.Randgraph.default with
          n_inputs = inputs;
          ops_per_tree;
          xfer_cost = xfer;
        }
    in
    let model = Query.Load_model.derive graph in
    let caps = Problem.homogeneous_caps ~n:nodes ~cap:1. in
    let problem = Problem.of_model model ~caps in
    let report label assignment =
      let ln =
        Rod.Clustering.effective_node_loads ~model ~n_nodes:nodes ~assignment
      in
      let est = Feasible.Volume.ratio_qmc ~ln ~caps ~samples () in
      let cuts =
        List.length (Rod.Clustering.cut_arcs ~model ~assignment)
      in
      Format.printf "%-24s cuts %3d   volume %.5g@." label cuts
        est.Feasible.Volume.volume
    in
    report "communication-blind ROD" (Rod.Rod_algorithm.place problem);
    let clustering, assignment = Rod.Clustering.select_best ~model ~caps () in
    report "clustered ROD" assignment;
    Format.printf "clusters: %d (of %d operators)@."
      clustering.Rod.Clustering.n_clusters
      (Query.Graph.n_ops graph)
  in
  let term =
    Term.(
      const run $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg $ xfer_arg
      $ samples_arg)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run the operator-clustering pipeline under communication cost.")
    term

(* --- optimal --- *)

let optimal_cmd =
  let run inputs ops_per_tree nodes seed samples =
    let graph =
      build_graph Random_trees ~seed ~inputs ~ops_per_tree
    in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
    in
    let space =
      Rod.Optimal.search_space ~n_nodes:nodes
        ~n_ops:(Problem.n_ops problem)
    in
    Format.printf "search space: %.3g assignments@." space;
    let best = Rod.Optimal.search ~samples problem in
    let rod =
      Rod.Optimal.ratio_of_assignment ~samples problem
        (Rod.Rod_algorithm.place problem)
    in
    Format.printf "optimal ratio %.4f (explored %d assignments)@."
      best.Rod.Optimal.ratio best.Rod.Optimal.explored;
    Format.printf "ROD ratio     %.4f (%.1f%% of optimal)@." rod
      (100. *. rod /. Float.max best.Rod.Optimal.ratio 1e-9)
  in
  let term =
    Term.(
      const run $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg $ samples_arg)
  in
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Exhaustive optimum on a small instance, compared with ROD.")
    term

(* --- failure --- *)

let failure_cmd =
  let run kind inputs ops_per_tree nodes seed algorithm samples =
    let graph = build_graph kind ~seed ~inputs ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
    in
    let assignment = run_algorithm algorithm ~seed ~graph ~problem in
    let before = Plan.volume_qmc ~samples (Plan.make problem assignment) in
    Format.printf "before failure: ratio %.4f volume %.6g@."
      before.Feasible.Volume.ratio before.Feasible.Volume.volume;
    for failed = 0 to nodes - 1 do
      let r = Rod.Failure.survival ~samples problem ~assignment ~failed in
      Format.printf
        "node %d fails: volume %.6g -> %.6g  survival %.3f (capacity bound %.3f)@."
        failed r.Rod.Failure.volume_before r.Rod.Failure.volume_after
        r.Rod.Failure.survival r.Rod.Failure.capacity_bound
    done;
    Format.printf "mean survival: %.4f@."
      (Rod.Failure.mean_survival ~samples problem ~assignment)
  in
  let term =
    Term.(
      const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
      $ algorithm_arg $ samples_arg)
  in
  Cmd.v
    (Cmd.info "failure"
       ~doc:
         "What-if analysis: feasible volume surviving each single-node \
          failure after incremental recovery.")
    term

(* --- compile --- *)

(* Synthetic records carrying every declared field of each input
   schema, with Poisson arrivals at the trace's rate. *)
let synthetic_sample ~rng ~trace inputs =
  Array.of_list
    (List.map
       (fun (_, schema) ->
         List.map
           (fun ts ->
             Spe.Tuple.make ~ts
               (List.map
                  (fun (field, t) ->
                    ( field,
                      match t with
                      | Cql.Ast.T_int -> Spe.Value.Int (Random.State.int rng 1500)
                      | Cql.Ast.T_float ->
                        Spe.Value.Float (Random.State.float rng 100.)
                      | Cql.Ast.T_string ->
                        Spe.Value.Str
                          (Printf.sprintf "k%d" (Random.State.int rng 8)) ))
                  schema))
           (Workload.Generators.poisson_arrivals ~rng ~trace))
       inputs)

let compile_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Query-language source file.")
  in
  let place_flag =
    Arg.(
      value & flag
      & info [ "place" ]
          ~doc:
            "Profile the compiled network on synthetic data and place it with \
             ROD.")
  in
  let rate_arg =
    Arg.(
      value & opt float 150.
      & info [ "profile-rate" ] ~docv:"TPS"
          ~doc:"Synthetic tuple rate per input used for profiling.")
  in
  let run file do_place nodes seed rate =
    match Cql.Frontend.compile_file ~path:file with
    | Error e ->
      `Error (false, Printf.sprintf "%s: %s" file (Cql.Frontend.error_to_string e))
    | Ok compiled ->
      print_string (Cql.Frontend.describe compiled);
      if do_place then begin
        let rng = Random.State.make [| seed |] in
        let trace = Workload.Trace.create ~dt:1. (Array.make 10 rate) in
        let sample_inputs =
          synthetic_sample ~rng ~trace compiled.Cql.Compile.inputs
        in
        let profile =
          Spe.Profiler.profile compiled.Cql.Compile.network ~inputs:sample_inputs
        in
        let problem =
          Problem.of_graph profile.Spe.Profiler.graph
            ~caps:(Problem.homogeneous_caps ~n:nodes ~cap:1.)
        in
        let plan = Rod.Rod_algorithm.plan problem in
        Format.printf "@.%a@." Plan.pp plan;
        let est = Plan.volume_qmc ~samples:8192 plan in
        Format.printf "feasible-set ratio vs ideal: %.4f@."
          est.Feasible.Volume.ratio
      end;
      `Ok ()
  in
  let term =
    Term.(ret (const run $ file_arg $ place_flag $ nodes_arg $ seed_arg $ rate_arg))
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a query-language file; optionally profile it on synthetic \
          data and place it resiliently.")
    term

(* --- analyze --- *)

let analyze_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PLAN"
          ~doc:
            "A cost-model graph ($(b,.rodgraph)) or a query-language source \
             file (profiled on synthetic data first).  With \
             $(b,--check-proto) or $(b,--check-units), a directory of \
             compiled $(b,.cmt) files instead (e.g. _build/default/lib).")
  in
  let proto_flag =
    Arg.(
      value & flag
      & info [ "check-proto" ]
          ~doc:
            "Run the migration-protocol typestate and gated-mutation \
             analysis (tools/rodproto) over the $(b,.cmt) files under \
             $(i,PLAN) instead of analyzing a query plan; findings flow \
             through the same $(b,--json) / $(b,--sarif) outputs.")
  in
  let units_flag =
    Arg.(
      value & flag
      & info [ "check-units" ]
          ~doc:
            "Run the dimensional analysis of the load-model arithmetic \
             (tools/rodunits) over the $(b,.cmt) files under $(i,PLAN) \
             instead of analyzing a query plan; findings flow through the \
             same $(b,--json) / $(b,--sarif) outputs.")
  in
  let cap_arg =
    Arg.(
      value & opt float 1.
      & info [ "cap" ] ~docv:"C" ~doc:"Capacity of each cluster node.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Warn when a per-axis resiliency bound falls below $(docv).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as JSON (rod-plan-check/1).")
  in
  let sarif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"PATH"
          ~doc:
            "Also write the report as SARIF 2.1.0 to $(docv) — the same \
             format tools/rodscan emits, so both analyzers feed one code \
             scanning pipeline.")
  in
  let rate_arg =
    Arg.(
      value & opt float 150.
      & info [ "profile-rate" ] ~docv:"TPS"
          ~doc:"Synthetic tuple rate per input used when profiling a query file.")
  in
  let run_proto file json sarif =
    let rec collect acc path =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.fold_left
             (fun acc entry -> collect acc (Filename.concat path entry))
             acc
      else if Filename.check_suffix path ".cmt" then path :: acc
      else acc
    in
    let units =
      collect [] file |> List.sort_uniq String.compare
      |> List.filter_map Analysis.Scan.unit_of_cmt
    in
    let diags, stats = Analysis.Proto.check_units units in
    if json then begin
      let esc = Analysis.Sarif.escape in
      Printf.printf "{\n  \"schema\": \"rod-rodproto/1\",\n";
      Printf.printf "  \"units\": %d,\n" stats.Analysis.Proto.units_checked;
      Printf.printf "  \"definitions\": %d,\n" stats.Analysis.Proto.defs_walked;
      Printf.printf "  \"roles\": %d,\n" stats.Analysis.Proto.roles_bound;
      Printf.printf "  \"hatches_used\": %d,\n"
        stats.Analysis.Proto.hatches_used;
      Printf.printf "  \"findings\": [\n";
      List.iteri
        (fun idx (d : Analysis.Lint.diag) ->
          Printf.printf
            "    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
             \"%s\", \"message\": \"%s\" }%s\n"
            (esc d.file) d.line d.col (esc d.rule) (esc d.message)
            (if idx = List.length diags - 1 then "" else ","))
        diags;
      Printf.printf "  ]\n}\n"
    end
    else begin
      List.iter (fun d -> print_endline (Analysis.Lint.render d)) diags;
      Printf.printf "rodproto: %d units, %d findings\n"
        stats.Analysis.Proto.units_checked (List.length diags)
    end;
    Option.iter
      (fun path ->
        let results =
          List.map
            (fun (d : Analysis.Lint.diag) ->
              {
                Analysis.Sarif.rule_id = d.rule;
                level = "error";
                message = d.message;
                file = Some d.file;
                line = Some d.line;
                col = Some d.col;
              })
            diags
        in
        Analysis.Sarif.write ~path ~tool:"rodproto"
          ~rules:Analysis.Proto.sarif_rules results)
      sarif;
    if stats.Analysis.Proto.units_checked = 0 then
      `Error
        (false, Printf.sprintf "%s: no protocol-marked .cmt units found" file)
    else if diags = [] then `Ok ()
    else
      `Error
        (false, Printf.sprintf "%s: protocol verification failed" file)
  in
  let run_units file json sarif =
    let rec collect acc path =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.fold_left
             (fun acc entry -> collect acc (Filename.concat path entry))
             acc
      else if Filename.check_suffix path ".cmt" then path :: acc
      else acc
    in
    let units =
      collect [] file |> List.sort_uniq String.compare
      |> List.filter_map Analysis.Scan.unit_of_cmt
    in
    let diags, stats = Analysis.Units.check_units units in
    if json then begin
      let esc = Analysis.Sarif.escape in
      Printf.printf "{\n  \"schema\": \"rod-rodunits/1\",\n";
      Printf.printf "  \"units\": %d,\n" (List.length units);
      Printf.printf "  \"interfaces_annotated\": %d,\n"
        stats.Analysis.Units.ifaces_annotated;
      Printf.printf "  \"vals_annotated\": %d,\n"
        stats.Analysis.Units.vals_annotated;
      Printf.printf "  \"fields_annotated\": %d,\n"
        stats.Analysis.Units.fields_annotated;
      Printf.printf "  \"definitions\": %d,\n" stats.Analysis.Units.defs_walked;
      Printf.printf "  \"hatches_used\": %d,\n"
        stats.Analysis.Units.hatches_used;
      Printf.printf "  \"findings\": [\n";
      List.iteri
        (fun idx (d : Analysis.Lint.diag) ->
          Printf.printf
            "    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \
             \"%s\", \"message\": \"%s\" }%s\n"
            (esc d.file) d.line d.col (esc d.rule) (esc d.message)
            (if idx = List.length diags - 1 then "" else ","))
        diags;
      Printf.printf "  ]\n}\n"
    end
    else begin
      List.iter (fun d -> print_endline (Analysis.Lint.render d)) diags;
      Printf.printf "rodunits: %d units, %d findings\n" (List.length units)
        (List.length diags)
    end;
    Option.iter
      (fun path ->
        let results =
          List.map
            (fun (d : Analysis.Lint.diag) ->
              {
                Analysis.Sarif.rule_id = d.rule;
                level = "error";
                message = d.message;
                file = Some d.file;
                line = Some d.line;
                col = Some d.col;
              })
            diags
        in
        Analysis.Sarif.write ~path ~tool:"rodunits"
          ~rules:Analysis.Units.sarif_rules results)
      sarif;
    if units = [] then
      `Error (false, Printf.sprintf "%s: no .cmt units found" file)
    else if diags = [] then `Ok ()
    else
      `Error
        (false, Printf.sprintf "%s: dimensional analysis failed" file)
  in
  let run file nodes cap seed rate threshold json sarif check_proto check_units
      =
    if check_proto then run_proto file json sarif
    else if check_units then run_units file json sarif
    else
    let graph_result =
      if Filename.check_suffix file ".rodgraph" then (
        match Query.Graph_io.load ~path:file with
        | graph -> Ok graph
        | exception Failure message -> Error message
        | exception Invalid_argument message -> Error message)
      else
        match Cql.Frontend.compile_file ~path:file with
        | Error e ->
          Error (Printf.sprintf "%s" (Cql.Frontend.error_to_string e))
        | Ok compiled ->
          let rng = Random.State.make [| seed |] in
          let trace = Workload.Trace.create ~dt:1. (Array.make 10 rate) in
          let sample_inputs =
            synthetic_sample ~rng ~trace compiled.Cql.Compile.inputs
          in
          let profile =
            Spe.Profiler.profile compiled.Cql.Compile.network
              ~inputs:sample_inputs
          in
          Ok profile.Spe.Profiler.graph
    in
    match graph_result with
    | Error message -> `Error (false, Printf.sprintf "%s: %s" file message)
    | Ok graph ->
      let caps = Problem.homogeneous_caps ~n:nodes ~cap in
      let report = Analysis.Plan_check.check_graph ~threshold graph ~caps in
      if json then print_string (Analysis.Plan_check.to_json report)
      else Format.printf "%a@." Analysis.Plan_check.pp report;
      Option.iter
        (fun path ->
          let results =
            List.map
              (fun (d : Analysis.Plan_check.diag) ->
                {
                  Analysis.Sarif.rule_id = d.code;
                  level =
                    (match d.severity with
                    | Analysis.Plan_check.Error -> "error"
                    | Analysis.Plan_check.Warning -> "warning");
                  message = d.message;
                  file = Some file;
                  line = None;
                  col = None;
                })
              report.Analysis.Plan_check.diags
          in
          Analysis.Sarif.write ~path ~tool:"rod-plan-check" results)
        sarif;
      if Analysis.Plan_check.ok report then `Ok ()
      else `Error (false, Printf.sprintf "%s: plan rejected by static analysis" file)
  in
  let term =
    Term.(
      ret
        (const run $ file_arg $ nodes_arg $ cap_arg $ seed_arg $ rate_arg
        $ threshold_arg $ json_flag $ sarif_arg $ proto_flag $ units_flag))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze a query plan: well-formedness of the load \
          model, statically-infeasible operators, per-axis resiliency \
          bounds.  Nonzero exit when the plan is rejected.")
    term

(* --- deploy --- *)

let deploy_cmd =
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Existing directory to write graph.rodgraph / plan.rodplan /                 plan.dot into.")
  in
  let run kind inputs ops_per_tree nodes seed samples polish out_dir =
    let graph = build_graph kind ~seed ~inputs ~ops_per_tree in
    let caps = Problem.homogeneous_caps ~n:nodes ~cap:1. in
    let d = Deploy.of_cost_model ~polish ~samples ~graph ~caps () in
    print_string (Deploy.describe d);
    let direction =
      Vec.ones (Query.Load_model.d_system (Query.Load_model.derive graph))
    in
    Format.printf "headroom along the all-ones rate direction: %.4g tuples/s@."
      (Deploy.headroom d ~direction);
    Option.iter
      (fun dir ->
        Deploy.save d ~dir;
        Format.printf "artifacts written to %s@." dir)
      out_dir
  in
  let term =
    Term.(
      const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
      $ samples_arg $ polish_arg $ out_dir_arg)
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:"Place a graph and print the full deployment summary.")
    term

(* --- replan --- *)

let replan_cmd =
  let budget_arg =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"B"
          ~doc:"Maximum migrations the replanner may propose.")
  in
  let rates_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates" ] ~docv:"R1,R2,..."
          ~doc:
            "Observed system rate point, tuples/s per input stream.  Default: \
             a 60%-load mean point with $(b,--drift) applied to stream 0.")
  in
  let drift_arg =
    Arg.(
      value & opt float 2.5
      & info [ "drift" ] ~docv:"F"
          ~doc:"Without $(b,--rates): scale stream 0's mean rate by $(docv).")
  in
  let run kind inputs ops_per_tree nodes seed samples budget rates drift
      metrics obs_trace prom =
    let graph = build_graph kind ~seed ~inputs ~ops_per_tree in
    let caps = Problem.homogeneous_caps ~n:nodes ~cap:1. in
    let deployment = Deploy.of_cost_model ~samples ~graph ~caps () in
    print_string (Deploy.describe deployment);
    let d_sys = Query.Load_model.d_system (Query.Load_model.derive graph) in
    let rates =
      match rates with
      | Some s ->
        Vec.of_list
          (List.map
             (fun field -> float_of_string (String.trim field))
             (String.split_on_char ',' s))
      | None ->
        let problem = deployment.Deploy.problem in
        let l = Problem.total_coefficients problem in
        let c_total = Problem.total_capacity problem in
        Vec.init d_sys (fun k ->
            let base = 0.6 *. c_total /. (float_of_int d_sys *. l.(k)) in
            if k = 0 then drift *. base else base)
    in
    if Vec.dim rates <> d_sys then
      `Error
        ( false,
          Printf.sprintf "--rates needs %d comma-separated values" d_sys )
    else begin
      Format.printf "observed rates:";
      List.iter (fun r -> Format.printf " %.2f" r) (Vec.to_list rates);
      Format.printf "@.";
      let deployment', outcome = Deploy.replan ~samples ~budget deployment ~rates in
      let pp_margin label = function
        | None -> ()
        | Some (m : Dynamic.Margin.t) ->
          Format.printf "margin %s: %.4f (max node utilization %.3f)@." label
            m.Dynamic.Margin.margin m.Dynamic.Margin.utilization
      in
      pp_margin "before" outcome.Dynamic.Replanner.margin_before;
      if outcome.Dynamic.Replanner.accepted then begin
        Format.printf
          "replan accepted: %d move(s) within budget %d, transfer cost %.3f s@."
          (List.length outcome.Dynamic.Replanner.moves)
          budget outcome.Dynamic.Replanner.cost;
        List.iter
          (fun (mv : Dynamic.Replanner.move) ->
            Format.printf "  move %s: node %d -> node %d@."
              (Query.Graph.op graph mv.Dynamic.Replanner.op).Query.Op.name
              mv.Dynamic.Replanner.from_node mv.Dynamic.Replanner.to_node)
          outcome.Dynamic.Replanner.moves;
        pp_margin "after" outcome.Dynamic.Replanner.margin_after;
        Format.printf "feasible-set ratio: %.4f -> %.4f@."
          outcome.Dynamic.Replanner.ratio_before
          outcome.Dynamic.Replanner.ratio_after;
        print_string (Deploy.describe deployment')
      end
      else
        Format.printf
          "replan rejected: no move set within budget %d improves the \
           placement at this rate point@."
          budget;
      export_obs metrics obs_trace prom;
      `Ok ()
    end
  in
  let term =
    Term.(
      ret
        (const run $ graph_arg $ inputs_arg $ ops_arg $ nodes_arg $ seed_arg
        $ samples_arg $ budget_arg $ rates_arg $ drift_arg $ metrics_arg
        $ obs_trace_arg $ prom_arg))
  in
  Cmd.v
    (Cmd.info "replan"
       ~doc:
         "Deploy a graph with ROD, then replan it online for an observed \
          rate point under a migration budget.")
    term

(* --- experiment --- *)

let experiment_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,--list-ids)).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller, faster sweeps.")
  in
  let run id quick metrics obs_trace prom =
    let result =
      match Experiments.Registry.find id with
      | Some e ->
        e.Experiments.Registry.run ~quick Format.std_formatter;
        `Ok ()
      | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; available: %s" id
              (String.concat ", " (Experiments.Registry.ids ())) )
    in
    export_obs metrics obs_trace prom;
    result
  in
  let term =
    Term.(
      ret
        (const run $ id_arg $ quick_arg $ metrics_arg $ obs_trace_arg
        $ prom_arg))
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one paper-reproduction experiment.")
    term

(* --- skew --- *)

let skew_cmd =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Smaller key stream and sample counts.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the machine-readable summary (rod-skew-summary/1).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the JSON summary to $(docv).")
  in
  let run quick json out metrics obs_trace prom =
    let summary =
      lazy (Experiments.Exp_skew.summary_json
              (Experiments.Exp_skew.analyze ~quick ()))
    in
    if json then print_string (Lazy.force summary)
    else Experiments.Exp_skew.run ~quick Format.std_formatter;
    Option.iter (fun path -> write_file path (Lazy.force summary)) out;
    export_obs metrics obs_trace prom
  in
  let term =
    Term.(
      const run $ quick_arg $ json_arg $ out_arg $ metrics_arg $ obs_trace_arg
      $ prom_arg)
  in
  Cmd.v
    (Cmd.info "skew"
       ~doc:
         "Profile a Zipf key stream with the rod.keyed sketches, split the \
          hot operator under each partitioner, and compare the feasible-set \
          ratios of the resulting ROD plans.")
    term

(* --- chaos --- *)

let chaos_cmd =
  let scenario_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"Scenario id (default: run every scenario).")
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List scenarios and exit.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs, fewer samples.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Chaos seed: fixes workload, schedule and both engines.")
  in
  let run_one quick seed s =
    let outcome = s.Chaos.Scenario.run ~quick ~seed () in
    Format.printf "@[<v>=== %s: %s@,%s@,@]" s.Chaos.Scenario.id
      s.Chaos.Scenario.name
      (Chaos.Scenario.describe outcome);
    Chaos.Oracle.passed outcome.Chaos.Scenario.verdict
  in
  let run list quick seed scenario metrics obs_trace prom =
    let result =
      if list then begin
        List.iter
          (fun s ->
            Format.printf "%-10s %s@." s.Chaos.Scenario.id s.Chaos.Scenario.name)
          Chaos.Scenario.all;
        `Ok ()
      end
      else
        match scenario with
        | Some id -> (
          match Chaos.Scenario.find id with
          | Some s -> if run_one quick seed s then `Ok () else `Error (false, "oracle checks failed")
          | None ->
            `Error
              ( false,
                Printf.sprintf "unknown scenario %S; available: %s" id
                  (String.concat ", "
                     (List.map (fun s -> s.Chaos.Scenario.id) Chaos.Scenario.all))
              ))
        | None ->
          let ok =
            List.fold_left
              (fun acc s -> run_one quick seed s && acc)
              true Chaos.Scenario.all
          in
          if ok then `Ok () else `Error (false, "oracle checks failed")
    in
    (* Telemetry is exported even when an oracle fails — a failing run
       is exactly the one whose trace is worth opening. *)
    export_obs metrics obs_trace prom;
    result
  in
  let term =
    Term.(
      ret
        (const run $ list_arg $ quick_arg $ chaos_seed_arg $ scenario_arg
        $ metrics_arg $ obs_trace_arg $ prom_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run seeded fault-injection scenarios and judge them with the \
          differential oracles.")
    term

let main_cmd =
  let doc = "Resilient Operator Distribution for distributed stream processing" in
  let info = Cmd.info "rod-cli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      place_cmd; volume_cmd; trace_cmd; simulate_cmd; sim_cmd; cluster_cmd;
      optimal_cmd; compile_cmd; analyze_cmd; failure_cmd; deploy_cmd;
      replan_cmd; experiment_cmd; skew_cmd; chaos_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
