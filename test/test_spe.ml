(* Tests of the semantic stream-processing engine: values, tuples,
   operator semantics in the executor, and the profiler bridge to the
   cost model. *)

module Graph = Query.Graph
module Value = Spe.Value
module Tuple = Spe.Tuple
module Sop = Spe.Sop
module Network = Spe.Network
module Executor = Spe.Executor

let approx eps = Alcotest.float eps

(* --- values and tuples --- *)

let test_value_conversions () =
  Alcotest.check (approx 1e-12) "int widens" 3. (Value.to_float (Value.Int 3));
  Alcotest.(check int) "float truncates" 3 (Value.to_int (Value.Float 3.9));
  Alcotest.(check string) "to_string" "abc" (Value.to_string (Value.Str "abc"));
  Alcotest.(check bool) "no numeric coercion in equal" false
    (Value.equal (Value.Int 1) (Value.Float 1.));
  Alcotest.(check bool) "numeric compare coerces" true
    (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "strings after numbers" true
    (Value.compare (Value.Str "a") (Value.Int 9) > 0)

let test_tuple_operations () =
  let t =
    Tuple.make ~ts:1.5 [ ("b", Value.Int 2); ("a", Value.Str "x") ]
  in
  Alcotest.(check (list string)) "fields sorted" [ "a"; "b" ] (Tuple.names t);
  Alcotest.check (approx 1e-12) "number" 2. (Tuple.number t "b");
  Alcotest.(check bool) "mem" true (Tuple.mem t "a");
  let t2 = Tuple.set t "c" (Value.Float 7.) in
  Alcotest.(check (list string)) "set adds" [ "a"; "b"; "c" ] (Tuple.names t2);
  let t3 = Tuple.project t2 [ "a"; "c" ] in
  Alcotest.(check (list string)) "project" [ "a"; "c" ] (Tuple.names t3);
  Alcotest.(check bool) "remove" false (Tuple.mem (Tuple.remove t "a") "a");
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Tuple.make: duplicate field \"a\"") (fun () ->
      ignore (Tuple.make ~ts:0. [ ("a", Value.Int 1); ("a", Value.Int 2) ]))

let test_tuple_merge () =
  let l = Tuple.make ~ts:1. [ ("k", Value.Int 1) ] in
  let r = Tuple.make ~ts:2. [ ("k", Value.Int 1); ("v", Value.Int 9) ] in
  let merged = Tuple.merge ~prefix_left:"l_" ~prefix_right:"r_" l r in
  Alcotest.check (approx 1e-12) "later timestamp wins" 2. (Tuple.ts merged);
  Alcotest.(check (list string)) "prefixed fields" [ "l_k"; "r_k"; "r_v" ]
    (Tuple.names merged)

(* --- executor semantics --- *)

let packet ~ts ~bytes ~proto =
  Tuple.make ~ts [ ("bytes", Value.Int bytes); ("proto", Value.Str proto) ]

let single_sink_outputs result = List.map snd result.Executor.outputs

let test_filter_and_counts () =
  let network =
    Network.create ~n_inputs:1
      ~ops:
        [
          ( Sop.filter (fun t -> Tuple.number t "bytes" > 100.),
            [ Graph.Sys_input 0 ] );
        ]
      ()
  in
  let inputs =
    [|
      [
        packet ~ts:0.1 ~bytes:50 ~proto:"tcp";
        packet ~ts:0.2 ~bytes:500 ~proto:"udp";
        packet ~ts:0.3 ~bytes:1500 ~proto:"tcp";
      ];
    |]
  in
  let result = Executor.run network ~inputs in
  Alcotest.(check int) "two pass" 2 (List.length result.Executor.outputs);
  let stat = result.Executor.stats.(0) in
  Alcotest.(check int) "consumed" 3 stat.Executor.consumed.(0);
  Alcotest.(check int) "emitted" 2 stat.Executor.emitted

let test_map_project_union () =
  let double t =
    Tuple.set t "bytes" (Value.Int (2 * Value.to_int (Tuple.find t "bytes")))
  in
  let network =
    Network.create ~n_inputs:2
      ~ops:
        [
          (Sop.map double, [ Graph.Sys_input 0 ]);
          (Sop.project [ "bytes" ], [ Graph.Sys_input 1 ]);
          (Sop.union ~arity:2 (), [ Graph.Op_output 0; Graph.Op_output 1 ]);
        ]
      ()
  in
  let inputs =
    [|
      [ packet ~ts:1. ~bytes:10 ~proto:"tcp" ];
      [ packet ~ts:2. ~bytes:7 ~proto:"udp" ];
    |]
  in
  let result = Executor.run network ~inputs in
  match single_sink_outputs result with
  | [ a; b ] ->
    Alcotest.check (approx 1e-12) "mapped doubled" 20. (Tuple.number a "bytes");
    Alcotest.(check bool) "projected dropped proto" false (Tuple.mem b "proto");
    Alcotest.check (approx 1e-12) "projection kept value" 7. (Tuple.number b "bytes")
  | other -> Alcotest.failf "expected 2 outputs, got %d" (List.length other)

let test_tumbling_aggregate () =
  let network =
    Network.create ~n_inputs:1
      ~ops:
        [
          ( Sop.aggregate ~window:10. ~group_by:"proto"
              [ ("n", Sop.Count); ("volume", Sop.Sum "bytes") ],
            [ Graph.Sys_input 0 ] );
        ]
      ()
  in
  let inputs =
    [|
      [
        packet ~ts:1. ~bytes:100 ~proto:"tcp";
        packet ~ts:2. ~bytes:200 ~proto:"tcp";
        packet ~ts:3. ~bytes:50 ~proto:"udp";
        (* window [10,20): triggers flush of [0,10) *)
        packet ~ts:12. ~bytes:70 ~proto:"tcp";
      ];
    |]
  in
  let result = Executor.run network ~inputs in
  let outputs = single_sink_outputs result in
  Alcotest.(check int) "two groups + final flush" 3 (List.length outputs);
  let find_group proto outs =
    List.find
      (fun t -> Value.to_string (Tuple.find t "group") = proto)
      outs
  in
  let first_window = List.filter (fun t -> Tuple.ts t = 10.) outputs in
  let tcp = find_group "tcp" first_window in
  Alcotest.check (approx 1e-12) "tcp count" 2. (Tuple.number tcp "n");
  Alcotest.check (approx 1e-12) "tcp volume" 300. (Tuple.number tcp "volume");
  let udp = find_group "udp" first_window in
  Alcotest.check (approx 1e-12) "udp count" 1. (Tuple.number udp "n");
  (* End-of-stream flush of the open [10,20) window. *)
  let last = find_group "tcp" (List.filter (fun t -> Tuple.ts t = 20.) outputs) in
  Alcotest.check (approx 1e-12) "flushed count" 1. (Tuple.number last "n")

let test_aggregate_functions () =
  let network =
    Network.create ~n_inputs:1
      ~ops:
        [
          ( Sop.aggregate ~window:100.
              [
                ("avg", Sop.Avg "bytes");
                ("max", Sop.Max "bytes");
                ("min", Sop.Min "bytes");
              ],
            [ Graph.Sys_input 0 ] );
        ]
      ()
  in
  let inputs =
    [|
      [
        packet ~ts:1. ~bytes:100 ~proto:"tcp";
        packet ~ts:2. ~bytes:300 ~proto:"tcp";
        packet ~ts:3. ~bytes:200 ~proto:"tcp";
      ];
    |]
  in
  let result = Executor.run network ~inputs in
  match single_sink_outputs result with
  | [ t ] ->
    Alcotest.check (approx 1e-12) "avg" 200. (Tuple.number t "avg");
    Alcotest.check (approx 1e-12) "max" 300. (Tuple.number t "max");
    Alcotest.check (approx 1e-12) "min" 100. (Tuple.number t "min");
    Alcotest.(check bool) "no group field without group_by" false
      (Tuple.mem t "group")
  | other -> Alcotest.failf "expected 1 output, got %d" (List.length other)

let test_sliding_window () =
  (* Window 4, slide 2, one tuple per second with value = its index:
     boundary 2 covers ts {0,1} (window [-2,2)); boundary 4 covers
     {0,1,2,3}; boundary 6 covers {2..5}; trailing flushes cover the
     rest. *)
  let network =
    Network.create ~n_inputs:1
      ~ops:
        [
          ( Sop.aggregate ~window:4. ~slide:2. [ ("s", Sop.Sum "v") ],
            [ Graph.Sys_input 0 ] );
        ]
      ()
  in
  let inputs =
    [|
      List.init 8 (fun i ->
          Tuple.make ~ts:(float_of_int i) [ ("v", Value.Int i) ]);
    |]
  in
  let result = Executor.run network ~inputs in
  let sums =
    List.map
      (fun (_, t) -> (Tuple.ts t, Tuple.number t "s"))
      result.Executor.outputs
  in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "overlapping sums"
    [
      (2., 1.) (* 0+1 *); (4., 6.) (* 0+1+2+3 *); (6., 14.) (* 2+3+4+5 *);
      (8., 22.) (* 4+5+6+7 *); (10., 13.) (* 6+7 *);
    ]
    sums

let test_sliding_window_gapped () =
  (* slide > window: sampled windows.  Window 1, slide 3: boundary 3
     covers ts in [2,3). *)
  let network =
    Network.create ~n_inputs:1
      ~ops:
        [
          ( Sop.aggregate ~window:1. ~slide:3. [ ("n", Sop.Count) ],
            [ Graph.Sys_input 0 ] );
        ]
      ()
  in
  let inputs =
    [| List.init 6 (fun i -> Tuple.make ~ts:(0.9 *. float_of_int i) [ ("v", Value.Int 1) ]) |]
  in
  (* ts: 0, .9, 1.8, 2.7, 3.6, 4.5.  Boundary 3 covers [2,3): {2.7};
     the tuples at 3.6 and 4.5 fall in the gap before [5,6) and are
     correctly never reported. *)
  let result = Executor.run network ~inputs in
  let counted =
    List.map
      (fun (_, t) -> (Tuple.ts t, Value.to_int (Tuple.find t "n")))
      result.Executor.outputs
  in
  Alcotest.(check (list (pair (float 1e-9) int))) "gapped windows"
    [ (3., 1) ]
    counted

let test_distinct_dedup () =
  let network =
    Network.create ~n_inputs:1
      ~ops:[ (Sop.distinct ~window:5. ~key:"proto" (), [ Graph.Sys_input 0 ]) ]
      ()
  in
  let inputs =
    [|
      [
        packet ~ts:0. ~bytes:1 ~proto:"tcp" (* emitted *);
        packet ~ts:1. ~bytes:2 ~proto:"tcp" (* suppressed *);
        packet ~ts:2. ~bytes:3 ~proto:"udp" (* emitted *);
        packet ~ts:4.9 ~bytes:4 ~proto:"tcp" (* suppressed *);
        packet ~ts:5.1 ~bytes:5 ~proto:"tcp" (* emitted: window over *);
        packet ~ts:6. ~bytes:6 ~proto:"tcp" (* suppressed: new horizon *);
      ];
    |]
  in
  let result = Executor.run network ~inputs in
  let bytes =
    List.map (fun (_, t) -> Value.to_int (Tuple.find t "bytes"))
      result.Executor.outputs
  in
  Alcotest.(check (list int)) "dedup kept the right tuples" [ 1; 3; 5 ] bytes

let trade ~ts ~symbol ~price =
  Tuple.make ~ts [ ("symbol", Value.Str symbol); ("price", Value.Float price) ]

let news ~ts ~symbol = Tuple.make ~ts [ ("symbol", Value.Str symbol) ]

let test_equi_join () =
  let network =
    Network.create ~n_inputs:2
      ~ops:
        [
          ( Sop.equi_join ~window:2. ~left_key:"symbol" ~right_key:"symbol" (),
            [ Graph.Sys_input 0; Graph.Sys_input 1 ] );
        ]
      ()
  in
  let inputs =
    [|
      [ trade ~ts:1.0 ~symbol:"ACME" ~price:10.
      ; trade ~ts:1.2 ~symbol:"GLOBO" ~price:20.
      ; trade ~ts:5.0 ~symbol:"ACME" ~price:11. ];
      [ news ~ts:1.5 ~symbol:"ACME" ];
    |]
  in
  let result = Executor.run network ~inputs in
  (* Only the ts=1.0 ACME trade is within window/2 = 1 s of the news;
     the ts=5.0 trade is too late, GLOBO never matches. *)
  (match single_sink_outputs result with
  | [ t ] ->
    Alcotest.check (approx 1e-12) "join carries price" 10.
      (Tuple.number t "l_price");
    Alcotest.check (approx 1e-12) "output ts is later side" 1.5 (Tuple.ts t)
  | other -> Alcotest.failf "expected 1 join output, got %d" (List.length other));
  (* Candidate pairs: news probes {trade1.0, trade1.2} = 2; trade5.0
     probes an expired buffer = 0. *)
  Alcotest.(check int) "pairs examined" 2 result.Executor.stats.(0).Executor.pairs

let test_join_missing_key_fails () =
  let network =
    Network.create ~n_inputs:2
      ~ops:
        [
          ( Sop.equi_join ~window:2. ~left_key:"symbol" ~right_key:"nope" (),
            [ Graph.Sys_input 0; Graph.Sys_input 1 ] );
        ]
      ()
  in
  let inputs =
    [| [ trade ~ts:1. ~symbol:"A" ~price:1. ]; [ news ~ts:1.1 ~symbol:"A" ] |]
  in
  Alcotest.(check bool) "missing key raises" true
    (try
       ignore (Executor.run network ~inputs);
       false
     with Invalid_argument _ -> true)

let test_recorded_logs () =
  let network =
    Network.create ~n_inputs:1
      ~ops:[ (Sop.map (fun t -> t), [ Graph.Sys_input 0 ]) ]
      ()
  in
  let inputs = [| [ packet ~ts:1. ~bytes:1 ~proto:"tcp" ] |] in
  let result = Executor.run ~record:true network ~inputs in
  match result.Executor.recorded with
  | Some logs ->
    Alcotest.(check int) "one recorded tuple" 1 (List.length logs.(0))
  | None -> Alcotest.fail "expected recorded logs"

let test_network_validation () =
  Alcotest.(check bool) "join arity enforced" true
    (try
       ignore
         (Network.create ~n_inputs:1
            ~ops:
              [
                ( Sop.equi_join ~window:1. ~left_key:"k" ~right_key:"k" (),
                  [ Graph.Sys_input 0 ] );
              ]
            ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycles rejected" true
    (try
       ignore
         (Network.create ~n_inputs:1
            ~ops:
              [
                (Sop.map (fun t -> t), [ Graph.Op_output 1 ]);
                (Sop.map (fun t -> t), [ Graph.Op_output 0 ]);
              ]
            ());
       false
     with Invalid_argument _ -> true)

(* --- profiler --- *)

let sample_network () =
  Network.create ~n_inputs:1
    ~ops:
      [
        ( Sop.filter ~name:"big" (fun t -> Tuple.number t "bytes" > 100.),
          [ Graph.Sys_input 0 ] );
        ( Sop.aggregate ~name:"per-proto" ~window:5. ~group_by:"proto"
            [ ("n", Sop.Count) ],
          [ Graph.Op_output 0 ] );
      ]
    ()

let sample_inputs ~n =
  [|
    List.init n (fun i ->
        packet
          ~ts:(0.01 *. float_of_int i)
          ~bytes:(if i mod 2 = 0 then 50 else 500)
          ~proto:(if i mod 3 = 0 then "udp" else "tcp"));
  |]

let test_profiler_selectivities () =
  let result = Spe.Profiler.profile ~replays:3 (sample_network ()) ~inputs:(sample_inputs ~n:400) in
  let filter_profile = result.Spe.Profiler.per_op.(0) in
  Alcotest.check (approx 0.01) "filter selectivity = half" 0.5
    filter_profile.Spe.Profiler.selectivity;
  Alcotest.(check bool) "filter cost positive" true
    (filter_profile.Spe.Profiler.cost > 0.);
  (* The profiled graph reproduces the measured selectivity. *)
  let op0 = Query.Graph.op result.Spe.Profiler.graph 0 in
  let linear = Query.Op.linear_exn op0 in
  Alcotest.check (approx 0.01) "graph selectivity" 0.5
    linear.Query.Op.selectivities.(0)

let test_profiler_feeds_placement () =
  let result = Spe.Profiler.profile ~replays:2 (sample_network ()) ~inputs:(sample_inputs ~n:200) in
  let problem =
    Rod.Problem.of_graph result.Spe.Profiler.graph
      ~caps:(Rod.Problem.homogeneous_caps ~n:2 ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  Alcotest.(check int) "placement covers the network" 2 (Array.length assignment)

let test_profiler_join_pairs () =
  let network =
    Network.create ~n_inputs:2
      ~ops:
        [
          ( Sop.equi_join ~window:1. ~left_key:"symbol" ~right_key:"symbol" (),
            [ Graph.Sys_input 0; Graph.Sys_input 1 ] );
        ]
      ()
  in
  let inputs =
    [|
      List.init 100 (fun i -> trade ~ts:(0.1 *. float_of_int i) ~symbol:"A" ~price:1.);
      List.init 100 (fun i -> news ~ts:(0.1 *. float_of_int i +. 0.05) ~symbol:"A");
    |]
  in
  let result = Spe.Profiler.profile ~replays:2 network ~inputs in
  let p = result.Spe.Profiler.per_op.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "pairs counted (%d)" p.Spe.Profiler.pairs)
    true
    (p.Spe.Profiler.pairs > 500);
  (* Everything matches (same symbol): selectivity per pair = 1. *)
  Alcotest.check (approx 1e-9) "pair selectivity" 1. p.Spe.Profiler.selectivity

(* --- distributed semantic executor --- *)

let test_dist_executor_matches_logical () =
  (* Same network, same inputs: the distributed run must produce the
     same multiset of sink tuples as the logical executor (ordering may
     differ across nodes). *)
  let network = sample_network () in
  let inputs = sample_inputs ~n:300 in
  let logical = Executor.run network ~inputs in
  let distributed =
    Spe.Dist_executor.run ~network ~assignment:[| 0; 1 |]
      ~caps:(Linalg.Vec.of_list [ 1.; 1. ])
      ~cost:(fun _ _ -> 1e-6)
      ~inputs ~until:1e9 ()
  in
  (* The distributed engine does not flush open windows at the end, so
     compare against logical outputs with window-end ts <= last input. *)
  let logical_outputs =
    List.filter (fun (_, t) -> Tuple.ts t <= 3.) logical.Executor.outputs
  in
  let dist_outputs = distributed.Spe.Dist_executor.outputs in
  Alcotest.(check int) "same sink tuple count" (List.length logical_outputs)
    (List.length dist_outputs);
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool) "tuple present in distributed run" true
        (List.exists (fun (_, t') -> Tuple.equal t t') dist_outputs))
    logical_outputs

let test_dist_executor_utilization () =
  (* One filter of known cost at a known rate: utilization = cost*rate. *)
  let network =
    Network.create ~n_inputs:1
      ~ops:[ (Sop.filter (fun _ -> true), [ Graph.Sys_input 0 ]) ]
      ()
  in
  let inputs =
    [| Spe.Datagen.ticks ~rate:100. ~duration:30. (fun ts ->
           Tuple.make ~ts [ ("x", Value.Int 1) ]) |]
  in
  let result =
    Spe.Dist_executor.run ~network ~assignment:[| 0 |]
      ~caps:(Linalg.Vec.of_list [ 1. ])
      ~cost:(fun _ _ -> 2e-3)
      ~inputs ~until:30. ()
  in
  Alcotest.check (approx 0.01) "utilization = cost * rate" 0.2
    result.Spe.Dist_executor.utilization.(0);
  Alcotest.(check int) "all arrivals counted" 3000
    result.Spe.Dist_executor.arrivals;
  Alcotest.(check int) "no backlog" 0 result.Spe.Dist_executor.backlog

let test_dist_executor_join_pair_costing () =
  let network =
    Network.create ~n_inputs:2
      ~ops:
        [
          ( Sop.equi_join ~window:1. ~left_key:"k" ~right_key:"k" (),
            [ Graph.Sys_input 0; Graph.Sys_input 1 ] );
        ]
      ()
  in
  let stream offset =
    Spe.Datagen.ticks ~rate:50. ~duration:20. (fun ts ->
        Tuple.make ~ts:(ts +. offset) [ ("k", Value.Int 0) ])
  in
  let inputs = [| stream 0.; stream 1e-3 |] in
  let result =
    Spe.Dist_executor.run ~network ~assignment:[| 0 |]
      ~caps:(Linalg.Vec.of_list [ 1. ])
      ~cost:(fun _ _ -> 1e-5)
      ~inputs ~until:20. ()
  in
  (* Pair rate = window * r_l * r_r = 1 * 50 * 50 = 2500/s; at 1e-5 s
     per pair, utilization ~ 2.5%%... times two sides probing: the
     convention counts each pair once, so expect ~0.025. *)
  Alcotest.(check bool)
    (Printf.sprintf "join utilization %.4f near 0.025"
       result.Spe.Dist_executor.utilization.(0))
    true
    (abs_float (result.Spe.Dist_executor.utilization.(0) -. 0.025) < 0.01)

let test_datagen () =
  let rng = Random.State.make [| 5 |] in
  let trace = Workload.Trace.create ~dt:1. (Array.make 10 50.) in
  let packets = Spe.Datagen.packets ~rng ~trace () in
  Alcotest.(check bool)
    (Printf.sprintf "about 500 packets (%d)" (List.length packets))
    true
    (abs (List.length packets - 500) < 120);
  Alcotest.(check bool) "timestamps ascending" true
    (let rec ascending = function
       | a :: (b :: _ as rest) -> Tuple.ts a <= Tuple.ts b && ascending rest
       | _ -> true
     in
     ascending packets);
  let trades = Spe.Datagen.trades ~rng ~trace () in
  Alcotest.(check bool) "trades have positive prices" true
    (List.for_all (fun t -> Tuple.number t "price" > 0.) trades)

let test_datagen_rates () =
  (* Arrival counts must track the driving trace: expected count is
     sum(rate * dt); Poisson sd is sqrt(mean), allow 5 sigma. *)
  let trace = Workload.Trace.create ~dt:0.5 [| 40.; 120.; 80.; 0.; 200. |] in
  let expected = 0.5 *. (40. +. 120. +. 80. +. 0. +. 200.) in
  let check_count label count =
    Alcotest.(check bool)
      (Printf.sprintf "%s count %d within 5 sigma of %.0f" label count expected)
      true
      (abs_float (float_of_int count -. expected) <= 5. *. sqrt expected)
  in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      check_count
        (Printf.sprintf "packets seed %d" seed)
        (List.length (Spe.Datagen.packets ~rng ~trace ()));
      check_count
        (Printf.sprintf "trades seed %d" seed)
        (List.length (Spe.Datagen.trades ~rng ~trace ())))
    [ 1; 2; 3; 4; 5 ];
  (* Deterministic ticks pin exactly — and must round, not truncate:
     4.1 * 10. is 40.999..., and flooring it dropped the last tick. *)
  let count rate duration =
    List.length
      (Spe.Datagen.ticks ~rate ~duration (fun ts -> Tuple.make ~ts []))
  in
  Alcotest.(check int) "ticks exact" 500 (count 50. 10.);
  Alcotest.(check int) "ticks does not truncate 4.1 x 10" 41 (count 4.1 10.);
  Alcotest.(check int) "ticks rounds 0.35 x 10" 4 (count 0.35 10.)

(* --- properties --- *)

let tuple_stream_gen =
  QCheck.Gen.(
    let* n = 1 -- 60 in
    let* values = list_size (return n) (float_bound_inclusive 100.) in
    return
      (List.mapi
         (fun i v ->
           Tuple.make
             ~ts:(0.1 *. float_of_int i)
             [ ("v", Value.Float v); ("k", Value.Int (i mod 3)) ])
         values))

let prop_filter_matches_list_filter =
  QCheck.Test.make ~name:"executor filter = List.filter" ~count:60
    (QCheck.make QCheck.Gen.(pair tuple_stream_gen (float_bound_inclusive 100.)))
    (fun (tuples, threshold) ->
      let network =
        Network.create ~n_inputs:1
          ~ops:
            [
              ( Sop.filter (fun t -> Tuple.number t "v" <= threshold),
                [ Graph.Sys_input 0 ] );
            ]
          ()
      in
      let result = Executor.run network ~inputs:[| tuples |] in
      List.length result.Executor.outputs
      = List.length (List.filter (fun t -> Tuple.number t "v" <= threshold) tuples))

let prop_aggregate_count_partitions_input =
  QCheck.Test.make ~name:"aggregate counts partition the input" ~count:60
    (QCheck.make tuple_stream_gen) (fun tuples ->
      let network =
        Network.create ~n_inputs:1
          ~ops:
            [
              ( Sop.aggregate ~window:1. ~group_by:"k" [ ("n", Sop.Count) ],
                [ Graph.Sys_input 0 ] );
            ]
          ()
      in
      let result = Executor.run network ~inputs:[| tuples |] in
      let counted =
        List.fold_left
          (fun acc (_, t) -> acc + Value.to_int (Tuple.find t "n"))
          0 result.Executor.outputs
      in
      counted = List.length tuples)

let prop_join_counts_match_bruteforce =
  QCheck.Test.make ~name:"join outputs = brute-force pair count" ~count:40
    (QCheck.make QCheck.Gen.(pair tuple_stream_gen tuple_stream_gen))
    (fun (left, right) ->
      let window = 1.5 in
      let network =
        Network.create ~n_inputs:2
          ~ops:
            [
              ( Sop.equi_join ~window ~left_key:"k" ~right_key:"k" (),
                [ Graph.Sys_input 0; Graph.Sys_input 1 ] );
            ]
          ()
      in
      let result = Executor.run network ~inputs:[| left; right |] in
      let brute =
        List.fold_left
          (fun acc l ->
            acc
            + List.length
                (List.filter
                   (fun r ->
                     abs_float (Tuple.ts l -. Tuple.ts r) <= window /. 2.
                     && Value.equal (Tuple.find l "k") (Tuple.find r "k"))
                   right))
          0 left
      in
      List.length result.Executor.outputs = brute)

let prop_union_preserves_count =
  QCheck.Test.make ~name:"union preserves tuple count" ~count:40
    (QCheck.make QCheck.Gen.(pair tuple_stream_gen tuple_stream_gen))
    (fun (a, b) ->
      let network =
        Network.create ~n_inputs:2
          ~ops:
            [
              (Sop.union ~arity:2 (), [ Graph.Sys_input 0; Graph.Sys_input 1 ]);
            ]
          ()
      in
      let result = Executor.run network ~inputs:[| a; b |] in
      List.length result.Executor.outputs = List.length a + List.length b)

let suite =
  [
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
    QCheck_alcotest.to_alcotest prop_filter_matches_list_filter;
    QCheck_alcotest.to_alcotest prop_aggregate_count_partitions_input;
    QCheck_alcotest.to_alcotest prop_join_counts_match_bruteforce;
    QCheck_alcotest.to_alcotest prop_union_preserves_count;
    Alcotest.test_case "tuple operations" `Quick test_tuple_operations;
    Alcotest.test_case "tuple merge" `Quick test_tuple_merge;
    Alcotest.test_case "filter and counts" `Quick test_filter_and_counts;
    Alcotest.test_case "map/project/union" `Quick test_map_project_union;
    Alcotest.test_case "tumbling aggregate" `Quick test_tumbling_aggregate;
    Alcotest.test_case "aggregate functions" `Quick test_aggregate_functions;
    Alcotest.test_case "sliding window" `Quick test_sliding_window;
    Alcotest.test_case "gapped window" `Quick test_sliding_window_gapped;
    Alcotest.test_case "distinct dedup" `Quick test_distinct_dedup;
    Alcotest.test_case "equi-join" `Quick test_equi_join;
    Alcotest.test_case "join missing key fails" `Quick test_join_missing_key_fails;
    Alcotest.test_case "recorded logs" `Quick test_recorded_logs;
    Alcotest.test_case "network validation" `Quick test_network_validation;
    Alcotest.test_case "profiler selectivities" `Quick test_profiler_selectivities;
    Alcotest.test_case "profiler feeds placement" `Quick test_profiler_feeds_placement;
    Alcotest.test_case "profiler join pairs" `Quick test_profiler_join_pairs;
    Alcotest.test_case "dist executor matches logical" `Quick
      test_dist_executor_matches_logical;
    Alcotest.test_case "dist executor utilization" `Quick
      test_dist_executor_utilization;
    Alcotest.test_case "dist executor join costing" `Quick
      test_dist_executor_join_pair_costing;
    Alcotest.test_case "datagen" `Quick test_datagen;
    Alcotest.test_case "datagen tracks trace rates" `Quick test_datagen_rates;
  ]
