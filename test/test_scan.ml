(* Tests of the typedtree analyzer (Analysis.Scan): QCheck laws for the
   taint lattice and the summary solver, the allowlist path
   normalization it shares with rodlint, each pass exercised through
   in-memory typechecked sources, and the SARIF emitter. *)

module Scan = Analysis.Scan
module Lint = Analysis.Lint
module Sarif = Analysis.Sarif

(* --- taint lattice laws ------------------------------------------- *)

let taint_gen =
  QCheck.Gen.(
    map Scan.Taint.of_list
      (list_size (int_bound 6)
         (oneofl [ "Random.float"; "Sys.time"; "Unix.gettimeofday"; "Hashtbl.fold" ])))

let arb_taint =
  QCheck.make taint_gen ~print:(fun t ->
      String.concat "," (Scan.Taint.to_list t))

let prop_join_commutative =
  QCheck.Test.make ~name:"taint join commutative" ~count:200
    (QCheck.pair arb_taint arb_taint)
    (fun (a, b) -> Scan.Taint.equal (Scan.Taint.join a b) (Scan.Taint.join b a))

let prop_join_idempotent =
  QCheck.Test.make ~name:"taint join idempotent" ~count:200 arb_taint (fun a ->
      Scan.Taint.equal (Scan.Taint.join a a) a)

let prop_join_associative =
  QCheck.Test.make ~name:"taint join associative" ~count:200
    (QCheck.triple arb_taint arb_taint arb_taint)
    (fun (a, b, c) ->
      Scan.Taint.equal
        (Scan.Taint.join a (Scan.Taint.join b c))
        (Scan.Taint.join (Scan.Taint.join a b) c))

let prop_bottom_unit =
  QCheck.Test.make ~name:"taint bottom is unit" ~count:200 arb_taint (fun a ->
      Scan.Taint.equal (Scan.Taint.join a Scan.Taint.bottom) a
      && Scan.Taint.equal (Scan.Taint.join Scan.Taint.bottom a) a)

(* --- solver: order independence and a reachability model ----------- *)

(* Small random call graphs over a closed node universe. *)
let graph_gen =
  QCheck.Gen.(
    let node = map (Printf.sprintf "f%d") (int_bound 5) in
    let src = oneofl [ "Random.float"; "Sys.time" ] in
    list_size (int_range 1 10)
      (triple node (list_size (int_bound 2) src) (list_size (int_bound 3) node)))

let print_graph g =
  String.concat "; "
    (List.map
       (fun (n, srcs, callees) ->
         Printf.sprintf "%s <- [%s] calls [%s]" n (String.concat "," srcs)
           (String.concat "," callees))
       g)

let arb_graph = QCheck.make graph_gen ~print:print_graph

(* Shuffle deterministically from a seed list so the property needs no
   global Random state. *)
let permute keys g =
  let tagged = List.mapi (fun i x -> (List.nth keys (i mod List.length keys), i, x)) g in
  List.map (fun (_, _, x) -> x)
    (List.sort (fun (a, i, _) (b, j, _) -> if a <> b then compare a b else compare i j) tagged)

let prop_solve_order_independent =
  QCheck.Test.make ~name:"solve is order-independent" ~count:200
    (QCheck.pair arb_graph (QCheck.list_of_size (QCheck.Gen.return 7) QCheck.small_nat))
    (fun (g, keys) ->
      QCheck.assume (keys <> []);
      Scan.solve g = Scan.solve (permute keys g))

(* Reference model: a node's taint is the union of direct sources over
   every node reachable through the (merged) call graph. *)
let model_solve g =
  let module SMap = Map.Make (String) in
  let module SSet = Set.Make (String) in
  let merged =
    List.fold_left
      (fun acc (n, srcs, callees) ->
        let s0, c0 =
          match SMap.find_opt n acc with Some v -> v | None -> ([], [])
        in
        SMap.add n (s0 @ srcs, c0 @ callees) acc)
      SMap.empty g
  in
  let rec reach seen n =
    if SSet.mem n seen then seen
    else
      match SMap.find_opt n merged with
      | None -> seen
      | Some (_, callees) -> List.fold_left reach (SSet.add n seen) callees
  in
  SMap.bindings merged
  |> List.map (fun (n, _) ->
         let sources =
           SSet.fold
             (fun m acc ->
               match SMap.find_opt m merged with
               | Some (srcs, _) -> List.fold_left (fun a s -> SSet.add s a) acc srcs
               | None -> acc)
             (reach SSet.empty n) SSet.empty
         in
         (n, SSet.elements sources))

let prop_solve_matches_model =
  QCheck.Test.make ~name:"solve matches reachability model" ~count:200 arb_graph
    (fun g -> Scan.solve g = model_solve g)

(* --- allowlist path normalization (shared with rodlint) ------------ *)

let test_normalize_path () =
  Alcotest.(check string) "plain" "lib/a.ml" (Lint.normalize_path "lib/a.ml");
  Alcotest.(check string) "dot-slash" "lib/a.ml" (Lint.normalize_path "./lib/a.ml");
  Alcotest.(check string) "build-relative" "lib/a.ml"
    (Lint.normalize_path "_build/default/lib/a.ml");
  Alcotest.(check string) "stacked prefixes" "lib/a.ml"
    (Lint.normalize_path "./_build/default/./lib/a.ml");
  Alcotest.(check string) "infix untouched" "x/_build/default/lib/a.ml"
    (Lint.normalize_path "x/_build/default/lib/a.ml")

let test_allowlist_normalized_match () =
  let diag file = { Lint.file; line = 1; col = 0; rule = "det/taint"; message = "m" } in
  let allow = Filename.temp_file "rodscan" ".allow" in
  let oc = open_out allow in
  output_string oc "./lib/chaos/oracle.ml det # justified\n";
  close_out oc;
  let allowlist = Lint.load_allowlist allow in
  let kept, suppressed =
    Lint.split_allowed allowlist
      [ diag "_build/default/lib/chaos/oracle.ml"; diag "lib/other.ml" ]
  in
  Sys.remove allow;
  Alcotest.(check int) "suppressed across spellings" 1 (List.length suppressed);
  Alcotest.(check int) "kept" 1 (List.length kept);
  Alcotest.(check int) "no stale entries" 0
    (List.length (Lint.unused_entries allowlist))

(* --- the passes, via in-memory typechecked sources ----------------- *)

let rules_of diags = List.sort_uniq compare (List.map (fun d -> d.Lint.rule) diags)

let scan_source ?(filename = "fixture.ml") text =
  Scan.scan_units [ Scan.unit_of_source ~filename text ]

let det_marker = "(* " ^ Scan.deterministic_marker ^ " *)"
let hot_marker = "(* " ^ Lint.hot_marker ^ " *)"
let hatch why = "(* " ^ Scan.alloc_ok_marker ^ " " ^ why ^ " *)"

let test_det_direct () =
  let diags, _ =
    scan_source (det_marker ^ "\nlet draw () = Random.float 1.0\n")
  in
  Alcotest.(check (list string)) "direct Random flagged" [ "det/taint" ]
    (rules_of diags)

let test_det_chain () =
  (* The source is two hops from the marked function and never named
     there: only summary propagation can see it. *)
  let diags, _ =
    scan_source
      (det_marker
     ^ "\nlet noisy () = Sys.time ()\nlet mid () = noisy () +. 1.\nlet top () = mid () *. 2.\n")
  in
  Alcotest.(check (list string)) "chain flagged" [ "det/taint" ] (rules_of diags);
  Alcotest.(check bool) "top of chain reported" true
    (List.exists (fun d -> d.Lint.line = 4) diags)

let test_det_conforming () =
  let diags, _ =
    scan_source
      (det_marker
     ^ "\nlet draw st = Random.State.float st 1.0\nlet run ~seed = draw (Random.State.make [| seed |])\n")
  in
  Alcotest.(check (list string)) "seeded state is deterministic" []
    (rules_of diags)

let test_det_unmarked () =
  let diags, _ = scan_source "let draw () = Random.float 1.0\n" in
  Alcotest.(check (list string)) "unmarked module not flagged" []
    (rules_of diags)

(* A structurally Pool-shaped local module lets the race pass run
   against plain stdlib sources: matching is on the canonical
   [Pool.<fn>] suffix, exactly as with Parallel.Pool. *)
let fake_pool =
  "module Pool = struct\n\
  \  let parallel_for pool ~n f = ignore pool; f 0 n\n\
   end\n"

let test_race_captured_ref () =
  let diags, _ =
    scan_source
      (fake_pool
     ^ "let sum pool n =\n\
       \  let total = ref 0 in\n\
       \  Pool.parallel_for pool ~n (fun lo hi ->\n\
       \      for i = lo to hi - 1 do total := !total + i done);\n\
       \  !total\n")
  in
  Alcotest.(check (list string)) "captured ref flagged" [ "race/captured-ref" ]
    (rules_of diags)

let test_race_conforming () =
  let diags, _ =
    scan_source
      (fake_pool
     ^ "let squares pool n =\n\
       \  let out = Array.make n 0 in\n\
       \  let hits = Atomic.make 0 in\n\
       \  Pool.parallel_for pool ~n (fun lo hi ->\n\
       \      for i = lo to hi - 1 do out.(i) <- i * i; Atomic.incr hits done);\n\
       \  (out, Atomic.get hits)\n")
  in
  Alcotest.(check (list string)) "indexed writes and Atomic allowed" []
    (rules_of diags)

let test_alloc_literal () =
  let diags, _ =
    scan_source
      (hot_marker
     ^ "\nlet best xs =\n\
       \  let b = ref (-1, 0.) in\n\
       \  for i = 0 to Array.length xs - 1 do\n\
       \    if xs.(i) > snd !b then b := (i, xs.(i))\n\
       \  done;\n\
       \  !b\n")
  in
  Alcotest.(check (list string)) "tuple in hot loop flagged" [ "alloc/literal" ]
    (rules_of diags)

let test_alloc_hatch () =
  let diags, stats =
    scan_source
      (hot_marker
     ^ "\nlet trail xs =\n\
       \  let acc = ref [] in\n\
       \  for i = 0 to Array.length xs - 1 do\n\
       \    " ^ hatch "bounded diagnostic trail" ^ "\n\
       \    if xs.(i) > 0. then acc := i :: !acc\n\
       \  done;\n\
       \  !acc\n")
  in
  Alcotest.(check (list string)) "hatch suppresses the cons" [] (rules_of diags);
  Alcotest.(check int) "hatch counted as used" 1 stats.Scan.hatches_used

let test_alloc_unused_hatch () =
  let diags, _ =
    scan_source
      (hot_marker ^ "\n" ^ hatch "nothing here allocates" ^ "\nlet id x = x\n")
  in
  Alcotest.(check (list string)) "stale hatch is itself a finding"
    [ "alloc/unused-hatch" ] (rules_of diags)

let test_alloc_cold_module () =
  let diags, _ =
    scan_source
      "let best xs =\n\
      \  let b = ref (-1, 0.) in\n\
      \  for i = 0 to Array.length xs - 1 do\n\
      \    if xs.(i) > snd !b then b := (i, xs.(i))\n\
      \  done;\n\
      \  !b\n"
  in
  Alcotest.(check (list string)) "unmarked module may allocate" []
    (rules_of diags)

(* --- SARIF emitter ------------------------------------------------- *)

let test_sarif () =
  let out =
    Sarif.to_string ~tool:"rodscan"
      ~rules:[ Sarif.rule ~help_uri:"DESIGN.md#10" "det/taint" "taint description" ]
      [
        {
          Sarif.rule_id = "det/taint";
          level = "error";
          message = "a \"quoted\" message";
          file = Some "lib/a.ml";
          line = Some 3;
          col = Some 7;
        };
      ]
  in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains needle))
    [
      "\"version\": \"2.1.0\"";
      "\"ruleId\": \"det/taint\"";
      "\"helpUri\": \"DESIGN.md#10\"";
      "\"uri\": \"lib/a.ml\"";
      "\"startLine\": 3";
      "\"startColumn\": 8";
      "a \\\"quoted\\\" message";
    ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_join_commutative;
      prop_join_idempotent;
      prop_join_associative;
      prop_bottom_unit;
      prop_solve_order_independent;
      prop_solve_matches_model;
    ]
  @ [
      Alcotest.test_case "normalize_path" `Quick test_normalize_path;
      Alcotest.test_case "allowlist matches across path spellings" `Quick
        test_allowlist_normalized_match;
      Alcotest.test_case "det: direct source" `Quick test_det_direct;
      Alcotest.test_case "det: two-call chain" `Quick test_det_chain;
      Alcotest.test_case "det: seeded state conforms" `Quick test_det_conforming;
      Alcotest.test_case "det: unmarked module ignored" `Quick test_det_unmarked;
      Alcotest.test_case "race: captured ref" `Quick test_race_captured_ref;
      Alcotest.test_case "race: chunk-local conforms" `Quick test_race_conforming;
      Alcotest.test_case "alloc: literal in hot loop" `Quick test_alloc_literal;
      Alcotest.test_case "alloc: hatch suppresses and is counted" `Quick
        test_alloc_hatch;
      Alcotest.test_case "alloc: unused hatch reported" `Quick
        test_alloc_unused_hatch;
      Alcotest.test_case "alloc: cold module ignored" `Quick
        test_alloc_cold_module;
      Alcotest.test_case "sarif shape" `Quick test_sarif;
    ]
