(* Tests of the protocol typestate analyzer (Analysis.Proto): QCheck
   laws for the typestate lattice and its transfer function, every
   fixture under lint_fixtures/proto re-checked through in-memory
   typechecking (the same sources the rodproto --fixtures self-test
   compiles), cross-unit hatch resolution, and the allowlist
   error-reporting / --fix pruning shared by all three drivers. *)

module Proto = Analysis.Proto
module Scan = Analysis.Scan
module Lint = Analysis.Lint
module State = Analysis.Proto.State

(* --- typestate lattice laws ---------------------------------------- *)

let arb_state =
  QCheck.make
    (QCheck.Gen.oneofl State.all)
    ~print:State.to_string

let arb_event =
  QCheck.make
    (QCheck.Gen.oneofl State.events)
    ~print:State.event_to_string

let prop_join_commutative =
  QCheck.Test.make ~name:"state join commutative" ~count:200
    (QCheck.pair arb_state arb_state)
    (fun (a, b) -> State.equal (State.join a b) (State.join b a))

let prop_join_associative =
  QCheck.Test.make ~name:"state join associative" ~count:200
    (QCheck.triple arb_state arb_state arb_state)
    (fun (a, b, c) ->
      State.equal
        (State.join a (State.join b c))
        (State.join (State.join a b) c))

let prop_join_idempotent =
  QCheck.Test.make ~name:"state join idempotent" ~count:100 arb_state (fun a ->
      State.equal (State.join a a) a)

let prop_bot_unit =
  QCheck.Test.make ~name:"Bot is the join unit" ~count:100 arb_state (fun a ->
      State.equal (State.join a State.Bot) a
      && State.equal (State.join State.Bot a) a)

let prop_top_absorbing =
  QCheck.Test.make ~name:"Top absorbs" ~count:100 arb_state (fun a ->
      State.equal (State.join a State.Top) State.Top
      && State.equal (State.join State.Top a) State.Top)

let prop_leq_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:200
    (QCheck.triple arb_state arb_state arb_state)
    (fun (a, b, c) ->
      State.leq a a
      && ((not (State.leq a b && State.leq b a)) || State.equal a b)
      && ((not (State.leq a b && State.leq b c)) || State.leq a c))

let prop_transfer_monotone =
  QCheck.Test.make ~name:"transfer is monotone" ~count:400
    (QCheck.triple arb_event arb_state arb_state)
    (fun (ev, a, b) ->
      QCheck.assume (State.leq a b);
      State.leq (State.transfer ev a) (State.transfer ev b))

(* transfer sub-distributes over join: evaluating on the merged state
   can only lose precision, never invent it.  Full distributivity is
   false — see the witness test below. *)
let prop_transfer_subdistributive =
  QCheck.Test.make ~name:"transfer sub-distributes over join" ~count:400
    (QCheck.triple arb_event arb_state arb_state)
    (fun (ev, a, b) ->
      State.leq
        (State.join (State.transfer ev a) (State.transfer ev b))
        (State.transfer ev (State.join a b)))

let test_not_distributive () =
  (* Joining Resuming with Paused before the Resume loses which resume
     is legal: the merged state goes to Top while both branches resume
     to Running.  This is the precision the per-path walk keeps. *)
  let merged = State.transfer State.Resume (State.join State.Resuming State.Paused) in
  let split =
    State.join
      (State.transfer State.Resume State.Resuming)
      (State.transfer State.Resume State.Paused)
  in
  Alcotest.(check string) "merged loses" "Top" (State.to_string merged);
  Alcotest.(check string) "split keeps" "Running" (State.to_string split)

(* --- the fixtures, via in-memory typechecking ----------------------

   The same sources tools/rodproto --fixtures compiles through dune are
   re-checked here from Scan.unit_of_source, so a fixture regression
   fails dune runtest even when the @rodproto alias is not built.  The
   expected rule set is each fixture's own rodproto-expect comment;
   scan findings are unioned in exactly as the driver does (the
   aliasing fixture expects a race/* rule Scan owns). *)

let fixture_dir = "lint_fixtures/proto"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_units () =
  Sys.readdir fixture_dir |> Array.to_list |> List.sort String.compare
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.map (fun f ->
         let path = Filename.concat fixture_dir f in
         Scan.unit_of_source ~filename:path (read_file path))

let rules_of file diags =
  List.filter_map
    (fun (d : Lint.diag) -> if d.file = file then Some d.rule else None)
    diags
  |> List.sort_uniq compare

let test_fixtures () =
  let units = fixture_units () in
  Alcotest.(check bool) "fixtures present" true (List.length units >= 11);
  let proto_diags, stats = Proto.check_units units in
  let scan_diags, _ = Scan.scan_units units in
  let diags = proto_diags @ scan_diags in
  List.iter
    (fun (u : Scan.unit_info) ->
      let expected = List.sort_uniq compare (Proto.expect_of_unit u) in
      Alcotest.(check (list string))
        (Printf.sprintf "fixture %s" u.Scan.source)
        expected
        (rules_of u.Scan.source diags))
    units;
  Alcotest.(check bool) "conforming hatch used" true (stats.Proto.hatches_used >= 1)

let test_relevant () =
  let units = fixture_units () in
  let conforming =
    List.find
      (fun (u : Scan.unit_info) ->
        Filename.basename u.Scan.source = "proto_conforming.ml")
      units
  in
  Alcotest.(check bool) "protocol fixture is relevant" true
    (Proto.relevant conforming);
  let plain = Scan.unit_of_source ~filename:"plain.ml" "let x = 1\n" in
  Alcotest.(check bool) "unmarked unit is not" false (Proto.relevant plain)

(* --- cross-unit hatch resolution ----------------------------------- *)

let gate_unit =
  "module Plan_check = struct\n\
  \  let assert_ok ok = if not ok then invalid_arg \"plan\"\n\
   end\n\
   let admit () = Plan_check.assert_ok true\n"

let hatched_unit fn =
  Printf.sprintf
    "let assignment = Array.make 4 0 (* rodproto: role deployed-assignment \
     *)\n\
     let migrate op dest =\n\
    \  (* rodproto: gated-by %s — justified elsewhere *)\n\
    \  assignment.(op) <- dest\n"
    fn

let check_two_units fn =
  let a = Scan.unit_of_source ~filename:"gates.ml" gate_unit in
  let b = Scan.unit_of_source ~filename:"engine.ml" (hatched_unit fn) in
  let diags, _ = Proto.check_units [ a; b ] in
  List.sort_uniq compare (List.map (fun (d : Lint.diag) -> d.rule) diags)

let test_hatch_cross_unit () =
  Alcotest.(check (list string)) "hatch naming a real gate is clean" []
    (check_two_units "Gates.admit")

let test_hatch_unknown_fn () =
  Alcotest.(check (list string)) "hatch naming nothing goes stale"
    [ "proto/stale-gate" ]
    (check_two_units "Gates.no_such_function")

(* --- allowlist: all malformed lines in one failure, and pruning ---- *)

let test_allowlist_all_malformed () =
  let text = "lib/a.ml det # fine\nbroken\nlib/b.ml\nlib/c.ml race # fine\n" in
  match Lint.allowlist_of_string ~source:"t.allow" text with
  | _ -> Alcotest.fail "malformed allowlist accepted"
  | exception Failure msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec go i =
        i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "line 2 reported" true (contains "t.allow:2");
    Alcotest.(check bool) "line 3 reported too" true (contains "t.allow:3")

let test_allowlist_prune () =
  let text =
    "# header comment\n\
     lib/a.ml det # still needed\n\
     lib/gone.ml race # stale\n\
     \n\
     lib/b.ml hot # also stale\n"
  in
  let allowlist = Lint.allowlist_of_string ~source:"t.allow" text in
  let diag =
    { Lint.file = "lib/a.ml"; line = 1; col = 0; rule = "det/taint"; message = "m" }
  in
  let kept, suppressed = Lint.split_allowed allowlist [ diag ] in
  Alcotest.(check int) "suppressed" 1 (List.length suppressed);
  Alcotest.(check int) "kept" 0 (List.length kept);
  Alcotest.(check string) "stale lines dropped, rest untouched"
    "# header comment\nlib/a.ml det # still needed\n\n" (Lint.prune allowlist text)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_join_commutative;
      prop_join_associative;
      prop_join_idempotent;
      prop_bot_unit;
      prop_top_absorbing;
      prop_leq_order;
      prop_transfer_monotone;
      prop_transfer_subdistributive;
    ]
  @ [
      Alcotest.test_case "transfer/join distributivity fails (witness)" `Quick
        test_not_distributive;
      Alcotest.test_case "fixtures match their expectations" `Quick
        test_fixtures;
      Alcotest.test_case "relevance detection" `Quick test_relevant;
      Alcotest.test_case "hatch resolves across units" `Quick
        test_hatch_cross_unit;
      Alcotest.test_case "hatch naming nothing is stale" `Quick
        test_hatch_unknown_fn;
      Alcotest.test_case "allowlist reports every malformed line" `Quick
        test_allowlist_all_malformed;
      Alcotest.test_case "allowlist prune drops only stale entries" `Quick
        test_allowlist_prune;
    ]
