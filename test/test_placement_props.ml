(* QCheck property sweep across the placement stack: ROD's class-I
   invariant, equivariance under node relabeling, failure index
   arithmetic, and the volume estimator's monotonicity/scaling laws. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Plan = Rod.Plan

(* Random problems: strictly positive load coefficients (no all-zero
   column) over a few operators, rate variables and nodes.  Capacities
   are dyadic (k/4) and pairwise distinct, so capacity sums are exact in
   floating point (node-order independent) and argmax tie-breaks never
   depend on node numbering. *)
let instance_gen =
  QCheck.Gen.(
    let* m = 3 -- 10 in
    let* d = 2 -- 4 in
    let* n = 2 -- 5 in
    let* entries = array_size (return (m * d)) (float_range 0.05 1.) in
    let lo = Array.init m (fun j -> Array.sub entries (j * d) d) in
    let caps = Array.init n (fun i -> 1. +. (0.25 *. float_of_int (i + 1))) in
    return (lo, caps))

let print_instance (lo, caps) =
  Format.asprintf "lo = %a caps = %a" Mat.pp (Mat.of_arrays lo) Vec.pp caps

let arbitrary_instance = QCheck.make ~print:print_instance instance_gen

let problem_of (lo, caps) = Problem.create ~lo:(Mat.of_arrays lo) ~caps

(* --- ROD class-I invariant ---------------------------------------- *)

(* Replaying the decision log: a class-I move must leave every weight of
   the chosen node's row at or below 1 — that is the definition of
   class I (Theorem 2: such moves cannot shrink the feasible set). *)
let prop_class_one_weights =
  QCheck.Test.make ~name:"ROD class-I moves keep weights <= 1" ~count:100
    arbitrary_instance (fun inst ->
      let problem = problem_of inst in
      let n = Problem.n_nodes problem in
      let d = Problem.dim problem in
      let _, decisions = Rod.Rod_algorithm.place_traced problem in
      let l = Problem.total_coefficients problem in
      let c_total = Problem.total_capacity problem in
      let ln = Mat.zeros n d in
      List.for_all
        (fun dec ->
          let load = Problem.op_load problem dec.Rod.Rod_algorithm.op in
          let i = dec.Rod.Rod_algorithm.node in
          for k = 0 to d - 1 do
            Mat.set ln i k (Mat.get ln i k +. load.(k))
          done;
          (not dec.Rod.Rod_algorithm.class_one)
          || Array.for_all Fun.id
               (Array.init d (fun k ->
                    Mat.get ln i k /. l.(k)
                    /. (problem.Problem.caps.(i) /. c_total)
                    <= 1. +. 1e-9)))
        decisions)

(* --- equivariance under node relabeling --------------------------- *)

let permutation_gen n =
  QCheck.Gen.(
    let* keys = array_size (return n) (float_bound_inclusive 1.) in
    let tagged = Array.mapi (fun i k -> (k, i)) keys in
    Array.sort compare tagged;
    return (Array.map snd tagged))

let prop_relabel_equivariant =
  QCheck.Test.make ~name:"placement is equivariant under node relabeling"
    ~count:100
    (QCheck.make
       ~print:(fun (inst, _) -> print_instance inst)
       QCheck.Gen.(
         let* inst = instance_gen in
         let* perm = permutation_gen (Array.length (snd inst)) in
         return (inst, perm)))
    (fun ((lo, caps), perm) ->
      let n = Array.length caps in
      let problem = problem_of (lo, caps) in
      let a = Rod.Rod_algorithm.place problem in
      (* New node [i] takes old node [perm.(i)]'s capacity, so an
         operator on old node [v] must land on [inv.(v)]. *)
      let caps_p = Vec.init n (fun i -> caps.(perm.(i))) in
      let problem_p = problem_of (lo, caps_p) in
      let a_p = Rod.Rod_algorithm.place problem_p in
      let inv = Array.make n 0 in
      Array.iteri (fun i v -> inv.(v) <- i) perm;
      let expected = Array.map (fun v -> inv.(v)) a in
      let vol p asg = (Plan.volume_qmc ~samples:512 (Plan.make p asg)).Feasible.Volume.ratio in
      expected = a_p && Float.equal (vol problem a) (vol problem_p a_p))

(* --- failure index arithmetic ------------------------------------- *)

let prop_degraded_round_trip =
  QCheck.Test.make ~name:"degraded_problem index shift round-trips" ~count:100
    (QCheck.make
       ~print:(fun (inst, f) ->
         Printf.sprintf "%s failed=%d" (print_instance inst) f)
       QCheck.Gen.(
         let* inst = instance_gen in
         let* f = 0 -- (Array.length (snd inst) - 1) in
         return (inst, f)))
    (fun ((lo, caps), failed) ->
      let n = Array.length caps in
      QCheck.assume (n > 1);
      let problem = problem_of (lo, caps) in
      let degraded = Rod.Failure.degraded_problem problem ~failed in
      let live i = if i < failed then i else i + 1 in
      let compact i = if i < failed then i else i - 1 in
      Problem.n_nodes degraded = n - 1
      && Mat.equal ~eps:0. degraded.Problem.lo problem.Problem.lo
      && Array.for_all Fun.id
           (Array.init (n - 1) (fun c ->
                Float.equal degraded.Problem.caps.(c) caps.(live c)))
      && Array.for_all Fun.id
           (Array.init n (fun i ->
                i = failed
                || (live (compact i) = i
                   && Float.equal degraded.Problem.caps.(compact i) caps.(i)))))

(* --- volume estimator laws ---------------------------------------- *)

(* Growing capacities can only grow the feasible set; the QMC estimates
   may wiggle by a few standard errors. *)
let prop_volume_monotone_in_caps =
  QCheck.Test.make ~name:"feasible volume is monotone in capacities"
    ~count:60
    (QCheck.make
       ~print:(fun (inst, _) -> print_instance inst)
       QCheck.Gen.(
         let* inst = instance_gen in
         let* growth =
           array_size (return (Array.length (snd inst))) (float_range 0. 0.5)
         in
         return (inst, growth)))
    (fun ((lo, caps), growth) ->
      let samples = 2048 in
      let est p a = Plan.volume_qmc ~samples (Plan.make p a) in
      let problem = problem_of (lo, caps) in
      let a = Rod.Rod_algorithm.place problem in
      let bigger =
        problem_of (lo, Array.mapi (fun i c -> c +. growth.(i)) caps)
      in
      let e1 = est problem a and e2 = est bigger a in
      e2.Feasible.Volume.volume
      >= e1.Feasible.Volume.volume
         -. 5.
            *. ((e1.Feasible.Volume.std_error *. e1.Feasible.Volume.ideal_volume)
               +. (e2.Feasible.Volume.std_error *. e2.Feasible.Volume.ideal_volume))
      -. 1e-12)

(* Scaling every capacity by s scales the feasible set linearly in each
   axis: volume scales by s^d and the ratio against the (equally
   scaled) ideal simplex is unchanged up to borderline-sample flips. *)
let prop_volume_scales_as_s_pow_d =
  QCheck.Test.make ~name:"volume scales as s^d under capacity scaling"
    ~count:60
    (QCheck.make
       ~print:(fun (inst, s) ->
         Printf.sprintf "%s s=%g" (print_instance inst) s)
       QCheck.Gen.(
         let* inst = instance_gen in
         let* s = float_range 0.5 2. in
         return (inst, s)))
    (fun ((lo, caps), s) ->
      let samples = 2048 in
      let problem = problem_of (lo, caps) in
      let d = Problem.dim problem in
      let a = Rod.Rod_algorithm.place problem in
      let scaled = problem_of (lo, Array.map (fun c -> s *. c) caps) in
      let e1 = Plan.volume_qmc ~samples (Plan.make problem a) in
      let e2 = Plan.volume_qmc ~samples (Plan.make scaled a) in
      let r1 = e1.Feasible.Volume.ratio and r2 = e2.Feasible.Volume.ratio in
      abs_float (r1 -. r2) <= 0.01
      && abs_float (e2.Feasible.Volume.volume -. ((s ** float_of_int d) *. e1.Feasible.Volume.volume))
         <= 0.02 *. Float.max 1e-9 ((s ** float_of_int d) *. e1.Feasible.Volume.volume)
         +. 1e-12)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_class_one_weights;
      prop_relabel_equivariant;
      prop_degraded_round_trip;
      prop_volume_monotone_in_caps;
      prop_volume_scales_as_s_pow_d;
    ]
