(* Tests of the deployment façade. *)

module Vec = Linalg.Vec
module Tuple = Spe.Tuple
module Value = Spe.Value

let caps = Rod.Problem.homogeneous_caps ~n:3 ~cap:1.

let test_of_cost_model () =
  let graph = Query.Builder.traffic_monitoring ~n_links:3 in
  let d = Deploy.of_cost_model ~graph ~caps () in
  Alcotest.(check int) "assignment covers ops" (Query.Graph.n_ops graph)
    (Array.length (Deploy.assignment d));
  Alcotest.(check bool) "ratio in (0,1]" true (d.Deploy.ratio > 0. && d.Deploy.ratio <= 1.);
  (* Rosters partition the operator names. *)
  let roster_sizes =
    List.init 3 (fun node -> List.length (Deploy.node_roster d node))
  in
  Alcotest.(check int) "rosters partition" (Query.Graph.n_ops graph)
    (List.fold_left ( + ) 0 roster_sizes);
  let text = Deploy.describe d in
  Alcotest.(check bool) "describe mentions nodes" true
    (String.length text > 40)

let test_polish_never_hurts () =
  let graph = Query.Builder.financial_compliance ~n_rules:6 in
  let base = Deploy.of_cost_model ~samples:2048 ~graph ~caps () in
  let polished = Deploy.of_cost_model ~polish:true ~samples:2048 ~graph ~caps () in
  Alcotest.(check bool)
    (Printf.sprintf "polished %.3f >= base %.3f" polished.Deploy.ratio
       base.Deploy.ratio)
    true
    (polished.Deploy.ratio >= base.Deploy.ratio -. 1e-9)

let test_utilization_and_headroom () =
  let graph =
    Query.Builder.example1 ~c1:4e-3 ~c2:6e-3 ~c3:9e-3 ~c4:4e-3 ~s1:1. ~s3:0.5
  in
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:1. in
  let d = Deploy.of_cost_model ~graph ~caps () in
  let rates = Vec.of_list [ 10.; 10. ] in
  let u = Deploy.expected_utilization d ~rates in
  (* Total demand at (10,10) = 10*(10+11)*1e-3 = 0.21 across 2 nodes. *)
  Alcotest.(check bool) "utilizations positive and small" true
    (Vec.for_all (fun x -> x > 0. && x < 0.3) u);
  let h = Deploy.headroom d ~direction:(Vec.of_list [ 1.; 1. ]) in
  (* At scale h, the hottest node sits exactly at 1. *)
  let at_boundary = Deploy.expected_utilization d ~rates:(Vec.of_list [ h; h ]) in
  Alcotest.check (Alcotest.float 1e-6) "boundary utilization" 1.
    (Vec.max_elt at_boundary)

let test_headroom_nonlinear () =
  let graph = Query.Builder.example3 () in
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:100. in
  let d = Deploy.of_cost_model ~graph ~caps () in
  let h = Deploy.headroom d ~direction:(Vec.of_list [ 1.; 1. ]) in
  Alcotest.(check bool) "positive headroom" true (h > 0.);
  let u = Deploy.expected_utilization d ~rates:(Vec.of_list [ h; h ]) in
  Alcotest.(check bool)
    (Printf.sprintf "nonlinear boundary tight (%.4f)" (Vec.max_elt u))
    true
    (abs_float (Vec.max_elt u -. 1.) < 1e-6)

let test_of_network_profiles () =
  let network =
    Spe.Network.create ~n_inputs:1
      ~ops:
        [
          ( Spe.Sop.filter (fun t -> Tuple.number t "v" > 0.5),
            [ Query.Graph.Sys_input 0 ] );
          ( Spe.Sop.aggregate ~window:1. [ ("n", Spe.Sop.Count) ],
            [ Query.Graph.Op_output 0 ] );
        ]
      ()
  in
  let sample =
    [|
      List.init 500 (fun i ->
          Tuple.make
            ~ts:(0.01 *. float_of_int i)
            [ ("v", Value.Float (float_of_int (i mod 10) /. 10.)) ]);
    |]
  in
  let d = Deploy.of_network ~replays:2 ~network ~sample ~caps () in
  Alcotest.(check bool) "profile attached" true (d.Deploy.profile <> None);
  Alcotest.(check bool) "network attached" true (d.Deploy.network <> None);
  (* Profiled selectivity of the filter is 0.4 (v in {0.6 .. 0.9}). *)
  match d.Deploy.profile with
  | Some p ->
    Alcotest.check (Alcotest.float 0.01) "measured selectivity" 0.4
      p.Spe.Profiler.per_op.(0).Spe.Profiler.selectivity
  | None -> Alcotest.fail "no profile"

let test_of_query_file () =
  let path = Filename.temp_file "deploy" ".rql" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "stream s (v: int);\nnode big = filter s where v > 10;\noutput big;\n";
      close_out oc;
      let sample =
        [|
          List.init 200 (fun i ->
              Tuple.make ~ts:(0.05 *. float_of_int i) [ ("v", Value.Int (i mod 20)) ]);
        |]
      in
      match Deploy.of_query_file ~replays:2 ~path ~sample ~caps () with
      | Error e -> Alcotest.failf "deploy failed: %s" e
      | Ok d ->
        Alcotest.(check int) "one operator" 1 (Array.length (Deploy.assignment d)));
  (* And a broken file reports an error, not an exception. *)
  let bad = Filename.temp_file "deploy" ".rql" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "stream s (v: int);\nnode x = filter s where;\n";
      close_out oc;
      match
        Deploy.of_query_file ~path:bad ~sample:[| [] |] ~caps ()
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected an error")

let test_save_artifacts () =
  let graph = Query.Builder.example2 () in
  (* Example 2's operator costs reach 9 load per unit rate; nodes must
     be able to host that or the static-analysis gate rejects the
     deployment before anything is saved. *)
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:10. in
  let d = Deploy.of_cost_model ~graph ~caps () in
  let dir = Filename.temp_file "deploydir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      Deploy.save d ~dir;
      let files = Sys.readdir dir in
      Array.sort compare files;
      Alcotest.(check (array string)) "artifacts written"
        [| "graph.rodgraph"; "plan.dot"; "plan.rodplan" |]
        files;
      (* The saved pair reloads into the same plan. *)
      let graph' = Query.Graph_io.load ~path:(Filename.concat dir "graph.rodgraph") in
      let plan' =
        Query.Graph_io.load_assignment ~path:(Filename.concat dir "plan.rodplan")
      in
      Alcotest.(check int) "graph reloads" (Query.Graph.n_ops graph)
        (Query.Graph.n_ops graph');
      Alcotest.(check (array int)) "plan reloads" (Deploy.assignment d) plan')

let suite =
  [
    Alcotest.test_case "of_cost_model" `Quick test_of_cost_model;
    Alcotest.test_case "polish never hurts" `Quick test_polish_never_hurts;
    Alcotest.test_case "utilization and headroom" `Quick
      test_utilization_and_headroom;
    Alcotest.test_case "headroom nonlinear" `Quick test_headroom_nonlinear;
    Alcotest.test_case "of_network profiles" `Quick test_of_network_profiles;
    Alcotest.test_case "of_query_file" `Quick test_of_query_file;
    Alcotest.test_case "save artifacts" `Quick test_save_artifacts;
  ]
