(* Tests of the calibration loop and the dynamic-migration machinery
   added on top of the base engine. *)

module Vec = Linalg.Vec
module Trace = Workload.Trace
module Generators = Workload.Generators
module Engine = Dsim.Engine
module Sim_metrics = Dsim.Sim_metrics
module Calibrate = Dsim.Calibrate

let approx eps = Alcotest.float eps

(* --- calibration --- *)

let test_calibrate_recovers_parameters () =
  let graph =
    Query.Graph.create ~n_inputs:1
      ~ops:
        [
          (Query.Op.filter ~cost:2e-3 ~sel:0.5 (), [ Query.Graph.Sys_input 0 ]);
          (Query.Op.map ~cost:1e-3 (), [ Query.Graph.Op_output 0 ]);
        ]
      ()
  in
  let estimates =
    Calibrate.measure ~seed:3 ~duration:60. ~graph ~n_nodes:2
      ~rates:(Vec.of_list [ 100. ])
      ()
  in
  Alcotest.check (approx 1e-6) "cost of op 0 exact" 2e-3 estimates.(0).Calibrate.costs.(0);
  Alcotest.check (approx 0.05) "selectivity of op 0 near 0.5" 0.5
    estimates.(0).Calibrate.selectivities.(0);
  Alcotest.check (approx 1e-6) "cost of op 1 exact" 1e-3 estimates.(1).Calibrate.costs.(0);
  Alcotest.(check bool) "support recorded" true (estimates.(0).Calibrate.support > 1000)

let test_calibrate_join_parameters () =
  let graph =
    Query.Graph.create ~n_inputs:2
      ~ops:
        [
          ( Query.Op.join ~window:0.4 ~cost_per_pair:5e-5 ~sel:0.3 (),
            [ Query.Graph.Sys_input 0; Query.Graph.Sys_input 1 ] );
        ]
      ()
  in
  let estimates =
    Calibrate.measure ~seed:5 ~duration:40. ~graph ~n_nodes:1
      ~rates:(Vec.of_list [ 30.; 30. ])
      ()
  in
  let e = estimates.(0) in
  Alcotest.check (approx 1e-9) "cost per pair exact" 5e-5
    (Option.get e.Calibrate.cost_per_pair);
  Alcotest.check (approx 0.05) "pair selectivity near 0.3" 0.3
    (Option.get e.Calibrate.sel_per_pair);
  Alcotest.(check bool) "pairs observed" true (e.Calibrate.support > 1000)

let test_estimated_graph_roundtrip () =
  let rng = Random.State.make [| 17 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:6 in
  let problem_true =
    Rod.Problem.of_graph graph ~caps:(Rod.Problem.homogeneous_caps ~n:3 ~cap:1.)
  in
  let l = Rod.Problem.total_coefficients problem_true in
  let c_total = Rod.Problem.total_capacity problem_true in
  let rates = Vec.init 2 (fun k -> 0.4 *. c_total /. (2. *. l.(k))) in
  let estimates = Calibrate.measure ~seed:9 ~duration:40. ~graph ~n_nodes:3 ~rates () in
  let err = Calibrate.max_relative_error graph estimates in
  Alcotest.(check bool)
    (Printf.sprintf "max parameter error %.1f%% below 15%%" (100. *. err))
    true (err < 0.15);
  (* The estimated graph has the same structure and a close load model. *)
  let estimated = Calibrate.estimated_graph graph estimates in
  Alcotest.(check int) "same op count" (Query.Graph.n_ops graph)
    (Query.Graph.n_ops estimated);
  let l_est =
    Rod.Problem.total_coefficients
      (Rod.Problem.of_graph estimated
         ~caps:(Rod.Problem.homogeneous_caps ~n:3 ~cap:1.))
  in
  for k = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "column %d within 15%%" k)
      true
      (abs_float (l_est.(k) -. l.(k)) /. l.(k) < 0.15)
  done

let test_calibrate_keeps_unobserved_params () =
  (* Zero input rate: nothing flows, estimates fall back to configured
     values. *)
  let graph = Query.Builder.chain ~n_ops:2 ~cost:3e-3 ~sel:0.7 () in
  let estimates =
    Calibrate.measure ~seed:1 ~duration:5. ~graph ~n_nodes:1
      ~rates:(Vec.of_list [ 0. ])
      ()
  in
  Alcotest.check (approx 1e-12) "cost kept" 3e-3 estimates.(0).Calibrate.costs.(0);
  Alcotest.check (approx 1e-12) "selectivity kept" 0.7
    estimates.(0).Calibrate.selectivities.(0);
  Alcotest.(check int) "no support" 0 estimates.(0).Calibrate.support

(* --- dynamic migration --- *)

let run_with_dynamic ~dynamic ~rate ~duration graph assignment caps =
  let arrivals =
    Array.map
      (fun r ->
        Generators.deterministic_arrivals
          ~trace:(Trace.create ~dt:duration [| r |]))
      rate
  in
  Engine.run ~graph ~assignment ~caps ~arrivals
    ~config:{ Engine.default_config with warmup = 0. }
    ?dynamic ~until:duration ()

let test_balancer_fixes_skewed_plan () =
  (* Two independent streams, all operators piled on node 0: the
     balancer must move work to node 1 and the run must end balanced. *)
  let graph =
    Query.Graph.create ~n_inputs:2
      ~ops:
        [
          (Query.Op.map ~name:"a" ~cost:4e-3 (), [ Query.Graph.Sys_input 0 ]);
          (Query.Op.map ~name:"b" ~cost:4e-3 (), [ Query.Graph.Sys_input 1 ]);
        ]
      ()
  in
  let caps = Vec.of_list [ 1.; 1. ] in
  let skewed = [| 0; 0 |] in
  let rate = [| 100.; 100. |] in
  let static = run_with_dynamic ~dynamic:None ~rate ~duration:30. graph skewed caps in
  let dynamic =
    run_with_dynamic
      ~dynamic:(Some (Dsim.Dynamic.config ~interval:1. ~migration_delay:0.1 ()))
      ~rate ~duration:30. graph skewed caps
  in
  Alcotest.(check int) "static plan never migrates" 0
    static.Sim_metrics.migrations;
  Alcotest.(check bool) "balancer migrated at least once" true
    (dynamic.Sim_metrics.migrations >= 1);
  (* Static: node 0 carries 0.8 utilization, node 1 idle.  Dynamic:
     roughly 0.4 / 0.4 after the first control period. *)
  Alcotest.check (approx 0.02) "static node 1 idle" 0.
    static.Sim_metrics.utilization.(1);
  Alcotest.(check bool)
    (Printf.sprintf "dynamic run balanced (node1 util %.2f)"
       dynamic.Sim_metrics.utilization.(1))
    true
    (dynamic.Sim_metrics.utilization.(1) > 0.3)

let test_migration_pause_queues_work () =
  (* A single overloaded-into-migration operator: during the pause no
     tuple is lost — conservation still holds at the end. *)
  let graph = Query.Builder.chain ~n_ops:1 ~cost:6e-3 ~sel:1. () in
  let caps = Vec.of_list [ 1.; 1. ] in
  let dynamic =
    Some
      {
        Engine.interval = 2.;
        migration_delay = 0.5;
        drain_delay = 0.05;
        state_delay = (fun _ -> 0.);
        decide =
          (fun ~time ~utilization:_ ~op_cpu:_ ~rates:_ ~assignment ->
            (* Force a ping-pong migration every tick. *)
            ignore time;
            [ (0, 1 - assignment.(0)) ]);
      }
  in
  let m = run_with_dynamic ~dynamic ~rate:[| 50. |] ~duration:20. graph [| 0 |] caps in
  Alcotest.(check bool) "several migrations happened" true
    (m.Sim_metrics.migrations >= 5);
  Alcotest.(check int) "conservation with migrations"
    m.Sim_metrics.arrivals
    (m.Sim_metrics.items_processed + m.Sim_metrics.backlog);
  (* Demand is 30% but migration pauses add delay: latency must exceed
     the no-migration service time, yet the system remains stable. *)
  Alcotest.(check bool) "stable despite pauses" true
    (m.Sim_metrics.backlog < 100)

let test_no_migration_below_threshold () =
  let graph = Query.Builder.chain ~n_ops:2 ~cost:1e-3 ~sel:1. () in
  let caps = Vec.of_list [ 1.; 1. ] in
  let dynamic = Some (Dsim.Dynamic.config ~imbalance_threshold:0.5 ()) in
  let m =
    run_with_dynamic ~dynamic ~rate:[| 100. |] ~duration:10. graph [| 0; 1 |] caps
  in
  Alcotest.(check int) "balanced plan stays put" 0 m.Sim_metrics.migrations

let test_balance_controller_pure () =
  let moves =
    Dsim.Dynamic.balance ~imbalance_threshold:0.1 ~max_moves_per_tick:2 ()
      ~time:0.
      ~utilization:[| 0.9; 0.1 |]
      ~op_cpu:[| 5.; 1.; 3. |]
      ~rates:[| 0. |]
      ~assignment:[| 0; 1; 0 |]
  in
  Alcotest.(check (list (pair int int))) "hottest ops move to coolest node"
    [ (0, 1); (2, 1) ] moves;
  let quiet =
    Dsim.Dynamic.balance ()
      ~time:0.
      ~utilization:[| 0.5; 0.45 |]
      ~op_cpu:[| 1. |]
      ~rates:[| 0. |]
      ~assignment:[| 0 |]
  in
  Alcotest.(check (list (pair int int))) "no move under threshold" [] quiet

let test_dynamic_with_shedding () =
  (* Overloaded node with both a migration controller and shedding:
     work must be conserved modulo drops, and the balancer must still
     spread the load. *)
  let graph =
    Query.Graph.create ~n_inputs:2
      ~ops:
        [
          (Query.Op.map ~name:"a" ~cost:8e-3 (), [ Query.Graph.Sys_input 0 ]);
          (Query.Op.map ~name:"b" ~cost:8e-3 (), [ Query.Graph.Sys_input 1 ]);
        ]
      ()
  in
  let caps = Vec.of_list [ 1.; 1. ] in
  let arrivals =
    Array.make 2
      (Generators.deterministic_arrivals
         ~trace:(Trace.create ~dt:20. [| 100. |]))
  in
  let m =
    Engine.run ~graph ~assignment:[| 0; 0 |] ~caps ~arrivals
      ~config:{ Engine.default_config with shed_above = Some 50 }
      ~dynamic:(Dsim.Dynamic.config ~interval:1. ~migration_delay:0.1 ())
      ~until:20. ()
  in
  Alcotest.(check bool) "migrated" true (m.Sim_metrics.migrations >= 1);
  Alcotest.(check bool) "shed under overload" true (m.Sim_metrics.dropped > 0);
  Alcotest.(check int) "conservation with drops"
    m.Sim_metrics.arrivals
    (m.Sim_metrics.items_processed + m.Sim_metrics.backlog
   + m.Sim_metrics.dropped);
  (* After the migration both nodes should be pulling weight. *)
  Alcotest.(check bool) "second node active" true
    (m.Sim_metrics.utilization.(1) > 0.3)

let test_dist_executor_overload_backlog () =
  let network =
    Spe.Network.create ~n_inputs:1
      ~ops:[ (Spe.Sop.filter (fun _ -> true), [ Query.Graph.Sys_input 0 ]) ]
      ()
  in
  let inputs =
    [| Spe.Datagen.ticks ~rate:100. ~duration:10. (fun ts ->
           Spe.Tuple.make ~ts [ ("x", Spe.Value.Int 1) ]) |]
  in
  let result =
    Spe.Dist_executor.run ~network ~assignment:[| 0 |]
      ~caps:(Vec.of_list [ 1. ])
      ~cost:(fun _ _ -> 2e-2)
      ~inputs ~until:10. ()
  in
  (* Demand 2x capacity for 10 s: about half of 1000 tuples queued. *)
  Alcotest.(check bool)
    (Printf.sprintf "semantic engine backlogs too (%d)"
       result.Spe.Dist_executor.backlog)
    true
    (abs (result.Spe.Dist_executor.backlog - 500) < 60);
  Alcotest.(check bool) "saturated" true
    (result.Spe.Dist_executor.utilization.(0) > 0.99)

let suite =
  [
    Alcotest.test_case "calibrate recovers parameters" `Quick
      test_calibrate_recovers_parameters;
    Alcotest.test_case "calibrate join parameters" `Quick
      test_calibrate_join_parameters;
    Alcotest.test_case "estimated graph roundtrip" `Quick
      test_estimated_graph_roundtrip;
    Alcotest.test_case "calibrate keeps unobserved params" `Quick
      test_calibrate_keeps_unobserved_params;
    Alcotest.test_case "balancer fixes skewed plan" `Quick
      test_balancer_fixes_skewed_plan;
    Alcotest.test_case "migration pause queues work" `Quick
      test_migration_pause_queues_work;
    Alcotest.test_case "no migration below threshold" `Quick
      test_no_migration_below_threshold;
    Alcotest.test_case "balance controller pure" `Quick
      test_balance_controller_pure;
    Alcotest.test_case "dynamic with shedding" `Quick test_dynamic_with_shedding;
    Alcotest.test_case "dist executor overload" `Quick
      test_dist_executor_overload_backlog;
  ]
