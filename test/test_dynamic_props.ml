(* Properties and pins of the rod.dynamic layer: the replanner's budget
   bound and acceptance gate, rollback identity on rejection, controller
   decision-log determinism across pool sizes and reruns (plus a golden
   fixture of the JSON log), and the drift-survival pin — the
   simulation where static ROD goes infeasible and the controller
   recovers a positive feasible-set margin within its move budget. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Margin = Dynamic.Margin
module Replanner = Dynamic.Replanner
module Controller = Dynamic.Controller

(* --- random instances --------------------------------------------- *)

(* Same family as test_placement_props: strictly positive coefficients,
   pairwise-distinct dyadic capacities (exact sums, no tie-break
   dependence on node numbering). *)
let instance_gen =
  QCheck.Gen.(
    let* m = 3 -- 10 in
    let* d = 2 -- 4 in
    let* n = 2 -- 5 in
    let* entries = array_size (return (m * d)) (float_range 0.05 1.) in
    let* rate_scale = float_range 0. 2. in
    let* budget = 0 -- 4 in
    let lo = Array.init m (fun j -> Array.sub entries (j * d) d) in
    let caps = Array.init n (fun i -> 1. +. (0.25 *. float_of_int (i + 1))) in
    return (lo, caps, rate_scale, budget))

let print_instance (lo, caps, rate_scale, budget) =
  Format.asprintf "lo = %a caps = %a rate_scale = %g budget = %d" Mat.pp
    (Mat.of_arrays lo) Vec.pp caps rate_scale budget

let arbitrary_instance = QCheck.make ~print:print_instance instance_gen

let problem_of (lo, caps) = Problem.create ~lo:(Mat.of_arrays lo) ~caps

(* A rate point stressing stream 0: at [rate_scale] ~ 1 the total load
   sits near capacity, so instances span comfortable, tight and
   infeasible regimes. *)
let stress_rates problem rate_scale =
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  Vec.init d (fun k ->
      let base = rate_scale *. c_total /. (float_of_int d *. l.(k)) in
      if k = 0 then 1.7 *. base else 0.8 *. base)

let replan_instance (lo, caps, rate_scale, budget) =
  let problem = problem_of (lo, caps) in
  let assignment = Rod.Rod_algorithm.place problem in
  let rates = stress_rates problem rate_scale in
  let cost_of j = 0.01 *. float_of_int (j mod 3) in
  let outcome =
    Replanner.replan ~samples:256 ~rates ~budget ~cost_of problem ~assignment
  in
  (problem, assignment, rates, budget, outcome)

(* --- replanner properties ----------------------------------------- *)

let prop_budget_respected =
  QCheck.Test.make ~name:"replanner never exceeds its budget" ~count:60
    arbitrary_instance (fun inst ->
      let problem, assignment, _, budget, o = replan_instance inst in
      let n = Problem.n_nodes problem in
      List.length o.Replanner.moves <= budget
      && List.for_all
           (fun (mv : Replanner.move) ->
             mv.Replanner.op >= 0
             && mv.Replanner.op < Problem.n_ops problem
             && mv.Replanner.to_node >= 0
             && mv.Replanner.to_node < n
             && mv.Replanner.to_node <> mv.Replanner.from_node)
           o.Replanner.moves
      &&
      (* The move list replays from the input assignment to the
         outcome's assignment. *)
      let replayed = Array.copy assignment in
      List.iter
        (fun (mv : Replanner.move) ->
          replayed.(mv.Replanner.op) <- mv.Replanner.to_node)
        o.Replanner.moves;
      replayed = o.Replanner.assignment)

let prop_accepted_never_worse =
  QCheck.Test.make
    ~name:"accepted replans never shrink ratio or margin; rejected ones \
           change nothing"
    ~count:60 arbitrary_instance (fun inst ->
      let _, assignment, _, _, o = replan_instance inst in
      if o.Replanner.accepted then
        o.Replanner.ratio_after >= o.Replanner.ratio_before
        && o.Replanner.moves <> []
        &&
        match (o.Replanner.margin_before, o.Replanner.margin_after) with
        | Some before, Some after ->
          after.Margin.margin >= before.Margin.margin
        | _ -> false
      else
        o.Replanner.moves = []
        && o.Replanner.assignment = assignment
        && o.Replanner.ratio_after = o.Replanner.ratio_before)

let prop_input_not_mutated =
  QCheck.Test.make ~name:"replan leaves the input assignment intact"
    ~count:40 arbitrary_instance (fun inst ->
      let (lo, caps, rate_scale, budget) = inst in
      let problem = problem_of (lo, caps) in
      let assignment = Rod.Rod_algorithm.place problem in
      let saved = Array.copy assignment in
      let _ =
        Replanner.replan ~samples:256
          ~rates:(stress_rates problem rate_scale)
          ~budget
          ~cost_of:(fun _ -> 0.)
          problem ~assignment
      in
      assignment = saved)

(* --- controller determinism --------------------------------------- *)

(* A fixed drifting control scenario, replayed through the controller's
   [observe] loop directly (the engine's tick loop does exactly this):
   stream 0 ramps until the margin erodes, accepted moves are applied
   back to the "engine" assignment. *)
let drift_problem () =
  let rng = Random.State.make [| 7207 |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:12
  in
  Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:4 ~cap:1.)

let controller_log ?pool () =
  let problem = drift_problem () in
  let assignment = Rod.Rod_algorithm.place problem in
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let ctl =
    Controller.create ?pool
      ~config:{ Controller.default_config with Controller.samples = 512 }
      ~cost_of:(fun j -> 0.01 *. float_of_int (j mod 3))
      problem ~assignment
  in
  let engine_view = Array.copy assignment in
  for t = 1 to 24 do
    let s = float_of_int t /. 24. in
    let rates =
      Vec.init d (fun k ->
          let base = 0.6 *. c_total /. (float_of_int d *. l.(k)) in
          if k = 0 then (1. +. (1.9 *. s)) *. base
          else (1. -. (0.85 *. s)) *. base)
    in
    let moves =
      Controller.observe ctl ~time:(float_of_int t) ~rates
        ~assignment:engine_view
    in
    List.iter (fun (op, dest) -> engine_view.(op) <- dest) moves
  done;
  Controller.decisions_json ctl

let test_controller_pool_independent () =
  let reference = controller_log () in
  Alcotest.(check string) "rerun is byte-identical" reference
    (controller_log ());
  List.iter
    (fun ways ->
      let pool = Parallel.Pool.create ways in
      let log = controller_log ~pool () in
      Parallel.Pool.shutdown pool;
      Alcotest.(check string)
        (Printf.sprintf "%d-domain pool is byte-identical" ways)
        reference log)
    [ 1; 2; 4 ]

(* --- golden decision log ------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let check_golden ~fixture actual =
  let path = Filename.concat "fixtures/dynamic" fixture in
  (* Mismatches land in the temp dir, never the CWD: running the test
     binary from the repo root must not litter the source tree with
     .actual files. *)
  let actual_path =
    Filename.concat (Filename.get_temp_dir_name ()) (fixture ^ ".actual")
  in
  let promote =
    Printf.sprintf "cp %s test/fixtures/dynamic/%s" actual_path fixture
  in
  if Sys.file_exists path then begin
    let expected = read_file path in
    if not (String.equal expected actual) then begin
      write_file actual_path actual;
      Alcotest.failf "golden mismatch for %s — inspect, then promote with: %s"
        fixture promote
    end
  end
  else begin
    write_file actual_path actual;
    Alcotest.failf "missing fixture %s — promote with: %s" fixture promote
  end

let test_golden_decision_log () =
  check_golden ~fixture:"decisions.json" (controller_log ())

(* --- drift survival ------------------------------------------------ *)

(* The PR's acceptance pin: the drifting-rate simulation where the
   static placement ends infeasible (negative modeled margin) while the
   controller-driven engine ends with positive margin, within budget.
   Mirrors experiment EXPREPLAN in quick mode. *)
let test_drift_survival () =
  let rng = Random.State.make [| 7207 |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:12
  in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:4 ~cap:1.)
  in
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let horizon = 48. in
  let n_steps = int_of_float horizon in
  let factor k t =
    let s = float_of_int t /. float_of_int (n_steps - 1) in
    if k = 0 then 1. +. (1.9 *. s) else 1. -. (0.85 *. s)
  in
  let mean_rate k = 0.6 *. c_total /. (float_of_int d *. l.(k)) in
  let traces =
    Array.init d (fun k ->
        Workload.Trace.create ~dt:1.
          (Array.init n_steps (fun t -> mean_rate k *. factor k t)))
  in
  let final_rates =
    Vec.init d (fun k -> mean_rate k *. factor k (n_steps - 1))
  in
  let assignment = Rod.Rod_algorithm.place problem in
  let static_margin = Margin.of_assignment problem ~assignment ~rates:final_rates in
  Alcotest.(check bool)
    (Printf.sprintf "static ROD ends infeasible (margin %.4f)"
       static_margin.Margin.margin)
    true
    (static_margin.Margin.margin < 0.);
  let config =
    { Controller.default_config with Controller.samples = 512; cooldown = 4. }
  in
  let ctl = Controller.create ~config problem ~assignment in
  let arrivals =
    Array.map
      (fun trace -> Workload.Generators.deterministic_arrivals ~trace)
      traces
  in
  let metrics =
    Dsim.Engine.run ~graph ~assignment ~caps:problem.Problem.caps ~arrivals
      ~config:{ Dsim.Engine.default_config with warmup = 2. }
      ~dynamic:(Controller.engine_config ctl)
      ~until:horizon ()
  in
  let recovered =
    Margin.of_assignment problem
      ~assignment:(Controller.assignment ctl)
      ~rates:final_rates
  in
  Alcotest.(check bool)
    (Printf.sprintf "controller recovers a positive margin (%.4f)"
       recovered.Margin.margin)
    true
    (recovered.Margin.margin > 0.);
  Alcotest.(check bool) "the engine actually migrated" true
    (metrics.Dsim.Sim_metrics.migrations > 0);
  (* Every accepted replan stays within the move budget. *)
  List.iter
    (fun (dec : Controller.decision) ->
      match dec.Controller.action with
      | Controller.Replanned o ->
        Alcotest.(check bool) "replan within budget" true
          (List.length o.Replanner.moves <= config.Controller.budget)
      | Controller.Rejected _ | Controller.Hold -> ())
    (Controller.decisions ctl)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_budget_respected; prop_accepted_never_worse; prop_input_not_mutated ]
  @ [
      Alcotest.test_case "controller log is pool-size independent" `Quick
        test_controller_pool_independent;
      Alcotest.test_case "golden controller decision log" `Quick
        test_golden_decision_log;
      Alcotest.test_case "drift survival under the controller" `Quick
        test_drift_survival;
    ]
