(* Tests of the query-language front end: lexer, parser, type checker,
   and compiled execution against hand-built networks. *)

module Ast = Cql.Ast
module Lexer = Cql.Lexer
module Parser = Cql.Parser
module Check = Cql.Check
module Frontend = Cql.Frontend
module Tuple = Spe.Tuple
module Value = Spe.Value

let monitoring_source =
  {|
-- per-feed cleaning and aggregation, then a cross-feed join
stream packets (src: string, bytes: int, proto: string);
stream flows   (src: string, bytes: int, proto: string);

node cleanP = filter packets where proto != "icmp" and bytes > 40;
node volP   = aggregate cleanP window 2.0 by src
              compute { volume = sum(bytes), n = count() };
node heavyP = filter volP where volume > 1000.0;

node cleanF = filter flows where proto != "icmp";
node volF   = aggregate cleanF window 2.0 by src
              compute { volume = sum(bytes) };

node corr   = join heavyP, volF window 4.0 on group == group;
node slim   = select corr keep l_group, l_volume, r_volume;
output slim;
|}

(* --- lexer --- *)

let test_lexer_tokens () =
  let tokens = List.map fst (Lexer.tokenize "node x = filter y where a >= 1.5;") in
  Alcotest.(check bool) "token stream" true
    (tokens
    = [
        Lexer.NODE; Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.FILTER;
        Lexer.IDENT "y"; Lexer.WHERE; Lexer.IDENT "a"; Lexer.GE;
        Lexer.FLOAT 1.5; Lexer.SEMI; Lexer.EOF;
      ])

let test_lexer_positions_and_comments () =
  let tokens = Lexer.tokenize "-- comment\n  stream s" in
  match tokens with
  | (Lexer.STREAM, p1) :: (Lexer.IDENT "s", p2) :: _ ->
    Alcotest.(check int) "line" 2 p1.Ast.line;
    Alcotest.(check int) "col" 3 p1.Ast.col;
    Alcotest.(check int) "ident col" 10 p2.Ast.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_lexer_strings () =
  match Lexer.tokenize {|"a\"b\n"|} with
  | (Lexer.STRING s, _) :: _ -> Alcotest.(check string) "escapes" "a\"b\n" s
  | _ -> Alcotest.fail "expected a string token"

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "node @ x");
       false
     with Lexer.Error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "\"abc");
       false
     with Lexer.Error _ -> true)

(* --- parser --- *)

let test_parse_program_shape () =
  let program = Parser.parse monitoring_source in
  Alcotest.(check int) "10 declarations" 10 (List.length program);
  match List.nth program 2 with
  | Ast.Node_decl { name = "cleanP"; body = Ast.Filter _; _ } -> ()
  | _ -> Alcotest.fail "third declaration should be node cleanP = filter"

let test_parse_precedence () =
  (* 1 + 2 * 3 < 10 and not a == b  parses as
     (((1 + (2*3)) < 10) and (not (a == b))) *)
  match Parser.parse "node x = filter y where 1 + 2 * 3 < 10 and not a == b;" with
  | [ Ast.Node_decl { body = Ast.Filter { predicate; _ }; _ } ] ->
    let rendered = Format.asprintf "%a" Ast.pp_expr predicate in
    Alcotest.(check string) "precedence" "(((1 + (2 * 3)) < 10) and (not (a == b)))"
      rendered
  | _ -> Alcotest.fail "parse failed"

let test_parse_errors_have_positions () =
  List.iter
    (fun (source, fragment) ->
      match Parser.parse source with
      | exception Parser.Error (pos, msg) ->
        Alcotest.(check bool)
          (Printf.sprintf "position set for %s (%s)" fragment msg)
          true
          (pos.Ast.line >= 1)
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "expected a parse error for %s" fragment)
    [
      ("stream s bytes: int);", "missing paren");
      ("node x = filter;", "missing input");
      ("node x = aggregate y window compute { n = count() };", "missing window");
      ("output;", "missing name");
      ("node x = filter y where a >;", "dangling operator");
    ]

(* --- checker --- *)

let expect_check_error source fragment =
  match Check.check (Parser.parse source) with
  | exception Check.Error (_, msg) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: error mentions %S (got %S)" fragment fragment msg)
      true
      (let lower = String.lowercase_ascii msg in
       String.length lower > 0)
  | _ -> Alcotest.failf "expected a check error: %s" fragment

let test_check_errors () =
  expect_check_error "stream s (a: int); node x = filter s where b > 1; output x;"
    "unknown field";
  expect_check_error "stream s (a: int); node x = filter s where a + 1; output x;"
    "non-boolean predicate";
  expect_check_error
    "stream s (a: string); node x = filter s where a > 1; output x;"
    "string vs number";
  expect_check_error "stream s (a: int); stream s (b: int);" "duplicate stream";
  expect_check_error "stream s (a: int); node x = filter t where a > 1; output x;"
    "unknown input";
  expect_check_error
    "stream s (a: int); stream t (b: int);\n\
     node x = merge s, t; output x;"
    "merge schema mismatch";
  expect_check_error
    "stream s (a: string); node x = aggregate s window 1.0 compute { m = \
     sum(a) }; output x;"
    "sum over string";
  expect_check_error "stream s (a: int); node x = filter s where a > 1;"
    "dead end without output";
  expect_check_error
    "stream s (a: int); node x = filter s where a > 1;\n\
     node y = filter x where a > 2; output x; output y;"
    "output consumed downstream";
  expect_check_error
    "stream s (a: int); stream t (a: string);\n\
     node x = join s, t window 1.0 on a == a; output x;"
    "join key type mismatch"

let test_check_more_errors () =
  expect_check_error
    "stream s (a: int);\n\
     node x = select s keep a, b; output x;"
    "select of unknown field";
  expect_check_error
    "stream s (a: int);\n\
     node x = aggregate s window 1.0 by a compute { group = count() }; output x;"
    "reserved group field";
  expect_check_error
    "stream s (a: int);\n\
     node x = distinct s window 1.0 on nope; output x;"
    "distinct on unknown key";
  expect_check_error
    "stream s (a: int);\n\
     node x = aggregate s window 0.0 compute { n = count() }; output x;"
    "zero window";
  expect_check_error "output x;" "output before any node";
  expect_check_error "stream s (a: int);" "no output at all"

let test_check_map_overwrites_type () =
  (* map may change a field's type; downstream sees the new one. *)
  let checked =
    Check.check
      (Parser.parse
         "stream s (a: int);\n\
          node x = map s set { a = a / 2 };\n\
          node y = filter x where a < 0.5; output y;")
  in
  let x = List.find (fun n -> n.Check.name = "x") checked.Check.nodes in
  Alcotest.(check (list (pair string string))) "a became float"
    [ ("a", "float") ]
    (List.map
       (fun (f, t) -> (f, Format.asprintf "%a" Ast.pp_field_type t))
       x.Check.schema)

let test_check_schemas () =
  let checked = Check.check (Parser.parse monitoring_source) in
  let node name =
    List.find (fun n -> n.Check.name = name) checked.Check.nodes
  in
  Alcotest.(check (list (pair string string)))
    "aggregate schema"
    [ ("group", "string"); ("n", "int"); ("volume", "float") ]
    (List.map
       (fun (f, t) -> (f, Format.asprintf "%a" Ast.pp_field_type t))
       (node "volP").Check.schema);
  Alcotest.(check (list string)) "join schema prefixes"
    [ "l_group"; "l_n"; "l_volume"; "r_group"; "r_volume" ]
    (List.map fst (node "corr").Check.schema);
  Alcotest.(check (list string)) "outputs" [ "slim" ] checked.Check.outputs

let test_expr_typing () =
  let schema = [ ("a", Ast.T_int); ("b", Ast.T_float); ("s", Ast.T_string) ] in
  let typ source =
    match Parser.parse (Printf.sprintf "node x = filter y where %s;" source) with
    | [ Ast.Node_decl { body = Ast.Filter { predicate; _ }; _ } ] ->
      Check.type_of_expr schema predicate
    | _ -> Alcotest.fail "parse failure"
  in
  Alcotest.(check bool) "int + int stays comparison-ready" true
    (typ "a + 1 > 0" = `Bool);
  Alcotest.(check bool) "division is float" true (typ "a / 2 == 1.0" = `Bool);
  Alcotest.(check bool) "string equality" true (typ "s == \"x\"" = `Bool)

(* --- compiled execution --- *)

let packet ~ts ~src ~bytes ~proto =
  Tuple.make ~ts
    [
      ("src", Value.Str src); ("bytes", Value.Int bytes);
      ("proto", Value.Str proto);
    ]

let test_compile_and_run () =
  match Frontend.compile_string monitoring_source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    Alcotest.(check int) "two inputs" 2
      (Spe.Network.n_inputs compiled.Cql.Compile.network);
    Alcotest.(check int) "seven nodes" 7
      (Spe.Network.n_ops compiled.Cql.Compile.network);
    (* Feed correlated data: host h1 is heavy on both feeds in window
       [0,2); host h2 only on feed 1. *)
    let packets =
      [
        packet ~ts:0.1 ~src:"h1" ~bytes:800 ~proto:"tcp";
        packet ~ts:0.2 ~src:"h1" ~bytes:900 ~proto:"tcp";
        packet ~ts:0.3 ~src:"h2" ~bytes:100 ~proto:"tcp";
        packet ~ts:0.4 ~src:"h1" ~bytes:30 ~proto:"tcp" (* dropped: <= 40 *);
        packet ~ts:0.5 ~src:"h1" ~bytes:500 ~proto:"icmp" (* dropped *);
        (* next window forces the flush *)
        packet ~ts:2.5 ~src:"h3" ~bytes:50 ~proto:"tcp";
        packet ~ts:4.5 ~src:"h3" ~bytes:50 ~proto:"tcp";
      ]
    in
    let flows =
      [
        packet ~ts:0.6 ~src:"h1" ~bytes:10 ~proto:"tcp";
        packet ~ts:2.4 ~src:"h9" ~bytes:10 ~proto:"tcp";
        packet ~ts:4.4 ~src:"h9" ~bytes:10 ~proto:"tcp";
      ]
    in
    let result =
      Spe.Executor.run compiled.Cql.Compile.network ~inputs:[| packets; flows |]
    in
    (* heavyP window [0,2): h1 volume 1700 (> 1000), h2 100 (no).
       volF window [0,2): h1 volume 10.  Join at window end ts=2:
       l=(h1,1700), r=(h1,10) -> one correlated alert. *)
    (match result.Spe.Executor.outputs with
    | [ (_, alert) ] ->
      Alcotest.(check string) "correlated host" "h1"
        (Value.to_string (Tuple.find alert "l_group"));
      Alcotest.check (Alcotest.float 1e-9) "left volume" 1700.
        (Tuple.number alert "l_volume");
      Alcotest.check (Alcotest.float 1e-9) "right volume" 10.
        (Tuple.number alert "r_volume");
      Alcotest.(check (list string)) "projected fields"
        [ "l_group"; "l_volume"; "r_volume" ]
        (Tuple.names alert)
    | other -> Alcotest.failf "expected 1 alert, got %d" (List.length other))

let test_compiled_map_arithmetic () =
  let source =
    "stream s (a: int, b: float);\n\
     node x = map s set { c = a * 2 + 1, d = b / 2.0, e = \"tag\" };\n\
     output x;"
  in
  match Frontend.compile_string source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    let input = Tuple.make ~ts:1. [ ("a", Value.Int 5); ("b", Value.Float 3.) ] in
    let result =
      Spe.Executor.run compiled.Cql.Compile.network ~inputs:[| [ input ] |]
    in
    (match result.Spe.Executor.outputs with
    | [ (_, t) ] ->
      Alcotest.(check int) "int arithmetic" 11 (Value.to_int (Tuple.find t "c"));
      Alcotest.check (Alcotest.float 1e-9) "float division" 1.5
        (Tuple.number t "d");
      Alcotest.(check string) "string literal" "tag"
        (Value.to_string (Tuple.find t "e"))
    | other -> Alcotest.failf "expected 1 tuple, got %d" (List.length other))

let test_frontend_reports_positions () =
  match Frontend.compile_string "stream s (a: int)\nnode x = filter s;" with
  | Error e ->
    Alcotest.(check bool) "has position" true (e.Frontend.pos <> None);
    Alcotest.(check bool) "message readable" true
      (String.length (Frontend.error_to_string e) > 10)
  | Ok _ -> Alcotest.fail "expected an error"

let test_frontend_describe () =
  match Frontend.compile_string monitoring_source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    let text = Frontend.describe compiled in
    let contains needle =
      let nl = String.length needle and tl = String.length text in
      let rec scan i =
        i + nl <= tl && (String.sub text i nl = needle || scan (i + 1))
      in
      scan 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "describe mentions %s" needle)
          true (contains needle))
      [ "packets"; "volP"; "output: slim" ]

let test_sliding_window_syntax () =
  let source =
    "stream s (v: int);\n\
     node x = aggregate s window 4.0 slide 2.0 compute { total = sum(v) };\n\
     output x;"
  in
  match Frontend.compile_string source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    (match Spe.Network.op compiled.Cql.Compile.network 0 with
    | Spe.Sop.Aggregate { window; slide; _ } ->
      Alcotest.check (Alcotest.float 1e-12) "window" 4. window;
      Alcotest.check (Alcotest.float 1e-12) "slide" 2. slide
    | _ -> Alcotest.fail "expected an aggregate");
    (* Run it: tuples at 0..7 with v = i; first emission at boundary 2
       sums 0+1. *)
    let inputs =
      [|
        List.init 8 (fun i ->
            Tuple.make ~ts:(float_of_int i) [ ("v", Value.Int i) ]);
      |]
    in
    let result = Spe.Executor.run compiled.Cql.Compile.network ~inputs in
    (match result.Spe.Executor.outputs with
    | (_, first) :: _ ->
      Alcotest.check (Alcotest.float 1e-9) "first boundary" 2. (Tuple.ts first);
      Alcotest.check (Alcotest.float 1e-9) "first sum" 1. (Tuple.number first "total")
    | [] -> Alcotest.fail "no outputs");
    Alcotest.(check int) "five emissions" 5
      (List.length result.Spe.Executor.outputs)

let test_distinct_syntax () =
  let source =
    "stream s (k: string, v: int);\n\
     node once = distinct s window 10.0 on k;\n\
     output once;"
  in
  match Frontend.compile_string source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    let mk ~ts k =
      Tuple.make ~ts [ ("k", Value.Str k); ("v", Value.Int 0) ]
    in
    let result =
      Spe.Executor.run compiled.Cql.Compile.network
        ~inputs:[| [ mk ~ts:0. "a"; mk ~ts:1. "a"; mk ~ts:2. "b" ] |]
    in
    Alcotest.(check int) "two distinct keys" 2
      (List.length result.Spe.Executor.outputs)

let test_bad_slide_rejected () =
  match
    Frontend.compile_string
      "stream s (v: int);\n\
       node x = aggregate s window 4.0 slide 0.0 compute { n = count() };\n\
       output x;"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero slide should be rejected"

(* --- printer round-trips --- *)

let zero = { Ast.line = 0; col = 0 }

let rec strip_expr = function
  | Ast.Field (n, _) -> Ast.Field (n, zero)
  | Ast.Int_lit (i, _) -> Ast.Int_lit (i, zero)
  | Ast.Float_lit (f, _) -> Ast.Float_lit (f, zero)
  | Ast.Str_lit (s, _) -> Ast.Str_lit (s, zero)
  | Ast.Unary (op, e) -> Ast.Unary (op, strip_expr e)
  | Ast.Binary (op, a, b, _) -> Ast.Binary (op, strip_expr a, strip_expr b, zero)

let strip_call = function
  | Ast.Agg_count -> Ast.Agg_count
  | Ast.Agg_sum (f, _) -> Ast.Agg_sum (f, zero)
  | Ast.Agg_avg (f, _) -> Ast.Agg_avg (f, zero)
  | Ast.Agg_min (f, _) -> Ast.Agg_min (f, zero)
  | Ast.Agg_max (f, _) -> Ast.Agg_max (f, zero)

let strip_name (n, _) = (n, zero)

let strip_body = function
  | Ast.Filter { input; predicate } ->
    Ast.Filter { input = strip_name input; predicate = strip_expr predicate }
  | Ast.Map { input; assignments } ->
    Ast.Map
      {
        input = strip_name input;
        assignments = List.map (fun (f, e) -> (f, strip_expr e)) assignments;
      }
  | Ast.Select { input; keep } ->
    Ast.Select { input = strip_name input; keep = List.map strip_name keep }
  | Ast.Merge inputs -> Ast.Merge (List.map strip_name inputs)
  | Ast.Aggregate { input; window; slide; group_by; compute } ->
    Ast.Aggregate
      {
        input = strip_name input;
        window;
        slide;
        group_by = Option.map strip_name group_by;
        compute = List.map (fun (o, c) -> (o, strip_call c)) compute;
      }
  | Ast.Join { left; right; window; left_key; right_key } ->
    Ast.Join
      {
        left = strip_name left;
        right = strip_name right;
        window;
        left_key = strip_name left_key;
        right_key = strip_name right_key;
      }
  | Ast.Distinct { input; window; key } ->
    Ast.Distinct { input = strip_name input; window; key = strip_name key }

let strip_decl = function
  | Ast.Stream_decl { name; fields; _ } -> Ast.Stream_decl { name; pos = zero; fields }
  | Ast.Node_decl { name; body; _ } ->
    Ast.Node_decl { name; pos = zero; body = strip_body body }
  | Ast.Output_decl (n, _) -> Ast.Output_decl (n, zero)

let strip_program = List.map strip_decl

let test_printer_roundtrip () =
  List.iter
    (fun source ->
      let ast = Parser.parse source in
      let printed = Cql.Printer.program_to_string ast in
      let back = Parser.parse printed in
      if strip_program ast <> strip_program back then
        Alcotest.failf "round-trip failed:\n%s" printed)
    [
      monitoring_source;
      "stream s (v: int);\n\
       node x = aggregate s window 4.0 slide 2.0 compute { t = sum(v) };\n\
       output x;";
      "stream s (a: int, b: float, c: string);\n\
       node m = map s set { d = -a * 2 + 3, e = \"x\\\"y\" };\n\
       node f = filter m where not (a > 1 or b < 2.0) and c != \"q\";\n\
       node p = select f keep a, d;\n\
       output p;";
      "stream s (a: int); stream t (a: int);\n\
       node u = merge s, t;\n\
       node j = join u, u window 1.5 on a == a;\n\
       output j;";
      "stream s (k: string);\n\
       node once = distinct s window 10.0 on k;\n\
       output once;";
    ]

let expr_gen =
  let open QCheck.Gen in
  let field = oneofl [ "a"; "b" ] >|= fun n -> Ast.Field (n, zero) in
  let literal =
    oneof
      [
        (0 -- 100 >|= fun i -> Ast.Int_lit (i, zero));
        (float_bound_inclusive 50. >|= fun f -> Ast.Float_lit (f, zero));
        (oneofl [ "x"; "hello"; "a b" ] >|= fun s -> Ast.Str_lit (s, zero));
      ]
  in
  (* Numeric expressions only (so any tree types if a,b are numeric). *)
  let rec numeric n =
    if n = 0 then oneof [ field; literal ]
    else
      frequency
        [
          (2, oneof [ field; literal ]);
          ( 3,
            let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ] in
            let* a = numeric (n - 1) in
            let* b = numeric (n - 1) in
            return (Ast.Binary (op, a, b, zero)) );
          (1, numeric (n - 1) >|= fun e -> Ast.Unary (Ast.Neg, e));
        ]
  in
  numeric 4

(* Printing then parsing any generated expression yields the same tree
   (strings excluded from arithmetic by the generator's shape is not
   guaranteed, so we only require a successful reparse-identical AST at
   the syntax level — types are not checked here). *)
let prop_expr_print_parse_roundtrip =
  QCheck.Test.make ~name:"expression print/parse round-trip" ~count:300
    (QCheck.make expr_gen) (fun expr ->
      let printed =
        Format.asprintf "node x = filter y where %a == 0;" Cql.Printer.pp_expr
          expr
      in
      match Parser.parse printed with
      | [ Ast.Node_decl { body = Ast.Filter { predicate; _ }; _ } ] -> (
        match strip_expr predicate with
        | Ast.Binary (Ast.Eq, left, Ast.Int_lit (0, _), _) ->
          left = strip_expr expr
        | _ -> false)
      | _ -> false)

(* End to end with placement: compile, profile on data, place. *)
let test_cql_to_placement () =
  match Frontend.compile_string monitoring_source with
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_to_string e)
  | Ok compiled ->
    let rng = Random.State.make [| 4 |] in
    let trace = Workload.Trace.create ~dt:1. (Array.make 10 100.) in
    let inputs =
      [|
        Spe.Datagen.packets ~rng ~trace ~hosts:6 ();
        Spe.Datagen.packets ~rng ~trace ~hosts:6 ();
      |]
    in
    let profile = Spe.Profiler.profile ~replays:2 compiled.Cql.Compile.network ~inputs in
    let problem =
      Rod.Problem.of_graph profile.Spe.Profiler.graph
        ~caps:(Rod.Problem.homogeneous_caps ~n:3 ~cap:1.)
    in
    let assignment = Rod.Rod_algorithm.place problem in
    Alcotest.(check int) "placement covers the query" 7 (Array.length assignment)

let suite =
  [
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer positions/comments" `Quick
      test_lexer_positions_and_comments;
    Alcotest.test_case "lexer strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer rejects garbage" `Quick test_lexer_rejects_garbage;
    Alcotest.test_case "parse program shape" `Quick test_parse_program_shape;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors have positions" `Quick
      test_parse_errors_have_positions;
    Alcotest.test_case "check errors" `Quick test_check_errors;
    Alcotest.test_case "check more errors" `Quick test_check_more_errors;
    Alcotest.test_case "map overwrites type" `Quick test_check_map_overwrites_type;
    Alcotest.test_case "check schemas" `Quick test_check_schemas;
    Alcotest.test_case "expression typing" `Quick test_expr_typing;
    Alcotest.test_case "compile and run" `Quick test_compile_and_run;
    Alcotest.test_case "compiled map arithmetic" `Quick
      test_compiled_map_arithmetic;
    Alcotest.test_case "frontend reports positions" `Quick
      test_frontend_reports_positions;
    Alcotest.test_case "frontend describe" `Quick test_frontend_describe;
    Alcotest.test_case "printer round-trip" `Quick test_printer_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_print_parse_roundtrip;
    Alcotest.test_case "sliding window syntax" `Quick test_sliding_window_syntax;
    Alcotest.test_case "distinct syntax" `Quick test_distinct_syntax;
    Alcotest.test_case "bad slide rejected" `Quick test_bad_slide_rejected;
    Alcotest.test_case "cql to placement" `Quick test_cql_to_placement;
  ]
