let () =
  Alcotest.run "rod"
    [
      ("linalg", Test_linalg.suite);
      ("parallel", Test_parallel.suite);
      ("query", Test_query.suite);
      ("workload", Test_workload.suite);
      ("feasible", Test_feasible.suite);
      ("rod", Test_rod.suite);
      ("baselines", Test_baselines.suite);
      ("sim", Test_sim.suite);
      ("integration", Test_integration.suite);
      ("dynamic", Test_dynamic.suite);
      ("dynamic_props", Test_dynamic_props.suite);
      ("graph_io", Test_graph_io.suite);
      ("spe", Test_spe.suite);
      ("placement_props", Test_placement_props.suite);
      ("ls_equiv", Test_ls_equiv.suite);
      ("chaos", Test_chaos.suite);
      ("experiments", Test_experiments.suite);
      ("cql", Test_cql.suite);
      ("deploy", Test_deploy.suite);
      ("analysis", Test_analysis.suite);
      ("scan", Test_scan.suite);
      ("proto", Test_proto.suite);
      ("units", Test_units.suite);
      ("obs", Test_obs.suite);
      ("keyed_props", Test_keyed_props.suite);
      ("benchdiff", Test_benchdiff.suite);
    ]
