(* Tests of the rod.obs observability layer: histogram bucket-edge
   semantics, registry discipline, golden snapshots of the three
   exporters (with a promotion path via .actual files), the double-run
   determinism pin over a real instrumented deployment, and QCheck
   properties of the instruments. *)

module Counter = Obs.Counter
module Gauge = Obs.Gauge
module Histogram = Obs.Histogram
module Registry = Obs.Registry

(* --- histogram bucket edges --- *)

let test_histogram_edges () =
  let h = Histogram.make [| 1.; 2.; 5. |] in
  List.iter (Histogram.observe h) [ 1.; 2.; 5.; 5.1; -3. ];
  (* Prometheus le semantics: a boundary value lands in the bucket it
     bounds; anything above the last bound goes to the +Inf bucket. *)
  Alcotest.(check (array int))
    "boundary values land in the bucket they bound" [| 2; 1; 1; 1 |]
    (Histogram.bucket_counts h);
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 10.1 (Histogram.sum h)

let test_histogram_empty () =
  let h = Histogram.make [| 1.; 2. |] in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "empty p50" 0. (Histogram.p50 h);
  Alcotest.(check (float 0.)) "empty p99" 0. (Histogram.p99 h);
  Alcotest.(check bool) "quantile outside [0,1] raises" true
    (match Histogram.quantile h 1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram_single () =
  (* A single sample interpolates inside its covering bucket... *)
  let h = Histogram.make [| 1.; 2.; 5. |] in
  Histogram.observe h 3.7;
  Alcotest.(check (float 1e-9)) "p50 is the midpoint of (2,5]" 3.5
    (Histogram.p50 h);
  (* ...in the first bucket the lower edge clamps to the observed
     minimum... *)
  let h = Histogram.make [| 1.; 2.; 5. |] in
  Histogram.observe h 0.5;
  Alcotest.(check (float 1e-9)) "first-bucket lo clamps to min" 0.75
    (Histogram.p50 h);
  (* ...and a sample in the overflow bucket reports the largest finite
     bound. *)
  let h = Histogram.make [| 1.; 2.; 5. |] in
  Histogram.observe h 100.;
  Alcotest.(check (float 1e-9)) "overflow clamps to last bound" 5.
    (Histogram.p50 h)

let test_histogram_validation () =
  let bad upper =
    match Histogram.make upper with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty bounds rejected" true (bad [||]);
  Alcotest.(check bool) "non-increasing bounds rejected" true (bad [| 1.; 1. |]);
  Alcotest.(check bool) "non-finite bound rejected" true
    (bad [| 1.; Float.infinity |]);
  Alcotest.(check bool) "merge with different bounds rejected" true
    (let a = Histogram.make [| 1.; 2. |] and b = Histogram.make [| 1.; 3. |] in
     match Histogram.merge_into ~into:a b with
     | () -> false
     | exception Invalid_argument _ -> true)

(* --- registry discipline --- *)

let test_registry_discipline () =
  let r = Registry.create () in
  (* Label order does not matter: both spellings are one instrument. *)
  let c1 = Registry.counter r ~labels:[ ("b", "2"); ("a", "1") ] "x_total" in
  let c2 = Registry.counter r ~labels:[ ("a", "1"); ("b", "2") ] "x_total" in
  Counter.incr c1;
  Counter.incr c2;
  Alcotest.(check int) "same instrument under label reorder" 2
    (Counter.value c1);
  Alcotest.(check int) "one registration" 1 (Registry.size r);
  Alcotest.(check bool) "kind mismatch raises" true
    (match Registry.gauge r ~labels:[ ("a", "1"); ("b", "2") ] "x_total" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "invalid metric name raises" true
    (match Registry.counter r "1bad" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "negative counter increment raises" true
    (match Counter.add c1 (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* Snapshots sort by name then labels, whatever the registration
     order. *)
  ignore (Registry.counter r "a_total");
  let names =
    List.map (fun s -> s.Obs.Metric.s_name) (Registry.snapshot r)
  in
  Alcotest.(check (list string)) "snapshot sorted" [ "a_total"; "x_total" ]
    names

(* --- golden exporter snapshots --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* A small registry covering every exporter branch: bare counter,
   labeled counter family, gauge, label-value escaping, histogram with
   an overflowing sample. *)
let golden_snapshot () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"Requests served" "rod_test_requests_total" in
  Counter.add c 42;
  let c1 =
    Registry.counter r ~labels:[ ("class", "1") ] ~help:"Ops by class"
      "rod_test_ops_total"
  in
  Counter.add c1 7;
  Counter.add (Registry.counter r ~labels:[ ("class", "2") ] "rod_test_ops_total") 3;
  Gauge.set (Registry.gauge r ~help:"Queue depth" "rod_test_queue_depth") 3.5;
  Gauge.set
    (Registry.gauge r
       ~labels:[ ("path", "a\\b\"c\nd") ]
       ~help:"Label escaping" "rod_test_escape")
    1.;
  let h =
    Registry.histogram r ~buckets:[| 0.1; 1.; 10. |] ~help:"Latency"
      "rod_test_latency_seconds"
  in
  List.iter (Histogram.observe h) [ 0.05; 0.1; 0.5; 2.; 20. ];
  Registry.snapshot r

let golden_events () =
  let t = Obs.Span.create ~clock:(Obs.Clock.manual ()) () in
  Obs.Span.emit t ~cat:"place" ~args:[ ("ops", "4") ] ~ts:0. ~dur:0.25
    "rod.place";
  Obs.Span.emit t ~cat:"sim" ~ts:0.1 ~dur:1.5 "sim.run";
  Obs.Span.instant t ~cat:"fault" ~args:[ ("node", "1") ] ~ts:0.75
    "fault.crash";
  Obs.Span.emit t ~track:2 ~cat:"sim" ~ts:0.75 ~dur:0.1 "sim.migrate";
  Obs.Span.events t

let check_golden ~fixture actual =
  let path = Filename.concat "fixtures/obs" fixture in
  (* Mismatches land in the temp dir, never the CWD: running the test
     binary from the repo root must not litter the source tree with
     .actual files. *)
  let actual_path =
    Filename.concat (Filename.get_temp_dir_name ()) (fixture ^ ".actual")
  in
  let promote =
    Printf.sprintf "cp %s test/fixtures/obs/%s" actual_path fixture
  in
  if Sys.file_exists path then begin
    let expected = read_file path in
    if not (String.equal expected actual) then begin
      write_file actual_path actual;
      Alcotest.failf "golden mismatch for %s — inspect, then promote with: %s"
        fixture promote
    end
  end
  else begin
    write_file actual_path actual;
    Alcotest.failf "missing fixture %s — promote with: %s" fixture promote
  end

let test_golden_metrics_json () =
  check_golden ~fixture:"metrics.json"
    (Obs.Export.metrics_json (golden_snapshot ()))

let test_golden_prometheus () =
  check_golden ~fixture:"metrics.prom"
    (Obs.Export.prometheus (golden_snapshot ()))

let test_golden_trace () =
  check_golden ~fixture:"trace.trace.json"
    (Obs.Export.trace_json (golden_events ()))

(* --- double-run determinism over real instrumentation --- *)

(* A full deployment (analysis gate, ROD placement, local-search
   polish, QMC volume) exercises the spans and counters wired through
   lib/core, lib/feasible and lib/deploy.  Two runs from a reset
   registry must export byte-identical artifacts — the property the
   CLI-level acceptance check (sim --seed N twice) also pins. *)
let deploy_exports () =
  Obs.reset ();
  let graph = Query.Graph_io.load ~path:"fixtures/clean.rodgraph" in
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:1. in
  let deployment = Deploy.of_cost_model ~polish:true ~samples:512 ~graph ~caps () in
  ignore deployment;
  ( Obs.Export.metrics_json (Obs.snapshot ()),
    Obs.Export.prometheus (Obs.snapshot ()),
    Obs.Export.trace_json (Obs.events ()) )

let test_double_run_determinism () =
  let m1, p1, t1 = deploy_exports () in
  let m2, p2, t2 = deploy_exports () in
  Alcotest.(check string) "metrics json byte-identical" m1 m2;
  Alcotest.(check string) "prometheus byte-identical" p1 p2;
  Alcotest.(check string) "trace byte-identical" t1 t2;
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 100)

(* --- QCheck properties --- *)

let prop_counter_monotone =
  QCheck.Test.make ~name:"counter: monotone, value = sum of increments"
    ~count:200
    QCheck.(list small_nat)
    (fun increments ->
      let r = Registry.create () in
      let c = Registry.counter r "m_total" in
      let monotone = ref true in
      let prev = ref 0 in
      List.iter
        (fun k ->
          Counter.add c k;
          let v = Counter.value c in
          if v < !prev then monotone := false;
          prev := v)
        increments;
      !monotone && Counter.value c = List.fold_left ( + ) 0 increments)

let prop_gauge_last_write =
  QCheck.Test.make ~name:"gauge: last write wins" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun writes ->
      let r = Registry.create () in
      let g = Registry.gauge r "depth" in
      List.iter (fun v -> Gauge.set g (float_of_int v)) writes;
      match List.rev writes with
      | [] -> Gauge.value g = 0.
      | last :: _ -> Gauge.value g = float_of_int last)

(* Integer-valued observations keep float sums exact, so conservation
   can be checked with [=] rather than a tolerance. *)
let prop_histogram_conservation =
  QCheck.Test.make ~name:"histogram: count and sum are conserved" ~count:200
    QCheck.(list (int_range (-100) 100))
    (fun xs ->
      let h = Histogram.make [| -50.; 0.; 50. |] in
      List.iter (fun x -> Histogram.observe h (float_of_int x)) xs;
      Histogram.count h = List.length xs
      && Histogram.sum h = List.fold_left (fun acc x -> acc +. float_of_int x) 0. xs
      && Array.fold_left ( + ) 0 (Histogram.bucket_counts h) = List.length xs)

let prop_merge_commutative =
  QCheck.Test.make
    ~name:"histogram: per-domain shard merge is commutative" ~count:200
    QCheck.(pair (list (int_range (-100) 100)) (list (int_range (-100) 100)))
    (fun (xs, ys) ->
      let bounds = [| -50.; 0.; 50. |] in
      let fill zs =
        let h = Histogram.make bounds in
        List.iter (fun z -> Histogram.observe h (float_of_int z)) zs;
        h
      in
      let merged order =
        let into = Histogram.make bounds in
        List.iter (fun s -> Histogram.merge_into ~into s) order;
        into
      in
      let ab = merged [ fill xs; fill ys ] in
      let ba = merged [ fill ys; fill xs ] in
      Histogram.bucket_counts ab = Histogram.bucket_counts ba
      && Histogram.count ab = Histogram.count ba
      && Histogram.sum ab = Histogram.sum ba
      && Histogram.p99 ab = Histogram.p99 ba)

let suite =
  [
    Alcotest.test_case "histogram: bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: single sample" `Quick test_histogram_single;
    Alcotest.test_case "histogram: validation" `Quick test_histogram_validation;
    Alcotest.test_case "registry: discipline" `Quick test_registry_discipline;
    Alcotest.test_case "golden: metrics json" `Quick test_golden_metrics_json;
    Alcotest.test_case "golden: prometheus" `Quick test_golden_prometheus;
    Alcotest.test_case "golden: chrome trace" `Quick test_golden_trace;
    Alcotest.test_case "double-run determinism" `Quick
      test_double_run_determinism;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_counter_monotone; prop_gauge_last_write;
        prop_histogram_conservation; prop_merge_commutative;
      ]
