(* Tests of the dimensional analyzer (Analysis.Units): QCheck laws for
   the dimension group and the abstract-value lattice, parse/render
   round trips, every fixture under lint_fixtures/units re-checked
   through in-memory typechecking (the same sources the rodunits
   --fixtures self-test compiles), in-memory interface seeding through
   an injected read_mli closure, and the shared Allowlist machinery the
   four drivers sit on. *)

module Units = Analysis.Units
module Dim = Analysis.Units.Dim
module Abs = Analysis.Units.Abs
module Scan = Analysis.Scan
module Lint = Analysis.Lint
module Allowlist = Analysis.Allowlist

(* --- the dimension group ------------------------------------------- *)

(* Dim.t is abstract; build arbitrary elements from the published
   constructors so the generator cannot bypass the representation. *)
let dim_of exps =
  List.fold_left2
    (fun acc name e -> Dim.mul acc (Dim.pow (Option.get (Dim.base name)) e))
    Dim.one Dim.base_names exps

let arb_dim =
  let gen =
    QCheck.Gen.(
      map dim_of (list_repeat (List.length Dim.base_names) (int_range (-3) 3)))
  in
  QCheck.make gen ~print:Dim.to_string

let prop_dim_mul_commutative =
  QCheck.Test.make ~name:"dim mul commutative" ~count:200
    (QCheck.pair arb_dim arb_dim)
    (fun (a, b) -> Dim.equal (Dim.mul a b) (Dim.mul b a))

let prop_dim_mul_associative =
  QCheck.Test.make ~name:"dim mul associative" ~count:200
    (QCheck.triple arb_dim arb_dim arb_dim)
    (fun (a, b, c) ->
      Dim.equal (Dim.mul a (Dim.mul b c)) (Dim.mul (Dim.mul a b) c))

let prop_dim_one_identity =
  QCheck.Test.make ~name:"dim one is the identity" ~count:100 arb_dim
    (fun a -> Dim.equal (Dim.mul a Dim.one) a && Dim.equal (Dim.mul Dim.one a) a)

let prop_dim_inv_inverse =
  QCheck.Test.make ~name:"dim inv is the group inverse" ~count:100 arb_dim
    (fun a -> Dim.equal (Dim.mul a (Dim.inv a)) Dim.one)

let prop_dim_div_mul_inv =
  QCheck.Test.make ~name:"dim div = mul inv" ~count:200
    (QCheck.pair arb_dim arb_dim)
    (fun (a, b) -> Dim.equal (Dim.div a b) (Dim.mul a (Dim.inv b)))

let prop_dim_pow_repeats_mul =
  QCheck.Test.make ~name:"dim pow is repeated mul" ~count:100
    (QCheck.pair arb_dim (QCheck.int_range 0 4))
    (fun (a, k) ->
      let rec repeat acc i = if i = 0 then acc else repeat (Dim.mul acc a) (i - 1) in
      Dim.equal (Dim.pow a k) (repeat Dim.one k)
      && Dim.equal (Dim.pow a (-k)) (Dim.inv (Dim.pow a k)))

let prop_dim_roundtrip =
  QCheck.Test.make ~name:"dim to_string/parse round trip" ~count:200 arb_dim
    (fun a ->
      match Dim.parse (Dim.to_string a) with
      | Ok b -> Dim.equal a b
      | Error _ -> false)

let base name = Option.get (Dim.base name)

let dim_testable =
  Alcotest.testable (fun fmt d -> Format.pp_print_string fmt (Dim.to_string d))
    Dim.equal

let parse_ok s =
  match Dim.parse s with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_aliases () =
  Alcotest.check dim_testable "rate" (Dim.div (base "tuple") (base "sim-sec"))
    (parse_ok "rate");
  Alcotest.check dim_testable "load-coeff"
    (Dim.div (base "cpu-sec") (base "tuple"))
    (parse_ok "load-coeff");
  Alcotest.check dim_testable "ratio" Dim.one (parse_ok "ratio");
  Alcotest.check dim_testable "1" Dim.one (parse_ok "1");
  (* rate * load-coeff = cpu-sec/sim-sec: the modeled node load. *)
  Alcotest.check dim_testable "rate*load-coeff"
    (Dim.div (base "cpu-sec") (base "sim-sec"))
    (parse_ok "rate*load-coeff")

let test_parse_signed_factors () =
  (* a/b*c means a . b^-1 . c — each factor's sign comes from its own
     separator, not from a precedence grouping. *)
  Alcotest.check dim_testable "a/b*c"
    (Dim.mul (Dim.div (base "tuple") (base "sim-sec")) (base "cpu-sec"))
    (parse_ok "tuple/sim-sec*cpu-sec");
  Alcotest.check dim_testable "a/b/c"
    (Dim.div (Dim.div (base "tuple") (base "sim-sec")) (base "cpu-sec"))
    (parse_ok "tuple/sim-sec/cpu-sec");
  Alcotest.check dim_testable "exponent"
    (Dim.div (base "cpu-sec") (Dim.pow (base "tuple") 2))
    (parse_ok "cpu-sec/tuple^2")

let test_parse_errors () =
  let is_error s =
    match Dim.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown unit" true (is_error "furlong");
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "bad exponent" true (is_error "tuple^x");
  Alcotest.(check bool) "empty factor" true (is_error "tuple//sim-sec")

(* --- the abstract-value lattice ------------------------------------ *)

let arb_abs =
  let gen =
    QCheck.Gen.(
      frequency
        [
          (1, return Abs.Poly);
          (1, return Abs.Unknown);
          (1, return Abs.Conflict);
          (3, map (fun d -> Abs.Dim d) arb_dim.QCheck.gen);
        ])
  in
  QCheck.make gen ~print:Abs.to_string

let prop_abs_join_commutative =
  QCheck.Test.make ~name:"abs join commutative" ~count:300
    (QCheck.pair arb_abs arb_abs)
    (fun (a, b) -> Abs.equal (Abs.join a b) (Abs.join b a))

let prop_abs_join_associative =
  QCheck.Test.make ~name:"abs join associative" ~count:300
    (QCheck.triple arb_abs arb_abs arb_abs)
    (fun (a, b, c) ->
      Abs.equal (Abs.join a (Abs.join b c)) (Abs.join (Abs.join a b) c))

let prop_abs_join_idempotent =
  QCheck.Test.make ~name:"abs join idempotent" ~count:100 arb_abs (fun a ->
      Abs.equal (Abs.join a a) a)

let prop_abs_poly_bottom =
  QCheck.Test.make ~name:"Poly is the join unit" ~count:100 arb_abs (fun a ->
      Abs.equal (Abs.join a Abs.Poly) a && Abs.equal (Abs.join Abs.Poly a) a)

let prop_abs_conflict_top =
  QCheck.Test.make ~name:"Conflict absorbs under join" ~count:100 arb_abs
    (fun a ->
      Abs.equal (Abs.join a Abs.Conflict) Abs.Conflict
      && Abs.equal (Abs.join Abs.Conflict a) Abs.Conflict)

let prop_abs_leq_order =
  QCheck.Test.make ~name:"abs leq is a partial order" ~count:300
    (QCheck.triple arb_abs arb_abs arb_abs)
    (fun (a, b, c) ->
      Abs.leq a a
      && ((not (Abs.leq a b && Abs.leq b a)) || Abs.equal a b)
      && ((not (Abs.leq a b && Abs.leq b c)) || Abs.leq a c))

let prop_abs_mul_commutative =
  QCheck.Test.make ~name:"abs mul commutative" ~count:300
    (QCheck.pair arb_abs arb_abs)
    (fun (a, b) -> Abs.equal (Abs.mul a b) (Abs.mul b a))

let prop_abs_mul_associative =
  QCheck.Test.make ~name:"abs mul associative" ~count:300
    (QCheck.triple arb_abs arb_abs arb_abs)
    (fun (a, b, c) ->
      Abs.equal (Abs.mul a (Abs.mul b c)) (Abs.mul (Abs.mul a b) c))

let prop_abs_poly_mul_identity =
  QCheck.Test.make ~name:"Poly is the mul identity" ~count:100 arb_abs
    (fun a ->
      Abs.equal (Abs.mul a Abs.Poly) a && Abs.equal (Abs.mul Abs.Poly a) a)

let prop_abs_unknown_absorbs_mul =
  QCheck.Test.make ~name:"Unknown absorbs concrete products" ~count:100
    arb_dim (fun d ->
      Abs.equal (Abs.mul Abs.Unknown (Abs.Dim d)) Abs.Unknown
      && Abs.equal (Abs.mul (Abs.Dim d) Abs.Unknown) Abs.Unknown
      && Abs.equal (Abs.mul Abs.Unknown Abs.Conflict) Abs.Conflict)

let prop_abs_div_mul_inv =
  QCheck.Test.make ~name:"abs div = mul inv; inv involutive" ~count:200
    (QCheck.pair arb_abs arb_abs)
    (fun (a, b) ->
      Abs.equal (Abs.div a b) (Abs.mul a (Abs.inv b))
      && Abs.equal (Abs.inv (Abs.inv a)) a)

let test_join_mixed_dims_conflict () =
  (* The exact condition the mixed-add/mixed-compare checks fire on:
     two distinct concrete dimensions merge to Conflict. *)
  let rate = Abs.Dim (parse_ok "rate") in
  let lat = Abs.Dim (parse_ok "sim-sec") in
  Alcotest.(check bool) "distinct dims conflict" true
    (Abs.equal (Abs.join rate lat) Abs.Conflict);
  Alcotest.(check bool) "equal dims stay" true
    (Abs.equal (Abs.join rate (Abs.Dim (parse_ok "tuple/sim-sec"))) rate)

(* --- the fixtures, via in-memory typechecking ---------------------- *)

(* Every fixture pair the rodunits --fixtures self-test compiles is
   re-checked here from Scan.unit_of_source, so a fixture regression
   fails dune runtest even when the @rodunits alias is not built.
   Interface-side findings carry the .mli path; fold them onto the .ml
   exactly as the driver does when matching expectations. *)

let fixture_dir = "lint_fixtures/units"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture_units () =
  Sys.readdir fixture_dir |> Array.to_list |> List.sort String.compare
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.map (fun f ->
         let path = Filename.concat fixture_dir f in
         Scan.unit_of_source ~filename:path (read_file path))

let ml_of_file file =
  if Filename.check_suffix file ".mli" then
    String.sub file 0 (String.length file - 1)
  else file

let rules_of file diags =
  List.filter_map
    (fun (d : Lint.diag) ->
      if ml_of_file d.file = file then Some d.rule else None)
    diags
  |> List.sort_uniq compare

let test_fixtures () =
  let units = fixture_units () in
  Alcotest.(check bool) "fixtures present" true (List.length units >= 8);
  let diags, _stats = Units.check_units units in
  List.iter
    (fun (u : Scan.unit_info) ->
      let expected = List.sort_uniq compare (Units.expect_of_unit u) in
      Alcotest.(check (list string))
        (Printf.sprintf "fixture %s" u.Scan.source)
        expected
        (rules_of u.Scan.source diags))
    units

(* --- in-memory seeding through an injected read_mli ---------------- *)

let mk = Printf.sprintf "(* %s %s *)" Units.units_marker

let check_mem sources =
  (* sources: (name, ml text, mli text option); the mli is served from
     memory, never the filesystem. *)
  let mlis = Hashtbl.create 4 in
  let units =
    List.map
      (fun (name, ml, mli) ->
        let file = name ^ ".ml" in
        Option.iter (fun text -> Hashtbl.replace mlis (file ^ "i") text) mli;
        Scan.unit_of_source ~filename:file ml)
      sources
  in
  Units.check_units ~read_mli:(Hashtbl.find_opt mlis) units

let test_mem_mixed_add () =
  let mli =
    Printf.sprintf "val budget : float %s\nval deadline : float %s\n"
      (mk "cpu-sec") (mk "sim-sec")
  in
  let ml = "let budget = 1.0\nlet deadline = 2.0\nlet slack = budget -. deadline\n" in
  let diags, stats = check_mem [ ("memunit", ml, Some mli) ] in
  Alcotest.(check (list string)) "mixed add fires" [ "units/mixed-add" ]
    (List.map (fun (d : Lint.diag) -> d.rule) diags);
  Alcotest.(check int) "interfaces" 1 stats.Units.ifaces_annotated;
  Alcotest.(check int) "vals" 2 stats.Units.vals_annotated

let test_mem_conforming () =
  let mli =
    Printf.sprintf
      "val coeff : float %s\nval arrival : float %s\nval demand : float %s\n"
      (mk "load-coeff") (mk "rate") (mk "cpu-sec/sim-sec")
  in
  let ml =
    "let coeff = 0.01\nlet arrival = 120.0\nlet demand = coeff *. arrival\n"
  in
  let diags, _ = check_mem [ ("memok", ml, Some mli) ] in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (d : Lint.diag) -> d.rule) diags)

let test_mem_module_mismatch () =
  (* Seeding recurses into module signatures, and the propagation
     resolves a qualified use through the def-index: the declared
     result dimension disagrees with the body's inferred one. *)
  let mli =
    Printf.sprintf
      "module Inner : sig\n  val arrival : float %s\nend\n\nval lag : float %s\n"
      (mk "rate") (mk "sim-sec")
  in
  let ml =
    "module Inner = struct\n  let arrival = 10.0\nend\n\nlet lag = Inner.arrival\n"
  in
  let diags, _ = check_mem [ ("memmod", ml, Some mli) ] in
  Alcotest.(check (list string)) "declared vs inferred"
    [ "units/dim-mismatch-call" ]
    (List.map (fun (d : Lint.diag) -> d.rule) diags)

let test_mem_unmarked_iface_silent () =
  (* An interface with no marker at all opts out: exported floats there
     are not boundary findings (only annotated interfaces are held to
     the completeness rule). *)
  let mli = "val mystery : float\n" in
  let ml = "let mystery = 42.0\n" in
  let diags, stats = check_mem [ ("memopt", ml, Some mli) ] in
  Alcotest.(check (list string)) "silent" []
    (List.map (fun (d : Lint.diag) -> d.rule) diags);
  Alcotest.(check int) "not annotated" 0 stats.Units.ifaces_annotated

(* --- the shared Allowlist machinery -------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_allowlist_malformed_aggregated () =
  let text = "lib/a.ml units/ # fine\nbroken\nlib/b.ml\nlib/c.ml det # fine\n" in
  match Allowlist.of_string ~source:"u.allow" text with
  | _ -> Alcotest.fail "malformed allowlist accepted"
  | exception Failure msg ->
    Alcotest.(check bool) "line 2 reported" true (contains ~needle:"u.allow:2" msg);
    Alcotest.(check bool) "line 3 reported too" true
      (contains ~needle:"u.allow:3" msg)

let test_allowlist_normalize () =
  Alcotest.(check string) "build prefix" "lib/a.ml"
    (Allowlist.normalize_path "_build/default/lib/a.ml");
  Alcotest.(check string) "dot-slash" "lib/a.ml"
    (Allowlist.normalize_path "./lib/a.ml");
  Alcotest.(check string) "interleaved" "lib/a.ml"
    (Allowlist.normalize_path "./_build/default/./lib/a.ml")

let test_allowlist_match_and_stale () =
  let text =
    "lib/feasible/volume.mli units/unannotated-boundary # rate^d\n\
     lib/gone.ml units/mixed-add # stale\n"
  in
  let t = Allowlist.of_string ~source:"u.allow" text in
  Alcotest.(check bool) "suffix+prefix match" true
    (Allowlist.allows t ~file:"_build/default/lib/feasible/volume.mli"
       ~rule:"units/unannotated-boundary");
  Alcotest.(check bool) "rule prefix mismatch" false
    (Allowlist.allows t ~file:"lib/feasible/volume.mli" ~rule:"units/bad-marker");
  Alcotest.(check (list (pair string string))) "stale entry surfaces"
    [ ("lib/gone.ml", "units/mixed-add") ]
    (Allowlist.unused t)

let test_allowlist_split_and_prune () =
  let text =
    "# header comment\n\
     lib/a.ml units/mixed # still needed\n\
     lib/gone.ml units/cmp # stale\n\
     \n\
     lib/b.ml det # also stale\n"
  in
  let t = Allowlist.of_string ~source:"u.allow" text in
  let diag =
    { Lint.file = "lib/a.ml"; line = 3; col = 0; rule = "units/mixed-add";
      message = "m" }
  in
  let kept, suppressed =
    Allowlist.split
      ~file:(fun (d : Lint.diag) -> d.file)
      ~rule:(fun (d : Lint.diag) -> d.rule)
      t [ diag ]
  in
  Alcotest.(check int) "suppressed" 1 (List.length suppressed);
  Alcotest.(check int) "kept" 0 (List.length kept);
  (* --fix output: stale entry lines dropped, everything else (the
     header, the blank line, the live entry) byte-identical. *)
  Alcotest.(check string) "prune drops only stale lines"
    "# header comment\nlib/a.ml units/mixed # still needed\n\n"
    (Allowlist.prune t text)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dim_mul_commutative;
      prop_dim_mul_associative;
      prop_dim_one_identity;
      prop_dim_inv_inverse;
      prop_dim_div_mul_inv;
      prop_dim_pow_repeats_mul;
      prop_dim_roundtrip;
      prop_abs_join_commutative;
      prop_abs_join_associative;
      prop_abs_join_idempotent;
      prop_abs_poly_bottom;
      prop_abs_conflict_top;
      prop_abs_leq_order;
      prop_abs_mul_commutative;
      prop_abs_mul_associative;
      prop_abs_poly_mul_identity;
      prop_abs_unknown_absorbs_mul;
      prop_abs_div_mul_inv;
    ]
  @ [
      Alcotest.test_case "parse aliases" `Quick test_parse_aliases;
      Alcotest.test_case "parse signed factors" `Quick
        test_parse_signed_factors;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "mixed dims join to Conflict" `Quick
        test_join_mixed_dims_conflict;
      Alcotest.test_case "fixtures match their expectations" `Quick
        test_fixtures;
      Alcotest.test_case "in-memory mixed add" `Quick test_mem_mixed_add;
      Alcotest.test_case "in-memory conforming" `Quick test_mem_conforming;
      Alcotest.test_case "in-memory module mismatch" `Quick
        test_mem_module_mismatch;
      Alcotest.test_case "unmarked interface opts out" `Quick
        test_mem_unmarked_iface_silent;
      Alcotest.test_case "allowlist reports every malformed line" `Quick
        test_allowlist_malformed_aggregated;
      Alcotest.test_case "allowlist path normalization" `Quick
        test_allowlist_normalize;
      Alcotest.test_case "allowlist matching and staleness" `Quick
        test_allowlist_match_and_stale;
      Alcotest.test_case "allowlist split and prune" `Quick
        test_allowlist_split_and_prune;
    ]
