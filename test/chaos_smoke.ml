(* Seeded chaos smoke run (the [@chaos-quick] alias): every registered
   scenario in quick mode with a fixed seed, failing the build if any
   oracle check does.  Scenario ids on the command line narrow the run
   (the [@keyed] alias passes the two split scenarios). *)

let () =
  let seed = 42 in
  let failures = ref 0 in
  let selected =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> Chaos.Scenario.all
    | ids ->
      List.map
        (fun id ->
          match Chaos.Scenario.find id with
          | Some s -> s
          | None ->
            Printf.eprintf "chaos smoke: unknown scenario %S\n" id;
            exit 2)
        ids
  in
  List.iter
    (fun s ->
      let outcome = s.Chaos.Scenario.run ~quick:true ~seed () in
      let ok = Chaos.Oracle.passed outcome.Chaos.Scenario.verdict in
      Printf.printf "%-10s %s (%d checks)\n" s.Chaos.Scenario.id
        (if ok then "PASS" else "FAIL")
        (List.length outcome.Chaos.Scenario.verdict);
      if not ok then begin
        incr failures;
        Format.printf "%a@." Chaos.Oracle.pp
          (List.filter
             (fun c -> not c.Chaos.Oracle.passed)
             outcome.Chaos.Scenario.verdict)
      end)
    selected;
  if !failures > 0 then begin
    Printf.printf "chaos smoke: %d scenario(s) failed\n" !failures;
    exit 1
  end;
  print_string "chaos smoke: all scenarios passed\n"
