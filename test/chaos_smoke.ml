(* Seeded chaos smoke run (the [@chaos-quick] alias): every registered
   scenario in quick mode with a fixed seed, failing the build if any
   oracle check does. *)

let () =
  let seed = 42 in
  let failures = ref 0 in
  List.iter
    (fun s ->
      let outcome = s.Chaos.Scenario.run ~quick:true ~seed () in
      let ok = Chaos.Oracle.passed outcome.Chaos.Scenario.verdict in
      Printf.printf "%-10s %s (%d checks)\n" s.Chaos.Scenario.id
        (if ok then "PASS" else "FAIL")
        (List.length outcome.Chaos.Scenario.verdict);
      if not ok then begin
        incr failures;
        Format.printf "%a@." Chaos.Oracle.pp
          (List.filter
             (fun c -> not c.Chaos.Oracle.passed)
             outcome.Chaos.Scenario.verdict)
      end)
    Chaos.Scenario.all;
  if !failures > 0 then begin
    Printf.printf "chaos smoke: %d scenario(s) failed\n" !failures;
    exit 1
  end;
  print_string "chaos smoke: all scenarios passed\n"
