(* The benchdiff core: segment-anchored rung matching (the --only
   filter and the regression gate's family selection) and the
   rod-microbench/2 record parser. *)

open Benchdiff_core

let check = Alcotest.(check bool)

let test_exact_rung () =
  check "selects its own rung" true
    (rung_matches ~needle:"place/ROD-m200" "rod/place/ROD-m200");
  check "must not select the longer rung" false
    (rung_matches ~needle:"place/ROD-m200" "rod/place/ROD-m2000");
  check "must not select the split rung" false
    (rung_matches ~needle:"place/ROD-m200" "rod/place/ROD+SPLIT-m200");
  check "prefix of a segment is not a match" false
    (rung_matches ~needle:"place/ROD" "rod/place/ROD-m200");
  check "single segment matches the tail" true
    (rung_matches ~needle:"ROD-m200" "rod/place/ROD-m200");
  check "non-final match needs the trailing slash" false
    (rung_matches ~needle:"place" "rod/place/ROD-m200")

let test_family_rung () =
  check "family filter selects every member" true
    (rung_matches ~needle:"place/" "rod/place/ROD-m2000");
  check "family filter crosses segment boundaries only whole" false
    (rung_matches ~needle:"pla/" "rod/place/ROD-m200");
  check "mid-path family match" true
    (rung_matches ~needle:"rod/place/" "rod/place/LLF-m100");
  check "family filter misses other families" false
    (rung_matches ~needle:"place/" "rod/volume/qmc-4096");
  check "empty needle selects nothing" false
    (rung_matches ~needle:"" "rod/place/ROD-m200")

let test_judged () =
  check "place rungs are judged" true (judged "rod/place/ROD-m100");
  check "controller rungs are judged" true
    (judged "rod/controller/replan-m200");
  check "volume rungs are not judged" false (judged "rod/volume/qmc-4096");
  check "a 'placebo' rung is not judged" false
    (judged "rod/placebo/anything")

let sample =
  String.concat "\n"
    [
      "{";
      "  \"schema\": \"rod-microbench/2\",";
      "  \"records\": [";
      "    {";
      "      \"rev\": \"abc123\",";
      "      \"quick\": true,";
      "      \"domains\": 4,";
      "      \"results\": {";
      "        \"rod/place/ROD-m100\": { \"ns_per_run\": 1.5e+06, \
       \"r_square\": 0.99 },";
      "        \"rod/volume/qmc-4096\": { \"ns_per_run\": 2e+05, \
       \"r_square\": null }";
      "      }";
      "    },";
      "    {";
      "      \"rev\": \"def456\",";
      "      \"quick\": true,";
      "      \"domains\": 4,";
      "      \"results\": {";
      "        \"rod/place/ROD-m100\": { \"ns_per_run\": 1.8e+06, \
       \"r_square\": 0.98 }";
      "      }";
      "    }";
      "  ]";
      "}";
      "";
    ]

let test_parse () =
  match parse sample with
  | [ first; second ] ->
    Alcotest.(check string) "first rev" "\"abc123\"" first.rev;
    Alcotest.(check string) "second rev" "\"def456\"" second.rev;
    (match first.results with
    | [ (n1, ns1, r1); (n2, _, r2) ] ->
      Alcotest.(check string) "entry name" "rod/place/ROD-m100" n1;
      Alcotest.(check (float 1.)) "ns" 1.5e6 ns1;
      Alcotest.(check (float 1e-6)) "r^2" 0.99 r1;
      Alcotest.(check string) "null-r2 entry kept" "rod/volume/qmc-4096" n2;
      check "null r^2 is a failed fit" true (Float.is_nan r2)
    | results ->
      Alcotest.failf "expected 2 entries, got %d" (List.length results));
    (match second.results with
    | [ (_, ns, _) ] -> Alcotest.(check (float 1.)) "ns" 1.8e6 ns
    | results ->
      Alcotest.failf "expected 1 entry, got %d" (List.length results))
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let suite =
  [
    Alcotest.test_case "exact rung matching is segment-anchored" `Quick
      test_exact_rung;
    Alcotest.test_case "trailing slash selects a family" `Quick
      test_family_rung;
    Alcotest.test_case "regression gate families" `Quick test_judged;
    Alcotest.test_case "rod-microbench/2 parser" `Quick test_parse;
  ]
