(* Tests of the domain pool: range coverage, exception propagation, and
   sequential-vs-parallel equivalence of the three rewired hot paths
   (volume estimation, local search, exhaustive optimum). *)

module Pool = Parallel.Pool
module Vec = Linalg.Vec
module Problem = Rod.Problem

let with_pool ways f =
  let pool = Pool.create ways in
  Fun.protect ~finally:(fun () -> if ways > 1 then Pool.shutdown pool) (fun () -> f pool)

(* Every pool size must cover [0, n) exactly once, for ranges smaller
   than, equal to, and coarser than the chunk count. *)
let test_parallel_for_coverage () =
  List.iter
    (fun ways ->
      with_pool ways (fun pool ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Pool.parallel_for pool ~n (fun lo hi ->
                  for i = lo to hi - 1 do
                    hits.(i) <- hits.(i) + 1
                  done);
              let name = Printf.sprintf "ways=%d n=%d" ways n in
              Alcotest.(check bool)
                (name ^ " covered once") true
                (Array.for_all (fun c -> c <= 1) hits
                && Array.to_list hits
                   |> List.filteri (fun i _ -> i < n)
                   |> List.for_all (fun c -> c = 1)))
            [ 1; 2; 3; 7; 64 ]))
    [ 1; 2; 4 ]

let test_parallel_for_empty () =
  with_pool 4 (fun pool ->
      let calls = ref 0 in
      Pool.parallel_for pool ~n:0 (fun _ _ -> incr calls);
      Pool.parallel_for pool ~n:(-5) (fun _ _ -> incr calls);
      Alcotest.(check int) "no chunk on empty range" 0 !calls)

let test_parallel_for_remainders () =
  (* 10 indices over 4 ways: chunk sizes must differ by at most one and
     the chunks must tile the range in order. *)
  with_pool 4 (fun pool ->
      let ranges = ref [] in
      let mutex = Mutex.create () in
      Pool.parallel_for pool ~n:10 (fun lo hi ->
          Mutex.lock mutex;
          ranges := (lo, hi) :: !ranges;
          Mutex.unlock mutex);
      let ranges = List.sort compare !ranges in
      Alcotest.(check (list (pair int int)))
        "even split with remainders"
        [ (0, 2); (2, 5); (5, 7); (7, 10) ]
        ranges)

exception Boom of int

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      let raised =
        try
          Pool.parallel_for pool ~n:100 (fun lo hi ->
              if lo <= 42 && 42 < hi then raise (Boom lo));
          None
        with Boom lo -> Some lo
      in
      Alcotest.(check bool) "exception escaped the pool" true (raised <> None);
      (* The pool survives a failed batch. *)
      let total =
        Pool.map_reduce pool ~n:100
          ~map:(fun lo hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
          ~combine:( + ) ~init:0
      in
      Alcotest.(check int) "pool usable after exception" 4950 total)

let test_run_ordered () =
  with_pool 3 (fun pool ->
      let results =
        Pool.run pool (List.init 7 (fun i () -> (i * i) + 1))
      in
      Alcotest.(check (list int)) "ordered results"
        [ 1; 2; 5; 10; 17; 26; 37 ] results)

let test_default_ways_env () =
  Unix.putenv "ROD_NUM_DOMAINS" "3";
  Alcotest.(check int) "env respected" 3 (Pool.default_ways ());
  Unix.putenv "ROD_NUM_DOMAINS" "0";
  Alcotest.(check int) "clamped to 1" 1 (Pool.default_ways ());
  Unix.putenv "ROD_NUM_DOMAINS" "nope";
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "ROD_NUM_DOMAINS: not an integer: \"nope\"") (fun () ->
      ignore (Pool.default_ways ()));
  Unix.putenv "ROD_NUM_DOMAINS" "1"

let fixture ~m ~d ~n_nodes =
  let rng = Random.State.make [| 4242 |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:(m / d)
  in
  Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)

(* Halton samples are index-addressed, so the parallel feasible count
   must match the sequential one bit for bit, for every pool size. *)
let test_volume_equivalence () =
  let problem = fixture ~m:30 ~d:3 ~n_nodes:4 in
  let plan = Rod.Rod_algorithm.plan problem in
  let ln = Rod.Plan.node_loads plan in
  let caps = problem.Problem.caps in
  let reference =
    Feasible.Volume.estimate_with
      ~next_cube_point:(fun i -> Feasible.Halton.point ~dim:3 i)
      ~ln ~caps ~samples:4096 ()
  in
  List.iter
    (fun ways ->
      with_pool ways (fun pool ->
          let est = Feasible.Volume.ratio_qmc ~pool ~ln ~caps ~samples:4096 () in
          let name = Printf.sprintf "ways=%d" ways in
          Alcotest.(check int)
            (name ^ " feasible count") reference.Feasible.Volume.feasible_samples
            est.Feasible.Volume.feasible_samples;
          Alcotest.check (Alcotest.float 0.) (name ^ " ratio bit-identical")
            reference.Feasible.Volume.ratio est.Feasible.Volume.ratio))
    [ 1; 2; 4 ]

(* The scorer's sample shards reduce to exact integers, so the whole
   local-search trajectory — assignment, ratio, move and pass counts —
   is independent of the pool size. *)
let test_local_search_equivalence () =
  let problem = fixture ~m:24 ~d:3 ~n_nodes:4 in
  let start = Array.init 24 (fun j -> j mod 2) in
  let outcomes =
    List.map
      (fun ways ->
        with_pool ways (fun pool ->
            Rod.Local_search.improve ~pool ~samples:512 problem start))
      [ 1; 2; 4 ]
  in
  match outcomes with
  | [ a; b; c ] ->
    List.iter
      (fun (name, o) ->
        Alcotest.(check (array int))
          (name ^ " assignment") a.Rod.Local_search.assignment
          o.Rod.Local_search.assignment;
        Alcotest.check (Alcotest.float 0.) (name ^ " ratio")
          a.Rod.Local_search.ratio o.Rod.Local_search.ratio;
        Alcotest.(check int) (name ^ " moves") a.Rod.Local_search.moves
          o.Rod.Local_search.moves;
        Alcotest.(check int) (name ^ " passes") a.Rod.Local_search.passes
          o.Rod.Local_search.passes)
      [ ("ways=2", b); ("ways=4", c) ]
  | _ -> assert false

(* All parallel pools share one fixed subtree decomposition and an
   ordered merge, so the exhaustive search is pool-size deterministic. *)
let test_optimal_equivalence () =
  let problem = fixture ~m:8 ~d:2 ~n_nodes:2 in
  let results =
    List.map
      (fun ways ->
        with_pool ways (fun pool ->
            Rod.Optimal.search ~samples:256 ~pool problem))
      [ 1; 2; 4 ]
  in
  match results with
  | [ a; b; c ] ->
    List.iter
      (fun (name, r) ->
        Alcotest.(check (array int))
          (name ^ " assignment") a.Rod.Optimal.assignment
          r.Rod.Optimal.assignment;
        Alcotest.check (Alcotest.float 0.) (name ^ " ratio")
          a.Rod.Optimal.ratio r.Rod.Optimal.ratio;
        Alcotest.(check int) (name ^ " explored") a.Rod.Optimal.explored
          r.Rod.Optimal.explored)
      [ ("ways=2", b); ("ways=4", c) ]
  | _ -> assert false

let suite =
  [
    Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_coverage;
    Alcotest.test_case "parallel_for empty range" `Quick test_parallel_for_empty;
    Alcotest.test_case "parallel_for remainders" `Quick
      test_parallel_for_remainders;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "run keeps order" `Quick test_run_ordered;
    Alcotest.test_case "ROD_NUM_DOMAINS parsing" `Quick test_default_ways_env;
    Alcotest.test_case "volume seq = parallel (1/2/4)" `Quick
      test_volume_equivalence;
    Alcotest.test_case "local search seq = parallel (1/2/4)" `Quick
      test_local_search_equivalence;
    Alcotest.test_case "optimal seq = parallel (1/2/4)" `Quick
      test_optimal_equivalence;
  ]
