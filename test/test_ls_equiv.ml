(* Equivalence suite for the fused read-only local-search rewrite.

   Two obligations: (1) the new sweeps must reproduce the historical
   mutate-and-undo driver (ls_reference.ml) bit for bit — assignment,
   ratio, move and pass counts — at pool sizes 1/2/4, including
   degenerate shapes; (2) the read-only primitives (gain, swap_gain,
   relocation_gains) must equal the feasibility delta that actually
   performing the move reports, on random problems. *)

module Pool = Parallel.Pool
module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module LS = Rod.Local_search

let with_pool ways f =
  let pool = Pool.create ways in
  Fun.protect
    ~finally:(fun () -> if ways > 1 then Pool.shutdown pool)
    (fun () -> f pool)

let fixture ?(seed = 4242) ~m ~d ~n_nodes ~cap () =
  let rng = Random.State.make [| seed |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:(m / d)
  in
  Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap)

let check_equal name reference outcome =
  Alcotest.(check (array int))
    (name ^ " assignment") reference.LS.assignment outcome.LS.assignment;
  Alcotest.check (Alcotest.float 0.) (name ^ " ratio") reference.LS.ratio
    outcome.LS.ratio;
  Alcotest.(check int) (name ^ " moves") reference.LS.moves outcome.LS.moves;
  Alcotest.(check int) (name ^ " passes") reference.LS.passes outcome.LS.passes

let equiv ~name ?(samples = 512) ?max_passes problem start =
  List.iter
    (fun ways ->
      with_pool ways (fun pool ->
          let reference =
            Ls_reference.improve ~pool ~samples ?max_passes problem start
          in
          let outcome = LS.improve ~pool ~samples ?max_passes problem start in
          check_equal (Printf.sprintf "%s ways=%d" name ways) reference outcome))
    [ 1; 2; 4 ]

(* A pile-up start (everything on node 0) drives long relocation runs;
   the alternating start leaves work for the swap sweep too. *)
let test_equiv_random_starts () =
  let problem = fixture ~m:24 ~d:3 ~n_nodes:4 ~cap:1. () in
  equiv ~name:"pile-up" problem (Array.make 24 0);
  equiv ~name:"alternating" problem (Array.init 24 (fun j -> j mod 2))

let test_equiv_rod_start () =
  let problem = fixture ~m:30 ~d:3 ~n_nodes:5 ~cap:1. () in
  equiv ~name:"rod-start" problem (Rod.Rod_algorithm.place problem)

let test_equiv_degenerate () =
  (* Single operator. *)
  let p1 = fixture ~m:1 ~d:1 ~n_nodes:2 ~cap:1. () in
  equiv ~name:"m=1" ~samples:128 p1 [| 0 |];
  (* Single node: no relocation candidate, no swappable pair. *)
  let p2 = fixture ~m:8 ~d:2 ~n_nodes:1 ~cap:1. () in
  equiv ~name:"n=1" ~samples:128 p2 (Array.make 8 0);
  (* Single sample. *)
  let p3 = fixture ~m:12 ~d:2 ~n_nodes:3 ~cap:1. () in
  equiv ~name:"samples=1" ~samples:1 p3 (Array.make 12 0);
  (* Capacities so tight every sample violates everywhere: nothing can
     ever gain, so the skip index must reach the same quiet single pass
     as grinding through the mutate-and-undo evaluation. *)
  let p4 = fixture ~m:12 ~d:2 ~n_nodes:3 ~cap:1e-9 () in
  equiv ~name:"all-infeasible" ~samples:128 p4 (Array.make 12 0);
  (* Pass cap of 1 stops mid-climb; both paths must stop at the same
     intermediate state. *)
  let p5 = fixture ~m:24 ~d:3 ~n_nodes:4 ~cap:1. () in
  equiv ~name:"max_passes=1" ~max_passes:1 p5 (Array.make 24 0)

(* --- property checks of the read-only primitives ------------------- *)

(* Random dense problems plus a random starting assignment.  Loads are
   strictly positive (no all-zero column) and capacities strictly
   positive, per the Problem.t invariants the skip index relies on. *)
let instance_gen =
  QCheck.Gen.(
    let* m = 2 -- 8 in
    let* d = 1 -- 3 in
    let* n = 2 -- 4 in
    let* entries = array_size (return (m * d)) (float_range 0.05 1.) in
    let* caps = array_size (return n) (float_range 0.2 2.) in
    let* assignment = array_size (return m) (0 -- (n - 1)) in
    let lo = Array.init m (fun j -> Array.sub entries (j * d) d) in
    return (lo, caps, assignment))

let print_instance (lo, caps, assignment) =
  Format.asprintf "lo = %a caps = %a assignment = %s" Mat.pp
    (Mat.of_arrays lo) Vec.pp caps
    (String.concat ";" (Array.to_list (Array.map string_of_int assignment)))

let arbitrary_instance = QCheck.make ~print:print_instance instance_gen

let samples = 64

(* gain j ~to_node must equal feasible-after-move minus feasible-before
   — measured by really moving (and moving back before the next probe;
   any float drift the undo leaves behind is part of the state both
   sides then read, so the comparison stays exact). *)
let prop_gain_matches_move =
  QCheck.Test.make ~name:"gain = feasible delta of the move" ~count:60
    arbitrary_instance (fun (lo, caps, assignment) ->
      let problem = Problem.create ~lo:(Mat.of_arrays lo) ~caps in
      let m = Problem.n_ops problem and n = Problem.n_nodes problem in
      List.for_all
        (fun ways ->
          with_pool ways (fun pool ->
              let scorer = LS.make_scorer ~pool problem assignment samples in
              let ok = ref true in
              for j = 0 to m - 1 do
                let home = assignment.(j) in
                for i = 0 to n - 1 do
                  if i <> home then begin
                    let predicted = LS.gain scorer j ~to_node:i in
                    let before = LS.feasible scorer in
                    LS.move scorer j ~from_node:home ~to_node:i;
                    let actual = LS.feasible scorer - before in
                    LS.move scorer j ~from_node:i ~to_node:home;
                    if predicted <> actual then ok := false
                  end
                done
              done;
              !ok))
        [ 1; 4 ])

let prop_swap_gain_matches_moves =
  QCheck.Test.make ~name:"swap_gain = feasible delta of the exchange"
    ~count:60 arbitrary_instance (fun (lo, caps, assignment) ->
      let problem = Problem.create ~lo:(Mat.of_arrays lo) ~caps in
      let m = Problem.n_ops problem in
      with_pool 1 (fun pool ->
          let scorer = LS.make_scorer ~pool problem assignment samples in
          let ok = ref true in
          for j1 = 0 to m - 1 do
            for j2 = j1 + 1 to m - 1 do
              let a = assignment.(j1) and b = assignment.(j2) in
              if a <> b then begin
                let predicted = LS.swap_gain scorer j1 j2 in
                let before = LS.feasible scorer in
                LS.move scorer j1 ~from_node:a ~to_node:b;
                LS.move scorer j2 ~from_node:b ~to_node:a;
                let actual = LS.feasible scorer - before in
                LS.move scorer j1 ~from_node:b ~to_node:a;
                LS.move scorer j2 ~from_node:a ~to_node:b;
                if predicted <> actual then ok := false
              end
            done
          done;
          !ok))

(* The fused kernel must agree with the scalar primitive on every
   target, and stay below the positive bound that gates it. *)
let prop_fused_matches_gain =
  QCheck.Test.make ~name:"relocation_gains = gain per target, <= bound"
    ~count:60 arbitrary_instance (fun (lo, caps, assignment) ->
      let problem = Problem.create ~lo:(Mat.of_arrays lo) ~caps in
      let m = Problem.n_ops problem and n = Problem.n_nodes problem in
      List.for_all
        (fun ways ->
          with_pool ways (fun pool ->
              let scorer = LS.make_scorer ~pool problem assignment samples in
              let ok = ref true in
              for j = 0 to m - 1 do
                let gains = Array.copy (LS.relocation_gains scorer j) in
                let bound = LS.relocation_positive_bound scorer j in
                for i = 0 to n - 1 do
                  if gains.(i) <> LS.gain scorer j ~to_node:i then ok := false;
                  if gains.(i) > bound then ok := false
                done
              done;
              !ok))
        [ 1; 4 ])

let suite =
  [
    Alcotest.test_case "old = new: random starts (1/2/4)" `Quick
      test_equiv_random_starts;
    Alcotest.test_case "old = new: ROD start (1/2/4)" `Quick
      test_equiv_rod_start;
    Alcotest.test_case "old = new: degenerate shapes (1/2/4)" `Quick
      test_equiv_degenerate;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_gain_matches_move;
        prop_swap_gain_matches_moves;
        prop_fused_matches_gain;
      ]
