(* Properties and pinned artifacts of the keyed-parallelism layer:
   QCheck laws of the partitioners (determinism, PKG load bound,
   permutation invariance) and the HyperLogLog error bound; golden
   rodgraph fixtures of the split transform; the EXPSKEW summary golden
   with pool bit-identity; and the tamper-negative split oracle test
   (a corrupted replica route table must fail the differential). *)

module Partitioner = Keyed.Partitioner
module Hll = Keyed.Hll
module Vec = Linalg.Vec

(* Pinned QCheck seed: property failures must reproduce. *)
let qcheck_rand () = Random.State.make [| 0xC0FFEE; 17 |]

let replicas = 4

(* Skewed key streams: a small hot range under a larger cold range, so
   the generator actually produces heavy hitters. *)
let keys_gen =
  QCheck.Gen.(
    list_size (int_range 50 400)
      (oneof [ int_range 0 3; int_range 0 2000 ]))

let keys_arb =
  QCheck.make ~print:QCheck.Print.(list int) keys_gen

let seed_keys_arb =
  QCheck.make
    ~print:QCheck.Print.(pair int (list int))
    QCheck.Gen.(pair (int_range 0 10_000) keys_gen)

let hot_of keys n =
  let seen = Hashtbl.create 16 in
  let hot = ref [] in
  List.iter
    (fun k ->
      if (not (Hashtbl.mem seen k)) && List.length !hot < n then begin
        Hashtbl.add seen k ();
        hot := k :: !hot
      end)
    keys;
  Array.of_list (List.rev !hot)

let partitioners ~seed ~keys =
  [
    (fun () -> Partitioner.uniform ~replicas ~seed ());
    (fun () -> Partitioner.pkg ~replicas ~seed ());
    (fun () ->
      Partitioner.hybrid ~replicas ~seed ~hot_keys:(hot_of keys 2) ());
  ]

(* Two identically-configured partitioners warmed on the same stream
   route every key identically. *)
let prop_deterministic =
  QCheck.Test.make ~name:"warmed partitioners route deterministically"
    ~count:60 seed_keys_arb (fun (seed, keys) ->
      let arr = Array.of_list keys in
      List.for_all
        (fun mk ->
          let a = mk () and b = mk () in
          Partitioner.warm a arr;
          Partitioner.warm b arr;
          List.for_all (fun k -> Partitioner.route a k = Partitioner.route b k)
            keys)
        (partitioners ~seed ~keys))

(* The PKG balance law: the loaded replica carries at most twice the
   ideal share plus the mass of keys too heavy to share a replica
   (count >= ideal).  Heavy keys are single-replica by construction
   (sticky routing), so their whole mass may legitimately sit on one
   replica; the two-choice rule bounds everything else. *)
let prop_pkg_bound =
  QCheck.Test.make ~name:"sticky PKG load bound" ~count:100 seed_keys_arb
    (fun (seed, keys) ->
      let arr = Array.of_list keys in
      let part = Partitioner.pkg ~replicas ~seed () in
      Partitioner.warm part arr;
      let loads = Partitioner.loads part in
      let total = Array.length arr in
      let ideal = float_of_int total /. float_of_int replicas in
      let counts = Hashtbl.create 64 in
      Array.iter
        (fun k ->
          let c = try Hashtbl.find counts k with Not_found -> 0 in
          Hashtbl.replace counts k (c + 1))
        arr;
      let heavy_mass =
        Hashtbl.fold
          (fun _ c acc ->
            if float_of_int c >= ideal then acc + c else acc)
          counts 0
      in
      let max_load = Array.fold_left max 0 loads in
      float_of_int max_load
      <= (2. *. ideal) +. float_of_int heavy_mass +. 1e-9)

(* Uniform and hybrid routing is a pure function of the key — the order
   (or multiplicity) of the warm-up stream cannot change it.  PKG is
   excluded by design: its sticky assignment depends on encounter
   order. *)
let prop_permutation_invariant =
  QCheck.Test.make ~name:"uniform/hybrid routing ignores stream order"
    ~count:60 seed_keys_arb (fun (seed, keys) ->
      let arr = Array.of_list keys in
      let rev = Array.of_list (List.rev keys) in
      List.for_all
        (fun mk ->
          let a = mk () and b = mk () in
          Partitioner.warm a arr;
          Partitioner.warm b rev;
          List.for_all (fun k -> Partitioner.route a k = Partitioner.route b k)
            keys)
        [
          (fun () -> Partitioner.uniform ~replicas ~seed ());
          (fun () ->
            Partitioner.hybrid ~replicas ~seed ~hot_keys:(hot_of keys 2) ());
        ])

(* --- HyperLogLog error bound --------------------------------------- *)

(* Relative error within 3 sigma of the 1.04/sqrt(m) standard error,
   over pinned seeds and cardinalities spanning the linear-counting
   and raw-estimate regimes. *)
let test_hll_error () =
  List.iter
    (fun (seed, log2m, n) ->
      let h = Hll.create ~log2m ~seed () in
      for i = 0 to n - 1 do
        Hll.add_int h ((i * 2654435761) lxor seed)
      done;
      let est = Hll.estimate h in
      let rel = abs_float (est -. float_of_int n) /. float_of_int n in
      let bound = 3. *. Hll.std_error ~log2m in
      if rel > bound then
        Alcotest.failf
          "HLL(log2m=%d, seed=%#x) at n=%d: estimate %.1f, relative error \
           %.4f > %.4f"
          log2m seed n est rel bound)
    [
      (0x9e37, 12, 1_000);
      (0x9e37, 12, 20_000);
      (0x9e37, 12, 100_000);
      (0x1234, 10, 5_000);
      (0x1234, 14, 50_000);
      (0x7f3a, 12, 64_000);
    ]

(* --- golden split fixtures ----------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let check_golden ~dir ~fixture actual =
  let path = Filename.concat dir fixture in
  (* Mismatches land in the temp dir, never the CWD: running the test
     binary from the repo root must not litter the source tree with
     .actual files. *)
  let actual_path =
    Filename.concat (Filename.get_temp_dir_name ()) (fixture ^ ".actual")
  in
  let promote = Printf.sprintf "cp %s test/%s" actual_path path in
  if Sys.file_exists path then begin
    let expected = read_file path in
    if not (String.equal expected actual) then begin
      write_file actual_path actual;
      Alcotest.failf "golden mismatch for %s — inspect, then promote with: %s"
        fixture promote
    end
  end
  else begin
    write_file actual_path actual;
    Alcotest.failf "missing fixture %s — promote with: %s" fixture promote
  end

(* The EXPSKEW fixture shape with pinned shares: the pre/post pair
   freezes the split transform's exact output (indices, costs,
   selectivities, arcs) byte-for-byte. *)
let golden_graph () =
  let open Query in
  Graph.create ~n_inputs:2
    ~ops:
      [
        (Op.filter ~name:"preA" ~cost:2e-5 ~sel:0.9 (), [ Graph.Sys_input 0 ]);
        (Op.delay ~name:"hotAgg" ~cost:4e-4 ~sel:0.2 (), [ Graph.Op_output 0 ]);
        (Op.filter ~name:"post" ~cost:3e-5 ~sel:0.8 (), [ Graph.Op_output 1 ]);
        (Op.map ~name:"preB" ~cost:5e-5 (), [ Graph.Sys_input 1 ]);
        (Op.filter ~name:"slim" ~cost:2e-5 ~sel:0.5 (), [ Graph.Op_output 3 ]);
      ]
    ()

let test_golden_pre () =
  check_golden ~dir:"fixtures" ~fixture:"keyed_pre.rodgraph"
    (Query.Graph_io.to_string (golden_graph ()))

let test_golden_split () =
  let split =
    Keyed.Split.split ~route_cost:1e-6 ~merge_cost:1e-6 (golden_graph ())
      ~op:1
      ~shares:[| 0.4; 0.3; 0.2; 0.1 |]
  in
  check_golden ~dir:"fixtures" ~fixture:"keyed_split.rodgraph"
    (Query.Graph_io.to_string split.Keyed.Split.graph)

(* --- EXPSKEW: summary golden, pool identity, acceptance pin -------- *)

let quick_summary = lazy (Experiments.Exp_skew.analyze ~quick:true ())

let test_expskew_golden () =
  check_golden ~dir:"fixtures/keyed" ~fixture:"expskew_summary.json"
    (Experiments.Exp_skew.summary_json (Lazy.force quick_summary))

let test_expskew_pool_identity () =
  let reference =
    Experiments.Exp_skew.summary_json (Lazy.force quick_summary)
  in
  List.iter
    (fun ways ->
      let pool = Parallel.Pool.create ways in
      let summary =
        Experiments.Exp_skew.summary_json
          (Experiments.Exp_skew.analyze ~quick:true ~pool ())
      in
      Parallel.Pool.shutdown pool;
      Alcotest.(check string)
        (Printf.sprintf "%d-domain pool summary is byte-identical" ways)
        reference summary)
    [ 1; 2; 4 ]

(* The PR's acceptance pin, at both scales: the hybrid split's feasible
   ratio strictly beats the unsplit plan AND uniform hashing at the
   same replica count. *)
let check_hybrid_beats a =
  let beats_unsplit, beats_uniform = Experiments.Exp_skew.hybrid_beats a in
  Alcotest.(check bool) "hybrid beats unsplit" true beats_unsplit;
  Alcotest.(check bool) "hybrid beats uniform" true beats_uniform

let test_acceptance_quick () = check_hybrid_beats (Lazy.force quick_summary)

let test_acceptance_full () =
  check_hybrid_beats (Experiments.Exp_skew.analyze ~quick:false ())

(* --- tamper-negative split differential ---------------------------- *)

module Sop = Spe.Sop
module Tuple = Spe.Tuple

let tamper_unsplit () =
  Spe.Network.create ~n_inputs:1
    ~ops:
      [
        ( Sop.aggregate ~name:"bySrc" ~window:1. ~group_by:"src"
            [ ("total", Sop.Sum "bytes"); ("n", Sop.Count) ],
          [ Query.Graph.Sys_input 0 ] );
      ]
    ()

let tamper_fixture ?claims () =
  let rng = Random.State.make [| 0xBAD; 7 |] in
  let trace = Workload.Trace.create ~dt:1. (Array.make 6 40.) in
  let inputs = [| Spe.Datagen.packets ~rng ~trace ~hosts:8 () |] in
  let key_of = Keyed.Semantic.key_of_field ~seed:7 "src" in
  let keys = Array.of_list (List.map key_of inputs.(0)) in
  let partitioner = Partitioner.uniform ~replicas:3 ~seed:5 () in
  Partitioner.warm partitioner keys;
  let unsplit = tamper_unsplit () in
  let split =
    Keyed.Semantic.split ?claims ~network:unsplit ~op:0 ~key_of ~partitioner ()
  in
  let last_ts =
    List.fold_left (fun acc t -> Float.max acc (Tuple.ts t)) 0. inputs.(0)
  in
  let until = last_ts +. 4. in
  let dist network =
    let skeleton = Spe.Network.skeleton ~costs:(fun _ -> 1e-5) network in
    Spe.Dist_executor.run ~network
      ~assignment:(Array.make (Spe.Network.n_ops network) 0)
      ~caps:(Vec.of_list [ 1. ])
      ~cost:(Spe.Dist_executor.cost_model_of_graph skeleton)
      ~inputs ~until ()
  in
  let verdict =
    Chaos.Oracle.split_differential ~split
      ~injected:(Array.map List.length inputs)
      ~cutoff:last_ts
      ~split_dist:(dist split.Keyed.Semantic.network)
      ~baseline_dist:(dist unsplit)
      ~logical:(Spe.Executor.run ~record:true split.Keyed.Semantic.network ~inputs)
      ()
  in
  (split, inputs, verdict)

let test_split_differential_healthy () =
  let _, _, verdict = tamper_fixture () in
  if not (Chaos.Oracle.passed verdict) then
    Alcotest.failf "healthy split run failed its differential:@.%s"
      (Format.asprintf "%a" Chaos.Oracle.pp verdict)

let test_split_differential_tampered () =
  (* Route one key's tuples to a second replica as well: the duplicate
     group rows must trip the routing, coverage, and sink oracles. *)
  let _, inputs, healthy_verdict = tamper_fixture () in
  ignore healthy_verdict;
  let key_of = Keyed.Semantic.key_of_field ~seed:7 "src" in
  let k0 = key_of (List.hd inputs.(0)) in
  let partitioner = Partitioner.uniform ~replicas:3 ~seed:5 () in
  let r = Partitioner.route partitioner k0 in
  let claims = [ ((r + 1) mod 3, k0) ] in
  let _, _, verdict = tamper_fixture ~claims () in
  if Chaos.Oracle.passed verdict then
    Alcotest.fail
      "tampered route table passed the split differential — the oracle is \
       blind to duplicated keys";
  let failed name =
    List.exists
      (fun (c : Chaos.Oracle.check) ->
        c.Chaos.Oracle.name = name && not c.Chaos.Oracle.passed)
      verdict
  in
  Alcotest.(check bool)
    "split:routing caught the foreign key" true (failed "split:routing")

let suite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ()))
    [ prop_deterministic; prop_pkg_bound; prop_permutation_invariant ]
  @ [
      Alcotest.test_case "HyperLogLog 3-sigma relative error" `Quick
        test_hll_error;
      Alcotest.test_case "golden pre-split rodgraph" `Quick test_golden_pre;
      Alcotest.test_case "golden post-split rodgraph" `Quick test_golden_split;
      Alcotest.test_case "golden EXPSKEW summary json" `Quick
        test_expskew_golden;
      Alcotest.test_case "EXPSKEW summary pool bit-identity" `Quick
        test_expskew_pool_identity;
      Alcotest.test_case "acceptance: hybrid beats unsplit+uniform (quick)"
        `Quick test_acceptance_quick;
      Alcotest.test_case "acceptance: hybrid beats unsplit+uniform (full)"
        `Slow test_acceptance_full;
      Alcotest.test_case "split differential passes healthy" `Quick
        test_split_differential_healthy;
      Alcotest.test_case "split differential catches tampered routes" `Quick
        test_split_differential_tampered;
    ]
