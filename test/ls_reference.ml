(* The historical mutate-and-undo local-search driver, preserved as a
   test oracle on top of the public scorer API: every candidate is
   evaluated by actually applying the move, reading the feasible count
   and undoing it — four O(samples) passes per (operator, node) pair,
   exactly like the implementation this repo shipped before the fused
   read-only sweeps.  test_ls_equiv.ml pins the rewrite to this path
   bit for bit: assignment, ratio, move and pass counts. *)

module LS = Rod.Local_search

let improve ?pool ?(samples = 2048) ?(max_passes = 20) problem assignment =
  let m = Rod.Problem.n_ops problem and n = Rod.Problem.n_nodes problem in
  if Array.length assignment <> m then
    invalid_arg "Ls_reference.improve: assignment length";
  if max_passes < 1 then invalid_arg "Ls_reference.improve: max_passes < 1";
  let assignment = Array.copy assignment in
  let scorer = LS.make_scorer ?pool problem assignment samples in
  let moves = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  (* One sweep of single-operator relocations; best-of-n per operator,
     applied immediately when it gains. *)
  let relocation_sweep () =
    let any = ref false in
    for j = 0 to m - 1 do
      let home = assignment.(j) in
      let best_gain = ref 0 and best_node = ref home in
      for i = 0 to n - 1 do
        if i <> home then begin
          let before = LS.feasible scorer in
          LS.move scorer j ~from_node:home ~to_node:i;
          let gain = LS.feasible scorer - before in
          LS.move scorer j ~from_node:i ~to_node:home;
          if gain > !best_gain then begin
            best_gain := gain;
            best_node := i
          end
        end
      done;
      if !best_node <> home then begin
        LS.move scorer j ~from_node:home ~to_node:!best_node;
        assignment.(j) <- !best_node;
        incr moves;
        any := true
      end
    done;
    !any
  in
  (* Pairwise exchanges, evaluated by performing the swap and undoing
     it when it does not gain. *)
  let swap_sweep () =
    let any = ref false in
    for j1 = 0 to m - 1 do
      for j2 = j1 + 1 to m - 1 do
        let a = assignment.(j1) and b = assignment.(j2) in
        if a <> b then begin
          let before = LS.feasible scorer in
          LS.move scorer j1 ~from_node:a ~to_node:b;
          LS.move scorer j2 ~from_node:b ~to_node:a;
          if LS.feasible scorer > before then begin
            assignment.(j1) <- b;
            assignment.(j2) <- a;
            moves := !moves + 2;
            any := true
          end
          else begin
            LS.move scorer j1 ~from_node:b ~to_node:a;
            LS.move scorer j2 ~from_node:a ~to_node:b
          end
        end
      done
    done;
    !any
  in
  while !improved && !passes < max_passes do
    incr passes;
    let relocated = relocation_sweep () in
    improved := relocated || swap_sweep ()
  done;
  {
    LS.assignment;
    ratio = float_of_int (LS.feasible scorer) /. float_of_int samples;
    moves = !moves;
    passes = !passes;
  }
