(* Tests of the chaos harness: the fault vocabulary, engine crash
   semantics, schedule generation, the differential oracles (including
   that they CATCH a deliberately broken recovery), and bit-replay
   determinism across runs and pool sizes. *)

module Vec = Linalg.Vec
module Fault = Dsim.Fault
module Metrics = Dsim.Sim_metrics
module Problem = Rod.Problem
module Inject = Chaos.Inject
module Oracle = Chaos.Oracle
module Scenario = Chaos.Scenario

let approx eps = Alcotest.float eps

(* --- fault vocabulary --------------------------------------------- *)

let test_fault_windows () =
  let sched =
    [
      Fault.Slowdown { node = 0; from_ = 1.; until_ = 3.; factor = 0.5 };
      Fault.Slowdown { node = 0; from_ = 2.; until_ = 4.; factor = 0.5 };
      Fault.Jitter { from_ = 1.; until_ = 2.; extra = 0.1 };
      Fault.Jitter { from_ = 1.5; until_ = 2.5; extra = 0.2 };
    ]
  in
  Fault.validate ~n_nodes:2 ~n_ops:1 sched;
  let cf t = Fault.capacity_factor sched ~node:0 ~time:t in
  Alcotest.check (approx 1e-12) "outside windows" 1. (cf 0.5);
  Alcotest.check (approx 1e-12) "one window" 0.5 (cf 1.5);
  Alcotest.check (approx 1e-12) "overlap multiplies" 0.25 (cf 2.5);
  Alcotest.check (approx 1e-12) "other node untouched" 1.
    (Fault.capacity_factor sched ~node:1 ~time:2.5);
  Alcotest.check (approx 1e-12) "jitter sums" 0.3
    (Fault.extra_delay sched ~time:1.7);
  Alcotest.check (approx 1e-12) "window end exclusive" 0.2
    (Fault.extra_delay sched ~time:2.)

let test_fault_validate () =
  let crash node recovery =
    Fault.Crash { node; at = 1.; recovery = Array.make 2 recovery }
  in
  let reject msg sched =
    Alcotest.(check bool)
      msg true
      (try
         Fault.validate ~n_nodes:2 ~n_ops:2 sched;
         false
       with Invalid_argument _ -> true)
  in
  reject "node out of range" [ crash 5 0 ];
  reject "double crash" [ crash 0 1; crash 0 1 ];
  reject "all nodes crash" [ crash 0 1; crash 1 0 ];
  reject "bad factor"
    [ Fault.Slowdown { node = 0; from_ = 0.; until_ = 1.; factor = 1.5 } ];
  reject "bad window"
    [ Fault.Jitter { from_ = 3.; until_ = 1.; extra = 0.1 } ];
  (* A recovery routing to the dead node is ACCEPTED: it models a broken
     recovery path, and catching it is the oracle layer's job. *)
  Fault.validate ~n_nodes:2 ~n_ops:2 [ crash 0 0 ]

(* --- engine crash semantics --------------------------------------- *)

let crash_graph () =
  Query.Randgraph.generate_trees
    ~rng:(Random.State.make [| 3; 11 |])
    ~n_inputs:2 ~ops_per_tree:5

let run_crash_engine ~faults =
  let graph = crash_graph () in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:3 ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  let trace = Workload.Generators.constant ~n:10 ~dt:1. ~rate:40. in
  let arrivals =
    Array.init 2 (fun _ -> Workload.Generators.deterministic_arrivals ~trace)
  in
  (problem, assignment, fun faults ->
    Dsim.Engine.run ~graph ~assignment
      ~caps:(Vec.create 3 0.01)
      ~arrivals
      ~config:{ Dsim.Engine.default_config with faults }
      ~until:12. ())
  |> fun (p, a, run) -> (p, a, run faults)

let test_engine_crash_loses_work () =
  let problem, assignment, healthy = run_crash_engine ~faults:Fault.none in
  Alcotest.(check int) "no losses without faults" 0 healthy.Metrics.lost;
  let dead = Array.make 3 false in
  dead.(assignment.(0)) <- true;
  let recovery = Inject.recovery_assignment problem ~assignment ~dead in
  let faults =
    [ Fault.Crash { node = assignment.(0); at = 4.; recovery } ]
  in
  let _, _, faulted = run_crash_engine ~faults in
  Alcotest.(check bool)
    (Printf.sprintf "crash loses work (%d)" faulted.Metrics.lost)
    true (faulted.Metrics.lost > 0);
  Alcotest.(check bool) "recovered run still produces output" true
    (faulted.Metrics.outputs > 0);
  (* Every recovery target is live and survivors did not move. *)
  List.iter
    (fun c -> Alcotest.(check bool) c.Oracle.name c.Oracle.passed true)
    (Oracle.recovery_valid ~dead ~before:assignment ~recovery)

let test_broken_recovery_is_caught () =
  let problem, assignment, _ = run_crash_engine ~faults:Fault.none in
  let node = assignment.(0) in
  let dead = Array.make 3 false in
  dead.(node) <- true;
  (* The broken recovery: orphans are left on the dead node (dropped
     instead of re-placed). *)
  let broken = Array.copy assignment in
  let faults = [ Fault.Crash { node; at = 2.; recovery = broken } ] in
  let verdict = Oracle.recovery_valid ~dead ~before:assignment ~recovery:broken in
  Alcotest.(check bool) "oracle flags broken recovery" false
    (Oracle.passed verdict);
  Alcotest.(check bool) "the live-node check is the one that fails" false
    (List.find (fun c -> c.Oracle.name = "recovery:live") verdict).Oracle.passed;
  let _, _, faulted = run_crash_engine ~faults in
  let _, _, proper =
    let recovery = Inject.recovery_assignment problem ~assignment ~dead in
    run_crash_engine ~faults:[ Fault.Crash { node; at = 2.; recovery } ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "broken recovery keeps losing work (%d > %d)"
       faulted.Metrics.lost proper.Metrics.lost)
    true
    (faulted.Metrics.lost > proper.Metrics.lost)

(* --- migration oracles -------------------------------------------- *)

(* A two-operator chain split across two nodes, run once with a scripted
   pause–drain–resume migration and once without: the raw material for
   the differential oracle tests. *)
let mig_runs () =
  let network =
    Spe.Network.create ~n_inputs:1
      ~ops:
        [
          ( Spe.Sop.filter ~name:"keep" (fun t -> Spe.Tuple.number t "v" >= 0.),
            [ Query.Graph.Sys_input 0 ] );
          (Spe.Sop.map ~name:"id" (fun t -> t), [ Query.Graph.Op_output 0 ]);
        ]
      ()
  in
  let inputs =
    [|
      List.init 40 (fun i ->
          Spe.Tuple.make
            ~ts:(0.1 *. float_of_int (i + 1))
            [ ("v", Spe.Value.Float (float_of_int i)) ]);
    |]
  in
  let run migrations =
    Spe.Dist_executor.run ~network ~assignment:[| 0; 1 |]
      ~caps:(Vec.create 2 1.)
      ~cost:(fun _ _ -> 1e-4)
      ~inputs ~migrations ~until:10. ()
  in
  let migrated = run [ (2., [ (0, 1) ]) ] in
  let baseline = run [] in
  (network, Array.map List.length inputs, migrated, baseline)

let test_migration_oracle_passes () =
  let network, injected, migrated, baseline = mig_runs () in
  Alcotest.(check int) "one migration started" 1
    migrated.Spe.Dist_executor.migrations;
  Alcotest.(check int) "baseline never migrates" 0
    baseline.Spe.Dist_executor.migrations;
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" c.Oracle.name c.Oracle.detail)
        true c.Oracle.passed)
    (Oracle.migration_differential ~network ~injected ~cutoff:4. ~migrated
       ~baseline ())

let test_migration_oracle_catches_reprocessing () =
  let network, injected, migrated, baseline = mig_runs () in
  (* Fake a tuple processed twice across the handoff: bump one arc's
     consumption count past what its source produced. *)
  migrated.Spe.Dist_executor.op_stats.(1).Spe.Executor.consumed.(0) <-
    migrated.Spe.Dist_executor.op_stats.(1).Spe.Executor.consumed.(0) + 1;
  let verdict =
    Oracle.migration_differential ~network ~injected ~cutoff:4. ~migrated
      ~baseline ()
  in
  Alcotest.(check bool) "oracle flags reprocessing" false
    (Oracle.passed verdict);
  let failed name =
    not (List.find (fun c -> c.Oracle.name = name) verdict).Oracle.passed
  in
  Alcotest.(check bool) "the flow law is the check that fails" true
    (failed "migrate:op1.0");
  Alcotest.(check bool) "consumption no longer matches the baseline" true
    (failed "migrate:consumed-eq")

let test_migration_oracle_catches_invented_output () =
  let network, injected, migrated, baseline = mig_runs () in
  (* A sink output the never-migrated run lacks trips the multiset
     oracle in both the drained (equality) and faulted (subset) modes. *)
  let forged =
    {
      migrated with
      Spe.Dist_executor.outputs =
        (1, Spe.Tuple.make ~ts:1. [ ("v", Spe.Value.Float (-1.)) ])
        :: migrated.Spe.Dist_executor.outputs;
    }
  in
  List.iter
    (fun (drained, name) ->
      let verdict =
        Oracle.migration_differential ~drained ~network ~injected ~cutoff:4.
          ~migrated:forged ~baseline ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s catches an invented output" name)
        false
        (List.find (fun c -> c.Oracle.name = name) verdict).Oracle.passed)
    [ (true, "migrate:sink-equal"); (false, "migrate:sink-subset") ]

(* --- schedule generation ------------------------------------------ *)

let test_schedule_generation () =
  let problem, assignment, _ = run_crash_engine ~faults:Fault.none in
  let spec = { Inject.default with crashes = 2; stragglers = 1; jitters = 1 } in
  let sched seed =
    Inject.schedule
      ~rng:(Random.State.make [| seed |])
      ~spec ~problem ~assignment ~horizon:10.
  in
  let s = sched 7 in
  Alcotest.(check int) "two crashes" 2 (List.length (Fault.crashes s));
  Alcotest.(check bool) "same seed, same schedule" true (sched 7 = sched 7);
  Alcotest.(check bool) "crash times inside the window" true
    (List.for_all
       (fun (at, _, _) -> at >= 2.5 && at <= 7.5)
       (Fault.crashes s));
  (* Chained recoveries: each stays on nodes that are live at its time. *)
  let dead = Array.make 3 false in
  List.iter
    (fun (_, node, recovery) ->
      dead.(node) <- true;
      Array.iter
        (fun i -> Alcotest.(check bool) "recovery on live node" false dead.(i))
        recovery)
    (Fault.crashes s)

let test_single_crash_matches_failure_module () =
  let problem, assignment, _ = run_crash_engine ~faults:Fault.none in
  let n = Problem.n_nodes problem in
  for failed = 0 to n - 1 do
    let dead = Array.make n false in
    dead.(failed) <- true;
    let ours = Inject.recovery_assignment problem ~assignment ~dead in
    let theirs = Rod.Failure.recovery_assignment problem ~assignment ~failed in
    (* [Failure] speaks the degraded (compacted) indexing; lift it. *)
    let live c = if c < failed then c else c + 1 in
    Array.iteri
      (fun j c ->
        Alcotest.(check int)
          (Printf.sprintf "op %d, failed node %d" j failed)
          (live c) ours.(j))
      theirs
  done

(* --- determinism -------------------------------------------------- *)

let test_scenarios_deterministic () =
  List.iter
    (fun s ->
      let run () =
        Scenario.describe (s.Scenario.run ~quick:true ~seed:1337 ())
      in
      let a = run () and b = run () in
      Alcotest.(check string)
        (Printf.sprintf "scenario %s replays byte-identically" s.Scenario.id)
        a b)
    Scenario.all

let test_scenarios_pass () =
  List.iter
    (fun s ->
      let outcome = s.Scenario.run ~quick:true ~seed:7 () in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s: %s" s.Scenario.id c.Oracle.name
               c.Oracle.detail)
            true c.Oracle.passed)
        outcome.Scenario.verdict)
    Scenario.all

let test_volume_oracle_pool_independent () =
  let problem, assignment, _ = run_crash_engine ~faults:Fault.none in
  let dead = Array.make 3 false in
  dead.(assignment.(0)) <- true;
  let recovery = Inject.recovery_assignment problem ~assignment ~dead in
  let ratio ways =
    let pool = Parallel.Pool.create ways in
    let est =
      Oracle.degraded_volume ~pool ~samples:4096 ~problem ~assignment:recovery
        ~dead ()
    in
    Parallel.Pool.shutdown pool;
    est.Feasible.Volume.ratio
  in
  let r1 = ratio 1 in
  Alcotest.(check bool) "1 vs 2 domains bit-identical" true
    (Float.equal r1 (ratio 2));
  Alcotest.(check bool) "1 vs 4 domains bit-identical" true
    (Float.equal r1 (ratio 4))

let test_crash_volume_bound_holds () =
  let problem, assignment, _ = run_crash_engine ~faults:Fault.none in
  let spec = { Inject.default with crashes = 2 } in
  let schedule =
    Inject.schedule
      ~rng:(Random.State.make [| 99 |])
      ~spec ~problem ~assignment ~horizon:10.
  in
  let checks = Oracle.crash_volume_bounds ~samples:4096 ~problem ~schedule () in
  Alcotest.(check int) "one check per crash" 2 (List.length checks);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" c.Oracle.name c.Oracle.detail)
        true c.Oracle.passed)
    checks

let suite =
  [
    Alcotest.test_case "fault windows" `Quick test_fault_windows;
    Alcotest.test_case "fault validation" `Quick test_fault_validate;
    Alcotest.test_case "engine crash loses work" `Quick
      test_engine_crash_loses_work;
    Alcotest.test_case "broken recovery is caught" `Quick
      test_broken_recovery_is_caught;
    Alcotest.test_case "migration oracle passes a clean handoff" `Quick
      test_migration_oracle_passes;
    Alcotest.test_case "migration oracle catches reprocessing" `Quick
      test_migration_oracle_catches_reprocessing;
    Alcotest.test_case "migration oracle catches invented output" `Quick
      test_migration_oracle_catches_invented_output;
    Alcotest.test_case "schedule generation" `Quick test_schedule_generation;
    Alcotest.test_case "single crash matches Failure module" `Quick
      test_single_crash_matches_failure_module;
    Alcotest.test_case "scenarios replay deterministically" `Slow
      test_scenarios_deterministic;
    Alcotest.test_case "all scenarios pass their oracles" `Slow
      test_scenarios_pass;
    Alcotest.test_case "volume oracle is pool-size independent" `Quick
      test_volume_oracle_pool_independent;
    Alcotest.test_case "crash volume bound holds" `Quick
      test_crash_volume_bound_holds;
  ]
