(* Tests of the static-analysis layer: every Plan_check diagnostic on
   a minimal failing plan plus a clean plan with zero diagnostics, and
   the rodlint rules on fixture sources (one violating and one
   conforming file per rule family). *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Plan_check = Analysis.Plan_check
module Lint = Analysis.Lint

let codes report = List.map (fun d -> d.Plan_check.code) report.Plan_check.diags

let has_code code report = List.mem code (codes report)

let check ?threshold ?expect_vars rows caps =
  Plan_check.check_matrix ?threshold ?expect_vars ~lo:(Mat.of_arrays rows)
    ~caps:(Vec.of_list caps) ()

(* --- Plan_check: one minimal failing plan per diagnostic --- *)

let test_clean_plan () =
  let report = check [| [| 0.1; 0. |]; [| 0.; 0.1 |] |] [ 1.; 1. ] in
  Alcotest.(check bool) "ok" true (Plan_check.ok report);
  Alcotest.(check int) "zero diagnostics" 0
    (List.length report.Plan_check.diags);
  Alcotest.(check int) "bound per axis" 2
    (Array.length report.Plan_check.axis_bound);
  Array.iter
    (fun b ->
      Alcotest.(check (float 1e-9)) "axis bound 1-(1-1/2)^2" 0.75 b)
    report.Plan_check.axis_bound

let test_bad_capacity () =
  let report = check [| [| 0.1 |] |] [ 1.; -1. ] in
  Alcotest.(check bool) "rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "bad-capacity" true (has_code "bad-capacity" report);
  let report = check [| [| 0.1 |] |] [ Float.nan ] in
  Alcotest.(check bool) "nan capacity" true (has_code "bad-capacity" report);
  let report = check [| [| 0.1 |] |] [] in
  Alcotest.(check bool) "empty cluster" true (has_code "bad-capacity" report)

let test_dimension_mismatch () =
  let report = check ~expect_vars:3 [| [| 0.1; 0.2 |] |] [ 1. ] in
  Alcotest.(check bool) "rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "dimension-mismatch" true
    (has_code "dimension-mismatch" report)

let test_empty_plan () =
  let report =
    Plan_check.check_matrix ~lo:(Mat.zeros 0 2) ~caps:(Vec.of_list [ 1. ]) ()
  in
  Alcotest.(check bool) "warning only" true (Plan_check.ok report);
  Alcotest.(check bool) "empty-plan" true (has_code "empty-plan" report)

let test_nan_coefficient () =
  let report = check [| [| Float.nan |] |] [ 1. ] in
  Alcotest.(check bool) "rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "nan-coefficient" true
    (has_code "nan-coefficient" report);
  Alcotest.(check int) "no bound on dirty values" 0
    (Array.length report.Plan_check.axis_bound)

let test_negative_coefficient () =
  let report = check [| [| -0.5 |] |] [ 1. ] in
  Alcotest.(check bool) "rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "negative-coefficient" true
    (has_code "negative-coefficient" report)

let test_dead_operator () =
  let report = check [| [| 0.; 0. |]; [| 0.3; 0.3 |] |] [ 1. ] in
  Alcotest.(check bool) "warning only" true (Plan_check.ok report);
  Alcotest.(check bool) "dead-operator" true (has_code "dead-operator" report)

let test_unloaded_variable () =
  let report = check [| [| 0.3; 0. |] |] [ 1. ] in
  Alcotest.(check bool) "warning only" true (Plan_check.ok report);
  Alcotest.(check bool) "unloaded-variable" true
    (has_code "unloaded-variable" report)

let test_infeasible_operator () =
  (* Coefficient 5 vs capacity 1: unit rate does not fit anywhere. *)
  let report = check [| [| 5. |] |] [ 1. ] in
  Alcotest.(check bool) "rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "infeasible-operator" true
    (has_code "infeasible-operator" report);
  Alcotest.(check bool) "assert_ok raises" true
    (match Plan_check.assert_ok report with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_resiliency_capped () =
  (* One operator dominates axis 0 on an 8-node cluster: the
     truncating extent is 1/0.9 vs ideal 8/0.9, so the bound is
     1 - (1 - 1/8)^2 ~ 0.234 < 0.5. *)
  let report =
    check [| [| 0.9; 0. |]; [| 0.; 0.1 |] |] [ 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1. ]
  in
  Alcotest.(check bool) "warning only" true (Plan_check.ok report);
  Alcotest.(check bool) "resiliency-capped" true
    (has_code "resiliency-capped" report);
  Alcotest.(check (float 1e-6)) "axis-0 bound" 0.234375
    report.Plan_check.axis_bound.(0);
  (* The same plan passes with a permissive threshold. *)
  let lax =
    check ~threshold:0.1
      [| [| 0.9; 0. |]; [| 0.; 0.1 |] |]
      [ 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1. ]
  in
  Alcotest.(check int) "no warning below threshold" 0
    (List.length lax.Plan_check.diags)

let test_starved_operator () =
  (* The producer's selectivity is zero, so the consumer only sees a
     statically-dead stream. *)
  let graph =
    Query.Graph_io.of_string
      "rodgraph v1\n\
       inputs 1 xfer=0\n\
       op name=p inputs=I0 linear costs=0.1 sels=0 xfer=0\n\
       op name=c inputs=o0 linear costs=0.1 sels=1 xfer=0\n"
  in
  let report = Plan_check.check_graph graph ~caps:(Vec.of_list [ 1.; 1. ]) in
  Alcotest.(check bool) "warning only" true (Plan_check.ok report);
  Alcotest.(check bool) "starved-operator" true
    (has_code "starved-operator" report)

let test_graph_fixtures () =
  let infeasible = Query.Graph_io.load ~path:"fixtures/infeasible.rodgraph" in
  let report =
    Plan_check.check_graph infeasible ~caps:(Vec.of_list [ 1.; 1. ])
  in
  Alcotest.(check bool) "fixture rejected" false (Plan_check.ok report);
  Alcotest.(check bool) "names the operator" true
    (List.exists
       (fun d ->
         d.Plan_check.code = "infeasible-operator"
         && String.length d.Plan_check.message > 0)
       report.Plan_check.diags);
  let clean = Query.Graph_io.load ~path:"fixtures/clean.rodgraph" in
  let report = Plan_check.check_graph clean ~caps:(Vec.of_list [ 1.; 1. ]) in
  Alcotest.(check bool) "clean fixture ok" true (Plan_check.ok report);
  Alcotest.(check int) "clean fixture zero diagnostics" 0
    (List.length report.Plan_check.diags)

let test_json_rendering () =
  let report = check [| [| 5. |] |] [ 1. ] in
  let json = Plan_check.to_json report in
  let mem sub =
    let l = String.length json and sl = String.length sub in
    let rec scan i = i + sl <= l && (String.sub json i sl = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "schema tag" true (mem "rod-plan-check/1");
  Alcotest.(check bool) "not ok" true (mem "\"ok\": false");
  Alcotest.(check bool) "carries the code" true (mem "infeasible-operator")

(* --- deploy integration: the gate rejects before placing --- *)

let test_deploy_gate () =
  let graph = Query.Graph_io.load ~path:"fixtures/infeasible.rodgraph" in
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:1. in
  Alcotest.(check bool) "deploy rejects statically" true
    (match Deploy.of_cost_model ~graph ~caps () with
    | _ -> false
    | exception Invalid_argument message ->
      (* The message must point at static analysis, not at some later
         placement failure. *)
      String.length message > 0
      && String.sub message 0 10 = "deployment")

(* --- rodlint fixtures --- *)

let rules path = List.map (fun d -> d.Lint.rule) (Lint.lint_file path)

let test_lint_determinism () =
  Alcotest.(check (list string))
    "violating file: every determinism rule"
    [
      "determinism/self-init"; "determinism/global-random";
      "determinism/wallclock"; "determinism/wallclock";
    ]
    (rules "lint_fixtures/det_violating.ml");
  Alcotest.(check (list string))
    "conforming file: clean" []
    (rules "lint_fixtures/det_conforming.ml")

let test_lint_parallel () =
  Alcotest.(check (list string))
    "violating file: every mutation shape"
    [
      "parallel/captured-mutation"; "parallel/captured-mutation";
      "parallel/captured-mutation"; "parallel/captured-mutation";
    ]
    (rules "lint_fixtures/par_violating.ml");
  Alcotest.(check (list string))
    "conforming file: chunk idiom and local state are fine" []
    (rules "lint_fixtures/par_conforming.ml")

let test_lint_hot () =
  Alcotest.(check (list string))
    "violating file: every hot rule"
    [ "hot/poly-compare"; "hot/float-eq"; "hot/closure-in-loop" ]
    (rules "lint_fixtures/hot_violating.ml");
  Alcotest.(check (list string))
    "conforming file: clean" []
    (rules "lint_fixtures/hot_conforming.ml")

let test_lint_obs () =
  Alcotest.(check (list string))
    "violating file: every console side-channel shape"
    [
      "obs/print-telemetry"; "obs/print-telemetry"; "obs/print-telemetry";
      "obs/print-telemetry"; "obs/print-telemetry";
    ]
    (rules "lint_fixtures/obs_violating.ml");
  Alcotest.(check (list string))
    "conforming file: string rendering stays legal" []
    (rules "lint_fixtures/obs_conforming.ml")

let test_lint_obs_marker_detection () =
  (* Without the marker, console printing is not a telemetry concern... *)
  Alcotest.(check (list string))
    "no marker, no obs rules" []
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~filename:"m.ml" "let f x = Printf.printf \"%d\" x"));
  (* ...the marker comment switches the rule on, and ?obs overrides. *)
  Alcotest.(check (list string))
    "marker enables" [ "obs/print-telemetry" ]
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~filename:"m.ml"
          "(* rodlint: obs *)\nlet f x = Printf.printf \"%d\" x"));
  Alcotest.(check (list string))
    "explicit override" [ "obs/print-telemetry" ]
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~obs:true ~filename:"m.ml"
          "let f () = print_endline \"done\""))

let test_lint_positions () =
  match Lint.lint_file "lint_fixtures/det_violating.ml" with
  | first :: _ ->
    Alcotest.(check string) "file" "lint_fixtures/det_violating.ml" first.Lint.file;
    Alcotest.(check int) "line of Random.self_init" 3 first.Lint.line;
    Alcotest.(check bool) "rendered as file:line:col" true
      (String.length (Lint.render first) > 0
      && Lint.render first
         <> Printf.sprintf "%s:0:0" first.Lint.file)
  | [] -> Alcotest.fail "expected findings"

let test_lint_hot_marker_detection () =
  (* Without the marker the hot rules stay silent... *)
  Alcotest.(check (list string))
    "no marker, no hot rules" []
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~filename:"m.ml" "let f k = Array.sort compare k"));
  (* ...the marker comment switches them on, and ?hot overrides. *)
  Alcotest.(check (list string))
    "marker enables" [ "hot/poly-compare" ]
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~filename:"m.ml"
          "(* rodlint: hot *)\nlet f k = Array.sort compare k"));
  Alcotest.(check (list string))
    "explicit override" [ "hot/poly-compare" ]
    (List.map
       (fun d -> d.Lint.rule)
       (Lint.lint_string ~hot:true ~filename:"m.ml"
          "let f k = Array.sort compare k"))

let test_lint_parse_error () =
  match Lint.lint_string ~filename:"broken.ml" "let = in =" with
  | [ d ] -> Alcotest.(check string) "parse/error" "parse/error" d.Lint.rule
  | other ->
    Alcotest.failf "expected exactly one parse/error, got %d" (List.length other)

let test_allowlist () =
  let diags = Lint.lint_file "lint_fixtures/det_violating.ml" in
  let allow =
    Lint.allowlist_of_string ~source:"test.allow"
      "# comment line\n\
       det_violating.ml determinism/ # fixtures are allowed to violate\n\
       nowhere.ml hot/ # never matches\n"
  in
  let kept, suppressed = Lint.split_allowed allow diags in
  Alcotest.(check int) "all suppressed" 0 (List.length kept);
  Alcotest.(check int) "four suppressed" 4 (List.length suppressed);
  Alcotest.(check (list (pair string string)))
    "stale entry reported"
    [ ("nowhere.ml", "hot/") ]
    (Lint.unused_entries allow);
  Alcotest.(check bool) "malformed entry rejected" true
    (match Lint.allowlist_of_string ~source:"bad.allow" "just-one-token\n" with
    | _ -> false
    | exception Failure message ->
      String.length message > 0 && String.sub message 0 9 = "bad.allow")

let suite =
  [
    Alcotest.test_case "clean plan: zero diagnostics" `Quick test_clean_plan;
    Alcotest.test_case "bad capacity" `Quick test_bad_capacity;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    Alcotest.test_case "empty plan" `Quick test_empty_plan;
    Alcotest.test_case "nan coefficient" `Quick test_nan_coefficient;
    Alcotest.test_case "negative coefficient" `Quick test_negative_coefficient;
    Alcotest.test_case "dead operator" `Quick test_dead_operator;
    Alcotest.test_case "unloaded variable" `Quick test_unloaded_variable;
    Alcotest.test_case "infeasible operator" `Quick test_infeasible_operator;
    Alcotest.test_case "resiliency capped" `Quick test_resiliency_capped;
    Alcotest.test_case "starved operator" `Quick test_starved_operator;
    Alcotest.test_case "graph fixtures" `Quick test_graph_fixtures;
    Alcotest.test_case "json rendering" `Quick test_json_rendering;
    Alcotest.test_case "deploy gate" `Quick test_deploy_gate;
    Alcotest.test_case "lint: determinism rules" `Quick test_lint_determinism;
    Alcotest.test_case "lint: parallel-safety rules" `Quick test_lint_parallel;
    Alcotest.test_case "lint: hot-path rules" `Quick test_lint_hot;
    Alcotest.test_case "lint: obs telemetry rule" `Quick test_lint_obs;
    Alcotest.test_case "lint: obs marker detection" `Quick
      test_lint_obs_marker_detection;
    Alcotest.test_case "lint: positions" `Quick test_lint_positions;
    Alcotest.test_case "lint: hot marker detection" `Quick
      test_lint_hot_marker_detection;
    Alcotest.test_case "lint: parse error" `Quick test_lint_parse_error;
    Alcotest.test_case "lint: allowlist" `Quick test_allowlist;
  ]
