(* rodlint: obs *)

(* Every console side-channel shape the obs/print-telemetry rule must
   catch in an instrumented module: formatted printing to stdout and
   stderr through Printf and Format, plus the bare Stdlib printers. *)

let report samples = Printf.printf "samples=%d\n" samples
let warn message = Format.eprintf "warning: %s@." message
let trace name = print_endline name
let moan message = prerr_string message
let count n = Stdlib.print_int n
