(* Fixture: the sanctioned deterministic idioms — no findings. *)

let state = Random.State.make [| 42 |]

let jitter () = Random.State.float state 1.0

let virtual_clock = ref 0.

let now () = !virtual_clock
