(* Fixture: the sanctioned pool idioms — chunk-indexed writes and
   map_reduce combining — produce no findings. *)

let fill pool out n =
  Pool.parallel_for pool n (fun lo hi ->
      for s = lo to hi - 1 do
        out.(s) <- float_of_int s
      done)

let sum pool data n =
  Pool.map_reduce pool ~n
    ~map:(fun lo hi ->
      let acc = ref 0. in
      for s = lo to hi - 1 do
        acc := !acc +. data.(s)
      done;
      !acc)
    ~combine:( +. ) ~init:0.

let local_state pool n =
  Pool.parallel_for pool n (fun lo hi ->
      let scratch = Array.make 4 0. in
      for s = lo to hi - 1 do
        scratch.(s mod 4) <- float_of_int s
      done)
