(* rodlint: hot *)
(* Fixture: hot-path-safe equivalents — no findings. *)

let sort_keys keys = Array.sort Float.compare keys

let is_origin x = Float.abs x < 1e-12

let square x = x *. x

let sum_squares n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. square (float_of_int i)
  done;
  !acc
