(* Fixture: closures handed to the pool mutating captured state. *)

let sum_bad pool data n =
  let total = ref 0. in
  Pool.parallel_for pool n (fun lo hi ->
      for s = lo to hi - 1 do
        total := !total +. data.(s)
      done);
  !total

let count_bad pool n =
  let hits = ref 0 in
  Pool.parallel_for pool n (fun lo hi ->
      for _ = lo to hi - 1 do
        incr hits
      done);
  !hits

let scatter_bad pool out n =
  Pool.parallel_for pool n (fun _lo _hi -> out.(0) <- 1.0)

type cell = { mutable value : float }

let field_bad pool acc n =
  Pool.parallel_for pool n (fun _lo _hi -> acc.value <- 1.0)
