(* rodlint: obs *)

(* String rendering is not a console side-channel: sprintf, ksprintf
   into a buffer, and fprintf to an explicit channel all stay legal in
   an obs-instrumented module.  Only stdout/stderr writes are flagged. *)

let label op = Printf.sprintf "op%d" op

let describe ops nodes =
  let buffer = Buffer.create 64 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "placement: %d operators over %d nodes\n" ops nodes;
  Buffer.contents buffer

let dump channel ratio = Printf.fprintf channel "ratio=%.3f\n" ratio
