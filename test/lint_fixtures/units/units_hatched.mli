val a : float (* rodunits: sim-sec *)
val b : float (* rodunits: rate *)
val c : float (* rodunits: sim-sec *)
