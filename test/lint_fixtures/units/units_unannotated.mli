val util : float (* rodunits: 1 *)

(* No marker: in an annotated interface every exported float must
   declare its dimension (or carry an allow entry). *)
val mystery : float
