val x : float (* rodunits: furlong *)
