(* rodunits-expect: units/mixed-compare *)

let budget = 1.5
let deadline = 2.0

(* Ordering a cpu budget against a wall-clock deadline... *)
let tight = budget > deadline

(* ...and taking the max of the two are both dimension errors. *)
let worst = Float.max budget deadline
