(* rodunits-expect: units/unused-hatch *)

(* The hatch below vouches for a violation that does not exist; stale
   hatches are findings themselves so they cannot rot in place. *)
let span = 1.0 (* rodunits: ok nothing is wrong on this line *)
