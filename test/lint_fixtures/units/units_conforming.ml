(* Conforming fixture: every operation composes dimensions correctly —
   a rate times a load coefficient is a demand, subtracted from a
   capacity of the same dimension. *)

type snapshot = { rate : float; coeff : float; util : float }

let demand s = s.rate *. s.coeff
let headroom ~cap s = cap -. demand s
