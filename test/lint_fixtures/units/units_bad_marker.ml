(* rodunits-expect: units/bad-marker *)

let x = 1.0
