(* rodunits-expect: units/mixed-add *)

let latency = 0.25
let arrival = 40.

(* A latency plus an arrival rate is the canonical dimension bug. *)
let skew = latency +. arrival
