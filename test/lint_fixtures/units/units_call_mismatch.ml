(* rodunits-expect: units/dim-mismatch-call *)

let drift = 3.5
let smooth ~alpha x = (alpha *. x) +. 0.0

(* ~alpha is declared dimensionless but receives a rate. *)
let smoothed = smooth ~alpha:drift 0.5

(* Declared cpu-sec in the interface, but the body is a rate. *)
let wrong = drift
