(* Conforming despite the mixed add below: the ok-hatch vouches for it
   (and is therefore used, so no unused-hatch fires either). *)

let a = 1.0
let b = 2.0

(* rodunits: ok fixture demonstrates a used escape hatch *)
let c = a +. b
