val latency : float (* rodunits: sim-sec *)
val arrival : float (* rodunits: rate *)
val skew : float (* rodunits: sim-sec *)
