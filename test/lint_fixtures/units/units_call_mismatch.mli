val drift : float (* rodunits: rate *)

val smooth : alpha:float -> float -> float
(* rodunits: alpha:1 -> sim-sec *)

val smoothed : float (* rodunits: sim-sec *)
val wrong : float (* rodunits: cpu-sec *)
