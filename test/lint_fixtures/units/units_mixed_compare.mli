val budget : float (* rodunits: cpu-sec *)
val deadline : float (* rodunits: sim-sec *)
val tight : bool
val worst : float (* rodunits: cpu-sec *)
