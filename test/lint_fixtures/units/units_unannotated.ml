(* rodunits-expect: units/unannotated-boundary *)

let util = 0.5
let mystery = util +. 1.0
