(* A correctly-annotated interface: rates, load coefficients and
   capacities compose without mixing. *)

type snapshot = {
  rate : float; (* rodunits: rate *)
  coeff : float; (* rodunits: load-coeff *)
  util : float; (* rodunits: 1 *)
}

val demand : snapshot -> float (* rodunits: cpu-sec/sim-sec *)

val headroom : cap:float -> snapshot -> float
(* rodunits: cap:cpu-sec/sim-sec -> cpu-sec/sim-sec *)
