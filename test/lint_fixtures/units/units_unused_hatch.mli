val span : float (* rodunits: sim-sec *)
