(* Fixture: every determinism rule fires once. *)

let () = Random.self_init ()

let jitter () = Random.float 1.0

let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()
