(* rodlint: hot *)
(* Fixture: every hot-path rule fires. *)

let sort_keys keys = Array.sort compare keys

let is_origin x = x = 0.0

let sum_squares n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let square = fun x -> x *. x in
    acc := !acc +. square (float_of_int i)
  done;
  !acc
