(* rodlint: hot *)
(* rodscan-expect: alloc/literal alloc/closure *)

(* Hot-marked module allocating on every iteration of its loop: a
   closure and a tuple per candidate. *)

let best xs =
  let best = ref (-1, neg_infinity) in
  for i = 0 to Array.length xs - 1 do
    let score = fun () -> xs.(i) *. 2.0 in
    if score () > snd !best then best := (i, score ())
  done;
  !best
