(* Unmarked helper module: the nondeterminism lives here, so the leak
   into Det_taint_violating is only visible interprocedurally — the
   marked module never mentions Random itself. *)

let noisy () = Random.float 1.0
let jitter x = x +. noisy ()
