(* rodlint: deterministic *)
(* rodscan-expect: det/taint *)

(* Global Random state reaches this deterministic-marked module two
   calls deep (perturb -> Det_taint_dep.jitter -> Det_taint_dep.noisy
   -> Random.float); no file mentions Random here, so only the
   interprocedural taint pass can see it. *)

let perturb x = Det_taint_dep.jitter x
let run xs = Array.map perturb xs
