(* rodscan-expect: race/captured-ref *)

(* A plain ref captured by the parallel_for body: every chunk races on
   total through := / incr.  The fix is an Atomic.t or per-chunk
   accumulation (see Race_capture_conforming). *)

let sum pool n =
  let total = ref 0 in
  Parallel.Pool.parallel_for pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        total := !total + i
      done);
  !total
