(* Conforming: shared state is either an Atomic.t or a captured array
   written only at indices derived from the closure's own loop
   variable — the disjoint-slice idiom of the repo's kernels. *)

let squares pool n =
  let out = Array.make n 0 in
  let hits = Atomic.make 0 in
  Parallel.Pool.parallel_for pool ~n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- i * i;
        Atomic.incr hits
      done);
  (out, Atomic.get hits)
