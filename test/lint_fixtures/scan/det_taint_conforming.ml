(* rodlint: deterministic *)

(* Conforming: randomness is threaded as an explicit seeded state, so
   the result is a pure function of the seed. *)

let perturb st x = x +. Random.State.float st 1.0
let run ~seed xs =
  let st = Random.State.make [| seed |] in
  Array.map (perturb st) xs
