(* rodlint: hot *)

(* Conforming: the steady-state loop writes into caller-provided
   scratch only; the one allocating site (a diagnostic trail of the
   nonzero inputs) carries a justified alloc-ok hatch. *)

let scale_into dst xs =
  let trail = ref [] in
  for i = 0 to Array.length xs - 1 do
    dst.(i) <- xs.(i) *. 2.0;
    if Float.compare xs.(i) 0. <> 0 then
      (* rodscan: alloc-ok diagnostic trail, bounded by input size and only built for nonzero entries *)
      trail := i :: !trail
  done;
  !trail
