(* Fixture: the gated-by hatch names a real function, but that
   function performs no Plan_check call — the justification is
   stale. *)
(* rodproto-expect: proto/stale-gate *)

let assignment = Array.make 8 0 (* rodproto: role deployed-assignment *)

let no_gate xs = Array.length xs

let migrate op dest =
  (* rodproto: gated-by Proto_stale_gate.no_gate — stale: no gate inside *)
  assignment.(op) <- dest
