(* Fixture: a conforming pause–drain–resume machine with a gated
   deployment path.  rodproto must accept it outright — no
   expectations.  The Plan_check / Plan stand-ins are local so the
   fixture stays stdlib-only yet exercises the same name-based gate
   detection the real tree does. *)
(* rodproto: protocol — fixture: the conforming migration machine *)

module Plan_check = struct
  type report = { failures : int }

  let check_matrix ~lo ~caps () =
    { failures = (if lo < 0 || caps <= 0 then 1 else 0) }

  let assert_ok r = if r.failures > 0 then invalid_arg "rejected plan"
end

module Plan = struct
  let make assignment = Array.copy assignment
end

type event =
  | Tuple of int
  | Handoff of int  (* rodproto: role drain-event *)
  | Migration_done of int  (* rodproto: role resume-event *)

let assignment = Array.make 8 0 (* rodproto: role deployed-assignment *)
let migrating = Array.make 8 false (* rodproto: role paused *)
let pending = Array.make 8 (-1) (* rodproto: role pending *)
let buffers : int Queue.t array = Array.init 8 (fun _ -> Queue.create ()) (* rodproto: role buffer *)
let inbox : int Queue.t array = Array.init 8 (fun _ -> Queue.create ()) (* rodproto: role input-queue *)

let deploy plan =
  Plan_check.assert_ok (Plan_check.check_matrix ~lo:0 ~caps:1 ());
  Plan.make plan

let deliver op x =
  if migrating.(op) then Queue.push x buffers.(op)
  else Queue.push x inbox.(op)

let start_migration events op dest =
  migrating.(op) <- true;
  pending.(op) <- dest;
  Queue.push (Handoff op) events

let handle events = function
  | Tuple op -> deliver op op
  | Handoff op ->
    let dest = pending.(op) in
    (* rodproto: gated-by Proto_conforming.deploy — fixture: plans ship gated *)
    if dest >= 0 then assignment.(op) <- dest;
    Queue.push (Migration_done op) events
  | Migration_done op ->
    migrating.(op) <- false;
    pending.(op) <- -1;
    let flush = Queue.create () in
    Queue.transfer buffers.(op) flush;
    Queue.iter (fun x -> deliver op x) flush
