(* Fixture: the drain window opens while the operator is still
   Running — the pause flag is never set before the Handoff event is
   pushed. *)
(* rodproto-expect: proto/drain-without-pause *)

type event =
  | Handoff of int  (* rodproto: role drain-event *)
  | Migration_done of int  (* rodproto: role resume-event *)

let start_migration events op =
  Queue.push (Handoff op) events
