(* Fixture: the drain-event handler schedules the resume only on the
   happy path; when the destination died the operator is left paused
   forever — exactly the abort-path leak rodproto exists to catch. *)
(* rodproto-expect: proto/missed-resume *)

type event =
  | Handoff of int  (* rodproto: role drain-event *)
  | Migration_done of int  (* rodproto: role resume-event *)

let migrating = Array.make 8 false (* rodproto: role paused *)
let alive = Array.make 8 true

let start_migration events op =
  migrating.(op) <- true;
  Queue.push (Handoff op) events

let handle events = function
  | Handoff op ->
    if alive.(op) then Queue.push (Migration_done op) events
  | Migration_done op -> migrating.(op) <- false
