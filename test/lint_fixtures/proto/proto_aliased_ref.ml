(* Fixture for the aliasing extension of the pool-closure race lint
   (Analysis.Scan, rule race/aliased-ref): the closure launders its
   captured state through a let-bound alias before mutating it.  The
   Pool stand-in keeps the fixture stdlib-only; the lint keys on the
   [Pool.<fn>] name shape, not the library. *)
(* rodproto-expect: race/aliased-ref *)

module Pool = struct
  let parallel_for _pool ~n:_ f = f 0 1
end

type acc = { mutable hits : int }

let total = ref 0
let stats = { hits = 0 }

let sum_aliased () =
  Pool.parallel_for () ~n:8 (fun lo hi ->
      let slot = total in
      for s = lo to hi - 1 do
        slot := !slot + s
      done)

let count_aliased () =
  Pool.parallel_for () ~n:8 (fun lo hi ->
      let h = stats in
      for s = lo to hi - 1 do
        ignore s;
        h.hits <- h.hits + 1
      done)
