(* Fixture: a Plan.make materialization with no dominating Plan_check
   call — the deployment admission gate is skipped entirely. *)
(* rodproto: protocol — fixture: an ungated deployment *)
(* rodproto-expect: proto/ungated-plan *)

module Plan = struct
  let make assignment = Array.copy assignment
end

let deploy assignment = Plan.make assignment
