(* Fixture: one delivery path tests the paused flag before pushing
   into the input queue (legal); the other pushes unconditionally — a
   paused operator must buffer, not receive. *)
(* rodproto-expect: proto/unguarded-send *)

let migrating = Array.make 8 false (* rodproto: role paused *)
let inbox : int Queue.t array = Array.init 8 (fun _ -> Queue.create ()) (* rodproto: role input-queue *)

let deliver_guarded op x =
  if migrating.(op) then () else Queue.push x inbox.(op)

let deliver_unguarded op x =
  Queue.push x inbox.(op)
