(* Fixture: a gated-by hatch over a read — it suppresses nothing, and
   stale hatches hide future regressions. *)
(* rodproto-expect: proto/unused-hatch *)

let assignment = Array.make 8 0 (* rodproto: role deployed-assignment *)

let placement_of op =
  (* rodproto: gated-by Proto_unused_hatch.placement_of — suppresses nothing *)
  assignment.(op)
