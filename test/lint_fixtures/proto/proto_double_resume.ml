(* Fixture: the paused flag is cleared while the operator is already
   Running — a resume outside any drain window (or a second resume
   after the first). *)
(* rodproto-expect: proto/double-resume *)

let migrating = Array.make 8 false (* rodproto: role paused *)

let resume op =
  migrating.(op) <- false
