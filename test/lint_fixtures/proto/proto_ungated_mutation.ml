(* Fixture: the deployed assignment is rewritten with no dominating
   Plan_check call and no gated-by hatch. *)
(* rodproto-expect: proto/ungated-mutation *)

let assignment = Array.make 8 0 (* rodproto: role deployed-assignment *)

let migrate op dest =
  assignment.(op) <- dest
