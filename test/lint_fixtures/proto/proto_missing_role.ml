(* Fixture: an unknown role spelling, plus a role marker on a line
   that declares nothing. *)
(* rodproto-expect: proto/missing-role *)
(* rodproto: role frobnicator *)

(* rodproto: role paused *)
let x = 1
