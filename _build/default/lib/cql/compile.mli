(** Compilation of a checked program into an executable {!Spe.Network}:
    expressions become closures over tuples, nodes become {!Spe.Sop}
    operators, streams become system inputs (in declaration order). *)

type compiled = {
  network : Spe.Network.t;
  inputs : (string * Check.schema) list;
      (** Stream name and schema per system input, index-aligned. *)
  node_index : (string * int) list;
      (** Node name to operator index in the network. *)
  outputs : (string * int) list;
      (** Declared outputs with their operator indices (the network's
          sinks). *)
}

val compile : Check.checked -> compiled

val compile_expr : Check.schema -> Ast.expr -> Spe.Tuple.t -> Spe.Value.t
(** Exposed for tests: evaluate a {e scalar} expression (booleans are
    rejected by {!Check}, so this never sees one at the top level). *)

val compile_predicate : Check.schema -> Ast.expr -> Spe.Tuple.t -> bool
(** Exposed for tests: evaluate a boolean expression. *)
