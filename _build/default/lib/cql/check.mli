(** Semantic analysis: name resolution, schema inference and expression
    typing.

    Rules:
    - streams and nodes share one namespace; names are unique and must
      be declared before use (which also guarantees acyclicity);
    - [filter] predicates must be boolean; arithmetic mixes int/float
      (promoting to float; [/] always yields float); [==]/[!=] compare
      two numbers or two strings; ordering compares numbers or strings;
    - [map] assignments add or replace fields (boolean-valued fields are
      rejected — tuples carry scalars);
    - [merge] inputs must have identical schemas;
    - [aggregate] computes [count()] (int) and [sum/avg/min/max(field)]
      (float) over numeric fields; with [by f] the output carries the
      grouping value in a field named [group];
    - [join] keys must have the same type; the output schema prefixes
      the two sides' fields with [l_] and [r_];
    - every dead-end node must be declared [output], and [output] nodes
      must not be consumed downstream. *)

type schema = (string * Ast.field_type) list
(** Sorted by field name. *)

type node = {
  name : string;
  body : Ast.node_body;
  schema : schema;
}

type checked = {
  streams : (string * schema) list;  (** In declaration order. *)
  nodes : node list;  (** In declaration order. *)
  outputs : string list;
}

exception Error of Ast.pos * string

val check : Ast.program -> checked
(** @raise Error with a source position on any semantic problem. *)

val type_of_expr : schema -> Ast.expr -> [ `Scalar of Ast.field_type | `Bool ]
(** Exposed for tests.  @raise Error on ill-typed expressions. *)
