(** Recursive-descent parser for the query language.

    Expression precedence, loosest to tightest:
    [or] < [and] < [not] < comparisons < [+ -] < [* /] < unary [-]. *)

exception Error of Ast.pos * string

val parse : string -> Ast.program
(** @raise Error (or {!Lexer.Error}) with a source position on any
    syntax problem. *)
