(** Pretty-printing programs back to concrete syntax.  The output
    re-parses to the same AST (modulo positions), which the test suite
    checks as a round-trip property. *)

val program_to_string : Ast.program -> string

val pp_program : Format.formatter -> Ast.program -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

val pp_expr : Format.formatter -> Ast.expr -> unit
(** Minimal parenthesization (unlike {!Ast.pp_expr}, which fully
    parenthesizes for diagnostics). *)
