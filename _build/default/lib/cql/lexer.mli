(** Hand-rolled tokenizer.  [--] starts a comment to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | STREAM
  | NODE
  | OUTPUT
  | FILTER
  | WHERE
  | MAP
  | SET
  | SELECT
  | KEEP
  | MERGE
  | AGGREGATE
  | WINDOW
  | SLIDE
  | BY
  | COMPUTE
  | JOIN
  | DISTINCT
  | ON
  | AND
  | OR
  | NOT
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Error of Ast.pos * string

val tokenize : string -> (token * Ast.pos) list
(** The whole input, ending with [EOF].
    @raise Error on unknown characters or unterminated strings. *)

val describe : token -> string
(** For error messages. *)
