lib/cql/parser.ml: Ast Lexer List Printf String
