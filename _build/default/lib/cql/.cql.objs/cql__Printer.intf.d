lib/cql/printer.mli: Ast Format
