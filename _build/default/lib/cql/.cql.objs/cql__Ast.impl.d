lib/cql/ast.ml: Format
