lib/cql/lexer.mli: Ast
