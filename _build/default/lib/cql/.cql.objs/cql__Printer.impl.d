lib/cql/printer.ml: Ast Buffer Float Format Option Printf String
