lib/cql/ast.mli: Format
