lib/cql/parser.mli: Ast
