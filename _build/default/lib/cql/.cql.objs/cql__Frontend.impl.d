lib/cql/frontend.ml: Ast Buffer Check Compile Format Fun Lexer List Parser Printf Spe String
