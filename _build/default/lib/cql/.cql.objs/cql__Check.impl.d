lib/cql/check.ml: Ast Format List Option Printf String
