lib/cql/compile.mli: Ast Check Spe
