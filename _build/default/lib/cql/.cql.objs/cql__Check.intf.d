lib/cql/check.mli: Ast
