lib/cql/compile.ml: Ast Check Float List Option Query Spe String
