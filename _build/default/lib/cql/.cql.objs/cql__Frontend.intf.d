lib/cql/frontend.mli: Ast Compile
