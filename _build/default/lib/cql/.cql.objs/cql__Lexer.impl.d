lib/cql/lexer.ml: Ast Buffer List Printf String
