type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | STREAM
  | NODE
  | OUTPUT
  | FILTER
  | WHERE
  | MAP
  | SET
  | SELECT
  | KEEP
  | MERGE
  | AGGREGATE
  | WINDOW
  | SLIDE
  | BY
  | COMPUTE
  | JOIN
  | DISTINCT
  | ON
  | AND
  | OR
  | NOT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | ASSIGN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Error of Ast.pos * string

let keywords =
  [
    ("stream", STREAM); ("node", NODE); ("output", OUTPUT); ("filter", FILTER);
    ("where", WHERE); ("map", MAP); ("set", SET); ("select", SELECT);
    ("keep", KEEP); ("merge", MERGE); ("aggregate", AGGREGATE);
    ("window", WINDOW); ("slide", SLIDE); ("by", BY); ("compute", COMPUTE); ("join", JOIN);
    ("on", ON); ("and", AND); ("or", OR); ("not", NOT); ("distinct", DISTINCT);
  ]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | STREAM -> "'stream'"
  | NODE -> "'node'"
  | OUTPUT -> "'output'"
  | FILTER -> "'filter'"
  | WHERE -> "'where'"
  | MAP -> "'map'"
  | SET -> "'set'"
  | SELECT -> "'select'"
  | KEEP -> "'keep'"
  | MERGE -> "'merge'"
  | AGGREGATE -> "'aggregate'"
  | WINDOW -> "'window'"
  | SLIDE -> "'slide'"
  | BY -> "'by'"
  | COMPUTE -> "'compute'"
  | JOIN -> "'join'"
  | DISTINCT -> "'distinct'"
  | ON -> "'on'"
  | AND -> "'and'"
  | OR -> "'or'"
  | NOT -> "'not'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | COLON -> "':'"
  | SEMI -> "';'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"

type state = {
  text : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { Ast.line = st.line; col = st.col }

let peek st =
  if st.offset < String.length st.text then Some st.text.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.text then Some st.text.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.offset in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let word = String.sub st.text start (st.offset - start) in
  match List.assoc_opt (String.lowercase_ascii word) keywords with
  | Some kw -> kw
  | None -> IDENT word

let lex_number st p =
  let start = st.offset in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  end;
  (* Exponent *)
  (match (peek st, peek2 st) with
  | Some ('e' | 'E'), Some c when is_digit c || c = '-' || c = '+' ->
    advance st;
    if (match peek st with Some ('-' | '+') -> true | _ -> false) then advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  | _ -> ());
  let word = String.sub st.text start (st.offset - start) in
  if String.contains word '.' || String.contains word 'e'
     || String.contains word 'E'
  then
    match float_of_string_opt word with
    | Some f -> FLOAT f
    | None -> raise (Error (p, Printf.sprintf "malformed number %S" word))
  else
    match int_of_string_opt word with
    | Some i -> INT i
    | None -> raise (Error (p, Printf.sprintf "malformed number %S" word))

let lex_string st p =
  advance st (* opening quote *);
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Error (p, "unterminated string literal"))
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buffer '\n';
        advance st;
        loop ()
      | Some 't' ->
        Buffer.add_char buffer '\t';
        advance st;
        loop ()
      | Some (('"' | '\\') as c) ->
        Buffer.add_char buffer c;
        advance st;
        loop ()
      | Some c -> raise (Error (pos st, Printf.sprintf "bad escape '\\%c'" c))
      | None -> raise (Error (p, "unterminated string literal")))
    | Some c ->
      Buffer.add_char buffer c;
      advance st;
      loop ()
  in
  loop ();
  STRING (Buffer.contents buffer)

let tokenize text =
  let st = { text; offset = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let emit tok p = acc := (tok, p) :: !acc in
  let rec loop () =
    skip_trivia st;
    let p = pos st in
    match peek st with
    | None -> emit EOF p
    | Some c when is_ident_start c ->
      emit (lex_ident st) p;
      loop ()
    | Some c when is_digit c ->
      emit (lex_number st p) p;
      loop ()
    | Some '"' ->
      emit (lex_string st p) p;
      loop ()
    | Some c ->
      let two tok =
        advance st;
        advance st;
        emit tok p
      in
      let one tok =
        advance st;
        emit tok p
      in
      (match (c, peek2 st) with
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '=', _ -> one ASSIGN
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ',', _ -> one COMMA
      | ':', _ -> one COLON
      | ';', _ -> one SEMI
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | _ -> raise (Error (p, Printf.sprintf "unexpected character %C" c)));
      loop ()
  in
  loop ();
  List.rev !acc
