(** One-call front end: source text to an executable network, with
    human-readable positioned errors instead of exceptions. *)

type error = {
  pos : Ast.pos option;
  message : string;
}

val compile_string : string -> (Compile.compiled, error) result

val compile_file : path:string -> (Compile.compiled, error) result

val error_to_string : error -> string
(** ["line L, column C: message"]. *)

val describe : Compile.compiled -> string
(** A short plain-text summary: inputs with schemas, nodes with their
    operators, outputs. *)
