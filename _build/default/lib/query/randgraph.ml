type params = {
  n_inputs : int;
  ops_per_tree : int;
  cost_lo : float;
  cost_hi : float;
  sel_lo : float;
  sel_hi : float;
  xfer_cost : float;
}

let default =
  {
    n_inputs = 5;
    ops_per_tree = 20;
    cost_lo = 1e-4;
    cost_hi = 1e-3;
    sel_lo = 0.5;
    sel_hi = 1.0;
    xfer_cost = 0.;
  }

let uniform rng lo hi = lo +. Random.State.float rng (hi -. lo)

(* Grow one tree of [budget] operators rooted at [root_src] in
   breadth-first order: each expanded node draws 1..3 children, capped by
   the remaining budget; nodes still owed children wait in a queue.  The
   queue can never empty while budget remains because every expansion
   enqueues at least one child. *)
let grow_tree ~rng ~budget ~root_src ~make_op push =
  if budget < 1 then invalid_arg "Randgraph: ops_per_tree < 1";
  let remaining = ref budget in
  let frontier = Queue.create () in
  let spawn src =
    let idx = push (make_op (), [ src ]) in
    decr remaining;
    Queue.add idx frontier;
    idx
  in
  ignore (spawn root_src);
  while !remaining > 0 do
    let parent = Queue.pop frontier in
    let want = 1 + Random.State.int rng 3 in
    let n_children = min want !remaining in
    for _ = 1 to n_children do
      ignore (spawn (Graph.Op_output parent))
    done
  done

let generate ~rng p =
  if p.n_inputs < 1 then invalid_arg "Randgraph: n_inputs < 1";
  let ops = ref [] in
  let count = ref 0 in
  let push op =
    ops := op :: !ops;
    incr count;
    !count - 1
  in
  for tree = 0 to p.n_inputs - 1 do
    (* Pre-draw which of the tree's operators keep selectivity one: half
       of them, randomly selected (§7.1). *)
    let unit_sel = Array.make p.ops_per_tree false in
    let half = p.ops_per_tree / 2 in
    let order = Array.init p.ops_per_tree (fun i -> i) in
    for i = p.ops_per_tree - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    for i = 0 to half - 1 do
      unit_sel.(order.(i)) <- true
    done;
    let made = ref 0 in
    let make_op () =
      let idx = !made in
      incr made;
      let cost = uniform rng p.cost_lo p.cost_hi in
      let sel =
        if unit_sel.(idx) then 1. else uniform rng p.sel_lo p.sel_hi
      in
      Op.delay
        ~name:(Printf.sprintf "t%d.o%d" tree idx)
        ~xfer:p.xfer_cost ~cost ~sel ()
    in
    grow_tree ~rng ~budget:p.ops_per_tree ~root_src:(Graph.Sys_input tree)
      ~make_op push
  done;
  let input_xfer_cost = Array.make p.n_inputs p.xfer_cost in
  Graph.create ~input_xfer_cost ~n_inputs:p.n_inputs ~ops:(List.rev !ops) ()

let generate_trees ~rng ~n_inputs ~ops_per_tree =
  generate ~rng { default with n_inputs; ops_per_tree }
