(** Plain-text serialization of query graphs (and of placement
    assignments), so plans can be computed offline and shipped to a
    deployment — the paper's setting is exactly a static plan computed
    ahead of time.

    Format (line-oriented, whitespace-separated, [#] comments):
    {v
    rodgraph v1
    inputs 2 xfer=0,0
    op name=o1 inputs=I0 linear costs=4 sels=1 xfer=0
    op name=o5 inputs=o1,o3 join window=2 cpp=0.5 spp=0.1 xfer=0
    op name=o7 inputs=I1 varsel cost=2 lo=0.2 hi=1 now=0.6 xfer=0
    v}
    Operator lines appear in index order; [I<k>] denotes system input
    [k] and [o<j>] operator [j]'s output.  Floats round-trip exactly
    (printed with full precision).  Operator names must contain no
    whitespace. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Failure on malformed input (with a line number). *)

val save : Graph.t -> path:string -> unit

val load : path:string -> Graph.t

val assignment_to_string : int array -> string
(** One line: [rodplan v1] followed by the node of each operator. *)

val assignment_of_string : string -> int array

val save_assignment : int array -> path:string -> unit

val load_assignment : path:string -> int array
