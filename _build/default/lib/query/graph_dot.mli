(** Graphviz rendering of query graphs — one box per operator, colored
    by node when a placement is supplied.  Feed the output to
    [dot -Tsvg] to see what the placer did. *)

val to_dot :
  ?assignment:int array -> ?rankdir:string -> Graph.t -> string
(** [rankdir] defaults to ["LR"].  With [assignment], operators are
    filled with a per-node pastel color and labelled with their node. *)

val save : ?assignment:int array -> Graph.t -> path:string -> unit
