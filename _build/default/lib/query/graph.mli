(** Acyclic data-flow query graphs.

    A graph has [d] system input streams and [m] operators.  Operator
    inputs are {!source}s: either a system input stream or another
    operator's output.  Each operator produces one output stream, which
    may feed any number of downstream operators (or an application sink,
    if it feeds none). *)

type source =
  | Sys_input of int  (** 0-based system input stream index. *)
  | Op_output of int  (** 0-based operator index. *)

type t = private {
  n_inputs : int;
  ops : Op.t array;
  inputs_of : source array array;
      (** [inputs_of.(j)] are operator [j]'s input arcs, in the order the
          operator's per-input costs/selectivities refer to them. *)
  input_xfer_cost : float array;
      (** CPU seconds per tuple to receive one tuple of each system input
          stream over the network (for clustering / simulation); zeros
          when communication is free. *)
}

val create :
  ?input_xfer_cost:float array ->
  n_inputs:int ->
  ops:(Op.t * source list) list ->
  unit ->
  t
(** Builds and validates a graph.  Checks: positive [n_inputs], source
    indices in range, arity of each operator matching its input list,
    and acyclicity.  Operators are indexed in list order.
    @raise Invalid_argument on any violation. *)

val n_ops : t -> int

val n_inputs : t -> int

val op : t -> int -> Op.t

val sources : t -> int -> source list

val consumers : t -> source -> int list
(** Operators reading from the given stream, ascending. *)

val sinks : t -> int list
(** Operators whose output feeds no other operator. *)

val topo_order : t -> int list
(** Operator indices in a topological order (inputs before consumers). *)

val has_nonlinear : t -> bool

val arcs : t -> (source * int) list
(** Every (producer stream, consumer operator) arc in the graph. *)

val arc_xfer_cost : t -> source -> float
(** Per-tuple network transfer cost of a stream (input stream receive
    cost, or the producing operator's [out_xfer_cost]). *)

val restrict_names : t -> string array
(** Operator names, index-aligned. *)

val pp : Format.formatter -> t -> unit
