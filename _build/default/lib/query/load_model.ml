module Vec = Linalg.Vec
module Mat = Linalg.Mat

type var_origin =
  | System of int
  | Join_pairs of int
  | Cut_output of int

type t = {
  graph : Graph.t;
  lo : Mat.t;
  out_rate : Mat.t;
  var_origins : var_origin array;
}

(* Sparse linear forms over a growing variable space: association lists
   from variable index to coefficient, kept merge-friendly. *)
module Sparse = struct
  type t = (int * float) list

  let var k : t = [ (k, 1.) ]

  let scale a (v : t) : t = List.map (fun (k, c) -> (k, a *. c)) v

  let add (x : t) (y : t) : t =
    let tbl = Hashtbl.create 8 in
    let bump (k, c) =
      let c0 = try Hashtbl.find tbl k with Not_found -> 0. in
      Hashtbl.replace tbl k (c0 +. c)
    in
    List.iter bump x;
    List.iter bump y;
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let zero : t = []

  let to_vec d (v : t) =
    let out = Vec.zeros d in
    List.iter (fun (k, c) -> out.(k) <- out.(k) +. c) v;
    out
end

let derive graph =
  let m = Graph.n_ops graph in
  let d_sys = Graph.n_inputs graph in
  let next_var = ref d_sys in
  let extra_origins = ref [] in
  let fresh_var origin =
    let k = !next_var in
    incr next_var;
    extra_origins := origin :: !extra_origins;
    k
  in
  let op_out : Sparse.t array = Array.make m Sparse.zero in
  let op_load : Sparse.t array = Array.make m Sparse.zero in
  let source_rate = function
    | Graph.Sys_input k -> Sparse.var k
    | Graph.Op_output j -> op_out.(j)
  in
  let process j =
    let op = Graph.op graph j in
    let srcs = Array.of_list (Graph.sources graph j) in
    match op.Op.kind with
    | Op.Linear { costs; selectivities } ->
      let load = ref Sparse.zero and out = ref Sparse.zero in
      Array.iteri
        (fun i src ->
          let rate = source_rate src in
          load := Sparse.add !load (Sparse.scale costs.(i) rate);
          out := Sparse.add !out (Sparse.scale selectivities.(i) rate))
        srcs;
      op_load.(j) <- !load;
      op_out.(j) <- !out
    | Op.Join { cost_per_pair; sel_per_pair; window = _ } ->
      let pairs = fresh_var (Join_pairs j) in
      op_load.(j) <- Sparse.scale cost_per_pair (Sparse.var pairs);
      op_out.(j) <- Sparse.scale sel_per_pair (Sparse.var pairs)
    | Op.Var_selectivity { cost; _ } ->
      let rate = source_rate srcs.(0) in
      op_load.(j) <- Sparse.scale cost rate;
      op_out.(j) <- Sparse.var (fresh_var (Cut_output j))
  in
  List.iter process (Graph.topo_order graph);
  let d_total = !next_var in
  let lo = Mat.init m d_total (fun _ _ -> 0.) in
  let out_rate = Mat.init m d_total (fun _ _ -> 0.) in
  for j = 0 to m - 1 do
    let lv = Sparse.to_vec d_total op_load.(j) in
    let ov = Sparse.to_vec d_total op_out.(j) in
    for k = 0 to d_total - 1 do
      Mat.set lo j k lv.(k);
      Mat.set out_rate j k ov.(k)
    done
  done;
  let var_origins =
    Array.append
      (Array.init d_sys (fun k -> System k))
      (Array.of_list (List.rev !extra_origins))
  in
  { graph; lo; out_rate; var_origins }

let d_total model = Array.length model.var_origins

let d_system model = Graph.n_inputs model.graph

let n_ops model = Mat.rows model.lo

let load_coefficients model = model.lo

let total_coefficients model = Mat.col_sums model.lo

let source_rate_vec model = function
  | Graph.Sys_input k -> Vec.basis (d_total model) k
  | Graph.Op_output j -> Mat.row_copy model.out_rate j

(* Actual (nonlinear) evaluation of every stream rate in topological
   order, then read the introduced variables off the concrete rates. *)
let actual_out_rates model ~sys_rates =
  let graph = model.graph in
  if Vec.dim sys_rates <> Graph.n_inputs graph then
    invalid_arg "Load_model: sys_rates dimension mismatch";
  let out = Array.make (Graph.n_ops graph) 0. in
  let rate_of = function
    | Graph.Sys_input k -> sys_rates.(k)
    | Graph.Op_output j -> out.(j)
  in
  let process j =
    let op = Graph.op graph j in
    let srcs = Graph.sources graph j in
    match (op.Op.kind, srcs) with
    | Op.Linear { selectivities; _ }, srcs ->
      out.(j) <-
        List.fold_left ( +. ) 0.
          (List.mapi (fun i src -> selectivities.(i) *. rate_of src) srcs)
    | Op.Join { window; sel_per_pair; _ }, [ u; v ] ->
      out.(j) <- sel_per_pair *. window *. rate_of u *. rate_of v
    | Op.Join _, _ -> assert false
    | Op.Var_selectivity { sel_now; _ }, [ u ] -> out.(j) <- sel_now *. rate_of u
    | Op.Var_selectivity _, _ -> assert false
  in
  List.iter process (Graph.topo_order graph);
  out

let eval_vars model ~sys_rates =
  let graph = model.graph in
  let out = actual_out_rates model ~sys_rates in
  let rate_of = function
    | Graph.Sys_input k -> sys_rates.(k)
    | Graph.Op_output j -> out.(j)
  in
  Array.map
    (function
      | System k -> sys_rates.(k)
      | Cut_output j -> out.(j)
      | Join_pairs j -> (
        match (Graph.op graph j).Op.kind, Graph.sources graph j with
        | Op.Join { window; _ }, [ u; v ] -> window *. rate_of u *. rate_of v
        | _ -> assert false))
    model.var_origins

let stream_rate_at model ~sys_rates src =
  match src with
  | Graph.Sys_input k -> sys_rates.(k)
  | Graph.Op_output j -> (actual_out_rates model ~sys_rates).(j)

let op_load_at model ~sys_rates j =
  Vec.dot (Mat.row model.lo j) (eval_vars model ~sys_rates)

let pp fmt model =
  Format.fprintf fmt "@[<v>load model: %d ops, %d vars (%d system)@,"
    (n_ops model) (d_total model) (d_system model);
  Array.iteri
    (fun k origin ->
      let describe =
        match origin with
        | System i -> Printf.sprintf "system input %d" i
        | Join_pairs j -> Printf.sprintf "pair rate of join o%d" j
        | Cut_output j -> Printf.sprintf "output rate of o%d" j
      in
      Format.fprintf fmt "  x%d = %s@," k describe)
    model.var_origins;
  Format.fprintf fmt "L^o =@,%a@]" Mat.pp model.lo
