type linear = {
  costs : float array;
  selectivities : float array;
}

type join = {
  window : float;
  cost_per_pair : float;
  sel_per_pair : float;
}

type var_selectivity = {
  cost : float;
  sel_lo : float;
  sel_hi : float;
  sel_now : float;
}

type kind =
  | Linear of linear
  | Join of join
  | Var_selectivity of var_selectivity

type t = {
  name : string;
  kind : kind;
  out_xfer_cost : float;
}

let arity op =
  match op.kind with
  | Linear l -> Array.length l.costs
  | Join _ -> 2
  | Var_selectivity _ -> 1

let check_positive what x =
  if x < 0. then invalid_arg (Printf.sprintf "Op: negative %s (%g)" what x)

let make_linear ?(name = "op") ?(xfer = 0.) ~costs ~selectivities () =
  if Array.length costs = 0 then invalid_arg "Op: operator with no inputs";
  if Array.length costs <> Array.length selectivities then
    invalid_arg "Op: costs/selectivities arity mismatch";
  Array.iter (check_positive "cost") costs;
  Array.iter (check_positive "selectivity") selectivities;
  check_positive "transfer cost" xfer;
  { name; kind = Linear { costs; selectivities }; out_xfer_cost = xfer }

let filter ?(name = "filter") ?xfer ~cost ~sel () =
  make_linear ~name ?xfer ~costs:[| cost |] ~selectivities:[| sel |] ()

let map ?(name = "map") ?xfer ~cost () =
  make_linear ~name ?xfer ~costs:[| cost |] ~selectivities:[| 1. |] ()

let union ?(name = "union") ?xfer ~cost ~n_inputs () =
  if n_inputs < 1 then invalid_arg "Op.union: n_inputs < 1";
  make_linear ~name ?xfer
    ~costs:(Array.make n_inputs cost)
    ~selectivities:(Array.make n_inputs 1.)
    ()

let aggregate ?(name = "aggregate") ?xfer ~cost ~sel () =
  make_linear ~name ?xfer ~costs:[| cost |] ~selectivities:[| sel |] ()

let delay ?(name = "delay") ?xfer ~cost ~sel () =
  make_linear ~name ?xfer ~costs:[| cost |] ~selectivities:[| sel |] ()

let join ?(name = "join") ?(xfer = 0.) ~window ~cost_per_pair ~sel () =
  check_positive "window" window;
  check_positive "cost" cost_per_pair;
  check_positive "selectivity" sel;
  check_positive "transfer cost" xfer;
  {
    name;
    kind = Join { window; cost_per_pair; sel_per_pair = sel };
    out_xfer_cost = xfer;
  }

let var_sel ?(name = "var_sel") ?(xfer = 0.) ~cost ~sel_lo ~sel_hi ?sel_now () =
  check_positive "cost" cost;
  check_positive "selectivity" sel_lo;
  check_positive "selectivity" sel_hi;
  if sel_lo > sel_hi then invalid_arg "Op.var_sel: sel_lo > sel_hi";
  let sel_now =
    match sel_now with Some s -> s | None -> (sel_lo +. sel_hi) /. 2.
  in
  if sel_now < sel_lo || sel_now > sel_hi then
    invalid_arg "Op.var_sel: sel_now outside [sel_lo, sel_hi]";
  {
    name;
    kind = Var_selectivity { cost; sel_lo; sel_hi; sel_now };
    out_xfer_cost = xfer;
  }

let linear_exn op =
  match op.kind with
  | Linear l -> l
  | Join _ | Var_selectivity _ ->
    invalid_arg (Printf.sprintf "Op.linear_exn: %s is nonlinear" op.name)

let is_nonlinear op =
  match op.kind with
  | Linear _ -> false
  | Join _ | Var_selectivity _ -> true

let pp fmt op =
  match op.kind with
  | Linear { costs; selectivities } ->
    Format.fprintf fmt "%s(linear, arity=%d, cost=%a, sel=%a)" op.name
      (Array.length costs) Linalg.Vec.pp costs Linalg.Vec.pp selectivities
  | Join { window; cost_per_pair; sel_per_pair } ->
    Format.fprintf fmt "%s(join, w=%g, c=%g, s=%g)" op.name window cost_per_pair
      sel_per_pair
  | Var_selectivity { cost; sel_lo; sel_hi; sel_now } ->
    Format.fprintf fmt "%s(var_sel, c=%g, s in [%g,%g], now %g)" op.name cost
      sel_lo sel_hi sel_now
