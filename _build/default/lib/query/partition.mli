(** Data-parallel operator partitioning (§7.3.1: "parallelization
    techniques (e.g., range-based data partitioning) significantly
    increase the number of operator instances, thus creating much
    wider, larger graphs").

    [split_op] replaces one linear operator by [ways] instances, each
    fed by a {e shard} filter modelling hash/range routing: the shard
    passes [1/ways] of the stream (selectivity [1/ways]) and charges
    [route_cost / ways] per tuple, so the total routing overhead is
    [route_cost] per input tuple regardless of the fan-out.  Instance
    outputs are merged by a zero-ish-cost union, so downstream wiring
    is unchanged.

    The transformation preserves the graph's end-to-end stream rates
    exactly and adds only the routing/merge overhead to the total load —
    but it splits the operator's load coefficient across [ways]
    independently placeable units, which is what lets ROD balance
    narrow graphs.  Joins and drifting-selectivity operators are left
    unsplit (partitioning a windowed join changes its semantics). *)

val split_op :
  ?route_cost:float ->
  ?merge_cost:float ->
  Graph.t ->
  op:int ->
  ways:int ->
  Graph.t
(** Split a single-input linear operator.  @raise Invalid_argument for
    nonlinear or multi-input operators, or [ways < 2]. *)

val split_all :
  ?route_cost:float -> ?merge_cost:float -> ways:int -> Graph.t -> Graph.t
(** Split every splittable operator [ways] ways (single-input linear
    operators only; others are kept as they are). *)

val splittable : Graph.t -> int -> bool
