(** Random query-graph generation following the paper's experimental
    setup (§7.1):

    - the graph is a collection of operator trees, one rooted at each
      system input stream;
    - every tree has the same number of operators ([ops_per_tree]);
    - each tree node spawns one to three downstream operators with equal
      probability (until the tree's operator budget is exhausted);
    - operators are "delay" operators with per-tuple cost uniform in
      [0.1 ms, 1 ms]; half of them (randomly chosen per tree) have
      selectivity one, the rest have selectivity uniform in [0.5, 1]. *)

type params = {
  n_inputs : int;  (** [d]: number of input streams (= trees). *)
  ops_per_tree : int;  (** Operators per tree; total [m = d * ops_per_tree]. *)
  cost_lo : float;  (** Minimum per-tuple cost (seconds). *)
  cost_hi : float;  (** Maximum per-tuple cost (seconds). *)
  sel_lo : float;  (** Minimum selectivity for non-unit operators. *)
  sel_hi : float;  (** Maximum selectivity for non-unit operators. *)
  xfer_cost : float;
      (** Per-tuple network transfer cost on every stream (0 when
          communication is free). *)
}

val default : params
(** The paper's setting: costs in [1e-4, 1e-3] s, half unit selectivity,
    half uniform in [0.5, 1], no communication cost. *)

val generate : rng:Random.State.t -> params -> Graph.t
(** Draws a random graph.  Deterministic given the RNG state. *)

val generate_trees :
  rng:Random.State.t -> n_inputs:int -> ops_per_tree:int -> Graph.t
(** [generate_trees] with all other parameters at {!default}. *)
