type source =
  | Sys_input of int
  | Op_output of int

type t = {
  n_inputs : int;
  ops : Op.t array;
  inputs_of : source array array;
  input_xfer_cost : float array;
}

let n_ops g = Array.length g.ops

let n_inputs g = g.n_inputs

let op g j = g.ops.(j)

let sources g j = Array.to_list g.inputs_of.(j)

(* Topological sort by DFS; also serves as the acyclicity check. *)
let topo_order_exn ops inputs_of =
  let m = Array.length ops in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make m 0 in
  let order = ref [] in
  let rec visit j =
    match state.(j) with
    | 1 -> invalid_arg "Graph: cycle detected"
    | 2 -> ()
    | _ ->
      state.(j) <- 1;
      Array.iter
        (function Op_output j' -> visit j' | Sys_input _ -> ())
        inputs_of.(j);
      state.(j) <- 2;
      order := j :: !order
  in
  for j = 0 to m - 1 do
    visit j
  done;
  List.rev !order

let create ?input_xfer_cost ~n_inputs ~ops () =
  if n_inputs < 1 then invalid_arg "Graph.create: n_inputs < 1";
  let m = List.length ops in
  let op_array = Array.of_list (List.map fst ops) in
  let inputs_of =
    Array.of_list (List.map (fun (_, srcs) -> Array.of_list srcs) ops)
  in
  let input_xfer_cost =
    match input_xfer_cost with
    | None -> Array.make n_inputs 0.
    | Some xs ->
      if Array.length xs <> n_inputs then
        invalid_arg "Graph.create: input_xfer_cost length <> n_inputs";
      Array.iter
        (fun x -> if x < 0. then invalid_arg "Graph.create: negative xfer cost")
        xs;
      Array.copy xs
  in
  Array.iteri
    (fun j op ->
      let srcs = inputs_of.(j) in
      if Array.length srcs <> Op.arity op then
        invalid_arg
          (Printf.sprintf "Graph.create: op %d (%s) expects %d inputs, got %d" j
             op.Op.name (Op.arity op) (Array.length srcs));
      Array.iter
        (function
          | Sys_input k ->
            if k < 0 || k >= n_inputs then
              invalid_arg
                (Printf.sprintf "Graph.create: op %d reads bad input stream %d" j
                   k)
          | Op_output j' ->
            if j' < 0 || j' >= m then
              invalid_arg
                (Printf.sprintf "Graph.create: op %d reads bad op output %d" j j'))
        srcs)
    op_array;
  ignore (topo_order_exn op_array inputs_of);
  { n_inputs; ops = op_array; inputs_of; input_xfer_cost }

let consumers g src =
  let acc = ref [] in
  for j = n_ops g - 1 downto 0 do
    if Array.exists (fun s -> s = src) g.inputs_of.(j) then acc := j :: !acc
  done;
  !acc

let sinks g =
  let feeds = Array.make (n_ops g) false in
  Array.iter
    (Array.iter (function Op_output j -> feeds.(j) <- true | Sys_input _ -> ()))
    g.inputs_of;
  let acc = ref [] in
  for j = n_ops g - 1 downto 0 do
    if not feeds.(j) then acc := j :: !acc
  done;
  !acc

let topo_order g = topo_order_exn g.ops g.inputs_of

let has_nonlinear g = Array.exists Op.is_nonlinear g.ops

let arcs g =
  let acc = ref [] in
  for j = n_ops g - 1 downto 0 do
    Array.iter (fun src -> acc := (src, j) :: !acc) g.inputs_of.(j)
  done;
  List.rev (List.rev !acc)

let arc_xfer_cost g = function
  | Sys_input k -> g.input_xfer_cost.(k)
  | Op_output j -> (op g j).Op.out_xfer_cost

let restrict_names g = Array.map (fun o -> o.Op.name) g.ops

let pp_source fmt = function
  | Sys_input k -> Format.fprintf fmt "I%d" k
  | Op_output j -> Format.fprintf fmt "o%d" j

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d inputs, %d operators@," g.n_inputs
    (n_ops g);
  Array.iteri
    (fun j o ->
      Format.fprintf fmt "  o%d <- [%a] : %a@," j
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_source)
        (sources g j) Op.pp o)
    g.ops;
  Format.fprintf fmt "@]"
