(* Pastel fill colors cycled per node. *)
let palette =
  [|
    "#aec7e8"; "#ffbb78"; "#98df8a"; "#ff9896"; "#c5b0d5"; "#c49c94";
    "#f7b6d2"; "#dbdb8d"; "#9edae5"; "#cccccc";
  |]

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let op_label graph j =
  let op = Graph.op graph j in
  match op.Op.kind with
  | Op.Linear { costs; selectivities } when Array.length costs = 1 ->
    Printf.sprintf "%s\\nc=%.3g s=%.3g" op.Op.name costs.(0) selectivities.(0)
  | Op.Linear _ -> Printf.sprintf "%s\\n(union)" op.Op.name
  | Op.Join { window; cost_per_pair; sel_per_pair } ->
    Printf.sprintf "%s\\njoin w=%.3g c=%.3g s=%.3g" op.Op.name window
      cost_per_pair sel_per_pair
  | Op.Var_selectivity { cost; sel_lo; sel_hi; _ } ->
    Printf.sprintf "%s\\nc=%.3g s in [%.2g,%.2g]" op.Op.name cost sel_lo sel_hi

let to_dot ?assignment ?(rankdir = "LR") graph =
  (match assignment with
  | Some a when Array.length a <> Graph.n_ops graph ->
    invalid_arg "Graph_dot.to_dot: assignment length"
  | Some _ | None -> ());
  let buffer = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "digraph query {\n  rankdir=%s;\n  node [fontsize=10];\n" rankdir;
  for k = 0 to Graph.n_inputs graph - 1 do
    out "  I%d [shape=invtriangle, label=\"I%d\"];\n" k k
  done;
  for j = 0 to Graph.n_ops graph - 1 do
    let style =
      match assignment with
      | None -> "shape=box"
      | Some a ->
        Printf.sprintf
          "shape=box, style=filled, fillcolor=\"%s\", xlabel=\"node %d\""
          palette.(a.(j) mod Array.length palette)
          a.(j)
    in
    out "  o%d [%s, label=\"%s\"];\n" j style (escape (op_label graph j))
  done;
  List.iter
    (fun (src, dst) ->
      match src with
      | Graph.Sys_input k -> out "  I%d -> o%d;\n" k dst
      | Graph.Op_output u -> out "  o%d -> o%d;\n" u dst)
    (Graph.arcs graph);
  (* Sinks point at an application marker. *)
  List.iter
    (fun j ->
      out "  app%d [shape=cds, label=\"app\"];\n  o%d -> app%d;\n" j j j)
    (Graph.sinks graph);
  out "}\n";
  Buffer.contents buffer

let save ?assignment graph ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?assignment graph))
