lib/query/graph.ml: Array Format List Op Printf
