lib/query/partition.mli: Graph
