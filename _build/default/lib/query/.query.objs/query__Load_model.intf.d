lib/query/load_model.mli: Format Graph Linalg
