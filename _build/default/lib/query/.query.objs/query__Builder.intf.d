lib/query/builder.mli: Graph
