lib/query/graph.mli: Format Op
