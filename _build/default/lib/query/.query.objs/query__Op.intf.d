lib/query/op.mli: Format
