lib/query/randgraph.ml: Array Graph List Op Printf Queue Random
