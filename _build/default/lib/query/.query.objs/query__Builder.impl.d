lib/query/builder.ml: Graph List Op Printf
