lib/query/graph_dot.ml: Array Buffer Fun Graph List Op Printf String
