lib/query/graph_io.ml: Array Buffer Fun Graph List Op Printf String
