lib/query/randgraph.mli: Graph Random
