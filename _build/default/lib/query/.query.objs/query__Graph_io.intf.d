lib/query/graph_io.mli: Graph
