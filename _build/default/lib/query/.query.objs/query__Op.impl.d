lib/query/op.ml: Array Format Linalg Printf
