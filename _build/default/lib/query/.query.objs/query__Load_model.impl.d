lib/query/load_model.ml: Array Format Graph Hashtbl Linalg List Op Printf
