lib/query/graph_dot.mli: Graph
