lib/query/partition.ml: Array Graph List Op Printf
