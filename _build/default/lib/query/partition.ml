let splittable graph j =
  match (Graph.op graph j).Op.kind with
  | Op.Linear { costs; _ } -> Array.length costs = 1
  | Op.Join _ | Op.Var_selectivity _ -> false

let split_op ?(route_cost = 1e-5) ?(merge_cost = 0.) graph ~op:j ~ways =
  if ways < 2 then invalid_arg "Partition.split_op: ways < 2";
  if j < 0 || j >= Graph.n_ops graph then
    invalid_arg "Partition.split_op: bad operator index";
  if not (splittable graph j) then
    invalid_arg "Partition.split_op: only single-input linear operators split";
  if route_cost < 0. || merge_cost < 0. then
    invalid_arg "Partition.split_op: negative cost";
  let m = Graph.n_ops graph in
  let original = Graph.op graph j in
  let source =
    match Graph.sources graph j with [ s ] -> s | _ -> assert false
  in
  let spec = Op.linear_exn original in
  (* Slot [j] becomes the merge union, so every existing reference to
     [Op_output j] keeps meaning "this operator's (merged) output".
     Shards live at indices [m .. m+ways-1], instances just after; the
     union's forward references are fine (validity is topological, not
     positional). *)
  let shard i =
    ( Op.filter
        ~name:(Printf.sprintf "%s.shard%d" original.Op.name i)
        ~cost:(route_cost /. float_of_int ways)
        ~sel:(1. /. float_of_int ways)
        (),
      [ source ] )
  in
  let instance i =
    ( {
        original with
        Op.name = Printf.sprintf "%s.part%d" original.Op.name i;
        kind =
          Op.Linear
            {
              costs = Array.copy spec.Op.costs;
              selectivities = Array.copy spec.Op.selectivities;
            };
      },
      [ Graph.Op_output (m + i) ] )
  in
  let union =
    ( Op.union
        ~name:(original.Op.name ^ ".merge")
        ~xfer:original.Op.out_xfer_cost ~cost:merge_cost ~n_inputs:ways (),
      List.init ways (fun i -> Graph.Op_output (m + ways + i)) )
  in
  let kept =
    List.init m (fun j' ->
        if j' = j then union
        else (Graph.op graph j', Graph.sources graph j'))
  in
  let appended = List.init ways shard @ List.init ways instance in
  Graph.create
    ~input_xfer_cost:graph.Graph.input_xfer_cost
    ~n_inputs:(Graph.n_inputs graph)
    ~ops:(kept @ appended) ()

let split_all ?route_cost ?merge_cost ~ways graph =
  let m0 = Graph.n_ops graph in
  let result = ref graph in
  for j = 0 to m0 - 1 do
    if splittable !result j then
      result := split_op ?route_cost ?merge_cost !result ~op:j ~ways
  done;
  !result
