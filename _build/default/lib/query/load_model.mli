(** Linear load models of query graphs (§2.2 and §6.2 of the paper).

    For a purely linear graph, every operator's load and output rate is a
    linear function of the [d] system input rates, so the model lives in
    a [d]-dimensional variable space.  Nonlinear operators are handled by
    the paper's {e linearization} technique: each nonlinear point in the
    graph introduces one fresh rate variable, cutting the graph into
    linear pieces.  Concretely:

    - a time-window join introduces a variable for its {e candidate pair
      rate} [p = window * r_u * r_v]; the join's load is
      [cost_per_pair * p] and its output rate [sel_per_pair * p], both
      linear in [p].  (The paper uses the output rate as the variable;
      the pair rate is equivalent up to the constant factor
      [sel_per_pair] and also covers joins with zero selectivity.)
    - an operator with non-constant selectivity keeps its (linear) load
      but introduces a variable for its output rate.

    The resulting model has [d_total = d + #nonlinear points] variables;
    the first [d] are the system input rates. *)

type var_origin =
  | System of int  (** System input stream [k]. *)
  | Join_pairs of int  (** Pair-rate variable of join operator [j]. *)
  | Cut_output of int
      (** Output-rate variable of variable-selectivity operator [j]. *)

type t = private {
  graph : Graph.t;
  lo : Linalg.Mat.t;
      (** [m x d_total] operator load-coefficient matrix: row [j] is
          operator [j]'s load as a linear function of the variables. *)
  out_rate : Linalg.Mat.t;
      (** [m x d_total]: row [j] is operator [j]'s output rate as a
          linear function of the variables. *)
  var_origins : var_origin array;  (** Length [d_total]. *)
}

val derive : Graph.t -> t
(** Builds the (linearized) load model of a graph. *)

val d_total : t -> int
(** Number of variables in the model. *)

val d_system : t -> int
(** Number of system input streams (= [Graph.n_inputs]). *)

val n_ops : t -> int

val load_coefficients : t -> Linalg.Mat.t
(** The [m x d_total] matrix [L^o] (shared, treat as read-only). *)

val total_coefficients : t -> Linalg.Vec.t
(** [l_k = sum_j l^o_{jk}] for each variable [k] — the column sums of
    [L^o] (Table 1 of the paper). *)

val source_rate_vec : t -> Graph.source -> Linalg.Vec.t
(** The rate of a stream as a linear function of the variables. *)

val eval_vars : t -> sys_rates:Linalg.Vec.t -> Linalg.Vec.t
(** Concrete values of all [d_total] variables at a given system rate
    point, evaluating the {e actual} (nonlinear) semantics of joins and
    the current selectivity of drifting operators. *)

val stream_rate_at : t -> sys_rates:Linalg.Vec.t -> Graph.source -> float
(** Actual numeric rate of any stream at a system rate point. *)

val op_load_at : t -> sys_rates:Linalg.Vec.t -> int -> float
(** Actual CPU load (seconds of CPU per second) of operator [j] at a
    system rate point. *)

val pp : Format.formatter -> t -> unit
