open Graph

let example1 ~c1 ~c2 ~c3 ~c4 ~s1 ~s3 =
  create ~n_inputs:2
    ~ops:
      [
        (Op.filter ~name:"o1" ~cost:c1 ~sel:s1 (), [ Sys_input 0 ]);
        (Op.filter ~name:"o2" ~cost:c2 ~sel:1. (), [ Op_output 0 ]);
        (Op.filter ~name:"o3" ~cost:c3 ~sel:s3 (), [ Sys_input 1 ]);
        (Op.filter ~name:"o4" ~cost:c4 ~sel:1. (), [ Op_output 2 ]);
      ]
    ()

let example2 () = example1 ~c1:4. ~c2:6. ~c3:9. ~c4:4. ~s1:1. ~s3:0.5

let example2_plans =
  [
    ("plan-a {o1,o4}|{o2,o3}", [| 0; 1; 1; 0 |]);
    ("plan-b {o1,o3}|{o2,o4}", [| 0; 1; 0; 1 |]);
    ("plan-c {o1,o2}|{o3,o4}", [| 0; 0; 1; 1 |]);
  ]

let example3 () =
  create ~n_inputs:2
    ~ops:
      [
        ( Op.var_sel ~name:"o1" ~cost:2. ~sel_lo:0.2 ~sel_hi:1. ~sel_now:0.6 (),
          [ Sys_input 0 ] );
        (Op.map ~name:"o2" ~cost:3. (), [ Op_output 0 ]);
        (Op.filter ~name:"o3" ~cost:4. ~sel:0.8 (), [ Sys_input 1 ]);
        (Op.map ~name:"o4" ~cost:1. (), [ Op_output 2 ]);
        ( Op.join ~name:"o5" ~window:2. ~cost_per_pair:0.5 ~sel:0.1 (),
          [ Op_output 1; Op_output 3 ] );
        (Op.map ~name:"o6" ~cost:2. (), [ Op_output 4 ]);
      ]
    ()

let chain ?(xfer = 0.) ~n_ops ~cost ~sel () =
  if n_ops < 1 then invalid_arg "Builder.chain: n_ops < 1";
  let op i =
    let name = Printf.sprintf "stage%d" i in
    let src = if i = 0 then Sys_input 0 else Op_output (i - 1) in
    (Op.filter ~name ~xfer ~cost ~sel (), [ src ])
  in
  create ~n_inputs:1 ~ops:(List.init n_ops op) ()

let diamond ~cost =
  create ~n_inputs:1
    ~ops:
      [
        (Op.filter ~name:"left" ~cost ~sel:0.5 (), [ Sys_input 0 ]);
        (Op.filter ~name:"right" ~cost ~sel:0.5 (), [ Sys_input 0 ]);
        ( Op.union ~name:"merge" ~cost:(cost /. 2.) ~n_inputs:2 (),
          [ Op_output 0; Op_output 1 ] );
      ]
    ()

(* Per monitored link: parse -> {1s, 10s, 60s aggregates} -> threshold
   filter; one global union of all threshold streams. *)
let traffic_monitoring ~n_links =
  if n_links < 1 then invalid_arg "Builder.traffic_monitoring: n_links < 1";
  let ops = ref [] in
  let count = ref 0 in
  let push op = ops := op :: !ops; incr count; !count - 1 in
  let alert_streams = ref [] in
  for link = 0 to n_links - 1 do
    let label suffix = Printf.sprintf "link%d.%s" link suffix in
    let parse =
      push (Op.map ~name:(label "parse") ~cost:0.3e-3 (), [ Sys_input link ])
    in
    let windows = [ ("agg1s", 0.20); ("agg10s", 0.05); ("agg60s", 0.01) ] in
    let threshold agg_idx granularity =
      push
        ( Op.filter
            ~name:(label (granularity ^ ".thresh"))
            ~cost:0.1e-3 ~sel:0.1 (),
          [ Op_output agg_idx ] )
    in
    List.iter
      (fun (granularity, sel) ->
        let agg =
          push
            ( Op.aggregate ~name:(label granularity) ~cost:0.5e-3 ~sel (),
              [ Op_output parse ] )
        in
        alert_streams := Op_output (threshold agg granularity) :: !alert_streams)
      windows
  done;
  let alerts = List.rev !alert_streams in
  let _union =
    push
      ( Op.union ~name:"alerts" ~cost:0.05e-3 ~n_inputs:(List.length alerts) (),
        alerts )
  in
  create ~n_inputs:n_links ~ops:(List.rev !ops) ()

let financial_compliance ~n_rules =
  if n_rules < 1 then invalid_arg "Builder.financial_compliance: n_rules < 1";
  let ops = ref [] in
  let count = ref 0 in
  let push op = ops := op :: !ops; incr count; !count - 1 in
  (* Shared front end over two market feeds. *)
  let norm0 = push (Op.map ~name:"normalize.A" ~cost:0.4e-3 (), [ Sys_input 0 ]) in
  let norm1 = push (Op.map ~name:"normalize.B" ~cost:0.4e-3 (), [ Sys_input 1 ]) in
  let merged =
    push
      ( Op.union ~name:"merge" ~cost:0.1e-3 ~n_inputs:2 (),
        [ Op_output norm0; Op_output norm1 ] )
  in
  let sessions =
    push (Op.map ~name:"sessionize" ~cost:0.3e-3 (), [ Op_output merged ])
  in
  let enrich =
    push (Op.map ~name:"enrich" ~cost:0.5e-3 (), [ Op_output sessions ])
  in
  let dedup =
    push (Op.filter ~name:"dedup" ~cost:0.2e-3 ~sel:0.9 (), [ Op_output enrich ])
  in
  let audit =
    push (Op.map ~name:"audit-tap" ~cost:0.1e-3 (), [ Op_output dedup ])
  in
  ignore audit;
  let violations = ref [] in
  for rule = 0 to n_rules - 1 do
    let label suffix = Printf.sprintf "rule%d.%s" rule suffix in
    (* Deterministic per-rule variation so rules are not identical. *)
    let spread k = 0.5 +. (float_of_int ((rule * 7919) mod k) /. float_of_int k) in
    let select =
      push
        ( Op.filter ~name:(label "select")
            ~cost:(0.2e-3 *. spread 13)
            ~sel:(0.2 +. (0.05 *. spread 11))
            (),
          [ Op_output dedup ] )
    in
    let window =
      push
        ( Op.aggregate ~name:(label "window")
            ~cost:(0.4e-3 *. spread 17)
            ~sel:(0.05 +. (0.03 *. spread 7))
            (),
          [ Op_output select ] )
    in
    let check =
      push
        ( Op.filter ~name:(label "check")
            ~cost:(0.3e-3 *. spread 19)
            ~sel:0.02 (),
          [ Op_output window ] )
    in
    violations := Op_output check :: !violations
  done;
  let alerts = List.rev !violations in
  let _sink =
    push
      ( Op.union ~name:"violations" ~cost:0.05e-3
          ~n_inputs:(List.length alerts) (),
        alerts )
  in
  create ~n_inputs:2 ~ops:(List.rev !ops) ()
