(** Ready-made query graphs: the paper's worked examples plus the two
    application workloads its evaluation and motivation describe. *)

val example1 :
  c1:float -> c2:float -> c3:float -> c4:float -> s1:float -> s3:float -> Graph.t
(** Figure 4: two independent chains [I1 -> o1 -> o2] and
    [I2 -> o3 -> o4]; [o1]/[o3] have selectivities [s1]/[s3], the chain
    tails have selectivity 1.  Loads: [c1 r1], [c2 s1 r1], [c3 r2],
    [c4 s3 r2]. *)

val example2 : unit -> Graph.t
(** Example 2's instantiation: [c = (4, 6, 9, 4)], [s1 = 1], [s3 = 0.5],
    giving [L^o = [(4,0); (6,0); (0,9); (0,2)]]. *)

val example2_plans : (string * int array) list
(** Three two-node placements of {!example2} ops, in the spirit of
    Table 2 / Figure 5 (the paper's exact plans (b) and (c) are not
    recoverable from the text, so we use the three natural partitions):
    (a) [{o1,o4} | {o2,o3}], (b) [{o1,o3} | {o2,o4}],
    (c) [{o1,o2} | {o3,o4}].  Each array maps operator index to node. *)

val example3 : unit -> Graph.t
(** Figure 13 / Example 3: a nonlinear graph.  [I1 -> o1 -> o2 -> o5],
    [I2 -> o3 -> o4 -> o5], [o5 -> o6], where [o1] has non-constant
    selectivity and [o5] is a time-window join.  Its load model needs
    two introduced variables. *)

val chain :
  ?xfer:float -> n_ops:int -> cost:float -> sel:float -> unit -> Graph.t
(** Single input stream feeding a linear pipeline of [n_ops] identical
    operators. *)

val diamond : cost:float -> Graph.t
(** One input fanned out to two filters whose outputs are unioned — the
    smallest graph exercising fan-out and multi-input operators. *)

val traffic_monitoring : n_links:int -> Graph.t
(** An aggregation-heavy network-traffic-monitoring workload in the
    style of §7.1: per monitored link, a parse/filter front end feeding
    per-window aggregates at three granularities plus a threshold
    detector; a global union merges alerts. *)

val financial_compliance : n_rules:int -> Graph.t
(** A wide compliance application as motivated in §7.3.1: two market
    feeds, a shared normalisation front end and [n_rules] shallow
    per-rule subtrees (filter -> aggregate -> check), yielding roughly
    [8 + 3*n_rules] operators. *)
