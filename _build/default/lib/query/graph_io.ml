let float_to_string x = Printf.sprintf "%.17g" x

let floats_to_string xs =
  String.concat "," (List.map float_to_string (Array.to_list xs))

let source_to_string = function
  | Graph.Sys_input k -> Printf.sprintf "I%d" k
  | Graph.Op_output j -> Printf.sprintf "o%d" j

let check_name name =
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '=' then
        invalid_arg
          (Printf.sprintf "Graph_io: operator name %S contains reserved characters"
             name))
    name

let op_to_string graph j =
  let op = Graph.op graph j in
  check_name op.Op.name;
  let inputs =
    String.concat "," (List.map source_to_string (Graph.sources graph j))
  in
  let kind =
    match op.Op.kind with
    | Op.Linear { costs; selectivities } ->
      Printf.sprintf "linear costs=%s sels=%s" (floats_to_string costs)
        (floats_to_string selectivities)
    | Op.Join { window; cost_per_pair; sel_per_pair } ->
      Printf.sprintf "join window=%s cpp=%s spp=%s" (float_to_string window)
        (float_to_string cost_per_pair)
        (float_to_string sel_per_pair)
    | Op.Var_selectivity { cost; sel_lo; sel_hi; sel_now } ->
      Printf.sprintf "varsel cost=%s lo=%s hi=%s now=%s" (float_to_string cost)
        (float_to_string sel_lo) (float_to_string sel_hi)
        (float_to_string sel_now)
  in
  Printf.sprintf "op name=%s inputs=%s %s xfer=%s" op.Op.name inputs kind
    (float_to_string op.Op.out_xfer_cost)

let to_string graph =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "rodgraph v1\n";
  Buffer.add_string buffer
    (Printf.sprintf "inputs %d xfer=%s\n" (Graph.n_inputs graph)
       (floats_to_string graph.Graph.input_xfer_cost));
  for j = 0 to Graph.n_ops graph - 1 do
    Buffer.add_string buffer (op_to_string graph j);
    Buffer.add_char buffer '\n'
  done;
  Buffer.contents buffer

(* --- parsing --- *)

let fail line_no msg = failwith (Printf.sprintf "Graph_io: line %d: %s" line_no msg)

let parse_float line_no what s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail line_no (Printf.sprintf "bad float for %s: %S" what s)

let parse_floats line_no what s =
  Array.of_list
    (List.map (parse_float line_no what) (String.split_on_char ',' s))

let parse_kv line_no token =
  match String.index_opt token '=' with
  | Some i ->
    ( String.sub token 0 i,
      String.sub token (i + 1) (String.length token - i - 1) )
  | None -> fail line_no (Printf.sprintf "expected key=value, got %S" token)

let parse_source line_no s =
  let tail () =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k -> k
    | None -> fail line_no (Printf.sprintf "bad stream reference %S" s)
  in
  if String.length s >= 2 && s.[0] = 'I' then Graph.Sys_input (tail ())
  else if String.length s >= 2 && s.[0] = 'o' then Graph.Op_output (tail ())
  else fail line_no (Printf.sprintf "bad stream reference %S" s)

let lookup line_no kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> fail line_no (Printf.sprintf "missing field %S" key)

let parse_op line_no tokens =
  match tokens with
  | name_tok :: inputs_tok :: kind :: rest ->
    let _, name = parse_kv line_no name_tok in
    let _, inputs_str = parse_kv line_no inputs_tok in
    let sources =
      List.map (parse_source line_no) (String.split_on_char ',' inputs_str)
    in
    let kvs = List.map (parse_kv line_no) rest in
    let get = lookup line_no kvs in
    let xfer = parse_float line_no "xfer" (get "xfer") in
    let op =
      match kind with
      | "linear" ->
        let costs = parse_floats line_no "costs" (get "costs") in
        let selectivities = parse_floats line_no "sels" (get "sels") in
        if Array.length costs <> Array.length selectivities then
          fail line_no "costs/sels arity mismatch";
        if Array.length costs = 1 then
          Op.delay ~name ~xfer ~cost:costs.(0) ~sel:selectivities.(0) ()
        else begin
          (* General multi-input linear operator: rebuild through union
             then fix the parameter arrays. *)
          let base = Op.union ~name ~xfer ~cost:0. ~n_inputs:(Array.length costs) () in
          { base with Op.kind = Op.Linear { costs; selectivities } }
        end
      | "join" ->
        Op.join ~name ~xfer
          ~window:(parse_float line_no "window" (get "window"))
          ~cost_per_pair:(parse_float line_no "cpp" (get "cpp"))
          ~sel:(parse_float line_no "spp" (get "spp"))
          ()
      | "varsel" ->
        Op.var_sel ~name ~xfer
          ~cost:(parse_float line_no "cost" (get "cost"))
          ~sel_lo:(parse_float line_no "lo" (get "lo"))
          ~sel_hi:(parse_float line_no "hi" (get "hi"))
          ~sel_now:(parse_float line_no "now" (get "now"))
          ()
      | other -> fail line_no (Printf.sprintf "unknown operator kind %S" other)
    in
    (op, sources)
  | _ -> fail line_no "malformed operator line"

let significant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) ->
         line <> "" && not (String.length line > 0 && line.[0] = '#'))

let of_string text =
  match significant_lines text with
  | (l1, header) :: (l2, inputs_line) :: op_lines ->
    if header <> "rodgraph v1" then fail l1 "expected header 'rodgraph v1'";
    let n_inputs, input_xfer_cost =
      match String.split_on_char ' ' inputs_line |> List.filter (( <> ) "") with
      | [ "inputs"; count; xfer_tok ] ->
        let n =
          match int_of_string_opt count with
          | Some n -> n
          | None -> fail l2 "bad input count"
        in
        let _, xfer_str = parse_kv l2 xfer_tok in
        (n, parse_floats l2 "xfer" xfer_str)
      | _ -> fail l2 "expected 'inputs <d> xfer=...'"
    in
    let ops =
      List.map
        (fun (line_no, line) ->
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | "op" :: tokens -> parse_op line_no tokens
          | _ -> fail line_no "expected an 'op' line")
        op_lines
    in
    Graph.create ~input_xfer_cost ~n_inputs ~ops ()
  | _ -> failwith "Graph_io: truncated input"

let save graph ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string graph))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path = of_string (read_file path)

let assignment_to_string assignment =
  "rodplan v1\n"
  ^ String.concat " " (List.map string_of_int (Array.to_list assignment))
  ^ "\n"

let assignment_of_string text =
  match significant_lines text with
  | (l1, header) :: rest ->
    if header <> "rodplan v1" then fail l1 "expected header 'rodplan v1'";
    let numbers =
      List.concat_map
        (fun (line_no, line) ->
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.map (fun tok ->
                 match int_of_string_opt tok with
                 | Some n -> n
                 | None -> fail line_no (Printf.sprintf "bad node index %S" tok)))
        rest
    in
    Array.of_list numbers
  | [] -> failwith "Graph_io: empty plan"

let save_assignment assignment ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (assignment_to_string assignment))

let load_assignment ~path = assignment_of_string (read_file path)
