(** The four load-distribution baselines ROD is compared against
    (§7.2).  Each returns an operator-to-node assignment for a
    {!Rod.Problem.t}.

    The three balancing algorithms optimize for a {e single} workload
    point (the observed average input rates), which is exactly the
    behaviour the paper argues is fragile; the random algorithm only
    equalizes operator counts. *)

val random_balanced : rng:Random.State.t -> Rod.Problem.t -> int array
(** Random placement keeping the number of operators per node as equal
    as possible: a random permutation of operators dealt round-robin to
    a random rotation of the nodes. *)

val llf : rates:Linalg.Vec.t -> Rod.Problem.t -> int array
(** Largest-Load-First load balancing: operators ordered by their load
    at the given average rate point, descending, each assigned to the
    node with the least accumulated load relative to its capacity. *)

val connected :
  rates:Linalg.Vec.t -> graph:Query.Graph.t -> Rod.Problem.t -> int array
(** Connected load balancing: (1) assign the most loaded unassigned
    operator to the least (relatively) loaded node [N_s]; (2) keep
    pulling operators connected to [N_s]'s operators onto [N_s], largest
    load first, while [N_s]'s load stays below the per-node average;
    (3) repeat.  Minimizes inter-node streams at the cost of putting
    whole input subtrees on one node. *)

val correlation :
  ?tolerance:float -> series:Linalg.Mat.t -> Rod.Problem.t -> int array
(** Correlation-based load balancing (the static adaptation of Xing et
    al., ICDE 2005, used by the paper as a baseline): [series] is a
    [T x d] matrix of input-rate samples over time; each operator's load
    time series is [L^o_j . R(t)].  Operators are placed in descending
    mean-load order onto the node whose aggregate load series has the
    lowest correlation with the operator's (operators downstream of the
    same input are highly correlated and thus end up separated); ties
    within [tolerance] (default 0.05) go to the least relatively loaded
    node.  Larger tolerances blend in more LLF-style balancing. *)

val names : string list
(** Display names, in the paper's order: Random, LLF, Connected,
    Correlation. *)
