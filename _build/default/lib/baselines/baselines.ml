module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem

let names = [ "Random"; "LLF"; "Connected"; "Correlation" ]

let random_balanced ~rng problem =
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  let order = Array.init m (fun j -> j) in
  for i = m - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let start = Random.State.int rng n in
  let assignment = Array.make m 0 in
  Array.iteri (fun pos j -> assignment.(j) <- (start + pos) mod n) order;
  assignment

(* Operators by descending load at the reference rate point. *)
let by_load_desc problem ~rates =
  let m = Problem.n_ops problem in
  let load j = Vec.dot (Problem.op_load problem j) rates in
  let loads = Array.init m load in
  let order = List.init m (fun j -> j) in
  (loads, List.stable_sort (fun a b -> compare loads.(b) loads.(a)) order)

let check_rates problem rates =
  if Vec.dim rates <> Problem.dim problem then
    invalid_arg "Baselines: rate point dimension mismatch";
  if Vec.exists (fun r -> r < 0.) rates then
    invalid_arg "Baselines: negative rate"

let llf ~rates problem =
  check_rates problem rates;
  let n = Problem.n_nodes problem in
  let caps = problem.Problem.caps in
  let loads, order = by_load_desc problem ~rates in
  let node_load = Array.make n 0. in
  let assignment = Array.make (Problem.n_ops problem) 0 in
  let least_loaded () =
    Vec.argmin (Vec.init n (fun i -> node_load.(i) /. caps.(i)))
  in
  List.iter
    (fun j ->
      let i = least_loaded () in
      assignment.(j) <- i;
      node_load.(i) <- node_load.(i) +. loads.(j))
    order;
  assignment

let neighbor_table graph m =
  if Query.Graph.n_ops graph <> m then
    invalid_arg "Baselines.connected: graph has a different operator count";
  let neighbors = Array.make m [] in
  List.iter
    (fun (src, dst) ->
      match src with
      | Query.Graph.Op_output u ->
        neighbors.(u) <- dst :: neighbors.(u);
        neighbors.(dst) <- u :: neighbors.(dst)
      | Query.Graph.Sys_input _ -> ())
    (Query.Graph.arcs graph);
  neighbors

let connected ~rates ~graph problem =
  check_rates problem rates;
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  let caps = problem.Problem.caps in
  let neighbors = neighbor_table graph m in
  let loads, order = by_load_desc problem ~rates in
  let total_load = Array.fold_left ( +. ) 0. loads in
  let average = total_load /. float_of_int n in
  let node_load = Array.make n 0. in
  let assignment = Array.make m (-1) in
  let unassigned = ref order in
  let assign j i =
    assignment.(j) <- i;
    node_load.(i) <- node_load.(i) +. loads.(j);
    unassigned := List.filter (fun j' -> j' <> j) !unassigned
  in
  (* Most loaded unassigned operator connected to node [i], if any
     (candidates are scanned in global descending-load order). *)
  let connected_candidate i =
    List.find_opt
      (fun j -> List.exists (fun u -> assignment.(u) = i) neighbors.(j))
      !unassigned
  in
  while !unassigned <> [] do
    let i = Vec.argmin (Vec.init n (fun i -> node_load.(i) /. caps.(i))) in
    (match !unassigned with
    | seed :: _ -> assign seed i
    | [] -> assert false);
    let continue = ref true in
    while !continue do
      match connected_candidate i with
      | Some j when node_load.(i) +. loads.(j) < average -> assign j i
      | Some _ | None -> continue := false
    done
  done;
  assignment

let correlation ?(tolerance = 0.05) ~series problem =
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  let d = Problem.dim problem in
  if Mat.cols series <> d then
    invalid_arg "Baselines.correlation: series has wrong dimension";
  let steps = Mat.rows series in
  if steps < 2 then invalid_arg "Baselines.correlation: need >= 2 time steps";
  let caps = problem.Problem.caps in
  let op_series =
    Array.init m (fun j ->
        let lo_j = Problem.op_load problem j in
        Array.init steps (fun t -> Vec.dot lo_j (Mat.row series t)))
  in
  let mean_loads = Array.map Workload.Stats.mean op_series in
  let order = List.init m (fun j -> j) in
  let order =
    List.stable_sort (fun a b -> compare mean_loads.(b) mean_loads.(a)) order
  in
  let node_series = Array.init n (fun _ -> Array.make steps 0.) in
  let node_load = Array.make n 0. in
  let assignment = Array.make m 0 in
  let place j =
    let corr i = Workload.Stats.correlation op_series.(j) node_series.(i) in
    let corrs = Vec.init n corr in
    let best_corr = Vec.min_elt corrs in
    (* Among near-minimal correlations, prefer the least loaded node. *)
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if corrs.(i) <= best_corr +. tolerance then
        match !best with
        | -1 -> best := i
        | b -> if node_load.(i) /. caps.(i) < node_load.(b) /. caps.(b) then best := i
    done;
    let i = !best in
    assignment.(j) <- i;
    node_load.(i) <- node_load.(i) +. mean_loads.(j);
    for t = 0 to steps - 1 do
      node_series.(i).(t) <- node_series.(i).(t) +. op_series.(j).(t)
    done
  in
  List.iter place order;
  assignment
