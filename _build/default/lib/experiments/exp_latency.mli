(** End-to-end latency under bursty self-similar workloads (the paper's
    prototype experiments, §7.3): the same random graph placed by every
    algorithm is driven by PKT-style traces whose mean pushes the system
    toward the feasibility boundary.  Point-optimized balancers overload
    first; ROD's latency stays bounded longest. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
