module Problem = Rod.Problem
module Plan = Rod.Plan
module Ablation = Rod.Ablation

let name = "EXPABL ablating ROD's heuristics"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Mean feasible-set ratio (vs ideal) of each ablated variant on\n\
     random graphs (d=5, n=10).  The combination should dominate, with\n\
     the gap widest on narrow graphs where greedy mistakes are costly.";
  let d = 5 and n_nodes = 10 in
  let op_counts = if quick then [ 25; 100 ] else [ 25; 50; 100; 200 ] in
  let graphs = if quick then 3 else 10 in
  let samples = if quick then 2048 else 4096 in
  let rng = Random.State.make [| 81 |] in
  let rows =
    List.map
      (fun m ->
        let totals = List.map (fun v -> (v, ref 0.)) Ablation.all in
        for _ = 1 to graphs do
          let graph =
            Query.Randgraph.generate_trees ~rng ~n_inputs:d
              ~ops_per_tree:(m / d)
          in
          let problem =
            Problem.of_graph graph
              ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
          in
          List.iter
            (fun (variant, total) ->
              let assignment = Ablation.place variant problem in
              let est = Plan.volume_qmc ~samples (Plan.make problem assignment) in
              total := !total +. est.Feasible.Volume.ratio)
            totals
        done;
        string_of_int m
        :: List.map
             (fun v -> Report.fcell (!(List.assoc v totals) /. float_of_int graphs))
             Ablation.all)
      op_counts
  in
  Report.table fmt
    ~headers:("#ops" :: List.map Ablation.name Ablation.all)
    ~rows
