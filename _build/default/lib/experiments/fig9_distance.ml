module Vec = Linalg.Vec
module Mat = Linalg.Mat

let name = "FIG9 plane distance vs feasible size"

(* A random n x d node load matrix with the prescribed column sums:
   each stream's total coefficient split across nodes by normalized
   uniform draws. *)
let random_ln rng ~n ~l =
  let d = Vec.dim l in
  let ln = Mat.zeros n d in
  for k = 0 to d - 1 do
    let draws = Array.init n (fun _ -> 1e-6 +. Random.State.float rng 1.) in
    let total = Array.fold_left ( +. ) 0. draws in
    for i = 0 to n - 1 do
      Mat.set ln i k (l.(k) *. draws.(i) /. total)
    done
  done;
  ln

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Random node load matrices (n=10, d=3, column sums fixed): both the\n\
     lower and upper envelope of the feasible-size ratio grow with r/r*.";
  let matrices = if quick then 200 else 1000 in
  let samples = if quick then 1024 else 4096 in
  let n = 10 and d = 3 in
  let rng = Random.State.make [| 9 |] in
  let l = Vec.create d 10. in
  let caps = Vec.ones n in
  let c_total = Vec.sum caps in
  let r_ideal = 1. /. sqrt (float_of_int d) in
  let bins = 10 in
  let counts = Array.make bins 0 in
  let mins = Array.make bins infinity in
  let maxs = Array.make bins 0. in
  let sums = Array.make bins 0. in
  for _ = 1 to matrices do
    let ln = random_ln rng ~n ~l in
    (* Normalized weight rows: w_ik = (ln_ik / l_k) / (C_i / C_T). *)
    let rows =
      List.init n (fun i ->
          Vec.init d (fun k -> Mat.get ln i k /. l.(k) /. (caps.(i) /. c_total)))
    in
    let r = Feasible.Geometry.min_plane_distance rows in
    let ratio =
      (Feasible.Volume.ratio_qmc ~ln ~caps ~l ~samples ()).Feasible.Volume.ratio
    in
    let bin =
      min (bins - 1) (int_of_float (float_of_int bins *. r /. r_ideal))
    in
    counts.(bin) <- counts.(bin) + 1;
    sums.(bin) <- sums.(bin) +. ratio;
    if ratio < mins.(bin) then mins.(bin) <- ratio;
    if ratio > maxs.(bin) then maxs.(bin) <- ratio
  done;
  let rows =
    List.filter_map
      (fun b ->
        if counts.(b) = 0 then None
        else
          let lo = float_of_int b /. float_of_int bins in
          let hi = float_of_int (b + 1) /. float_of_int bins in
          let mean = sums.(b) /. float_of_int counts.(b) in
          Some
            [
              Printf.sprintf "%.1f-%.1f" lo hi;
              string_of_int counts.(b);
              Report.fcell mins.(b);
              Report.fcell mean;
              Report.fcell maxs.(b);
              Report.bar mean;
            ])
      (List.init bins (fun b -> b))
  in
  Report.table fmt
    ~headers:[ "r/r* bin"; "matrices"; "min ratio"; "mean ratio"; "max ratio"; "" ]
    ~rows
