(** Figure 14 — the paper's headline result: average feasible-set size
    of every algorithm, relative to the ideal (left plot) and relative
    to ROD (right plot), as the number of operators grows.

    Setup per §7.1/§7.3.1: random operator trees, 5 input streams, 10
    homogeneous nodes; ROD runs once per graph, every baseline is
    re-run with fresh random inputs and averaged.

    Expected shape: ROD on top and approaching the ideal as operators
    multiply; Correlation second; LLF and Random in the middle;
    Connected far behind. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
