module Problem = Rod.Problem

let name = "TBLOPT ROD vs exhaustive optimum"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Small random instances on two nodes, scored on a shared QMC sample;\n\
     the paper reports ROD/optimal averaging 0.95 with minimum 0.82.";
  let instances = if quick then 6 else 20 in
  let samples = if quick then 1024 else 2048 in
  let rng = Random.State.make [| 20 |] in
  let configs = [ (2, 4); (2, 6); (3, 4); (5, 2) ] in
  let rows = ref [] in
  let all_ratios = ref [] in
  let all_polished = ref [] in
  List.iter
    (fun (d, ops_per_tree) ->
      let pairs =
        List.init instances (fun i ->
            ignore i;
            let graph =
              Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree
            in
            let problem =
              Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:2 ~cap:1.)
            in
            let best = Rod.Optimal.search ~samples problem in
            let rod =
              Rod.Optimal.ratio_of_assignment ~samples problem
                (Rod.Rod_algorithm.place problem)
            in
            let polished =
              (Rod.Local_search.rod_polished ~samples problem)
                .Rod.Local_search.ratio
            in
            if best.Rod.Optimal.ratio <= 0. then (1., 1.)
            else
              (rod /. best.Rod.Optimal.ratio, polished /. best.Rod.Optimal.ratio))
      in
      let ratios = List.map fst pairs and polished = List.map snd pairs in
      all_ratios := ratios @ !all_ratios;
      all_polished := polished @ !all_polished;
      let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int instances in
      let low xs = List.fold_left Float.min infinity xs in
      rows :=
        [
          string_of_int d;
          string_of_int (d * ops_per_tree);
          string_of_int instances;
          Report.fcell (mean ratios);
          Report.fcell (low ratios);
          Report.fcell (mean polished);
          Report.fcell (low polished);
        ]
        :: !rows)
    configs;
  Report.table fmt
    ~headers:
      [ "#inputs"; "#ops"; "instances"; "mean ROD/opt"; "min ROD/opt";
        "mean ROD+LS/opt"; "min ROD+LS/opt" ]
    ~rows:(List.rev !rows);
  let overall xs =
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  Report.note fmt
    (Printf.sprintf
       "overall: ROD mean %s min %s (paper: 0.95 / 0.82); with local-search \
        polishing: mean %s min %s"
       (Report.fcell (overall !all_ratios))
       (Report.fcell (List.fold_left Float.min infinity !all_ratios))
       (Report.fcell (overall !all_polished))
       (Report.fcell (List.fold_left Float.min infinity !all_polished)))
