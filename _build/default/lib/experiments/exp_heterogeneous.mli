(** Heterogeneous clusters: the paper's model supports arbitrary
    per-node CPU capacities (Theorem 1 splits load in proportion to
    capacity), while its experiments assume homogeneous nodes.  This
    ablation repeats the Figure-14 comparison on a mixed cluster of
    fast, standard and slow nodes. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
