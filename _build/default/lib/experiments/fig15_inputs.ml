module Problem = Rod.Problem

let name = "FIG15 resiliency vs number of input streams"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Random operator trees (20 per input), n=10 nodes; ratios are each\n\
     algorithm's mean feasible-set size over ROD's.  ROD's advantage\n\
     compounds with dimensionality.";
  let n_nodes = 10 and ops_per_tree = 20 in
  let dims = if quick then [ 2; 3; 4 ] else [ 2; 3; 4; 5; 6 ] in
  let graphs = if quick then 2 else 5 in
  let runs = if quick then 3 else 10 in
  let samples = if quick then 2048 else 4096 in
  let rng = Random.State.make [| 15 |] in
  let rows =
    List.map
      (fun d ->
        let totals = List.map (fun alg -> (alg, ref 0.)) Placers.all in
        for _ = 1 to graphs do
          let graph =
            Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree
          in
          let problem =
            Problem.of_graph graph
              ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
          in
          List.iter
            (fun (alg, total) ->
              total :=
                !total
                +. Placers.mean_ratio ~runs ~samples ~rng ~graph ~problem alg)
            totals
        done;
        let mean alg = !(List.assoc alg totals) /. float_of_int graphs in
        let rod = mean Placers.Rod_placer in
        string_of_int d
        :: List.filter_map
             (fun alg ->
               if alg = Placers.Rod_placer then None
               else Some (Report.fcell (mean alg /. rod)))
             Placers.all)
      dims
  in
  Report.table fmt
    ~headers:
      ("#inputs"
      :: List.filter_map
           (fun alg ->
             if alg = Placers.Rod_placer then None else Some (Placers.name alg))
           Placers.all)
    ~rows
