lib/experiments/fig5_example.mli: Format
