lib/experiments/report.ml: Char Filename Float Format Fun List Printf String
