lib/experiments/placers.mli: Linalg Query Random Rod
