lib/experiments/exp_clustering.mli: Format
