lib/experiments/fig14_resiliency.mli: Format
