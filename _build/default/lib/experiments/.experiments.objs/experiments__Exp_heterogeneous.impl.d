lib/experiments/exp_heterogeneous.ml: Linalg List Placers Query Random Report Rod
