lib/experiments/exp_validation.ml: Array Dsim Float Linalg List Printf Query Random Report Rod Spe Workload
