lib/experiments/placers.ml: Array Baselines Feasible Linalg Random Rod
