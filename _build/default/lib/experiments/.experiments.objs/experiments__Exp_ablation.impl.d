lib/experiments/exp_ablation.ml: Feasible List Query Random Report Rod
