lib/experiments/fig15_inputs.ml: List Placers Query Random Report Rod
