lib/experiments/exp_latency.ml: Array Baselines Dsim Linalg List Printf Query Random Report Rod Workload
