lib/experiments/fig9_distance.mli: Format
