lib/experiments/exp_calibration.ml: Array Dsim Feasible Linalg List Printf Query Random Report Rod
