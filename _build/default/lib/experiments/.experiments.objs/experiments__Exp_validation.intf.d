lib/experiments/exp_validation.mli: Format
