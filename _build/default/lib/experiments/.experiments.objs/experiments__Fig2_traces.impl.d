lib/experiments/fig2_traces.ml: List Random Report Workload
