lib/experiments/exp_heterogeneous.mli: Format
