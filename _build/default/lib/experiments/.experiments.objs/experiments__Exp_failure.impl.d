lib/experiments/exp_failure.ml: Feasible List Placers Printf Query Random Report Rod
