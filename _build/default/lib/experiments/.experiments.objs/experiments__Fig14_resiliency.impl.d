lib/experiments/fig14_resiliency.ml: List Placers Query Random Report Rod
