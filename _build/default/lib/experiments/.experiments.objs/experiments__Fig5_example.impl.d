lib/experiments/fig5_example.ml: Array Feasible Linalg List Printf Query Report Rod String
