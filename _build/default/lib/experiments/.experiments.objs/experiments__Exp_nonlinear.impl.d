lib/experiments/exp_nonlinear.ml: Array Dsim Feasible Linalg List Placers Printf Query Random Report Rod
