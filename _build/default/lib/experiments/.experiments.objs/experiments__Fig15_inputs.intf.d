lib/experiments/fig15_inputs.mli: Format
