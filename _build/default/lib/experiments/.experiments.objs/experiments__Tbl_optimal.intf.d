lib/experiments/tbl_optimal.mli: Format
