lib/experiments/exp_nonlinear.mli: Format
