lib/experiments/exp_incremental.ml: Array Baselines Feasible Float Linalg List Placers Query Random Report Rod
