lib/experiments/tbl_optimal.ml: Float List Printf Query Random Report Rod
