lib/experiments/exp_dynamic.ml: Array Baselines Dsim Linalg List Printf Query Random Report Rod Workload
