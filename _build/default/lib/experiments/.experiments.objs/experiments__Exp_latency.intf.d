lib/experiments/exp_latency.mli: Format
