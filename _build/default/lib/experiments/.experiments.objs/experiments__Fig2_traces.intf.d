lib/experiments/fig2_traces.mli: Format
