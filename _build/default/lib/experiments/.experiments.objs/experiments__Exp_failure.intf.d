lib/experiments/exp_failure.mli: Format
