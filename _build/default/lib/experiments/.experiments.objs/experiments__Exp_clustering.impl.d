lib/experiments/exp_clustering.ml: Array Feasible Linalg List Printf Query Random Report Rod
