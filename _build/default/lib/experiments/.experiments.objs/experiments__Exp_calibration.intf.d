lib/experiments/exp_calibration.mli: Format
