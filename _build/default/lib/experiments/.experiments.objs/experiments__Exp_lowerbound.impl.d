lib/experiments/exp_lowerbound.ml: Array Feasible Linalg List Printf Query Random Report Rod
