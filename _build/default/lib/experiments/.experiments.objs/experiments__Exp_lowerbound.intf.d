lib/experiments/exp_lowerbound.mli: Format
