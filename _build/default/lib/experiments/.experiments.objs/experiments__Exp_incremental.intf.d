lib/experiments/exp_incremental.mli: Format
