lib/experiments/exp_partition.ml: Feasible List Printf Query Random Report Rod
