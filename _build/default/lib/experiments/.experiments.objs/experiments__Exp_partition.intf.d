lib/experiments/exp_partition.mli: Format
