lib/experiments/fig9_distance.ml: Array Feasible Linalg List Printf Random Report
