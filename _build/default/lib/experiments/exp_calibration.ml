module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "EXPCAL planning on measured statistics"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Costs/selectivities are measured from a trial run under a random\n\
     placement (as the paper does in Borealis), then ROD plans on the\n\
     estimates.  'ratio' scores both plans against the TRUE load model.";
  let d = 3 and n_nodes = 4 and ops_per_tree = 8 in
  let graphs = if quick then 2 else 5 in
  let samples = if quick then 2048 else 8192 in
  let trial_durations = [ 5.; 30. ] in
  let rng = Random.State.make [| 71 |] in
  let rows = ref [] in
  for g = 1 to graphs do
    let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
    in
    let l = Problem.total_coefficients problem in
    let c_total = Problem.total_capacity problem in
    (* A moderate trial workload: 40% of capacity on the balanced ray. *)
    let rates =
      Vec.init d (fun k -> 0.4 *. c_total /. (float_of_int d *. l.(k)))
    in
    let true_ratio assignment =
      (Plan.volume_qmc ~samples (Plan.make problem assignment))
        .Feasible.Volume.ratio
    in
    let oracle = true_ratio (Rod.Rod_algorithm.place problem) in
    List.iter
      (fun duration ->
        let estimates =
          Dsim.Calibrate.measure ~seed:(g * 13) ~duration ~graph ~n_nodes ~rates
            ()
        in
        let estimated_graph = Dsim.Calibrate.estimated_graph graph estimates in
        let estimated_problem =
          Problem.of_graph estimated_graph
            ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
        in
        let assignment = Rod.Rod_algorithm.place estimated_problem in
        let measured_ratio = true_ratio assignment in
        rows :=
          [
            string_of_int g;
            Printf.sprintf "%.0fs" duration;
            Report.pct (Dsim.Calibrate.max_relative_error graph estimates);
            Report.fcell oracle;
            Report.fcell measured_ratio;
            Report.fcell (measured_ratio /. oracle);
          ]
          :: !rows)
      trial_durations
  done;
  Report.table fmt
    ~headers:
      [ "graph"; "trial"; "max param err"; "ratio (true model)";
        "ratio (estimates)"; "estimates/true" ]
    ~rows:(List.rev !rows)
