module Vec = Linalg.Vec
module Problem = Rod.Problem

let name = "EXPHET heterogeneous cluster"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Mixed cluster (2 fast @2.0, 4 standard @1.0, 4 slow @0.5 CPU/s);\n\
     mean feasible-set ratio vs the capacity-proportional ideal.";
  let d = 5 in
  let caps =
    Vec.of_list [ 2.; 2.; 1.; 1.; 1.; 1.; 0.5; 0.5; 0.5; 0.5 ]
  in
  let op_counts = if quick then [ 50; 100 ] else [ 50; 100; 200 ] in
  let graphs = if quick then 2 else 5 in
  let runs = if quick then 3 else 10 in
  let samples = if quick then 2048 else 4096 in
  let rng = Random.State.make [| 88 |] in
  let rows =
    List.map
      (fun m ->
        let totals = List.map (fun alg -> (alg, ref 0.)) Placers.all in
        for _ = 1 to graphs do
          let graph =
            Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:(m / d)
          in
          let problem = Problem.of_graph graph ~caps in
          List.iter
            (fun (alg, total) ->
              total :=
                !total
                +. Placers.mean_ratio ~runs ~samples ~rng ~graph ~problem alg)
            totals
        done;
        string_of_int m
        :: List.map
             (fun alg ->
               Report.fcell (!(List.assoc alg totals) /. float_of_int graphs))
             Placers.all)
      op_counts
  in
  Report.table fmt ~headers:("#ops" :: List.map Placers.name Placers.all) ~rows
