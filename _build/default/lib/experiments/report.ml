let csv_dir = ref None

let current_section = ref "untitled"

let table_counter = ref 0

let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '-')
    title

let section fmt title =
  current_section := slug title;
  table_counter := 0;
  let rule = String.make (String.length title + 4) '=' in
  Format.fprintf fmt "@.%s@.= %s =@.%s@." rule title rule

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~headers ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    incr table_counter;
    let path =
      Filename.concat dir
        (Printf.sprintf "%s_%d.csv" !current_section !table_counter)
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let line cells =
          output_string oc (String.concat "," (List.map csv_escape cells));
          output_char oc '\n'
        in
        line headers;
        List.iter line rows)

let note fmt text = Format.fprintf fmt "%s@." text

let table fmt ~headers ~rows =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg "Report.table: row arity differs from headers")
    rows;
  write_csv ~headers ~rows;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad width s = s ^ String.make (width - String.length s) ' ' in
  let print_row cells =
    let padded = List.map2 pad widths cells in
    Format.fprintf fmt "| %s |@." (String.concat " | " padded)
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Format.fprintf fmt "%s@." rule;
  print_row headers;
  Format.fprintf fmt "%s@." rule;
  List.iter print_row rows;
  Format.fprintf fmt "%s@." rule

let fcell x =
  if Float.is_integer x && abs_float x < 1e7 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let pct x = Printf.sprintf "%.1f%%" (100. *. x)

let bar x =
  let clipped = Float.max 0. (Float.min 1. x) in
  String.make (int_of_float (Float.round (30. *. clipped))) '#'
