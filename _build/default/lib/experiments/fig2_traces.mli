(** Figure 2: "Stream rates exhibit significant variation over time."

    Reproduced with the synthetic PKT/TCP/HTTP traces: reports each
    trace's coefficient of variation at the native time-scale and after
    4x / 16x aggregation (self-similarity keeps it high), plus an R/S
    Hurst estimate, against a Poisson control. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
