(** Node-failure recovery: when a machine dies, its operators restart
    on the survivors (placed incrementally; survivors never move).
    Compares how much operating envelope each initial placement retains,
    against the capacity ceiling [((n-1)/n)^d]. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
