(** Figures 5-6 / Example 2: feasible sets of three placements of the
    four-operator example graph on two unit nodes, against the ideal
    hyperplane, with exact polygon areas, QMC cross-checks and the
    normalized metrics — plus the plan ROD itself produces. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
