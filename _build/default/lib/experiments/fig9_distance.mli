(** Figure 9: relationship between the normalized minimum plane distance
    [r / r*] and the feasible-set-size ratio, over random node
    load-coefficient matrices (10 nodes, 3 input streams, column sums
    fixed) — the empirical justification of the MMPD heuristic. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
