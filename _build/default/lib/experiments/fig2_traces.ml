module Trace = Workload.Trace
module Stats = Workload.Stats
module Traces = Workload.Traces

let name = "FIG2 trace burstiness"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Normalized rate variation of the three synthetic stand-ins for the\n\
     paper's Internet Traffic Archive traces, plus a Poisson control.\n\
     Self-similar traces keep their burstiness when aggregated in time.";
  let levels = if quick then 10 else 12 in
  let rng = Random.State.make [| 2006 |] in
  let traces =
    Traces.synthesize_all ~levels ~rng ()
    |> List.map (fun (kind, trace) -> (Traces.name kind, trace))
  in
  let poisson =
    ( "Poisson",
      Trace.normalize
        (Workload.Generators.poisson_counts ~rng ~n:(1 lsl levels) ~dt:1.
           ~mean_rate:100.) )
  in
  let rows =
    List.map
      (fun (label, trace) ->
        let cv1 = Trace.cv trace in
        let cv4 = Trace.cv (Trace.coarsen trace 4) in
        let cv16 = Trace.cv (Trace.coarsen trace 16) in
        let hurst = Stats.hurst_rs trace.Trace.rates in
        [
          label;
          Report.fcell cv1;
          Report.fcell cv4;
          Report.fcell cv16;
          Report.fcell hurst;
          Report.bar (cv1 /. 1.2);
        ])
      (traces @ [ poisson ])
  in
  Report.table fmt
    ~headers:[ "trace"; "cv @1x"; "cv @4x"; "cv @16x"; "Hurst(R/S)"; "burstiness" ]
    ~rows
