(** The paper's motivating comparison (§1): reactive dynamic load
    distribution pays a migration pause of hundreds of milliseconds, so
    it absorbs slow drift but loses to a static resilient placement
    under short-term bursts.  Pits static ROD against a
    balanced-at-the-mean plan with a runtime migration controller, under
    a slow sinusoidal drift and under fast flash-crowd bursts. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
