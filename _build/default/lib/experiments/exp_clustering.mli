(** §6.3 extension: operator clustering under communication cost.
    Sweeps the per-tuple network transfer cost and compares plain ROD
    (communication-blind), ROD with the connectivity-aware class-I
    policy, and the full clustering pipeline, all evaluated on
    communication-inclusive node loads (absolute feasible volume, since
    each plan's communication changes its total load). *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
