(** Ablation of ROD's ingredients (§4-§5 design choices): the published
    algorithm against variants with the operator ordering removed, the
    class-I/MMAD move removed (MMPD only) and the plane-distance choice
    removed (MMAD only), across graph widths. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
