(** §7.3.1, last paragraph: on instances small enough for exhaustive
    search (two nodes, a handful of operators), ROD's feasible-set size
    averages ~0.95 of the optimum with a minimum around 0.82. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
