module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "EXPFAIL surviving a node failure"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "One node dies; its operators are re-placed incrementally on the\n\
     survivors (who never move), averaged over every possible failed\n\
     node.  'after (vs degraded ideal)' is the comparable figure of\n\
     merit; 'survival of own volume' is flattering to bad plans (they\n\
     have little to lose).  Capacity loss alone shrinks the ideal to\n\
     ((n-1)/n)^d of itself.";
  let d = 4 and n_nodes = 6 and ops_per_tree = 12 in
  let graphs = if quick then 2 else 5 in
  let samples = if quick then 2048 else 8192 in
  let rng = Random.State.make [| 911 |] in
  let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let capacity_bound =
    (float_of_int (n_nodes - 1) /. float_of_int n_nodes) ** float_of_int d
  in
  let algorithms =
    [ Placers.Rod_placer; Placers.Llf; Placers.Random_placer ]
  in
  let rows =
    List.map
      (fun alg ->
        let survival_total = ref 0. in
        let before_total = ref 0. in
        let after_total = ref 0. in
        let rng_local = Random.State.make [| 911; 7 |] in
        for g = 1 to graphs do
          ignore g;
          let graph =
            Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree
          in
          let problem = Problem.of_graph graph ~caps in
          let assignment = Placers.place ~rng:rng_local ~graph ~problem alg in
          let est = Plan.volume_qmc ~samples (Plan.make problem assignment) in
          before_total := !before_total +. est.Feasible.Volume.ratio;
          let degraded_ideal =
            capacity_bound *. est.Feasible.Volume.ideal_volume
          in
          for failed = 0 to n_nodes - 1 do
            let r = Rod.Failure.survival ~samples problem ~assignment ~failed in
            survival_total :=
              !survival_total
              +. (r.Rod.Failure.survival /. float_of_int n_nodes);
            after_total :=
              !after_total
              +. (r.Rod.Failure.volume_after /. degraded_ideal
                 /. float_of_int n_nodes)
          done
        done;
        let g = float_of_int graphs in
        [
          Placers.name alg;
          Report.fcell (!before_total /. g);
          Report.fcell (!after_total /. g);
          Report.fcell (!survival_total /. g);
        ])
      algorithms
  in
  Report.table fmt
    ~headers:
      [ "initial plan"; "before (vs ideal)"; "after (vs degraded ideal)";
        "survival of own volume" ]
    ~rows;
  Report.note fmt
    (Printf.sprintf "capacity ceiling ((n-1)/n)^d = %.3f" capacity_bound)
