module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "EXPLB lower-bounded workloads"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Known lower bound B eats beta * C_T of capacity, all of it on input\n\
     stream 0 (\"stream 0 never falls below b\"); plans are scored on the\n\
     region above B.  The aware variant gains as the bound grows and\n\
     skews the geometry.";
  let d = 4 and n_nodes = 6 and ops_per_tree = 15 in
  let graphs = if quick then 3 else 8 in
  let samples = if quick then 2048 else 8192 in
  let betas = [ 0.0; 0.2; 0.4; 0.6 ] in
  let rng = Random.State.make [| 61 |] in
  let problems =
    List.init graphs (fun _ ->
        let graph =
          Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree
        in
        Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.))
  in
  let rows =
    List.map
      (fun beta ->
        let base_total = ref 0. and aware_total = ref 0. in
        List.iter
          (fun problem ->
            let l = Problem.total_coefficients problem in
            let c_total = Problem.total_capacity problem in
            let lower =
              Vec.init d (fun k ->
                  if k = 0 then beta *. c_total /. l.(k) else 0.)
            in
            let ratio assignment =
              (Plan.volume_qmc ~samples ~lower (Plan.make problem assignment))
                .Feasible.Volume.ratio
            in
            base_total := !base_total +. ratio (Rod.Rod_algorithm.place problem);
            aware_total :=
              !aware_total +. ratio (Rod.Rod_algorithm.place ~lower problem))
          problems;
        let base = !base_total /. float_of_int graphs in
        let aware = !aware_total /. float_of_int graphs in
        [
          Printf.sprintf "%.1f" beta;
          Report.fcell base;
          Report.fcell aware;
          Report.fcell (aware /. base);
          Report.bar aware;
        ])
      betas
  in
  Report.table fmt
    ~headers:
      [ "beta (B share)"; "base ROD"; "aware ROD"; "aware/base"; "" ]
    ~rows
