(** §7.3.1's remark quantified: data-parallel partitioning turns narrow
    query graphs into wide ones, and ROD's feasible set grows with the
    partitioning degree — at the price of a per-tuple routing overhead
    that eventually eats the gains. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
