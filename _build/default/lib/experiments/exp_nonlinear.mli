(** §6.2 extension: nonlinear load models.  Graphs with time-window
    joins and drifting selectivities are linearized by introducing rate
    variables at the nonlinear cut points; ROD then runs unchanged in
    the extended variable space.  Reports the per-algorithm feasible
    ratio in that space, the feasible fraction over actual system-rate
    points (evaluating the true nonlinear semantics), and a simulator
    cross-check of the analytic feasibility test. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
