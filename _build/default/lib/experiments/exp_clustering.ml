module Vec = Linalg.Vec
module Problem = Rod.Problem
module Clustering = Rod.Clustering

let name = "EXPCLU operator clustering vs communication cost"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Random graphs whose streams cost CPU to ship (xfer = per-tuple\n\
     network cost; operator costs average ~0.55 ms).  Volumes are\n\
     absolute (communication-inclusive loads differ per plan); cuts is\n\
     the number of inter-node streams.";
  let d = 3 and n_nodes = 4 and ops_per_tree = 12 in
  let graphs = if quick then 2 else 5 in
  let samples = if quick then 2048 else 8192 in
  let xfer_levels = [ 0.; 2e-4; 1e-3 ] in
  let rng = Random.State.make [| 63 |] in
  let rows = ref [] in
  List.iter
    (fun xfer ->
      let volume_totals = Array.make 3 0. in
      let cut_totals = Array.make 3 0 in
      for g = 1 to graphs do
        ignore g;
        let graph =
          Query.Randgraph.generate ~rng
            { Query.Randgraph.default with n_inputs = d; ops_per_tree;
              xfer_cost = xfer }
        in
        let model = Query.Load_model.derive graph in
        let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
        let problem = Problem.of_model model ~caps in
        let plans =
          [|
            Rod.Rod_algorithm.place problem;
            Rod.Rod_algorithm.place
              ~policy:(Rod.Rod_algorithm.Min_new_arcs graph) problem;
            snd (Clustering.select_best ~model ~caps ());
          |]
        in
        Array.iteri
          (fun idx assignment ->
            let ln =
              Clustering.effective_node_loads ~model ~n_nodes ~assignment
            in
            let est = Feasible.Volume.ratio_qmc ~ln ~caps ~samples () in
            volume_totals.(idx) <-
              volume_totals.(idx) +. est.Feasible.Volume.volume;
            cut_totals.(idx) <-
              cut_totals.(idx)
              + List.length (Clustering.cut_arcs ~model ~assignment))
          plans
      done;
      let labels = [| "plain ROD"; "ROD min-new-arcs"; "clustered ROD" |] in
      Array.iteri
        (fun idx label ->
          rows :=
            [
              Printf.sprintf "%.1e" xfer;
              label;
              Printf.sprintf "%.3e" (volume_totals.(idx) /. float_of_int graphs);
              Printf.sprintf "%.1f"
                (float_of_int cut_totals.(idx) /. float_of_int graphs);
            ]
            :: !rows)
        labels)
    xfer_levels;
  Report.table fmt
    ~headers:[ "xfer cost (s)"; "plan"; "mean volume"; "mean cut arcs" ]
    ~rows:(List.rev !rows)
