(** The algorithm roster and the paper's evaluation protocol (§7.3.1):
    ROD is deterministic and runs once per instance; each competing
    algorithm is run several times — Random with fresh seeds, the
    balancers with fresh random rate points, Correlation with fresh
    random rate time-series — and its feasible-set ratios are
    averaged. *)

type algorithm =
  | Rod_placer
  | Correlation_based
  | Llf
  | Random_placer
  | Connected

val all : algorithm list
(** In the paper's presentation order (best to worst expected). *)

val name : algorithm -> string

val random_rates : Random.State.t -> Rod.Problem.t -> Linalg.Vec.t
(** A rate point uniform in the ideal simplex — the "random input
    stream rates" handed to the balancing baselines. *)

val place :
  rng:Random.State.t ->
  graph:Query.Graph.t ->
  problem:Rod.Problem.t ->
  algorithm ->
  int array
(** One placement.  Random inputs for the baselines are drawn from
    [rng]: the balancers get a rate point uniform in the ideal simplex,
    Correlation a 32-step random rate series. *)

val mean_ratio :
  ?runs:int ->
  ?samples:int ->
  rng:Random.State.t ->
  graph:Query.Graph.t ->
  problem:Rod.Problem.t ->
  algorithm ->
  float
(** Average feasible-set ratio (vs ideal) over [runs] placements
    (default 10; ROD always runs once), each scored by QMC with
    [samples] points (default 4096). *)
