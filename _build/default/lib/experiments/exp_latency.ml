module Vec = Linalg.Vec
module Problem = Rod.Problem
module Trace = Workload.Trace

let name = "EXPLAT latency under bursty load"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "One random graph (d=3 inputs, 30 ops, 4 nodes) driven by bursty\n\
     b-model traces at a growing fraction of the ideal-boundary rate.\n\
     Balancers are given the true mean rates (their best case).";
  let d = 3 and n_nodes = 4 in
  let rng = Random.State.make [| 99 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:10 in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let horizon = if quick then 32. else 128. in
  let fractions = if quick then [ 0.6; 0.9 ] else [ 0.5; 0.7; 0.9 ] in
  (* Mean rates along the balanced ray: r_k = phi * C_T / (d * l_k). *)
  let mean_rates phi =
    Vec.init d (fun k -> phi *. c_total /. (float_of_int d *. l.(k)))
  in
  (* One TCP-trace-like self-similar shape per stream, drawn once and
     scaled to each load level, so levels differ only in intensity. *)
  let levels = int_of_float (ceil (log horizon /. log 2.)) in
  let shapes =
    Array.init d (fun _ ->
        Trace.normalize (Workload.Traces.synthesize ~levels ~rng Workload.Traces.Tcp))
  in
  let shaped_traces phi =
    let rates = mean_rates phi in
    Array.init d (fun k -> Trace.scale rates.(k) shapes.(k))
  in
  let placements phi =
    let rates = mean_rates phi in
    let series =
      (* The correlation baseline sees the actual bursty series. *)
      let traces = shaped_traces phi in
      Linalg.Mat.init 32 d (fun t k ->
          Trace.rate_at traces.(k) (float_of_int t *. horizon /. 32.))
    in
    [
      ("ROD", Rod.Rod_algorithm.place problem);
      ("LLF", Baselines.llf ~rates problem);
      ("Connected", Baselines.connected ~rates ~graph problem);
      ("Correlation", Baselines.correlation ~series problem);
      ("Random", Baselines.random_balanced ~rng problem);
    ]
  in
  let rows = ref [] in
  List.iter
    (fun phi ->
      let traces = shaped_traces phi in
      List.iter
        (fun (label, assignment) ->
          let m =
            Dsim.Probe.simulate_traces
              ~config:{ Dsim.Engine.default_config with warmup = 1. }
              ~graph ~assignment ~caps:problem.Problem.caps ~traces ()
          in
          rows :=
            [
              Printf.sprintf "%.0f%%" (100. *. phi);
              label;
              Report.pct (Dsim.Sim_metrics.max_utilization m);
              Printf.sprintf "%.1f" (1e3 *. Dsim.Sim_metrics.mean_latency m);
              Printf.sprintf "%.1f" (1e3 *. Dsim.Sim_metrics.p95_latency m);
              string_of_int m.Dsim.Sim_metrics.backlog;
            ]
            :: !rows)
        (placements phi))
    fractions;
  Report.table fmt
    ~headers:
      [ "mean load"; "algorithm"; "max util"; "mean lat (ms)"; "p95 lat (ms)";
        "backlog" ]
    ~rows:(List.rev !rows)
