module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan
module Load_model = Query.Load_model
module Graph = Query.Graph
module Op = Query.Op

let name = "EXPNL nonlinear (join) load models"

(* Two filtered feeds joined in a time window, the matches enriched and
   aggregated; a drifting-selectivity classifier sits on feed A.  Two
   variables are introduced by linearization (the classifier's output
   rate and the join's pair rate). *)
let join_graph rng =
  let c lo hi = lo +. Random.State.float rng (hi -. lo) in
  Graph.create ~n_inputs:2
    ~ops:
      [
        (* feed A: 0..3 *)
        ( Op.var_sel ~name:"classify" ~cost:(c 1e-4 3e-4) ~sel_lo:0.3 ~sel_hi:0.9
            ~sel_now:0.6 (),
          [ Graph.Sys_input 0 ] );
        (Op.filter ~name:"cleanA" ~cost:(c 1e-4 3e-4) ~sel:0.8 (), [ Graph.Op_output 0 ]);
        (Op.map ~name:"normA" ~cost:(c 1e-4 3e-4) (), [ Graph.Op_output 1 ]);
        (Op.filter ~name:"dedupA" ~cost:(c 1e-4 3e-4) ~sel:0.9 (), [ Graph.Op_output 2 ]);
        (* feed B: 4..6 *)
        (Op.filter ~name:"cleanB" ~cost:(c 1e-4 3e-4) ~sel:0.7 (), [ Graph.Sys_input 1 ]);
        (Op.map ~name:"projB" ~cost:(c 1e-4 3e-4) (), [ Graph.Op_output 4 ]);
        (Op.map ~name:"normB" ~cost:(c 1e-4 3e-4) (), [ Graph.Op_output 5 ]);
        (* join and downstream: 7..11 *)
        ( Op.join ~name:"match" ~window:0.2 ~cost_per_pair:1e-5 ~sel:0.05 (),
          [ Graph.Op_output 3; Graph.Op_output 6 ] );
        (Op.map ~name:"enrich" ~cost:(c 1e-4 4e-4) (), [ Graph.Op_output 7 ]);
        (Op.filter ~name:"score" ~cost:(c 1e-4 4e-4) ~sel:0.5 (), [ Graph.Op_output 8 ]);
        (Op.aggregate ~name:"report" ~cost:(c 1e-4 3e-4) ~sel:0.1 (), [ Graph.Op_output 9 ]);
        (Op.map ~name:"alert" ~cost:(c 1e-4 3e-4) (), [ Graph.Op_output 10 ]);
      ]
    ()

(* System-rate points drawn from the extended ideal simplex, projected
   onto the system coordinates. *)
let system_points problem model ~count =
  let d_total = Problem.dim problem in
  let d_sys = Load_model.d_system model in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  Array.init count (fun i ->
      let full =
        Feasible.Simplex.sample_ideal ~l ~c_total
          ~cube_point:(Feasible.Halton.point ~dim:d_total i)
          ()
      in
      Array.sub full 0 d_sys)

(* Fraction of actual system-rate points feasible under the true
   nonlinear semantics. *)
let actual_fraction model plan points =
  let ln = Plan.node_loads plan in
  let caps = plan.Plan.problem.Problem.caps in
  let ok =
    Array.fold_left
      (fun acc sys_rates ->
        let vars = Load_model.eval_vars model ~sys_rates in
        if Feasible.Volume.is_feasible ~ln ~caps vars then acc + 1 else acc)
      0 points
  in
  float_of_int ok /. float_of_int (Array.length points)

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Join + drifting-selectivity graph, linearized into 4 variables\n\
     (2 system + 2 introduced), on 3 nodes.  'extended ratio' is the\n\
     QMC objective ROD optimizes; 'actual feasible' evaluates the true\n\
     nonlinear loads on projected rate points.";
  let n_nodes = 3 in
  let graphs = if quick then 2 else 5 in
  let runs = if quick then 3 else 8 in
  let samples = if quick then 2048 else 8192 in
  let point_count = if quick then 256 else 1024 in
  let rng = Random.State.make [| 66 |] in
  let totals =
    List.map (fun alg -> (alg, (ref 0., ref 0.))) Placers.all
  in
  for _ = 1 to graphs do
    let graph = join_graph rng in
    let model = Load_model.derive graph in
    let problem =
      Problem.of_model model ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
    in
    let points = system_points problem model ~count:point_count in
    List.iter
      (fun (alg, (ext_total, act_total)) ->
        ext_total :=
          !ext_total +. Placers.mean_ratio ~runs ~samples ~rng ~graph ~problem alg;
        (* Average the actual fraction over a few placements too. *)
        let act_runs = match alg with Placers.Rod_placer -> 1 | _ -> runs in
        let acc = ref 0. in
        for _ = 1 to act_runs do
          let assignment = Placers.place ~rng ~graph ~problem alg in
          acc := !acc +. actual_fraction model (Plan.make problem assignment) points
        done;
        act_total := !act_total +. (!acc /. float_of_int act_runs))
      totals
  done;
  let rows =
    List.map
      (fun (alg, (ext_total, act_total)) ->
        [
          Placers.name alg;
          Report.fcell (!ext_total /. float_of_int graphs);
          Report.fcell (!act_total /. float_of_int graphs);
          Report.bar (!act_total /. float_of_int graphs);
        ])
      totals
  in
  Report.table fmt
    ~headers:[ "algorithm"; "extended ratio"; "actual feasible"; "" ]
    ~rows;
  (* Simulator cross-check on ROD's plan: analytic feasibility of a
     handful of points must match the discrete-event probe. *)
  let graph = join_graph (Random.State.make [| 8 |]) in
  let model = Load_model.derive graph in
  let problem =
    Problem.of_model model ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  let plan = Plan.make problem assignment in
  let ln = Plan.node_loads plan in
  let probe_count = if quick then 4 else 8 in
  let points = system_points problem model ~count:probe_count in
  let agreement = ref 0 in
  Array.iter
    (fun sys_rates ->
      let vars = Load_model.eval_vars model ~sys_rates in
      let analytic =
        Feasible.Volume.is_feasible ~ln ~caps:problem.Problem.caps vars
      in
      let simulated =
        (Dsim.Probe.probe_point ~duration:(if quick then 3. else 6.)
           ~graph ~assignment ~caps:problem.Problem.caps ~rates:sys_rates ())
          .Dsim.Probe.feasible
      in
      if analytic = simulated then incr agreement)
    points;
  Report.note fmt
    (Printf.sprintf
       "simulator cross-check: analytic feasibility matched the DES probe on %d/%d points"
       !agreement probe_count)
