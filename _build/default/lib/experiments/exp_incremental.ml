module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "EXPINC incremental deployment without migration"

(* Stack the load matrices of several graphs into one problem. *)
let combined_problem problems caps =
  let rows =
    List.concat_map
      (fun p -> List.init (Problem.n_ops p) (Problem.op_load p))
      problems
  in
  Problem.create ~lo:(Mat.of_rows rows) ~caps

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Query waves arrive one at a time; deployed operators are pinned\n\
     (no migration).  'scratch ROD' re-places everything (needs\n\
     migration, shown as the upper bound); 'incr ROD' places only the\n\
     new wave around the pins; 'incr LLF' balances each wave at a\n\
     random observed rate point.";
  let d = 4 and n_nodes = 6 in
  let waves = 5 in
  let trials = if quick then 2 else 6 in
  let samples = if quick then 2048 else 8192 in
  let rng = Random.State.make [| 404 |] in
  let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  (* Accumulate per-wave mean ratios across trials. *)
  let scratch_acc = Array.make waves 0. in
  let incr_rod_acc = Array.make waves 0. in
  let incr_llf_acc = Array.make waves 0. in
  for _ = 1 to trials do
    let wave_problems =
      List.init waves (fun _ ->
          let graph =
            Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:4
          in
          Problem.of_graph graph ~caps)
    in
    let rod_pins = ref [] in
    let llf_pins = ref [] in
    List.iteri
      (fun wave _ ->
        let deployed =
          List.filteri (fun i _ -> i <= wave) wave_problems
        in
        let problem = combined_problem deployed caps in
        let m = Problem.n_ops problem in
        let pinned pins =
          Array.init m (fun j ->
              if j < List.length pins then Some (List.nth pins j) else None)
        in
        (* Incremental ROD around its own history. *)
        let rod_assignment =
          Rod.Rod_algorithm.place_incremental ~fixed:(pinned !rod_pins) problem
        in
        rod_pins := Array.to_list rod_assignment;
        (* Incremental LLF: balance the new operators at a random rate
           point, old ones pinned. *)
        let llf_assignment =
          let full = Baselines.llf ~rates:(Placers.random_rates rng problem) problem in
          Array.mapi
            (fun j node ->
              if j < List.length !llf_pins then List.nth !llf_pins j else node)
            full
        in
        llf_pins := Array.to_list llf_assignment;
        let scratch_assignment = Rod.Rod_algorithm.place problem in
        let ratio a =
          (Plan.volume_qmc ~samples (Plan.make problem a)).Feasible.Volume.ratio
        in
        scratch_acc.(wave) <- scratch_acc.(wave) +. ratio scratch_assignment;
        incr_rod_acc.(wave) <- incr_rod_acc.(wave) +. ratio rod_assignment;
        incr_llf_acc.(wave) <- incr_llf_acc.(wave) +. ratio llf_assignment)
      wave_problems
  done;
  let rows =
    List.init waves (fun wave ->
        let t = float_of_int trials in
        [
          string_of_int (wave + 1);
          string_of_int ((wave + 1) * d * 4);
          Report.fcell (scratch_acc.(wave) /. t);
          Report.fcell (incr_rod_acc.(wave) /. t);
          Report.fcell (incr_llf_acc.(wave) /. t);
          Report.fcell (incr_rod_acc.(wave) /. Float.max 1e-9 scratch_acc.(wave));
        ])
  in
  Report.table fmt
    ~headers:
      [ "wave"; "#ops"; "scratch ROD"; "incr ROD"; "incr LLF"; "incr/scratch" ]
    ~rows
