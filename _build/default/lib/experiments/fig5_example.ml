module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "FIG5 example feasible sets"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Example 2: L^o = [(4,0);(6,0);(0,9);(0,2)], two nodes of capacity 1.\n\
     Ideal hyperplane 10 r1 + 11 r2 = 2 bounds every plan (area 4/220).";
  let samples = if quick then 8192 else 32768 in
  let problem = Problem.of_graph (Query.Builder.example2 ()) ~caps:(Vec.of_list [ 1.; 1. ]) in
  let ideal_area = Rod.Ideal.volume problem in
  let caps = problem.Problem.caps in
  let describe label assignment =
    let plan = Plan.make problem assignment in
    let ln = Plan.node_loads plan in
    let exact = Feasible.Polygon.feasible_area ~ln ~caps () in
    let est = Plan.volume_qmc ~samples plan in
    let s = Rod.Metrics.summary plan in
    [
      label;
      Printf.sprintf "[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int assignment)));
      Report.fcell exact;
      Report.fcell est.Feasible.Volume.volume;
      Report.pct (exact /. ideal_area);
      Report.fcell s.Rod.Metrics.plane_distance_ratio;
      Report.bar (exact /. ideal_area);
    ]
  in
  let rod_assignment = Rod.Rod_algorithm.place problem in
  let rows =
    List.map
      (fun (label, assignment) -> describe label assignment)
      Query.Builder.example2_plans
    @ [ describe "ROD" rod_assignment ]
  in
  Report.table fmt
    ~headers:
      [ "plan"; "assignment"; "exact area"; "QMC area"; "vs ideal"; "r/r*"; "" ]
    ~rows;
  Report.note fmt
    (Printf.sprintf "ideal feasible set area = %s (unachievable upper bound)"
       (Report.fcell ideal_area))
