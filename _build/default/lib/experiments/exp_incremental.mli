(** Incremental deployment: queries arrive in waves and operators
    already running cannot move (the paper's no-migration premise).
    Compares pinning-aware incremental ROD against the unattainable
    replace-from-scratch plan and against naive incremental LLF, as the
    deployment grows. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
