module Problem = Rod.Problem

let name = "FIG14 resiliency vs number of operators"

(* Mean ratio (vs ideal) of each algorithm over several random graphs
   with [m] total operators on [n_nodes] nodes and [d] inputs. *)
let sweep_point ~rng ~d ~n_nodes ~ops_per_tree ~graphs ~runs ~samples =
  let totals = List.map (fun alg -> (alg, ref 0.)) Placers.all in
  for _ = 1 to graphs do
    let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
    in
    List.iter
      (fun (alg, total) ->
        total := !total +. Placers.mean_ratio ~runs ~samples ~rng ~graph ~problem alg)
      totals
  done;
  List.map (fun (alg, total) -> (alg, !total /. float_of_int graphs)) totals

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Random operator trees, d=5 inputs, n=10 nodes; each baseline re-run\n\
     with fresh random inputs.  Left columns: ratio to the ideal feasible\n\
     set; right columns: ratio to ROD.";
  let d = 5 and n_nodes = 10 in
  let op_counts = if quick then [ 20; 50; 100 ] else [ 20; 50; 100; 150; 200 ] in
  let graphs = if quick then 2 else 5 in
  let runs = if quick then 3 else 10 in
  let samples = if quick then 2048 else 4096 in
  let rng = Random.State.make [| 14 |] in
  let results =
    List.map
      (fun m ->
        let ops_per_tree = m / d in
        (m, sweep_point ~rng ~d ~n_nodes ~ops_per_tree ~graphs ~runs ~samples))
      op_counts
  in
  let alg_cell results alg =
    Report.fcell (List.assoc alg results)
  in
  Report.note fmt "(a) average feasible set size / ideal feasible set size";
  Report.table fmt
    ~headers:("#ops" :: List.map Placers.name Placers.all)
    ~rows:
      (List.map
         (fun (m, res) ->
           string_of_int m :: List.map (alg_cell res) Placers.all)
         results);
  Report.note fmt "(b) average feasible set size / ROD's feasible set size";
  Report.table fmt
    ~headers:("#ops" :: List.filter_map
                (fun alg ->
                  if alg = Placers.Rod_placer then None
                  else Some (Placers.name alg))
                Placers.all)
    ~rows:
      (List.map
         (fun (m, res) ->
           let rod = List.assoc Placers.Rod_placer res in
           string_of_int m
           :: List.filter_map
                (fun alg ->
                  if alg = Placers.Rod_placer then None
                  else Some (Report.fcell (List.assoc alg res /. rod)))
                Placers.all)
         results)
