(** Figure 15: relative performance (feasible-set ratio over ROD's) as
    the number of input streams — the dimensionality of the workload
    space — grows.  ROD's edge should widen with every extra input. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
