(** §7.1's measurement loop: operator costs and selectivities are not
    given — they are measured from a trial run under a random placement,
    and ROD plans on the {e estimated} load model.  Reports the
    estimation error and how much feasible-set size planning on
    estimates costs relative to planning on the true model. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
