(** EXPSPE: validating the cost-abstraction simulator against semantic
    execution — our counterpart of the paper's §7.3.1 claim that "the
    simulator results tracked the results in Borealis very closely".

    The same placed network is executed twice under identical arrival
    processes: once by {!Dsim.Engine} (operators as costs + Bernoulli
    selectivities) and once by {!Spe.Dist_executor} (real tuples through
    real operators, costs from profiling).  Per-node utilizations should
    agree within a few percent. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
