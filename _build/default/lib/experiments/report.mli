(** Plain-text rendering of experiment results: titled sections, aligned
    tables and crude ASCII series plots, printed to a formatter (the
    bench binary tees them into EXPERIMENTS-style output). *)

val set_csv_dir : string option -> unit
(** When set to [Some dir], every subsequent {!table} also writes a CSV
    file [dir/<section-slug>_<n>.csv] (the directory must exist).
    Intended for piping experiment results into external plotting. *)

val section : Format.formatter -> string -> unit
(** A visually separated heading; also names the CSV files of the
    tables that follow. *)

val note : Format.formatter -> string -> unit

val table :
  Format.formatter -> headers:string list -> rows:string list list -> unit
(** Column-aligned table with a header rule.  Every row must have the
    same arity as [headers]. *)

val fcell : float -> string
(** Compact float cell: 4 significant digits. *)

val pct : float -> string
(** A ratio as a percentage with one decimal. *)

val bar : float -> string
(** A crude magnitude bar (0..1 mapped onto 0..30 [#] characters,
    clipped) for eyeballing trends in series tables. *)
