module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Plan = Rod.Plan

type algorithm =
  | Rod_placer
  | Correlation_based
  | Llf
  | Random_placer
  | Connected

let all = [ Rod_placer; Correlation_based; Llf; Random_placer; Connected ]

let name = function
  | Rod_placer -> "ROD"
  | Correlation_based -> "Correlation"
  | Llf -> "LLF"
  | Random_placer -> "Random"
  | Connected -> "Connected"

(* A rate point uniform in the ideal simplex — "random input stream
   rates" for the balancing baselines. *)
let random_rates rng problem =
  let d = Problem.dim problem in
  let cube = Array.init d (fun _ -> Random.State.float rng 1.) in
  Feasible.Simplex.sample_ideal
    ~l:(Problem.total_coefficients problem)
    ~c_total:(Problem.total_capacity problem)
    ~cube_point:cube ()

(* A random rate time series for the correlation baseline: every input
   follows an independent bursty series. *)
let random_series rng problem ~steps =
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let scale k = c_total /. (float_of_int d *. l.(k)) in
  Mat.init steps d (fun _ k -> Random.State.float rng (2. *. scale k))

let place ~rng ~graph ~problem = function
  | Rod_placer -> Rod.Rod_algorithm.place problem
  | Random_placer -> Baselines.random_balanced ~rng problem
  | Llf -> Baselines.llf ~rates:(random_rates rng problem) problem
  | Connected ->
    Baselines.connected ~rates:(random_rates rng problem) ~graph problem
  | Correlation_based ->
    Baselines.correlation ~series:(random_series rng problem ~steps:32) problem

let mean_ratio ?(runs = 10) ?(samples = 4096) ~rng ~graph ~problem algorithm =
  let runs = match algorithm with Rod_placer -> 1 | _ -> runs in
  let acc = ref 0. in
  for _ = 1 to runs do
    let assignment = place ~rng ~graph ~problem algorithm in
    let est = Plan.volume_qmc ~samples (Plan.make problem assignment) in
    acc := !acc +. est.Feasible.Volume.ratio
  done;
  !acc /. float_of_int runs
