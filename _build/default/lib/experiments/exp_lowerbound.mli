(** §6.1 extension: when a lower bound on the input rates is known, ROD
    can optimize the {e conditional} feasible region above it.  Compares
    lower-bound-aware ROD with base ROD as the bound consumes a growing
    share of total capacity. *)

val name : string

val run : ?quick:bool -> Format.formatter -> unit
