module Vec = Linalg.Vec
module Problem = Rod.Problem
module Trace = Workload.Trace

let name = "EXPDYN static resilience vs dynamic migration"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Static ROD vs LLF-at-the-mean with a runtime balancer (1 s control\n\
     loop, 300 ms migration pause).  A persistent regime shift suits the\n\
     reactive scheme (one migration pays off); sub-second flash-crowd\n\
     bursts are over before a migration completes — the paper's argument\n\
     for resilient placement.";
  let d = 3 and n_nodes = 4 in
  let horizon = if quick then 48. else 128. in
  let rng = Random.State.make [| 2121 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:10 in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let mean_rate k = 0.62 *. c_total /. (float_of_int d *. l.(k)) in
  let n_steps = int_of_float horizon in
  let workloads =
    [
      ( "regime shift",
        Array.init d (fun k ->
            (* A persistent medium-term change halfway through: stream 0
               doubles while stream (d-1) nearly stops — the "closing of
               a stock market" kind of variation (§1).  It lasts long
               enough for one migration to pay for itself. *)
            let factor t =
              if t < n_steps / 2 then 1.
              else if k = 0 then 2.0
              else if k = d - 1 then 0.15
              else 1.
            in
            Trace.create ~dt:1.
              (Array.init n_steps (fun t -> mean_rate k *. factor t))) );
      ( "fast bursts",
        Array.init d (fun k ->
            (* Uncorrelated 1-2 s flash crowds, 3.5x amplitude. *)
            let rng = Random.State.make [| 47 + k |] in
            let shape =
              Workload.Generators.flash_crowd ~rng ~n:n_steps ~dt:1.
                ~base_rate:1. ~spike_prob:0.08 ~spike_factor:3.5 ~decay:0.35
            in
            Trace.scale (mean_rate k) (Trace.normalize shape)) );
    ]
  in
  let mean_rates = Vec.init d mean_rate in
  let systems =
    [
      ("static ROD", Rod.Rod_algorithm.place problem, None);
      ("static LLF", Baselines.llf ~rates:mean_rates problem, None);
      ( "dynamic LLF",
        Baselines.llf ~rates:mean_rates problem,
        Some (Dsim.Dynamic.config ()) );
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (workload_label, traces) ->
      List.iter
        (fun (label, assignment, dynamic) ->
          let metrics =
            let config = { Dsim.Engine.default_config with warmup = 2. } in
            let arrivals =
              Array.map
                (fun trace ->
                  Workload.Generators.deterministic_arrivals ~trace)
                traces
            in
            Dsim.Engine.run ~graph ~assignment ~caps:problem.Problem.caps
              ~arrivals ~config ?dynamic ~until:horizon ()
          in
          rows :=
            [
              workload_label;
              label;
              Printf.sprintf "%.1f"
                (1e3 *. Dsim.Sim_metrics.mean_latency metrics);
              Printf.sprintf "%.1f" (1e3 *. Dsim.Sim_metrics.p95_latency metrics);
              string_of_int metrics.Dsim.Sim_metrics.migrations;
              string_of_int metrics.Dsim.Sim_metrics.backlog;
            ]
            :: !rows)
        systems)
    workloads;
  Report.table fmt
    ~headers:
      [ "workload"; "system"; "mean lat (ms)"; "p95 lat (ms)"; "migrations";
        "backlog" ]
    ~rows:(List.rev !rows)
