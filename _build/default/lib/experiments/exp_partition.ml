module Problem = Rod.Problem
module Plan = Rod.Plan

let name = "EXPPAR resiliency vs partitioning degree"

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Narrow graphs (3 operators per input, d=3) on 6 nodes, partitioned\n\
     k ways (shard routing costs ~9% of an average operator per tuple).\n\
     'ratio' is ROD's share of the (routing-inclusive) ideal; 'volume'\n\
     the absolute feasible-set size.  Gains saturate once the graph is\n\
     wide enough to balance — beyond that, extra shards only add\n\
     routing load.";
  let d = 3 and n_nodes = 6 and ops_per_tree = 3 in
  let graphs = if quick then 3 else 8 in
  let samples = if quick then 2048 else 8192 in
  let ways_list = [ 1; 2; 4; 8; 16; 32 ] in
  let route_cost = 5e-5 in
  let rng = Random.State.make [| 77 |] in
  let base_graphs =
    List.init graphs (fun _ ->
        Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree)
  in
  let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let rows =
    List.map
      (fun ways ->
        let ratio_total = ref 0. and volume_total = ref 0. in
        let ops_total = ref 0 in
        List.iter
          (fun base ->
            let graph =
              if ways = 1 then base
              else Query.Partition.split_all ~route_cost ~ways base
            in
            ops_total := !ops_total + Query.Graph.n_ops graph;
            let problem = Problem.of_graph graph ~caps in
            let est =
              Plan.volume_qmc ~samples (Rod.Rod_algorithm.plan problem)
            in
            ratio_total := !ratio_total +. est.Feasible.Volume.ratio;
            volume_total := !volume_total +. est.Feasible.Volume.volume)
          base_graphs;
        let g = float_of_int graphs in
        [
          string_of_int ways;
          string_of_int (!ops_total / graphs);
          Report.fcell (!ratio_total /. g);
          Printf.sprintf "%.4g" (!volume_total /. g);
          Report.bar (!ratio_total /. g);
        ])
      ways_list
  in
  Report.table fmt
    ~headers:[ "ways"; "mean #ops"; "ROD ratio"; "mean volume"; "" ]
    ~rows
