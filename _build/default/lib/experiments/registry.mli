(** The catalogue of reproduced tables and figures, consumed by the
    bench binary and the CLI's [experiment] subcommand. *)

type t = {
  id : string;  (** Short identifier, e.g. "fig14". *)
  name : string;  (** Human-readable title. *)
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : t list
(** Every experiment, in the paper's order. *)

val find : string -> t option
(** Lookup by identifier (case-insensitive). *)

val ids : unit -> string list
