(** Operator clustering (§6.3): a preprocessing step that folds
    expensive arcs — streams whose per-tuple network-transfer overhead is
    large relative to the processing work at their endpoints — so that
    ROD places whole clusters and those arcs never cross the network.

    An arc's transfer load vector is [xfer_cost(stream) * rate_vec(stream)]
    (a linear function of the rate variables, like operator loads).  Its
    {e clustering ratio} is [||transfer|| / min(||L_u||, ||L_v||)] where
    [L_u], [L_v] are the current load vectors of the two endpoint
    clusters.  Two greedy policies from the paper:

    - {!Heaviest_arc_first}: repeatedly merge the endpoints of the arc
      with the largest ratio;
    - {!Min_weight_pair}: among arcs above the threshold, merge the pair
      with the smallest combined load norm (avoids creating monster
      clusters).

    Merging stops when every remaining ratio is below [threshold] or
    when a merge would push a cluster's share of the total load norm
    above [max_weight_frac].

    Because neither policy dominates (§6.3), {!select_best} sweeps a set
    of thresholds under both policies, runs ROD on every clustered
    instance, and keeps the plan with the greatest plane distance
    measured on communication-inclusive node loads. *)

type policy =
  | Heaviest_arc_first
  | Min_weight_pair

type t = private {
  n_clusters : int;
  op_cluster : int array;  (** Operator index to cluster index. *)
  members : int list array;  (** Cluster index to its operators. *)
}

val trivial : n_ops:int -> t
(** Every operator in its own cluster. *)

val cluster :
  model:Query.Load_model.t ->
  policy:policy ->
  threshold:float ->
  ?max_weight_frac:float ->
  unit ->
  t
(** Greedy clustering of the model's graph.  [max_weight_frac] (default
    0.5) caps any cluster's load norm at that fraction of the total. *)

val clustered_problem : Problem.t -> t -> Problem.t
(** The reduced instance whose "operators" are clusters (load rows
    summed). *)

val expand : t -> int array -> int array
(** Map a cluster assignment back to a per-operator assignment. *)

val cut_arcs : model:Query.Load_model.t -> assignment:int array ->
  (Query.Graph.source * int) list
(** Operator-to-operator arcs crossing nodes under an assignment. *)

val effective_node_loads :
  model:Query.Load_model.t ->
  n_nodes:int ->
  assignment:int array ->
  Linalg.Mat.t
(** Node load coefficients {e including} communication CPU: every cut
    operator arc adds its transfer vector to both endpoint nodes (send
    and receive sides), and each system input adds its receive cost to
    the node hosting its consumer.  This is the matrix a
    communication-aware evaluation should feed to the volume
    estimator. *)

val select_best :
  ?thresholds:float list ->
  ?max_weight_frac:float ->
  ?lower:Linalg.Vec.t ->
  model:Query.Load_model.t ->
  caps:Linalg.Vec.t ->
  unit ->
  t * int array
(** The paper's practical recipe: sweep thresholds x policies, place
    each clustering with ROD, score each resulting per-operator plan by
    the plane distance of its communication-inclusive weight matrix, and
    return the winner (clustering, per-operator assignment). *)
