module Vec = Linalg.Vec
module Mat = Linalg.Mat

let matrix problem =
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let caps = problem.Problem.caps in
  Mat.init (Problem.n_nodes problem) (Problem.dim problem) (fun i k ->
      l.(k) *. caps.(i) /. c_total)

let volume ?lower problem =
  Feasible.Simplex.ideal_volume
    ~l:(Problem.total_coefficients problem)
    ~c_total:(Problem.total_capacity problem)
    ?lower ()

let hyperplane_holds problem ~rates =
  Vec.dot (Problem.total_coefficients problem) rates
  <= Problem.total_capacity problem +. 1e-12

let weight_matrix_is_ideal ?(eps = 1e-9) plan =
  let w = Plan.weight_matrix plan in
  let ones = Mat.create (Mat.rows w) (Mat.cols w) 1. in
  Mat.equal ~eps w ones
