module Vec = Linalg.Vec
module Mat = Linalg.Mat

type variant =
  | Full
  | No_ordering
  | Mmad_only
  | Mmpd_only

let all = [ Full; No_ordering; Mmad_only; Mmpd_only ]

let name = function
  | Full -> "ROD (full)"
  | No_ordering -> "no operator ordering"
  | Mmad_only -> "MMAD only"
  | Mmpd_only -> "MMPD only"

(* A stripped greedy sharing ROD's candidate-weight computation but
   with a pluggable per-operator node choice. *)
let greedy problem ~order ~choose =
  let n = Problem.n_nodes problem and m = Problem.n_ops problem in
  let d = Problem.dim problem in
  let l = Problem.total_coefficients problem in
  let caps = problem.Problem.caps in
  let c_total = Problem.total_capacity problem in
  let ln = Mat.zeros n d in
  let assignment = Array.make m 0 in
  let candidate j i =
    let lo_j = Problem.op_load problem j in
    Vec.init d (fun k ->
        (Mat.get ln i k +. lo_j.(k)) /. l.(k) /. (caps.(i) /. c_total))
  in
  List.iter
    (fun j ->
      let target = choose (candidate j) in
      assignment.(j) <- target;
      Vec.add_inplace (Problem.op_load problem j) (Mat.row ln target))
    order;
  assignment

let argbest ~n ~score =
  let best = ref 0 and best_score = ref (score 0) in
  for i = 1 to n - 1 do
    let s = score i in
    if s > !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let place variant problem =
  let n = Problem.n_nodes problem in
  match variant with
  | Full -> Rod_algorithm.place problem
  | No_ordering ->
    (* The published two-phase selection, but with phase 1 disabled:
       reuse the full algorithm on a problem whose rows are pre-ordered
       is not possible (order is derived), so rebuild the choice here:
       class-I preference with plane-distance tie-break. *)
    let order = List.init (Problem.n_ops problem) (fun j -> j) in
    greedy problem ~order ~choose:(fun candidate ->
        let class_one = ref [] in
        for i = n - 1 downto 0 do
          let w = candidate i in
          if Feasible.Geometry.below_ideal w then class_one := i :: !class_one
        done;
        let pool = match !class_one with [] -> List.init n (fun i -> i) | c -> c in
        let pool = Array.of_list pool in
        let score idx = Feasible.Geometry.plane_distance (candidate pool.(idx)) in
        pool.(argbest ~n:(Array.length pool) ~score))
  | Mmad_only ->
    let order = Rod_algorithm.order_operators problem in
    greedy problem ~order ~choose:(fun candidate ->
        (* Smallest worst axis weight = greedy per-stream balancing. *)
        argbest ~n ~score:(fun i -> -.Vec.max_elt (candidate i)))
  | Mmpd_only ->
    let order = Rod_algorithm.order_operators problem in
    greedy problem ~order ~choose:(fun candidate ->
        argbest ~n ~score:(fun i ->
            Feasible.Geometry.plane_distance (candidate i)))
