module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Graph = Query.Graph
module Load_model = Query.Load_model

type policy =
  | Heaviest_arc_first
  | Min_weight_pair

type t = {
  n_clusters : int;
  op_cluster : int array;
  members : int list array;
}

(* --- union-find with cluster load vectors at the roots --- *)

type forest = {
  parent : int array;
  load : Vec.t array;  (* valid at roots *)
}

let rec find forest x =
  let p = forest.parent.(x) in
  if p = x then x
  else begin
    let root = find forest p in
    forest.parent.(x) <- root;
    root
  end

let union forest a b =
  let ra = find forest a and rb = find forest b in
  if ra <> rb then begin
    forest.parent.(rb) <- ra;
    forest.load.(ra) <- Vec.add forest.load.(ra) forest.load.(rb)
  end

let of_forest forest m =
  let ids = Hashtbl.create 16 in
  let op_cluster =
    Array.init m (fun j ->
        let root = find forest j in
        match Hashtbl.find_opt ids root with
        | Some c -> c
        | None ->
          let c = Hashtbl.length ids in
          Hashtbl.add ids root c;
          c)
  in
  let n_clusters = Hashtbl.length ids in
  let members = Array.make n_clusters [] in
  for j = m - 1 downto 0 do
    members.(op_cluster.(j)) <- j :: members.(op_cluster.(j))
  done;
  { n_clusters; op_cluster; members }

let trivial ~n_ops =
  if n_ops < 1 then invalid_arg "Clustering.trivial: n_ops < 1";
  {
    n_clusters = n_ops;
    op_cluster = Array.init n_ops (fun j -> j);
    members = Array.init n_ops (fun j -> [ j ]);
  }

(* Operator-to-operator arcs with their transfer load vectors. *)
let op_arcs model =
  let graph = model.Load_model.graph in
  List.filter_map
    (fun (src, dst) ->
      match src with
      | Graph.Sys_input _ -> None
      | Graph.Op_output u ->
        let xfer = Graph.arc_xfer_cost graph src in
        let transfer = Vec.scale xfer (Load_model.source_rate_vec model src) in
        Some (u, dst, transfer))
    (Graph.arcs graph)

let cluster ~model ~policy ~threshold ?(max_weight_frac = 0.5) () =
  if threshold <= 0. then invalid_arg "Clustering.cluster: threshold <= 0";
  if max_weight_frac <= 0. || max_weight_frac > 1. then
    invalid_arg "Clustering.cluster: max_weight_frac outside (0,1]";
  let lo = Load_model.load_coefficients model in
  let m = Mat.rows lo in
  let forest =
    { parent = Array.init m (fun j -> j); load = Array.init m (Mat.row_copy lo) }
  in
  let cap = max_weight_frac *. Vec.norm2 (Mat.col_sums lo) in
  let arcs = op_arcs model in
  let ratio_of u v transfer =
    let nu = Vec.norm2 forest.load.(find forest u) in
    let nv = Vec.norm2 forest.load.(find forest v) in
    let nt = Vec.norm2 transfer in
    let small = Float.min nu nv in
    if small = 0. then if nt > 0. then infinity else 0. else nt /. small
  in
  let merged_norm u v =
    Vec.norm2 (Vec.add forest.load.(find forest u) forest.load.(find forest v))
  in
  let pick () =
    let eligible =
      List.filter_map
        (fun (u, v, transfer) ->
          if find forest u = find forest v then None
          else
            let ratio = ratio_of u v transfer in
            let norm = merged_norm u v in
            if ratio >= threshold && norm <= cap then Some (ratio, norm, u, v)
            else None)
        arcs
    in
    match eligible with
    | [] -> None
    | first :: rest ->
      let better (r, w, _, _) (r', w', _, _) =
        match policy with
        | Heaviest_arc_first -> r > r'
        | Min_weight_pair -> w < w'
      in
      Some
        (List.fold_left
           (fun best c -> if better c best then c else best)
           first rest)
  in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some (_, _, u, v) ->
      union forest u v;
      loop ()
  in
  loop ();
  of_forest forest m

let clustered_problem problem clustering =
  let d = Problem.dim problem in
  if Array.length clustering.op_cluster <> Problem.n_ops problem then
    invalid_arg "Clustering.clustered_problem: operator count mismatch";
  let rows =
    Array.map
      (fun ops ->
        let acc = Vec.zeros d in
        List.iter (fun j -> Vec.add_inplace (Problem.op_load problem j) acc) ops;
        acc)
      clustering.members
  in
  Problem.create ~lo:rows ~caps:problem.Problem.caps

let expand clustering cluster_assignment =
  if Array.length cluster_assignment <> clustering.n_clusters then
    invalid_arg "Clustering.expand: cluster count mismatch";
  Array.map (fun c -> cluster_assignment.(c)) clustering.op_cluster

let cut_arcs ~model ~assignment =
  let graph = model.Load_model.graph in
  List.filter
    (fun (src, dst) ->
      match src with
      | Graph.Sys_input _ -> false
      | Graph.Op_output u -> assignment.(u) <> assignment.(dst))
    (Graph.arcs graph)

(* Communication accounting: a producer ships one copy of its output to
   each distinct remote node hosting a consumer (paying the transfer
   cost per copy), and each such node pays the same cost to receive it.
   System inputs arrive over the network wherever their consumers run,
   once per consuming node. *)
let effective_node_loads ~model ~n_nodes ~assignment =
  let graph = model.Load_model.graph in
  let lo = Load_model.load_coefficients model in
  let m = Mat.rows lo and d = Mat.cols lo in
  if Array.length assignment <> m then
    invalid_arg "Clustering.effective_node_loads: assignment length";
  let ln = Mat.zeros n_nodes d in
  Array.iteri
    (fun j node -> Vec.add_inplace (Mat.row lo j) (Mat.row ln node))
    assignment;
  (* Group consumers by source stream. *)
  let by_source = Hashtbl.create 16 in
  List.iter
    (fun (src, dst) ->
      let existing =
        match Hashtbl.find_opt by_source src with Some l -> l | None -> []
      in
      Hashtbl.replace by_source src (dst :: existing))
    (Graph.arcs graph);
  Hashtbl.iter
    (fun src consumers ->
      let xfer = Graph.arc_xfer_cost graph src in
      if xfer > 0. then begin
        let rate = Load_model.source_rate_vec model src in
        let transfer = Vec.scale xfer rate in
        let consumer_nodes =
          List.sort_uniq compare (List.map (fun j -> assignment.(j)) consumers)
        in
        match src with
        | Graph.Sys_input _ ->
          List.iter
            (fun node -> Vec.add_inplace transfer (Mat.row ln node))
            consumer_nodes
        | Graph.Op_output u ->
          let producer = assignment.(u) in
          let remote = List.filter (fun node -> node <> producer) consumer_nodes in
          List.iter
            (fun node ->
              Vec.add_inplace transfer (Mat.row ln node);
              Vec.add_inplace transfer (Mat.row ln producer))
            remote
      end)
    by_source;
  ln

(* Rate-space resiliency score comparable across clusterings: the
   smallest distance (from the lower-bound point, default origin) to any
   node's capacity hyperplane [ln_i . R = C_i], communication included. *)
let rate_space_distance ~ln ~caps ?lower () =
  let n = Mat.rows ln and d = Mat.cols ln in
  let b = match lower with Some b -> b | None -> Vec.zeros d in
  let best = ref infinity in
  for i = 0 to n - 1 do
    let row = Mat.row ln i in
    let norm = Vec.norm2 row in
    if norm > 0. then
      best := Float.min !best ((caps.(i) -. Vec.dot row b) /. norm)
  done;
  !best

let select_best ?(thresholds = [ 0.5; 1.0; 2.0; 4.0 ]) ?max_weight_frac ?lower
    ~model ~caps () =
  let problem = Problem.of_model model ~caps in
  let n_nodes = Vec.dim caps in
  let candidates =
    trivial ~n_ops:(Problem.n_ops problem)
    :: List.concat_map
         (fun threshold ->
           List.map
             (fun policy -> cluster ~model ~policy ~threshold ?max_weight_frac ())
             [ Heaviest_arc_first; Min_weight_pair ])
         thresholds
  in
  let score clustering =
    let reduced = clustered_problem problem clustering in
    let cluster_assignment = Rod_algorithm.place ?lower reduced in
    let assignment = expand clustering cluster_assignment in
    let ln = effective_node_loads ~model ~n_nodes ~assignment in
    (rate_space_distance ~ln ~caps ?lower (), clustering, assignment)
  in
  let scored = List.map score candidates in
  let best =
    List.fold_left
      (fun (bs, bc, ba) (s, c, a) ->
        if s > bs then (s, c, a) else (bs, bc, ba))
      (List.hd scored) (List.tl scored)
  in
  let _, clustering, assignment = best in
  (clustering, assignment)
