(** Node-failure analysis: how much of a placement's operating envelope
    survives losing a machine?

    When node [f] fails, its operators must restart elsewhere, but the
    survivors stay put (migration is expensive — the paper's premise).
    {!recovery_assignment} pins every surviving operator and places the
    orphans on the degraded cluster with the incremental ROD greedy;
    {!survival} then compares feasible volumes before and after.

    An upper bound on survival is set by capacity alone: the degraded
    ideal simplex has [((C_T - C_f) / C_T)^d] of the original ideal's
    volume.  A resilient plan should approach that bound; a plan that
    concentrated some stream's weight on the failed node cannot. *)

val degraded_problem : Problem.t -> failed:int -> Problem.t
(** The same operators on the cluster minus node [failed] (node indices
    above [failed] shift down by one). *)

val recovery_assignment :
  Problem.t -> assignment:int array -> failed:int -> int array
(** The post-recovery assignment, in the degraded cluster's node
    indexing.  Survivors keep their (re-indexed) nodes; orphans are
    placed by {!Rod_algorithm.place_incremental}. *)

type report = {
  volume_before : float;  (** Feasible volume of the original plan. *)
  volume_after : float;  (** Feasible volume after recovery. *)
  survival : float;  (** [volume_after / volume_before] (0 if before = 0). *)
  capacity_bound : float;
      (** [((C_T - C_f) / C_T)^d]: the degraded ideal's share of the
          original ideal volume.  For a plan operating near the ideal
          this is the survival ceiling set by lost capacity alone; a
          plan far below the ideal has little to lose and can
          nominally exceed it. *)
}

val survival :
  ?samples:int -> Problem.t -> assignment:int array -> failed:int -> report
(** QMC-based volumes (default 8192 samples). *)

val mean_survival :
  ?samples:int -> Problem.t -> assignment:int array -> float
(** Average survival over every possible single-node failure. *)
