module Vec = Linalg.Vec
module Mat = Linalg.Mat

type class_one_policy =
  | Max_plane_distance
  | First_fit
  | Min_new_arcs of Query.Graph.t

let order_operators problem =
  let m = Problem.n_ops problem in
  let norms = Array.init m (fun j -> Vec.norm2 (Problem.op_load problem j)) in
  let order = List.init m (fun j -> j) in
  (* Stable sort keeps index order among equal norms, making the
     algorithm fully deterministic. *)
  List.stable_sort (fun a b -> compare norms.(b) norms.(a)) order

(* Operator adjacency from the query graph, for the Min_new_arcs
   policy. *)
let neighbor_table graph m =
  if Query.Graph.n_ops graph <> m then
    invalid_arg "Rod_algorithm: policy graph has a different operator count";
  let neighbors = Array.make m [] in
  List.iter
    (fun (src, dst) ->
      match src with
      | Query.Graph.Op_output u ->
        neighbors.(u) <- dst :: neighbors.(u);
        neighbors.(dst) <- u :: neighbors.(dst)
      | Query.Graph.Sys_input _ -> ())
    (Query.Graph.arcs graph);
  neighbors

type decision = {
  op : int;
  rank : int;
  norm : float;
  node : int;
  class_one : bool;
  class_one_count : int;
  plane_distance : float;
}

let place_internal ?lower ?(policy = Max_plane_distance) ?trace ~fixed problem =
  let n = Problem.n_nodes problem in
  let m = Problem.n_ops problem in
  let d = Problem.dim problem in
  if Array.length fixed <> m then
    invalid_arg "Rod_algorithm: fixed array length <> operator count";
  Array.iter
    (function
      | Some node when node < 0 || node >= n ->
        invalid_arg "Rod_algorithm: fixed operator on a bad node"
      | Some _ | None -> ())
    fixed;
  let l = Problem.total_coefficients problem in
  let caps = problem.Problem.caps in
  let c_total = Problem.total_capacity problem in
  let lower_norm =
    match lower with
    | None -> Vec.zeros d
    | Some b ->
      if Vec.dim b <> d then invalid_arg "Rod_algorithm: lower bound dimension";
      Problem.normalized_point problem b
  in
  let neighbors =
    match policy with
    | Min_new_arcs graph -> Some (neighbor_table graph m)
    | Max_plane_distance | First_fit -> None
  in
  let ln = Mat.zeros n d in
  let assignment = Array.make m (-1) in
  (* Pinned operators contribute their load up front. *)
  Array.iteri
    (fun j pin ->
      match pin with
      | Some node ->
        assignment.(j) <- node;
        Vec.add_inplace (Problem.op_load problem j) (Mat.row ln node)
      | None -> ())
    fixed;
  let candidate_weights j i =
    let lo_j = Problem.op_load problem j in
    Vec.init d (fun k ->
        (Mat.get ln i k +. lo_j.(k)) /. l.(k) /. (caps.(i) /. c_total))
  in
  let plane_distance w =
    Feasible.Geometry.plane_distance_from ~point:lower_norm w
  in
  let new_cut_arcs j i =
    match neighbors with
    | None -> 0
    | Some tbl ->
      List.fold_left
        (fun acc u ->
          if assignment.(u) >= 0 && assignment.(u) <> i then acc + 1 else acc)
        0 tbl.(j)
  in
  let assign j =
    let class_one = ref [] in
    let best_two = ref (-1) in
    let best_two_dist = ref neg_infinity in
    for i = n - 1 downto 0 do
      let w = candidate_weights j i in
      if Feasible.Geometry.below_ideal w then class_one := (i, w) :: !class_one
      else begin
        let dist = plane_distance w in
        (* >= so that ties resolve to the lowest index (loop descends). *)
        if dist >= !best_two_dist then begin
          best_two := i;
          best_two_dist := dist
        end
      end
    done;
    let target =
      match (!class_one, policy) with
      | [], _ -> !best_two
      | (i, _) :: _, First_fit -> i
      | ((i0, w0) :: rest, Max_plane_distance) ->
        let better (i, w) (best_i, best_w, best_dist) =
          let dist = plane_distance w in
          if dist > best_dist then (i, w, dist) else (best_i, best_w, best_dist)
        in
        let i, _, _ =
          List.fold_left (fun acc c -> better c acc) (i0, w0, plane_distance w0)
            rest
        in
        i
      | (candidates, Min_new_arcs _) -> (
        let scored =
          List.map
            (fun (i, w) -> (new_cut_arcs j i, -.plane_distance w, i))
            candidates
        in
        match List.sort compare scored with
        | (_, _, i) :: _ -> i
        | [] -> assert false)
    in
    assignment.(j) <- target;
    Vec.add_inplace (Problem.op_load problem j) (Mat.row ln target);
    (match trace with
    | Some log ->
      let w_after =
        Vec.init d (fun k -> Mat.get ln target k /. l.(k) /. (caps.(target) /. c_total))
      in
      log :=
        {
          op = j;
          rank = List.length !log;
          norm = Vec.norm2 (Problem.op_load problem j);
          node = target;
          class_one = !class_one <> [];
          class_one_count = List.length !class_one;
          plane_distance = plane_distance w_after;
        }
        :: !log
    | None -> ())
  in
  List.iter
    (fun j -> if fixed.(j) = None then assign j)
    (order_operators problem);
  assignment

let place ?lower ?policy problem =
  place_internal ?lower ?policy
    ~fixed:(Array.make (Problem.n_ops problem) None)
    problem

let place_traced ?lower ?policy problem =
  let log = ref [] in
  let assignment =
    place_internal ?lower ?policy ~trace:log
      ~fixed:(Array.make (Problem.n_ops problem) None)
      problem
  in
  (assignment, List.rev !log)

let pp_trace fmt decisions =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun decision ->
      Format.fprintf fmt
        "%3d. o%-4d (|l|=%.3g) -> node %d  %s(%d free)  r after = %.3f@,"
        decision.rank decision.op decision.norm decision.node
        (if decision.class_one then "class I " else "class II")
        decision.class_one_count decision.plane_distance)
    decisions;
  Format.fprintf fmt "@]"

let place_incremental ?lower ?policy ~fixed problem =
  place_internal ?lower ?policy ~fixed problem

let plan ?lower ?policy problem = Plan.make problem (place ?lower ?policy problem)
