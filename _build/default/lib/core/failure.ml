module Vec = Linalg.Vec

let check_failed problem failed =
  let n = Problem.n_nodes problem in
  if failed < 0 || failed >= n then invalid_arg "Failure: bad node index";
  if n < 2 then invalid_arg "Failure: cannot lose the only node"

let degraded_caps problem ~failed =
  let n = Problem.n_nodes problem in
  Vec.init (n - 1) (fun i ->
      problem.Problem.caps.(if i < failed then i else i + 1))

let degraded_problem problem ~failed =
  check_failed problem failed;
  Problem.create ~lo:problem.Problem.lo ~caps:(degraded_caps problem ~failed)

let recovery_assignment problem ~assignment ~failed =
  check_failed problem failed;
  if Array.length assignment <> Problem.n_ops problem then
    invalid_arg "Failure.recovery_assignment: assignment length";
  let degraded = degraded_problem problem ~failed in
  let fixed =
    Array.map
      (fun node ->
        if node = failed then None
        else Some (if node < failed then node else node - 1))
      assignment
  in
  Rod_algorithm.place_incremental ~fixed degraded

type report = {
  volume_before : float;
  volume_after : float;
  survival : float;
  capacity_bound : float;
}

let survival ?(samples = 8192) problem ~assignment ~failed =
  check_failed problem failed;
  let before = Plan.make problem assignment in
  let volume_before = (Plan.volume_qmc ~samples before).Feasible.Volume.volume in
  let degraded = degraded_problem problem ~failed in
  let recovered = recovery_assignment problem ~assignment ~failed in
  let volume_after =
    (Plan.volume_qmc ~samples (Plan.make degraded recovered))
      .Feasible.Volume.volume
  in
  let c_total = Problem.total_capacity problem in
  let remaining = c_total -. problem.Problem.caps.(failed) in
  let capacity_bound =
    (remaining /. c_total) ** float_of_int (Problem.dim problem)
  in
  {
    volume_before;
    volume_after;
    survival = (if volume_before > 0. then volume_after /. volume_before else 0.);
    capacity_bound;
  }

let mean_survival ?samples problem ~assignment =
  let n = Problem.n_nodes problem in
  let acc = ref 0. in
  for failed = 0 to n - 1 do
    acc := !acc +. (survival ?samples problem ~assignment ~failed).survival
  done;
  !acc /. float_of_int n
