module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = {
  lo : Mat.t;
  caps : Vec.t;
}

let create ~lo ~caps =
  if Mat.rows lo < 1 then invalid_arg "Problem.create: no operators";
  if Mat.cols lo < 1 then invalid_arg "Problem.create: no rate variables";
  if Vec.dim caps < 1 then invalid_arg "Problem.create: no nodes";
  Array.iter
    (fun row ->
      if Vec.exists (fun x -> x < 0.) row then
        invalid_arg "Problem.create: negative load coefficient")
    lo;
  if Vec.exists (fun c -> c <= 0.) caps then
    invalid_arg "Problem.create: capacities must be strictly positive";
  let sums = Mat.col_sums lo in
  if Vec.exists (fun s -> s <= 0.) sums then
    invalid_arg
      "Problem.create: some rate variable carries no load (all-zero column)";
  { lo = Mat.copy lo; caps = Vec.copy caps }

let of_model model ~caps =
  create ~lo:(Query.Load_model.load_coefficients model) ~caps

let of_graph graph ~caps = of_model (Query.Load_model.derive graph) ~caps

let homogeneous_caps ~n ~cap =
  if n < 1 then invalid_arg "Problem.homogeneous_caps: n < 1";
  if cap <= 0. then invalid_arg "Problem.homogeneous_caps: cap <= 0";
  Vec.create n cap

let n_ops t = Mat.rows t.lo

let n_nodes t = Vec.dim t.caps

let dim t = Mat.cols t.lo

let op_load t j = Mat.row t.lo j

let total_coefficients t = Mat.col_sums t.lo

let total_capacity t = Vec.sum t.caps

let normalized_point t r =
  if Vec.dim r <> dim t then invalid_arg "Problem.normalized_point: bad dim";
  let l = total_coefficients t in
  let c_total = total_capacity t in
  Vec.init (dim t) (fun k -> l.(k) *. r.(k) /. c_total)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>problem: %d ops, %d nodes, %d vars, C_T=%g@,L^o =@,%a@]" (n_ops t)
    (n_nodes t) (dim t) (total_capacity t) Mat.pp t.lo
