module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = {
  problem : Problem.t;
  assignment : int array;
}

let make problem assignment =
  let m = Problem.n_ops problem and n = Problem.n_nodes problem in
  if Array.length assignment <> m then
    invalid_arg
      (Printf.sprintf "Plan.make: assignment length %d <> %d operators"
         (Array.length assignment) m);
  Array.iteri
    (fun j node ->
      if node < 0 || node >= n then
        invalid_arg
          (Printf.sprintf "Plan.make: operator %d assigned to bad node %d" j node))
    assignment;
  { problem; assignment = Array.copy assignment }

let assignment t = Array.copy t.assignment

let node_of t j = t.assignment.(j)

let ops_on t i =
  let acc = ref [] in
  for j = Array.length t.assignment - 1 downto 0 do
    if t.assignment.(j) = i then acc := j :: !acc
  done;
  !acc

let op_counts t =
  let counts = Array.make (Problem.n_nodes t.problem) 0 in
  Array.iter (fun node -> counts.(node) <- counts.(node) + 1) t.assignment;
  counts

let allocation_matrix t =
  let n = Problem.n_nodes t.problem and m = Problem.n_ops t.problem in
  Mat.init n m (fun i j -> if t.assignment.(j) = i then 1. else 0.)

let node_loads t =
  let n = Problem.n_nodes t.problem and d = Problem.dim t.problem in
  let ln = Mat.zeros n d in
  Array.iteri
    (fun j node -> Vec.add_inplace (Problem.op_load t.problem j) (Mat.row ln node))
    t.assignment;
  ln

let weight_matrix t =
  let ln = node_loads t in
  let l = Problem.total_coefficients t.problem in
  let c_total = Problem.total_capacity t.problem in
  let caps = t.problem.Problem.caps in
  Mat.init (Mat.rows ln) (Mat.cols ln) (fun i k ->
      Mat.get ln i k /. l.(k) /. (caps.(i) /. c_total))

let node_load_at t ~rates i = Vec.dot (Mat.row (node_loads t) i) rates

let utilizations t ~rates =
  let ln = node_loads t in
  let caps = t.problem.Problem.caps in
  Vec.init (Mat.rows ln) (fun i -> Vec.dot (Mat.row ln i) rates /. caps.(i))

let is_feasible_at t ~rates =
  Feasible.Volume.is_feasible ~ln:(node_loads t) ~caps:t.problem.Problem.caps
    rates

let volume_qmc ?(samples = 4096) ?lower t =
  Feasible.Volume.ratio_qmc ~ln:(node_loads t) ~caps:t.problem.Problem.caps
    ~l:(Problem.total_coefficients t.problem)
    ?lower ~samples ()

let pp fmt t =
  Format.fprintf fmt "@[<v>plan:@,";
  let n = Problem.n_nodes t.problem in
  for i = 0 to n - 1 do
    Format.fprintf fmt "  node %d: ops [%a]@," i
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         Format.pp_print_int)
      (ops_on t i)
  done;
  Format.fprintf fmt "L^n =@,%a@]" Mat.pp (node_loads t)
