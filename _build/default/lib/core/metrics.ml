module Vec = Linalg.Vec
module Mat = Linalg.Mat

type summary = {
  plane_distance : float;
  plane_distance_ratio : float;
  min_axis_distances : Vec.t;
  mmad_volume_bound : float;
  mmpd_volume_bound : float;
  max_node_weight_norm : float;
}

let normalized_lower problem b = Problem.normalized_point problem b

let weight_rows plan =
  let w = Plan.weight_matrix plan in
  List.init (Mat.rows w) (Mat.row w)

let plane_distance ?lower plan =
  let point =
    match lower with
    | None -> None
    | Some b -> Some (normalized_lower plan.Plan.problem b)
  in
  Feasible.Geometry.min_plane_distance ?point (weight_rows plan)

let min_axis_distance plan k =
  Feasible.Geometry.min_axis_distance (weight_rows plan) k

let mmad_volume_bound plan =
  let d = Problem.dim plan.Plan.problem in
  let prod = ref 1. in
  for k = 0 to d - 1 do
    prod := !prod *. Float.min 1. (min_axis_distance plan k)
  done;
  !prod

let mmpd_volume_bound plan =
  let d = Problem.dim plan.Plan.problem in
  let r = plane_distance plan in
  if r <= 0. then 0.
  else begin
    (* Normalized ideal simplex volume is 1/d!; the quarter-ball of
       radius r below every hyperplane has volume V_ball(d, r) / 2^d. *)
    let ball = Feasible.Geometry.hypersphere_volume ~dim:d ~radius:(Float.min r 1.) in
    let rec fact acc k = if k <= 1 then acc else fact (acc *. float_of_int k) (k - 1) in
    Float.min 1. (fact 1. d *. ball /. (2. ** float_of_int d))
  end

let summary ?lower plan =
  let d = Problem.dim plan.Plan.problem in
  let rows = weight_rows plan in
  let r = plane_distance ?lower plan in
  let point = Option.map (normalized_lower plan.Plan.problem) lower in
  let r_ideal = Feasible.Geometry.ideal_plane_distance ?point d in
  let norms = List.map Vec.norm2 rows in
  {
    plane_distance = r;
    plane_distance_ratio = (if r_ideal > 0. then r /. r_ideal else 0.);
    min_axis_distances = Vec.init d (min_axis_distance plan);
    mmad_volume_bound = mmad_volume_bound plan;
    mmpd_volume_bound = mmpd_volume_bound plan;
    max_node_weight_norm = List.fold_left Float.max 0. norms;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>plane distance r = %.4f (r/r* = %.4f)@,\
     min axis distances = %a@,\
     MMAD volume lower bound = %.4f@,\
     MMPD hypersphere lower bound = %.4f@,\
     max node weight norm = %.4f@]"
    s.plane_distance s.plane_distance_ratio Vec.pp s.min_axis_distances
    s.mmad_volume_bound s.mmpd_volume_bound s.max_node_weight_norm
