(** Theorem 1: the ideal node load-coefficient matrix and the ideal
    feasible set it induces.

    Among all [n x d] matrices whose columns sum to the total load
    coefficients [l_k], the matrix [l*_ik = l_k C_i / C_T] — each
    stream's load split across nodes in proportion to capacity — has the
    largest feasible set: the simplex below the {e ideal hyperplane}
    [sum_k l_k r_k = C_T].  It is an upper bound for every achievable
    plan but is in general not realizable by operator placement. *)

val matrix : Problem.t -> Linalg.Mat.t
(** The [n x d] ideal matrix [L^n*]. *)

val volume : ?lower:Linalg.Vec.t -> Problem.t -> float
(** [C_T^d / (d! prod_k l_k)], shrunk appropriately under a lower
    bound (§6.1). *)

val hyperplane_holds : Problem.t -> rates:Linalg.Vec.t -> bool
(** Whether a rate point lies on or below the ideal hyperplane
    ([l . R <= C_T]) — a necessary condition for feasibility under any
    plan. *)

val weight_matrix_is_ideal : ?eps:float -> Plan.t -> bool
(** Whether a plan actually achieves the ideal matrix, i.e. its weight
    matrix is all ones. *)
