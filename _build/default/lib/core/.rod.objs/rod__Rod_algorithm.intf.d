lib/core/rod_algorithm.mli: Format Linalg Plan Problem Query
