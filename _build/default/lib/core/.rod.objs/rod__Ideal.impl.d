lib/core/ideal.ml: Array Feasible Linalg Plan Problem
