lib/core/ideal.mli: Linalg Plan Problem
