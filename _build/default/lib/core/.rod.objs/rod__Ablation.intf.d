lib/core/ablation.mli: Problem
