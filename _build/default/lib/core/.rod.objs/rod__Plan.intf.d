lib/core/plan.mli: Feasible Format Linalg Problem
