lib/core/metrics.mli: Format Linalg Plan Problem
