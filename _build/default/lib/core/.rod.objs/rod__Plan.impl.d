lib/core/plan.ml: Array Feasible Format Linalg Printf Problem
