lib/core/optimal.ml: Array Feasible Linalg Plan Printf Problem
