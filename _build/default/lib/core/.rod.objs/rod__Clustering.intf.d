lib/core/clustering.mli: Linalg Problem Query
