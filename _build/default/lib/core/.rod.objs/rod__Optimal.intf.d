lib/core/optimal.mli: Problem
