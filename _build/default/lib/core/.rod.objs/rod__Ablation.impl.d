lib/core/ablation.ml: Array Feasible Linalg List Problem Rod_algorithm
