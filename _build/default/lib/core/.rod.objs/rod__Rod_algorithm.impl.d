lib/core/rod_algorithm.ml: Array Feasible Format Linalg List Plan Problem Query
