lib/core/problem.ml: Array Format Linalg Query
