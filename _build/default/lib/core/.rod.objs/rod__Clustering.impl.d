lib/core/clustering.ml: Array Float Hashtbl Linalg List Problem Query Rod_algorithm
