lib/core/problem.mli: Format Linalg Query
