lib/core/metrics.ml: Feasible Float Format Linalg List Option Plan Problem
