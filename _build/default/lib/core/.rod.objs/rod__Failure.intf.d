lib/core/failure.mli: Problem
