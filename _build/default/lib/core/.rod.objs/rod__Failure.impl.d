lib/core/failure.ml: Array Feasible Linalg Plan Problem Rod_algorithm
