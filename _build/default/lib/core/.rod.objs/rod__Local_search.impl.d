lib/core/local_search.ml: Array Feasible Linalg Problem Rod_algorithm
