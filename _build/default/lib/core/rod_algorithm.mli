(** The Resilient Operator Distribution algorithm (§5, Figure 10).

    Phase 1 sorts operators by the Euclidean norm of their load
    coefficient vectors, descending, so high-impact operators are placed
    while the most freedom remains.  Phase 2 assigns each operator
    greedily: nodes whose candidate weight row would stay at or below 1
    on {e every} axis (candidate hyperplane above the ideal hyperplane)
    form {e class I} — assigning there cannot shrink the final feasible
    set, and the choice among them follows the MMAD heuristic.  When no
    class-I node exists the feasible set must shrink, and the operator
    goes to the node with the largest candidate plane distance (MMPD).

    With a lower-bound workload point [B] (§6.1), plane distances are
    measured from the normalized image of [B] instead of the origin. *)

type class_one_policy =
  | Max_plane_distance
      (** Pick the class-I node keeping the largest candidate plane
          distance (default). *)
  | First_fit  (** Pick the lowest-index class-I node. *)
  | Min_new_arcs of Query.Graph.t
      (** Pick the class-I node minimizing newly cut graph arcs
          (§5.2's "minimum number of inter-node streams" criterion);
          ties broken by plane distance. *)

val order_operators : Problem.t -> int list
(** Phase 1: operator indices by descending [||l^o_j||_2] (stable for
    equal norms). *)

val place :
  ?lower:Linalg.Vec.t -> ?policy:class_one_policy -> Problem.t -> int array
(** Run ROD and return the assignment (operator index to node index).
    Deterministic.  [lower], if given, is a rate-space lower-bound point
    of dimension [d]. *)

val plan : ?lower:Linalg.Vec.t -> ?policy:class_one_policy -> Problem.t -> Plan.t
(** [place] wrapped into a {!Plan.t}. *)

type decision = {
  op : int;  (** Operator placed. *)
  rank : int;  (** Position in the phase-1 order (0 = heaviest). *)
  norm : float;  (** [||l^o_op||_2]. *)
  node : int;  (** Chosen node. *)
  class_one : bool;  (** Whether the choice was a free (class-I) move. *)
  class_one_count : int;  (** Class-I candidates available at the time. *)
  plane_distance : float;
      (** Plane distance of the chosen node's weight row {e after} the
          assignment (measured from the lower bound if one is set). *)
}
(** One step of the greedy, for explaining a plan to a human. *)

val place_traced :
  ?lower:Linalg.Vec.t ->
  ?policy:class_one_policy ->
  Problem.t ->
  int array * decision list
(** Like {!place}, also returning the decision log in placement order. *)

val pp_trace : Format.formatter -> decision list -> unit

val place_incremental :
  ?lower:Linalg.Vec.t ->
  ?policy:class_one_policy ->
  fixed:int option array ->
  Problem.t ->
  int array
(** Incremental placement for systems that cannot migrate (the paper's
    whole premise): operators with [fixed.(j) = Some node] stay where
    they are and only contribute their load; the remaining operators are
    placed by the usual two-phase greedy around them.  Typical use:
    queries were added to a running deployment — extend [L^o] with the
    new rows, pin the old operators, place the new ones. *)
