(** Ablated variants of the ROD algorithm, for quantifying how much each
    design ingredient of §4-§5 contributes:

    - the norm-descending {e operator ordering} of phase 1,
    - the {e MMAD} class-I move (free placements above the ideal
      hyperplane),
    - the {e MMPD} plane-distance choice among class-II nodes.

    Each variant is the published algorithm with exactly one ingredient
    removed or replaced. *)

type variant =
  | Full  (** ROD as published (delegates to {!Rod_algorithm}). *)
  | No_ordering  (** Phase 1 skipped: operators placed in index order. *)
  | Mmad_only
      (** Class structure ignored; every operator goes to the node whose
          worst candidate axis weight is smallest (pure per-stream
          balancing). *)
  | Mmpd_only
      (** Class structure ignored; every operator goes to the node with
          the largest candidate plane distance (pure hypersphere
          maximization). *)

val all : variant list

val name : variant -> string

val place : variant -> Problem.t -> int array
(** Deterministic, like the full algorithm. *)
