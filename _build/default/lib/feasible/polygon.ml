module Vec = Linalg.Vec
module Mat = Linalg.Mat

type point = float * float

let clip poly ~a ~b ~c =
  match poly with
  | [] -> []
  | _ ->
    let inside (x, y) = (a *. x) +. (b *. y) <= c +. 1e-12 in
    let intersect (x1, y1) (x2, y2) =
      (* Point where a*x + b*y = c on the segment. *)
      let f1 = (a *. x1) +. (b *. y1) -. c in
      let f2 = (a *. x2) +. (b *. y2) -. c in
      let t = f1 /. (f1 -. f2) in
      (x1 +. (t *. (x2 -. x1)), y1 +. (t *. (y2 -. y1)))
    in
    let n = List.length poly in
    let arr = Array.of_list poly in
    let out = ref [] in
    for i = 0 to n - 1 do
      let cur = arr.(i) in
      let next = arr.((i + 1) mod n) in
      let cur_in = inside cur and next_in = inside next in
      if cur_in then begin
        out := cur :: !out;
        if not next_in then out := intersect cur next :: !out
      end
      else if next_in then out := intersect cur next :: !out
    done;
    List.rev !out

let area poly =
  match poly with
  | [] | [ _ ] | [ _; _ ] -> 0.
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let x1, y1 = arr.(i) in
      let x2, y2 = arr.((i + 1) mod n) in
      acc := !acc +. ((x1 *. y2) -. (x2 *. y1))
    done;
    abs_float !acc /. 2.

let bounding_box ~ln ~caps ~lower =
  let n = Mat.rows ln in
  let bound axis =
    let best = ref infinity in
    for i = 0 to n - 1 do
      let coeff = Mat.get ln i axis in
      if coeff > 0. then best := Float.min !best (caps.(i) /. coeff)
    done;
    if !best = infinity then
      invalid_arg "Polygon: feasible set unbounded (no positive coefficient)";
    !best
  in
  let bx = bound 0 and by = bound 1 in
  let lx, ly = lower in
  (Float.max bx lx, Float.max by ly)

let initial_polygon ~ln ~caps ~lower =
  let lx, ly = lower in
  let bx, by = bounding_box ~ln ~caps ~lower in
  let bx = bx +. 1. and by = by +. 1. in
  [ (lx, ly); (bx, ly); (bx, by); (lx, by) ]

let clip_all ~ln ~caps poly =
  let result = ref poly in
  for i = 0 to Mat.rows ln - 1 do
    result := clip !result ~a:(Mat.get ln i 0) ~b:(Mat.get ln i 1) ~c:caps.(i)
  done;
  !result

let prepare ~ln ~caps ~lower =
  if Mat.cols ln <> 2 then invalid_arg "Polygon: ln must have two columns";
  if Mat.rows ln <> Vec.dim caps then
    invalid_arg "Polygon: ln rows <> capacity entries";
  let lower =
    match lower with
    | None -> (0., 0.)
    | Some b ->
      if Vec.dim b <> 2 then invalid_arg "Polygon: lower bound must be 2-d";
      (b.(0), b.(1))
  in
  clip_all ~ln ~caps (initial_polygon ~ln ~caps ~lower)

let feasible_vertices ~ln ~caps ?lower () = prepare ~ln ~caps ~lower

let feasible_area ~ln ~caps ?lower () = area (prepare ~ln ~caps ~lower)
