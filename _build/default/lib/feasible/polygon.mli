(** Exact feasible-set areas in two dimensions.

    For [d = 2] the feasible set [{ r >= 0 : L^n r <= C }] is a convex
    polygon, so its area can be computed exactly by half-plane clipping.
    Used to draw Figure 5/6 style results and to validate the QMC
    estimator. *)

type point = float * float

val clip : point list -> a:float -> b:float -> c:float -> point list
(** Sutherland–Hodgman clip of a convex polygon (counter-clockwise
    vertex list) against the half-plane [a*x + b*y <= c]. *)

val area : point list -> float
(** Shoelace area of a polygon given as a vertex list (absolute value). *)

val feasible_area :
  ln:Linalg.Mat.t -> caps:Linalg.Vec.t -> ?lower:Linalg.Vec.t -> unit -> float
(** Exact area of [{ r >= lower : L^n r <= C }] for a 2-column [ln].
    The region must be bounded (every axis constrained by some row with
    a positive coefficient); raises [Invalid_argument] otherwise. *)

val feasible_vertices :
  ln:Linalg.Mat.t -> caps:Linalg.Vec.t -> ?lower:Linalg.Vec.t -> unit ->
  point list
(** The polygon's vertices, counter-clockwise — handy for printing the
    Figure 5 feasible-set shapes. *)
