lib/feasible/polygon.ml: Array Float Linalg List
