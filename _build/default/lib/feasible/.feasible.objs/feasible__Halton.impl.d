lib/feasible/halton.ml: Array
