lib/feasible/simplex.mli: Linalg
