lib/feasible/simplex.ml: Array Linalg
