lib/feasible/polygon.mli: Linalg
