lib/feasible/geometry.ml: Array Float Linalg List
