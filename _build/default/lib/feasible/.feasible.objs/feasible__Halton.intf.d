lib/feasible/halton.mli:
