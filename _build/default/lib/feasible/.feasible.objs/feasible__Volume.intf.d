lib/feasible/volume.mli: Linalg Random
