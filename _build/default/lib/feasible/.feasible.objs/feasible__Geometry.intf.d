lib/feasible/geometry.mli: Linalg
