lib/feasible/volume.ml: Array Float Halton Linalg Random Simplex
