module Vec = Linalg.Vec

let axis_distance w k =
  if k < 0 || k >= Vec.dim w then invalid_arg "Geometry.axis_distance: bad axis";
  if w.(k) = 0. then infinity else 1. /. w.(k)

let min_axis_distance rows k =
  List.fold_left (fun acc w -> Float.min acc (axis_distance w k)) infinity rows

let plane_distance w =
  let n = Vec.norm2 w in
  if n = 0. then infinity else 1. /. n

let plane_distance_from ~point w =
  let n = Vec.norm2 w in
  if n = 0. then infinity else (1. -. Vec.dot w point) /. n

let min_plane_distance ?point rows =
  let dist =
    match point with
    | None -> plane_distance
    | Some p -> plane_distance_from ~point:p
  in
  List.fold_left (fun acc w -> Float.min acc (dist w)) infinity rows

let ideal_plane_distance ?point d =
  if d < 1 then invalid_arg "Geometry.ideal_plane_distance: d < 1";
  let s = match point with None -> 0. | Some p -> Vec.sum p in
  (1. -. s) /. sqrt (float_of_int d)

let below_ideal w = Vec.for_all (fun x -> x <= 1.) w

let hypersphere_volume ~dim ~radius =
  if dim < 0 then invalid_arg "Geometry.hypersphere_volume: negative dim";
  if radius < 0. then 0.
  else
    (* V_d = pi^(d/2) / Gamma(d/2 + 1) * r^d, via the recurrence
       V_d = V_{d-2} * 2 pi / d. *)
    let rec unit_volume d =
      if d = 0 then 1.
      else if d = 1 then 2.
      else unit_volume (d - 2) *. 2. *. Float.pi /. float_of_int d
    in
    unit_volume dim *. (radius ** float_of_int dim)
