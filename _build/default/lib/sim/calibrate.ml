module Vec = Linalg.Vec
module Graph = Query.Graph
module Op = Query.Op

type estimate = {
  costs : float array;
  selectivities : float array;
  cost_per_pair : float option;
  sel_per_pair : float option;
  support : int;
}

let of_stats graph metrics =
  let stats = metrics.Sim_metrics.op_stats in
  if Array.length stats <> Graph.n_ops graph then
    invalid_arg "Calibrate.of_stats: statistics from a different graph";
  Array.mapi
    (fun j (stat : Sim_metrics.op_stat) ->
      let op = Graph.op graph j in
      let arity = Op.arity op in
      let per_input f fallback =
        Array.init arity (fun i ->
            if stat.Sim_metrics.consumed.(i) > 0 then f i else fallback i)
      in
      match op.Op.kind with
      | Op.Join { cost_per_pair; sel_per_pair; _ } ->
        let pairs = stat.Sim_metrics.pairs in
        let total_cpu = Array.fold_left ( +. ) 0. stat.Sim_metrics.cpu in
        let total_emitted = Array.fold_left ( + ) 0 stat.Sim_metrics.emitted in
        let cpp =
          if pairs > 0 then total_cpu /. float_of_int pairs else cost_per_pair
        in
        let spp =
          if pairs > 0 then float_of_int total_emitted /. float_of_int pairs
          else sel_per_pair
        in
        {
          costs = Array.make arity 0.;
          selectivities = Array.make arity 0.;
          cost_per_pair = Some cpp;
          sel_per_pair = Some spp;
          support = pairs;
        }
      | Op.Linear { costs; selectivities } ->
        {
          costs =
            per_input
              (fun i ->
                stat.Sim_metrics.cpu.(i)
                /. float_of_int stat.Sim_metrics.consumed.(i))
              (fun i -> costs.(i));
          selectivities =
            per_input
              (fun i ->
                float_of_int stat.Sim_metrics.emitted.(i)
                /. float_of_int stat.Sim_metrics.consumed.(i))
              (fun i -> selectivities.(i));
          cost_per_pair = None;
          sel_per_pair = None;
          support = Array.fold_left ( + ) 0 stat.Sim_metrics.consumed;
        }
      | Op.Var_selectivity { cost; sel_now; _ } ->
        {
          costs =
            per_input
              (fun i ->
                stat.Sim_metrics.cpu.(i)
                /. float_of_int stat.Sim_metrics.consumed.(i))
              (fun _ -> cost);
          selectivities =
            per_input
              (fun i ->
                float_of_int stat.Sim_metrics.emitted.(i)
                /. float_of_int stat.Sim_metrics.consumed.(i))
              (fun _ -> sel_now);
          cost_per_pair = None;
          sel_per_pair = None;
          support = Array.fold_left ( + ) 0 stat.Sim_metrics.consumed;
        })
    stats

let measure ?(seed = 1) ?(duration = 30.) ?rng ~graph ~n_nodes ~rates () =
  let rng =
    match rng with Some rng -> rng | None -> Random.State.make [| seed |]
  in
  let m = Graph.n_ops graph in
  (* Random balanced placement, as in the paper's trial runs. *)
  let assignment = Array.init m (fun j -> j mod n_nodes) in
  for i = m - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = assignment.(i) in
    assignment.(i) <- assignment.(j);
    assignment.(j) <- tmp
  done;
  let caps = Vec.create n_nodes 1. in
  let arrivals =
    Array.map
      (fun rate ->
        Workload.Generators.poisson_arrivals ~rng
          ~trace:(Workload.Trace.create ~dt:duration [| rate |]))
      rates
  in
  let metrics =
    Engine.run ~graph ~assignment ~caps ~arrivals
      ~config:{ Engine.default_config with seed; warmup = 0. }
      ~until:duration ()
  in
  of_stats graph metrics

let estimated_graph graph estimates =
  if Array.length estimates <> Graph.n_ops graph then
    invalid_arg "Calibrate.estimated_graph: estimate count mismatch";
  let rebuild j op =
    let e = estimates.(j) in
    match op.Op.kind with
    | Op.Linear _ ->
      {
        op with
        Op.kind = Op.Linear { costs = e.costs; selectivities = e.selectivities };
      }
    | Op.Join join ->
      {
        op with
        Op.kind =
          Op.Join
            {
              join with
              cost_per_pair = Option.value e.cost_per_pair ~default:join.Op.cost_per_pair;
              sel_per_pair = Option.value e.sel_per_pair ~default:join.Op.sel_per_pair;
            };
      }
    | Op.Var_selectivity vs ->
      {
        op with
        Op.kind =
          Op.Var_selectivity
            {
              vs with
              cost = e.costs.(0);
              sel_now = Float.max vs.Op.sel_lo (Float.min vs.Op.sel_hi e.selectivities.(0));
            };
      }
  in
  let ops =
    List.init (Graph.n_ops graph) (fun j ->
        (rebuild j (Graph.op graph j), Graph.sources graph j))
  in
  Graph.create ~input_xfer_cost:graph.Graph.input_xfer_cost
    ~n_inputs:(Graph.n_inputs graph) ~ops ()

let max_relative_error graph estimates =
  let err_ref = ref 0. in
  let record truth est =
    if truth > 0. then
      err_ref := Float.max !err_ref (abs_float (est -. truth) /. truth)
  in
  Array.iteri
    (fun j e ->
      if e.support > 0 then begin
        let op = Graph.op graph j in
        match op.Op.kind with
        | Op.Linear { costs; selectivities } ->
          Array.iteri (fun i c -> record c e.costs.(i)) costs;
          Array.iteri (fun i s -> record s e.selectivities.(i)) selectivities
        | Op.Join { cost_per_pair; sel_per_pair; _ } ->
          Option.iter (record cost_per_pair) e.cost_per_pair;
          Option.iter (record sel_per_pair) e.sel_per_pair
        | Op.Var_selectivity { cost; sel_now; _ } ->
          record cost e.costs.(0);
          record sel_now e.selectivities.(0)
      end)
    estimates;
  !err_ref
