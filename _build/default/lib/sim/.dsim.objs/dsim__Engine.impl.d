lib/sim/engine.ml: Array Event_queue Float Hashtbl Linalg List Query Queue Random Sim_metrics
