lib/sim/probe.mli: Engine Linalg Query Random Sim_metrics Workload
