lib/sim/probe.ml: Array Engine Float Linalg Query Sim_metrics Workload
