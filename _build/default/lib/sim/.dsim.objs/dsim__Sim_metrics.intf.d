lib/sim/sim_metrics.mli: Format
