lib/sim/sim_metrics.ml: Array Float Format Linalg Workload
