lib/sim/calibrate.ml: Array Engine Float Linalg List Option Query Random Sim_metrics Workload
