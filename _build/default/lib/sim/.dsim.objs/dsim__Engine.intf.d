lib/sim/engine.mli: Linalg Query Sim_metrics
