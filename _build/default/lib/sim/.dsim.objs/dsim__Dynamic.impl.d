lib/sim/dynamic.ml: Array Engine List
