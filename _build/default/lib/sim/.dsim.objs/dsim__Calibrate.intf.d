lib/sim/calibrate.mli: Linalg Query Random Sim_metrics
