lib/sim/dynamic.mli: Engine
