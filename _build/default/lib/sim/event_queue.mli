(** A binary-heap priority queue of timestamped events.

    Events with equal timestamps are dequeued in insertion order
    (a monotone sequence number breaks ties), which keeps simulation
    runs fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
