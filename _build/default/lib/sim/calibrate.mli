(** Operator cost/selectivity measurement — the paper's methodology for
    obtaining a load model from a running system (§7.1):

    "To measure the operator costs and selectivities in the prototype
    implementation, we randomly distribute the operators and run the
    system for a sufficiently long time to gather stable statistics."

    {!measure} runs the graph in the simulator under a random balanced
    placement and returns per-operator estimates; {!estimated_graph}
    rebuilds a graph whose operator parameters are the estimates, ready
    for load-model derivation and placement.  Parameters of operators
    that processed no tuples during the trial keep their configured
    values. *)

type estimate = {
  costs : float array;  (** Estimated CPU seconds per tuple, per input. *)
  selectivities : float array;  (** Estimated outputs per input tuple. *)
  cost_per_pair : float option;  (** Joins only. *)
  sel_per_pair : float option;  (** Joins only. *)
  support : int;  (** Tuples observed (candidate pairs for joins). *)
}

val of_stats : Query.Graph.t -> Sim_metrics.t -> estimate array
(** Turn a simulation's per-operator statistics into estimates. *)

val measure :
  ?seed:int ->
  ?duration:float ->
  ?rng:Random.State.t ->
  graph:Query.Graph.t ->
  n_nodes:int ->
  rates:Linalg.Vec.t ->
  unit ->
  estimate array
(** Trial run: random balanced placement on [n_nodes] unit nodes,
    constant [rates] for [duration] seconds (default 30). *)

val estimated_graph : Query.Graph.t -> estimate array -> Query.Graph.t
(** A structurally identical graph whose operator costs/selectivities
    are replaced by the estimates (windows and selectivity bounds are
    configuration, not measurements, and are kept). *)

val max_relative_error : Query.Graph.t -> estimate array -> float
(** Largest relative error of any estimated parameter with positive
    support against the graph's true parameters — for tests and
    reporting. *)
