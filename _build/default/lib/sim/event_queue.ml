type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let capacity = Array.length q.heap in
  let fresh = max 16 (2 * capacity) in
  if capacity < fresh then begin
    let bigger = Array.make fresh q.heap.(0) in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end

let push q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 then begin
    q.heap <- Array.make (max 16 (Array.length q.heap)) entry;
    q.size <- 1
  end
  else begin
    if q.size = Array.length q.heap then grow q;
    q.heap.(q.size) <- entry;
    q.size <- q.size + 1;
    sift_up q (q.size - 1)
  end

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
