module Vec = Linalg.Vec

type verdict = {
  feasible : bool;
  metrics : Sim_metrics.t;
}

let probe_point ?(duration = 20.) ?(util_threshold = 0.98) ?config ~graph
    ~assignment ~caps ~rates () =
  if Vec.dim rates <> Query.Graph.n_inputs graph then
    invalid_arg "Probe.probe_point: rate dimension mismatch";
  let config =
    match config with
    | Some c -> c
    | None -> { Engine.default_config with warmup = 1. }
  in
  let until = config.Engine.warmup +. duration in
  let arrivals =
    Array.map
      (fun rate ->
        let trace =
          Workload.Trace.create ~dt:until [| Float.max rate 0. |]
        in
        Workload.Generators.deterministic_arrivals ~trace)
      rates
  in
  let metrics = Engine.run ~graph ~assignment ~caps ~arrivals ~config ~until () in
  { feasible = Sim_metrics.max_utilization metrics < util_threshold; metrics }

let feasible_fraction ?duration ?util_threshold ?config ~graph ~assignment ~caps
    ~points () =
  if Array.length points = 0 then
    invalid_arg "Probe.feasible_fraction: no points";
  let ok =
    Array.fold_left
      (fun acc rates ->
        let v =
          probe_point ?duration ?util_threshold ?config ~graph ~assignment ~caps
            ~rates ()
        in
        if v.feasible then acc + 1 else acc)
      0 points
  in
  float_of_int ok /. float_of_int (Array.length points)

let simulate_traces ?config ?rng ~graph ~assignment ~caps ~traces () =
  if Array.length traces <> Query.Graph.n_inputs graph then
    invalid_arg "Probe.simulate_traces: one trace per input stream expected";
  let until =
    Array.fold_left
      (fun acc trace -> Float.min acc (Workload.Trace.duration trace))
      infinity traces
  in
  let arrivals =
    Array.map
      (fun trace ->
        match rng with
        | Some rng -> Workload.Generators.poisson_arrivals ~rng ~trace
        | None -> Workload.Generators.deterministic_arrivals ~trace)
      traces
  in
  let config = match config with Some c -> c | None -> Engine.default_config in
  Engine.run ~graph ~assignment ~caps ~arrivals ~config ~until ()
