(** Basic statistics over float arrays: moments, correlation and a
    rescaled-range (R/S) Hurst-exponent estimator used to check that the
    synthetic traces are self-similar like the paper's real traces. *)

val mean : float array -> float

val variance : float array -> float
(** Population variance (divides by [n]). *)

val std : float array -> float

val covariance : float array -> float array -> float

val correlation : float array -> float array -> float
(** Pearson correlation; [0.] if either series is constant. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs lag] for [0 <= lag < length xs]. *)

val normalize : float array -> float array
(** Scales a nonnegative series to mean 1; the identity on an all-zero
    series. *)

val coefficient_of_variation : float array -> float
(** [std / mean]; the "standard deviation of the normalized rates" the
    paper reports in Figure 2. *)

val hurst_rs : float array -> float
(** Rescaled-range estimate of the Hurst exponent: slope of
    [log (R/S)] against [log window] over dyadic window sizes.  Around
    0.5 for i.i.d. noise, substantially above 0.5 for self-similar
    (long-range-dependent) series.  Requires at least 32 samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation. *)
