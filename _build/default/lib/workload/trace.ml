type t = {
  dt : float;
  rates : float array;
}

let create ~dt rates =
  if dt <= 0. then invalid_arg "Trace.create: dt must be positive";
  if Array.length rates = 0 then invalid_arg "Trace.create: empty trace";
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Trace.create: negative rate")
    rates;
  { dt; rates = Array.copy rates }

let length t = Array.length t.rates

let duration t = t.dt *. float_of_int (length t)

let rate_at t time =
  if time < 0. then invalid_arg "Trace.rate_at: negative time";
  let i = int_of_float (time /. t.dt) in
  let i = min i (length t - 1) in
  t.rates.(i)

let mean_rate t = Stats.mean t.rates

let cv t = Stats.coefficient_of_variation t.rates

let normalize t = { t with rates = Stats.normalize t.rates }

let scale factor t =
  if factor < 0. then invalid_arg "Trace.scale: negative factor";
  { t with rates = Array.map (fun r -> factor *. r) t.rates }

let coarsen t k =
  if k < 1 then invalid_arg "Trace.coarsen: k < 1";
  let groups = length t / k in
  if groups = 0 then invalid_arg "Trace.coarsen: trace shorter than k";
  let rates =
    Array.init groups (fun g ->
        let acc = ref 0. in
        for i = g * k to ((g + 1) * k) - 1 do
          acc := !acc +. t.rates.(i)
        done;
        !acc /. float_of_int k)
  in
  { dt = t.dt *. float_of_int k; rates }

let slice t pos len =
  if pos < 0 || len < 1 || pos + len > length t then
    invalid_arg "Trace.slice: out of range";
  { t with rates = Array.sub t.rates pos len }

let check_compatible name a b =
  if a.dt <> b.dt then
    invalid_arg (Printf.sprintf "Trace.%s: different sampling intervals" name)

let add a b =
  check_compatible "add" a b;
  if length a <> length b then invalid_arg "Trace.add: different lengths";
  { a with rates = Array.map2 ( +. ) a.rates b.rates }

let concat a b =
  check_compatible "concat" a b;
  { a with rates = Array.append a.rates b.rates }

let map_rates f t =
  let rates = Array.map f t.rates in
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Trace.map_rates: negative rate")
    rates;
  { t with rates }

let pp_summary fmt t =
  Format.fprintf fmt "trace(dt=%gs, n=%d, mean=%.3g tps, cv=%.3f)" t.dt
    (length t) (mean_rate t) (cv t)
