(** Additional rate-trace generators used by the experiments: smooth and
    bursty alternatives to the self-similar {!Bmodel} cascade. *)

val constant : n:int -> dt:float -> rate:float -> Trace.t

val poisson_counts :
  rng:Random.State.t -> n:int -> dt:float -> mean_rate:float -> Trace.t
(** Rates obtained by counting Poisson arrivals per interval: short-term
    noise, no long-range dependence (Hurst ~ 0.5). *)

val sinusoid :
  n:int -> dt:float -> mean_rate:float -> amplitude:float -> period:float ->
  Trace.t
(** Deterministic diurnal-style oscillation:
    [rate(t) = mean * (1 + amplitude * sin (2 pi t / period))]; requires
    [0 <= amplitude <= 1]. *)

val flash_crowd :
  rng:Random.State.t ->
  n:int ->
  dt:float ->
  base_rate:float ->
  spike_prob:float ->
  spike_factor:float ->
  decay:float ->
  Trace.t
(** Baseline rate with random multiplicative spikes that decay
    geometrically by [decay] per interval — the "flash crowd reacting to
    breaking news" pattern of §1. *)

val poisson_arrivals :
  rng:Random.State.t -> trace:Trace.t -> float list
(** Arrival timestamps over the trace duration, drawn from an
    inhomogeneous Poisson process whose intensity is piecewise constant
    at the trace's rates.  Ascending; drives the simulator sources. *)

val deterministic_arrivals : trace:Trace.t -> float list
(** Evenly spaced arrivals within each interval at the interval's rate —
    useful for reproducible simulator tests. *)
