(** Trace files: a one-line header with the sampling interval followed
    by one rate per line — trivially loadable into plotting tools and
    round-trippable, so synthesized workloads can be pinned down and
    reused across runs.

    {v
    # rodtrace dt=0.5
    12.5
    13.75
    ...
    v} *)

val to_string : Trace.t -> string

val of_string : string -> Trace.t
(** @raise Failure on malformed input. *)

val save : Trace.t -> path:string -> unit

val load : path:string -> Trace.t
