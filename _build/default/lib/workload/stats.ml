let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty series")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let covariance xs ys =
  check_nonempty "covariance" xs;
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.covariance: length mismatch";
  let mx = mean xs and my = mean ys in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. mx) *. (ys.(i) -. my))) xs;
  !acc /. float_of_int (Array.length xs)

let variance xs = covariance xs xs

let std xs = sqrt (variance xs)

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0. || sy = 0. then 0. else covariance xs ys /. (sx *. sy)

let autocorrelation xs lag =
  check_nonempty "autocorrelation" xs;
  let n = Array.length xs in
  if lag < 0 || lag >= n then invalid_arg "Stats.autocorrelation: bad lag";
  if lag = 0 then 1.
  else
    let head = Array.sub xs 0 (n - lag) in
    let tail = Array.sub xs lag (n - lag) in
    correlation head tail

let normalize xs =
  let m = mean xs in
  if m = 0. then Array.copy xs else Array.map (fun x -> x /. m) xs

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then 0. else std xs /. m

(* Rescaled range of one window. *)
let rs_of_window xs =
  let n = Array.length xs in
  let m = mean xs in
  let running = ref 0. and lo = ref 0. and hi = ref 0. in
  Array.iter
    (fun x ->
      running := !running +. (x -. m);
      if !running < !lo then lo := !running;
      if !running > !hi then hi := !running)
    xs;
  let r = !hi -. !lo in
  let s = std xs in
  ignore n;
  if s = 0. then None else Some (r /. s)

let hurst_rs xs =
  let n = Array.length xs in
  if n < 32 then invalid_arg "Stats.hurst_rs: need at least 32 samples";
  (* Dyadic window sizes from 8 up to n/4; average R/S over disjoint
     windows of each size, then fit log(R/S) ~ H log(size). *)
  let points = ref [] in
  let size = ref 8 in
  while !size <= n / 4 do
    let w = !size in
    let count = n / w in
    let acc = ref 0. and used = ref 0 in
    for i = 0 to count - 1 do
      match rs_of_window (Array.sub xs (i * w) w) with
      | Some rs ->
        acc := !acc +. rs;
        incr used
      | None -> ()
    done;
    if !used > 0 then
      points := (log (float_of_int w), log (!acc /. float_of_int !used)) :: !points;
    size := !size * 2
  done;
  match !points with
  | [] | [ _ ] -> 0.5
  | pts ->
    let xs' = Array.of_list (List.map fst pts) in
    let ys' = Array.of_list (List.map snd pts) in
    let vx = variance xs' in
    if vx = 0. then 0.5 else covariance xs' ys' /. vx

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p /. 100. *. float_of_int (n - 1) in
  let i = int_of_float (floor pos) in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then sorted.(n - 1)
  else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
