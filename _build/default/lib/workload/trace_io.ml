let to_string trace =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Printf.sprintf "# rodtrace dt=%.17g\n" trace.Trace.dt);
  Array.iter
    (fun rate -> Buffer.add_string buffer (Printf.sprintf "%.17g\n" rate))
    trace.Trace.rates;
  Buffer.contents buffer

let of_string text =
  match String.split_on_char '\n' text with
  | header :: rest ->
    let dt =
      match String.split_on_char '=' (String.trim header) with
      | [ prefix; value ] when String.trim prefix = "# rodtrace dt" -> (
        match float_of_string_opt value with
        | Some dt -> dt
        | None -> failwith "Trace_io: bad dt value")
      | _ -> failwith "Trace_io: expected header '# rodtrace dt=...'"
    in
    let rates =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then None
          else
            match float_of_string_opt line with
            | Some r -> Some r
            | None -> failwith (Printf.sprintf "Trace_io: bad rate %S" line))
        rest
    in
    Trace.create ~dt (Array.of_list rates)
  | [] -> failwith "Trace_io: empty input"

let save trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string trace))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
