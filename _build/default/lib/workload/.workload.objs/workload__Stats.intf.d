lib/workload/stats.mli:
