lib/workload/traces.ml: Bmodel List Trace
