lib/workload/trace.ml: Array Format Printf Stats
