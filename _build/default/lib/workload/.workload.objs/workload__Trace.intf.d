lib/workload/trace.mli: Format
