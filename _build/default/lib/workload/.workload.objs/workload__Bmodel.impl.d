lib/workload/bmodel.ml: Array Random Trace
