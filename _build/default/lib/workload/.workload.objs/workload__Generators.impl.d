lib/workload/generators.ml: Array Float List Random Trace
