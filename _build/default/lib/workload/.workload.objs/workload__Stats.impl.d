lib/workload/stats.ml: Array List
