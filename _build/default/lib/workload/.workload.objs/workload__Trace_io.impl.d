lib/workload/trace_io.ml: Array Buffer Fun List Printf String Trace
