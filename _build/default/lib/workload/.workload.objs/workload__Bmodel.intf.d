lib/workload/bmodel.mli: Random Trace
