lib/workload/traces.mli: Random Trace
