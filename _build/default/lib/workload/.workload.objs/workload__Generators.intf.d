lib/workload/generators.mli: Random Trace
