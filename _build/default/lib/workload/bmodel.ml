let check_bias bias =
  if bias < 0.5 || bias >= 1.0 then
    invalid_arg "Bmodel: bias must lie in [0.5, 1.0)"

let generate ~rng ~bias ~levels ~total =
  check_bias bias;
  if levels < 0 || levels > 24 then invalid_arg "Bmodel: levels outside [0, 24]";
  if total < 0. then invalid_arg "Bmodel: negative total";
  let n = 1 lsl levels in
  let values = Array.make n total in
  (* Split segments in place, level by level: the segment [pos, pos+len)
     currently carries its volume in values.(pos). *)
  let len = ref n in
  while !len > 1 do
    let half = !len / 2 in
    let pos = ref 0 in
    while !pos < n do
      let volume = values.(!pos) in
      let big_left = Random.State.bool rng in
      let left = if big_left then bias *. volume else (1. -. bias) *. volume in
      values.(!pos) <- left;
      values.(!pos + half) <- volume -. left;
      pos := !pos + !len
    done;
    len := half
  done;
  values

let trace ~rng ~bias ~levels ~mean_rate ~dt =
  if mean_rate < 0. then invalid_arg "Bmodel.trace: negative mean rate";
  let n = 1 lsl levels in
  let total = mean_rate *. float_of_int n in
  Trace.create ~dt (generate ~rng ~bias ~levels ~total)

let second_moment_ratio ~bias ~levels =
  (2. *. ((bias *. bias) +. ((1. -. bias) *. (1. -. bias))))
  ** float_of_int levels

let cv_of_bias ~bias ~levels =
  check_bias bias;
  sqrt (second_moment_ratio ~bias ~levels -. 1.)

let bias_for_cv ~cv ~levels =
  if cv < 0. then invalid_arg "Bmodel.bias_for_cv: negative cv";
  let rec bisect lo hi iters =
    if iters = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if cv_of_bias ~bias:mid ~levels < cv then bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
  in
  bisect 0.5 0.999 60
