type kind =
  | Pkt
  | Tcp
  | Http

let all = [ Pkt; Tcp; Http ]

let name = function
  | Pkt -> "PKT"
  | Tcp -> "TCP"
  | Http -> "HTTP"

let target_cv = function
  | Pkt -> 0.25
  | Tcp -> 0.45
  | Http -> 0.75

let synthesize ?(levels = 10) ?(dt = 1.) ~rng kind =
  let bias = Bmodel.bias_for_cv ~cv:(target_cv kind) ~levels in
  Trace.normalize (Bmodel.trace ~rng ~bias ~levels ~mean_rate:1. ~dt)

let synthesize_all ?levels ?dt ~rng () =
  List.map (fun kind -> (kind, synthesize ?levels ?dt ~rng kind)) all
