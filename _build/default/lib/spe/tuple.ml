type t = {
  ts : float;
  fields : (string * Value.t) array;
}

let make ~ts bindings =
  let fields = Array.of_list bindings in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) fields;
  for i = 1 to Array.length fields - 1 do
    if fst fields.(i) = fst fields.(i - 1) then
      invalid_arg
        (Printf.sprintf "Tuple.make: duplicate field %S" (fst fields.(i)))
  done;
  { ts; fields }

let ts t = t.ts

(* Fields are few; linear probe beats binary search bookkeeping. *)
let find_opt t name =
  let rec scan i =
    if i >= Array.length t.fields then None
    else
      let k, v = t.fields.(i) in
      if String.equal k name then Some v else scan (i + 1)
  in
  scan 0

let find t name =
  match find_opt t name with Some v -> v | None -> raise Not_found

let mem t name = find_opt t name <> None

let number t name = Value.to_float (find t name)

let set t name value =
  let bindings =
    (name, value)
    :: List.filter (fun (k, _) -> not (String.equal k name))
         (Array.to_list t.fields)
  in
  make ~ts:t.ts bindings

let remove t name =
  make ~ts:t.ts
    (List.filter (fun (k, _) -> not (String.equal k name))
       (Array.to_list t.fields))

let with_ts t ts = { t with ts }

let project t names =
  make ~ts:t.ts
    (List.filter (fun (k, _) -> List.mem k names) (Array.to_list t.fields))

let merge ~prefix_left ~prefix_right left right =
  let rename prefix (k, v) = (prefix ^ k, v) in
  make
    ~ts:(Float.max left.ts right.ts)
    (List.map (rename prefix_left) (Array.to_list left.fields)
    @ List.map (rename prefix_right) (Array.to_list right.fields))

let names t = Array.to_list (Array.map fst t.fields)

let equal a b =
  a.ts = b.ts
  && Array.length a.fields = Array.length b.fields
  && Array.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && Value.equal va vb)
       a.fields b.fields

let pp fmt t =
  Format.fprintf fmt "@[<h>{ts=%g" t.ts;
  Array.iter (fun (k, v) -> Format.fprintf fmt "; %s=%a" k Value.pp v) t.fields;
  Format.fprintf fmt "}@]"
