module Graph = Query.Graph

type op_run_stat = {
  consumed : int array;
  mutable emitted : int;
  mutable pairs : int;
}

type result = {
  outputs : (int * Tuple.t) list;
  stats : op_run_stat array;
  recorded : (int * Tuple.t) list array option;
}

(* --- aggregate accumulators --- *)

type accum = {
  mutable count : int;
  mutable sum : float;
  mutable mx : float;
  mutable mn : float;
}

let fresh_accum () = { count = 0; sum = 0.; mx = neg_infinity; mn = infinity }

let accum_add acc x =
  acc.count <- acc.count + 1;
  acc.sum <- acc.sum +. x;
  if x > acc.mx then acc.mx <- x;
  if x < acc.mn then acc.mn <- x

let accum_value fn acc =
  match fn with
  | Sop.Count -> Value.Int acc.count
  | Sop.Sum _ -> Value.Float acc.sum
  | Sop.Avg _ ->
    Value.Float (if acc.count = 0 then 0. else acc.sum /. float_of_int acc.count)
  | Sop.Max _ -> Value.Float acc.mx
  | Sop.Min _ -> Value.Float acc.mn

let accum_input fn tuple =
  match fn with
  | Sop.Count -> 0.
  | Sop.Sum field | Sop.Avg field | Sop.Max field | Sop.Min field ->
    Tuple.number tuple field

(* --- per-operator state --- *)

(* Buffered entries support sliding windows: each tuple contributes its
   timestamp, group key and the raw per-aggregate input values; every
   slide boundary aggregates the entries its window covers. *)
type agg_entry = {
  entry_ts : float;
  key : Value.t option;
  inputs : float array;  (* one raw value per compute entry *)
}

type agg_state = {
  mutable last_boundary : int option;  (* boundary index: time = k * slide *)
  entries : agg_entry Queue.t;  (* timestamp-ordered *)
}

type join_state = {
  left : Tuple.t Queue.t;
  right : Tuple.t Queue.t;
}

type state =
  | Stateless
  | Agg of agg_state
  | Join of join_state
  | Dedup of (Value.t, float) Hashtbl.t  (* key -> last emission time *)

let initial_state = function
  | Sop.Aggregate _ -> Agg { last_boundary = None; entries = Queue.create () }
  | Sop.Equi_join _ -> Join { left = Queue.create (); right = Queue.create () }
  | Sop.Distinct _ -> Dedup (Hashtbl.create 32)
  | Sop.Filter _ | Sop.Map _ | Sop.Project _ | Sop.Union _ -> Stateless

let field_or_fail op_name tuple key =
  match Tuple.find_opt tuple key with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Executor: operator %s: tuple lacks field %S" op_name key)

(* One emission: aggregate the buffered entries whose timestamps fall in
   [boundary - window, boundary), one output tuple per group (hash
   order; order within an emission carries no semantics). *)
let emit_boundary ~window ~slide ~group_by ~compute st k =
  let boundary = float_of_int k *. slide in
  let lo = boundary -. window in
  let groups : (Value.t option, accum array) Hashtbl.t = Hashtbl.create 16 in
  Queue.iter
    (fun e ->
      if e.entry_ts >= lo && e.entry_ts < boundary then begin
        let accums =
          match Hashtbl.find_opt groups e.key with
          | Some a -> a
          | None ->
            let a = Array.init (List.length compute) (fun _ -> fresh_accum ()) in
            Hashtbl.add groups e.key a;
            a
        in
        Array.iteri (fun i x -> accum_add accums.(i) x) e.inputs
      end)
    st.entries;
  let emitted = ref [] in
  Hashtbl.iter
    (fun key accums ->
      let computed =
        List.mapi
          (fun i (out_field, fn) -> (out_field, accum_value fn accums.(i)))
          compute
      in
      let fields =
        match (group_by, key) with
        | Some _, Some k -> ("group", k) :: computed
        | _ -> computed
      in
      emitted := Tuple.make ~ts:boundary fields :: !emitted)
    groups;
  (* Entries older than the NEXT boundary's window start are done. *)
  let horizon = (float_of_int (k + 1) *. slide) -. window in
  while
    (not (Queue.is_empty st.entries))
    && (Queue.peek st.entries).entry_ts < horizon
  do
    ignore (Queue.pop st.entries)
  done;
  !emitted

(* Emit every boundary up to and including time [t]; returns outputs in
   boundary order. *)
let advance_boundaries ~window ~slide ~group_by ~compute st t =
  let target = int_of_float (floor (t /. slide)) in
  let start =
    match st.last_boundary with
    | Some k -> k
    | None ->
      st.last_boundary <- Some target;
      target
  in
  let out = ref [] in
  for k = start + 1 to target do
    out := !out @ emit_boundary ~window ~slide ~group_by ~compute st k;
    st.last_boundary <- Some k
  done;
  !out

let process_aggregate sop st tuple =
  match sop with
  | Sop.Aggregate { window; slide; group_by; compute; name } ->
    let t = Tuple.ts tuple in
    let flushed = advance_boundaries ~window ~slide ~group_by ~compute st t in
    let key =
      match group_by with
      | None -> None
      | Some field -> Some (field_or_fail name tuple field)
    in
    let inputs =
      Array.of_list (List.map (fun (_, fn) -> accum_input fn tuple) compute)
    in
    Queue.add { entry_ts = t; key; inputs } st.entries;
    flushed
  | _ -> assert false

(* End of stream: keep emitting boundaries until the buffer drains. *)
let finish_aggregate sop st =
  match sop with
  | Sop.Aggregate { window; slide; group_by; compute; _ } ->
    let out = ref [] in
    let guard = ref 0 in
    while (not (Queue.is_empty st.entries)) && !guard < 1_000_000 do
      incr guard;
      let k = (match st.last_boundary with Some k -> k | None -> 0) + 1 in
      out := !out @ emit_boundary ~window ~slide ~group_by ~compute st k;
      st.last_boundary <- Some k
    done;
    !out
  | _ -> assert false

let process_join sop st stat input_idx tuple =
  match sop with
  | Sop.Equi_join { window; left_key; right_key; name } ->
    let now = Tuple.ts tuple in
    let horizon = now -. (window /. 2.) in
    let expire q =
      while (not (Queue.is_empty q)) && Tuple.ts (Queue.peek q) < horizon do
        ignore (Queue.pop q)
      done
    in
    expire st.left;
    expire st.right;
    let own, opposite, own_key, opp_key, merge =
      if input_idx = 0 then
        ( st.left,
          st.right,
          left_key,
          right_key,
          fun mine theirs ->
            Tuple.merge ~prefix_left:"l_" ~prefix_right:"r_" mine theirs )
      else
        ( st.right,
          st.left,
          right_key,
          left_key,
          fun mine theirs ->
            Tuple.merge ~prefix_left:"l_" ~prefix_right:"r_" theirs mine )
    in
    let key = field_or_fail name tuple own_key in
    let matches = ref [] in
    Queue.iter
      (fun other ->
        stat.pairs <- stat.pairs + 1;
        if Value.equal key (field_or_fail name other opp_key) then
          matches := merge tuple other :: !matches)
      opposite;
    Queue.add tuple own;
    List.rev !matches
  | _ -> assert false

let process sop state stat input_idx tuple =
  match (sop, state) with
  | Sop.Filter { predicate; _ }, Stateless ->
    if predicate tuple then [ tuple ] else []
  | Sop.Distinct { window; key; name }, Dedup seen -> (
    let k = field_or_fail name tuple key in
    let now = Tuple.ts tuple in
    match Hashtbl.find_opt seen k with
    | Some last when now -. last < window -> []
    | Some _ | None ->
      Hashtbl.replace seen k now;
      [ tuple ])
  | Sop.Map { transform; _ }, Stateless -> [ transform tuple ]
  | Sop.Project { keep; _ }, Stateless -> [ Tuple.project tuple keep ]
  | Sop.Union _, Stateless -> [ tuple ]
  | Sop.Aggregate _, Agg st -> process_aggregate sop st tuple
  | Sop.Equi_join _, Join st -> process_join sop st stat input_idx tuple
  | _ -> assert false

let replay_state = initial_state

let replay_stat sop =
  { consumed = Array.make (Sop.arity sop) 0; emitted = 0; pairs = 0 }

let replay_process = process

let run ?(record = false) network ~inputs =
  let d = Network.n_inputs network in
  let m = Network.n_ops network in
  if Array.length inputs <> d then
    invalid_arg "Executor.run: one tuple list per input stream expected";
  let states = Array.init m (fun j -> initial_state (Network.op network j)) in
  let stats =
    Array.init m (fun j ->
        {
          consumed = Array.make (Sop.arity (Network.op network j)) 0;
          emitted = 0;
          pairs = 0;
        })
  in
  let logs = if record then Some (Array.make m []) else None in
  let outputs = ref [] in
  let consumer_table = Hashtbl.create 32 in
  let consumers_of src =
    match Hashtbl.find_opt consumer_table src with
    | Some c -> c
    | None ->
      let c = Network.consumers network src in
      Hashtbl.add consumer_table src c;
      c
  in
  let rec push j input_idx tuple =
    let stat = stats.(j) in
    stat.consumed.(input_idx) <- stat.consumed.(input_idx) + 1;
    (match logs with
    | Some logs -> logs.(j) <- (input_idx, tuple) :: logs.(j)
    | None -> ());
    let produced =
      process (Network.op network j) states.(j) stat input_idx tuple
    in
    stat.emitted <- stat.emitted + List.length produced;
    deliver j produced
  and deliver j produced =
    match consumers_of (Graph.Op_output j) with
    | [] -> List.iter (fun t -> outputs := (j, t) :: !outputs) produced
    | readers ->
      List.iter
        (fun t -> List.iter (fun (c, idx) -> push c idx t) readers)
        produced
  in
  (* Merge the input streams by timestamp (stable: stream order breaks
     ties deterministically). *)
  let events =
    Array.to_list (Array.mapi (fun k ts -> List.map (fun t -> (k, t)) ts) inputs)
    |> List.concat
    |> List.stable_sort (fun (_, a) (_, b) -> Float.compare (Tuple.ts a) (Tuple.ts b))
  in
  List.iter
    (fun (k, tuple) ->
      List.iter
        (fun (c, idx) -> push c idx tuple)
        (consumers_of (Graph.Sys_input k)))
    events;
  (* End of stream: flush open windows, upstream first so cascades
     propagate. *)
  List.iter
    (fun j ->
      match (Network.op network j, states.(j)) with
      | (Sop.Aggregate _ as sop), Agg st ->
        let produced = finish_aggregate sop st in
        stats.(j).emitted <- stats.(j).emitted + List.length produced;
        deliver j produced
      | _ -> ())
    (Network.topo_order network);
  {
    outputs = List.rev !outputs;
    stats;
    recorded = Option.map (Array.map List.rev) logs;
  }
