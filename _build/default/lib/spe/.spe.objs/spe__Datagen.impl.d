lib/spe/datagen.ml: Array List Printf Random Tuple Value Workload
