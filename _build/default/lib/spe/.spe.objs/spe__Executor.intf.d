lib/spe/executor.mli: Network Sop Tuple
