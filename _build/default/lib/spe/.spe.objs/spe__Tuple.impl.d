lib/spe/tuple.ml: Array Float Format List Printf String Value
