lib/spe/profiler.ml: Array Executor List Network Query Sop Unix
