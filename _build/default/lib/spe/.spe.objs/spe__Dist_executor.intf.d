lib/spe/dist_executor.mli: Dsim Linalg Network Query Tuple
