lib/spe/dist_executor.ml: Array Dsim Executor Float Linalg List Network Query Queue Sop Tuple
