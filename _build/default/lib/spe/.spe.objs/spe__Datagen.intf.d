lib/spe/datagen.mli: Random Tuple Workload
