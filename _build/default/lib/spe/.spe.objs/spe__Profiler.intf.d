lib/spe/profiler.mli: Executor Network Query Tuple
