lib/spe/value.ml: Float Format Printf String
