lib/spe/network.mli: Query Sop
