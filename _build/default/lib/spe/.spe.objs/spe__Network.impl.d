lib/spe/network.ml: Array List Printf Query Sop
