lib/spe/executor.ml: Array Float Hashtbl List Network Option Printf Query Queue Sop Tuple Value
