lib/spe/tuple.mli: Format Value
