lib/spe/sop.ml: Option Tuple
