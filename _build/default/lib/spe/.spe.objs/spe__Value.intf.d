lib/spe/value.mli: Format
