lib/spe/sop.mli: Tuple
