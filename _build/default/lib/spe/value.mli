(** Runtime values carried by stream tuples.

    The engine is dynamically typed (like Aurora/Borealis tuples seen
    from the scheduler): fields hold integers, floats or strings, and
    operators that need a specific type coerce or fail loudly. *)

type t =
  | Int of int
  | Float of float
  | Str of string

val to_float : t -> float
(** Numeric view; [Int] widens, [Str] raises [Invalid_argument]. *)

val to_int : t -> int
(** [Float] truncates, [Str] raises [Invalid_argument]. *)

val to_string : t -> string
(** Printable form (strings unquoted). *)

val equal : t -> t -> bool
(** Structural, with no numeric coercion ([Int 1 <> Float 1.]). *)

val compare : t -> t -> int
(** Total order: by numeric value within numeric types, [Int]/[Float]
    compared as floats; strings after numbers. *)

val pp : Format.formatter -> t -> unit
