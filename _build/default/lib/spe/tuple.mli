(** Stream tuples: a timestamp plus named fields.

    Field sets are small (network/market records), so fields are stored
    as a sorted association array — cheap to build, cheap to probe, and
    order-independent equality for free. *)

type t = private {
  ts : float;  (** Event timestamp, seconds. *)
  fields : (string * Value.t) array;  (** Sorted by field name. *)
}

val make : ts:float -> (string * Value.t) list -> t
(** Duplicated field names raise [Invalid_argument]. *)

val ts : t -> float

val find : t -> string -> Value.t
(** @raise Not_found if the field is absent. *)

val find_opt : t -> string -> Value.t option

val mem : t -> string -> bool

val number : t -> string -> float
(** [find] followed by {!Value.to_float}. *)

val set : t -> string -> Value.t -> t
(** Functional update (adds or replaces). *)

val remove : t -> string -> t

val with_ts : t -> float -> t

val project : t -> string list -> t
(** Keep only the listed fields (missing fields are ignored). *)

val merge : prefix_left:string -> prefix_right:string -> t -> t -> t
(** Join output: all fields of both tuples with the given name
    prefixes; the timestamp is the later of the two. *)

val names : t -> string list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
