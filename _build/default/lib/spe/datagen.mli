(** Synthetic tuple streams for driving the engine: packet records and
    trade records with timestamps drawn from a rate {!Workload.Trace}
    (Poisson arrivals) or evenly spaced. *)

val packets :
  rng:Random.State.t -> trace:Workload.Trace.t -> ?hosts:int -> unit ->
  Tuple.t list
(** Network packet records: fields [src]/[dst] (host names out of
    [hosts], default 16), [bytes] (int, 40-1500, heavy on small),
    [proto] ("tcp"/"udp"/"icmp"). *)

val trades :
  rng:Random.State.t -> trace:Workload.Trace.t -> ?symbols:string list ->
  unit -> Tuple.t list
(** Market trade records: fields [symbol], [price] (random walk per
    symbol), [qty] (int).  Default symbols: six well-known tickers. *)

val ticks : rate:float -> duration:float -> (float -> Tuple.t) -> Tuple.t list
(** Deterministic evenly-spaced stream: [ticks ~rate ~duration f] calls
    [f] at each timestamp. *)
