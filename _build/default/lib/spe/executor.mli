(** A push-based interpreter for semantic operator networks.

    Input tuples are merged into one event-time-ordered stream and
    pushed depth-first through the network at their timestamps.
    Tumbling windows flush when a tuple of a later window arrives (and
    once more at end of stream); joins keep real sliding buffers with
    the [|ts_l - ts_r| <= window/2] matching convention shared with the
    load model and the simulator.

    The executor is single-process and logical (no queueing delays) —
    its job is {e semantics and measurement}: exact per-operator
    input/output counts (selectivities) and join candidate-pair counts,
    which the {!Profiler} turns into a cost model for placement. *)

type op_run_stat = {
  consumed : int array;  (** Tuples consumed, per input arc. *)
  mutable emitted : int;  (** Tuples produced. *)
  mutable pairs : int;  (** Joins: opposite-buffer tuples examined. *)
}

type result = {
  outputs : (int * Tuple.t) list;
      (** (sink operator, tuple), in emission order. *)
  stats : op_run_stat array;
  recorded : (int * Tuple.t) list array option;
      (** With [~record:true]: each operator's input log
          [(input index, tuple)] in arrival order, for replay. *)
}

val run : ?record:bool -> Network.t -> inputs:Tuple.t list array -> result
(** [inputs] holds one timestamp-nondecreasing tuple list per system
    input stream.  @raise Invalid_argument on arity mismatch or when a
    join key or aggregate field is missing from a tuple. *)

(** {2 Replay hooks}

    Single-operator execution for the {!Profiler}'s timing loops: fresh
    state and counters plus the raw processing step, without a network
    around them. *)

type state

val replay_state : Sop.t -> state

val replay_stat : Sop.t -> op_run_stat

val replay_process :
  Sop.t -> state -> op_run_stat -> int -> Tuple.t -> Tuple.t list
