(** Semantic stream operators — the executable counterparts of the cost
    model's operator kinds.  Where {!Query.Op} describes {e how much} an
    operator costs, an {!Sop.t} describes {e what it computes}; the
    {!Profiler} bridges the two by measuring a running network. *)

type aggregate_fn =
  | Count
  | Sum of string
  | Avg of string
  | Max of string
  | Min of string

type t =
  | Filter of {
      name : string;
      predicate : Tuple.t -> bool;
    }
  | Map of {
      name : string;
      transform : Tuple.t -> Tuple.t;
    }
  | Project of {
      name : string;
      keep : string list;
    }
  | Union of {
      name : string;
      arity : int;
    }
  | Aggregate of {
      name : string;
      window : float;
          (** Event-time window length, seconds; a window ending at
              boundary [b] covers tuples with [b - window <= ts < b]. *)
      slide : float;
          (** Emission period: boundaries sit at multiples of [slide].
              [slide = window] is a tumbling window; [slide < window]
              overlapping sliding windows; [slide > window] sampled
              (gapped) windows. *)
      group_by : string option;
          (** Optional grouping field; [None] = one group. *)
      compute : (string * aggregate_fn) list;
          (** Output field name, aggregate.  Each boundary emits one
              tuple per group seen in its window, timestamped at the
              boundary, carrying the group key (field ["group"]) and
              the computed aggregates. *)
    }
  | Equi_join of {
      name : string;
      window : float;
          (** Tuples join when their timestamps differ by at most
              [window / 2] — the same convention as the simulator and
              the §6.2 load model, making the candidate-pair rate
              [window * r_left * r_right]. *)
      left_key : string;
      right_key : string;
    }
  | Distinct of {
      name : string;
      window : float;
          (** Suppression horizon: after a tuple with some key value is
              emitted, further tuples with the same key are dropped for
              [window] seconds (alert de-duplication). *)
      key : string;
    }

val name : t -> string

val arity : t -> int

val filter : ?name:string -> (Tuple.t -> bool) -> t

val map : ?name:string -> (Tuple.t -> Tuple.t) -> t

val project : ?name:string -> string list -> t

val union : ?name:string -> arity:int -> unit -> t

val aggregate :
  ?name:string ->
  window:float ->
  ?slide:float ->
  ?group_by:string ->
  (string * aggregate_fn) list ->
  t
(** [slide] defaults to [window] (tumbling). *)

val equi_join :
  ?name:string -> window:float -> left_key:string -> right_key:string -> unit -> t

val distinct : ?name:string -> window:float -> key:string -> unit -> t
