module Graph = Query.Graph

type t = {
  n_inputs : int;
  ops : Sop.t array;
  inputs_of : Graph.source array array;
}

let skeleton_op ?(cost = 1e-4) sop =
  match sop with
  | Sop.Filter _ | Sop.Map _ | Sop.Project _ ->
    Query.Op.filter ~name:(Sop.name sop) ~cost ~sel:1. ()
  | Sop.Union { arity; _ } ->
    Query.Op.union ~name:(Sop.name sop) ~cost ~n_inputs:arity ()
  | Sop.Aggregate _ ->
    Query.Op.aggregate ~name:(Sop.name sop) ~cost ~sel:1. ()
  | Sop.Equi_join { window; _ } ->
    Query.Op.join ~name:(Sop.name sop) ~window ~cost_per_pair:cost ~sel:1. ()
  | Sop.Distinct _ -> Query.Op.filter ~name:(Sop.name sop) ~cost ~sel:1. ()

let skeleton ?costs t =
  let cost j = match costs with Some f -> f j | None -> 1e-4 in
  Graph.create ~n_inputs:t.n_inputs
    ~ops:
      (List.init (Array.length t.ops) (fun j ->
           ( skeleton_op ~cost:(cost j) t.ops.(j),
             Array.to_list t.inputs_of.(j) )))
    ()

let create ~n_inputs ~ops () =
  let t =
    {
      n_inputs;
      ops = Array.of_list (List.map fst ops);
      inputs_of =
        Array.of_list (List.map (fun (_, srcs) -> Array.of_list srcs) ops);
    }
  in
  Array.iteri
    (fun j sop ->
      if Array.length t.inputs_of.(j) <> Sop.arity sop then
        invalid_arg
          (Printf.sprintf "Network.create: op %d (%s) expects %d inputs, got %d"
             j (Sop.name sop) (Sop.arity sop)
             (Array.length t.inputs_of.(j))))
    t.ops;
  (* Range and acyclicity checks via the skeleton graph. *)
  ignore (skeleton t);
  t

let n_ops t = Array.length t.ops

let n_inputs t = t.n_inputs

let op t j = t.ops.(j)

let sources t j = Array.to_list t.inputs_of.(j)

let consumers t src =
  let acc = ref [] in
  for j = n_ops t - 1 downto 0 do
    Array.iteri
      (fun idx s -> if s = src then acc := (j, idx) :: !acc)
      t.inputs_of.(j)
  done;
  !acc

let sinks t =
  let feeds = Array.make (n_ops t) false in
  Array.iter
    (Array.iter (function
      | Graph.Op_output j -> feeds.(j) <- true
      | Graph.Sys_input _ -> ()))
    t.inputs_of;
  let acc = ref [] in
  for j = n_ops t - 1 downto 0 do
    if not feeds.(j) then acc := j :: !acc
  done;
  !acc

let topo_order t = Graph.topo_order (skeleton t)
