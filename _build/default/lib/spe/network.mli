(** Wiring of semantic operators into an acyclic network, mirroring
    {!Query.Graph}'s structure (and reusing its [source] type): operator
    [j]'s inputs are system input streams or other operators' outputs;
    operators with no consumers are sinks delivering to applications. *)

type t = private {
  n_inputs : int;
  ops : Sop.t array;
  inputs_of : Query.Graph.source array array;
}

val create :
  n_inputs:int -> ops:(Sop.t * Query.Graph.source list) list -> unit -> t
(** Validates arity, reference ranges and acyclicity (by building a
    skeleton {!Query.Graph}). *)

val n_ops : t -> int

val n_inputs : t -> int

val op : t -> int -> Sop.t

val sources : t -> int -> Query.Graph.source list

val consumers : t -> Query.Graph.source -> (int * int) list
(** [(operator, input index)] pairs reading a stream. *)

val sinks : t -> int list

val topo_order : t -> int list

val skeleton : ?costs:(int -> float) -> t -> Query.Graph.t
(** A cost-model graph with the same wiring: each semantic operator
    becomes a placeholder {!Query.Op} of cost [costs j] (default 1e-4)
    and neutral selectivity; joins keep their windows.  Used for
    validation and as the starting point before profiling. *)
