type aggregate_fn =
  | Count
  | Sum of string
  | Avg of string
  | Max of string
  | Min of string

type t =
  | Filter of {
      name : string;
      predicate : Tuple.t -> bool;
    }
  | Map of {
      name : string;
      transform : Tuple.t -> Tuple.t;
    }
  | Project of {
      name : string;
      keep : string list;
    }
  | Union of {
      name : string;
      arity : int;
    }
  | Aggregate of {
      name : string;
      window : float;
      slide : float;
      group_by : string option;
      compute : (string * aggregate_fn) list;
    }
  | Equi_join of {
      name : string;
      window : float;
      left_key : string;
      right_key : string;
    }
  | Distinct of {
      name : string;
      window : float;
      key : string;
    }

let name = function
  | Filter { name; _ }
  | Map { name; _ }
  | Project { name; _ }
  | Union { name; _ }
  | Aggregate { name; _ }
  | Equi_join { name; _ }
  | Distinct { name; _ } -> name

let arity = function
  | Filter _ | Map _ | Project _ | Aggregate _ | Distinct _ -> 1
  | Union { arity; _ } -> arity
  | Equi_join _ -> 2

let filter ?(name = "filter") predicate = Filter { name; predicate }

let map ?(name = "map") transform = Map { name; transform }

let project ?(name = "project") keep = Project { name; keep }

let union ?(name = "union") ~arity () =
  if arity < 1 then invalid_arg "Sop.union: arity < 1";
  Union { name; arity }

let aggregate ?(name = "aggregate") ~window ?slide ?group_by compute =
  if window <= 0. then invalid_arg "Sop.aggregate: window <= 0";
  let slide = Option.value slide ~default:window in
  if slide <= 0. then invalid_arg "Sop.aggregate: slide <= 0";
  if compute = [] then invalid_arg "Sop.aggregate: nothing to compute";
  Aggregate { name; window; slide; group_by; compute }

let distinct ?(name = "distinct") ~window ~key () =
  if window <= 0. then invalid_arg "Sop.distinct: window <= 0";
  Distinct { name; window; key }

let equi_join ?(name = "join") ~window ~left_key ~right_key () =
  if window <= 0. then invalid_arg "Sop.equi_join: window <= 0";
  Equi_join { name; window; left_key; right_key }
