type t =
  | Int of int
  | Float of float
  | Str of string

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Str s -> invalid_arg (Printf.sprintf "Value.to_float: string %S" s)

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Str s -> invalid_arg (Printf.sprintf "Value.to_int: string %S" s)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | (Int _ | Float _ | Str _), _ -> false

let compare a b =
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | Str _, (Int _ | Float _) -> 1
  | (Int _ | Float _), Str _ -> -1
  | (Int _ | Float _), (Int _ | Float _) ->
    Float.compare (to_float a) (to_float b)

let pp fmt v = Format.pp_print_string fmt (to_string v)
