(* Tests of the feasible-set machinery: Halton sequences, simplex
   sampling, geometry, exact 2-D areas and the QMC volume estimator. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Halton = Feasible.Halton
module Simplex = Feasible.Simplex
module Geometry = Feasible.Geometry
module Polygon = Feasible.Polygon
module Volume = Feasible.Volume

let approx eps = Alcotest.float eps

let test_radical_inverse () =
  Alcotest.check (approx 1e-12) "1 base 2" 0.5 (Halton.radical_inverse ~base:2 1);
  Alcotest.check (approx 1e-12) "2 base 2" 0.25 (Halton.radical_inverse ~base:2 2);
  Alcotest.check (approx 1e-12) "3 base 2" 0.75 (Halton.radical_inverse ~base:2 3);
  Alcotest.check (approx 1e-12) "1 base 3" (1. /. 3.)
    (Halton.radical_inverse ~base:3 1);
  Alcotest.check (approx 1e-12) "5 base 3" (7. /. 9.)
    (Halton.radical_inverse ~base:3 5)

let test_halton_range_and_spread () =
  let pts = Halton.sequence ~dim:3 ~n:512 in
  Alcotest.(check bool) "in unit cube" true
    (Array.for_all (Array.for_all (fun x -> x >= 0. && x < 1.)) pts);
  (* Low discrepancy: each axis' mean is close to 0.5 even for few
     points. *)
  for k = 0 to 2 do
    let mean =
      Array.fold_left (fun acc p -> acc +. p.(k)) 0. pts /. 512.
    in
    Alcotest.check (approx 0.02) (Printf.sprintf "axis %d mean" k) 0.5 mean
  done

let test_simplex_map () =
  let x = Simplex.of_cube [| 0.7; 0.2; 0.5 |] in
  (* sorted: 0.2 0.5 0.7 -> gaps 0.2, 0.3, 0.2 *)
  Alcotest.(check (list (float 1e-9))) "gaps" [ 0.2; 0.3; 0.2 ] (Array.to_list x);
  Alcotest.(check bool) "inside simplex" true
    (Array.for_all (fun v -> v >= 0.) x && Array.fold_left ( +. ) 0. x <= 1.)

let test_simplex_volume () =
  Alcotest.check (approx 1e-12) "d=1" 1. (Simplex.volume 1);
  Alcotest.check (approx 1e-12) "d=2" 0.5 (Simplex.volume 2);
  Alcotest.check (approx 1e-12) "d=5" (1. /. 120.) (Simplex.volume 5)

let test_ideal_volume () =
  (* Example 2: l = (10, 11), C_T = 2 -> area = 2^2 / (2 * 110). *)
  let l = Vec.of_list [ 10.; 11. ] in
  Alcotest.check (approx 1e-12) "example 2 ideal" (4. /. 220.)
    (Simplex.ideal_volume ~l ~c_total:2. ());
  (* With a lower bound eating half the budget in each axis the volume
     shrinks by (1 - l.B/C_T)^d. *)
  let lower = Vec.of_list [ 0.05; 0.2 /. 11. ] in
  let slack = 2. -. Vec.dot l lower in
  Alcotest.check (approx 1e-12) "with lower bound"
    (slack ** 2. /. (2. *. 110.))
    (Simplex.ideal_volume ~l ~c_total:2. ~lower ());
  Alcotest.check (approx 1e-12) "infeasible lower bound" 0.
    (Simplex.ideal_volume ~l ~c_total:2. ~lower:(Vec.of_list [ 1.; 1. ]) ())

let test_geometry () =
  let w = Vec.of_list [ 3.; 4. ] in
  Alcotest.check (approx 1e-12) "axis distance" (1. /. 3.)
    (Geometry.axis_distance w 0);
  Alcotest.check (approx 1e-12) "plane distance" 0.2 (Geometry.plane_distance w);
  Alcotest.check (approx 1e-12) "plane distance from point"
    ((1. -. 1.1) /. 5.)
    (Geometry.plane_distance_from ~point:(Vec.of_list [ 0.1; 0.2 ]) w);
  Alcotest.(check bool) "below ideal" false (Geometry.below_ideal w);
  Alcotest.(check bool) "below ideal ok" true
    (Geometry.below_ideal (Vec.of_list [ 0.9; 1.0 ]));
  Alcotest.check (approx 1e-12) "ideal distance d=4" 0.5
    (Geometry.ideal_plane_distance 4);
  Alcotest.check (approx 1e-9) "ball volume d=2" (Float.pi *. 4.)
    (Geometry.hypersphere_volume ~dim:2 ~radius:2.);
  Alcotest.check (approx 1e-9) "ball volume d=3"
    (4. /. 3. *. Float.pi)
    (Geometry.hypersphere_volume ~dim:3 ~radius:1.)

let test_polygon_clip_area () =
  let square = [ (0., 0.); (2., 0.); (2., 2.); (0., 2.) ] in
  Alcotest.check (approx 1e-12) "square area" 4. (Polygon.area square);
  let half = Polygon.clip square ~a:1. ~b:0. ~c:1. in
  Alcotest.check (approx 1e-12) "clipped area" 2. (Polygon.area half);
  let triangle = Polygon.clip square ~a:1. ~b:1. ~c:2. in
  Alcotest.check (approx 1e-12) "triangle area" 2. (Polygon.area triangle)

(* Exact areas of the Example 2 plans with C1 = C2 = 1: plan (a) has
   L^n = [(4,2);(6,9)]. *)
let example2_ln assignment =
  let lo =
    Mat.of_rows
      [
        Vec.of_list [ 4.; 0. ]; Vec.of_list [ 6.; 0. ];
        Vec.of_list [ 0.; 9. ]; Vec.of_list [ 0.; 2. ];
      ]
  in
  let ln = Mat.zeros 2 2 in
  Array.iteri
    (fun j node -> Vec.add_inplace (Mat.row lo j) (Mat.row ln node))
    assignment;
  ln

let test_example2_exact_areas () =
  let caps = Vec.of_list [ 1.; 1. ] in
  let area assignment = Polygon.feasible_area ~ln:(example2_ln assignment) ~caps () in
  (* Plan (a) {o1,o4}|{o2,o3}: constraints 4x+2y<=1 and 6x+9y<=1.
     Plan (c) {o1,o2}|{o3,o4}: 10x<=1 and 11y<=1 -> rectangle. *)
  Alcotest.check (approx 1e-9) "plan (c) rectangle" (1. /. 110.)
    (area [| 0; 0; 1; 1 |]);
  let a = area [| 0; 1; 1; 0 |] in
  Alcotest.(check bool) "plan (a) positive" true (a > 0.);
  (* No plan can beat the ideal area C_T^2/(2 l1 l2) = 4/220. *)
  List.iter
    (fun (_, assignment) ->
      Alcotest.(check bool) "below ideal area" true
        (area assignment <= (4. /. 220.) +. 1e-9))
    Query.Builder.example2_plans

let test_qmc_matches_exact_2d () =
  let caps = Vec.of_list [ 1.; 1. ] in
  let l = Vec.of_list [ 10.; 11. ] in
  List.iter
    (fun (name, assignment) ->
      let ln = example2_ln assignment in
      let exact = Polygon.feasible_area ~ln ~caps () in
      let est = Volume.ratio_qmc ~ln ~caps ~l ~samples:16384 () in
      Alcotest.check (approx 2e-3) (name ^ " volume") exact est.Volume.volume)
    Query.Builder.example2_plans

let test_mc_matches_qmc () =
  let caps = Vec.of_list [ 1.; 1. ] in
  let ln = example2_ln [| 0; 1; 1; 0 |] in
  let rng = Random.State.make [| 4 |] in
  let qmc = Volume.ratio_qmc ~ln ~caps ~samples:16384 () in
  let mc = Volume.ratio_mc ~rng ~ln ~caps ~samples:16384 () in
  Alcotest.check (approx 0.02) "MC agrees with QMC" qmc.Volume.ratio mc.Volume.ratio

let test_is_feasible () =
  let ln = example2_ln [| 0; 1; 1; 0 |] in
  let caps = Vec.of_list [ 1.; 1. ] in
  Alcotest.(check bool) "origin feasible" true
    (Volume.is_feasible ~ln ~caps (Vec.zeros 2));
  Alcotest.(check bool) "far point infeasible" false
    (Volume.is_feasible ~ln ~caps (Vec.of_list [ 1.; 1. ]))

let test_std_error () =
  let ln = example2_ln [| 0; 1; 0; 1 |] in
  let caps = Vec.of_list [ 1.; 1. ] in
  let est = Volume.ratio_qmc ~ln ~caps ~samples:4096 () in
  let expected =
    sqrt (est.Volume.ratio *. (1. -. est.Volume.ratio) /. 4096.)
  in
  Alcotest.check (approx 1e-12) "binomial formula" expected est.Volume.std_error;
  Alcotest.(check bool) "small for large samples" true (est.Volume.std_error < 0.01)

let test_max_scale () =
  let ln = example2_ln [| 0; 0; 1; 1 |] in
  (* node0: 10 r1 <= 1; node1: 11 r2 <= 1. *)
  let caps = Vec.of_list [ 1.; 1. ] in
  Alcotest.check (approx 1e-12) "axis 1 boundary" 0.1
    (Volume.max_scale ~ln ~caps ~direction:(Vec.of_list [ 1.; 0. ]));
  Alcotest.check (approx 1e-12) "diagonal boundary" (1. /. 11.)
    (Volume.max_scale ~ln ~caps ~direction:(Vec.of_list [ 1.; 1. ]));
  (* The boundary point itself is feasible, just beyond it is not. *)
  let t = Volume.max_scale ~ln ~caps ~direction:(Vec.of_list [ 2.; 3. ]) in
  Alcotest.(check bool) "boundary feasible" true
    (Volume.is_feasible ~ln ~caps (Vec.of_list [ 2. *. t; 3. *. t ]));
  Alcotest.(check bool) "beyond infeasible" false
    (Volume.is_feasible ~ln ~caps (Vec.of_list [ 2.02 *. t; 3.03 *. t ]));
  Alcotest.check_raises "zero direction rejected"
    (Invalid_argument "Volume.max_scale: direction must be nonnegative, nonzero")
    (fun () -> ignore (Volume.max_scale ~ln ~caps ~direction:(Vec.zeros 2)))

let test_ratio_of_points () =
  let ln = example2_ln [| 0; 0; 1; 1 |] in
  let caps = Vec.of_list [ 1.; 1. ] in
  let points = [| Vec.zeros 2; Vec.of_list [ 0.05; 0.05 ]; Vec.of_list [ 0.2; 0.2 ] |] in
  Alcotest.check (approx 1e-9) "2 of 3 feasible" (2. /. 3.)
    (Volume.ratio_of_points ~ln ~caps ~points)

let prop_simplex_points_inside =
  QCheck.Test.make ~name:"cube-to-simplex stays inside" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* d = 1 -- 8 in
         array_size (return d) (float_bound_inclusive 1.)))
    (fun u ->
      let x = Simplex.of_cube u in
      Array.for_all (fun v -> v >= -1e-12) x
      && Array.fold_left ( +. ) 0. x <= 1. +. 1e-12)

let prop_lower_bound_shrinks_volume =
  QCheck.Test.make ~name:"lower bound never enlarges the ideal volume" ~count:100
    (QCheck.make
       QCheck.Gen.(
         let* d = 1 -- 5 in
         let* l = array_size (return d) (float_range 0.5 10.) in
         let* b = array_size (return d) (float_bound_inclusive 0.2) in
         return (l, b)))
    (fun (l, b) ->
      let base = Simplex.ideal_volume ~l ~c_total:5. () in
      let bounded = Simplex.ideal_volume ~l ~c_total:5. ~lower:b () in
      bounded <= base +. 1e-12)

let suite =
  [
    Alcotest.test_case "radical inverse" `Quick test_radical_inverse;
    Alcotest.test_case "halton spread" `Quick test_halton_range_and_spread;
    Alcotest.test_case "simplex map" `Quick test_simplex_map;
    Alcotest.test_case "simplex volume" `Quick test_simplex_volume;
    Alcotest.test_case "ideal volume" `Quick test_ideal_volume;
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "polygon clip/area" `Quick test_polygon_clip_area;
    Alcotest.test_case "example 2 exact areas" `Quick test_example2_exact_areas;
    Alcotest.test_case "QMC matches exact (d=2)" `Quick test_qmc_matches_exact_2d;
    Alcotest.test_case "MC matches QMC" `Quick test_mc_matches_qmc;
    Alcotest.test_case "is_feasible" `Quick test_is_feasible;
    Alcotest.test_case "std error" `Quick test_std_error;
    Alcotest.test_case "max scale (ray boundary)" `Quick test_max_scale;
    Alcotest.test_case "ratio of points" `Quick test_ratio_of_points;
    QCheck_alcotest.to_alcotest prop_simplex_points_inside;
    QCheck_alcotest.to_alcotest prop_lower_bound_shrinks_volume;
  ]
