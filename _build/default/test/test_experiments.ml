(* Tests of the experiment harness plumbing: report rendering, CSV
   export, the experiment registry and the evaluation protocol. *)

let test_table_rendering () =
  let buffer = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.Report.table fmt ~headers:[ "a"; "bb" ]
    ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buffer in
  Alcotest.(check bool) "has header" true
    (String.length text > 0
    && List.exists
         (fun line -> line = "| a   | bb |")
         (String.split_on_char '\n' text));
  Alcotest.(check bool) "aligned cell" true
    (List.exists (fun line -> line = "| 333 | 4  |") (String.split_on_char '\n' text))

let test_table_arity_check () =
  let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Report.table: row arity differs from headers") (fun () ->
      Experiments.Report.table fmt ~headers:[ "a"; "b" ] ~rows:[ [ "only" ] ])

let test_csv_export () =
  let dir = Filename.temp_file "rodcsv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir;
      Experiments.Report.set_csv_dir None)
    (fun () ->
      Experiments.Report.set_csv_dir (Some dir);
      let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
      Experiments.Report.section fmt "My Test! Section";
      Experiments.Report.table fmt ~headers:[ "x"; "y" ]
        ~rows:[ [ "1"; "has,comma" ]; [ "2"; "has\"quote" ] ];
      let files = Sys.readdir dir in
      Alcotest.(check int) "one csv written" 1 (Array.length files);
      Alcotest.(check string) "slugged name" "my-test--section_1.csv" files.(0);
      let ic = open_in (Filename.concat dir files.(0)) in
      let lines = List.init 3 (fun _ -> input_line ic) in
      close_in ic;
      Alcotest.(check (list string)) "csv content"
        [ "x,y"; "1,\"has,comma\""; "2,\"has\"\"quote\"" ]
        lines)

let test_cells () =
  Alcotest.(check string) "fcell integer" "42" (Experiments.Report.fcell 42.);
  Alcotest.(check string) "fcell fraction" "0.1235"
    (Experiments.Report.fcell 0.123456);
  Alcotest.(check string) "pct" "12.3%" (Experiments.Report.pct 0.1234);
  Alcotest.(check int) "bar clipped" 30
    (String.length (Experiments.Report.bar 5.));
  Alcotest.(check int) "bar empty" 0 (String.length (Experiments.Report.bar (-1.)))

let test_registry () =
  let ids = Experiments.Registry.ids () in
  Alcotest.(check bool) "at least 15 experiments" true (List.length ids >= 15);
  Alcotest.(check int) "ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "find is case-insensitive" true
    (Experiments.Registry.find "FIG14" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "nope" = None);
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some e -> Alcotest.(check string) "id round-trip" id e.Experiments.Registry.id
      | None -> Alcotest.failf "id %s not found" id)
    ids

let test_placers_protocol () =
  let rng = Random.State.make [| 3 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:3 ~ops_per_tree:6 in
  let problem =
    Rod.Problem.of_graph graph ~caps:(Rod.Problem.homogeneous_caps ~n:3 ~cap:1.)
  in
  List.iter
    (fun alg ->
      let assignment = Experiments.Placers.place ~rng ~graph ~problem alg in
      Alcotest.(check int)
        (Experiments.Placers.name alg ^ " assignment length")
        18 (Array.length assignment);
      let ratio =
        Experiments.Placers.mean_ratio ~runs:2 ~samples:512 ~rng ~graph ~problem
          alg
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.3f in [0,1]" (Experiments.Placers.name alg)
           ratio)
        true
        (ratio >= 0. && ratio <= 1.))
    Experiments.Placers.all

(* A cheap smoke run of every registered experiment would take minutes;
   instead run the two cheapest end to end to catch wiring breakage. *)
let test_cheap_experiments_run () =
  let fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some e -> e.Experiments.Registry.run ~quick:true fmt
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "fig2"; "fig5" ]

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "cells" `Quick test_cells;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "placers protocol" `Quick test_placers_protocol;
    Alcotest.test_case "cheap experiments run" `Quick test_cheap_experiments_run;
  ]
