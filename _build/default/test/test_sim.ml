(* Tests of the discrete-event simulator: event queue, single-operator
   calibration, selectivity, joins, overload behaviour and the
   feasibility probe. *)

module Vec = Linalg.Vec
module Trace = Workload.Trace
module Generators = Workload.Generators
module Engine = Dsim.Engine
module Probe = Dsim.Probe
module Sim_metrics = Dsim.Sim_metrics
module Event_queue = Dsim.Event_queue

let approx eps = Alcotest.float eps

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  Event_queue.push q ~time:1. "a2";
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, x) ->
      order := x :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time then insertion order"
    [ "a"; "a2"; "b"; "c" ] (List.rev !order);
  Alcotest.(check bool) "empty after drain" true (Event_queue.is_empty q)

let test_event_queue_many () =
  let q = Event_queue.create () in
  let rng = Random.State.make [| 8 |] in
  for i = 0 to 999 do
    Event_queue.push q ~time:(Random.State.float rng 100.) i
  done;
  let last = ref neg_infinity in
  let sorted = ref true in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, _) ->
      if t < !last then sorted := false;
      last := t;
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "nondecreasing" true !sorted;
  Alcotest.(check int) "all popped" 1000 !count

(* One operator of cost c at rate r: utilization = c*r, latency = c at
   low load (deterministic arrivals never queue). *)
let single_op_graph cost sel =
  Query.Graph.create ~n_inputs:1
    ~ops:[ (Query.Op.filter ~cost ~sel (), [ Query.Graph.Sys_input 0 ]) ]
    ()

let run_constant ?(seed = 1) ?(cap = 1.) ~graph ~assignment ~rates ~duration () =
  let caps = Vec.create (1 + Array.fold_left max 0 assignment) cap in
  let arrivals =
    Array.map
      (fun rate ->
        Generators.deterministic_arrivals
          ~trace:(Trace.create ~dt:duration [| rate |]))
      rates
  in
  Engine.run ~graph ~assignment ~caps ~arrivals
    ~config:{ Engine.default_config with seed; warmup = 0. }
    ~until:duration ()

let test_single_op_utilization () =
  let graph = single_op_graph 0.002 1. in
  let m =
    run_constant ~graph ~assignment:[| 0 |] ~rates:[| 100. |] ~duration:50. ()
  in
  Alcotest.check (approx 0.01) "utilization = cost*rate" 0.2
    (Sim_metrics.max_utilization m);
  Alcotest.(check int) "arrivals" 5000 m.Sim_metrics.arrivals;
  Alcotest.(check int) "all processed" 5000 m.Sim_metrics.items_processed;
  Alcotest.(check int) "sel 1 passes everything" 5000 m.Sim_metrics.outputs;
  Alcotest.check (approx 1e-6) "latency = service time" 0.002
    (Sim_metrics.mean_latency m);
  Alcotest.(check int) "no backlog" 0 m.Sim_metrics.backlog

let test_capacity_scales_service () =
  let graph = single_op_graph 0.002 1. in
  let m =
    run_constant ~cap:2. ~graph ~assignment:[| 0 |] ~rates:[| 100. |]
      ~duration:50. ()
  in
  Alcotest.check (approx 0.01) "double capacity halves utilization" 0.1
    (Sim_metrics.max_utilization m);
  Alcotest.check (approx 1e-6) "and halves latency" 0.001
    (Sim_metrics.mean_latency m)

let test_selectivity_thins_output () =
  let graph = single_op_graph 0.0001 0.3 in
  let m =
    run_constant ~graph ~assignment:[| 0 |] ~rates:[| 200. |] ~duration:50. ()
  in
  let expected = 0.3 *. float_of_int m.Sim_metrics.arrivals in
  Alcotest.(check bool)
    (Printf.sprintf "outputs %d near %.0f" m.Sim_metrics.outputs expected)
    true
    (abs_float (float_of_int m.Sim_metrics.outputs -. expected)
    < 0.1 *. expected)

let test_overload_builds_backlog () =
  let graph = single_op_graph 0.02 1. in
  (* Rate 100 x cost 0.02 = demand 2.0 > capacity 1. *)
  let m =
    run_constant ~graph ~assignment:[| 0 |] ~rates:[| 100. |] ~duration:20. ()
  in
  Alcotest.(check bool) "utilization saturates" true
    (Sim_metrics.max_utilization m > 0.99);
  (* Half the work cannot be served: ~1000 tuples remain. *)
  Alcotest.(check bool)
    (Printf.sprintf "backlog %d large" m.Sim_metrics.backlog)
    true
    (m.Sim_metrics.backlog > 800)

let test_chain_latency_accumulates () =
  let graph = Query.Builder.chain ~n_ops:3 ~cost:0.001 ~sel:1. () in
  let m =
    run_constant ~graph ~assignment:[| 0; 0; 0 |] ~rates:[| 50. |] ~duration:20. ()
  in
  Alcotest.check (approx 2e-4) "three stages of 1 ms" 0.003
    (Sim_metrics.mean_latency m)

let test_network_delay_added () =
  let graph = Query.Builder.chain ~n_ops:2 ~cost:0.001 ~sel:1. () in
  let same = run_constant ~graph ~assignment:[| 0; 0 |] ~rates:[| 10. |] ~duration:20. () in
  let split = run_constant ~graph ~assignment:[| 0; 1 |] ~rates:[| 10. |] ~duration:20. () in
  let diff = Sim_metrics.mean_latency split -. Sim_metrics.mean_latency same in
  Alcotest.check (approx 1e-4) "one network hop"
    Engine.default_config.Engine.net_delay diff

(* Join calibration: two streams at rates ru, rv with window w.  Each
   arriving u-tuple scans ~rv*w candidates, so the join's CPU demand is
   c * w * ru * rv and its output rate s * w * ru * rv (Example 3). *)
let test_join_load_and_output () =
  let w = 0.5 and c = 1e-4 and s = 0.2 in
  let ru = 40. and rv = 30. in
  let graph =
    Query.Graph.create ~n_inputs:2
      ~ops:
        [
          ( Query.Op.join ~window:w ~cost_per_pair:c ~sel:s (),
            [ Query.Graph.Sys_input 0; Query.Graph.Sys_input 1 ] );
        ]
      ()
  in
  let m =
    run_constant ~graph ~assignment:[| 0 |] ~rates:[| ru; rv |] ~duration:50. ()
  in
  let expected_util = c *. w *. ru *. rv in
  Alcotest.(check bool)
    (Printf.sprintf "join utilization %.4f near %.4f"
       (Sim_metrics.max_utilization m) expected_util)
    true
    (abs_float (Sim_metrics.max_utilization m -. expected_util)
    < 0.15 *. expected_util);
  let expected_outputs = s *. w *. ru *. rv *. 50. in
  Alcotest.(check bool)
    (Printf.sprintf "join outputs %d near %.0f" m.Sim_metrics.outputs
       expected_outputs)
    true
    (abs_float (float_of_int m.Sim_metrics.outputs -. expected_outputs)
    < 0.15 *. expected_outputs)

let test_load_shedding_bounds_latency () =
  (* Demand 2x capacity: lossless queues blow up; a 20-item bound sheds
     roughly half the tuples and keeps latency bounded. *)
  let graph = single_op_graph 0.02 1. in
  let caps = Vec.of_list [ 1. ] in
  let arrivals =
    [|
      Generators.deterministic_arrivals
        ~trace:(Trace.create ~dt:20. [| 100. |]);
    |]
  in
  let run shed_above =
    Engine.run ~graph ~assignment:[| 0 |] ~caps ~arrivals
      ~config:{ Engine.default_config with shed_above } ~until:20. ()
  in
  let lossless = run None in
  let shedding = run (Some 20) in
  Alcotest.(check int) "lossless drops nothing" 0 lossless.Sim_metrics.dropped;
  Alcotest.(check bool)
    (Printf.sprintf "shed roughly half (%d of %d)" shedding.Sim_metrics.dropped
       shedding.Sim_metrics.arrivals)
    true
    (abs (shedding.Sim_metrics.dropped - 1000) < 150);
  Alcotest.(check bool) "shedding bounds the queue" true
    (shedding.Sim_metrics.backlog <= 21);
  Alcotest.(check bool)
    (Printf.sprintf "latency bounded (%.2fs vs %.2fs)"
       (Sim_metrics.p95_latency shedding)
       (Sim_metrics.p95_latency lossless))
    true
    (Sim_metrics.p95_latency shedding < 0.5
    && Sim_metrics.p95_latency lossless > 2.);
  (* Shedding keeps the node saturated: it drops load, not throughput. *)
  Alcotest.(check bool) "still saturated" true
    (Sim_metrics.max_utilization shedding > 0.99)

let test_heterogeneous_capacity_engine () =
  (* The same work on a half-speed node takes twice the wall time. *)
  let graph = single_op_graph 0.004 1. in
  let arrivals =
    [| Generators.deterministic_arrivals ~trace:(Trace.create ~dt:20. [| 50. |]) |]
  in
  let slow =
    Engine.run ~graph ~assignment:[| 0 |] ~caps:(Vec.of_list [ 0.5 ])
      ~arrivals ~until:20. ()
  in
  Alcotest.check (approx 0.01) "slow node utilization doubles" 0.4
    (Sim_metrics.max_utilization slow);
  Alcotest.check (approx 1e-6) "slow node latency doubles" 0.008
    (Sim_metrics.mean_latency slow)

let test_warmup_clips_stats () =
  let graph = single_op_graph 0.002 1. in
  let arrivals =
    [| Generators.deterministic_arrivals ~trace:(Trace.create ~dt:20. [| 100. |]) |]
  in
  let m =
    Engine.run ~graph ~assignment:[| 0 |] ~caps:(Vec.of_list [ 1. ]) ~arrivals
      ~config:{ Engine.default_config with warmup = 10. }
      ~until:20. ()
  in
  (* Only the second half is measured: ~1000 arrivals, same rates. *)
  Alcotest.(check bool)
    (Printf.sprintf "arrivals measured after warmup only (%d)"
       m.Sim_metrics.arrivals)
    true
    (abs (m.Sim_metrics.arrivals - 1000) <= 1);
  Alcotest.check (approx 0.01) "utilization unaffected by warmup" 0.2
    (Sim_metrics.max_utilization m)

let test_probe_agrees_with_analysis () =
  let graph = Query.Builder.example2 () in
  let problem =
    Rod.Problem.of_graph graph ~caps:(Rod.Problem.homogeneous_caps ~n:2 ~cap:1.)
  in
  (* Scale Example 2 so costs are per-second CPU fractions: divide
     everything by 1000 (cost 4 cycles -> 4 ms). *)
  ignore problem;
  let graph_ms =
    Query.Builder.example1 ~c1:4e-3 ~c2:6e-3 ~c3:9e-3 ~c4:4e-3 ~s1:1. ~s3:0.5
  in
  let assignment = [| 0; 1; 1; 0 |] in
  let caps = Vec.of_list [ 1.; 1. ] in
  (* Plan (a): node0 4e-3 r1 + 2e-3 r2 <= 1; node1 6e-3 r1 + 9e-3 r2 <= 1. *)
  let feasible_point = Vec.of_list [ 50.; 50. ] in
  let infeasible_point = Vec.of_list [ 160.; 30. ] in
  let v1 =
    Probe.probe_point ~duration:10. ~graph:graph_ms ~assignment ~caps
      ~rates:feasible_point ()
  in
  Alcotest.(check bool) "interior point simulates feasible" true v1.Probe.feasible;
  let v2 =
    Probe.probe_point ~duration:10. ~graph:graph_ms ~assignment ~caps
      ~rates:infeasible_point ()
  in
  Alcotest.(check bool) "exterior point simulates infeasible" false
    v2.Probe.feasible

let test_simulate_traces () =
  let graph = Query.Builder.chain ~n_ops:2 ~cost:0.001 ~sel:1. () in
  let trace = Trace.create ~dt:1. (Array.make 10 50.) in
  let rng = Random.State.make [| 6 |] in
  let m =
    Probe.simulate_traces ~rng ~graph ~assignment:[| 0; 1 |]
      ~caps:(Vec.of_list [ 1.; 1. ])
      ~traces:[| trace |] ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "roughly 500 arrivals (%d)" m.Sim_metrics.arrivals)
    true
    (abs (m.Sim_metrics.arrivals - 500) < 120);
  (* Each arrival is processed by both stages eventually; under light
     load outputs track arrivals closely (a few may be in flight). *)
  Alcotest.(check bool) "outputs close to arrivals" true
    (abs (m.Sim_metrics.outputs - m.Sim_metrics.arrivals) <= 5);
  Alcotest.(check bool) "two work items per arrival" true
    (abs (m.Sim_metrics.items_processed - (2 * m.Sim_metrics.arrivals)) <= 10)

let prop_conservation_single_op =
  QCheck.Test.make ~name:"tuple conservation (single op)" ~count:20
    (QCheck.make QCheck.Gen.(pair (10 -- 200) (1 -- 30)))
    (fun (rate, seed) ->
      let graph = single_op_graph 0.001 1. in
      let m =
        run_constant ~seed ~graph ~assignment:[| 0 |]
          ~rates:[| float_of_int rate |] ~duration:5. ()
      in
      m.Sim_metrics.arrivals
      = m.Sim_metrics.items_processed + m.Sim_metrics.backlog)

let suite =
  [
    Alcotest.test_case "event queue ordering" `Quick test_event_queue_ordering;
    Alcotest.test_case "event queue stress" `Quick test_event_queue_many;
    Alcotest.test_case "single-op utilization" `Quick test_single_op_utilization;
    Alcotest.test_case "capacity scales service" `Quick test_capacity_scales_service;
    Alcotest.test_case "selectivity thins output" `Quick test_selectivity_thins_output;
    Alcotest.test_case "overload builds backlog" `Quick test_overload_builds_backlog;
    Alcotest.test_case "chain latency accumulates" `Quick test_chain_latency_accumulates;
    Alcotest.test_case "network delay added" `Quick test_network_delay_added;
    Alcotest.test_case "join load and output" `Quick test_join_load_and_output;
    Alcotest.test_case "heterogeneous capacity" `Quick
      test_heterogeneous_capacity_engine;
    Alcotest.test_case "warmup clips stats" `Quick test_warmup_clips_stats;
    Alcotest.test_case "load shedding bounds latency" `Quick
      test_load_shedding_bounds_latency;
    Alcotest.test_case "probe agrees with analysis" `Slow test_probe_agrees_with_analysis;
    Alcotest.test_case "simulate traces" `Quick test_simulate_traces;
    QCheck_alcotest.to_alcotest prop_conservation_single_op;
  ]
