(* Round-trip and error-handling tests of the text serialization. *)

module Graph = Query.Graph
module Graph_io = Query.Graph_io
module Load_model = Query.Load_model

let graphs_equal a b =
  Graph.n_inputs a = Graph.n_inputs b
  && Graph.n_ops a = Graph.n_ops b
  && a.Graph.input_xfer_cost = b.Graph.input_xfer_cost
  && List.for_all
       (fun j ->
         let oa = Graph.op a j and ob = Graph.op b j in
         oa.Query.Op.name = ob.Query.Op.name
         && oa.Query.Op.kind = ob.Query.Op.kind
         && oa.Query.Op.out_xfer_cost = ob.Query.Op.out_xfer_cost
         && Graph.sources a j = Graph.sources b j)
       (List.init (Graph.n_ops a) (fun j -> j))

let check_roundtrip msg graph =
  let back = Graph_io.of_string (Graph_io.to_string graph) in
  Alcotest.(check bool) msg true (graphs_equal graph back)

let test_roundtrip_examples () =
  check_roundtrip "example2" (Query.Builder.example2 ());
  check_roundtrip "example3" (Query.Builder.example3 ());
  check_roundtrip "diamond" (Query.Builder.diamond ~cost:0.5);
  check_roundtrip "traffic" (Query.Builder.traffic_monitoring ~n_links:3);
  check_roundtrip "compliance" (Query.Builder.financial_compliance ~n_rules:4)

let test_roundtrip_preserves_load_model () =
  let graph = Query.Builder.example3 () in
  let back = Graph_io.of_string (Graph_io.to_string graph) in
  let lo g = Load_model.load_coefficients (Load_model.derive g) in
  Alcotest.(check bool) "identical load matrices" true
    (Linalg.Mat.equal (lo graph) (lo back))

let test_file_roundtrip () =
  let graph = Query.Builder.traffic_monitoring ~n_links:2 in
  let path = Filename.temp_file "rodgraph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save graph ~path;
      Alcotest.(check bool) "file round-trip" true
        (graphs_equal graph (Graph_io.load ~path)))

let test_comments_and_blank_lines () =
  let text =
    "# a comment\n\nrodgraph v1\n  inputs 1 xfer=0\n\n# ops\nop name=f \
     inputs=I0 linear costs=2 sels=0.5 xfer=0\n"
  in
  let graph = Graph_io.of_string text in
  Alcotest.(check int) "one op" 1 (Graph.n_ops graph)

let expect_failure msg text =
  Alcotest.(check bool) msg true
    (try
       ignore (Graph_io.of_string text);
       false
     with Failure _ | Invalid_argument _ -> true)

let test_malformed_inputs () =
  expect_failure "bad header" "nope v1\ninputs 1 xfer=0\n";
  expect_failure "missing field"
    "rodgraph v1\ninputs 1 xfer=0\nop name=f inputs=I0 linear costs=2 xfer=0\n";
  expect_failure "bad float"
    "rodgraph v1\ninputs 1 xfer=0\nop name=f inputs=I0 linear costs=abc \
     sels=1 xfer=0\n";
  expect_failure "bad source"
    "rodgraph v1\ninputs 1 xfer=0\nop name=f inputs=x9 linear costs=1 sels=1 \
     xfer=0\n";
  expect_failure "unknown kind"
    "rodgraph v1\ninputs 1 xfer=0\nop name=f inputs=I0 magic cost=1 xfer=0\n";
  expect_failure "dangling reference"
    "rodgraph v1\ninputs 1 xfer=0\nop name=f inputs=o5 linear costs=1 sels=1 \
     xfer=0\n"

let test_assignment_roundtrip () =
  let assignment = [| 0; 3; 1; 1; 2; 0 |] in
  let back =
    Graph_io.assignment_of_string (Graph_io.assignment_to_string assignment)
  in
  Alcotest.(check (array int)) "assignment round-trip" assignment back;
  let path = Filename.temp_file "rodplan" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save_assignment assignment ~path;
      Alcotest.(check (array int)) "assignment file round-trip" assignment
        (Graph_io.load_assignment ~path))

let prop_random_graph_roundtrip =
  QCheck.Test.make ~name:"random graphs round-trip" ~count:40
    (QCheck.make QCheck.Gen.(pair (1 -- 4) (2 -- 15)))
    (fun (d, per_tree) ->
      let rng = Random.State.make [| d; per_tree; 5 |] in
      let graph =
        Query.Randgraph.generate ~rng
          {
            Query.Randgraph.default with
            n_inputs = d;
            ops_per_tree = per_tree;
            xfer_cost = 1e-4;
          }
      in
      graphs_equal graph (Graph_io.of_string (Graph_io.to_string graph)))

let suite =
  [
    Alcotest.test_case "round-trip builders" `Quick test_roundtrip_examples;
    Alcotest.test_case "round-trip load model" `Quick
      test_roundtrip_preserves_load_model;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed_inputs;
    Alcotest.test_case "assignment round-trip" `Quick test_assignment_roundtrip;
    QCheck_alcotest.to_alcotest prop_random_graph_roundtrip;
  ]
