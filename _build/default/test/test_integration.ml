(* Integration tests: whole pipelines spanning graph construction, load
   modelling, placement, analytic volume estimation and discrete-event
   execution. *)

module Vec = Linalg.Vec
module Problem = Rod.Problem
module Plan = Rod.Plan
module Trace = Workload.Trace

(* The central consistency property of the whole reproduction: the
   analytic feasibility test (L^n R <= C) and the simulator agree about
   which rate points a placed system can sustain. *)
let test_analytic_vs_simulated_feasibility () =
  let rng = Random.State.make [| 123 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:6 in
  let caps = Problem.homogeneous_caps ~n:3 ~cap:1. in
  let problem = Problem.of_graph graph ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  let assignment = Plan.assignment plan in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  (* Points on the balanced ray at 60%, 80% of the *plan's* boundary,
     plus two clearly infeasible ones; skip points near the boundary
     where scheduling noise could flip the verdict. *)
  let ray phi = Vec.init 2 (fun k -> phi *. c_total /. (2. *. l.(k))) in
  let boundary =
    Feasible.Volume.max_scale ~ln:(Plan.node_loads plan) ~caps
      ~direction:(ray 1.)
  in
  let agreement = ref 0 and total = ref 0 in
  List.iter
    (fun phi ->
      let rates = ray (phi *. boundary) in
      let analytic = Plan.is_feasible_at plan ~rates in
      let v =
        Dsim.Probe.probe_point ~duration:8. ~graph ~assignment ~caps ~rates ()
      in
      incr total;
      if analytic = v.Dsim.Probe.feasible then incr agreement)
    [ 0.5; 0.8; 1.3; 1.6 ];
  Alcotest.(check int) "analytic and simulated verdicts agree" !total !agreement

(* End-to-end: wider query graphs make ROD approach the ideal. *)
let test_rod_ratio_grows_with_width () =
  let ratio ops_per_tree =
    let rng = Random.State.make [| 55 |] in
    let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:3 ~ops_per_tree in
    let problem =
      Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:6 ~cap:1.)
    in
    (Plan.volume_qmc ~samples:4096 (Rod.Rod_algorithm.plan problem))
      .Feasible.Volume.ratio
  in
  let narrow = ratio 4 and wide = ratio 40 in
  Alcotest.(check bool)
    (Printf.sprintf "wide (%.3f) much better than narrow (%.3f)" wide narrow)
    true
    (wide > narrow +. 0.2)

(* Feasible ratio measured by probing the simulator at QMC points
   should approximate the analytic QMC ratio. *)
let test_simulated_feasible_fraction_matches_qmc () =
  let rng = Random.State.make [| 77 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:5 in
  let caps = Problem.homogeneous_caps ~n:2 ~cap:1. in
  let problem = Problem.of_graph graph ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  let analytic = (Plan.volume_qmc ~samples:8192 plan).Feasible.Volume.ratio in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let points =
    Array.init 24 (fun i ->
        Feasible.Simplex.sample_ideal ~l ~c_total
          ~cube_point:(Feasible.Halton.point ~dim:2 i)
          ())
  in
  let simulated =
    Dsim.Probe.feasible_fraction ~duration:6. ~graph
      ~assignment:(Plan.assignment plan) ~caps ~points ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.2f within 0.2 of analytic %.2f" simulated
       analytic)
    true
    (abs_float (simulated -. analytic) <= 0.2)

(* A bursty trace whose mean is safely inside the feasible set keeps
   latency bounded under ROD; scaling the same trace past the boundary
   must blow the backlog up. *)
let test_latency_stable_inside_boundary () =
  let rng = Random.State.make [| 31337 |] in
  let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:8 in
  let caps = Problem.homogeneous_caps ~n:3 ~cap:1. in
  let problem = Problem.of_graph graph ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  let assignment = Plan.assignment plan in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let traces phi =
    Array.init 2 (fun k ->
        let mean = phi *. c_total /. (2. *. l.(k)) in
        Trace.scale mean
          (Trace.normalize
             (Workload.Bmodel.trace ~rng ~bias:0.6 ~levels:5 ~mean_rate:1.
                ~dt:1.)))
  in
  let run phi =
    Dsim.Probe.simulate_traces ~graph ~assignment ~caps ~traces:(traces phi) ()
  in
  let calm = run 0.4 in
  let storm = run 2.0 in
  Alcotest.(check bool) "calm run keeps backlog negligible" true
    (calm.Dsim.Sim_metrics.backlog < 50);
  Alcotest.(check bool)
    (Printf.sprintf "overloaded run piles up work (%d vs %d)"
       storm.Dsim.Sim_metrics.backlog calm.Dsim.Sim_metrics.backlog)
    true
    (storm.Dsim.Sim_metrics.backlog > 10 * (calm.Dsim.Sim_metrics.backlog + 1))

(* The clustering pipeline end to end: under heavy communication cost,
   the clustered plan's communication-inclusive feasible volume beats
   the communication-blind plan's. *)
let test_clustering_pipeline_beats_blind_rod () =
  let rng = Random.State.make [| 2 |] in
  let graph =
    Query.Randgraph.generate ~rng
      {
        Query.Randgraph.default with
        n_inputs = 2;
        ops_per_tree = 10;
        xfer_cost = 2e-3;
      }
  in
  let model = Query.Load_model.derive graph in
  let caps = Problem.homogeneous_caps ~n:3 ~cap:1. in
  let problem = Problem.of_model model ~caps in
  let volume assignment =
    let ln = Rod.Clustering.effective_node_loads ~model ~n_nodes:3 ~assignment in
    (Feasible.Volume.ratio_qmc ~ln ~caps ~samples:4096 ()).Feasible.Volume.volume
  in
  let blind = volume (Rod.Rod_algorithm.place problem) in
  let _, clustered_assignment = Rod.Clustering.select_best ~model ~caps () in
  let clustered = volume clustered_assignment in
  Alcotest.(check bool)
    (Printf.sprintf "clustered %.3g >= blind %.3g" clustered blind)
    true
    (clustered >= blind *. 0.999)

(* Nonlinear pipeline: linearize, place, and verify the plan's analytic
   feasibility against direct nonlinear evaluation on many points. *)
let test_nonlinear_pipeline_consistency () =
  let graph = Query.Builder.example3 () in
  let model = Query.Load_model.derive graph in
  let caps = Problem.homogeneous_caps ~n:2 ~cap:50. in
  let problem = Problem.of_model model ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  let ln = Plan.node_loads plan in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 50 do
    let sys_rates = Vec.init 2 (fun _ -> Random.State.float rng 8.) in
    let vars = Query.Load_model.eval_vars model ~sys_rates in
    (* Node loads computed through the linearized matrix must equal the
       sum of true operator loads per node. *)
    let direct = Array.make 2 0. in
    Array.iteri
      (fun j node ->
        direct.(node) <-
          direct.(node) +. Query.Load_model.op_load_at model ~sys_rates j)
      (Plan.assignment plan);
    for i = 0 to 1 do
      let linear = Vec.dot (Linalg.Mat.row ln i) vars in
      if abs_float (linear -. direct.(i)) > 1e-9 then
        Alcotest.failf "node %d: linearized %.6f <> direct %.6f" i linear
          direct.(i)
    done
  done

(* Differential check: at any feasible rate point, per-node utilization
   predicted by the linear algebra must match what the DES measures. *)
let prop_analytic_utilization_matches_des =
  QCheck.Test.make ~name:"analytic utilization = simulated utilization" ~count:8
    (QCheck.make QCheck.Gen.(pair (0 -- 1000) (1 -- 3)))
    (fun (seed, d) ->
      let rng = Random.State.make [| seed |] in
      let graph = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:5 in
      let caps = Problem.homogeneous_caps ~n:2 ~cap:1. in
      let problem = Problem.of_graph graph ~caps in
      let plan = Rod.Rod_algorithm.plan problem in
      (* A strictly interior point (60% of the ray boundary). *)
      let direction =
        Vec.init d (fun k -> 1. /. (Problem.total_coefficients problem).(k))
      in
      let t =
        Feasible.Volume.max_scale ~ln:(Plan.node_loads plan) ~caps ~direction
      in
      let rates = Vec.scale (0.6 *. t) direction in
      let predicted = Plan.utilizations plan ~rates in
      let arrivals =
        Array.map
          (fun rate ->
            Workload.Generators.deterministic_arrivals
              ~trace:(Workload.Trace.create ~dt:30. [| rate |]))
          rates
      in
      let metrics =
        Dsim.Engine.run ~graph ~assignment:(Plan.assignment plan) ~caps
          ~arrivals
          ~config:{ Dsim.Engine.default_config with warmup = 2. }
          ~until:30. ()
      in
      let measured = metrics.Dsim.Sim_metrics.utilization in
      (* Bernoulli selectivity draws add sampling noise; 6 points of
         utilization is ample slack for a 28 s window. *)
      abs_float (predicted.(0) -. measured.(0)) < 0.06
      && abs_float (predicted.(1) -. measured.(1)) < 0.06)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_analytic_utilization_matches_des;
    Alcotest.test_case "analytic vs simulated feasibility" `Slow
      test_analytic_vs_simulated_feasibility;
    Alcotest.test_case "ROD ratio grows with graph width" `Quick
      test_rod_ratio_grows_with_width;
    Alcotest.test_case "simulated fraction matches QMC" `Slow
      test_simulated_feasible_fraction_matches_qmc;
    Alcotest.test_case "latency stable inside boundary" `Quick
      test_latency_stable_inside_boundary;
    Alcotest.test_case "clustering pipeline beats blind ROD" `Quick
      test_clustering_pipeline_beats_blind_rod;
    Alcotest.test_case "nonlinear pipeline consistency" `Quick
      test_nonlinear_pipeline_consistency;
  ]
