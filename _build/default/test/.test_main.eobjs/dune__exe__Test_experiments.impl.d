test/test_experiments.ml: Alcotest Array Buffer Experiments Filename Format Fun List Printf Query Random Rod String Sys Unix
