test/test_dynamic.ml: Alcotest Array Dsim Linalg Option Printf Query Random Rod Spe Workload
