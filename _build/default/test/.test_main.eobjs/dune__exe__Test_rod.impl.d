test/test_rod.ml: Alcotest Array Feasible Float Linalg List Printf QCheck QCheck_alcotest Query Random Rod
