test/test_sim.ml: Alcotest Array Dsim Linalg List Printf QCheck QCheck_alcotest Query Random Rod Workload
