test/test_spe.ml: Alcotest Array Linalg List Printf QCheck QCheck_alcotest Query Random Rod Spe Workload
