test/test_deploy.ml: Alcotest Array Deploy Filename Fun Linalg List Printf Query Rod Spe String Sys Unix
