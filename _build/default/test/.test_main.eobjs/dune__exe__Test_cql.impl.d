test/test_cql.ml: Alcotest Array Cql Format List Option Printf QCheck QCheck_alcotest Random Rod Spe String Workload
