test/test_query.ml: Alcotest Array Feasible Linalg List Option Printf QCheck QCheck_alcotest Query Random Rod String
