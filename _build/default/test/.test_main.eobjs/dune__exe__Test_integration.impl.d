test/test_integration.ml: Alcotest Array Dsim Feasible Linalg List Printf QCheck QCheck_alcotest Query Random Rod Workload
