test/test_workload.ml: Alcotest Array Filename Float Fun List Printf QCheck QCheck_alcotest Random String Sys Workload
