test/test_baselines.ml: Alcotest Array Baselines Float Linalg List Printf QCheck QCheck_alcotest Query Random Rod
