test/test_linalg.ml: Alcotest Array Linalg QCheck QCheck_alcotest
