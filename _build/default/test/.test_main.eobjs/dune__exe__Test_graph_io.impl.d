test/test_graph_io.ml: Alcotest Filename Fun Linalg List QCheck QCheck_alcotest Query Random Sys
