(* Tests of the query-graph model and the (linearized) load model,
   anchored on the paper's worked Examples 1-3. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Graph = Query.Graph
module Op = Query.Op
module Load_model = Query.Load_model

let approx = Alcotest.float 1e-9

let check_vec msg expected actual =
  Alcotest.(check (list (float 1e-9))) msg (Vec.to_list expected)
    (Vec.to_list actual)

(* Example 1 (Figure 4): load(o1)=c1 r1, load(o2)=c2 s1 r1,
   load(o3)=c3 r2, load(o4)=c4 s3 r2. *)
let test_example1_loads () =
  let c1, c2, c3, c4 = (2., 3., 5., 7.) in
  let s1, s3 = (0.5, 0.25) in
  let g = Query.Builder.example1 ~c1 ~c2 ~c3 ~c4 ~s1 ~s3 in
  let model = Load_model.derive g in
  let lo = Load_model.load_coefficients model in
  check_vec "load(o1)" (Vec.of_list [ c1; 0. ]) (Mat.row lo 0);
  check_vec "load(o2)" (Vec.of_list [ c2 *. s1; 0. ]) (Mat.row lo 1);
  check_vec "load(o3)" (Vec.of_list [ 0.; c3 ]) (Mat.row lo 2);
  check_vec "load(o4)" (Vec.of_list [ 0.; c4 *. s3 ]) (Mat.row lo 3)

(* Example 2: L^o = [(4,0);(6,0);(0,9);(0,2)], l = (10, 11). *)
let test_example2_matrix () =
  let model = Load_model.derive (Query.Builder.example2 ()) in
  let lo = Load_model.load_coefficients model in
  check_vec "o1" (Vec.of_list [ 4.; 0. ]) (Mat.row lo 0);
  check_vec "o2" (Vec.of_list [ 6.; 0. ]) (Mat.row lo 1);
  check_vec "o3" (Vec.of_list [ 0.; 9. ]) (Mat.row lo 2);
  check_vec "o4" (Vec.of_list [ 0.; 2. ]) (Mat.row lo 3);
  check_vec "l" (Vec.of_list [ 10.; 11. ]) (Load_model.total_coefficients model)

let test_graph_validation () =
  Alcotest.check_raises "cycle detected"
    (Invalid_argument "Graph: cycle detected") (fun () ->
      ignore
        (Graph.create ~n_inputs:1
           ~ops:
             [
               (Op.map ~cost:1. (), [ Graph.Op_output 1 ]);
               (Op.map ~cost:1. (), [ Graph.Op_output 0 ]);
             ]
           ()));
  Alcotest.check_raises "bad input index"
    (Invalid_argument "Graph.create: op 0 reads bad input stream 3") (fun () ->
      ignore
        (Graph.create ~n_inputs:2 ~ops:[ (Op.map ~cost:1. (), [ Graph.Sys_input 3 ]) ] ()));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Graph.create: op 0 (join) expects 2 inputs, got 1")
    (fun () ->
      ignore
        (Graph.create ~n_inputs:1
           ~ops:
             [
               ( Op.join ~window:1. ~cost_per_pair:1. ~sel:0.5 (),
                 [ Graph.Sys_input 0 ] );
             ]
           ()))

let test_topology_queries () =
  let g = Query.Builder.diamond ~cost:1. in
  Alcotest.(check (list int)) "consumers of input" [ 0; 1 ]
    (Graph.consumers g (Graph.Sys_input 0));
  Alcotest.(check (list int)) "sinks" [ 2 ] (Graph.sinks g);
  let order = Graph.topo_order g in
  Alcotest.(check int) "topo covers all" 3 (List.length order);
  (* The union (op 2) must come after both filters. *)
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  Alcotest.(check bool) "union after left" true (pos 2 > pos 0);
  Alcotest.(check bool) "union after right" true (pos 2 > pos 1)

(* Example 3 (Figure 13): two introduced variables; linearized loads
   evaluate to the true nonlinear loads at any concrete rate point. *)
let test_example3_linearization () =
  let g = Query.Builder.example3 () in
  Alcotest.(check bool) "graph is nonlinear" true (Graph.has_nonlinear g);
  let model = Load_model.derive g in
  Alcotest.(check int) "two extra variables" 4 (Load_model.d_total model);
  Alcotest.(check int) "system vars" 2 (Load_model.d_system model);
  let sys_rates = Vec.of_list [ 10.; 4. ] in
  (* Actual rates by hand: o1 out = 0.6*10 = 6 (sel_now), o2 out = 6,
     o3 out = 0.8*4 = 3.2, o4 out = 3.2.  Join o5: window 2, pair rate
     = 2*6*3.2 = 38.4, load = 0.5*38.4 = 19.2, out = 0.1*38.4 = 3.84. *)
  Alcotest.check approx "o2 rate" 6.
    (Load_model.stream_rate_at model ~sys_rates (Graph.Op_output 1));
  Alcotest.check approx "o4 rate" 3.2
    (Load_model.stream_rate_at model ~sys_rates (Graph.Op_output 3));
  Alcotest.check approx "o5 load" 19.2 (Load_model.op_load_at model ~sys_rates 4);
  Alcotest.check approx "o5 out rate" 3.84
    (Load_model.stream_rate_at model ~sys_rates (Graph.Op_output 4));
  Alcotest.check approx "o6 load" (2. *. 3.84)
    (Load_model.op_load_at model ~sys_rates 5);
  (* o1's own load is linear in r1 despite the drifting selectivity. *)
  Alcotest.check approx "o1 load" 20. (Load_model.op_load_at model ~sys_rates 0);
  (* The linear model agrees with direct evaluation through eval_vars. *)
  let vars = Load_model.eval_vars model ~sys_rates in
  let lo = Load_model.load_coefficients model in
  for j = 0 to Load_model.n_ops model - 1 do
    Alcotest.check approx
      (Printf.sprintf "linear load of o%d" (j + 1))
      (Load_model.op_load_at model ~sys_rates j)
      (Vec.dot (Mat.row lo j) vars)
  done

let test_linear_graph_has_no_extra_vars () =
  let model = Load_model.derive (Query.Builder.example2 ()) in
  Alcotest.(check int) "no extra vars" 2 (Load_model.d_total model)

let test_graph_dot () =
  let g = Query.Builder.example2 () in
  let plain = Query.Graph_dot.to_dot g in
  let contains text needle =
    let nl = String.length needle and tl = String.length text in
    let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "digraph header" true (contains plain "digraph query");
  Alcotest.(check bool) "input node" true (contains plain "I0 [shape=invtriangle");
  Alcotest.(check bool) "edge" true (contains plain "o0 -> o1;");
  Alcotest.(check bool) "app sinks" true (contains plain "-> app");
  let placed = Query.Graph_dot.to_dot ~assignment:[| 0; 1; 0; 1 |] g in
  Alcotest.(check bool) "fill colors when placed" true
    (contains placed "fillcolor=");
  Alcotest.(check bool) "node labels" true (contains placed "node 1");
  Alcotest.(check bool) "bad assignment rejected" true
    (try
       ignore (Query.Graph_dot.to_dot ~assignment:[| 0 |] g);
       false
     with Invalid_argument _ -> true)

(* --- partitioning --- *)

let test_partition_preserves_rates () =
  let g = Query.Builder.example2 () in
  let split = Query.Partition.split_op ~route_cost:0. g ~op:2 ~ways:3 in
  Alcotest.(check int) "ops grew by 2*ways" (4 + 6) (Graph.n_ops split);
  let rates sys_rates graph =
    let model = Load_model.derive graph in
    (* o4 reads o3's (merged) output in both graphs. *)
    Load_model.stream_rate_at model ~sys_rates (Graph.Op_output 3)
  in
  let sys_rates = Vec.of_list [ 2.; 6. ] in
  Alcotest.check approx "end-to-end rate unchanged" (rates sys_rates g)
    (rates sys_rates split)

let test_partition_preserves_total_load () =
  let g = Query.Builder.example2 () in
  let split = Query.Partition.split_op ~route_cost:0. ~merge_cost:0. g ~op:2 ~ways:4 in
  let totals graph =
    Load_model.total_coefficients (Load_model.derive graph)
  in
  Alcotest.(check (list (float 1e-9)))
    "zero-overhead split keeps column sums"
    (Vec.to_list (totals g))
    (Vec.to_list (totals split))

let test_partition_splits_load_row () =
  let g = Query.Builder.example2 () in
  let split = Query.Partition.split_op ~route_cost:0. g ~op:2 ~ways:3 in
  let model = Load_model.derive split in
  let lo = Load_model.load_coefficients model in
  (* o3 had load 9 r2; each instance (indices 7..9) carries 3 r2. *)
  for i = 7 to 9 do
    Alcotest.check approx
      (Printf.sprintf "instance %d load" i)
      3. (Mat.get lo i 1)
  done;
  (* The union in o3's old slot carries no load at merge_cost 0. *)
  Alcotest.check approx "union load" 0. (Mat.get lo 2 1)

let test_partition_routing_overhead () =
  let g = Query.Builder.chain ~n_ops:1 ~cost:1e-3 ~sel:1. () in
  let split = Query.Partition.split_op ~route_cost:1e-4 g ~op:0 ~ways:4 in
  let l = Load_model.total_coefficients (Load_model.derive split) in
  (* Total = operator 1e-3 + routing 1e-4, independent of ways. *)
  Alcotest.check approx "total load with routing" 1.1e-3 l.(0)

let test_partition_rejects_bad_targets () =
  let g = Query.Builder.example3 () in
  Alcotest.(check bool) "join unsplittable" false (Query.Partition.splittable g 4);
  Alcotest.(check bool) "var-sel unsplittable" false (Query.Partition.splittable g 0);
  Alcotest.(check bool) "split rejects join" true
    (try
       ignore (Query.Partition.split_op g ~op:4 ~ways:2);
       false
     with Invalid_argument _ -> true)

let test_split_all_improves_balance () =
  (* A narrow graph (2 heavy ops per input) on 4 nodes: partitioning
     4-ways must strictly improve ROD's feasible ratio. *)
  let rng = Random.State.make [| 12 |] in
  let g = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:2 in
  let caps = Rod.Problem.homogeneous_caps ~n:4 ~cap:1. in
  let ratio graph =
    let problem = Rod.Problem.of_graph graph ~caps in
    (Rod.Plan.volume_qmc ~samples:4096 (Rod.Rod_algorithm.plan problem))
      .Feasible.Volume.ratio
  in
  let narrow = ratio g in
  let wide = ratio (Query.Partition.split_all ~route_cost:1e-6 ~ways:4 g) in
  Alcotest.(check bool)
    (Printf.sprintf "partitioned (%.3f) > narrow (%.3f)" wide narrow)
    true
    (wide > narrow +. 0.1)

let prop_partition_preserves_model =
  QCheck.Test.make ~name:"partitioning preserves rates and zero-cost loads"
    ~count:25
    (QCheck.make QCheck.Gen.(triple (0 -- 500) (2 -- 6) (2 -- 4)))
    (fun (seed, per_tree, ways) ->
      let rng = Random.State.make [| seed |] in
      let g = Query.Randgraph.generate_trees ~rng ~n_inputs:2 ~ops_per_tree:per_tree in
      let split = Query.Partition.split_all ~route_cost:0. ~merge_cost:0. ~ways g in
      let totals graph = Load_model.total_coefficients (Load_model.derive graph) in
      let sys_rates = Vec.of_list [ 3.; 5. ] in
      let sink_rates graph =
        let model = Load_model.derive graph in
        List.map
          (fun j -> Load_model.stream_rate_at model ~sys_rates (Graph.Op_output j))
          (List.filter (fun j -> j < Graph.n_ops g) (Graph.sinks g))
      in
      Vec.equal ~eps:1e-9 (totals g) (totals split)
      && List.for_all2
           (fun a b -> abs_float (a -. b) < 1e-9)
           (sink_rates g)
           (* Original sink slots hold the merge unions in the split
              graph, so the same indices compare directly. *)
           (List.map
              (fun j ->
                Load_model.stream_rate_at (Load_model.derive split) ~sys_rates
                  (Graph.Op_output j))
              (Graph.sinks g)))

let rand_graph_params = QCheck.Gen.(pair (1 -- 4) (2 -- 30))

let prop_randgraph_shape =
  QCheck.Test.make ~name:"randgraph: tree count and sizes" ~count:50
    (QCheck.make rand_graph_params) (fun (d, per_tree) ->
      let rng = Random.State.make [| d; per_tree |] in
      let g = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:per_tree in
      Graph.n_ops g = d * per_tree && Graph.n_inputs g = d)

let prop_randgraph_costs_in_range =
  QCheck.Test.make ~name:"randgraph: delay costs and selectivities in range"
    ~count:30 (QCheck.make rand_graph_params) (fun (d, per_tree) ->
      let rng = Random.State.make [| 7 * d; per_tree |] in
      let g = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:per_tree in
      let ok = ref true in
      for j = 0 to Graph.n_ops g - 1 do
        let linear = Op.linear_exn (Graph.op g j) in
        Array.iter
          (fun c -> if c < 1e-4 -. 1e-12 || c > 1e-3 +. 1e-12 then ok := false)
          linear.Op.costs;
        Array.iter
          (fun s -> if s < 0.5 -. 1e-12 || s > 1. +. 1e-12 then ok := false)
          linear.Op.selectivities
      done;
      !ok)

let prop_randgraph_half_unit_selectivity =
  QCheck.Test.make ~name:"randgraph: half the operators have selectivity one"
    ~count:30
    (QCheck.make QCheck.Gen.(2 -- 20))
    (fun per_tree ->
      let rng = Random.State.make [| 13; per_tree |] in
      let g =
        Query.Randgraph.generate_trees ~rng ~n_inputs:3 ~ops_per_tree:per_tree
      in
      let unit_count = ref 0 in
      for j = 0 to Graph.n_ops g - 1 do
        let linear = Op.linear_exn (Graph.op g j) in
        if linear.Op.selectivities.(0) = 1. then incr unit_count
      done;
      (* Exactly floor(per_tree / 2) per tree, plus whatever the uniform
         draw happens to hit 1.0 on (probability zero). *)
      !unit_count >= 3 * (per_tree / 2))

let prop_load_columns_positive =
  QCheck.Test.make ~name:"randgraph model: every variable carries load"
    ~count:30 (QCheck.make rand_graph_params) (fun (d, per_tree) ->
      let rng = Random.State.make [| 99; d; per_tree |] in
      let g = Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:per_tree in
      let model = Load_model.derive g in
      Vec.for_all (fun l -> l > 0.) (Load_model.total_coefficients model))

let suite =
  [
    Alcotest.test_case "example 1 loads" `Quick test_example1_loads;
    Alcotest.test_case "example 2 matrix" `Quick test_example2_matrix;
    Alcotest.test_case "graph validation" `Quick test_graph_validation;
    Alcotest.test_case "topology queries" `Quick test_topology_queries;
    Alcotest.test_case "example 3 linearization" `Quick test_example3_linearization;
    Alcotest.test_case "linear graph var count" `Quick
      test_linear_graph_has_no_extra_vars;
    Alcotest.test_case "graphviz export" `Quick test_graph_dot;
    Alcotest.test_case "partition preserves rates" `Quick
      test_partition_preserves_rates;
    Alcotest.test_case "partition preserves total load" `Quick
      test_partition_preserves_total_load;
    Alcotest.test_case "partition splits load row" `Quick
      test_partition_splits_load_row;
    Alcotest.test_case "partition routing overhead" `Quick
      test_partition_routing_overhead;
    Alcotest.test_case "partition rejects bad targets" `Quick
      test_partition_rejects_bad_targets;
    Alcotest.test_case "split_all improves balance" `Quick
      test_split_all_improves_balance;
    QCheck_alcotest.to_alcotest prop_partition_preserves_model;
    QCheck_alcotest.to_alcotest prop_randgraph_shape;
    QCheck_alcotest.to_alcotest prop_randgraph_costs_in_range;
    QCheck_alcotest.to_alcotest prop_randgraph_half_unit_selectivity;
    QCheck_alcotest.to_alcotest prop_load_columns_positive;
  ]
