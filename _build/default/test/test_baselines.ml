(* Tests of the four baseline load-distribution algorithms. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Plan = Rod.Plan

let graph_and_problem seed ~n_inputs ~ops_per_tree ~n_nodes =
  let rng = Random.State.make [| seed |] in
  let g = Query.Randgraph.generate_trees ~rng ~n_inputs ~ops_per_tree in
  (g, Problem.of_graph g ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.))

let valid_assignment problem assignment =
  Array.length assignment = Problem.n_ops problem
  && Array.for_all
       (fun node -> node >= 0 && node < Problem.n_nodes problem)
       assignment

let test_random_balanced_counts () =
  let _, problem = graph_and_problem 1 ~n_inputs:3 ~ops_per_tree:7 ~n_nodes:4 in
  let rng = Random.State.make [| 2 |] in
  let assignment = Baselines.random_balanced ~rng problem in
  Alcotest.(check bool) "valid" true (valid_assignment problem assignment);
  let counts = Plan.op_counts (Plan.make problem assignment) in
  let lo = Array.fold_left min max_int counts in
  let hi = Array.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "balanced counts (%d..%d)" lo hi)
    true (hi - lo <= 1)

let test_random_balanced_varies_with_seed () =
  let _, problem = graph_and_problem 1 ~n_inputs:3 ~ops_per_tree:7 ~n_nodes:4 in
  let a = Baselines.random_balanced ~rng:(Random.State.make [| 3 |]) problem in
  let b = Baselines.random_balanced ~rng:(Random.State.make [| 4 |]) problem in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_llf_balances_at_point () =
  let _, problem = graph_and_problem 5 ~n_inputs:4 ~ops_per_tree:10 ~n_nodes:4 in
  let rates = Vec.create (Problem.dim problem) 1. in
  let assignment = Baselines.llf ~rates problem in
  Alcotest.(check bool) "valid" true (valid_assignment problem assignment);
  let u = Plan.utilizations (Plan.make problem assignment) ~rates in
  let spread = Vec.max_elt u -. Vec.min_elt u in
  (* LLF equalizes load at its reference point; with 40 operators the
     node loads should be within a third of the mean of each other. *)
  Alcotest.(check bool)
    (Printf.sprintf "balanced at reference point (spread %.3f, mean %.3f)"
       spread (Vec.mean u))
    true
    (spread < 0.34 *. Vec.mean u)

let test_llf_greedy_on_simple_case () =
  (* Loads 3,3,2 on two nodes: LLF puts 3|3,2 never 3,3|2. *)
  let lo =
    Mat.of_rows [ Vec.of_list [ 3. ]; Vec.of_list [ 3. ]; Vec.of_list [ 2. ] ]
  in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let assignment = Baselines.llf ~rates:(Vec.of_list [ 1. ]) problem in
  Alcotest.(check bool) "the two heavy ops are split" true
    (assignment.(0) <> assignment.(1))

let test_connected_reduces_cut_arcs () =
  let g, problem = graph_and_problem 11 ~n_inputs:4 ~ops_per_tree:12 ~n_nodes:4 in
  let model = Query.Load_model.derive g in
  let rates = Vec.create (Problem.dim problem) 1. in
  let connected = Baselines.connected ~rates ~graph:g problem in
  Alcotest.(check bool) "valid" true (valid_assignment problem connected);
  let llf = Baselines.llf ~rates problem in
  let cuts assignment =
    List.length (Rod.Clustering.cut_arcs ~model ~assignment)
  in
  Alcotest.(check bool)
    (Printf.sprintf "connected cuts (%d) <= LLF cuts (%d)" (cuts connected)
       (cuts llf))
    true
    (cuts connected <= cuts llf)

let test_connected_respects_average_cap () =
  let g, problem = graph_and_problem 13 ~n_inputs:3 ~ops_per_tree:10 ~n_nodes:3 in
  let rates = Vec.create (Problem.dim problem) 1. in
  let assignment = Baselines.connected ~rates ~graph:g problem in
  let plan = Plan.make problem assignment in
  let loads =
    Vec.init (Problem.n_nodes problem) (fun i -> Plan.node_load_at plan ~rates i)
  in
  let total = Vec.sum loads in
  let average = total /. float_of_int (Problem.n_nodes problem) in
  (* No node can exceed the average by more than one operator's load
     beyond the seed operator placed after the check. *)
  let max_op_load =
    let m = Problem.n_ops problem in
    let best = ref 0. in
    for j = 0 to m - 1 do
      best := Float.max !best (Vec.dot (Problem.op_load problem j) rates)
    done;
    !best
  in
  Alcotest.(check bool) "no node grossly over average" true
    (Vec.max_elt loads <= average +. (2. *. max_op_load))

let test_correlation_separates_same_input_ops () =
  (* Two independent chains on two nodes: perfectly correlated
     operators (same input) should not all land together. *)
  let g =
    Query.Graph.create ~n_inputs:2
      ~ops:
        [
          (Query.Op.map ~cost:1. (), [ Query.Graph.Sys_input 0 ]);
          (Query.Op.map ~cost:1. (), [ Query.Graph.Op_output 0 ]);
          (Query.Op.map ~cost:1. (), [ Query.Graph.Sys_input 1 ]);
          (Query.Op.map ~cost:1. (), [ Query.Graph.Op_output 2 ]);
        ]
      ()
  in
  let problem = Problem.of_graph g ~caps:(Problem.homogeneous_caps ~n:2 ~cap:1.) in
  (* Rate series where the two inputs move independently. *)
  let series =
    Mat.of_rows
      [
        Vec.of_list [ 1.; 0.1 ]; Vec.of_list [ 0.1; 1. ];
        Vec.of_list [ 2.; 0.2 ]; Vec.of_list [ 0.3; 1.5 ];
        Vec.of_list [ 1.5; 0.1 ]; Vec.of_list [ 0.1; 2. ];
      ]
  in
  let assignment = Baselines.correlation ~series problem in
  Alcotest.(check bool) "valid" true (valid_assignment problem assignment);
  Alcotest.(check bool) "input-0 ops split across nodes" true
    (assignment.(0) <> assignment.(1));
  Alcotest.(check bool) "input-1 ops split across nodes" true
    (assignment.(2) <> assignment.(3))

let test_correlation_rejects_bad_series () =
  let _, problem = graph_and_problem 1 ~n_inputs:2 ~ops_per_tree:3 ~n_nodes:2 in
  Alcotest.(check bool) "wrong dimension rejected" true
    (try
       ignore (Baselines.correlation ~series:(Mat.zeros 4 7) problem);
       false
     with Invalid_argument _ -> true)

(* All baselines conserve the column sums like any assignment. *)
let prop_baselines_conserve_columns =
  QCheck.Test.make ~name:"baseline plans conserve column sums" ~count:20
    (QCheck.make QCheck.Gen.(0 -- 200))
    (fun seed ->
      let g, problem = graph_and_problem seed ~n_inputs:3 ~ops_per_tree:6 ~n_nodes:3 in
      let rng = Random.State.make [| seed + 1 |] in
      let rates = Vec.create (Problem.dim problem) 1. in
      let series =
        Mat.init 8 (Problem.dim problem) (fun _ _ -> Random.State.float rng 2.)
      in
      let plans =
        [
          Baselines.random_balanced ~rng problem;
          Baselines.llf ~rates problem;
          Baselines.connected ~rates ~graph:g problem;
          Baselines.correlation ~series problem;
        ]
      in
      List.for_all
        (fun assignment ->
          Vec.equal ~eps:1e-6
            (Problem.total_coefficients problem)
            (Mat.col_sums (Plan.node_loads (Plan.make problem assignment))))
        plans)

let suite =
  [
    Alcotest.test_case "random balanced counts" `Quick test_random_balanced_counts;
    Alcotest.test_case "random varies with seed" `Quick
      test_random_balanced_varies_with_seed;
    Alcotest.test_case "LLF balances at point" `Quick test_llf_balances_at_point;
    Alcotest.test_case "LLF greedy split" `Quick test_llf_greedy_on_simple_case;
    Alcotest.test_case "connected reduces cut arcs" `Quick
      test_connected_reduces_cut_arcs;
    Alcotest.test_case "connected respects average" `Quick
      test_connected_respects_average_cap;
    Alcotest.test_case "correlation separates same-input ops" `Quick
      test_correlation_separates_same_input_ops;
    Alcotest.test_case "correlation validates series" `Quick
      test_correlation_rejects_bad_series;
    QCheck_alcotest.to_alcotest prop_baselines_conserve_columns;
  ]
