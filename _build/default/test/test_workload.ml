(* Tests of traces, statistics and the synthetic workload generators. *)

module Stats = Workload.Stats
module Trace = Workload.Trace
module Bmodel = Workload.Bmodel
module Generators = Workload.Generators
module Traces = Workload.Traces

let approx eps = Alcotest.float eps

let test_moments () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.check (approx 1e-9) "mean" 5. (Stats.mean xs);
  Alcotest.check (approx 1e-9) "variance" 4. (Stats.variance xs);
  Alcotest.check (approx 1e-9) "std" 2. (Stats.std xs)

let test_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 2.; 4.; 6.; 8. |] in
  let zs = [| 8.; 6.; 4.; 2. |] in
  Alcotest.check (approx 1e-9) "perfect positive" 1. (Stats.correlation xs ys);
  Alcotest.check (approx 1e-9) "perfect negative" (-1.) (Stats.correlation xs zs);
  Alcotest.check (approx 1e-9) "constant series" 0.
    (Stats.correlation xs [| 5.; 5.; 5.; 5. |])

let test_autocorrelation_and_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check (approx 1e-9) "lag 0" 1. (Stats.autocorrelation xs 0);
  Alcotest.check (approx 1e-9) "p0" 1. (Stats.percentile xs 0.);
  Alcotest.check (approx 1e-9) "p100" 5. (Stats.percentile xs 100.);
  Alcotest.check (approx 1e-9) "p50" 3. (Stats.percentile xs 50.)

let test_trace_basics () =
  let t = Trace.create ~dt:0.5 [| 2.; 4.; 6.; 8. |] in
  Alcotest.check (approx 1e-9) "duration" 2. (Trace.duration t);
  Alcotest.check (approx 1e-9) "mean" 5. (Trace.mean_rate t);
  Alcotest.check (approx 1e-9) "rate at 0.75" 4. (Trace.rate_at t 0.75);
  Alcotest.check (approx 1e-9) "rate clamps at end" 8. (Trace.rate_at t 99.);
  let c = Trace.coarsen t 2 in
  Alcotest.(check int) "coarsen length" 2 (Trace.length c);
  Alcotest.check (approx 1e-9) "coarsen preserves mean" 5. (Trace.mean_rate c);
  Alcotest.check (approx 1e-9) "normalized mean" 1.
    (Trace.mean_rate (Trace.normalize t))

let test_trace_validation () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Trace.create: negative rate") (fun () ->
      ignore (Trace.create ~dt:1. [| 1.; -1. |]));
  Alcotest.check_raises "bad dt"
    (Invalid_argument "Trace.create: dt must be positive") (fun () ->
      ignore (Trace.create ~dt:0. [| 1. |]))

let test_bmodel_conservation () =
  let rng = Random.State.make [| 42 |] in
  let values = Bmodel.generate ~rng ~bias:0.7 ~levels:10 ~total:1000. in
  Alcotest.(check int) "2^levels values" 1024 (Array.length values);
  Alcotest.check (approx 1e-6) "volume conserved" 1000.
    (Array.fold_left ( +. ) 0. values);
  Alcotest.(check bool) "all nonnegative" true
    (Array.for_all (fun v -> v >= 0.) values)

let test_bmodel_flat_at_half () =
  let rng = Random.State.make [| 1 |] in
  let values = Bmodel.generate ~rng ~bias:0.5 ~levels:6 ~total:64. in
  Alcotest.(check bool) "bias 0.5 is flat" true
    (Array.for_all (fun v -> abs_float (v -. 1.) < 1e-9) values)

let test_bmodel_cv_calibration () =
  (* Analytic inverse round-trips... *)
  let levels = 10 in
  List.iter
    (fun cv ->
      let bias = Bmodel.bias_for_cv ~cv ~levels in
      Alcotest.check (approx 1e-6)
        (Printf.sprintf "cv round-trip %.2f" cv)
        cv
        (Bmodel.cv_of_bias ~bias ~levels))
    [ 0.2; 0.5; 1.0 ];
  (* ...and empirical CV lands in the right ballpark (single cascade
     realisations fluctuate, so the tolerance is loose). *)
  let rng = Random.State.make [| 7 |] in
  let trials = 20 in
  let acc = ref 0. in
  for _ = 1 to trials do
    let t = Bmodel.trace ~rng ~bias:0.62 ~levels ~mean_rate:1. ~dt:1. in
    acc := !acc +. Trace.cv t
  done;
  let mean_cv = !acc /. float_of_int trials in
  let analytic = Bmodel.cv_of_bias ~bias:0.62 ~levels in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.3f near analytic %.3f" mean_cv analytic)
    true
    (abs_float (mean_cv -. analytic) < 0.4 *. analytic)

let test_trace_kinds_ordering () =
  let rng = Random.State.make [| 2026 |] in
  let reps = 10 in
  let mean_cv kind =
    let acc = ref 0. in
    for _ = 1 to reps do
      acc := !acc +. Trace.cv (Traces.synthesize ~rng kind)
    done;
    !acc /. float_of_int reps
  in
  let pkt = mean_cv Traces.Pkt and tcp = mean_cv Traces.Tcp in
  let http = mean_cv Traces.Http in
  Alcotest.(check bool)
    (Printf.sprintf "cv ordering PKT(%.2f) < TCP(%.2f) < HTTP(%.2f)" pkt tcp http)
    true
    (pkt < tcp && tcp < http)

let test_self_similarity () =
  (* The b-model stays bursty when aggregated 16x; Poisson noise does
     not (its CV shrinks ~4x).  This is the Figure 2 "similar behaviour
     at other time-scales" property. *)
  let rng = Random.State.make [| 77 |] in
  let bursty = Bmodel.trace ~rng ~bias:0.75 ~levels:12 ~mean_rate:100. ~dt:1. in
  let smooth = Generators.poisson_counts ~rng ~n:4096 ~dt:1. ~mean_rate:100. in
  let retention t = Trace.cv (Trace.coarsen t 16) /. Trace.cv t in
  Alcotest.(check bool) "bursty trace retains burstiness under aggregation" true
    (retention bursty > 2. *. retention smooth)

let test_hurst_discriminates () =
  let rng = Random.State.make [| 5 |] in
  let bursty = Bmodel.trace ~rng ~bias:0.75 ~levels:12 ~mean_rate:100. ~dt:1. in
  let smooth = Generators.poisson_counts ~rng ~n:4096 ~dt:1. ~mean_rate:100. in
  let hb = Stats.hurst_rs bursty.Trace.rates in
  let hs = Stats.hurst_rs smooth.Trace.rates in
  Alcotest.(check bool)
    (Printf.sprintf "hurst bursty %.2f > smooth %.2f" hb hs)
    true (hb > hs +. 0.1)

let test_sinusoid_and_flash_crowd () =
  let s = Generators.sinusoid ~n:100 ~dt:1. ~mean_rate:10. ~amplitude:0.5 ~period:50. in
  Alcotest.check (approx 0.2) "sinusoid mean" 10. (Trace.mean_rate s);
  Alcotest.(check bool) "sinusoid nonnegative" true
    (Array.for_all (fun r -> r >= 0.) s.Trace.rates);
  let rng = Random.State.make [| 3 |] in
  let f =
    Generators.flash_crowd ~rng ~n:500 ~dt:1. ~base_rate:10. ~spike_prob:0.02
      ~spike_factor:5. ~decay:0.8
  in
  Alcotest.(check bool) "flash crowd at least base" true
    (Array.for_all (fun r -> r >= 10. -. 1e-9) f.Trace.rates);
  Alcotest.(check bool) "flash crowd spikes happened" true
    (Array.exists (fun r -> r > 20.) f.Trace.rates)

let test_arrival_generation () =
  let trace = Trace.create ~dt:1. [| 10.; 20.; 0.; 5. |] in
  let det = Generators.deterministic_arrivals ~trace in
  Alcotest.(check int) "deterministic count" 35 (List.length det);
  Alcotest.(check bool) "ascending" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 34) det) (List.tl det));
  Alcotest.(check bool) "no arrivals in silent interval" true
    (List.for_all (fun t -> t < 2. || t >= 3.) det);
  let rng = Random.State.make [| 11 |] in
  let total = ref 0 in
  let reps = 50 in
  for _ = 1 to reps do
    total := !total + List.length (Generators.poisson_arrivals ~rng ~trace)
  done;
  let mean = float_of_int !total /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean %.1f near 35" mean)
    true
    (abs_float (mean -. 35.) < 3.)

let prop_bmodel_conserves =
  QCheck.Test.make ~name:"bmodel conserves volume" ~count:50
    (QCheck.make
       QCheck.Gen.(triple (0 -- 10) (float_range 0.5 0.95) (float_range 0. 1000.)))
    (fun (levels, bias, total) ->
      let bias = Float.min bias 0.949 in
      let rng = Random.State.make [| levels; int_of_float (bias *. 1000.) |] in
      let values = Bmodel.generate ~rng ~bias ~levels ~total in
      abs_float (Array.fold_left ( +. ) 0. values -. total) < 1e-6 *. (1. +. total))

let prop_coarsen_preserves_mean =
  QCheck.Test.make ~name:"coarsen preserves mean rate" ~count:50
    (QCheck.make
       QCheck.Gen.(
         let* k = 1 -- 4 in
         let* groups = 1 -- 8 in
         let* rates =
           array_size (return (k * groups)) (float_bound_inclusive 50.)
         in
         return (k, rates)))
    (fun (k, rates) ->
      let t = Trace.create ~dt:1. rates in
      let c = Trace.coarsen t k in
      abs_float (Trace.mean_rate c -. Trace.mean_rate t) < 1e-9)

let test_trace_combinators () =
  let a = Trace.create ~dt:1. [| 1.; 2.; 3. |] in
  let b = Trace.create ~dt:1. [| 10.; 20.; 30. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 11.; 22.; 33. |]
    (Trace.add a b).Trace.rates;
  Alcotest.(check (array (float 1e-12))) "concat"
    [| 1.; 2.; 3.; 10.; 20.; 30. |]
    (Trace.concat a b).Trace.rates;
  Alcotest.(check (array (float 1e-12))) "map_rates" [| 2.; 4.; 6. |]
    (Trace.map_rates (fun r -> 2. *. r) a).Trace.rates;
  Alcotest.(check bool) "dt mismatch rejected" true
    (try
       ignore (Trace.add a (Trace.create ~dt:2. [| 1.; 1.; 1. |]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative map rejected" true
    (try
       ignore (Trace.map_rates (fun r -> r -. 5.) a);
       false
     with Invalid_argument _ -> true)

let test_trace_io_roundtrip () =
  let t = Trace.create ~dt:0.25 [| 1.5; 0.; 3.25; 100.125 |] in
  let back = Workload.Trace_io.of_string (Workload.Trace_io.to_string t) in
  Alcotest.check (approx 1e-15) "dt preserved" t.Trace.dt back.Trace.dt;
  Alcotest.(check (array (float 1e-15))) "rates preserved" t.Trace.rates
    back.Trace.rates;
  let path = Filename.temp_file "rodtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace_io.save t ~path;
      let loaded = Workload.Trace_io.load ~path in
      Alcotest.(check (array (float 1e-15))) "file round-trip" t.Trace.rates
        loaded.Trace.rates)

let test_trace_io_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects " ^ String.escaped text) true
        (try
           ignore (Workload.Trace_io.of_string text);
           false
         with Failure _ | Invalid_argument _ -> true))
    [ ""; "nonsense\n1\n2\n"; "# rodtrace dt=abc\n1\n"; "# rodtrace dt=1\nxyz\n" ]

let suite =
  [
    Alcotest.test_case "moments" `Quick test_moments;
    Alcotest.test_case "trace combinators" `Quick test_trace_combinators;
    Alcotest.test_case "trace io roundtrip" `Quick test_trace_io_roundtrip;
    Alcotest.test_case "trace io rejects garbage" `Quick
      test_trace_io_rejects_garbage;
    Alcotest.test_case "correlation" `Quick test_correlation;
    Alcotest.test_case "autocorrelation/percentile" `Quick
      test_autocorrelation_and_percentile;
    Alcotest.test_case "trace basics" `Quick test_trace_basics;
    Alcotest.test_case "trace validation" `Quick test_trace_validation;
    Alcotest.test_case "bmodel conservation" `Quick test_bmodel_conservation;
    Alcotest.test_case "bmodel flat at bias 0.5" `Quick test_bmodel_flat_at_half;
    Alcotest.test_case "bmodel cv calibration" `Quick test_bmodel_cv_calibration;
    Alcotest.test_case "PKT/TCP/HTTP cv ordering" `Quick test_trace_kinds_ordering;
    Alcotest.test_case "self-similarity across scales" `Slow test_self_similarity;
    Alcotest.test_case "hurst discriminates" `Slow test_hurst_discriminates;
    Alcotest.test_case "sinusoid and flash crowd" `Quick
      test_sinusoid_and_flash_crowd;
    Alcotest.test_case "arrival generation" `Quick test_arrival_generation;
    QCheck_alcotest.to_alcotest prop_bmodel_conserves;
    QCheck_alcotest.to_alcotest prop_coarsen_preserves_mean;
  ]
