(* Tests of the core library: problem/plan algebra, Theorem 1, metrics,
   the ROD algorithm, clustering and the exhaustive optimum. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Plan = Rod.Plan
module Ideal = Rod.Ideal
module Metrics = Rod.Metrics
module Rod_algorithm = Rod.Rod_algorithm
module Clustering = Rod.Clustering
module Optimal = Rod.Optimal

let approx eps = Alcotest.float eps

let example2_problem ?(caps = Vec.of_list [ 1.; 1. ]) () =
  Problem.of_graph (Query.Builder.example2 ()) ~caps

let random_problem seed ~n_inputs ~ops_per_tree ~n_nodes =
  let rng = Random.State.make [| seed |] in
  let g = Query.Randgraph.generate_trees ~rng ~n_inputs ~ops_per_tree in
  Problem.of_graph g ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)

let random_assignment rng problem =
  Array.init (Problem.n_ops problem) (fun _ ->
      Random.State.int rng (Problem.n_nodes problem))

let test_problem_validation () =
  Alcotest.check_raises "zero column rejected"
    (Invalid_argument
       "Problem.create: some rate variable carries no load (all-zero column)")
    (fun () ->
      ignore
        (Problem.create
           ~lo:(Mat.of_rows [ Vec.of_list [ 1.; 0. ] ])
           ~caps:(Vec.ones 1)));
  Alcotest.check_raises "nonpositive capacity rejected"
    (Invalid_argument "Problem.create: capacities must be strictly positive")
    (fun () ->
      ignore
        (Problem.create
           ~lo:(Mat.of_rows [ Vec.of_list [ 1. ] ])
           ~caps:(Vec.of_list [ 0. ])))

let test_plan_matrices () =
  let problem = example2_problem () in
  (* Plan (a): {o1,o4} on node 0, {o2,o3} on node 1. *)
  let plan = Plan.make problem [| 0; 1; 1; 0 |] in
  let ln = Plan.node_loads plan in
  Alcotest.(check (list (float 1e-9))) "node 0 loads" [ 4.; 2. ]
    (Vec.to_list (Mat.row ln 0));
  Alcotest.(check (list (float 1e-9))) "node 1 loads" [ 6.; 9. ]
    (Vec.to_list (Mat.row ln 1));
  (* L^n = A L^o must hold by construction. *)
  let by_matmul = Mat.matmul (Plan.allocation_matrix plan) problem.Problem.lo in
  Alcotest.(check bool) "A L^o = node_loads" true (Mat.equal by_matmul ln);
  Alcotest.(check (list int)) "ops on node 0" [ 0; 3 ] (Plan.ops_on plan 0);
  (* Weights: w_ik = (ln_ik / l_k) / (C_i / C_T); here C_i/C_T = 1/2. *)
  let w = Plan.weight_matrix plan in
  Alcotest.check (approx 1e-9) "w00" (4. /. 10. *. 2.) (Mat.get w 0 0);
  Alcotest.check (approx 1e-9) "w11" (9. /. 11. *. 2.) (Mat.get w 1 1)

let test_plan_feasibility () =
  let problem = example2_problem () in
  let plan = Plan.make problem [| 0; 0; 1; 1 |] in
  (* node 0: 10 r1 <= 1; node 1: 11 r2 <= 1. *)
  Alcotest.(check bool) "inside" true
    (Plan.is_feasible_at plan ~rates:(Vec.of_list [ 0.09; 0.09 ]));
  Alcotest.(check bool) "outside" false
    (Plan.is_feasible_at plan ~rates:(Vec.of_list [ 0.11; 0.01 ]));
  let u = Plan.utilizations plan ~rates:(Vec.of_list [ 0.05; 0.05 ]) in
  Alcotest.check (approx 1e-9) "node0 utilization" 0.5 u.(0);
  Alcotest.check (approx 1e-9) "node1 utilization" 0.55 u.(1)

(* Theorem 1: the ideal matrix's feasible set is the whole ideal simplex
   (ratio 1), and its columns sum to l. *)
let test_ideal_matrix () =
  let problem = random_problem 21 ~n_inputs:3 ~ops_per_tree:10 ~n_nodes:4 in
  let ideal = Ideal.matrix problem in
  let l = Problem.total_coefficients problem in
  Alcotest.(check bool) "columns sum to l" true
    (Vec.equal ~eps:1e-9 l (Mat.col_sums ideal));
  let est =
    Feasible.Volume.ratio_qmc ~ln:ideal ~caps:problem.Problem.caps ~l
      ~samples:4096 ()
  in
  Alcotest.check (approx 1e-9) "ideal achieves ratio 1" 1. est.Feasible.Volume.ratio

let test_ideal_volume_formula () =
  let problem = example2_problem () in
  Alcotest.check (approx 1e-12) "C_T^d / (d! prod l)" (4. /. 220.)
    (Ideal.volume problem)

(* Theorem 1 as a property: no plan's feasible ratio exceeds 1 (every
   sampled point of any plan's feasible set lies in the ideal simplex,
   so the QMC ratio is a true ratio), and the ideal hyperplane is a
   necessary condition. *)
let prop_no_plan_beats_ideal =
  QCheck.Test.make ~name:"no plan exceeds the ideal feasible set" ~count:25
    (QCheck.make QCheck.Gen.(pair (0 -- 1000) (2 -- 4)))
    (fun (seed, n_nodes) ->
      let problem = random_problem seed ~n_inputs:2 ~ops_per_tree:6 ~n_nodes in
      let rng = Random.State.make [| seed + 1 |] in
      let plan = Plan.make problem (random_assignment rng problem) in
      let est = Plan.volume_qmc ~samples:512 plan in
      est.Feasible.Volume.ratio <= 1. +. 1e-9)

(* Column conservation: sum_i l^n_ik = l_k for every plan (§2.3). *)
let prop_column_conservation =
  QCheck.Test.make ~name:"node loads conserve column sums" ~count:50
    (QCheck.make QCheck.Gen.(pair (0 -- 1000) (1 -- 5)))
    (fun (seed, n_nodes) ->
      let problem = random_problem seed ~n_inputs:3 ~ops_per_tree:5 ~n_nodes in
      let rng = Random.State.make [| seed * 3 |] in
      let plan = Plan.make problem (random_assignment rng problem) in
      Vec.equal ~eps:1e-6
        (Problem.total_coefficients problem)
        (Mat.col_sums (Plan.node_loads plan)))

let test_metrics_on_ideal_weights () =
  (* A plan that happens to realize the ideal matrix: two identical
     operators on two identical nodes. *)
  let lo = Mat.of_rows [ Vec.of_list [ 1.; 2. ]; Vec.of_list [ 1.; 2. ] ] in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let plan = Plan.make problem [| 0; 1 |] in
  Alcotest.(check bool) "weights are ideal" true (Ideal.weight_matrix_is_ideal plan);
  let s = Metrics.summary plan in
  Alcotest.check (approx 1e-9) "r equals ideal distance" (1. /. sqrt 2.)
    s.Metrics.plane_distance;
  Alcotest.check (approx 1e-9) "r/r* = 1" 1. s.Metrics.plane_distance_ratio;
  Alcotest.check (approx 1e-9) "MMAD bound = 1" 1. s.Metrics.mmad_volume_bound;
  (* d=2, r = 1/sqrt 2: bound = 2! * (pi r^2) / 2^2 = pi/4. *)
  Alcotest.check (approx 1e-9) "MMPD sphere bound = pi/4" (Float.pi /. 4.)
    s.Metrics.mmpd_volume_bound

(* The MMAD product is a valid lower bound and 1 an upper bound on the
   feasible ratio. *)
let prop_mmad_bound_sandwiches_ratio =
  QCheck.Test.make ~name:"MMAD and MMPD bounds <= QMC ratio <= 1" ~count:20
    (QCheck.make QCheck.Gen.(0 -- 500))
    (fun seed ->
      let problem = random_problem seed ~n_inputs:2 ~ops_per_tree:8 ~n_nodes:3 in
      let rng = Random.State.make [| seed + 17 |] in
      let plan = Plan.make problem (random_assignment rng problem) in
      let est = Plan.volume_qmc ~samples:4096 plan in
      let bound = Metrics.mmad_volume_bound plan in
      let sphere = Metrics.mmpd_volume_bound plan in
      (* QMC error margin on the lower side. *)
      bound <= est.Feasible.Volume.ratio +. 0.02
      && sphere <= est.Feasible.Volume.ratio +. 0.02
      && est.Feasible.Volume.ratio <= 1. +. 1e-9)

let test_rod_operator_ordering () =
  let problem = example2_problem () in
  (* Norms: o1=4, o2=6, o3=9, o4=2 -> order o3, o2, o1, o4. *)
  Alcotest.(check (list int)) "descending norm" [ 2; 1; 0; 3 ]
    (Rod_algorithm.order_operators problem)

let test_rod_on_example2 () =
  let problem = example2_problem () in
  let rod_plan = Rod_algorithm.plan problem in
  let rod_ratio = (Plan.volume_qmc ~samples:8192 rod_plan).Feasible.Volume.ratio in
  (* ROD must match or beat every Table 2 style plan. *)
  List.iter
    (fun (name, assignment) ->
      let ratio =
        (Plan.volume_qmc ~samples:8192 (Plan.make problem assignment))
          .Feasible.Volume.ratio
      in
      Alcotest.(check bool)
        (Printf.sprintf "ROD (%.3f) >= %s (%.3f)" rod_ratio name ratio)
        true
        (rod_ratio >= ratio -. 0.01))
    Query.Builder.example2_plans

let test_rod_deterministic () =
  let problem = random_problem 5 ~n_inputs:4 ~ops_per_tree:12 ~n_nodes:5 in
  let a = Rod_algorithm.place problem in
  let b = Rod_algorithm.place problem in
  Alcotest.(check (array int)) "same assignment" a b

let test_rod_uses_all_nodes () =
  let problem = random_problem 9 ~n_inputs:5 ~ops_per_tree:20 ~n_nodes:8 in
  let plan = Rod_algorithm.plan problem in
  let counts = Plan.op_counts plan in
  Alcotest.(check bool) "no empty node" true (Array.for_all (fun c -> c > 0) counts)

let test_rod_policies_agree_on_validity () =
  let rng = Random.State.make [| 31 |] in
  let g = Query.Randgraph.generate_trees ~rng ~n_inputs:3 ~ops_per_tree:8 in
  let problem = Problem.of_graph g ~caps:(Problem.homogeneous_caps ~n:3 ~cap:1.) in
  List.iter
    (fun policy ->
      let a = Rod_algorithm.place ~policy problem in
      Alcotest.(check int) "assignment length" (Problem.n_ops problem)
        (Array.length a))
    [
      Rod_algorithm.Max_plane_distance;
      Rod_algorithm.First_fit;
      Rod_algorithm.Min_new_arcs g;
    ]

let test_rod_min_new_arcs_cuts_fewer () =
  let rng = Random.State.make [| 47 |] in
  let g = Query.Randgraph.generate_trees ~rng ~n_inputs:4 ~ops_per_tree:15 in
  let model = Query.Load_model.derive g in
  let problem = Problem.of_model model ~caps:(Problem.homogeneous_caps ~n:4 ~cap:1.) in
  let cuts assignment =
    List.length (Clustering.cut_arcs ~model ~assignment)
  in
  let plain = cuts (Rod_algorithm.place problem) in
  let aware = cuts (Rod_algorithm.place ~policy:(Rod_algorithm.Min_new_arcs g) problem) in
  Alcotest.(check bool)
    (Printf.sprintf "connectivity-aware (%d) <= plain (%d)" aware plain)
    true (aware <= plain)

(* §6.1: with a lower bound, ROD optimizes the conditional region. *)
let test_rod_lower_bound_variant () =
  let problem = random_problem 3 ~n_inputs:3 ~ops_per_tree:10 ~n_nodes:3 in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  (* A lower bound consuming 40% of capacity, spread evenly. *)
  let d = Problem.dim problem in
  let lower = Vec.init d (fun k -> 0.4 *. c_total /. float_of_int d /. l.(k)) in
  let base = Rod_algorithm.plan problem in
  let bounded = Rod_algorithm.plan ~lower problem in
  let ratio plan =
    (Plan.volume_qmc ~samples:8192 ~lower plan).Feasible.Volume.ratio
  in
  Alcotest.(check bool)
    (Printf.sprintf "lower-bound-aware (%.3f) >= base - noise (%.3f)"
       (ratio bounded) (ratio base))
    true
    (ratio bounded >= ratio base -. 0.05)

let test_optimal_small_instance () =
  (* Two independent unit operators on two unit nodes.  The optimum
     splits them: the feasible set is the unit square (area 1), half of
     the ideal simplex r1 + r2 <= 2 (area 2) — and the ideal is not
     achievable here, so 0.5 is the best possible ratio.  Co-location
     gives the triangle r1 + r2 <= 1 (ratio 0.25). *)
  let lo = Mat.of_rows [ Vec.of_list [ 1.; 0. ]; Vec.of_list [ 0.; 1. ] ] in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let result = Optimal.search ~samples:2048 problem in
  Alcotest.check (approx 0.01) "optimal ratio 1/2" 0.5 result.Optimal.ratio;
  Alcotest.(check bool) "split assignment" true
    (result.Optimal.assignment.(0) <> result.Optimal.assignment.(1));
  Alcotest.(check int) "symmetry halves the space" 2 result.Optimal.explored

let test_optimal_guard () =
  let problem = random_problem 1 ~n_inputs:2 ~ops_per_tree:20 ~n_nodes:4 in
  Alcotest.(check bool) "guard triggers" true
    (try
       ignore (Optimal.search ~max_assignments:1000 problem);
       false
     with Invalid_argument _ -> true)

let prop_rod_close_to_optimal =
  (* TBLOPT measures a worst case around 0.75 of optimal, so 0.65 gives
     the property room against unlucky QCheck seeds. *)
  QCheck.Test.make ~name:"ROD within 35% of exhaustive optimum (small)" ~count:8
    (QCheck.make QCheck.Gen.(0 -- 100))
    (fun seed ->
      let problem = random_problem seed ~n_inputs:2 ~ops_per_tree:5 ~n_nodes:2 in
      let best = Optimal.search ~samples:1024 problem in
      let rod_ratio =
        Optimal.ratio_of_assignment ~samples:1024 problem
          (Rod_algorithm.place problem)
      in
      rod_ratio >= (0.65 *. best.Optimal.ratio) -. 1e-9)

(* --- incremental placement --- *)

let test_incremental_respects_pins () =
  let problem = random_problem 4 ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
  let m = Problem.n_ops problem in
  let fixed =
    Array.init m (fun j -> if j mod 3 = 0 then Some (j mod 4) else None)
  in
  let assignment = Rod_algorithm.place_incremental ~fixed problem in
  Array.iteri
    (fun j pin ->
      match pin with
      | Some node -> Alcotest.(check int) "pin respected" node assignment.(j)
      | None ->
        Alcotest.(check bool) "placed somewhere" true
          (assignment.(j) >= 0 && assignment.(j) < 4))
    fixed

let test_incremental_all_free_equals_place () =
  let problem = random_problem 6 ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
  let fixed = Array.make (Problem.n_ops problem) None in
  Alcotest.(check (array int)) "no pins = plain ROD"
    (Rod_algorithm.place problem)
    (Rod_algorithm.place_incremental ~fixed problem)

let test_incremental_balances_around_pins () =
  (* Four identical unit ops, two pinned to node 0: the two free ops
     must land on node 1 to balance. *)
  let lo = Mat.init 4 1 (fun _ _ -> 1.) in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let fixed = [| Some 0; Some 0; None; None |] in
  let assignment = Rod_algorithm.place_incremental ~fixed problem in
  Alcotest.(check int) "free op 2 on node 1" 1 assignment.(2);
  Alcotest.(check int) "free op 3 on node 1" 1 assignment.(3)

let test_incremental_new_query_scenario () =
  (* Deploy a graph, then "add a query": extend the problem with extra
     rows, pin the old operators, place only the new ones.  The result
     should stay close to replacing from scratch. *)
  let base = random_problem 9 ~n_inputs:3 ~ops_per_tree:6 ~n_nodes:4 in
  let base_assignment = Rod_algorithm.place base in
  let extra = random_problem 10 ~n_inputs:3 ~ops_per_tree:4 ~n_nodes:4 in
  let combined_lo =
    Mat.of_rows
      (List.init (Problem.n_ops base) (Problem.op_load base)
      @ List.init (Problem.n_ops extra) (Problem.op_load extra))
  in
  let problem = Problem.create ~lo:combined_lo ~caps:base.Problem.caps in
  let fixed =
    Array.init (Problem.n_ops problem) (fun j ->
        if j < Problem.n_ops base then Some base_assignment.(j) else None)
  in
  let incremental = Rod_algorithm.place_incremental ~fixed problem in
  let scratch = Rod_algorithm.place problem in
  let ratio a =
    (Plan.volume_qmc ~samples:4096 (Plan.make problem a)).Feasible.Volume.ratio
  in
  Alcotest.(check bool)
    (Printf.sprintf "incremental (%.3f) within 25%% of scratch (%.3f)"
       (ratio incremental) (ratio scratch))
    true
    (ratio incremental >= (0.75 *. ratio scratch) -. 0.02)

let test_place_traced () =
  let problem = random_problem 3 ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
  let assignment, trace = Rod_algorithm.place_traced problem in
  Alcotest.(check (array int)) "trace agrees with place"
    (Rod_algorithm.place problem) assignment;
  Alcotest.(check int) "one decision per operator" (Problem.n_ops problem)
    (List.length trace);
  List.iteri
    (fun rank d ->
      Alcotest.(check int) "ranks sequential" rank d.Rod_algorithm.rank;
      Alcotest.(check int) "trace node matches assignment"
        assignment.(d.Rod_algorithm.op) d.Rod_algorithm.node;
      Alcotest.(check bool) "class-one count bounded" true
        (d.Rod_algorithm.class_one_count >= 0
        && d.Rod_algorithm.class_one_count <= 4))
    trace;
  (* Norms nonincreasing: the heaviest operator goes first. *)
  let norms = List.map (fun d -> d.Rod_algorithm.norm) trace in
  Alcotest.(check bool) "norms nonincreasing" true
    (List.for_all2 ( >= )
       (List.filteri (fun i _ -> i < List.length norms - 1) norms)
       (List.tl norms));
  (* Early placements on a 4-node cluster with 24 small ops are free. *)
  (match trace with
  | first :: _ ->
    Alcotest.(check bool) "first move is class I" true
      first.Rod_algorithm.class_one
  | [] -> Alcotest.fail "empty trace")

(* --- failure recovery --- *)

let test_degraded_problem () =
  let problem =
    Problem.create
      ~lo:(Mat.init 3 2 (fun _ k -> float_of_int (k + 1)))
      ~caps:(Vec.of_list [ 3.; 2.; 1. ])
  in
  let degraded = Rod.Failure.degraded_problem problem ~failed:1 in
  Alcotest.(check (list (float 1e-12))) "caps without node 1" [ 3.; 1. ]
    (Vec.to_list degraded.Problem.caps);
  Alcotest.(check int) "same operators" 3 (Problem.n_ops degraded);
  Alcotest.(check bool) "bad index rejected" true
    (try
       ignore (Rod.Failure.degraded_problem problem ~failed:7);
       false
     with Invalid_argument _ -> true)

let test_recovery_pins_survivors () =
  let problem = random_problem 77 ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
  let assignment = Rod_algorithm.place problem in
  let failed = 2 in
  let recovered = Rod.Failure.recovery_assignment problem ~assignment ~failed in
  Array.iteri
    (fun j old_node ->
      if old_node <> failed then begin
        let expected = if old_node < failed then old_node else old_node - 1 in
        Alcotest.(check int)
          (Printf.sprintf "survivor %d unmoved" j)
          expected recovered.(j)
      end
      else
        Alcotest.(check bool)
          (Printf.sprintf "orphan %d on a live node" j)
          true
          (recovered.(j) >= 0 && recovered.(j) < 3))
    assignment

let test_survival_known_geometry () =
  (* Two independent unit operators split over two unit nodes: before =
     unit square (1); after failing node 1, both ops share node 0:
     r1 + r2 <= 1, volume 1/2 -> survival 1/2. *)
  let lo = Mat.of_rows [ Vec.of_list [ 1.; 0. ]; Vec.of_list [ 0.; 1. ] ] in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let r = Rod.Failure.survival ~samples:16384 problem ~assignment:[| 0; 1 |] ~failed:1 in
  Alcotest.check (approx 0.01) "before = unit square" 1. r.Rod.Failure.volume_before;
  Alcotest.check (approx 0.01) "after = half" 0.5 r.Rod.Failure.volume_after;
  Alcotest.check (approx 0.02) "survival" 0.5 r.Rod.Failure.survival;
  Alcotest.check (approx 1e-9) "capacity bound" 0.25 r.Rod.Failure.capacity_bound

let test_mean_survival_bounds () =
  let problem = random_problem 31 ~n_inputs:3 ~ops_per_tree:6 ~n_nodes:3 in
  let assignment = Rod_algorithm.place problem in
  let s = Rod.Failure.mean_survival ~samples:2048 problem ~assignment in
  Alcotest.(check bool)
    (Printf.sprintf "mean survival %.3f in (0, 1]" s)
    true
    (s > 0. && s <= 1.)

(* --- local search --- *)

let test_local_search_never_hurts () =
  for seed = 1 to 5 do
    let problem = random_problem seed ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
    let rod = Rod_algorithm.place problem in
    let base = Optimal.ratio_of_assignment ~samples:1024 problem rod in
    let out = Rod.Local_search.improve ~samples:1024 problem rod in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: polished %.3f >= rod %.3f" seed
         out.Rod.Local_search.ratio base)
      true
      (out.Rod.Local_search.ratio >= base -. 1e-9)
  done

let test_local_search_fixes_bad_start () =
  (* Two independent unit ops on two nodes, both dumped on node 0: a
     single move doubles the feasible set; local search must find it. *)
  let lo = Mat.of_rows [ Vec.of_list [ 1.; 0. ]; Vec.of_list [ 0.; 1. ] ] in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 1.; 1. ]) in
  let out = Rod.Local_search.improve ~samples:2048 problem [| 0; 0 |] in
  Alcotest.(check bool) "split found" true
    (out.Rod.Local_search.assignment.(0) <> out.Rod.Local_search.assignment.(1));
  Alcotest.check (approx 0.02) "near-optimal ratio" 0.5 out.Rod.Local_search.ratio;
  Alcotest.(check bool) "at least one move" true (out.Rod.Local_search.moves >= 1)

let test_local_search_closes_gap_to_optimal () =
  let improved = ref 0 in
  for seed = 10 to 15 do
    let problem = random_problem seed ~n_inputs:2 ~ops_per_tree:5 ~n_nodes:2 in
    let best = Optimal.search ~samples:1024 problem in
    let polished = Rod.Local_search.rod_polished ~samples:1024 problem in
    Alcotest.(check bool)
      (Printf.sprintf "polished %.3f <= optimal %.3f"
         polished.Rod.Local_search.ratio best.Optimal.ratio)
      true
      (polished.Rod.Local_search.ratio <= best.Optimal.ratio +. 1e-9);
    if
      polished.Rod.Local_search.ratio
      >= (0.99 *. best.Optimal.ratio) -. 1e-9
    then incr improved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/6 instances within 1%% of optimal" !improved)
    true (!improved >= 4)

let test_local_search_idempotent_at_optimum () =
  (* Starting from an exhaustive optimum, no move can improve: local
     search must return immediately with the same assignment. *)
  let problem = random_problem 42 ~n_inputs:2 ~ops_per_tree:4 ~n_nodes:2 in
  let best = Optimal.search ~samples:1024 problem in
  let out =
    Rod.Local_search.improve ~samples:1024 problem best.Optimal.assignment
  in
  Alcotest.(check int) "no moves" 0 out.Rod.Local_search.moves;
  Alcotest.(check (array int)) "assignment unchanged" best.Optimal.assignment
    out.Rod.Local_search.assignment;
  Alcotest.check (approx 1e-9) "same ratio" best.Optimal.ratio
    out.Rod.Local_search.ratio

let test_local_search_terminates () =
  let problem = random_problem 2 ~n_inputs:4 ~ops_per_tree:10 ~n_nodes:5 in
  let out =
    Rod.Local_search.improve ~samples:256 ~max_passes:3 problem
      (Rod_algorithm.place problem)
  in
  Alcotest.(check bool) "bounded passes" true (out.Rod.Local_search.passes <= 3)

(* --- ablation variants --- *)

let test_ablation_variants_valid () =
  let problem = random_problem 7 ~n_inputs:3 ~ops_per_tree:8 ~n_nodes:4 in
  List.iter
    (fun variant ->
      let a = Rod.Ablation.place variant problem in
      Alcotest.(check int)
        (Rod.Ablation.name variant ^ " length")
        (Problem.n_ops problem) (Array.length a);
      Alcotest.(check (array int))
        (Rod.Ablation.name variant ^ " deterministic")
        a
        (Rod.Ablation.place variant problem))
    Rod.Ablation.all

let test_ablation_full_matches_published () =
  let problem = random_problem 8 ~n_inputs:4 ~ops_per_tree:10 ~n_nodes:5 in
  Alcotest.(check (array int)) "Full delegates to Rod_algorithm"
    (Rod_algorithm.place problem)
    (Rod.Ablation.place Rod.Ablation.Full problem)

let test_ablation_full_beats_mmad_only () =
  (* Averaged over several instances: the combination dominates the
     pure per-stream balancer, which ignores weight combinations. *)
  let mean variant =
    let acc = ref 0. in
    for seed = 1 to 6 do
      let problem = random_problem seed ~n_inputs:4 ~ops_per_tree:10 ~n_nodes:6 in
      let a = Rod.Ablation.place variant problem in
      acc :=
        !acc
        +. (Plan.volume_qmc ~samples:2048 (Plan.make problem a))
             .Feasible.Volume.ratio
    done;
    !acc /. 6.
  in
  let full = mean Rod.Ablation.Full and mmad = mean Rod.Ablation.Mmad_only in
  Alcotest.(check bool)
    (Printf.sprintf "full (%.3f) > MMAD-only (%.3f)" full mmad)
    true (full > mmad)

(* --- heterogeneous capacities --- *)

let test_heterogeneous_capacity_proportional () =
  (* Eight identical unit operators on nodes of capacity 3 and 1: the
     resilient plan loads nodes in proportion to capacity. *)
  let lo = Mat.init 8 1 (fun _ _ -> 1.) in
  let problem = Problem.create ~lo ~caps:(Vec.of_list [ 3.; 1. ]) in
  let plan = Rod_algorithm.plan problem in
  let counts = Plan.op_counts plan in
  Alcotest.(check int) "six ops on the big node" 6 counts.(0);
  Alcotest.(check int) "two ops on the small node" 2 counts.(1);
  let u = Plan.utilizations plan ~rates:(Vec.of_list [ 0.2 ]) in
  Alcotest.check (approx 1e-9) "equal utilization" u.(0) u.(1)

let test_heterogeneous_ideal_ratio_one () =
  let problem =
    Problem.create
      ~lo:(Mat.init 12 2 (fun j k -> if j mod 2 = k then 2. else 1.))
      ~caps:(Vec.of_list [ 2.; 1.; 0.5 ])
  in
  let ideal = Rod.Ideal.matrix problem in
  let est =
    Feasible.Volume.ratio_qmc ~ln:ideal ~caps:problem.Problem.caps
      ~l:(Problem.total_coefficients problem)
      ~samples:4096 ()
  in
  Alcotest.check (approx 1e-9) "heterogeneous ideal ratio 1" 1.
    est.Feasible.Volume.ratio

let test_clustering_trivial () =
  let c = Clustering.trivial ~n_ops:4 in
  Alcotest.(check int) "clusters" 4 c.Clustering.n_clusters;
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3 |] c.Clustering.op_cluster

let clustered_chain_model () =
  (* A chain with expensive arcs: transfer cost 10x the processing
     cost, so clustering should fold the chain. *)
  let g = Query.Builder.chain ~xfer:1e-2 ~n_ops:4 ~cost:1e-3 ~sel:1. () in
  Query.Load_model.derive g

let test_clustering_folds_expensive_arcs () =
  let model = clustered_chain_model () in
  let c =
    Clustering.cluster ~model ~policy:Clustering.Heaviest_arc_first ~threshold:1.
      ~max_weight_frac:1. ()
  in
  Alcotest.(check int) "one cluster" 1 c.Clustering.n_clusters

let test_clustering_respects_threshold () =
  let g = Query.Builder.chain ~xfer:1e-6 ~n_ops:4 ~cost:1e-3 ~sel:1. () in
  let model = Query.Load_model.derive g in
  let c =
    Clustering.cluster ~model ~policy:Clustering.Heaviest_arc_first ~threshold:1. ()
  in
  Alcotest.(check int) "cheap arcs stay cut" 4 c.Clustering.n_clusters

let test_clustering_preserves_load () =
  let model = clustered_chain_model () in
  let problem =
    Problem.of_model model ~caps:(Problem.homogeneous_caps ~n:2 ~cap:1.)
  in
  let c =
    Clustering.cluster ~model ~policy:Clustering.Min_weight_pair ~threshold:0.5
      ~max_weight_frac:0.6 ()
  in
  let reduced = Clustering.clustered_problem problem c in
  Alcotest.(check bool) "total coefficients preserved" true
    (Vec.equal ~eps:1e-9
       (Problem.total_coefficients problem)
       (Problem.total_coefficients reduced))

let test_clustering_expand () =
  let model = clustered_chain_model () in
  let c =
    Clustering.cluster ~model ~policy:Clustering.Heaviest_arc_first ~threshold:1.
      ~max_weight_frac:1. ()
  in
  let expanded = Clustering.expand c [| 1 |] in
  Alcotest.(check (array int)) "all ops follow their cluster" [| 1; 1; 1; 1 |]
    expanded

let test_effective_loads_add_comm () =
  let g = Query.Builder.chain ~xfer:2e-3 ~n_ops:2 ~cost:1e-3 ~sel:1. () in
  let model = Query.Load_model.derive g in
  (* Input receive cost is zero here (chain sets only op xfer). *)
  let split = Clustering.effective_node_loads ~model ~n_nodes:2 ~assignment:[| 0; 1 |] in
  let together = Clustering.effective_node_loads ~model ~n_nodes:2 ~assignment:[| 0; 0 |] in
  (* Split: node0 = op0 (1e-3) + send (2e-3); node1 = op1 (1e-3) + recv. *)
  Alcotest.check (approx 1e-12) "sender pays" 3e-3 (Mat.get split 0 0);
  Alcotest.check (approx 1e-12) "receiver pays" 3e-3 (Mat.get split 1 0);
  Alcotest.check (approx 1e-12) "co-located pays nothing" 2e-3
    (Mat.get together 0 0)

let test_select_best_prefers_clustering_under_heavy_comm () =
  let model = clustered_chain_model () in
  let caps = Problem.homogeneous_caps ~n:2 ~cap:1. in
  let clustering, assignment =
    Clustering.select_best ~max_weight_frac:1.0 ~model ~caps ()
  in
  ignore clustering;
  (* With transfer 10x processing, any cut arc dominates load; the best
     plan keeps the chain together. *)
  let distinct = Array.to_list assignment |> List.sort_uniq compare in
  Alcotest.(check int) "chain kept on one node" 1 (List.length distinct)

let suite =
  [
    Alcotest.test_case "problem validation" `Quick test_problem_validation;
    Alcotest.test_case "plan matrices" `Quick test_plan_matrices;
    Alcotest.test_case "plan feasibility" `Quick test_plan_feasibility;
    Alcotest.test_case "ideal matrix (Theorem 1)" `Quick test_ideal_matrix;
    Alcotest.test_case "ideal volume formula" `Quick test_ideal_volume_formula;
    Alcotest.test_case "metrics on ideal weights" `Quick test_metrics_on_ideal_weights;
    Alcotest.test_case "ROD operator ordering" `Quick test_rod_operator_ordering;
    Alcotest.test_case "ROD on example 2" `Quick test_rod_on_example2;
    Alcotest.test_case "ROD deterministic" `Quick test_rod_deterministic;
    Alcotest.test_case "ROD uses all nodes" `Quick test_rod_uses_all_nodes;
    Alcotest.test_case "ROD policies valid" `Quick test_rod_policies_agree_on_validity;
    Alcotest.test_case "ROD min-new-arcs cuts fewer" `Quick
      test_rod_min_new_arcs_cuts_fewer;
    Alcotest.test_case "ROD lower-bound variant" `Slow test_rod_lower_bound_variant;
    Alcotest.test_case "optimal on trivial instance" `Quick test_optimal_small_instance;
    Alcotest.test_case "optimal guard" `Quick test_optimal_guard;
    Alcotest.test_case "incremental respects pins" `Quick
      test_incremental_respects_pins;
    Alcotest.test_case "incremental all-free = place" `Quick
      test_incremental_all_free_equals_place;
    Alcotest.test_case "incremental balances around pins" `Quick
      test_incremental_balances_around_pins;
    Alcotest.test_case "incremental new-query scenario" `Quick
      test_incremental_new_query_scenario;
    Alcotest.test_case "place traced" `Quick test_place_traced;
    Alcotest.test_case "degraded problem" `Quick test_degraded_problem;
    Alcotest.test_case "recovery pins survivors" `Quick test_recovery_pins_survivors;
    Alcotest.test_case "survival known geometry" `Quick test_survival_known_geometry;
    Alcotest.test_case "mean survival bounds" `Quick test_mean_survival_bounds;
    Alcotest.test_case "local search never hurts" `Quick
      test_local_search_never_hurts;
    Alcotest.test_case "local search fixes bad start" `Quick
      test_local_search_fixes_bad_start;
    Alcotest.test_case "local search vs optimal" `Slow
      test_local_search_closes_gap_to_optimal;
    Alcotest.test_case "local search idempotent at optimum" `Quick
      test_local_search_idempotent_at_optimum;
    Alcotest.test_case "local search terminates" `Quick
      test_local_search_terminates;
    Alcotest.test_case "ablation variants valid" `Quick test_ablation_variants_valid;
    Alcotest.test_case "ablation Full = published" `Quick
      test_ablation_full_matches_published;
    Alcotest.test_case "ablation Full beats MMAD-only" `Slow
      test_ablation_full_beats_mmad_only;
    Alcotest.test_case "heterogeneous proportional load" `Quick
      test_heterogeneous_capacity_proportional;
    Alcotest.test_case "heterogeneous ideal ratio 1" `Quick
      test_heterogeneous_ideal_ratio_one;
    Alcotest.test_case "clustering trivial" `Quick test_clustering_trivial;
    Alcotest.test_case "clustering folds expensive arcs" `Quick
      test_clustering_folds_expensive_arcs;
    Alcotest.test_case "clustering respects threshold" `Quick
      test_clustering_respects_threshold;
    Alcotest.test_case "clustering preserves load" `Quick test_clustering_preserves_load;
    Alcotest.test_case "clustering expand" `Quick test_clustering_expand;
    Alcotest.test_case "effective loads add comm" `Quick test_effective_loads_add_comm;
    Alcotest.test_case "select_best clusters heavy comm" `Quick
      test_select_best_prefers_clustering_under_heavy_comm;
    QCheck_alcotest.to_alcotest prop_no_plan_beats_ideal;
    QCheck_alcotest.to_alcotest prop_column_conservation;
    QCheck_alcotest.to_alcotest prop_mmad_bound_sandwiches_ratio;
    QCheck_alcotest.to_alcotest prop_rod_close_to_optimal;
  ]
