(* Unit and property tests for the dense linear-algebra substrate. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let approx = Alcotest.float 1e-9

let check_vec msg expected actual =
  Alcotest.(check (list (float 1e-9))) msg (Vec.to_list expected)
    (Vec.to_list actual)

let test_create_and_basis () =
  check_vec "zeros" (Vec.of_list [ 0.; 0.; 0. ]) (Vec.zeros 3);
  check_vec "ones" (Vec.of_list [ 1.; 1. ]) (Vec.ones 2);
  check_vec "basis" (Vec.of_list [ 0.; 1.; 0. ]) (Vec.basis 3 1);
  Alcotest.check_raises "basis out of range"
    (Invalid_argument "Vec.basis: axis out of range") (fun () ->
      ignore (Vec.basis 2 5))

let test_dot_and_norms () =
  let x = Vec.of_list [ 3.; 4. ] in
  Alcotest.check approx "dot" 25. (Vec.dot x x);
  Alcotest.check approx "norm2" 5. (Vec.norm2 x);
  Alcotest.check approx "norm1" 7. (Vec.norm1 x);
  Alcotest.check approx "norm_inf" 4. (Vec.norm_inf x);
  Alcotest.check_raises "dot dimension mismatch"
    (Invalid_argument "Vec.dot: dimensions 2 <> 3") (fun () ->
      ignore (Vec.dot x (Vec.zeros 3)))

let test_arithmetic () =
  let x = Vec.of_list [ 1.; 2. ] and y = Vec.of_list [ 3.; 5. ] in
  check_vec "add" (Vec.of_list [ 4.; 7. ]) (Vec.add x y);
  check_vec "sub" (Vec.of_list [ -2.; -3. ]) (Vec.sub x y);
  check_vec "scale" (Vec.of_list [ 2.; 4. ]) (Vec.scale 2. x);
  check_vec "mul" (Vec.of_list [ 3.; 10. ]) (Vec.mul x y);
  check_vec "div" (Vec.of_list [ 3.; 2.5 ]) (Vec.div y x);
  let acc = Vec.copy y in
  Vec.axpy 2. x acc;
  check_vec "axpy" (Vec.of_list [ 5.; 9. ]) acc

let test_aggregates () =
  let x = Vec.of_list [ 4.; 1.; 3. ] in
  Alcotest.check approx "sum" 8. (Vec.sum x);
  Alcotest.check approx "mean" (8. /. 3.) (Vec.mean x);
  Alcotest.check approx "min" 1. (Vec.min_elt x);
  Alcotest.check approx "max" 4. (Vec.max_elt x);
  Alcotest.(check int) "argmin" 1 (Vec.argmin x);
  Alcotest.(check int) "argmax" 0 (Vec.argmax x)

let test_mat_shapes () =
  let m = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 3 (Mat.cols m);
  Alcotest.check approx "get" 12. (Mat.get m 1 2);
  check_vec "row" (Vec.of_list [ 10.; 11.; 12. ]) (Mat.row m 1);
  check_vec "col" (Vec.of_list [ 1.; 11. ]) (Mat.col m 1);
  let t = Mat.transpose m in
  Alcotest.(check int) "transpose rows" 3 (Mat.rows t);
  check_vec "transpose row" (Vec.of_list [ 2.; 12. ]) (Mat.row t 2)

let test_matmul () =
  let a = Mat.of_rows [ Vec.of_list [ 1.; 2. ]; Vec.of_list [ 3.; 4. ] ] in
  let b = Mat.of_rows [ Vec.of_list [ 5.; 6. ]; Vec.of_list [ 7.; 8. ] ] in
  let c = Mat.matmul a b in
  check_vec "matmul row 0" (Vec.of_list [ 19.; 22. ]) (Mat.row c 0);
  check_vec "matmul row 1" (Vec.of_list [ 43.; 50. ]) (Mat.row c 1);
  let id = Mat.identity 2 in
  Alcotest.(check bool) "identity is neutral" true
    (Mat.equal (Mat.matmul id a) a);
  check_vec "matvec" (Vec.of_list [ 5.; 11. ]) (Mat.matvec a (Vec.of_list [ 1.; 2. ]))

let test_sums () =
  let m = Mat.of_rows [ Vec.of_list [ 1.; 2. ]; Vec.of_list [ 3.; 4. ] ] in
  check_vec "col_sums" (Vec.of_list [ 4.; 6. ]) (Mat.col_sums m);
  check_vec "row_sums" (Vec.of_list [ 3.; 7. ]) (Mat.row_sums m)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () ->
      ignore (Mat.of_rows [ Vec.of_list [ 1. ]; Vec.of_list [ 1.; 2. ] ]))

(* --- properties --- *)

let vec_gen n =
  QCheck.Gen.(array_size (return n) (float_bound_inclusive 100.))

let prop_dot_commutes =
  QCheck.Test.make ~name:"dot commutes" ~count:200
    QCheck.(
      make
        QCheck.Gen.(
          let* n = 1 -- 8 in
          pair (vec_gen n) (vec_gen n)))
    (fun (x, y) -> abs_float (Vec.dot x y -. Vec.dot y x) < 1e-9)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"norm triangle inequality" ~count:200
    QCheck.(
      make
        QCheck.Gen.(
          let* n = 1 -- 8 in
          pair (vec_gen n) (vec_gen n)))
    (fun (x, y) -> Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-9)

let prop_col_sums_additive =
  QCheck.Test.make ~name:"col_sums additive over row append" ~count:100
    QCheck.(
      make
        QCheck.Gen.(
          let* cols = 1 -- 5 in
          let* rows = 1 -- 6 in
          array_size (return rows) (vec_gen cols)))
    (fun rows ->
      let m = Mat.of_rows (Array.to_list rows) in
      let by_hand =
        Array.fold_left
          (fun acc r -> Vec.add acc r)
          (Vec.zeros (Mat.cols m))
          rows
      in
      Vec.equal ~eps:1e-6 by_hand (Mat.col_sums m))

let mat_gen rows cols =
  QCheck.Gen.(array_size (return rows) (vec_gen cols))

let prop_matmul_associative =
  QCheck.Test.make ~name:"matmul associative" ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* a = 1 -- 4 and* b = 1 -- 4 and* c = 1 -- 4 and* d = 1 -- 4 in
         triple (mat_gen a b) (mat_gen b c) (mat_gen c d)))
    (fun (a, b, c) ->
      let a = Mat.of_rows (Array.to_list a) in
      let b = Mat.of_rows (Array.to_list b) in
      let c = Mat.of_rows (Array.to_list c) in
      Mat.equal ~eps:1e-3 (Mat.matmul (Mat.matmul a b) c)
        (Mat.matmul a (Mat.matmul b c)))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:80
    (QCheck.make
       QCheck.Gen.(
         let* r = 1 -- 5 and* c = 1 -- 5 in
         mat_gen r c))
    (fun rows ->
      let m = Mat.of_rows (Array.to_list rows) in
      Mat.equal (Mat.transpose (Mat.transpose m)) m)

let prop_matvec_matches_matmul =
  QCheck.Test.make ~name:"matvec = matmul with a column" ~count:60
    (QCheck.make
       QCheck.Gen.(
         let* r = 1 -- 5 and* c = 1 -- 5 in
         pair (mat_gen r c) (vec_gen c)))
    (fun (rows, x) ->
      let m = Mat.of_rows (Array.to_list rows) in
      let column = Mat.transpose (Mat.of_rows [ x ]) in
      let product = Mat.matmul m column in
      Vec.equal ~eps:1e-6 (Mat.matvec m x) (Mat.col product 0))

let suite =
  [
    Alcotest.test_case "create/basis" `Quick test_create_and_basis;
    Alcotest.test_case "dot/norms" `Quick test_dot_and_norms;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "matrix shapes" `Quick test_mat_shapes;
    Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "row/col sums" `Quick test_sums;
    Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
    QCheck_alcotest.to_alcotest prop_dot_commutes;
    QCheck_alcotest.to_alcotest prop_triangle_inequality;
    QCheck_alcotest.to_alcotest prop_col_sums_additive;
    QCheck_alcotest.to_alcotest prop_matmul_associative;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_matvec_matches_matmul;
  ]
