(* The full loop on a REAL engine, not just the cost simulator:

     1. define a semantic query network (executable operators over
        typed tuples);
     2. run it on sample data and check it computes what it should;
     3. profile it: exact selectivities from counts, per-tuple costs
        from timed replays (the paper's §7.1 methodology);
     4. hand the measured cost model to ROD for a resilient placement;
     5. stress the placement in the discrete-event simulator at rates
        the sample run never saw.

   Run with: dune exec examples/end_to_end.exe *)

module Graph = Query.Graph
module Sop = Spe.Sop
module Tuple = Spe.Tuple
module Value = Spe.Value

(* A small intrusion-detection-flavoured network over two packet
   feeds: per-feed cleaning, per-source volume aggregation, a
   cross-feed correlation join, and an alert thinning stage. *)
let monitoring_network () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        (* 0: drop icmp noise on feed A *)
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        (* 1: per-source byte volume on 2 s windows *)
        ( Sop.aggregate ~name:"volA" ~window:2. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes"); ("n", Sop.Count) ],
          [ Graph.Op_output 0 ] );
        (* 2: heavy hitters only *)
        ( Sop.filter ~name:"heavyA" (fun t -> Tuple.number t "bytes" > 18000.),
          [ Graph.Op_output 1 ] );
        (* 3-5: same pipeline on feed B *)
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        ( Sop.aggregate ~name:"volB" ~window:2. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes"); ("n", Sop.Count) ],
          [ Graph.Op_output 3 ] );
        ( Sop.filter ~name:"heavyB" (fun t -> Tuple.number t "bytes" > 18000.),
          [ Graph.Op_output 4 ] );
        (* 6: sources heavy on BOTH feeds within 4 s *)
        ( Sop.equi_join ~name:"correlate" ~window:4. ~left_key:"group"
            ~right_key:"group" (),
          [ Graph.Op_output 2; Graph.Op_output 5 ] );
        (* 7: final projection for the application *)
        (Sop.project ~name:"alert" [ "l_group"; "l_bytes"; "r_bytes" ],
          [ Graph.Op_output 6 ] );
      ]
    ()

let () =
  let network = monitoring_network () in
  Format.printf "semantic network: %d operators, 2 input feeds@."
    (Spe.Network.n_ops network);

  (* 2. sample run on synthetic packet data. *)
  let rng = Random.State.make [| 1 |] in
  let trace = Workload.Trace.create ~dt:1. (Array.make 20 200.) in
  let inputs =
    [|
      Spe.Datagen.packets ~rng ~trace ~hosts:8 ();
      Spe.Datagen.packets ~rng ~trace ~hosts:8 ();
    |]
  in
  let profile = Spe.Profiler.profile network ~inputs in
  let run = profile.Spe.Profiler.run in
  Format.printf "sample run: %d + %d packets in, %d alerts out@."
    (List.length inputs.(0)) (List.length inputs.(1))
    (List.length run.Spe.Executor.outputs);
  (match run.Spe.Executor.outputs with
  | (_, alert) :: _ -> Format.printf "first alert: %a@." Tuple.pp alert
  | [] -> ());

  (* 3. the measured cost model. *)
  Format.printf "@.measured operator profiles:@.";
  Array.iteri
    (fun j p ->
      Format.printf "  %-10s cost %8.1f ns/tuple   selectivity %6.3f@."
        (Sop.name (Spe.Network.op network j))
        (1e9 *. p.Spe.Profiler.cost)
        p.Spe.Profiler.selectivity)
    profile.Spe.Profiler.per_op;

  (* 4. resilient placement on the measured model. *)
  let caps = Rod.Problem.homogeneous_caps ~n:3 ~cap:1. in
  let problem = Rod.Problem.of_model
      (Query.Load_model.derive profile.Spe.Profiler.graph) ~caps
  in
  let plan = Rod.Rod_algorithm.plan problem in
  Format.printf "@.%a@." Rod.Plan.pp plan;
  let est = Rod.Plan.volume_qmc ~samples:8192 plan in
  Format.printf "feasible-set ratio vs ideal: %.3f@." est.Feasible.Volume.ratio;

  (* 5. stress the placement far beyond the profiled rates.  The join
     makes the model nonlinear, so pick system rates on the balanced ray
     of the two PHYSICAL inputs that land at ~70% utilization of the
     plan (bisection against the true nonlinear loads). *)
  let model = Query.Load_model.derive profile.Spe.Profiler.graph in
  let ln = Rod.Plan.node_loads plan in
  let util_at scale =
    let sys_rates = Linalg.Vec.of_list [ scale; scale ] in
    let vars = Query.Load_model.eval_vars model ~sys_rates in
    Linalg.Vec.max_elt
      (Linalg.Vec.init (Linalg.Mat.rows ln) (fun i ->
           Linalg.Vec.dot (Linalg.Mat.row ln i) vars /. caps.(i)))
  in
  let rec bisect lo hi n =
    if n = 0 then lo
    else
      let mid = (lo +. hi) /. 2. in
      if util_at mid < 0.7 then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  let scale = bisect 0. 1e6 60 in
  Format.printf
    "@.stress rates: %.0f tuples/s per feed (drives the hottest node to 70%%)@."
    scale;
  let verdict =
    Dsim.Probe.probe_point ~duration:10. ~graph:profile.Spe.Profiler.graph
      ~assignment:(Rod.Plan.assignment plan) ~caps
      ~rates:(Linalg.Vec.of_list [ scale; scale ])
      ()
  in
  Format.printf "simulated at stress rates: feasible=%b, max util %.1f%%@."
    verdict.Dsim.Probe.feasible
    (100. *. Dsim.Sim_metrics.max_utilization verdict.Dsim.Probe.metrics)
