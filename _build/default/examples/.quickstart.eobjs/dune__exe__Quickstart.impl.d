examples/quickstart.ml: Deploy Dsim Feasible Format Linalg Query Rod
