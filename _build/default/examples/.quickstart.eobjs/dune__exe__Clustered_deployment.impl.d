examples/clustered_deployment.ml: Array Feasible Format Linalg List Query Random Rod String
