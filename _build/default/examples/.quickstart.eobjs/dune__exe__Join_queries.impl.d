examples/join_queries.ml: Dsim Feasible Format Linalg List Query Rod
