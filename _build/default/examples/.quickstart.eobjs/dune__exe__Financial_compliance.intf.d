examples/financial_compliance.mli:
