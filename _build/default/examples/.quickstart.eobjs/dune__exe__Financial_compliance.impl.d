examples/financial_compliance.ml: Array Baselines Feasible Format Linalg List Printf Query Random Rod
