examples/network_monitoring.ml: Array Baselines Dsim Feasible Format Linalg List Query Random Rod Workload
