examples/quickstart.mli:
