examples/end_to_end.ml: Array Dsim Feasible Format Linalg List Query Random Rod Spe Workload
