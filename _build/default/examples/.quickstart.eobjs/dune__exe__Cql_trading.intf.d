examples/cql_trading.mli:
