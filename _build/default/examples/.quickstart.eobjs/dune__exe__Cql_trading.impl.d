examples/cql_trading.ml: Cql Feasible Format List Random Rod Spe Workload
