examples/clustered_deployment.mli:
