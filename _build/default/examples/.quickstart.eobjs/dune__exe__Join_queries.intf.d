examples/join_queries.mli:
