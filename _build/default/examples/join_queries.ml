(* Nonlinear queries — §6.2's linearization, end to end.

   Example 3's graph (Figure 13) contains a drifting-selectivity
   operator and a time-window join, so operator loads are NOT linear in
   the two input rates.  The library linearizes the model automatically
   by introducing one variable per nonlinear point; ROD then places in
   the extended 4-variable space.  We verify the linearized loads
   against the true nonlinear semantics at concrete rate points and
   cross-check a placement in the simulator.

   Run with: dune exec examples/join_queries.exe *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Load_model = Query.Load_model

let () =
  let graph = Query.Builder.example3 () in
  Format.printf "%a@." Query.Graph.pp graph;
  let model = Load_model.derive graph in
  Format.printf "%a@." Load_model.pp model;
  Format.printf
    "The optimizer treats all %d variables as free; at runtime the two@."
    (Load_model.d_total model);
  Format.printf "introduced ones are determined by the system rates:@.";
  List.iter
    (fun (r1, r2) ->
      let sys_rates = Vec.of_list [ r1; r2 ] in
      let vars = Load_model.eval_vars model ~sys_rates in
      Format.printf "  rates (%g, %g) -> variables %a@." r1 r2 Vec.pp vars;
      (* The linearized load of the join equals c * w * r_u * r_v. *)
      let join_load = Load_model.op_load_at model ~sys_rates 4 in
      let r_u = Load_model.stream_rate_at model ~sys_rates (Query.Graph.Op_output 1) in
      let r_v = Load_model.stream_rate_at model ~sys_rates (Query.Graph.Op_output 3) in
      Format.printf "    join load %.4f = c*w*ru*rv = %.4f@." join_load
        (0.5 *. 2. *. r_u *. r_v))
    [ (1., 1.); (4., 2.); (10., 0.5) ];

  (* Place the linearized instance on three nodes and measure it. *)
  let caps = Rod.Problem.homogeneous_caps ~n:3 ~cap:100. in
  let problem = Rod.Problem.of_model model ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  Format.printf "@.%a@." Rod.Plan.pp plan;
  let est = Rod.Plan.volume_qmc ~samples:8192 plan in
  Format.printf "extended-space feasible ratio: %.3f@." est.Feasible.Volume.ratio;

  (* Sanity: does the analytic feasibility test agree with execution? *)
  let assignment = Rod.Plan.assignment plan in
  List.iter
    (fun (r1, r2) ->
      let sys_rates = Vec.of_list [ r1; r2 ] in
      let vars = Load_model.eval_vars model ~sys_rates in
      let analytic =
        Feasible.Volume.is_feasible ~ln:(Rod.Plan.node_loads plan) ~caps vars
      in
      let simulated =
        (Dsim.Probe.probe_point ~duration:8. ~graph ~assignment ~caps
           ~rates:sys_rates ())
          .Dsim.Probe.feasible
      in
      Format.printf "rates (%g, %g): analytic %b, simulated %b@." r1 r2 analytic
        simulated)
    [ (2., 2.); (6., 6.); (12., 12.) ]
