(* Operator clustering under real communication costs — §6.3 end to end.

   When shipping a tuple across the network costs CPU comparable to
   processing it, placement must trade parallelism against locality.
   This example builds a graph whose streams are expensive to ship,
   shows what communication-blind ROD does, and then runs the paper's
   clustering pipeline (threshold sweep over both greedy policies,
   winner picked by communication-inclusive plane distance).

   Run with: dune exec examples/clustered_deployment.exe *)

module Vec = Linalg.Vec
module Problem = Rod.Problem
module Clustering = Rod.Clustering

let describe_plan label ~model ~caps assignment =
  let n_nodes = Vec.dim caps in
  let ln = Clustering.effective_node_loads ~model ~n_nodes ~assignment in
  let est = Feasible.Volume.ratio_qmc ~ln ~caps ~samples:8192 () in
  let cuts = List.length (Clustering.cut_arcs ~model ~assignment) in
  Format.printf
    "%-24s cut arcs %2d   comm-inclusive feasible volume %.4g@." label cuts
    est.Feasible.Volume.volume

let () =
  let n_nodes = 4 in
  let rng = Random.State.make [| 42 |] in
  (* Per-tuple transfer cost (1 ms) comparable to operator costs
     (0.1-1 ms): every cut arc roughly doubles the work it carries. *)
  let graph =
    Query.Randgraph.generate ~rng
      {
        Query.Randgraph.default with
        n_inputs = 3;
        ops_per_tree = 10;
        xfer_cost = 1e-3;
      }
  in
  let model = Query.Load_model.derive graph in
  let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let problem = Problem.of_model model ~caps in
  Format.printf "graph: %d operators, 3 inputs, xfer cost 1 ms/tuple@.@."
    (Query.Graph.n_ops graph);

  describe_plan "communication-blind ROD" ~model ~caps
    (Rod.Rod_algorithm.place problem);
  describe_plan "ROD + min-new-arcs" ~model ~caps
    (Rod.Rod_algorithm.place
       ~policy:(Rod.Rod_algorithm.Min_new_arcs graph) problem);

  (* The full §6.3 pipeline. *)
  let clustering, assignment = Clustering.select_best ~model ~caps () in
  describe_plan "clustered ROD" ~model ~caps assignment;
  Format.printf "@.winning clustering: %d clusters for %d operators@."
    clustering.Clustering.n_clusters
    (Query.Graph.n_ops graph);
  Array.iteri
    (fun c members ->
      if List.length members > 1 then
        Format.printf "  cluster %d: ops [%s]@." c
          (String.concat ", " (List.map string_of_int members)))
    clustering.Clustering.members
