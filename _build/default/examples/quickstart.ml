(* Quickstart: build a query graph, derive its load model, place it
   resiliently with ROD, inspect the plan, and sanity-check it in the
   discrete-event simulator.

   Run with: dune exec examples/quickstart.exe *)

module Vec = Linalg.Vec

let () =
  (* 1. A small query network: two input streams, four operators
     (the paper's Example 2, costs in CPU-milliseconds per tuple). *)
  let graph =
    Query.Builder.example1 ~c1:4e-3 ~c2:6e-3 ~c3:9e-3 ~c4:4e-3 ~s1:1. ~s3:0.5
  in
  Format.printf "%a@." Query.Graph.pp graph;

  (* 2. The linear load model: every operator's CPU demand as a linear
     function of the two input rates. *)
  let model = Query.Load_model.derive graph in
  Format.printf "%a@." Query.Load_model.pp model;

  (* 3. A ROD problem: the load matrix plus two nodes of capacity 1
     (one CPU-second per second each). *)
  let caps = Rod.Problem.homogeneous_caps ~n:2 ~cap:1. in
  let problem = Rod.Problem.of_model model ~caps in

  (* 4. Resilient placement. *)
  let plan = Rod.Rod_algorithm.plan problem in
  Format.printf "%a@." Rod.Plan.pp plan;

  (* 5. How resilient is it?  Feasible-set size relative to the
     unachievable ideal, plus the geometric metrics of §3-4. *)
  let est = Rod.Plan.volume_qmc ~samples:16384 plan in
  Format.printf "feasible-set ratio vs ideal: %.3f (ideal volume %.5f)@."
    est.Feasible.Volume.ratio est.Feasible.Volume.ideal_volume;
  Format.printf "%a@." Rod.Metrics.pp_summary (Rod.Metrics.summary plan);

  (* 6. Check a concrete workload point both ways: analytically and by
     simulating tuple-by-tuple execution. *)
  let rates = Vec.of_list [ 80.; 40. ] in
  Format.printf "analytic feasibility at (80, 40 tps): %b@."
    (Rod.Plan.is_feasible_at plan ~rates);
  let verdict =
    Dsim.Probe.probe_point ~duration:10. ~graph
      ~assignment:(Rod.Plan.assignment plan) ~caps ~rates ()
  in
  Format.printf "simulated feasibility at (80, 40 tps): %b@."
    verdict.Dsim.Probe.feasible;
  Format.printf "%a@." Dsim.Sim_metrics.pp verdict.Dsim.Probe.metrics;

  (* 7. Or do all of the above in one call with the deployment facade
     (which can also start from an executable network or a query file —
     see doc/QUERY_LANGUAGE.md). *)
  let d = Deploy.of_cost_model ~polish:true ~graph ~caps () in
  Format.printf "@.-- the same via Deploy --@.%s" (Deploy.describe d);
  Format.printf "headroom along (1, 1): %.1f tuples/s@."
    (Deploy.headroom d ~direction:(Vec.of_list [ 1.; 1. ]))
