(* Financial compliance — the wide-graph application of §7.3.1.

   The paper motivates large operator counts with a real-time
   compliance proof-of-concept: 30 rules took 250 operators, and
   production systems have hundreds of rules.  This example builds a
   structurally analogous application (two market feeds, a shared
   normalisation front end, one shallow subtree per rule), places it
   with every algorithm and shows how the wide graph lets ROD approach
   the ideal feasible set.

   Run with: dune exec examples/financial_compliance.exe *)

module Vec = Linalg.Vec

let () =
  let n_rules = 30 and n_nodes = 8 in
  let graph = Query.Builder.financial_compliance ~n_rules in
  let caps = Rod.Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let problem = Rod.Problem.of_graph graph ~caps in
  Format.printf "compliance app: %d rules -> %d operators on %d nodes@."
    n_rules (Query.Graph.n_ops graph) n_nodes;

  let rng = Random.State.make [| 11 |] in
  let mean_rates =
    (* Both feeds at the center of the ideal simplex. *)
    let l = Rod.Problem.total_coefficients problem in
    let c_total = Rod.Problem.total_capacity problem in
    Vec.init (Rod.Problem.dim problem) (fun k ->
        0.5 *. c_total /. (2. *. l.(k)))
  in
  let series =
    Linalg.Mat.init 32 (Rod.Problem.dim problem) (fun _ k ->
        Random.State.float rng (2. *. mean_rates.(k)))
  in
  let plans =
    [
      ("ROD", Rod.Rod_algorithm.place problem);
      ( "ROD + local search",
        (Rod.Local_search.rod_polished ~samples:4096 problem)
          .Rod.Local_search.assignment );
      ("LLF", Baselines.llf ~rates:mean_rates problem);
      ("Connected", Baselines.connected ~rates:mean_rates ~graph problem);
      ("Correlation", Baselines.correlation ~series problem);
      ("Random", Baselines.random_balanced ~rng problem);
    ]
  in
  Format.printf "@.%-20s %16s %16s %14s@." "algorithm" "ratio vs ideal"
    "plane dist r/r*" "ops per node";
  List.iter
    (fun (label, assignment) ->
      let plan = Rod.Plan.make problem assignment in
      let est = Rod.Plan.volume_qmc ~samples:8192 plan in
      let s = Rod.Metrics.summary plan in
      let counts = Rod.Plan.op_counts plan in
      let spread =
        Printf.sprintf "%d-%d"
          (Array.fold_left min max_int counts)
          (Array.fold_left max 0 counts)
      in
      Format.printf "%-20s %16.3f %16.3f %14s@." label
        est.Feasible.Volume.ratio s.Rod.Metrics.plane_distance_ratio spread)
    plans;
  Format.printf
    "@.With %d operators over %d nodes every informed algorithm can get@."
    (Query.Graph.n_ops graph) n_nodes;
  Format.printf
    "close to the ideal on this wide graph — but the balancers needed the@.";
  Format.printf
    "true rate statistics to do it, while ROD used none: its plan is@.";
  Format.printf
    "workload-independent and keeps its ratio under ANY rate combination.@."
