(* A fixed-size pool of worker domains with a shared job queue.

   The pool is created once and reused for every parallel region; worker
   domains block on a condition variable between batches, so an idle
   pool costs nothing but memory.  The submitting domain participates in
   draining the queue, so a pool of [ways] executes on [ways] domains
   total ([ways - 1] spawned workers plus the caller).

   Determinism contract: [map_reduce] and [map_chunks] split [0, n) into
   contiguous chunks and combine chunk results in ascending chunk order,
   regardless of which domain computed what or in which order chunks
   finished.  Callers whose per-chunk computation depends only on the
   index range therefore get results independent of the pool size up to
   the associativity of [combine] (exact for integer counters and
   best-so-far merges, the two uses in this repo). *)

type t = {
  ways : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable quit : bool;
  mutable workers : unit Domain.t array;
}

let ways t = t.ways

let max_ways = 64

let default_ways () =
  match Sys.getenv_opt "ROD_NUM_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some w -> max 1 (min w max_ways)
    | None ->
      invalid_arg (Printf.sprintf "ROD_NUM_DOMAINS: not an integer: %S" s))
  | None -> max 1 (min max_ways (Domain.recommended_domain_count () - 1))

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.jobs with
    | Some job -> Some job
    | None ->
      if pool.quit then None
      else begin
        Condition.wait pool.nonempty pool.mutex;
        next ()
      end
  in
  let job = next () in
  Mutex.unlock pool.mutex;
  match job with
  | None -> ()
  | Some job ->
    job ();
    worker_loop pool

let create ways =
  let ways = max 1 (min ways max_ways) in
  let pool =
    {
      ways;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      quit = false;
      workers = [||];
    }
  in
  if ways > 1 then
    pool.workers <-
      Array.init (ways - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.quit <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

let sequential = create 1

let global_pool = ref None

let global () =
  match !global_pool with
  | Some pool -> pool
  | None ->
    let ways = default_ways () in
    let pool = if ways <= 1 then sequential else create ways in
    global_pool := Some pool;
    if pool != sequential then at_exit (fun () -> shutdown pool);
    pool

(* Per-batch completion state.  Worker-side writes into [results] are
   published to the submitter by the mutex-protected countdown: each
   slot is written by exactly one task before its decrement, and the
   submitter only reads after observing [remaining = 0] under the same
   mutex. *)
type 'a batch = {
  batch_mutex : Mutex.t;
  all_done : Condition.t;
  mutable remaining : int;
  results : 'a option array;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
}

let run_batch pool (tasks : (unit -> 'a) array) : 'a array =
  let k = Array.length tasks in
  if k = 0 then [||]
  else if pool.ways <= 1 || k = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let batch =
      {
        batch_mutex = Mutex.create ();
        all_done = Condition.create ();
        remaining = k;
        results = Array.make k None;
        failure = None;
      }
    in
    let record_failure idx exn bt =
      (* Keep the lowest-index failure so the surfaced exception does not
         depend on scheduling. *)
      match batch.failure with
      | Some (prev, _, _) when prev <= idx -> ()
      | Some _ | None -> batch.failure <- Some (idx, exn, bt)
    in
    let job idx () =
      (match tasks.(idx) () with
      | v -> batch.results.(idx) <- Some v
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock batch.batch_mutex;
        record_failure idx exn bt;
        Mutex.unlock batch.batch_mutex);
      Mutex.lock batch.batch_mutex;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.signal batch.all_done;
      Mutex.unlock batch.batch_mutex
    in
    Mutex.lock pool.mutex;
    for idx = 0 to k - 1 do
      Queue.add (job idx) pool.jobs
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    (* The submitter helps drain the queue instead of blocking straight
       away; the jobs it steals may belong to an unrelated batch, which
       is fine — running them only speeds that batch up. *)
    let rec help () =
      Mutex.lock pool.mutex;
      let job = Queue.take_opt pool.jobs in
      Mutex.unlock pool.mutex;
      match job with
      | Some job ->
        job ();
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock batch.batch_mutex;
    while batch.remaining > 0 do
      Condition.wait batch.all_done batch.batch_mutex
    done;
    Mutex.unlock batch.batch_mutex;
    (match batch.failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* no failure implies every slot was filled *))
      batch.results
  end

let run pool thunks = Array.to_list (run_batch pool (Array.of_list thunks))

let chunk_bounds ~chunks ~n =
  let chunks = max 1 (min chunks n) in
  Array.init chunks (fun c -> (c * n / chunks, (c + 1) * n / chunks))

let map_chunks_i ?chunks pool ~n f =
  if n <= 0 then [||]
  else begin
    let chunks = match chunks with Some c -> max 1 c | None -> pool.ways in
    if pool.ways <= 1 || chunks <= 1 || n = 1 then [| f 0 0 n |]
    else
      let bounds = chunk_bounds ~chunks ~n in
      run_batch pool (Array.mapi (fun c (lo, hi) () -> f c lo hi) bounds)
  end

let map_chunks ?chunks pool ~n f = map_chunks_i ?chunks pool ~n (fun _ lo hi -> f lo hi)

let parallel_for ?chunks pool ~n f = ignore (map_chunks ?chunks pool ~n f)

let map_reduce ?chunks pool ~n ~map ~combine ~init =
  Array.fold_left combine init (map_chunks ?chunks pool ~n map)
