(** A fixed-size pool of worker domains for data-parallel loops.

    The pool is created once and reused across parallel regions (domain
    spawn costs microseconds and the hot loops here run thousands of
    regions).  A pool of [ways] executes work on [ways] domains: the
    [ways - 1] spawned workers plus the submitting domain, which helps
    drain the job queue.  A pool with [ways <= 1] never spawns a domain
    and runs every operation inline, so sequential callers pay only a
    closure call.

    {b Determinism.}  Range operations split [0, n) into contiguous
    chunks and combine per-chunk results in ascending chunk order,
    independent of scheduling.  With an exactly associative [combine]
    (integer counters, best-so-far merges) results are identical for
    every pool size. *)

type t

val create : int -> t
(** [create ways] spawns [ways - 1] worker domains ([ways] is clamped to
    [1, 64]).  Call {!shutdown} when done with a non-global pool. *)

val shutdown : t -> unit
(** Signal the workers to exit and join them.  The pool must not be used
    afterwards. *)

val ways : t -> int
(** Total parallelism of the pool (workers + the submitting domain). *)

val default_ways : unit -> int
(** The [ROD_NUM_DOMAINS] environment variable if set (clamped to at
    least 1), otherwise [Domain.recommended_domain_count () - 1].
    Raises [Invalid_argument] if the variable is set but not an
    integer. *)

val global : unit -> t
(** The process-wide pool, created on first use with {!default_ways}
    ways and shut down automatically at exit.  Every parallelized
    algorithm in this repo defaults to it. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute the thunks on the pool and return their results in input
    order.  If any thunk raises, the exception of the lowest-index
    failing thunk is re-raised in the caller (after the whole batch has
    finished). *)

val parallel_for : ?chunks:int -> t -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~n f] covers the half-open range [0, n) with
    contiguous chunks, calling [f lo hi] for each chunk (itself a
    half-open subrange).  [chunks] defaults to [ways pool].  [n <= 0]
    is a no-op; exceptions propagate as in {!run}. *)

val map_chunks : ?chunks:int -> t -> n:int -> (int -> int -> 'a) -> 'a array
(** Like {!parallel_for} but collects the chunk results in ascending
    chunk order.  Returns [[||]] when [n <= 0]. *)

val map_chunks_i : ?chunks:int -> t -> n:int -> (int -> int -> int -> 'a) -> 'a array
(** [map_chunks_i pool ~n f] is {!map_chunks} with the chunk index
    passed as the first argument: [f c lo hi] for the [c]-th chunk.
    The index lets a kernel write into a preallocated per-chunk scratch
    row instead of allocating its accumulator per dispatch — the
    batched-dispatch idiom of the fused local-search kernels.  Chunk
    indices are dense in [0, chunks) and [chunks] never exceeds
    [max (ways pool) (Option.value chunks ~default:0)], so scratch
    sized by [ways] is safe for callers that omit [chunks]. *)

val map_reduce :
  ?chunks:int ->
  t ->
  n:int ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [map_reduce pool ~n ~map ~combine ~init] folds [combine] over the
    chunk results of [map] in ascending chunk order, starting from
    [init].  Returns [init] when [n <= 0]. *)
