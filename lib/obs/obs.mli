(** [rod.obs] — the unified observability layer: a metrics registry
    (counters, gauges, fixed-bucket histograms), a span tracer, and
    deterministic exporters (JSON, Prometheus text, Chrome trace_event
    JSON), all driven by an injectable {!Clock}.

    The module-level helpers operate on one process-wide registry and
    tracer sharing a deterministic ticker clock, so telemetry from the
    placement algorithm, the simulator and the SPE lands on a common
    timeline and two runs with the same seed export byte-identical
    artifacts.  Tests needing isolation build their own
    {!Registry.create}/{!Span.create}/{!Clock} values. *)

module Counter = Metric.Counter
module Gauge = Metric.Gauge
module Histogram = Metric.Histogram
module Registry = Metric.Registry
module Clock = Clock
module Samples = Samples
module Metric = Metric
module Span = Span
module Export = Export

val registry : unit -> Registry.t
(** The process-wide registry. *)

val tracer : unit -> Span.t
(** The process-wide tracer. *)

val clock : unit -> Clock.t
(** The clock shared by the process-wide registry and tracer (a
    deterministic ticker by default). *)

val set_clock : Clock.t -> unit
(** Swap the shared clock, e.g. for [Spe.Profiler.wall_clock]. *)

val reset : unit -> unit
(** Zero all metrics, clear the trace, rewind the clock — registrations
    survive.  Call between runs that must export identically. *)

val counter :
  ?labels:(string * string) list -> ?help:string -> string -> Counter.t

val gauge : ?labels:(string * string) list -> ?help:string -> string -> Gauge.t

val histogram :
  ?buckets:float array ->
  ?labels:(string * string) list ->
  ?help:string ->
  string ->
  Histogram.t
(** Get-or-create on the process-wide registry; see {!Registry}. *)

val snapshot : unit -> Metric.sample list
(** Frozen samples of the process-wide registry, sorted by name then
    labels. *)

val events : unit -> Span.event list
(** The process-wide trace, stably sorted by timestamp. *)

val with_span :
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a

val emit :
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ts:float ->
  dur:float ->
  string ->
  unit

val instant :
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ?ts:float ->
  string ->
  unit
