type t =
  | Steady of { mutable now : float; start : float; step : float }
  | External of (unit -> float)

let manual ?(at = 0.) () = Steady { now = at; start = at; step = 0. }

let ticker ?(at = 0.) ?(dt = 1e-6) () =
  if dt <= 0. then invalid_arg "Obs.Clock.ticker: dt <= 0";
  Steady { now = at; start = at; step = dt }

let of_fun f = External f

let now = function
  | Steady s ->
    let v = s.now in
    s.now <- v +. s.step;
    v
  | External f -> f ()

let peek = function Steady s -> s.now | External f -> f ()

let set clock time =
  match clock with
  | Steady s -> s.now <- time
  | External _ -> invalid_arg "Obs.Clock.set: external clocks cannot be set"

let reset = function
  | Steady s -> s.now <- s.start
  | External _ -> ()
