type event = {
  name : string;
  cat : string;
  track : int;
  ts : float;
  dur : float option;
  args : (string * string) list;
}

type t = {
  mutable clock : Clock.t;
  mutable events : event list; (* reverse emission order *)
  lock : Mutex.t;
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.ticker () in
  { clock; events = []; lock = Mutex.create () }

let clock t = t.clock
let set_clock t c = t.clock <- c

let push t e =
  Mutex.lock t.lock;
  t.events <- e :: t.events;
  Mutex.unlock t.lock

let emit t ?(track = 0) ?(cat = "rod") ?(args = []) ~ts ~dur name =
  push t { name; cat; track; ts; dur = Some dur; args }

let instant t ?(track = 0) ?(cat = "rod") ?(args = []) ?ts name =
  let ts = match ts with Some ts -> ts | None -> Clock.now t.clock in
  push t { name; cat; track; ts; dur = None; args }

let with_span t ?(track = 0) ?(cat = "rod") ?(args = []) name f =
  let t0 = Clock.now t.clock in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Clock.now t.clock in
      push t { name; cat; track; ts = t0; dur = Some (t1 -. t0); args })
    f

let events t =
  Mutex.lock t.lock;
  let evs = List.rev t.events in
  Mutex.unlock t.lock;
  List.stable_sort (fun a b -> Float.compare a.ts b.ts) evs

let length t =
  Mutex.lock t.lock;
  let n = List.length t.events in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  t.events <- [];
  Mutex.unlock t.lock
