(** Metric instruments — counters, gauges, fixed-bucket histograms —
    and the registry that owns them.

    Counters are atomic (safe to bump from pool worker domains); gauges
    and histograms are single-writer.  Parallel sections should fill a
    {!Histogram.shard} per chunk and {!Histogram.merge_into} the shards
    on the submitting domain in chunk order, mirroring the deterministic
    ordered merges of [Parallel.Pool]. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment — counters are
      monotone by construction. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val default_buckets : float array
  (** Latency-flavoured bounds, 10 µs to 10 s, roughly log-spaced. *)

  val linear : start:float -> step:float -> count:int -> float array
  (** [count] bounds starting at [start], spaced by [step]. *)

  val exponential : start:float -> factor:float -> count:int -> float array
  (** [count] bounds starting at [start], each [factor] times the last. *)

  val make : float array -> t
  (** From strictly increasing finite upper bounds; an implicit +Inf
      bucket catches everything above the last bound. *)

  val shard : t -> t
  (** A fresh empty histogram with the same bounds, for per-chunk
      accumulation in parallel sections. *)

  val observe : t -> float -> unit
  (** Boundary values land in the bucket they bound ([v <= le]),
      matching Prometheus. *)

  val merge_into : into:t -> t -> unit
  (** Adds [t]'s buckets/count/sum into [into].  Raises
      [Invalid_argument] when the bounds differ. *)

  val count : t -> int
  val sum : t -> float
  val upper_bounds : t -> float array
  val bucket_counts : t -> int array
  (** Per-bucket (not cumulative); the extra last entry is +Inf. *)

  val quantile : t -> float -> float
  (** Estimated quantile ([q] in [0,1]) by linear interpolation inside
      the covering bucket, clamped by the observed min/max.  0. when
      empty. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
end

(** A frozen, export-ready view of one registered metric. *)

type sample_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      upper : float array;
      counts : int array; (* per-bucket, length upper + 1 *)
      count : int;
      sum : float;
    }

type sample = {
  s_name : string;
  s_labels : (string * string) list; (* sorted by label name *)
  s_help : string;
  s_value : sample_value;
}

val kind_of_sample : sample_value -> string
(** ["counter"], ["gauge"] or ["histogram"]. *)

module Registry : sig
  type t

  val create : ?clock:Clock.t -> unit -> t
  (** Default clock is a deterministic {!Clock.ticker}. *)

  val clock : t -> Clock.t
  val set_clock : t -> Clock.t -> unit

  val counter : t -> ?labels:(string * string) list -> ?help:string -> string -> Counter.t
  val gauge : t -> ?labels:(string * string) list -> ?help:string -> string -> Gauge.t

  val histogram :
    t ->
    ?buckets:float array ->
    ?labels:(string * string) list ->
    ?help:string ->
    string ->
    Histogram.t
  (** Get-or-create keyed by (name, sorted labels).  Names must match
      [[a-zA-Z_:][a-zA-Z0-9_:]*], label names the same without colons;
      registering the same key as a different kind raises
      [Invalid_argument].  [buckets]/[help] only apply on first
      registration. *)

  val snapshot : t -> sample list
  (** Frozen copies, sorted by name then labels — export order never
      depends on registration order. *)

  val reset : t -> unit
  (** Zero every instrument, keeping registrations. *)

  val size : t -> int
end
