(** Span tracer: named durations and instant markers on a shared
    timeline, exportable as Chrome [trace_event] JSON.

    Timestamps come either from the tracer's {!Clock.t} ({!with_span},
    {!instant} without [?ts]) or are supplied explicitly in virtual
    seconds ({!emit}, [instant ~ts]) — the simulator stamps events with
    its own event times so placement, fault injection and recovery line
    up on one timeline. *)

type event = {
  name : string;
  cat : string; (* trace category, e.g. "place", "sim", "fault" *)
  track : int; (* rendered as the tid lane in trace viewers *)
  ts : float; (* seconds *)
  dur : float option; (* None = instant marker *)
  args : (string * string) list;
}

type t

val create : ?clock:Clock.t -> unit -> t
(** Default clock is a deterministic {!Clock.ticker}. *)

val clock : t -> Clock.t
val set_clock : t -> Clock.t -> unit

val with_span :
  t ->
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Times [f] with two clock reads and records a complete event; the
    event is recorded even when [f] raises. *)

val emit :
  t ->
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ts:float ->
  dur:float ->
  string ->
  unit
(** Record a complete event at an explicit (virtual) time. *)

val instant :
  t ->
  ?track:int ->
  ?cat:string ->
  ?args:(string * string) list ->
  ?ts:float ->
  string ->
  unit
(** Record an instant marker; [ts] defaults to the tracer clock. *)

val events : t -> event list
(** All recorded events, stably sorted by timestamp (ties keep emission
    order) — a canonical order for export and comparison. *)

val length : t -> int
val clear : t -> unit
