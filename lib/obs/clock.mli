(** The injectable time source behind all telemetry.

    Every timestamp in the observability layer comes from a clock value
    chosen by the caller, never from the system clock, so metrics and
    traces are deterministic under a fixed seed.  Three flavours:

    - {!manual}: stands still until {!set} moves it (simulation virtual
      time — the engine stamps events with their own times anyway, but a
      manual clock lets nested spans read the current virtual time);
    - {!ticker}: advances by a fixed [dt] on every read, so spans get
      deterministic nonzero widths without any real time passing (the
      default for the process-wide registry and tracer);
    - {!of_fun}: delegates to an external function — the escape hatch
      for genuine wall time, e.g. [Spe.Profiler.wall_clock], whose
      module owns the repo's only rodlint-allowlisted wall-clock
      reads. *)

type t

val manual : ?at:float -> unit -> t
(** A clock frozen at [at] (default 0.) until {!set} is called. *)

val ticker : ?at:float -> ?dt:float -> unit -> t
(** Starts at [at] (default 0.) and advances by [dt] (default 1e-6
    seconds) after every {!now} read. *)

val of_fun : (unit -> float) -> t
(** Reads delegate to the function; {!set} raises and {!reset} is a
    no-op. *)

val now : t -> float
(** Current time in seconds (advances a ticker). *)

val peek : t -> float
(** Current time without advancing. *)

val set : t -> float -> unit
(** Move a manual or ticker clock to an absolute time.  Raises
    [Invalid_argument] on an external clock. *)

val reset : t -> unit
(** Return a manual or ticker clock to its creation time. *)
