(* Metric instruments (counter / gauge / histogram) and the registry
   that owns them.

   Counters are Atomic so pool worker domains may bump them; gauges and
   histograms are single-writer (use Histogram.shard + merge_into from
   parallel sections, merging on the submitting domain in chunk order
   to keep sums deterministic).  The registry keys instruments by
   (name, sorted labels) behind a mutex, and snapshots sort by name
   then labels, so export order never depends on registration order. *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let value t = Atomic.get t

  let add t n =
    if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add t n)

  let incr t = add t 1
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = { mutable v : float }

  let make () = { v = 0. }
  let set t x = t.v <- x
  let add t dx = t.v <- t.v +. dx
  let value t = t.v
  let reset t = t.v <- 0.
end

module Histogram = struct
  type t = {
    upper : float array; (* strictly increasing finite upper bounds *)
    counts : int array; (* length upper + 1; the last is the +Inf bucket *)
    mutable count : int;
    mutable sum : float;
    mutable min_seen : float;
    mutable max_seen : float;
  }

  (* Latency-flavoured default: 10 µs .. 10 s, roughly log-spaced. *)
  let default_buckets =
    [|
      1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
      5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.;
    |]

  let linear ~start ~step ~count =
    if count < 1 || step <= 0. then invalid_arg "Obs.Histogram.linear";
    Array.init count (fun i -> start +. (step *. float_of_int i))

  let exponential ~start ~factor ~count =
    if count < 1 || start <= 0. || factor <= 1. then
      invalid_arg "Obs.Histogram.exponential";
    Array.init count (fun i -> start *. (factor ** float_of_int i))

  let validate upper =
    if Array.length upper = 0 then invalid_arg "Obs.Histogram: no buckets";
    Array.iteri
      (fun i le ->
        if not (Float.is_finite le) then
          invalid_arg "Obs.Histogram: non-finite bucket bound";
        if i > 0 && not (upper.(i - 1) < le) then
          invalid_arg "Obs.Histogram: bucket bounds must be strictly increasing")
      upper

  let make upper =
    validate upper;
    {
      upper = Array.copy upper;
      counts = Array.make (Array.length upper + 1) 0;
      count = 0;
      sum = 0.;
      min_seen = infinity;
      max_seen = neg_infinity;
    }

  let shard t = make t.upper

  (* Prometheus "le" semantics: a value on a bucket boundary lands in
     the bucket it bounds. *)
  let bucket_index t v =
    let n = Array.length t.upper in
    let rec scan i = if i >= n || v <= t.upper.(i) then i else scan (i + 1) in
    scan 0

  let observe t v =
    let idx = bucket_index t v in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_seen then t.min_seen <- v;
    if v > t.max_seen then t.max_seen <- v

  let count t = t.count
  let sum t = t.sum
  let upper_bounds t = Array.copy t.upper
  let bucket_counts t = Array.copy t.counts

  let same_buckets a b =
    Array.length a.upper = Array.length b.upper
    && Array.for_all2 Float.equal a.upper b.upper

  let merge_into ~into t =
    if not (same_buckets into t) then
      invalid_arg "Obs.Histogram.merge_into: bucket bounds differ";
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
    into.count <- into.count + t.count;
    into.sum <- into.sum +. t.sum;
    if t.min_seen < into.min_seen then into.min_seen <- t.min_seen;
    if t.max_seen > into.max_seen then into.max_seen <- t.max_seen

  (* Linear interpolation inside the covering bucket, like Prometheus'
     histogram_quantile; the first bucket is treated as starting at 0
     (clamped to min_seen when that is higher) and the +Inf bucket
     reports the largest finite bound (clamped to max_seen). *)
  let quantile t q =
    if q < 0. || q > 1. then invalid_arg "Obs.Histogram.quantile";
    if t.count = 0 then 0.
    else begin
      let n = Array.length t.upper in
      let rank = q *. float_of_int t.count in
      let rec walk i cumulative =
        if i >= n then Float.min t.max_seen t.upper.(n - 1) |> Float.max 0.
        else
          let here = t.counts.(i) in
          let c = cumulative + here in
          if here > 0 && float_of_int c >= rank then begin
            let lo = if i = 0 then Float.min t.min_seen t.upper.(0) else t.upper.(i - 1) in
            let hi = t.upper.(i) in
            let inside =
              (rank -. float_of_int cumulative) /. float_of_int here
            in
            let inside = Float.max 0. (Float.min 1. inside) in
            lo +. ((hi -. lo) *. inside)
          end
          else walk (i + 1) c
      in
      walk 0 0
    end

  let p50 t = quantile t 0.5
  let p95 t = quantile t 0.95
  let p99 t = quantile t 0.99

  let reset t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.count <- 0;
    t.sum <- 0.;
    t.min_seen <- infinity;
    t.max_seen <- neg_infinity
end

type instrument =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t

type registration = {
  name : string;
  labels : (string * string) list; (* sorted by label name *)
  help : string;
  instrument : instrument;
}

type sample_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      upper : float array;
      counts : int array; (* per-bucket, length upper + 1 *)
      count : int;
      sum : float;
    }

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : sample_value;
}

let kind_of_sample = function
  | Counter_v _ -> "counter"
  | Gauge_v _ -> "gauge"
  | Histogram_v _ -> "histogram"

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name name =
  String.length name > 0
  && is_name_start name.[0]
  && String.for_all is_name_char name

let valid_label_name name =
  String.length name > 0
  && name.[0] <> ':'
  && is_name_start name.[0]
  && String.for_all (fun c -> c <> ':' && is_name_char c) name

let compare_labels a b =
  List.compare
    (fun (ka, va) (kb, vb) ->
      let c = String.compare ka kb in
      if c <> 0 then c else String.compare va vb)
    a b

module Registry = struct
  type t = {
    mutable clock : Clock.t;
    table : (string, registration) Hashtbl.t;
    lock : Mutex.t;
  }

  let create ?clock () =
    let clock = match clock with Some c -> c | None -> Clock.ticker () in
    { clock; table = Hashtbl.create 64; lock = Mutex.create () }

  let clock t = t.clock
  let set_clock t c = t.clock <- c

  let check_labels name labels =
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    List.iter
      (fun (k, _) ->
        if not (valid_label_name k) then
          invalid_arg
            (Printf.sprintf "Obs.Registry: invalid label name %S on %s" k name))
      sorted;
    let rec dup = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Obs.Registry: duplicate label %S on %s" a name)
        else dup rest
      | _ -> ()
    in
    dup sorted;
    sorted

  let key name labels =
    let buf = Buffer.create 32 in
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf '\x00';
        Buffer.add_string buf k;
        Buffer.add_char buf '\x01';
        Buffer.add_string buf v)
      labels;
    Buffer.contents buf

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let kind_of_instrument = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"

  let get_or_create t ~name ~labels ~help ~make ~extract =
    if not (valid_metric_name name) then
      invalid_arg (Printf.sprintf "Obs.Registry: invalid metric name %S" name);
    let labels = check_labels name labels in
    let key = key name labels in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some reg -> (
          match extract reg.instrument with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s already registered as a %s" name
                 (kind_of_instrument reg.instrument)))
        | None ->
          let v, instrument = make () in
          Hashtbl.replace t.table key { name; labels; help; instrument };
          v)

  let counter t ?(labels = []) ?(help = "") name =
    get_or_create t ~name ~labels ~help
      ~make:(fun () ->
        let c = Counter.make () in
        (c, Counter c))
      ~extract:(function Counter c -> Some c | _ -> None)

  let gauge t ?(labels = []) ?(help = "") name =
    get_or_create t ~name ~labels ~help
      ~make:(fun () ->
        let g = Gauge.make () in
        (g, Gauge g))
      ~extract:(function Gauge g -> Some g | _ -> None)

  let histogram t ?buckets ?(labels = []) ?(help = "") name =
    let buckets =
      match buckets with Some b -> b | None -> Histogram.default_buckets
    in
    get_or_create t ~name ~labels ~help
      ~make:(fun () ->
        let h = Histogram.make buckets in
        (h, Histogram h))
      ~extract:(function Histogram h -> Some h | _ -> None)

  let sample_of reg =
    let s_value =
      match reg.instrument with
      | Counter c -> Counter_v (Counter.value c)
      | Gauge g -> Gauge_v (Gauge.value g)
      | Histogram h ->
        Histogram_v
          {
            upper = Histogram.upper_bounds h;
            counts = Histogram.bucket_counts h;
            count = Histogram.count h;
            sum = Histogram.sum h;
          }
    in
    { s_name = reg.name; s_labels = reg.labels; s_help = reg.help; s_value }

  let snapshot t =
    let regs =
      with_lock t (fun () ->
          Hashtbl.fold (fun _ reg acc -> reg :: acc) t.table [])
    in
    let samples = List.map sample_of regs in
    List.sort
      (fun a b ->
        let c = String.compare a.s_name b.s_name in
        if c <> 0 then c else compare_labels a.s_labels b.s_labels)
      samples

  let reset t =
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _ reg ->
            match reg.instrument with
            | Counter c -> Counter.reset c
            | Gauge g -> Gauge.reset g
            | Histogram h -> Histogram.reset h)
          t.table)

  let size t = with_lock t (fun () -> Hashtbl.length t.table)
end
