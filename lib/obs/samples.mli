(** A growable buffer of float samples with exact percentiles.

    This is the accumulator behind simulator latency summaries (moved
    here from [lib/sim/sim_metrics] so the SPE, the simulator and the
    experiment harness share one implementation).  For bounded-memory
    streaming summaries prefer {!Metric.Histogram}; [Samples] keeps the
    raw values (up to [capacity_limit]) so percentiles are exact. *)

type t

val create : ?capacity_limit:int -> unit -> t
(** Collects float samples; beyond [capacity_limit] (default 2^20)
    further samples update only the running count/mean/max (reservoir
    quality is unnecessary for our summaries). *)

val add : t -> float -> unit

val count : t -> int

val mean : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** Over the stored prefix of samples, with linear interpolation
    between order statistics; [p] in [0, 100].  0. when empty. *)

val to_array : t -> float array
