(* rod.obs — the unified observability layer.

   One process-wide registry + tracer, sharing one deterministic ticker
   clock, so every subsystem's telemetry lands on a common timeline and
   two runs with the same seed export byte-identical artifacts.  The
   module-level helpers below are what instrumented code calls; tests
   that need isolation build their own Registry/Span/Clock values. *)

module Counter = Metric.Counter
module Gauge = Metric.Gauge
module Histogram = Metric.Histogram
module Registry = Metric.Registry
module Clock = Clock
module Samples = Samples
module Metric = Metric
module Span = Span
module Export = Export

let global_clock = Clock.ticker ()
let global_registry = Registry.create ~clock:global_clock ()
let global_tracer = Span.create ~clock:global_clock ()

let registry () = global_registry
let tracer () = global_tracer
let clock () = Registry.clock global_registry

let set_clock c =
  Registry.set_clock global_registry c;
  Span.set_clock global_tracer c

let reset () =
  Clock.reset (Registry.clock global_registry);
  Clock.reset (Span.clock global_tracer);
  Registry.reset global_registry;
  Span.clear global_tracer

let counter ?labels ?help name = Registry.counter global_registry ?labels ?help name
let gauge ?labels ?help name = Registry.gauge global_registry ?labels ?help name

let histogram ?buckets ?labels ?help name =
  Registry.histogram global_registry ?buckets ?labels ?help name

let snapshot () = Registry.snapshot global_registry
let events () = Span.events global_tracer

let with_span ?track ?cat ?args name f =
  Span.with_span global_tracer ?track ?cat ?args name f

let emit ?track ?cat ?args ~ts ~dur name =
  Span.emit global_tracer ?track ?cat ?args ~ts ~dur name

let instant ?track ?cat ?args ?ts name =
  Span.instant global_tracer ?track ?cat ?args ?ts name
