(** Deterministic text exporters for registry snapshots and trace
    events.

    All three formats are pure functions of their input (no clocks, no
    locales, stable float rendering), so identical telemetry yields
    byte-identical exports — the property the double-run test pins. *)

val metrics_json : Metric.sample list -> string
(** Schema ["rod-obs-metrics/1"]: one object per metric with name,
    kind, help, labels and value (histograms carry cumulative [le]
    buckets ending at ["+Inf"], plus sum/count).  Ends in a newline. *)

val prometheus : Metric.sample list -> string
(** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE] once per
    family, histograms expanded to [_bucket]/[_sum]/[_count] series
    with cumulative [le] labels.  Ends in a newline. *)

val trace_json : Span.event list -> string
(** Chrome [trace_event] JSON (load in Perfetto or about:tracing):
    complete events ([ph:"X"]) for spans, global instants ([ph:"i"])
    for markers; timestamps in microseconds.  Ends in a newline. *)

val float_str : float -> string
(** Stable shortest-ish rendering used by every exporter: integers
    without a fraction part, anything else via [%.9g]; non-finite as
    [+Inf]/[-Inf]/[NaN]. *)
