type t = {
  mutable data : float array;
  mutable stored : int;
  mutable count : int;
  mutable sum : float;
  mutable max_value : float;
  capacity_limit : int;
}

let create ?(capacity_limit = 1 lsl 20) () =
  {
    data = [||];
    stored = 0;
    count = 0;
    sum = 0.;
    max_value = neg_infinity;
    capacity_limit;
  }

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x > t.max_value then t.max_value <- x;
  if t.stored < t.capacity_limit then begin
    if t.stored = Array.length t.data then begin
      let fresh = Array.make (max 1024 (2 * Array.length t.data)) 0. in
      Array.blit t.data 0 fresh 0 t.stored;
      t.data <- fresh
    end;
    t.data.(t.stored) <- x;
    t.stored <- t.stored + 1
  end

let count t = t.count

let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let max_value t = if t.count = 0 then 0. else t.max_value

let to_array t = Array.sub t.data 0 t.stored

(* Same interpolation rule as Workload.Stats.percentile, kept local so
   the observability layer depends on nothing. *)
let percentile t p =
  if t.stored = 0 then 0.
  else begin
    if p < 0. || p > 100. then
      invalid_arg "Obs.Samples.percentile: p outside [0,100]";
    let sorted = to_array t in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    let pos = p /. 100. *. float_of_int (n - 1) in
    let i = int_of_float (floor pos) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then sorted.(n - 1)
    else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end
