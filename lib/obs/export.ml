(* rodlint: deterministic *)

let float_str f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* JSON has no Infinity/NaN literals; telemetry values are finite, but
   stay total anyway. *)
let json_float f = if Float.is_finite f then float_str f else "null"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_json_string buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape s);
  Buffer.add_char buf '"'

let add_labels_object buf labels =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      add_json_string buf k;
      Buffer.add_string buf ": ";
      add_json_string buf v)
    labels;
  Buffer.add_char buf '}'

(* Cumulative bucket counts including the implicit +Inf bucket. *)
let cumulative counts =
  let n = Array.length counts in
  let out = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + counts.(i);
    out.(i) <- !acc
  done;
  out

let metrics_json samples =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"rod-obs-metrics/1\",\n  \"metrics\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\n      \"name\": ";
      add_json_string buf s.Metric.s_name;
      Buffer.add_string buf ",\n      \"kind\": ";
      add_json_string buf (Metric.kind_of_sample s.Metric.s_value);
      Buffer.add_string buf ",\n      \"help\": ";
      add_json_string buf s.Metric.s_help;
      Buffer.add_string buf ",\n      \"labels\": ";
      add_labels_object buf s.Metric.s_labels;
      (match s.Metric.s_value with
      | Metric.Counter_v v ->
        Buffer.add_string buf ",\n      \"value\": ";
        Buffer.add_string buf (string_of_int v)
      | Metric.Gauge_v v ->
        Buffer.add_string buf ",\n      \"value\": ";
        Buffer.add_string buf (json_float v)
      | Metric.Histogram_v { upper; counts; count; sum } ->
        Buffer.add_string buf ",\n      \"count\": ";
        Buffer.add_string buf (string_of_int count);
        Buffer.add_string buf ",\n      \"sum\": ";
        Buffer.add_string buf (json_float sum);
        Buffer.add_string buf ",\n      \"buckets\": [";
        let cum = cumulative counts in
        Array.iteri
          (fun b c ->
            if b > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf "{\"le\": ";
            if b < Array.length upper then
              Buffer.add_string buf (json_float upper.(b))
            else add_json_string buf "+Inf";
            Buffer.add_string buf ", \"count\": ";
            Buffer.add_string buf (string_of_int c);
            Buffer.add_char buf '}')
          cum;
        Buffer.add_char buf ']');
      Buffer.add_string buf "\n    }")
    samples;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_help_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_prom_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (prom_escape v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let add_prom_sample buf name labels value =
  Buffer.add_string buf name;
  add_prom_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let prometheus samples =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      let name = s.Metric.s_name in
      if not (String.equal name !last_family) then begin
        last_family := name;
        if not (String.equal s.Metric.s_help "") then begin
          Buffer.add_string buf "# HELP ";
          Buffer.add_string buf name;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (prom_help_escape s.Metric.s_help);
          Buffer.add_char buf '\n'
        end;
        Buffer.add_string buf "# TYPE ";
        Buffer.add_string buf name;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Metric.kind_of_sample s.Metric.s_value);
        Buffer.add_char buf '\n'
      end;
      match s.Metric.s_value with
      | Metric.Counter_v v ->
        add_prom_sample buf name s.Metric.s_labels (string_of_int v)
      | Metric.Gauge_v v -> add_prom_sample buf name s.Metric.s_labels (float_str v)
      | Metric.Histogram_v { upper; counts; count; sum } ->
        let cum = cumulative counts in
        Array.iteri
          (fun b c ->
            let le =
              if b < Array.length upper then float_str upper.(b) else "+Inf"
            in
            add_prom_sample buf (name ^ "_bucket")
              (s.Metric.s_labels @ [ ("le", le) ])
              (string_of_int c))
          cum;
        add_prom_sample buf (name ^ "_sum") s.Metric.s_labels (float_str sum);
        add_prom_sample buf (name ^ "_count") s.Metric.s_labels
          (string_of_int count))
    samples;
  Buffer.contents buf

let trace_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  List.iteri
    (fun i (e : Span.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {\"name\": ";
      add_json_string buf e.name;
      Buffer.add_string buf ", \"cat\": ";
      add_json_string buf e.cat;
      Buffer.add_string buf ", \"ph\": ";
      (match e.dur with
      | Some _ -> Buffer.add_string buf "\"X\""
      | None -> Buffer.add_string buf "\"i\", \"s\": \"g\"");
      Buffer.add_string buf ", \"pid\": 1, \"tid\": ";
      Buffer.add_string buf (string_of_int e.track);
      Buffer.add_string buf ", \"ts\": ";
      Buffer.add_string buf (json_float (e.ts *. 1e6));
      (match e.dur with
      | Some dur ->
        Buffer.add_string buf ", \"dur\": ";
        Buffer.add_string buf (json_float (dur *. 1e6))
      | None -> ());
      (match e.args with
      | [] -> ()
      | args ->
        Buffer.add_string buf ", \"args\": ";
        add_labels_object buf args);
      Buffer.add_char buf '}')
    events;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
