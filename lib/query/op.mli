(** Continuous-query operators and their load behaviour.

    An operator consumes one or more input streams and produces exactly
    one output stream (which any number of downstream operators may
    read).  Following the paper's load model (§2.2), an operator is
    characterised by

    - a {e cost} per input: CPU seconds needed per input tuple, and
    - a {e selectivity} per input: output tuples produced per input tuple,

    which make its load and output rate linear in its input rates.  Two
    nonlinear cases are modelled explicitly (§6.2): time-window joins,
    whose load is proportional to the {e product} of the two input rates,
    and operators with non-constant selectivity, whose own load is linear
    but whose output rate is not a fixed multiple of the input rate. *)

type linear = {
  costs : float array;
      (** CPU seconds per tuple, one entry per input arc. *)
  selectivities : float array;
      (** Output tuples per input tuple, one entry per input arc; the
          output rate is the selectivity-weighted sum of input rates. *)
}

type join = {
  window : float; (* rodunits: sim-sec *)
      (** Join window size in seconds. *)
  cost_per_pair : float; (* rodunits: cpu-sec/tuple^2 *)
      (** CPU seconds to evaluate one tuple pair. *)
  sel_per_pair : float; (* rodunits: 1/tuple *)
      (** Output tuples per candidate pair. *)
}

type var_selectivity = {
  cost : float; (* rodunits: load-coeff *)
      (** CPU seconds per input tuple (still linear). *)
  sel_lo : float; (* rodunits: 1 *)
      (** Lower bound of the drifting selectivity. *)
  sel_hi : float; (* rodunits: 1 *)
      (** Upper bound of the drifting selectivity. *)
  sel_now : float; (* rodunits: 1 *)
      (** Operating-point selectivity, used only when a concrete workload
          must be evaluated (e.g. by the simulator); the optimizer never
          relies on it. *)
}

type kind =
  | Linear of linear
  | Join of join  (** Exactly two inputs. *)
  | Var_selectivity of var_selectivity  (** Exactly one input. *)

type t = {
  name : string;
  kind : kind;
  out_xfer_cost : float; (* rodunits: load-coeff *)
      (** CPU seconds per tuple to ship one output tuple across the
          network, if the consumer lives on another node (§6.3).  [0.]
          when communication cost is ignored. *)
}

val arity : t -> int
(** Number of input arcs the operator expects. *)

val filter : ?name:string -> ?xfer:float -> cost:float -> sel:float -> unit -> t
(* rodunits: cost:load-coeff -> sel:1 -> _ *)
(** Single-input, selectivity in [0,1]. *)

val map : ?name:string -> ?xfer:float -> cost:float -> unit -> t
(* rodunits: cost:load-coeff -> _ *)
(** Single-input, selectivity 1. *)

val union : ?name:string -> ?xfer:float -> cost:float -> n_inputs:int -> unit -> t
(* rodunits: cost:load-coeff -> _ *)
(** [n_inputs]-ary merge; every input passes through (selectivity 1). *)

val aggregate :
  ?name:string -> ?xfer:float -> cost:float -> sel:float -> unit -> t
(* rodunits: cost:load-coeff -> sel:1 -> _ *)
(** Windowed aggregate: one output tuple per [1/sel] input tuples. *)

val delay : ?name:string -> ?xfer:float -> cost:float -> sel:float -> unit -> t
(* rodunits: cost:load-coeff -> sel:1 -> _ *)
(** The paper's tunable delay operator (§7.1): arbitrary per-tuple cost
    and selectivity. *)

val join :
  ?name:string ->
  ?xfer:float ->
  window:float ->
  cost_per_pair:float ->
  sel:float ->
  unit ->
  t
(* rodunits: window:sim-sec -> cost_per_pair:cpu-sec/tuple^2 -> sel:1/tuple -> _ *)
(** Two-input time-window join (nonlinear load). *)

val var_sel :
  ?name:string ->
  ?xfer:float ->
  cost:float ->
  sel_lo:float ->
  sel_hi:float ->
  ?sel_now:float ->
  unit ->
  t
(* rodunits: cost:load-coeff -> sel_lo:1 -> sel_hi:1 -> _ *)
(** Single-input operator whose selectivity drifts in [[sel_lo],[sel_hi]];
    [sel_now] defaults to the midpoint. *)

val linear_exn : t -> linear
(** The linear spec; raises [Invalid_argument] on nonlinear operators. *)

val is_nonlinear : t -> bool

val pp : Format.formatter -> t -> unit
