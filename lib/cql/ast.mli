(** Abstract syntax of the query language — a small declarative
    pipeline language in the spirit of the continuous-query languages
    the stream-processing systems of the era exposed (Aurora's boxes
    and arrows, STREAM's CQL):

    {v
    stream packets (src: string, bytes: int, proto: string);

    node clean = filter packets where proto != "icmp" and bytes > 40;
    node vols  = aggregate clean window 2.0 by src
                 compute { volume = sum(bytes), n = count() };
    node heavy = filter vols where volume > 18000.0;
    output heavy;
    v} *)

type pos = {
  line : int;  (** 1-based. *)
  col : int;  (** 1-based. *)
}

type field_type =
  | T_int
  | T_float
  | T_string

type expr =
  | Field of string * pos
  | Int_lit of int * pos
  | Float_lit of float * pos
  | Str_lit of string * pos
  | Unary of unary * expr
  | Binary of binary * expr * expr * pos  (** Position of the operator. *)

and unary =
  | Neg
  | Not

and binary =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type aggregate_call =
  | Agg_count
  | Agg_sum of string * pos
  | Agg_avg of string * pos
  | Agg_min of string * pos
  | Agg_max of string * pos

type node_body =
  | Filter of {
      input : string * pos;
      predicate : expr;
    }
  | Map of {
      input : string * pos;
      assignments : (string * expr) list;
    }
  | Select of {
      input : string * pos;
      keep : (string * pos) list;
    }
  | Merge of (string * pos) list
  | Aggregate of {
      input : string * pos;
      window : float;
      slide : float option;
      group_by : (string * pos) option;
      compute : (string * aggregate_call) list;
    }
  | Join of {
      left : string * pos;
      right : string * pos;
      window : float;
      left_key : string * pos;
      right_key : string * pos;
    }
  | Distinct of {
      input : string * pos;
      window : float;
      key : string * pos;
    }

type decl =
  | Stream_decl of {
      name : string;
      pos : pos;
      fields : (string * field_type) list;
    }
  | Node_decl of {
      name : string;
      pos : pos;
      body : node_body;
    }
  | Output_decl of string * pos

type program = decl list

val pp_field_type : Format.formatter -> field_type -> unit

val pp_expr : Format.formatter -> expr -> unit
(** Fully parenthesized, for diagnostics. *)
