type pos = {
  line : int;
  col : int;
}

type field_type =
  | T_int
  | T_float
  | T_string

type expr =
  | Field of string * pos
  | Int_lit of int * pos
  | Float_lit of float * pos
  | Str_lit of string * pos
  | Unary of unary * expr
  | Binary of binary * expr * expr * pos

and unary =
  | Neg
  | Not

and binary =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type aggregate_call =
  | Agg_count
  | Agg_sum of string * pos
  | Agg_avg of string * pos
  | Agg_min of string * pos
  | Agg_max of string * pos

type node_body =
  | Filter of {
      input : string * pos;
      predicate : expr;
    }
  | Map of {
      input : string * pos;
      assignments : (string * expr) list;
    }
  | Select of {
      input : string * pos;
      keep : (string * pos) list;
    }
  | Merge of (string * pos) list
  | Aggregate of {
      input : string * pos;
      window : float;
      slide : float option;
      group_by : (string * pos) option;
      compute : (string * aggregate_call) list;
    }
  | Join of {
      left : string * pos;
      right : string * pos;
      window : float;
      left_key : string * pos;
      right_key : string * pos;
    }
  | Distinct of {
      input : string * pos;
      window : float;
      key : string * pos;
    }

type decl =
  | Stream_decl of {
      name : string;
      pos : pos;
      fields : (string * field_type) list;
    }
  | Node_decl of {
      name : string;
      pos : pos;
      body : node_body;
    }
  | Output_decl of string * pos

type program = decl list

let pp_field_type fmt t =
  Format.pp_print_string fmt
    (match t with T_int -> "int" | T_float -> "float" | T_string -> "string")

let binary_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let rec pp_expr fmt = function
  | Field (name, _) -> Format.pp_print_string fmt name
  | Int_lit (i, _) -> Format.pp_print_int fmt i
  | Float_lit (f, _) -> Format.fprintf fmt "%g" f
  | Str_lit (s, _) -> Format.fprintf fmt "%S" s
  | Unary (Neg, e) -> Format.fprintf fmt "(-%a)" pp_expr e
  | Unary (Not, e) -> Format.fprintf fmt "(not %a)" pp_expr e
  | Binary (op, a, b, _) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binary_symbol op) pp_expr b
