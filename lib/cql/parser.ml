open Ast

exception Error of pos * string

type state = {
  mutable tokens : (Lexer.token * pos) list;
}

let current st =
  match st.tokens with
  | tok :: _ -> tok
  | [] -> assert false (* the token list always ends with EOF *)

let advance st =
  match st.tokens with
  | (Lexer.EOF, _) :: _ -> ()
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let fail st expected =
  let tok, p = current st in
  raise
    (Error (p, Printf.sprintf "expected %s, found %s" expected (Lexer.describe tok)))

let expect st token expected =
  let tok, _ = current st in
  if tok = token then advance st else fail st expected

let ident st what =
  match current st with
  | Lexer.IDENT name, p ->
    advance st;
    (name, p)
  | _ -> fail st what

let number st what =
  match current st with
  | Lexer.FLOAT f, _ ->
    advance st;
    f
  | Lexer.INT i, _ ->
    advance st;
    float_of_int i
  | _ -> fail st what

(* --- expressions --- *)

let rec parse_or st =
  let left = parse_and st in
  match current st with
  | Lexer.OR, p ->
    advance st;
    Binary (Or, left, parse_or st, p)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match current st with
  | Lexer.AND, p ->
    advance st;
    Binary (And, left, parse_and st, p)
  | _ -> left

and parse_not st =
  match current st with
  | Lexer.NOT, _ ->
    advance st;
    Unary (Not, parse_not st)
  | _ -> parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  let binop op =
    let _, p = current st in
    advance st;
    Binary (op, left, parse_additive st, p)
  in
  match current st with
  | Lexer.EQ, _ -> binop Eq
  | Lexer.NEQ, _ -> binop Neq
  | Lexer.LT, _ -> binop Lt
  | Lexer.LE, _ -> binop Le
  | Lexer.GT, _ -> binop Gt
  | Lexer.GE, _ -> binop Ge
  | _ -> left

and parse_additive st =
  let rec loop left =
    match current st with
    | Lexer.PLUS, p ->
      advance st;
      loop (Binary (Add, left, parse_multiplicative st, p))
    | Lexer.MINUS, p ->
      advance st;
      loop (Binary (Sub, left, parse_multiplicative st, p))
    | _ -> left
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop left =
    match current st with
    | Lexer.STAR, p ->
      advance st;
      loop (Binary (Mul, left, parse_unary st, p))
    | Lexer.SLASH, p ->
      advance st;
      loop (Binary (Div, left, parse_unary st, p))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match current st with
  | Lexer.MINUS, _ ->
    advance st;
    Unary (Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match current st with
  | Lexer.INT i, p ->
    advance st;
    Int_lit (i, p)
  | Lexer.FLOAT f, p ->
    advance st;
    Float_lit (f, p)
  | Lexer.STRING s, p ->
    advance st;
    Str_lit (s, p)
  | Lexer.IDENT name, p ->
    advance st;
    Field (name, p)
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN "')'";
    e
  | _ -> fail st "an expression"

(* --- declarations --- *)

let comma_separated st parse_item =
  let rec loop acc =
    let item = parse_item st in
    match current st with
    | Lexer.COMMA, _ ->
      advance st;
      loop (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  loop []

let parse_field_type st =
  match current st with
  | Lexer.IDENT "int", _ ->
    advance st;
    T_int
  | Lexer.IDENT "float", _ ->
    advance st;
    T_float
  | Lexer.IDENT "string", _ ->
    advance st;
    T_string
  | _ -> fail st "a type (int, float or string)"

let parse_stream st =
  let name, p = ident st "a stream name" in
  expect st Lexer.LPAREN "'('";
  let fields =
    comma_separated st (fun st ->
        let field, _ = ident st "a field name" in
        expect st Lexer.COLON "':'";
        (field, parse_field_type st))
  in
  expect st Lexer.RPAREN "')'";
  Stream_decl { name; pos = p; fields }

let parse_aggregate_call st =
  let fn, p = ident st "an aggregate (count/sum/avg/min/max)" in
  expect st Lexer.LPAREN "'('";
  let call =
    match String.lowercase_ascii fn with
    | "count" -> Agg_count
    | ("sum" | "avg" | "min" | "max") as which ->
      let field, fp = ident st "a field name" in
      (match which with
      | "sum" -> Agg_sum (field, fp)
      | "avg" -> Agg_avg (field, fp)
      | "min" -> Agg_min (field, fp)
      | _ -> Agg_max (field, fp))
    | other ->
      raise (Error (p, Printf.sprintf "unknown aggregate function %S" other))
  in
  expect st Lexer.RPAREN "')'";
  call

let parse_node_body st =
  match current st with
  | Lexer.FILTER, _ ->
    advance st;
    let input = ident st "an input stream or node" in
    expect st Lexer.WHERE "'where'";
    Filter { input; predicate = parse_or st }
  | Lexer.MAP, _ ->
    advance st;
    let input = ident st "an input stream or node" in
    expect st Lexer.SET "'set'";
    expect st Lexer.LBRACE "'{'";
    let assignments =
      comma_separated st (fun st ->
          let field, _ = ident st "a field name" in
          expect st Lexer.ASSIGN "'='";
          (field, parse_or st))
    in
    expect st Lexer.RBRACE "'}'";
    Map { input; assignments }
  | Lexer.SELECT, _ ->
    advance st;
    let input = ident st "an input stream or node" in
    expect st Lexer.KEEP "'keep'";
    let keep = comma_separated st (fun st -> ident st "a field name") in
    Select { input; keep }
  | Lexer.MERGE, _ ->
    advance st;
    let inputs = comma_separated st (fun st -> ident st "a stream or node") in
    if List.length inputs < 2 then fail st "at least two merge inputs";
    Merge inputs
  | Lexer.AGGREGATE, _ ->
    advance st;
    let input = ident st "an input stream or node" in
    expect st Lexer.WINDOW "'window'";
    let window = number st "a window length" in
    let slide =
      match current st with
      | Lexer.SLIDE, _ ->
        advance st;
        Some (number st "a slide length")
      | _ -> None
    in
    let group_by =
      match current st with
      | Lexer.BY, _ ->
        advance st;
        Some (ident st "a grouping field")
      | _ -> None
    in
    expect st Lexer.COMPUTE "'compute'";
    expect st Lexer.LBRACE "'{'";
    let compute =
      comma_separated st (fun st ->
          let out, _ = ident st "an output field name" in
          expect st Lexer.ASSIGN "'='";
          (out, parse_aggregate_call st))
    in
    expect st Lexer.RBRACE "'}'";
    Aggregate { input; window; slide; group_by; compute }
  | Lexer.DISTINCT, _ ->
    advance st;
    let input = ident st "an input stream or node" in
    expect st Lexer.WINDOW "'window'";
    let window = number st "a window length" in
    expect st Lexer.ON "'on'";
    let key = ident st "a key field" in
    Distinct { input; window; key }
  | Lexer.JOIN, _ ->
    advance st;
    let left = ident st "the left input" in
    expect st Lexer.COMMA "','";
    let right = ident st "the right input" in
    expect st Lexer.WINDOW "'window'";
    let window = number st "a window length" in
    expect st Lexer.ON "'on'";
    let left_key = ident st "the left key field" in
    expect st Lexer.EQ "'=='";
    let right_key = ident st "the right key field" in
    Join { left; right; window; left_key; right_key }
  | _ -> fail st "an operator (filter/map/select/merge/aggregate/join/distinct)"

let parse_decl st =
  match current st with
  | Lexer.STREAM, _ ->
    advance st;
    parse_stream st
  | Lexer.NODE, _ ->
    advance st;
    let name, p = ident st "a node name" in
    expect st Lexer.ASSIGN "'='";
    Node_decl { name; pos = p; body = parse_node_body st }
  | Lexer.OUTPUT, _ ->
    advance st;
    let name, p = ident st "a node name" in
    Output_decl (name, p)
  | _ -> fail st "a declaration (stream/node/output)"

let parse text =
  let st = { tokens = Lexer.tokenize text } in
  let rec loop acc =
    match current st with
    | Lexer.EOF, _ -> List.rev acc
    | _ ->
      let decl = parse_decl st in
      expect st Lexer.SEMI "';'";
      loop (decl :: acc)
  in
  loop []
