open Ast

type schema = (string * field_type) list

type node = {
  name : string;
  body : node_body;
  schema : schema;
}

type checked = {
  streams : (string * schema) list;
  nodes : node list;
  outputs : string list;
}

exception Error of pos * string

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Error (pos, msg))) fmt

let normalize_schema fields = List.sort (fun (a, _) (b, _) -> compare a b) fields

let field_type schema name pos =
  match List.assoc_opt name schema with
  | Some t -> t
  | None ->
    fail pos "unknown field %S (have: %s)" name
      (String.concat ", " (List.map fst schema))

let type_name = function
  | `Bool -> "bool"
  | `Scalar T_int -> "int"
  | `Scalar T_float -> "float"
  | `Scalar T_string -> "string"

let rec type_of_expr schema expr =
  match expr with
  | Field (name, pos) -> `Scalar (field_type schema name pos)
  | Int_lit _ -> `Scalar T_int
  | Float_lit _ -> `Scalar T_float
  | Str_lit _ -> `Scalar T_string
  | Unary (Neg, e) -> (
    match type_of_expr schema e with
    | `Scalar T_int -> `Scalar T_int
    | `Scalar T_float -> `Scalar T_float
    | other ->
      fail (expr_pos e) "unary '-' needs a number, got %s" (type_name other))
  | Unary (Not, e) -> (
    match type_of_expr schema e with
    | `Bool -> `Bool
    | other -> fail (expr_pos e) "'not' needs a boolean, got %s" (type_name other))
  | Binary (op, a, b, pos) -> (
    let ta = type_of_expr schema a and tb = type_of_expr schema b in
    let numeric t = t = `Scalar T_int || t = `Scalar T_float in
    match op with
    | Add | Sub | Mul | Div ->
      if not (numeric ta && numeric tb) then
        fail pos "arithmetic needs numbers, got %s and %s" (type_name ta)
          (type_name tb);
      if op = Div then `Scalar T_float
      else if ta = `Scalar T_float || tb = `Scalar T_float then `Scalar T_float
      else `Scalar T_int
    | Eq | Neq ->
      if numeric ta && numeric tb then `Bool
      else if ta = `Scalar T_string && tb = `Scalar T_string then `Bool
      else
        fail pos "'==' / '!=' compare two numbers or two strings, got %s and %s"
          (type_name ta) (type_name tb)
    | Lt | Le | Gt | Ge ->
      if (numeric ta && numeric tb)
         || (ta = `Scalar T_string && tb = `Scalar T_string)
      then `Bool
      else
        fail pos "ordering compares two numbers or two strings, got %s and %s"
          (type_name ta) (type_name tb)
    | And | Or ->
      if ta = `Bool && tb = `Bool then `Bool
      else
        fail pos "'%s' needs booleans, got %s and %s"
          (match op with And -> "and" | _ -> "or")
          (type_name ta) (type_name tb))

and expr_pos = function
  | Field (_, pos) -> pos
  | Binary (_, _, _, pos) -> pos
  | Unary (_, e) -> expr_pos e
  | Int_lit (_, pos) | Float_lit (_, pos) | Str_lit (_, pos) -> pos

let check_stream_decl seen ~name ~pos ~fields =
  if List.mem_assoc name seen then fail pos "duplicate name %S" name;
  (match fields with [] -> fail pos "stream %S has no fields" name | _ -> ());
  let sorted = normalize_schema fields in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then fail pos "stream %S: duplicate field %S" name a;
      dup rest
    | _ -> ()
  in
  dup sorted;
  sorted

let schema_of env (name, pos) =
  match List.assoc_opt name env with
  | Some schema -> schema
  | None -> fail pos "unknown stream or node %S" name

let numeric_field schema (field, pos) =
  match field_type schema field pos with
  | T_int | T_float -> ()
  | T_string -> fail pos "field %S must be numeric" field

let check_body env body =
  match body with
  | Filter { input; predicate } ->
    let schema = schema_of env input in
    (match type_of_expr schema predicate with
    | `Bool -> ()
    | other ->
      fail (snd input) "filter predicate must be boolean, got %s"
        (type_name other));
    schema
  | Map { input; assignments } ->
    let schema = schema_of env input in
    List.fold_left
      (fun acc (field, expr) ->
        match type_of_expr schema expr with
        | `Bool ->
          fail (expr_pos expr) "field %S: boolean-valued fields are not allowed"
            field
        | `Scalar t ->
          normalize_schema ((field, t) :: List.remove_assoc field acc))
      schema assignments
  | Select { input; keep } ->
    let schema = schema_of env input in
    normalize_schema
      (List.map (fun (field, pos) -> (field, field_type schema field pos)) keep)
  | Merge inputs ->
    let schemas = List.map (fun input -> (input, schema_of env input)) inputs in
    (match schemas with
    | ((_, first_pos), first) :: rest ->
      List.iter
        (fun ((name, pos), schema) ->
          if schema <> first then
            fail pos "merge input %S has a different schema" name;
          ignore first_pos)
        rest;
      first
    | [] -> assert false)
  | Aggregate { input; window; slide; group_by; compute } ->
    let schema = schema_of env input in
    if window <= 0. then fail (snd input) "window must be positive";
    (match slide with
    | Some s when s <= 0. -> fail (snd input) "slide must be positive"
    | Some _ | None -> ());
    (match compute with
    | [] -> fail (snd input) "aggregate computes nothing"
    | _ -> ());
    Option.iter (fun g -> ignore (field_type schema (fst g) (snd g))) group_by;
    let out_fields =
      List.map
        (fun (out, call) ->
          (match call with
          | Agg_count -> ()
          | Agg_sum (f, p) | Agg_avg (f, p) | Agg_min (f, p) | Agg_max (f, p) ->
            numeric_field schema (f, p));
          (out, match call with Agg_count -> T_int | _ -> T_float))
        compute
    in
    let out_fields =
      match group_by with
      | Some (g, pos) ->
        if List.mem_assoc "group" out_fields then
          fail pos "output field \"group\" is reserved for the grouping value";
        ("group", field_type schema g pos) :: out_fields
      | None -> out_fields
    in
    let sorted = normalize_schema out_fields in
    let rec dup = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then
          fail (snd input) "aggregate output field %S defined twice" a;
        dup rest
      | _ -> ()
    in
    dup sorted;
    sorted
  | Distinct { input; window; key } ->
    let schema = schema_of env input in
    if window <= 0. then fail (snd input) "window must be positive";
    ignore (field_type schema (fst key) (snd key));
    schema
  | Join { left; right; window; left_key; right_key } ->
    if window <= 0. then fail (snd left) "window must be positive";
    let ls = schema_of env left and rs = schema_of env right in
    let lt = field_type ls (fst left_key) (snd left_key) in
    let rt = field_type rs (fst right_key) (snd right_key) in
    if lt <> rt then
      fail (snd right_key)
        "join keys %S (%s) and %S (%s) have different types" (fst left_key)
        (Format.asprintf "%a" pp_field_type lt)
        (fst right_key)
        (Format.asprintf "%a" pp_field_type rt);
    normalize_schema
      (List.map (fun (f, t) -> ("l_" ^ f, t)) ls
      @ List.map (fun (f, t) -> ("r_" ^ f, t)) rs)

let check program =
  let env = ref [] in
  let streams = ref [] in
  let nodes = ref [] in
  let outputs = ref [] in
  let node_positions = ref [] in
  List.iter
    (fun decl ->
      match decl with
      | Stream_decl { name; pos; fields } ->
        let schema = check_stream_decl !env ~name ~pos ~fields in
        env := (name, schema) :: !env;
        streams := (name, schema) :: !streams
      | Node_decl { name; pos; body } ->
        if List.mem_assoc name !env then fail pos "duplicate name %S" name;
        let schema = check_body !env body in
        env := (name, schema) :: !env;
        nodes := { name; body; schema } :: !nodes;
        node_positions := (name, pos) :: !node_positions
      | Output_decl (name, pos) ->
        if List.mem name !outputs then
          fail pos "node %S already declared as output" name;
        if not (List.exists (fun n -> n.name = name) !nodes) then
          fail pos "output %S is not a node" name;
        outputs := name :: !outputs)
    program;
  let nodes = List.rev !nodes in
  let outputs = List.rev !outputs in
  (* Consumption analysis: outputs must be dead ends; dead ends must be
     outputs. *)
  let consumed name =
    List.exists
      (fun n ->
        let reads =
          match n.body with
          | Filter { input; _ } | Map { input; _ } | Select { input; _ }
          | Aggregate { input; _ } | Distinct { input; _ } -> [ input ]
          | Merge inputs -> inputs
          | Join { left; right; _ } -> [ left; right ]
        in
        List.exists (fun (i, _) -> i = name) reads)
      nodes
  in
  List.iter
    (fun n ->
      let pos =
        (* Every element of [nodes] was pushed together with its
           position, so the lookup cannot miss. *)
        match List.assoc_opt n.name !node_positions with
        | Some p -> p
        | None -> assert false
      in
      let is_output = List.mem n.name outputs in
      let is_consumed = consumed n.name in
      if is_output && is_consumed then
        fail pos "output node %S is also consumed downstream" n.name;
      if (not is_output) && not is_consumed then
        fail pos "node %S is a dead end: consume it or declare 'output %s'"
          n.name n.name)
    nodes;
  (match outputs with
  | [] ->
    (* Point at the last declaration: the place where an [output]
       line should have followed. *)
    let pos =
      List.fold_left
        (fun _ decl ->
          match decl with
          | Stream_decl { pos; _ } | Node_decl { pos; _ } -> pos
          | Output_decl (_, pos) -> pos)
        { line = 1; col = 1 } program
    in
    fail pos "the program declares no output"
  | _ -> ());
  { streams = List.rev !streams; nodes; outputs }
