type error = {
  pos : Ast.pos option;
  message : string;
}

let compile_string text =
  match Compile.compile (Check.check (Parser.parse text)) with
  | compiled -> Ok compiled
  | exception Lexer.Error (pos, message) -> Error { pos = Some pos; message }
  | exception Parser.Error (pos, message) -> Error { pos = Some pos; message }
  | exception Check.Error (pos, message) ->
    (* Check diagnostics always carry a real position now that
       literals are located and the no-output error points at the last
       declaration. *)
    Error { pos = Some pos; message }
  | exception Invalid_argument message -> Error { pos = None; message }

let compile_file ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> compile_string text
  | exception Sys_error message -> Error { pos = None; message }

let error_to_string err =
  match err.pos with
  | Some { Ast.line; col } ->
    Printf.sprintf "line %d, column %d: %s" line col err.message
  | None -> err.message

let describe compiled =
  let buffer = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let schema_to_string schema =
    String.concat ", "
      (List.map
         (fun (f, t) ->
           Printf.sprintf "%s: %s" f (Format.asprintf "%a" Ast.pp_field_type t))
         schema)
  in
  List.iteri
    (fun k (name, schema) ->
      out "input %d: %s (%s)\n" k name (schema_to_string schema))
    compiled.Compile.inputs;
  List.iter
    (fun (name, j) ->
      out "node %d: %s = %s\n" j name
        (Spe.Sop.name (Spe.Network.op compiled.Compile.network j)))
    compiled.Compile.node_index;
  List.iter
    (fun (name, j) -> out "output: %s (operator %d)\n" name j)
    compiled.Compile.outputs;
  Buffer.contents buffer
