open Ast

(* Expressions print with explicit precedence-aware parenthesization:
   parentheses only where the tree shape requires them. *)
let precedence = function
  | Binary (Or, _, _, _) -> 1
  | Binary (And, _, _, _) -> 2
  | Unary (Not, _) -> 3
  | Binary ((Eq | Neq | Lt | Le | Gt | Ge), _, _, _) -> 4
  | Binary ((Add | Sub), _, _, _) -> 5
  | Binary ((Mul | Div), _, _, _) -> 6
  | Unary (Neg, _) -> 7
  | Field _ | Int_lit _ | Float_lit _ | Str_lit _ -> 8

let escape_string s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec pp_expr_prec level fmt expr =
  let mine = precedence expr in
  let wrap = mine < level in
  if wrap then Format.pp_print_string fmt "(";
  (match expr with
  | Field (name, _) -> Format.pp_print_string fmt name
  | Int_lit (i, _) -> Format.pp_print_int fmt i
  | Float_lit (f, _) -> Format.pp_print_string fmt (float_literal f)
  | Str_lit (s, _) -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | Unary (Neg, e) ->
    (* Level 8 forces parentheses around any non-primary operand; in
       particular "--x" would lex as a comment. *)
    Format.fprintf fmt "-%a" (pp_expr_prec 8) e
  | Unary (Not, e) -> Format.fprintf fmt "not %a" (pp_expr_prec 3) e
  | Binary (op, a, b, _) ->
    let symbol =
      match op with
      | Add -> "+"
      | Sub -> "-"
      | Mul -> "*"
      | Div -> "/"
      | Eq -> "=="
      | Neq -> "!="
      | Lt -> "<"
      | Le -> "<="
      | Gt -> ">"
      | Ge -> ">="
      | And -> "and"
      | Or -> "or"
    in
    (* The parser associates and/or to the right and chains + - * / to
       the left; reprint respecting that so round-trips are exact. *)
    let left_level, right_level =
      match op with
      | And | Or -> (mine + 1, mine)
      | Eq | Neq | Lt | Le | Gt | Ge -> (mine + 1, mine + 1)
      | Add | Sub | Mul | Div -> (mine, mine + 1)
    in
    Format.fprintf fmt "%a %s %a" (pp_expr_prec left_level) a symbol
      (pp_expr_prec right_level) b);
  if wrap then Format.pp_print_string fmt ")"

let pp_expr fmt expr = pp_expr_prec 0 fmt expr

let pp_aggregate_call fmt = function
  | Agg_count -> Format.pp_print_string fmt "count()"
  | Agg_sum (f, _) -> Format.fprintf fmt "sum(%s)" f
  | Agg_avg (f, _) -> Format.fprintf fmt "avg(%s)" f
  | Agg_min (f, _) -> Format.fprintf fmt "min(%s)" f
  | Agg_max (f, _) -> Format.fprintf fmt "max(%s)" f

let comma pp fmt items =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp fmt items

let pp_body fmt = function
  | Filter { input = input, _; predicate } ->
    Format.fprintf fmt "filter %s where %a" input pp_expr predicate
  | Map { input = input, _; assignments } ->
    Format.fprintf fmt "map %s set { %a }" input
      (comma (fun fmt (f, e) -> Format.fprintf fmt "%s = %a" f pp_expr e))
      assignments
  | Select { input = input, _; keep } ->
    Format.fprintf fmt "select %s keep %a" input
      (comma (fun fmt (f, _) -> Format.pp_print_string fmt f))
      keep
  | Merge inputs ->
    Format.fprintf fmt "merge %a"
      (comma (fun fmt (name, _) -> Format.pp_print_string fmt name))
      inputs
  | Aggregate { input = input, _; window; slide; group_by; compute } ->
    Format.fprintf fmt "aggregate %s window %s" input (float_literal window);
    Option.iter (fun s -> Format.fprintf fmt " slide %s" (float_literal s)) slide;
    Option.iter (fun (g, _) -> Format.fprintf fmt " by %s" g) group_by;
    Format.fprintf fmt " compute { %a }"
      (comma (fun fmt (out, call) ->
           Format.fprintf fmt "%s = %a" out pp_aggregate_call call))
      compute
  | Join { left = left, _; right = right, _; window; left_key; right_key } ->
    Format.fprintf fmt "join %s, %s window %s on %s == %s" left right
      (float_literal window) (fst left_key) (fst right_key)
  | Distinct { input = input, _; window; key } ->
    Format.fprintf fmt "distinct %s window %s on %s" input
      (float_literal window) (fst key)

let pp_decl fmt = function
  | Stream_decl { name; fields; _ } ->
    Format.fprintf fmt "stream %s (%a);" name
      (comma (fun fmt (f, t) -> Format.fprintf fmt "%s: %a" f pp_field_type t))
      fields
  | Node_decl { name; body; _ } ->
    Format.fprintf fmt "node %s = %a;" name pp_body body
  | Output_decl (name, _) -> Format.fprintf fmt "output %s;" name

let pp_program fmt program =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_decl fmt program;
  Format.pp_print_newline fmt ()

let program_to_string program = Format.asprintf "%a" pp_program program
