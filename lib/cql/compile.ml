module Tuple = Spe.Tuple
module Value = Spe.Value
module Sop = Spe.Sop

type compiled = {
  network : Spe.Network.t;
  inputs : (string * Check.schema) list;
  node_index : (string * int) list;
  outputs : (string * int) list;
}

(* Runtime values during expression evaluation; the checker guarantees
   operands are compatible, so coercions below cannot fail. *)
type rv =
  | R_int of int
  | R_float of float
  | R_str of string
  | R_bool of bool

let rv_of_value = function
  | Value.Int i -> R_int i
  | Value.Float f -> R_float f
  | Value.Str s -> R_str s

let value_of_rv = function
  | R_int i -> Value.Int i
  | R_float f -> Value.Float f
  | R_str s -> Value.Str s
  | R_bool _ -> invalid_arg "Cql: boolean cannot be stored in a tuple"

let as_float = function
  | R_int i -> float_of_int i
  | R_float f -> f
  | R_str _ | R_bool _ -> invalid_arg "Cql: expected a number"

let as_bool = function
  | R_bool b -> b
  | R_int _ | R_float _ | R_str _ -> invalid_arg "Cql: expected a boolean"

let rec eval expr tuple =
  match expr with
  | Ast.Field (name, _) -> rv_of_value (Tuple.find tuple name)
  | Ast.Int_lit (i, _) -> R_int i
  | Ast.Float_lit (f, _) -> R_float f
  | Ast.Str_lit (s, _) -> R_str s
  | Ast.Unary (Ast.Neg, e) -> (
    match eval e tuple with
    | R_int i -> R_int (-i)
    | R_float f -> R_float (-.f)
    | R_str _ | R_bool _ -> invalid_arg "Cql: negating a non-number")
  | Ast.Unary (Ast.Not, e) -> R_bool (not (as_bool (eval e tuple)))
  | Ast.Binary (op, a, b, _) -> (
    match op with
    | Ast.And ->
      (* Short-circuit. *)
      R_bool (as_bool (eval a tuple) && as_bool (eval b tuple))
    | Ast.Or -> R_bool (as_bool (eval a tuple) || as_bool (eval b tuple))
    | Ast.Add | Ast.Sub | Ast.Mul -> (
      let va = eval a tuple and vb = eval b tuple in
      let combine i_op f_op =
        match (va, vb) with
        | R_int x, R_int y -> R_int (i_op x y)
        | _ -> R_float (f_op (as_float va) (as_float vb))
      in
      match op with
      | Ast.Add -> combine ( + ) ( +. )
      | Ast.Sub -> combine ( - ) ( -. )
      | _ -> combine ( * ) ( *. ))
    | Ast.Div -> R_float (as_float (eval a tuple) /. as_float (eval b tuple))
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let va = eval a tuple and vb = eval b tuple in
      let cmp =
        match (va, vb) with
        | R_str x, R_str y -> String.compare x y
        | _ -> Float.compare (as_float va) (as_float vb)
      in
      R_bool
        (match op with
        | Ast.Eq -> cmp = 0
        | Ast.Neq -> cmp <> 0
        | Ast.Lt -> cmp < 0
        | Ast.Le -> cmp <= 0
        | Ast.Gt -> cmp > 0
        | Ast.Ge -> cmp >= 0
        | _ -> assert false))

let compile_expr _schema expr tuple = value_of_rv (eval expr tuple)

let compile_predicate _schema expr tuple = as_bool (eval expr tuple)

let aggregate_fn = function
  | Ast.Agg_count -> Sop.Count
  | Ast.Agg_sum (f, _) -> Sop.Sum f
  | Ast.Agg_avg (f, _) -> Sop.Avg f
  | Ast.Agg_min (f, _) -> Sop.Min f
  | Ast.Agg_max (f, _) -> Sop.Max f

let compile checked =
  let input_index =
    List.mapi (fun k (name, _) -> (name, k)) checked.Check.streams
  in
  let node_index =
    List.mapi (fun j node -> (node.Check.name, j)) checked.Check.nodes
  in
  let source_of (name, _pos) =
    match List.assoc_opt name input_index with
    | Some k -> Query.Graph.Sys_input k
    | None -> Query.Graph.Op_output (List.assoc name node_index)
  in
  let sop_of node =
    let name = node.Check.name in
    match node.Check.body with
    | Ast.Filter { input = _; predicate } ->
      Sop.filter ~name (fun tuple -> as_bool (eval predicate tuple))
    | Ast.Map { input = _; assignments } ->
      Sop.map ~name (fun tuple ->
          List.fold_left
            (fun acc (field, expr) ->
              Tuple.set acc field (value_of_rv (eval expr acc)))
            tuple assignments)
    | Ast.Select { input = _; keep } -> Sop.project ~name (List.map fst keep)
    | Ast.Merge inputs -> Sop.union ~name ~arity:(List.length inputs) ()
    | Ast.Aggregate { input = _; window; slide; group_by; compute } ->
      Sop.aggregate ~name ~window ?slide
        ?group_by:(Option.map fst group_by)
        (List.map (fun (out, call) -> (out, aggregate_fn call)) compute)
    | Ast.Join { left = _; right = _; window; left_key; right_key } ->
      Sop.equi_join ~name ~window ~left_key:(fst left_key)
        ~right_key:(fst right_key) ()
    | Ast.Distinct { input = _; window; key } ->
      Sop.distinct ~name ~window ~key:(fst key) ()
  in
  let sources_of node =
    match node.Check.body with
    | Ast.Filter { input; _ }
    | Ast.Map { input; _ }
    | Ast.Select { input; _ }
    | Ast.Aggregate { input; _ } -> [ source_of input ]
    | Ast.Merge inputs -> List.map source_of inputs
    | Ast.Join { left; right; _ } -> [ source_of left; source_of right ]
    | Ast.Distinct { input; _ } -> [ source_of input ]
  in
  let network =
    Spe.Network.create
      ~n_inputs:(List.length checked.Check.streams)
      ~ops:(List.map (fun node -> (sop_of node, sources_of node)) checked.Check.nodes)
      ()
  in
  {
    network;
    inputs = checked.Check.streams;
    node_index;
    outputs =
      List.map
        (fun name -> (name, List.assoc name node_index))
        checked.Check.outputs;
  }
