(** Seeded, allocation-free integer mixing for keyed routing and
    sketches.  Works in native [int] (63 bits) rather than [Int64],
    whose arithmetic boxes on every operation — these hashes sit on
    the per-tuple routing hot path. *)

val mix : seed:int -> int -> int
(** Avalanche-mix a key under a seed; result is nonnegative.
    Deterministic: same [seed] and key give the same value on every
    run and platform word size 64. *)

val combine : int -> int -> int
(** Fold a second value into an existing hash. *)

val string_hash : seed:int -> string -> int
(** FNV-1a over the bytes, finished through {!mix}; nonnegative. *)
