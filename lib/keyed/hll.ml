(* rodlint: deterministic *)
(* rodlint: hot *)

(* HyperLogLog (Flajolet et al. 2007) over the 63-bit hashes of
   [Hashx]: the low [log2m] bits select a register, the rank of the
   lowest set bit of the remaining bits updates it.  Registers live in
   a [Bytes.t] so the whole sketch for log2m = 12 is 4 KiB and the
   update path touches one byte.  No large-range correction is needed:
   with 63-bit hashes the collision regime of the 32-bit original is
   out of reach. *)

type t = { log2m : int; m : int; seed : int; registers : Bytes.t }

let create ?(log2m = 12) ?(seed = 0x9e37) () =
  if log2m < 4 || log2m > 20 then invalid_arg "Hll.create: log2m must be in [4, 20]";
  { log2m; m = 1 lsl log2m; seed; registers = Bytes.make (1 lsl log2m) '\000' }

let std_error ~log2m = 1.04 /. sqrt (Float.of_int (1 lsl log2m))

let add_hash t h =
  let h = h land max_int in
  let j = h land (t.m - 1) in
  let w = h lsr t.log2m in
  let bits = 63 - t.log2m in
  let rho =
    if w = 0 then bits + 1
    else begin
      let r = ref 1 and v = ref w in
      while !v land 1 = 0 do
        incr r;
        v := !v lsr 1
      done;
      !r
    end
  in
  if rho > Char.code (Bytes.unsafe_get t.registers j) then
    Bytes.unsafe_set t.registers j (Char.unsafe_chr rho)

let add_int t k = add_hash t (Hashx.mix ~seed:t.seed k)
let add_string t s = add_hash t (Hashx.string_hash ~seed:t.seed s)

let alpha m =
  if m <= 16 then 0.673
  else if m <= 32 then 0.697
  else if m <= 64 then 0.709
  else 0.7213 /. (1. +. (1.079 /. Float.of_int m))

let estimate t =
  let sum = ref 0.0 and zeros = ref 0 in
  for j = 0 to t.m - 1 do
    let r = Char.code (Bytes.unsafe_get t.registers j) in
    if r = 0 then incr zeros;
    sum := !sum +. Float.ldexp 1.0 (-r)
  done;
  let m = Float.of_int t.m in
  let raw = alpha t.m *. m *. m /. !sum in
  if raw <= 2.5 *. m && !zeros > 0 then
    (* small-range correction: linear counting on empty registers *)
    m *. log (m /. Float.of_int !zeros)
  else raw

let merge_into ~into src =
  if into.log2m <> src.log2m || into.seed <> src.seed then
    invalid_arg "Hll.merge_into: sketches differ in log2m or seed";
  for j = 0 to into.m - 1 do
    if Bytes.unsafe_get src.registers j > Bytes.unsafe_get into.registers j
    then Bytes.unsafe_set into.registers j (Bytes.unsafe_get src.registers j)
  done

let copy t = { t with registers = Bytes.copy t.registers }
