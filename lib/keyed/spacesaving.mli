(** Space-Saving heavy-hitter sketch (Metwally et al. 2005): tracks at
    most [capacity] keys with guaranteed error at most [total /
    capacity] on any reported count.  The steady-state update — a key
    already monitored — is a hashtable lookup and a counter increment;
    eviction scans the fixed-size slot arrays.  Deterministic for a
    fixed insertion order. *)

type t

val create : capacity:int -> t

val add : t -> int -> unit
(** Count one occurrence of an integer key. *)

val total : t -> int
(** Number of [add]s so far. *)

val to_list : t -> (int * int * int) list
(** [(key, count, error)] for every monitored key, by descending count
    (ties by ascending key).  True count is in
    [[count - error, count]]. *)

val heavy_hitters : t -> min_share:float -> (int * float) list
(* rodunits: min_share:1 -> _ *)
(** Monitored keys whose estimated share of the stream is at least
    [min_share], with those shares, by descending count. *)
