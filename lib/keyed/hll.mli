(** Pure-OCaml HyperLogLog cardinality sketch (Flajolet et al. 2007),
    after the [slb2.Operator] pattern: a [2^log2m]-register byte array
    updated from 63-bit {!Hashx} hashes, with the small-range linear
    counting correction.  The update path is allocation-free; the
    sketch for the default [log2m = 12] is 4 KiB and its standard
    error [1.04 / sqrt m] is about 1.6%. *)

type t

val create : ?log2m:int -> ?seed:int -> unit -> t
(** [log2m] defaults to 12 (4096 registers); must be in [[4, 20]]. *)

val add_hash : t -> int -> unit
(** Feed an already-mixed hash (must be uniform over 63 bits). *)

val add_int : t -> int -> unit
(** Mix an integer key under the sketch's seed, then {!add_hash}. *)

val add_string : t -> string -> unit

val estimate : t -> float
(* rodunits: tuple *)
(** Current distinct-count estimate. *)

val merge_into : into:t -> t -> unit
(** Register-wise max; both sketches must share [log2m] and seed. *)

val copy : t -> t

val std_error : log2m:int -> float
(* rodunits: 1 *)
(** The theoretical relative standard error [1.04 / sqrt (2^log2m)]. *)
