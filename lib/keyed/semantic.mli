(** Semantic twin of {!Split}: expand one keyed operator of an SPE
    network into [splitter -> (route filter; replica) x k -> merger],
    with each replica's filter accepting exactly the keys its
    {!Partitioner} routes to it.  Splitting is semantics-preserving
    for per-key operators (grouped aggregates, keyed distinct,
    filters, maps): each group's tuples all land on one replica.

    Route filters bump [rod_keyed_routed_total{op,scheme,replica}]
    counters on the process-wide [rod.obs] registry. *)

type t = private {
  original : Spe.Network.t;
  network : Spe.Network.t;  (** The expanded network. *)
  op : int;  (** Split operator's index in [original]. *)
  splitter : int;  (** = [op]: identity map in [network]. *)
  route_filters : int array;  (** Per-replica route filter indices. *)
  replica_ops : int array;  (** Per-replica operator copy indices. *)
  merger : int;
  partitioner : Partitioner.t;
  key_of : Spe.Tuple.t -> int;
}

val split :
  ?claims:(int * int) list ->
  network:Spe.Network.t ->
  op:int ->
  key_of:(Spe.Tuple.t -> int) ->
  partitioner:Partitioner.t ->
  unit ->
  t
(** [claims] corrupts replicas' route tables for tamper tests: each
    [(replica, key)] makes that replica {e also} accept [key] even
    though the partitioner routes it elsewhere, duplicating the key's
    tuples downstream — [Oracle.split_differential] must catch it.
    @raise Invalid_argument unless the operator is single-input. *)

val key_of_field : ?seed:int -> string -> Spe.Tuple.t -> int
(** Integer routing key from a tuple field: [Int] values directly,
    strings and floats hashed. *)

val replicas : t -> int

val map_op : t -> int -> int
(** Split-network index of an original operator; the split operator
    itself maps to the merger. *)
