(** One-pass stream profiling that feeds the split planner: a
    HyperLogLog estimates how many distinct keys (state entries) a
    split operator carries, a Space-Saving sketch surfaces the heavy
    hitters, and {!hybrid_of_profile} turns both into a hybrid
    partitioner with a balance-optimal number of dedicated hot
    replicas. *)

type profile = {
  distinct : float; (* rodunits: tuple *)
      (** HyperLogLog estimate of distinct keys seen. *)
  hitters : (int * float) list;
      (** Heavy keys with stream shares, descending. *)
  total : int;  (** Keys streamed. *)
  hll : Hll.t;
}

val profile :
  ?log2m:int -> ?capacity:int -> ?seed:int -> ?min_share:float ->
  int array -> profile
(** Stream a key array through both sketches.  [min_share] (default
    0.01) is the reporting threshold for hitters; [capacity] (default
    64) the Space-Saving slot count; [log2m] (default 12) the
    HyperLogLog register exponent. *)

val choose_hot_count : replicas:int -> profile -> int
(** The number of hitters to isolate that minimizes the predicted max
    replica share (heaviest dedicated replica vs. cold mass spread
    over the remaining replicas). *)

val hybrid_of_profile : replicas:int -> seed:int -> profile -> Partitioner.t
