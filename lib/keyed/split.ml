(* rodlint: deterministic *)

(* Graph-to-graph split transform: expand one single-input linear
   operator into [splitter -> k replicas -> merger].  Because a linear
   operator's load is [cost * r] and its output [sel * r], giving
   replica [i] a share [s_i] of the key mass yields load [s_i * cost *
   r] and output [s_i * sel * r] — both exactly representable as a
   linear operator with scaled coefficients.  The split graph is
   therefore just another {!Query.Graph.t}: [Problem] / [Volume] /
   [Rod_algorithm] / [Local_search] run on it unchanged, which is the
   whole point.  The original operator keeps its index (it {e becomes}
   the splitter), replicas and merger are appended at the end, and
   every consumer of the original output is re-pointed at the merger.

   Join and variable-selectivity operators are refused: their load is
   not linear in the input rate, so share-scaling the coefficients
   would misstate it. *)

type t = {
  original : Query.Graph.t;
  graph : Query.Graph.t;
  op : int;
  shares : float array;
  splitter : int;
  replica_ops : int array;
  merger : int;
}

let replicas t = Array.length t.shares

(* original-graph operator index -> split-graph index (the split
   operator maps to the merger, whose output replaces its own). *)
let map_op t j = if j = t.op then t.merger else j

let normalize shares =
  let k = Array.length shares in
  if k < 2 then invalid_arg "Split.split: need at least 2 shares";
  Array.iter
    (fun s ->
      if (not (Float.is_finite s)) || s < 0.0 then
        invalid_arg "Split.split: shares must be finite and nonnegative")
    shares;
  let total = Array.fold_left ( +. ) 0.0 shares in
  if total <= 0.0 then invalid_arg "Split.split: shares must not all be zero";
  Array.map (fun s -> s /. total) shares

let split ?(route_cost = 0.0) ?(merge_cost = 0.0) g ~op:j ~shares =
  let m = Query.Graph.n_ops g in
  if j < 0 || j >= m then invalid_arg "Split.split: operator index out of range";
  let target = Query.Graph.op g j in
  let linear = Query.Op.linear_exn target in
  if Query.Op.arity target <> 1 then
    invalid_arg "Split.split: only single-input operators can be split";
  let shares = normalize shares in
  let k = Array.length shares in
  let cost = linear.Query.Op.costs.(0)
  and sel = linear.Query.Op.selectivities.(0) in
  let src = List.hd (Query.Graph.sources g j) in
  let splitter_op =
    Query.Op.map
      ~name:(target.Query.Op.name ^ ".split")
      ~xfer:(Query.Graph.arc_xfer_cost g src)
      ~cost:route_cost ()
  in
  let replica_op i =
    Query.Op.delay
      ~name:(Printf.sprintf "%s.r%d" target.Query.Op.name i)
      ~xfer:target.Query.Op.out_xfer_cost
      ~cost:(shares.(i) *. cost)
      ~sel:(shares.(i) *. sel)
      ()
  in
  let merger_op =
    Query.Op.union
      ~name:(target.Query.Op.name ^ ".merge")
      ~xfer:target.Query.Op.out_xfer_cost ~cost:merge_cost ~n_inputs:k ()
  in
  (* indices: originals keep 0..m-1 (j becomes the splitter), replicas
     are m..m+k-1, the merger is m+k *)
  let merger = m + k in
  let repoint = function
    | Query.Graph.Op_output j' when j' = j -> Query.Graph.Op_output merger
    | s -> s
  in
  let ops =
    List.init m (fun i ->
        if i = j then (splitter_op, [ src ])
        else
          (Query.Graph.op g i, List.map repoint (Query.Graph.sources g i)))
    @ List.init k (fun i -> (replica_op i, [ Query.Graph.Op_output j ]))
    @ [
        (merger_op, List.init k (fun i -> Query.Graph.Op_output (m + i)));
      ]
  in
  let input_xfer_cost = g.Query.Graph.input_xfer_cost in
  let graph =
    Query.Graph.create ~input_xfer_cost ~n_inputs:(Query.Graph.n_inputs g)
      ~ops ()
  in
  {
    original = g;
    graph;
    op = j;
    shares;
    splitter = j;
    replica_ops = Array.init k (fun i -> m + i);
    merger;
  }

let check t ~caps =
  Analysis.Plan_check.check_model (Query.Load_model.derive t.graph) ~caps

let split_checked ?route_cost ?merge_cost g ~op ~shares ~caps =
  let t = split ?route_cost ?merge_cost g ~op ~shares in
  Analysis.Plan_check.assert_ok ~what:"keyed split graph" (check t ~caps);
  t

(* The natural split target: the single-input linear operator with the
   largest load at a rate point (or largest coefficient norm when no
   rates are given). *)
let hottest_splittable ?rates g =
  let model = lazy (Query.Load_model.derive g) in
  let weight j =
    match rates with
    | Some sys_rates ->
      Query.Load_model.op_load_at (Lazy.force model) ~sys_rates j
    | None -> (
      let op = Query.Graph.op g j in
      match op.Query.Op.kind with
      | Query.Op.Linear l -> l.Query.Op.costs.(0)
      | _ -> 0.0)
  in
  let best = ref None in
  for j = 0 to Query.Graph.n_ops g - 1 do
    let op = Query.Graph.op g j in
    let splittable =
      Query.Op.arity op = 1
      && match op.Query.Op.kind with Query.Op.Linear _ -> true | _ -> false
    in
    if splittable then begin
      let w = weight j in
      match !best with
      | Some (_, w') when w' >= w -> ()
      | _ -> best := Some (j, w)
    end
  done;
  Option.map fst !best
