(* rodlint: deterministic *)
(* rodlint: hot *)

(* Seeded avalanche mixing over OCaml's native tagged int.  Int64
   arithmetic allocates a box per operation, so everything here works
   in plain [int]: 63 bits of state on 64-bit platforms, which is
   plenty for replica routing and sketch bucketing.  The constants are
   the splitmix64 finalizer's, truncated to fit OCaml's int literals;
   multiplication wraps, which is exactly what a mixer wants. *)

let golden = 0x9e3779b97f4a7c1
let mix_a = 0xbf58476d1ce4e5b
let mix_b = 0x94d049bb133111e

let mix ~seed x =
  let h0 = x lxor ((seed + 1) * golden) in
  let h1 = (h0 lxor (h0 lsr 30)) * mix_a in
  let h2 = (h1 lxor (h1 lsr 27)) * mix_b in
  (h2 lxor (h2 lsr 31)) land max_int

let combine a b = mix ~seed:(a land 0xffffff) b

(* FNV-1a over the bytes, finished through [mix] so short keys still
   avalanche.  The loop body is straight int arithmetic: no
   allocation per character. *)
let fnv_prime = 0x100000001b3

let string_hash ~seed s =
  let h = ref (0x3f29ce484222325 lxor ((seed + 1) * golden)) in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * fnv_prime
  done;
  mix ~seed !h
