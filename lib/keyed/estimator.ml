(* rodlint: deterministic *)

(* Sketch-driven replica load estimation: one pass over a key stream
   feeds the HyperLogLog (how many distinct groups, i.e. how much
   per-key state a replica will hold) and the Space-Saving sketch
   (which keys are too heavy to share a replica).  [hybrid_of_profile]
   turns the profile into a hybrid partitioner by choosing how many
   hitters to isolate: for each candidate count [h] it predicts the
   max replica share — the heaviest dedicated replica versus the cold
   mass spread over the remaining replicas — and keeps the [h] that
   minimizes it.  Isolating too many hitters starves the cold side
   (the left-over replicas must absorb all the tail), so the greedy
   scan regularly settles on one or two. *)

type profile = {
  distinct : float;  (** HyperLogLog estimate of distinct keys seen. *)
  hitters : (int * float) list;
      (** Heavy keys with stream shares, descending. *)
  total : int;  (** Keys streamed. *)
  hll : Hll.t;
}

let profile ?(log2m = 12) ?(capacity = 64) ?(seed = 0x9e37) ?(min_share = 0.01)
    keys =
  let hll = Hll.create ~log2m ~seed () in
  let ss = Spacesaving.create ~capacity in
  Array.iter
    (fun k ->
      Hll.add_int hll k;
      Spacesaving.add ss k)
    keys;
  {
    distinct = Hll.estimate hll;
    hitters = Spacesaving.heavy_hitters ss ~min_share;
    total = Array.length keys;
    hll;
  }

(* Predicted max replica share when the [h] heaviest hitters are
   pinned round-robin onto [h] dedicated replicas and the rest of the
   mass spreads over the other [replicas - h].  The cold side is not
   uniform: the heaviest non-isolated hitter still lands whole on one
   cold replica, on top of that replica's even slice of the remaining
   mass — without this term, [h = 0] looks perfectly balanced and no
   hitter ever gets isolated. *)
let predicted_max_share ~replicas ~shares h =
  let hot = Array.make (max h 1) 0.0 in
  let hot_mass = ref 0.0 and next = ref 0.0 in
  List.iteri
    (fun rank s ->
      if rank < h then begin
        hot.(rank mod h) <- hot.(rank mod h) +. s;
        hot_mass := !hot_mass +. s
      end
      else if rank = h then next := s)
    shares;
  let cold_mass = 1.0 -. !hot_mass in
  let cold =
    !next +. ((cold_mass -. !next) /. Float.of_int (replicas - h))
  in
  if h = 0 then cold else max (Array.fold_left max 0.0 hot) cold

let choose_hot_count ~replicas profile =
  let shares = List.map snd profile.hitters in
  let limit = min (List.length shares) (replicas - 1) in
  let best = ref 0 and best_share = ref (predicted_max_share ~replicas ~shares 0) in
  for h = 1 to limit do
    let s = predicted_max_share ~replicas ~shares h in
    if s < !best_share then begin
      best := h;
      best_share := s
    end
  done;
  !best

let hybrid_of_profile ~replicas ~seed profile =
  let hot_n = choose_hot_count ~replicas profile in
  let hot_keys =
    Array.of_list
      (List.filteri (fun rank _ -> rank < hot_n)
         (List.map fst profile.hitters))
  in
  Partitioner.hybrid ~hot_replicas:hot_n ~replicas ~seed ~hot_keys ()
