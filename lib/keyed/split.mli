(** The split transform: expand one single-input linear operator of a
    query graph into [splitter -> k replicas -> merger] arcs, with
    replica [i] carrying a share [shares.(i)] of the key mass.  A
    linear operator's load and output scale linearly with its input
    rate, so share-scaling its cost and selectivity represents the
    replica {e exactly} in the load model — the split graph is an
    ordinary {!Query.Graph.t} over which [Problem], [Feasible.Volume],
    [Rod_algorithm] and [Local_search] run unchanged.

    Nonlinear operators (joins, drifting selectivity) are refused. *)

type t = private {
  original : Query.Graph.t;
  graph : Query.Graph.t;  (** The expanded graph. *)
  op : int;  (** Split operator's index in [original]. *)
  shares : float array;  (** Normalized replica key-mass shares. *)
  splitter : int;  (** = [op]: the splitter takes the old index. *)
  replica_ops : int array;  (** Replica indices in [graph]. *)
  merger : int;  (** Merger index in [graph]. *)
}

val split :
  ?route_cost:float -> ?merge_cost:float ->
  Query.Graph.t -> op:int -> shares:float array -> t
(** [route_cost] / [merge_cost] (default 0) are the per-tuple CPU
    costs of the splitter and merger.  Shares are normalized to sum 1;
    at least 2 are required.
    @raise Invalid_argument if the operator is not single-input linear
    or the shares are degenerate. *)

val check : t -> caps:Linalg.Vec.t -> Analysis.Plan_check.report
(** Re-derive the split graph's load model and run [Plan_check] on it. *)

val split_checked :
  ?route_cost:float -> ?merge_cost:float ->
  Query.Graph.t -> op:int -> shares:float array -> caps:Linalg.Vec.t -> t
(** {!split}, then {!check}, raising on any diagnostic. *)

val replicas : t -> int

val map_op : t -> int -> int
(** Original-graph operator index to split-graph index; the split
    operator itself maps to the merger (whose output stands in for
    its own). *)

val hottest_splittable : ?rates:Linalg.Vec.t -> Query.Graph.t -> int option
(** The single-input linear operator with the largest load at [rates]
    (largest per-tuple cost when no rates are given) — the natural
    split target.  [None] when the graph has no splittable operator. *)
