(* rodlint: deterministic *)
(* rodlint: hot *)

(* Space-Saving heavy-hitter sketch (Metwally et al. 2005) with a
   fixed capacity: monitored keys live in flat arrays, an index
   hashtable maps key -> slot.  Steady state (key already monitored)
   is a lookup and a counter bump; only the eviction path — replacing
   the minimum-count slot — scans the arrays, and capacities are small
   (tens of slots), so that scan stays cheap and allocation-free.
   Ties on the minimum break toward the lowest slot index, keeping the
   sketch deterministic for a fixed insertion order. *)

type t = {
  capacity : int;
  keys : int array;
  counts : int array;
  errs : int array;  (** overestimation bound of each slot's count *)
  index : (int, int) Hashtbl.t;
  mutable size : int;
  mutable total : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Spacesaving.create: capacity must be positive";
  {
    capacity;
    keys = Array.make capacity 0;
    counts = Array.make capacity 0;
    errs = Array.make capacity 0;
    index = Hashtbl.create (2 * capacity);
    size = 0;
    total = 0;
  }

let add t key =
  t.total <- t.total + 1;
  match Hashtbl.find t.index key with
  | slot -> t.counts.(slot) <- t.counts.(slot) + 1
  | exception Not_found ->
    if t.size < t.capacity then begin
      let slot = t.size in
      t.size <- t.size + 1;
      t.keys.(slot) <- key;
      t.counts.(slot) <- 1;
      t.errs.(slot) <- 0;
      Hashtbl.replace t.index key slot
    end
    else begin
      (* evict the minimum-count slot; the newcomer inherits its count
         as the overestimation error *)
      let min_slot = ref 0 in
      for slot = 1 to t.capacity - 1 do
        if t.counts.(slot) < t.counts.(!min_slot) then min_slot := slot
      done;
      let slot = !min_slot in
      Hashtbl.remove t.index t.keys.(slot);
      Hashtbl.replace t.index key slot;
      t.errs.(slot) <- t.counts.(slot);
      t.counts.(slot) <- t.counts.(slot) + 1;
      t.keys.(slot) <- key
    end

let total t = t.total

let to_list t =
  let entries = ref [] in
  for slot = t.size - 1 downto 0 do
    (* rodscan: alloc-ok to_list materializes the heavy-hitter report once per extraction, not per update *)
    entries := (t.keys.(slot), t.counts.(slot), t.errs.(slot)) :: !entries
  done;
  List.sort
    (fun (k1, c1, _) (k2, c2, _) ->
      if c1 <> c2 then Int.compare c2 c1 else Int.compare k1 k2)
    !entries

let heavy_hitters t ~min_share =
  if t.total = 0 then []
  else
    let tot = Float.of_int t.total in
    List.filter_map
      (fun (key, count, _) ->
        let share = Float.of_int count /. tot in
        if share >= min_share then Some (key, share) else None)
      (to_list t)
