(* rodlint: deterministic *)

(* Semantic twin of {!Split}: expand one keyed operator of an
   {!Spe.Network.t} into [splitter -> (route filter; replica) x k ->
   merger].  The splitter is an identity map; each replica sits behind
   a filter that accepts exactly the keys the partitioner routes to
   it, so a replica's groups are a disjoint subset of the original
   operator's and the union of all replica outputs equals the unsplit
   output once both runs drain.  Route filters bump a per-replica
   [rod.obs] counter, giving live per-replica routed totals.

   In a real deployment each replica holds its own copy of the route
   table; [claims] models exactly that copy going bad — the listed
   replicas additionally accept keys the partitioner routes elsewhere,
   which duplicates those keys' tuples downstream.  The chaos
   tamper-negative test relies on [Oracle.split_differential]
   catching this. *)

type t = {
  original : Spe.Network.t;
  network : Spe.Network.t;
  op : int;
  splitter : int;
  route_filters : int array;
  replica_ops : int array;
  merger : int;
  partitioner : Partitioner.t;
  key_of : Spe.Tuple.t -> int;
}

let replicas t = Array.length t.replica_ops
let map_op t j = if j = t.op then t.merger else j

let key_of_field ?(seed = 0) field tu =
  match Spe.Tuple.find tu field with
  | Spe.Value.Int k -> k
  | Spe.Value.Str s -> Hashx.string_hash ~seed s
  | Spe.Value.Float f -> Hashx.mix ~seed (Hashtbl.hash f)

let rename suffix op =
  let base = Spe.Sop.name op in
  let name = base ^ suffix in
  match op with
  | Spe.Sop.Filter f -> Spe.Sop.Filter { f with name }
  | Spe.Sop.Map m -> Spe.Sop.Map { m with name }
  | Spe.Sop.Project p -> Spe.Sop.Project { p with name }
  | Spe.Sop.Union u -> Spe.Sop.Union { u with name }
  | Spe.Sop.Aggregate a -> Spe.Sop.Aggregate { a with name }
  | Spe.Sop.Equi_join j -> Spe.Sop.Equi_join { j with name }
  | Spe.Sop.Distinct d -> Spe.Sop.Distinct { d with name }

let split ?(claims = []) ~network ~op:j ~key_of ~partitioner () =
  let m = Spe.Network.n_ops network in
  if j < 0 || j >= m then invalid_arg "Semantic.split: operator index out of range";
  let target = Spe.Network.op network j in
  if Spe.Sop.arity target <> 1 then
    invalid_arg "Semantic.split: only single-input operators can be split";
  let k = Partitioner.replicas partitioner in
  let base = Spe.Sop.name target in
  let src = List.hd (Spe.Network.sources network j) in
  List.iter
    (fun (r, _) ->
      if r < 0 || r >= k then
        invalid_arg "Semantic.split: claim replica out of range")
    claims;
  let routed =
    Array.init k (fun r ->
        Obs.counter
          ~labels:
            [
              ("op", base);
              ("scheme", Partitioner.scheme_name partitioner);
              ("replica", string_of_int r);
            ]
          ~help:"Tuples routed to a keyed replica" "rod_keyed_routed_total")
  in
  let route_filter r =
    let claimed = List.filter_map (fun (r', key) -> if r' = r then Some key else None) claims in
    Spe.Sop.filter
      ~name:(Printf.sprintf "%s.route%d" base r)
      (fun tu ->
        let key = key_of tu in
        if Partitioner.route partitioner key = r || List.mem key claimed
        then begin
          Obs.Counter.incr routed.(r);
          true
        end
        else false)
  in
  (* indices: originals keep 0..m-1 (j becomes the splitter), replica
     [r]'s route filter is m+2r and its operator copy m+2r+1, the
     merger is m+2k *)
  let merger = m + (2 * k) in
  let repoint = function
    | Query.Graph.Op_output j' when j' = j -> Query.Graph.Op_output merger
    | s -> s
  in
  let ops =
    List.init m (fun i ->
        if i = j then (Spe.Sop.map ~name:(base ^ ".split") (fun tu -> tu), [ src ])
        else
          ( Spe.Network.op network i,
            List.map repoint (Spe.Network.sources network i) ))
    @ List.concat
        (List.init k (fun r ->
             [
               (route_filter r, [ Query.Graph.Op_output j ]);
               ( rename (Printf.sprintf ".r%d" r) target,
                 [ Query.Graph.Op_output (m + (2 * r)) ] );
             ]))
    @ [
        ( Spe.Sop.union ~name:(base ^ ".merge") ~arity:k (),
          List.init k (fun r -> Query.Graph.Op_output (m + (2 * r) + 1)) );
      ]
  in
  let network' = Spe.Network.create ~n_inputs:(Spe.Network.n_inputs network) ~ops () in
  {
    original = network;
    network = network';
    op = j;
    splitter = j;
    route_filters = Array.init k (fun r -> m + (2 * r));
    replica_ops = Array.init k (fun r -> m + (2 * r) + 1);
    merger;
    partitioner;
    key_of;
  }
