(** Keyed partitioners: the per-key routing decision that spreads a
    hot stateful operator over [replicas] replicas
    (arXiv 1610.05121).

    All three schemes route a given key to exactly one replica — group
    state never straddles replicas — and all are deterministic under a
    fixed seed, configuration and warm-up stream.  Steady-state
    {!route} is a pure, allocation-free lookup. *)

type scheme =
  | Uniform  (** seeded hash modulo replica count *)
  | Pkg
      (** sticky partial key grouping: two hash choices, the
          lesser-loaded chosen at first encounter, then fixed *)
  | Hybrid
      (** heavy hitters pinned to dedicated replicas, the remaining
          keys hashed over the rest *)

type t

val uniform : replicas:int -> seed:int -> unit -> t
val pkg : replicas:int -> seed:int -> unit -> t

val hybrid :
  ?hot_replicas:int -> replicas:int -> seed:int -> hot_keys:int array ->
  unit -> t
(** [hot_keys] (by descending mass, as a sketch reports them) are
    pinned round-robin onto the first [hot_replicas] replicas
    (default [min (Array.length hot_keys) (replicas - 1)]); all other
    keys hash over the remaining replicas. *)

val route : t -> int -> int
(** The replica a key's tuples go to.  Pure; for [Pkg] keys unseen
    during {!warm} it falls back to the first hash choice. *)

val observe : t -> int -> int
(** Route one tuple's key, updating the per-replica load counters and
    (for [Pkg]) making the sticky two-choice assignment on first
    encounter. *)

val warm : t -> int array -> unit
(** {!observe} every key of a stream, in order. *)

val replicas : t -> int
val scheme : t -> scheme
val scheme_name : t -> string

val loads : t -> int array
(** Tuples routed per replica so far (a copy). *)

val shares : t -> float array
(** [loads] normalized to sum 1 (uniform when nothing routed yet). *)

val max_share : t -> float
(* rodunits: 1 *)

val export_obs : t -> unit
(** Publish per-replica routed counts as
    [rod_keyed_replica_routed{scheme,replica}] gauges on the
    process-wide [rod.obs] registry. *)
