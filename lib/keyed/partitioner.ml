(* rodlint: deterministic *)
(* rodlint: hot *)

(* Keyed partitioners (arXiv 1610.05121 §3): the routing decision for
   a key, replicated [replicas] ways.

   - [Uniform]: seeded hash modulo replica count; stateless and pure.
   - [Pkg]: partial key grouping by power of two choices, made
     {e sticky}: the first time a key is seen (during [warm]) the
     lesser-loaded of its two hash candidates is chosen and recorded,
     and every later tuple of that key follows the recorded choice.
     Stickiness keeps per-key state on a single replica — an
     aggregate's groups never straddle replicas — at the price of the
     classic PKG's per-tuple rebalancing.
   - [Hybrid]: the sketch-identified heavy hitters are pinned
     round-robin onto [hot_replicas] dedicated replicas; every other
     key hashes uniformly over the remaining ones.

   Steady-state routing (key already assigned) is a pure lookup with
   no allocation; only first encounters during [warm] extend the
   sticky table. *)

type scheme = Uniform | Pkg | Hybrid

type t = {
  replicas : int;
  seed : int;
  scheme : scheme;
  hot_replicas : int;  (** [Hybrid]: replicas reserved for hot keys. *)
  loads : int array;  (** tuples routed per replica during [warm] *)
  sticky : (int, int) Hashtbl.t;  (** [Pkg]: key -> chosen replica *)
  hot : (int, int) Hashtbl.t;  (** [Hybrid]: hot key -> dedicated replica *)
}

let check_replicas replicas =
  if replicas < 2 then invalid_arg "Partitioner: need at least 2 replicas"

let uniform ~replicas ~seed () =
  check_replicas replicas;
  {
    replicas;
    seed;
    scheme = Uniform;
    hot_replicas = 0;
    loads = Array.make replicas 0;
    sticky = Hashtbl.create 1;
    hot = Hashtbl.create 1;
  }

let pkg ~replicas ~seed () =
  check_replicas replicas;
  { (uniform ~replicas ~seed ()) with scheme = Pkg; sticky = Hashtbl.create 1024 }

let hybrid ?hot_replicas ~replicas ~seed ~hot_keys () =
  check_replicas replicas;
  let n_hot = Array.length hot_keys in
  let hot_replicas =
    match hot_replicas with
    | Some h ->
      if h < 0 || h >= replicas then
        invalid_arg "Partitioner.hybrid: hot_replicas must be in [0, replicas)";
      min h n_hot
    | None -> min n_hot (replicas - 1)
  in
  let hot = Hashtbl.create (2 * max 1 n_hot) in
  if hot_replicas > 0 then
    Array.iteri
      (fun rank key ->
        if not (Hashtbl.mem hot key) then
          Hashtbl.replace hot key (rank mod hot_replicas))
      hot_keys;
  {
    replicas;
    seed;
    scheme = Hybrid;
    hot_replicas;
    loads = Array.make replicas 0;
    sticky = Hashtbl.create 1;
    hot;
  }

let replicas t = t.replicas
let scheme t = t.scheme

let scheme_name t =
  match t.scheme with Uniform -> "uniform" | Pkg -> "pkg" | Hybrid -> "hybrid"

(* Pure routing: where a key's tuples go.  For [Pkg] a key never seen
   during [warm] falls back to its first hash choice, so [route] is
   total and deterministic either way. *)
let route t key =
  match t.scheme with
  | Uniform -> Hashx.mix ~seed:t.seed key mod t.replicas
  | Pkg -> (
    match Hashtbl.find t.sticky key with
    | r -> r
    | exception Not_found -> Hashx.mix ~seed:t.seed key mod t.replicas)
  | Hybrid -> (
    match Hashtbl.find t.hot key with
    | r -> r
    | exception Not_found ->
      let cold = t.replicas - t.hot_replicas in
      t.hot_replicas + (Hashx.mix ~seed:t.seed key mod cold))

(* Route one key, learning sticky assignments and load counts.  The
   two-choice decision compares the running load counters at first
   encounter, then sticks. *)
let observe t key =
  let r =
    match t.scheme with
    | Uniform | Hybrid -> route t key
    | Pkg -> (
      match Hashtbl.find t.sticky key with
      | r -> r
      | exception Not_found ->
        let c1 = Hashx.mix ~seed:t.seed key mod t.replicas in
        let c2 = Hashx.mix ~seed:(t.seed + 1) key mod t.replicas in
        let r = if t.loads.(c2) < t.loads.(c1) then c2 else c1 in
        Hashtbl.replace t.sticky key r;
        r)
  in
  t.loads.(r) <- t.loads.(r) + 1;
  r

let warm t keys =
  for i = 0 to Array.length keys - 1 do
    ignore (observe t (Array.unsafe_get keys i))
  done

let loads t = Array.copy t.loads

let shares t =
  let total = Array.fold_left ( + ) 0 t.loads in
  if total = 0 then Array.make t.replicas (1.0 /. Float.of_int t.replicas)
  else
    Array.map (fun l -> Float.of_int l /. Float.of_int total) t.loads

let max_share t = Array.fold_left max 0.0 (shares t)

let export_obs t =
  let name = scheme_name t in
  Array.iteri
    (fun r l ->
      let g =
        Obs.gauge
          ~labels:[ ("scheme", name); ("replica", string_of_int r) ]
          ~help:"Tuples routed to a keyed replica during partitioner warm-up"
          "rod_keyed_replica_routed"
      in
      Obs.Gauge.set g (Float.of_int l))
    t.loads
