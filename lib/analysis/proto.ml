(* rodproto's engine: a path-sensitive typestate walk over the
   pause–drain–resume migration protocol, plus a gated-mutation
   analysis proving every deployed-assignment write is dominated by a
   Plan_check call.  Units opt in with a protocol marker and name their
   protocol state with role comments; see proto.mli for the rule
   catalogue and marker grammar.  Like Scan, the marker strings are
   assembled at runtime so this file's own source never matches
   them. *)

open Typedtree
module SSet = Set.Make (String)

let protocol_marker = "rodproto: " ^ "protocol"
let role_marker = "rodproto: " ^ "role "
let gated_by_marker = "rodproto: " ^ "gated-by "
let expect_marker = "rodproto-" ^ "expect:"
let passes = [ "protocol-typestate"; "gated-mutation" ]

let rules =
  [
    ( "proto/drain-without-pause",
      "a drain event is emitted while the operator is not paused" );
    ( "proto/double-resume",
      "an operator is resumed when it is already running" );
    ( "proto/missed-resume",
      "a drain-event handler path (typically the abort path) never schedules \
       the resume" );
    ( "proto/unguarded-send",
      "a tuple is delivered into an input queue without testing the paused \
       state" );
    ( "proto/ungated-mutation",
      "deployed-assignment state is mutated on a path not dominated by \
       Plan_check" );
    ( "proto/ungated-plan",
      "a Plan.make materialization is not dominated by Plan_check" );
    ( "proto/stale-gate",
      "a gated-by hatch names a function that is unknown or no longer calls \
       Plan_check" );
    ("proto/unused-hatch", "a gated-by hatch suppresses nothing");
    ( "proto/missing-role",
      "a protocol-marked module declares an unusable role set, or a role \
       marker binds no declaration" );
  ]

let sarif_rules =
  Sarif.rules_of_catalogue
    ~help_uri:"DESIGN.md#13-protocol-typestate-verification-rodproto" rules

(* ---------- the typestate lattice ---------- *)

module State = struct
  type t = Bot | Running | Paused | Draining | Resuming | Top
  type event = Pause | Drain | Schedule | Resume

  let all = [ Bot; Running; Paused; Draining; Resuming; Top ]
  let events = [ Pause; Drain; Schedule; Resume ]
  let equal (a : t) (b : t) = a = b

  let join a b =
    if a = b then a
    else match (a, b) with Bot, x | x, Bot -> x | _ -> Top

  let leq a b = equal (join a b) b

  (* The happy path threads Running -> Paused -> Draining -> Resuming
     -> Running; any off-protocol event degrades to Top ("unknown"), on
     which the checks that would otherwise fire stay silent — the walk
     over-approximates control flow, so Top must never assert. *)
  let transfer ev st =
    match st with
    | Bot -> Bot
    | Top -> Top
    | _ -> (
      match (ev, st) with
      | Pause, Running -> Paused
      | Drain, Paused -> Draining
      | Schedule, Draining -> Resuming
      | Resume, (Resuming | Paused) -> Running
      | _ -> Top)

  let to_string = function
    | Bot -> "Bot"
    | Running -> "Running"
    | Paused -> "Paused"
    | Draining -> "Draining"
    | Resuming -> "Resuming"
    | Top -> "Top"

  let event_to_string = function
    | Pause -> "Pause"
    | Drain -> "Drain"
    | Schedule -> "Schedule"
    | Resume -> "Resume"
end

(* ---------- roles and unit metadata ---------- *)

type role =
  | Rpaused
  | Rpending
  | Rbuffer
  | Rinput_queue
  | Rassignment
  | Rdrain
  | Rresume

let role_of_string = function
  | "paused" -> Some Rpaused
  | "pending" -> Some Rpending
  | "buffer" -> Some Rbuffer
  | "input-queue" -> Some Rinput_queue
  | "deployed-assignment" -> Some Rassignment
  | "drain-event" -> Some Rdrain
  | "resume-event" -> Some Rresume
  | _ -> None

let find_substring line needle =
  let hl = String.length line and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then None
    else if String.sub line i nl = needle then Some i
    else scan (i + 1)
  in
  scan 0

let contains_substring haystack needle = find_substring haystack needle <> None

(* The remainder of [line] after [marker], clipped at a comment
   close. *)
let rest_after line marker =
  match find_substring line marker with
  | None -> None
  | Some i ->
    let rest =
      String.sub line
        (i + String.length marker)
        (String.length line - i - String.length marker)
    in
    Some
      (match find_substring rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest)

let token_after line marker =
  match rest_after line marker with
  | None -> None
  | Some rest -> (
    match
      String.split_on_char ' ' (String.trim rest)
      |> List.filter (fun t -> t <> "")
    with
    | t :: _ -> Some t
    | [] -> None)

type hatch = { fn : string; hline : int; mutable used : bool }

type meta = {
  protocol : bool;
  protocol_line : int;
  role_lines : (int * role) list;  (* marker line -> declared role *)
  bad_roles : (int * string) list;  (* unknown role spellings *)
  hatches : (int, hatch) Hashtbl.t;
}

let meta_of_unit (u : Scan.unit_info) =
  let protocol = ref false
  and protocol_line = ref 1
  and role_lines = ref []
  and bad_roles = ref []
  and hatches = Hashtbl.create 7 in
  List.iteri
    (fun idx line ->
      let ln = idx + 1 in
      if contains_substring line protocol_marker && not !protocol then begin
        protocol := true;
        protocol_line := ln
      end;
      (match token_after line role_marker with
      | Some tok -> (
        match role_of_string tok with
        | Some r -> role_lines := (ln, r) :: !role_lines
        | None -> bad_roles := (ln, tok) :: !bad_roles)
      | None -> ());
      match token_after line gated_by_marker with
      | Some fn -> Hashtbl.replace hatches ln { fn; hline = ln; used = false }
      | None -> ())
    (String.split_on_char '\n' u.Scan.text);
  {
    protocol = !protocol;
    protocol_line = !protocol_line;
    role_lines = List.rev !role_lines;
    bad_roles = List.rev !bad_roles;
    hatches;
  }

let expect_of_unit (u : Scan.unit_info) =
  String.split_on_char '\n' u.Scan.text
  |> List.concat_map (fun line ->
         match rest_after line expect_marker with
         | None -> []
         | Some rest ->
           String.split_on_char ' ' rest
           |> List.concat_map (String.split_on_char ',')
           |> List.filter (fun t -> t <> ""))

let relevant u =
  let m = meta_of_unit u in
  m.protocol || m.role_lines <> []

(* ---------- role binding ----------

   A role marker binds every declaration whose name sits on the same
   line: value-binding idents (keyed by [Ident.unique_name], so
   shadowing never leaks a role), variant constructors, and record
   labels (keyed by name). *)

type roles = {
  idents : (string, role) Hashtbl.t;
  ctors : (string, role) Hashtbl.t;
  fields : (string, role) Hashtbl.t;
  bound_lines : (int, unit) Hashtbl.t;
  mutable count : int;
}

let bind_roles (u : Scan.unit_info) (meta : meta) =
  let roles =
    {
      idents = Hashtbl.create 16;
      ctors = Hashtbl.create 16;
      fields = Hashtbl.create 16;
      bound_lines = Hashtbl.create 16;
      count = 0;
    }
  in
  let line_role = Hashtbl.create 16 in
  List.iter (fun (ln, r) -> Hashtbl.replace line_role ln r) meta.role_lines;
  let bind tbl key (loc : Location.t) =
    let ln = loc.loc_start.Lexing.pos_lnum in
    match Hashtbl.find_opt line_role ln with
    | Some r ->
      Hashtbl.replace tbl key r;
      Hashtbl.replace roles.bound_lines ln ();
      roles.count <- roles.count + 1
    | None -> ()
  in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_var (id, name) -> bind roles.idents (Ident.unique_name id) name.loc
    | Tpat_alias (_, id, name) ->
      bind roles.idents (Ident.unique_name id) name.loc
    | _ -> ());
    Tast_iterator.default_iterator.pat it p
  in
  let structure_item it si =
    (match si.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun td ->
          match td.typ_kind with
          | Ttype_variant cds ->
            List.iter
              (fun cd -> bind roles.ctors cd.cd_name.txt cd.cd_name.loc)
              cds
          | Ttype_record lds ->
            List.iter
              (fun ld -> bind roles.fields ld.ld_name.txt ld.ld_name.loc)
              lds
          | _ -> ())
        decls
    | _ -> ());
    Tast_iterator.default_iterator.structure_item it si
  in
  let it = { Tast_iterator.default_iterator with pat; structure_item } in
  it.structure it u.Scan.str;
  roles

(* ---------- diagnostics ---------- *)

type ctx = { mutable diags : Lint.diag list; mutable hatches_used : int }

let add_line_diag ctx (u : Scan.unit_info) line rule message =
  ctx.diags <-
    { Lint.file = u.Scan.source; line; col = 0; rule; message } :: ctx.diags

let add_diag ctx (u : Scan.unit_info) (loc : Location.t) rule fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        {
          Lint.file = u.Scan.source;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        }
        :: ctx.diags)
    fmt

(* ---------- the walk ---------- *)

type flow = { st : State.t; scheduled : bool; gated : bool }

type env = {
  u : Scan.unit_info;
  roles : roles;
  meta : meta;
  ctx : ctx;
  guarded : bool;  (* under a conditional that tests the paused state *)
}

let entry_flow ?(gated = false) () =
  { st = State.Running; scheduled = false; gated }

(* Branch merge: state joins; the must-facts (a resume was scheduled, a
   Plan_check dominates) survive only if they hold on every path. *)
let merge a b =
  {
    st = State.join a.st b.st;
    scheduled = a.scheduled && b.scheduled;
    gated = a.gated && b.gated;
  }

let ident_comps (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Scan.canon_of_path p
  | _ -> []

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last2 tl
  | [] -> None

let pos_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let gate_fns =
  SSet.of_list [ "assert_ok"; "check_graph"; "check_model"; "check_matrix"; "ok" ]

let is_gate comps =
  List.mem "Plan_check" comps
  && match List.rev comps with last :: _ -> SSet.mem last gate_fns | [] -> false

let is_array_get = function
  | [ "Array"; ("get" | "unsafe_get") ] -> true
  | _ -> false

(* The role of a mutation/send target: a role ident, a role record
   field, or an element projection of a role array. *)
let rec target_role env (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
    Hashtbl.find_opt env.roles.idents (Ident.unique_name id)
  | Texp_field (_, _, label) -> Hashtbl.find_opt env.roles.fields label.lbl_name
  | Texp_apply (fn, args) when is_array_get (ident_comps fn) -> (
    match pos_args args with a :: _ -> target_role env a | [] -> None)
  | _ -> None

let mentions_paused env (e : expression) =
  let found = ref false in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      if Hashtbl.find_opt env.roles.idents (Ident.unique_name id) = Some Rpaused
      then found := true
    | Texp_field (_, _, label) ->
      if Hashtbl.find_opt env.roles.fields label.lbl_name = Some Rpaused then
        found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let bool_lit (e : expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, []) -> (
    match cd.cstr_name with
    | "true" -> Some true
    | "false" -> Some false
    | _ -> None)
  | _ -> None

let rec pattern_ctor_role : type k. env -> k general_pattern -> role option =
 fun env p ->
  match p.pat_desc with
  | Tpat_value arg -> pattern_ctor_role env (arg :> value general_pattern)
  | Tpat_alias (q, _, _) -> pattern_ctor_role env q
  | Tpat_or (a, b, _) -> (
    match pattern_ctor_role env a with
    | Some r -> Some r
    | None -> pattern_ctor_role env b)
  | Tpat_construct (_, cd, _, _) ->
    Hashtbl.find_opt env.roles.ctors cd.cstr_name
  | _ -> None

let hatch_at env (loc : Location.t) =
  let line = loc.loc_start.Lexing.pos_lnum in
  match Hashtbl.find_opt env.meta.hatches line with
  | Some h -> Some h
  | None -> Hashtbl.find_opt env.meta.hatches (line - 1)

(* An ungated mutation is excused by a hatch on the same or preceding
   line; hatch validity (does the named function still gate?) is
   checked globally afterwards so the walk stays local. *)
let check_gated env (f : flow) (loc : Location.t) rule what =
  if not f.gated then
    match hatch_at env loc with
    | Some h ->
      if not h.used then begin
        h.used <- true;
        env.ctx.hatches_used <- env.ctx.hatches_used + 1
      end
    | None ->
      add_diag env.ctx env.u loc rule
        "%s is not dominated by a Plan_check call on this path; gate it \
         (Plan_check.assert_ok / check_graph / check_matrix) or justify with \
         a gated-by hatch naming the gating function"
        what

let rec eval env (f : flow) (e : expression) : flow =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ -> f
  | Texp_let (_, vbs, body) ->
    let f = List.fold_left (fun f vb -> eval env f vb.vb_expr) f vbs in
    eval env f body
  | Texp_function { cases; _ } ->
    lambda_cases env f cases;
    f
  | Texp_apply (fn, args) -> apply env f e fn args
  | Texp_match (scrut, cases, _) -> match_cases env f scrut cases
  | Texp_try (body, cases) ->
    let fb = eval env f body in
    List.fold_left
      (fun acc c ->
        let fc = eval env f c.c_rhs in
        merge acc fc)
      fb cases
  | Texp_ifthenelse (cond, thn, els) ->
    let f0 = eval env f cond in
    let genv =
      if env.guarded || mentions_paused env cond then { env with guarded = true }
      else env
    in
    let ft = eval genv f0 thn in
    let fe = match els with Some e2 -> eval genv f0 e2 | None -> f0 in
    merge ft fe
  | Texp_sequence (a, b) -> eval env (eval env f a) b
  | Texp_while (cond, body) ->
    let f0 = eval env f cond in
    let fb = eval env f0 body in
    (* The loop may run zero times: must-facts revert to the pre-loop
       flow, the state joins. *)
    { f0 with st = State.join f0.st fb.st }
  | Texp_for (_, _, lo, hi, _, body) ->
    let f0 = eval env (eval env f lo) hi in
    let fb = eval env f0 body in
    { f0 with st = State.join f0.st fb.st }
  | Texp_construct (_, cd, args) ->
    let f = List.fold_left (eval env) f args in
    construct env f e cd
  | Texp_setfield (lhs, _, label, rhs) ->
    let f = eval env (eval env f lhs) rhs in
    (match Hashtbl.find_opt env.roles.fields label.lbl_name with
    | Some Rassignment ->
      check_gated env f e.exp_loc "proto/ungated-mutation"
        (Printf.sprintf "write to deployed-assignment field %s"
           label.lbl_name)
    | _ -> ());
    f
  | _ -> default_children env f e

(* One case of a [match] or [function]: the pattern seeds the entry
   state — a drain-event handler starts Draining and owes a scheduled
   resume on every path out (the abort path is exactly where this
   catches bugs); a resume-event handler starts Resuming, which is what
   legalizes its own pause-flag clear. *)
and case_walk : type k. env -> flow -> k case -> flow =
 fun env f0 c ->
  let entry, must_schedule =
    match pattern_ctor_role env c.c_lhs with
    | Some Rdrain -> ({ f0 with st = State.Draining; scheduled = false }, true)
    | Some Rresume -> ({ f0 with st = State.Resuming }, false)
    | _ -> (f0, false)
  in
  let entry =
    match c.c_guard with Some g -> eval env entry g | None -> entry
  in
  let out = eval env entry c.c_rhs in
  if must_schedule && not out.scheduled then
    add_diag env.ctx env.u c.c_rhs.exp_loc "proto/missed-resume"
      "this drain-event handler can exit without scheduling a resume (an \
       abort path?); every path out of the drain window must re-enable the \
       operator";
  out

(* Lambda bodies run at some later time: the operator state resets to
   Running and obligations restart, but a dominating Plan_check and a
   paused-state guard at the construction site are inherited — the
   repo's closures execute where they are built (iteration idioms). *)
and lambda_cases env (f : flow) cases =
  List.iter
    (fun c -> ignore (case_walk env (entry_flow ~gated:f.gated ()) c))
    cases

and match_cases env (f : flow) scrut cases =
  let f0 = eval env f scrut in
  let results = List.map (fun c -> case_walk env f0 c) cases in
  match results with [] -> f0 | hd :: tl -> List.fold_left merge hd tl

and construct env (f : flow) (e : expression) cd =
  match Hashtbl.find_opt env.roles.ctors cd.cstr_name with
  | Some Rdrain ->
    if
      not (State.equal f.st State.Paused || State.equal f.st State.Bot)
    then
      add_diag env.ctx env.u e.exp_loc "proto/drain-without-pause"
        "drain event %s emitted while the operator state is %s, not Paused; \
         set the paused flag before opening the drain window"
        cd.cstr_name (State.to_string f.st);
    { f with st = State.transfer State.Drain f.st }
  | Some Rresume ->
    { f with st = State.transfer State.Schedule f.st; scheduled = true }
  | _ -> f

and apply env (f : flow) (e : expression) fn args =
  let f = eval env f fn in
  let f =
    List.fold_left
      (fun f (_, a) -> match a with Some a -> eval env f a | None -> f)
      f args
  in
  let comps = ident_comps fn in
  let pargs = pos_args args in
  if is_gate comps then { f with gated = true }
  else
    match (comps, pargs) with
    | [ "Array"; ("set" | "unsafe_set") ], arr :: _idx :: v :: _ -> (
      match target_role env arr with
      | Some Rpaused -> (
        match bool_lit v with
        | Some true -> { f with st = State.transfer State.Pause f.st }
        | Some false ->
          if State.equal f.st State.Running then
            add_diag env.ctx env.u e.exp_loc "proto/double-resume"
              "the paused flag is cleared while the operator is already \
               Running; resume must happen exactly once per drain window";
          { f with st = State.transfer State.Resume f.st }
        | None -> f)
      | Some Rassignment ->
        check_gated env f e.exp_loc "proto/ungated-mutation"
          "write to the deployed assignment";
        f
      | _ -> f)
    | [ "Array"; "blit" ], _src :: _spos :: dst :: _ -> (
      match target_role env dst with
      | Some Rassignment ->
        check_gated env f e.exp_loc "proto/ungated-mutation"
          "Array.blit into the deployed assignment";
        f
      | _ -> f)
    | [ "Queue"; ("add" | "push") ], _x :: q :: _ -> send env f e q
    | [ "Queue"; "transfer" ], _src :: dst :: _ -> send env f e dst
    | comps, _ when last2 comps = Some ("Plan", "make") ->
      check_gated env f e.exp_loc "proto/ungated-plan"
        "this Plan.make materialization of a deployable assignment";
      f
    | _ -> f

and send env (f : flow) (e : expression) q =
  (match target_role env q with
  | Some Rinput_queue when not env.guarded ->
    add_diag env.ctx env.u e.exp_loc "proto/unguarded-send"
      "tuple delivered into an input queue on a path that never tests the \
       paused state; a paused operator must buffer, not receive"
  | _ -> ());
  f

and default_children env (f : flow) (e : expression) =
  let acc = ref f in
  let expr _it child = acc := eval env !acc child in
  let it = { Tast_iterator.default_iterator with expr } in
  Tast_iterator.default_iterator.expr it e;
  !acc

(* ---------- hatch validation (interprocedural) ---------- *)

let gate_called (d : Scan.def) =
  let found = ref false in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> if is_gate (Scan.canon_of_path p) then found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it d.Scan.body;
  !found

let validate_hatches ctx dindex (u : Scan.unit_info) (meta : meta) =
  Hashtbl.fold (fun _ h acc -> h :: acc) meta.hatches []
  |> List.sort (fun a b -> compare a.hline b.hline)
  |> List.iter (fun h ->
         if not h.used then
           add_line_diag ctx u h.hline "proto/unused-hatch"
             "this gated-by hatch suppresses nothing; remove it (stale \
              hatches hide future regressions)"
         else
           match Scan.resolve_defs dindex h.fn with
           | [] ->
             add_line_diag ctx u h.hline "proto/stale-gate"
               (Printf.sprintf
                  "gated-by names %s, which resolves to no known definition; \
                   name the function that performs the Plan_check gating"
                  h.fn)
           | defs ->
             if not (List.exists gate_called defs) then
               add_line_diag ctx u h.hline "proto/stale-gate"
                 (Printf.sprintf
                    "gated-by names %s, but that function no longer calls \
                     Plan_check; the justification is stale"
                    h.fn))

(* ---------- role sanity ---------- *)

let missing_role_checks ctx (u : Scan.unit_info) (meta : meta) (roles : roles)
    =
  List.iter
    (fun (ln, tok) ->
      add_line_diag ctx u ln "proto/missing-role"
        (Printf.sprintf "unknown role %S; valid roles: paused, pending, \
                         buffer, input-queue, deployed-assignment, \
                         drain-event, resume-event" tok))
    meta.bad_roles;
  List.iter
    (fun (ln, _) ->
      if not (Hashtbl.mem roles.bound_lines ln) then
        add_line_diag ctx u ln "proto/missing-role"
          "this role marker binds no declaration on its line; put it on the \
           line declaring the ident, constructor, or record label")
    meta.role_lines;
  if meta.protocol then begin
    let has r = List.exists (fun (_, r') -> r' = r) meta.role_lines in
    if has Rpaused && not (has Rdrain && has Rresume) then
      add_line_diag ctx u meta.protocol_line "proto/missing-role"
        "a paused role without both drain-event and resume-event roles: the \
         state machine cannot be tracked; declare the event constructors"
  end

(* ---------- orchestration ---------- *)

type proto_stats = {
  units_checked : int;
  defs_walked : int;
  roles_bound : int;
  hatches_used : int;
}

let check_units units =
  let units =
    List.sort (fun a b -> String.compare a.Scan.canon b.Scan.canon) units
  in
  let dindex = Scan.index_defs (Scan.defs_of_units units) in
  let ctx = { diags = []; hatches_used = 0 } in
  let checked = ref 0 and walked = ref 0 and roles_total = ref 0 in
  let metas = List.map (fun u -> (u, meta_of_unit u)) units in
  List.iter
    (fun ((u : Scan.unit_info), meta) ->
      if meta.protocol || meta.role_lines <> [] || meta.bad_roles <> [] then begin
        incr checked;
        let roles = bind_roles u meta in
        roles_total := !roles_total + roles.count;
        missing_role_checks ctx u meta roles;
        let env = { u; roles; meta; ctx; guarded = false } in
        List.iter
          (fun (d : Scan.def) ->
            incr walked;
            ignore (eval env (entry_flow ()) d.Scan.body))
          (Scan.defs_of_units [ u ])
      end)
    metas;
  List.iter (fun (u, meta) -> validate_hatches ctx dindex u meta) metas;
  let diags = List.sort_uniq Scan.compare_diag ctx.diags in
  ( diags,
    {
      units_checked = !checked;
      defs_walked = !walked;
      roles_bound = !roles_total;
      hatches_used = ctx.hatches_used;
    } )
