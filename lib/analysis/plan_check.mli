(** Static analysis of query plans and load models: reject statically
    doomed plans before any placement or simulation runs.

    The checks operate on the operator load-coefficient matrix [L^o]
    ([m] operators by [d] rate variables) and the node capacity vector
    [C], the same objects {!Rod.Problem} optimizes over:

    - {b well-formedness} (errors): NaN/infinite or negative
      coefficients, non-positive or NaN capacities, an empty cluster,
      a dimension mismatch against the expected variable count;
    - {b structural} (warnings): a variable carrying no load anywhere
      (the feasible set is unbounded along it — {!Rod.Problem.create}
      rejects such instances), an operator whose load row is all zero
      (dead weight in the model), an operator all of whose inputs are
      streams with statically-zero rate (starved);
    - {b feasibility} (error): an operator with [l^o_jk > max_i C_i]
      on some axis cannot sustain even unit rate on variable [k] on
      {e any} node, so every placement's feasible set is clipped below
      the unit-rate point regardless of assignment;
    - {b resiliency} (warning): a per-axis upper bound on the
      achievable feasible-set ratio.  Since every operator must fit on
      a single node, the feasible set of {e any} assignment lies inside
      [{ r : r_k <= e_k }] with [e_k = min_j max_i C_i / l^o_jk], while
      the ideal simplex of Theorem 1 extends to [E_k = C_T / l_k] along
      axis [k].  Truncating the ideal simplex at [r_k = e_k] removes a
      similar simplex scaled by [1 - e_k / E_k], so for every
      assignment [A]:
      [vol(F(A)) / vol(ideal) <= 1 - (1 - min(1, e_k / E_k))^d].
      When a single heavy operator drives that bound below a threshold
      (default 0.5) on some axis, no amount of placement cleverness can
      recover MMAD resiliency — the model itself caps it. *)

type severity =
  | Error  (** The plan is statically broken; reject it. *)
  | Warning  (** Suspicious but deployable. *)

type diag = {
  severity : severity;
  code : string;  (** Stable machine-readable id, e.g. ["infeasible-operator"]. *)
  message : string;
}

type report = {
  diags : diag list;  (** In emission order (errors and warnings mixed). *)
  axis_bound : float array;
      (** Per-variable Theorem-1 upper bound on the achievable
          feasible-set ratio (all-ones when no operator loads an axis,
          empty when the matrix was too malformed to bound). *)
}

val rules : (string * string) list
(** [(code, short description)] catalogue of every diagnostic this
    module can emit, for SARIF and docs. *)

val sarif_rules : Sarif.rule list
(** [rules] lifted to SARIF rule metadata (DESIGN.md §8 help URI). *)

val errors : report -> diag list

val warnings : report -> diag list

val ok : report -> bool
(** No errors (warnings allowed). *)

val check_matrix :
  ?threshold:float ->
  ?expect_vars:int ->
  ?op_name:(int -> string) ->
  ?var_name:(int -> string) ->
  lo:Linalg.Mat.t ->
  caps:Linalg.Vec.t ->
  unit ->
  report
(** Core analyzer over a raw load matrix.  [threshold] is the
    resiliency-warning cutoff (default 0.5); [expect_vars] adds a
    dimension check against an externally known variable count. *)

val check_model : ?threshold:float -> Query.Load_model.t -> caps:Linalg.Vec.t -> report
(** {!check_matrix} over a derived load model, plus the graph-aware
    checks (named operators/variables, starved operators). *)

val check_graph : ?threshold:float -> Query.Graph.t -> caps:Linalg.Vec.t -> report
(** Derive the load model, then {!check_model}. *)

val assert_ok : ?what:string -> report -> unit
(** @raise Invalid_argument listing every error when [ok] is false. *)

val pp : Format.formatter -> report -> unit
(** Human rendering: one line per diagnostic plus the per-axis bounds. *)

val to_json : report -> string
(** Machine rendering ([rod-plan-check/1] schema). *)
