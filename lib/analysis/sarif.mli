(** Minimal SARIF 2.1.0 emitter, shared by [tools/rodscan] and
    [rod_cli analyze --sarif] so both static-analysis surfaces speak
    the same machine-readable format (one [run] per invocation, one
    [result] per finding). *)

type result = {
  rule_id : string;  (** Stable rule id, e.g. ["det/taint"]. *)
  level : string;  (** SARIF level: ["error"], ["warning"] or ["note"]. *)
  message : string;
  file : string option;  (** Artifact URI; omitted when [None]. *)
  line : int option;  (** 1-based start line. *)
  col : int option;  (** 0-based compiler column; emitted +1. *)
}

type rule = {
  id : string;  (** Stable rule id, e.g. ["det/taint"]. *)
  short_desc : string;  (** One-line description; [""] omits it. *)
  help_uri : string;
      (** Documentation link (a [DESIGN.md] anchor); [""] omits it. *)
}
(** Entry of the driver's rule table ([tool.driver.rules]), shared by
    all three analysis tools so code-scanning UIs can link findings
    back to the rule catalogue. *)

val rule : ?help_uri:string -> string -> string -> rule
(** [rule ?help_uri id short_desc]. *)

val rules_of_catalogue : help_uri:string -> (string * string) list -> rule list
(** Lift an [(id, description)] rule catalogue (the shape [Scan.rules]
    and [Proto.rules] export) into SARIF rule metadata sharing one
    documentation anchor. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val to_string :
  tool:string ->
  ?tool_version:string ->
  ?rules:rule list ->
  result list ->
  string
(** Render one SARIF run.  [rules] populates the driver's rule table
    with ids, short descriptions and help URIs. *)

val write :
  path:string ->
  tool:string ->
  ?tool_version:string ->
  ?rules:rule list ->
  result list ->
  unit
