(** Minimal SARIF 2.1.0 emitter, shared by [tools/rodscan] and
    [rod_cli analyze --sarif] so both static-analysis surfaces speak
    the same machine-readable format (one [run] per invocation, one
    [result] per finding). *)

type result = {
  rule_id : string;  (** Stable rule id, e.g. ["det/taint"]. *)
  level : string;  (** SARIF level: ["error"], ["warning"] or ["note"]. *)
  message : string;
  file : string option;  (** Artifact URI; omitted when [None]. *)
  line : int option;  (** 1-based start line. *)
  col : int option;  (** 0-based compiler column; emitted +1. *)
}

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val to_string :
  tool:string ->
  ?tool_version:string ->
  ?rules:(string * string) list ->
  result list ->
  string
(** Render one SARIF run.  [rules] lists [(id, short description)]
    pairs for the driver's rule table (descriptions may be [""]). *)

val write :
  path:string ->
  tool:string ->
  ?tool_version:string ->
  ?rules:(string * string) list ->
  result list ->
  unit
