(* Minimal SARIF 2.1.0 emitter shared by rodscan and `rod_cli analyze`.
   Hand-rolled JSON, matching the style of Plan_check.to_json — the
   repo deliberately carries no JSON dependency. *)

type result = {
  rule_id : string;
  level : string;
  message : string;
  file : string option;
  line : int option;
  col : int option;
}

type rule = { id : string; short_desc : string; help_uri : string }

let rule ?(help_uri = "") id short_desc = { id; short_desc; help_uri }

let rules_of_catalogue ~help_uri catalogue =
  List.map (fun (id, short_desc) -> { id; short_desc; help_uri }) catalogue

let escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_string ~tool ?(tool_version = "1.0.0") ?(rules = []) results =
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "{\n";
  out "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out "  \"version\": \"2.1.0\",\n";
  out "  \"runs\": [\n    {\n";
  out "      \"tool\": {\n        \"driver\": {\n";
  out "          \"name\": \"%s\",\n" (escape tool);
  out "          \"version\": \"%s\"" (escape tool_version);
  if rules <> [] then begin
    out ",\n          \"rules\": [\n";
    List.iteri
      (fun idx r ->
        out "            { \"id\": \"%s\"" (escape r.id);
        if r.short_desc <> "" then
          out ", \"shortDescription\": { \"text\": \"%s\" }"
            (escape r.short_desc);
        if r.help_uri <> "" then
          out ", \"helpUri\": \"%s\"" (escape r.help_uri);
        out " }%s\n" (if idx = List.length rules - 1 then "" else ","))
      rules;
    out "          ]\n"
  end
  else out "\n";
  out "        }\n      },\n";
  out "      \"results\": [\n";
  List.iteri
    (fun idx r ->
      out "        {\n";
      out "          \"ruleId\": \"%s\",\n" (escape r.rule_id);
      out "          \"level\": \"%s\",\n" (escape r.level);
      out "          \"message\": { \"text\": \"%s\" }" (escape r.message);
      (match r.file with
      | None -> ()
      | Some file ->
        out ",\n          \"locations\": [\n";
        out "            { \"physicalLocation\": {\n";
        out "                \"artifactLocation\": { \"uri\": \"%s\" }"
          (escape file);
        (match r.line with
        | None -> ()
        | Some line ->
          (* SARIF regions are 1-based in both coordinates; the repo's
             diag columns are 0-based compiler columns. *)
          out ",\n                \"region\": { \"startLine\": %d" line;
          (match r.col with
          | None -> ()
          | Some col -> out ", \"startColumn\": %d" (col + 1));
          out " }");
        out "\n              }\n            }\n          ]");
      out "\n        }%s\n" (if idx = List.length results - 1 then "" else ","))
    results;
  out "      ]\n    }\n  ]\n}\n";
  Buffer.contents buffer

let write ~path ~tool ?tool_version ?rules results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~tool ?tool_version ?rules results))
