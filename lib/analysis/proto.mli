(** [rodproto]: typestate verification of the pause–drain–resume live
    migration protocol and a gated-mutation analysis over deployed
    assignments, the third typedtree analyzer next to {!Lint} and
    {!Scan}.

    Modules opt in with a [(* rodproto: protocol *)] marker and name
    their protocol state with role comments on the declaring line:

    {v
    let migrating = Array.make m false (* rodproto: role paused *)
    type event =
      | Handoff of int        (* rodproto: role drain-event *)
      | Migration_done of int (* rodproto: role resume-event *)
    v}

    Roles: [paused] (the per-operator pause flags), [pending],
    [buffer], [input-queue] (per-node delivery queues), and
    [deployed-assignment] (the engine-visible operator->node map) bind
    idents and record labels; [drain-event] and [resume-event] bind
    variant constructors.

    {b Protocol typestate} ([protocol-typestate] pass): every function
    body is walked path-sensitively over the per-operator lattice
    {!State.t} (Bot < Running | Paused | Draining | Resuming < Top).
    Setting a [paused] flag true is a pause; constructing a
    [drain-event] is the drain; constructing a [resume-event] schedules
    the resume; setting [paused] false is the resume itself.  Handler
    cases matching a [drain-event] constructor start in [Draining] and
    must schedule a resume on {e every} path out (branch merges AND the
    obligation — the abort path is exactly where this catches bugs);
    cases matching a [resume-event] start in [Resuming].  Rules:
    [proto/drain-without-pause], [proto/double-resume],
    [proto/missed-resume], [proto/unguarded-send] (a [Queue.add]/
    [push]/[transfer] into an [input-queue] not dominated by a test
    mentioning the [paused] state), and [proto/missing-role] (a
    [paused] role without both event roles — the machine cannot be
    tracked).

    {b Gated mutation} ([gated-mutation] pass): any write to
    [deployed-assignment] state ([Array.set], [Array.blit] destination,
    mutable-field assignment) and any [Plan.make] materialization in a
    protocol-marked unit must be dominated by a [Plan_check] gate
    ([assert_ok]/[check_graph]/[check_model]/[check_matrix]) on the
    same path, or carry a justification hatch on the same or preceding
    line:

    {v assignment.(op) <- dest (* rodproto: gated-by Deploy.finish *) v}

    A hatch names the function that performed the gating; it is
    resolved interprocedurally through {!Scan.resolve_defs} and must
    itself call [Plan_check] directly — a hatch naming an unknown or
    no-longer-gating function fails ([proto/stale-gate]), and a hatch
    that suppresses nothing fails ([proto/unused-hatch]), mirroring
    [rodscan.allow] semantics.  Ungated writes are
    [proto/ungated-mutation]; ungated [Plan.make] calls are
    [proto/ungated-plan].

    Findings reuse {!Lint.diag} and the allowlist machinery, so a
    [rodproto.allow] file works exactly like [rodscan.allow]. *)

val protocol_marker : string
(** ["rodproto: protocol"] — opts a module into both passes. *)

val role_marker : string
(** ["rodproto: role "] — binds the declarations on its line to a
    protocol role. *)

val gated_by_marker : string
(** ["rodproto: gated-by "] — per-site mutation justification naming
    the gating function. *)

val expect_marker : string
(** ["rodproto-expect:"] — declares a fixture's expected rule ids. *)

val passes : string list
(** Names of the analysis passes, for [--stats]. *)

val rules : (string * string) list
(** [(rule id, short description)] catalogue, for SARIF and docs. *)

val sarif_rules : Sarif.rule list
(** [rules] lifted to SARIF rule metadata (DESIGN.md §13 help URI). *)

(** The per-operator typestate lattice.  [join] is commutative,
    associative and idempotent with [Bot] as unit and [Top] absorbing;
    [transfer] is monotone and sub-distributes over [join] (it does
    {e not} distribute: joining [Resuming] with [Paused] first loses
    which resume is legal).  All QCheck-pinned. *)
module State : sig
  type t = Bot | Running | Paused | Draining | Resuming | Top
  type event = Pause | Drain | Schedule | Resume

  val all : t list
  val events : event list
  val equal : t -> t -> bool
  val join : t -> t -> t
  val leq : t -> t -> bool
  val transfer : event -> t -> t
  val to_string : t -> string
  val event_to_string : event -> string
end

type proto_stats = {
  units_checked : int;  (** Units carrying the protocol marker or roles. *)
  defs_walked : int;
  roles_bound : int;  (** Idents + constructors + labels given a role. *)
  hatches_used : int;
}

val expect_of_unit : Scan.unit_info -> string list
(** Rule ids from [rodproto-expect:] comments in the unit's source. *)

val relevant : Scan.unit_info -> bool
(** Does this unit opt into rodproto (protocol marker or any role)? *)

val check_units : Scan.unit_info list -> Lint.diag list * proto_stats
(** Run both passes over the units {e together} — hatch resolution is
    interprocedural across units, so the gating functions' defining
    units should be in the list.  Diagnostics are sorted with
    {!Scan.compare_diag} and deduplicated. *)
