(** [rodlint]: a source linter over this repository's OCaml code, built
    on compiler-libs' parser and AST iterator.  Three rule families:

    {b Determinism} (every file):
    - [determinism/self-init] — [Random.self_init] seeds the global rng
      from the environment; placements and tests must be reproducible.
    - [determinism/global-random] — any [Random.<f>] call that touches
      the global generator state ([Random.State.*] with an explicit,
      seeded state is the sanctioned idiom).
    - [determinism/wallclock] — [Unix.gettimeofday], [Unix.time] and
      [Sys.time] make results depend on the clock.  The profiler is the
      one legitimate user and is allowlisted.

    {b Parallel safety} (every file): a function literal passed to
    [Pool.parallel_for] / [map_reduce] / [map_chunks] must not mutate
    captured state except through the chunk-index idiom (writes to a
    captured array are fine when the index involves a variable bound
    inside the closure — the [for s = lo to hi - 1] pattern touching
    disjoint ranges).  Flagged: [:=] / [incr] / [decr] on captured
    refs, mutable-field assignment on captured records, and
    [captured.(i) <- e] where [i] mentions no closure-bound variable.

    {b Hot-path hygiene} (only in files carrying a [rodlint: hot]
    marker comment):
    - [hot/poly-compare] — the polymorphic [compare] (use
      [Float.compare] / [Int.compare]; the polymorphic version boxes
      and walks tags).
    - [hot/float-eq] — [=] / [<>] where an operand is syntactically a
      float (float equality is almost always an epsilon bug, and
      polymorphic equality boxes).
    - [hot/closure-in-loop] — a function literal inside a [for]/[while]
      body allocates one closure per iteration.

    {b Telemetry discipline} (only in files carrying a [rodlint: obs]
    marker comment):
    - [obs/print-telemetry] — [Printf.printf] / [Printf.eprintf],
      [Format.printf] / [Format.eprintf], and the bare console printers
      ([print_endline], [prerr_string], ...) side-channel telemetry to
      stdout/stderr where no exporter, test, or trace viewer can see
      it.  Instrumented modules must record through the [Obs] registry;
      string renderers ([sprintf], [ksprintf], [asprintf], fprintf to a
      buffer or channel) stay legal.

    Diagnostics carry [file:line:col] positions.  An allowlist file
    suppresses known-good findings; every entry needs a justification
    comment and unused entries are reported so the list cannot rot. *)

type diag = {
  file : string;
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler convention. *)
  rule : string;  (** e.g. ["determinism/wallclock"]. *)
  message : string;
}

val hot_marker : string
(** The magic comment substring ["rodlint: hot"]. *)

val obs_marker : string
(** The magic comment substring ["rodlint: obs"]. *)

val lint_string : ?hot:bool -> ?obs:bool -> filename:string -> string -> diag list
(** Lint one compilation unit given as text.  [hot] and [obs] override
    the marker autodetection.  A file that does not parse yields a
    single [parse/error] diagnostic. *)

val lint_file : ?hot:bool -> ?obs:bool -> string -> diag list

type allowlist = Allowlist.t
(** Entries of [(path suffix, rule prefix)]; a diagnostic is suppressed
    when some entry's path is a suffix of the diagnostic's path and its
    rule a prefix of the diagnostic's rule.  The machinery lives in the
    shared {!Allowlist} module (all four analyzer drivers use it); the
    values below are kept as delegations for existing callers. *)

val allowlist_of_string : source:string -> string -> allowlist
(** Parse allowlist text: one [<path> <rule> # justification] entry per
    line; blank lines and [#]-leading comment lines ignored.
    @raise Failure listing {e every} malformed line (with [source] and
    line numbers), one per output line, so a broken file costs one run
    to fix. *)

val load_allowlist : string -> allowlist

val empty_allowlist : allowlist

val normalize_path : string -> string
(** Strip leading [./] and [_build/default/] decorations (repeatedly,
    in any order) so the same file matches the same allowlist entry
    under [dune build @lint], a direct [tools/rodlint ./lib] run, and a
    build-tree invocation. *)

val split_allowed : allowlist -> diag list -> diag list * diag list
(** [(kept, suppressed)]; marks matching entries as used. *)

val unused_entries : allowlist -> (string * string) list
(** Entries that suppressed nothing since loading, as
    [(path, rule)] pairs — stale allowlist hygiene. *)

val prune : allowlist -> string -> string
(** [prune allowlist text] returns [text] (the allowlist file's raw
    contents) with the source line of every {e unused} entry removed
    and everything else untouched.  Backs the drivers' [--fix] flag;
    call after {!split_allowed} so live entries are marked used. *)

val render : diag -> string
(** [file:line:col: [rule] message] — the compiler-style format. *)
