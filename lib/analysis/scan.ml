(* rodscan's engine: interprocedural analysis over compiler-libs
   typedtrees.  Where Lint pattern-matches parse trees file by file,
   Scan loads the [.cmt] files dune already produces, so every
   identifier carries its fully resolved [Path.t] — [Random.float]
   laundered through two helper calls, or a ref captured by a closure
   handed to the domain pool, is visible no matter how it is spelled at
   the use site.  Three passes share one call-graph/summary
   infrastructure; see scan.mli for the rule catalogue. *)

open Typedtree
module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* The marker strings are assembled at runtime so this file's own
   source does not contain them verbatim — otherwise the scanner would
   classify itself as hot/deterministic-marked and lint its own
   implementation loops. *)
let deterministic_marker = "rodlint: " ^ "deterministic"
let alloc_ok_marker = "rodscan: " ^ "alloc-ok"
let expect_marker = "rodscan-" ^ "expect:"

let passes = [ "determinism-taint"; "parallel-race"; "hot-allocation" ]

let rules =
  [
    ( "det/taint",
      "nondeterminism (global Random state, wall clocks, Domain.self, \
       Hashtbl iteration order) flows into a deterministic-marked module" );
    ( "race/captured-ref",
      "a closure handed to the domain pool assigns a captured non-Atomic \
       ref" );
    ( "race/captured-array",
      "a pool closure writes a captured array at a chunk-independent index" );
    ( "race/captured-field",
      "a pool closure writes a mutable field of a captured value" );
    ( "race/captured-call",
      "a pool closure mutates a captured container (Hashtbl, Buffer, Queue, \
       Stack) through a stdlib call" );
    ( "alloc/closure",
      "a hot-marked function allocates a closure on every loop iteration" );
    ( "alloc/literal",
      "a hot function allocates a tuple/record/array/constructor per loop \
       iteration" );
    ("alloc/ref", "a hot function allocates a ref cell per loop iteration");
    ( "alloc/partial-apply",
      "a partial application inside a hot loop builds a closure per \
       iteration" );
    ( "alloc/boxed-float",
      "a cross-module call inside a hot loop returns a boxed float per \
       iteration" );
    ( "alloc/unused-hatch",
      "an alloc-ok escape hatch suppresses nothing" );
    ( "race/aliased-ref",
      "a pool closure mutates captured state through a let-bound alias or \
       record-field projection" );
  ]

let sarif_rules =
  Sarif.rules_of_catalogue
    ~help_uri:"DESIGN.md#10-typedtree-analysis-rodscan" rules

(* ---------- small text utilities ---------- *)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let find_substring line needle =
  let hl = String.length line and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then None
    else if String.sub line i nl = needle then Some i
    else scan (i + 1)
  in
  scan 0

(* ---------- canonical names ----------

   [Path.name] prints fully resolved but variously spelled paths:
   [Stdlib.Random.float], [Feasible.Simplex.ideal_volume],
   [Pool.map_chunks] (through a module alias), [Feasible__Volume] (a
   dune-mangled unit name).  Canonicalization splits on [.] and on the
   dune [__] separator and drops a leading [Stdlib], so every spelling
   of the same thing compares equal component-wise. *)

let split_dunder s =
  let n = String.length s in
  let out = ref [] and start = ref 0 and i = ref 0 in
  while !i + 1 < n do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      out := String.sub s !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  out := String.sub s !start (n - !start) :: !out;
  List.rev !out

let canon_components name =
  String.split_on_char '.' name
  |> List.concat_map split_dunder
  |> List.filter (fun s -> s <> "")
  |> function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | comps -> comps

let canon_of_path p = canon_components (Path.name p)
let canon_unit_name modname = String.concat "." (canon_components modname)

(* ---------- units ---------- *)

type unit_info = {
  canon : string;
  source : string;
  text : string;
  str : structure;
  hot : bool;
  deterministic : bool;
  alloc_ok : (int, bool ref) Hashtbl.t;
  expect : string list;
}

let parse_expect line =
  match find_substring line expect_marker with
  | None -> []
  | Some i ->
    let rest =
      String.sub line
        (i + String.length expect_marker)
        (String.length line - i - String.length expect_marker)
    in
    let rest =
      match find_substring rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    String.split_on_char ' ' rest
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun t -> t <> "")

let unit_of_structure ~modname ~source ~text str =
  let alloc_ok = Hashtbl.create 7 in
  let expect = ref [] in
  List.iteri
    (fun idx line ->
      if contains_substring line alloc_ok_marker then
        Hashtbl.replace alloc_ok (idx + 1) (ref false);
      expect := !expect @ parse_expect line)
    (String.split_on_char '\n' text);
  {
    canon = canon_unit_name modname;
    source = Lint.normalize_path source;
    text;
    str;
    hot = contains_substring text Lint.hot_marker;
    deterministic = contains_substring text deterministic_marker;
    alloc_ok;
    expect = !expect;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let unit_of_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let source =
        match cmt.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
      in
      let text = if Sys.file_exists source then read_file source else "" in
      Some (unit_of_structure ~modname:cmt.Cmt_format.cmt_modname ~source ~text str)
    | _ -> None)

let env_initialized = ref false

let unit_of_source ~filename text =
  if not !env_initialized then begin
    Compmisc.init_path ();
    env_initialized := true
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf filename;
  let parsed = Parse.implementation lexbuf in
  let tstr, _, _, _, _ =
    try Typemod.type_structure env parsed
    with exn ->
      failwith
        (Printf.sprintf "Scan.unit_of_source: %s does not typecheck (%s)"
           filename
           (Printexc.to_string exn))
  in
  let modname =
    String.capitalize_ascii Filename.(remove_extension (basename filename))
  in
  unit_of_structure ~modname ~source:filename ~text tstr

(* ---------- taint lattice ---------- *)

module Taint = struct
  type t = SSet.t

  let bottom = SSet.empty
  let source = SSet.singleton
  let of_list = SSet.of_list
  let join = SSet.union
  let equal = SSet.equal
  let is_tainted t = not (SSet.is_empty t)
  let to_list = SSet.elements
end

(* ---------- definitions and the call graph ---------- *)

type def = {
  key : string;  (* "Feasible.Volume.estimate" *)
  def_loc : Location.t;
  body : expression;
  owner : unit_info;
}

(* Top-level (and nested-module-level) value bindings become call-graph
   nodes; [let () = ...] and destructuring bindings become anonymous
   nodes so their effects still enter the graph.  Local functions fold
   into their enclosing node. *)
let defs_of_unit u =
  let defs = ref [] and idtbl = Hashtbl.create 64 and anon = ref 0 in
  let rec structure prefix (s : structure) = List.iter (item prefix) s.str_items
  and item prefix it =
    match it.str_desc with
    | Tstr_value (_, vbs) -> List.iter (binding prefix it.str_loc) vbs
    | Tstr_eval (e, _) ->
      incr anon;
      defs :=
        {
          key = String.concat "." prefix ^ Printf.sprintf ".(toplevel-%d)" !anon;
          def_loc = it.str_loc;
          body = e;
          owner = u;
        }
        :: !defs
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and binding prefix item_loc vb =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, name) ->
      let key = String.concat "." (prefix @ [ name.txt ]) in
      Hashtbl.replace idtbl (Ident.unique_name id) key;
      defs := { key; def_loc = name.loc; body = vb.vb_expr; owner = u } :: !defs
    | _ ->
      incr anon;
      defs :=
        {
          key =
            String.concat "." (prefix @ [ Printf.sprintf "(binding-%d)" !anon ]);
          def_loc = item_loc;
          body = vb.vb_expr;
          owner = u;
        }
        :: !defs
  and module_binding prefix mb =
    let name = match mb.mb_name.txt with Some s -> s | None -> "_" in
    let rec modexpr (m : module_expr) =
      match m.mod_desc with
      | Tmod_structure s -> structure (prefix @ [ name ]) s
      | Tmod_constraint (me, _, _, _) -> modexpr me
      | Tmod_functor (_, me) -> modexpr me
      | _ -> ()
    in
    modexpr mb.mb_expr
  in
  structure [ u.canon ] u.str;
  (List.rev !defs, idtbl)

(* Every module-path suffix of at least two components indexes a node,
   so [Pool.map_chunks], [Parallel.Pool.map_chunks] and
   [Parallel__Pool.map_chunks] all resolve to the same definition.  A
   suffix shared by several definitions links to all of them — a
   conservative over-approximation. *)
let build_index all_defs =
  let add key v idx =
    SMap.update key
      (function None -> Some [ v ] | Some l -> Some (v :: l))
      idx
  in
  List.fold_left
    (fun idx d ->
      let comps = String.split_on_char '.' d.key in
      let rec go l idx =
        match l with
        | [] | [ _ ] -> idx
        | _ :: tl -> go tl (add (String.concat "." l) d.key idx)
      in
      go comps idx)
    SMap.empty all_defs

let resolve index comps =
  let rec go = function
    | [] | [ _ ] -> []
    | l -> (
      match SMap.find_opt (String.concat "." l) index with
      | Some keys -> List.sort_uniq String.compare keys
      | None -> go (List.tl l))
  in
  go comps

(* ---------- nondeterminism sources ---------- *)

let source_of_comps = function
  | [ "Random"; "State"; "make_self_init" ] -> Some "Random.State.make_self_init"
  | [ "Random"; "State"; _ ] -> None
  | [ "Random"; f ] -> Some ("Random." ^ f)
  | [ "Unix"; (("gettimeofday" | "time" | "times") as f) ] -> Some ("Unix." ^ f)
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Domain"; "self" ] -> Some "Domain.self"
  | [ "Hashtbl"; (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as f) ]
    ->
    Some ("Hashtbl." ^ f)
  | _ -> None

(* ---------- per-function summaries ---------- *)

type summary = {
  direct : (string * Location.t) list;  (* (source name, site) *)
  callees : (string * Location.t) list;  (* (node key, site) *)
}

let merge_summary a b =
  { direct = a.direct @ b.direct; callees = a.callees @ b.callees }

let summarize ~index ~idtbl d =
  let direct = ref [] and callees = ref [] in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
      match Hashtbl.find_opt idtbl (Ident.unique_name id) with
      | Some key when key <> d.key -> callees := (key, e.exp_loc) :: !callees
      | _ -> ())
    | Texp_ident (p, _, _) -> (
      let comps = canon_of_path p in
      match source_of_comps comps with
      | Some s -> direct := (s, e.exp_loc) :: !direct
      | None ->
        List.iter
          (fun key -> if key <> d.key then callees := (key, e.exp_loc) :: !callees)
          (resolve index comps))
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it d.body;
  { direct = List.rev !direct; callees = List.rev !callees }

(* ---------- taint fixpoint ---------- *)

let fixpoint (summaries : summary SMap.t) : Taint.t SMap.t =
  let taint =
    ref
      (SMap.map
         (fun s -> Taint.of_list (List.map fst s.direct))
         summaries)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun key s ->
        let cur = SMap.find key !taint in
        let next =
          List.fold_left
            (fun acc (callee, _) ->
              match SMap.find_opt callee !taint with
              | Some t -> Taint.join acc t
              | None -> acc)
            cur s.callees
        in
        if not (Taint.equal cur next) then begin
          taint := SMap.add key next !taint;
          changed := true
        end)
      summaries
  done;
  !taint

let solve nodes =
  let summaries =
    List.fold_left
      (fun m (name, direct, callees) ->
        let s =
          {
            direct = List.map (fun x -> (x, Location.none)) direct;
            callees = List.map (fun c -> (c, Location.none)) callees;
          }
        in
        SMap.update name
          (function None -> Some s | Some prev -> Some (merge_summary prev s))
          m)
      SMap.empty nodes
  in
  fixpoint summaries |> SMap.bindings
  |> List.map (fun (k, t) -> (k, Taint.to_list t))

(* Shortest call chain from [start] to a node that touches [src]
   directly; callee lists keep source order, so the chain (and thus the
   report text) is deterministic. *)
let witness summaries taint src start =
  let rec bfs visited = function
    | [] -> None
    | (key, path) :: rest -> (
      if SSet.mem key visited then bfs visited rest
      else
        let visited = SSet.add key visited in
        match SMap.find_opt key summaries with
        | None -> bfs visited rest
        | Some s -> (
          match List.find_opt (fun (name, _) -> name = src) s.direct with
          | Some (_, loc) -> Some (List.rev (key :: path), loc)
          | None ->
            let next =
              List.filter_map
                (fun (callee, _) ->
                  match SMap.find_opt callee taint with
                  | Some t when SSet.mem src t ->
                    Some (callee, key :: path)
                  | _ -> None)
                s.callees
            in
            bfs visited (rest @ next)))
  in
  bfs SSet.empty [ (start, []) ]

(* ---------- diagnostics ---------- *)

type scan_stats = {
  units_scanned : int;
  defs_analyzed : int;
  hatches_used : int;
}

type ctx = { mutable diags : Lint.diag list; mutable hatches_used : int }

let add_diag ctx (u : unit_info) (loc : Location.t) rule fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        {
          Lint.file = u.source;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        }
        :: ctx.diags)
    fmt

(* ---------- pass 1: determinism taint ---------- *)

let loc_string (loc : Location.t) =
  Printf.sprintf "%s:%d"
    (Lint.normalize_path loc.loc_start.Lexing.pos_fname)
    loc.loc_start.Lexing.pos_lnum

let det_pass ctx defs summaries taint =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if d.owner.deterministic && not (Hashtbl.mem seen d.key) then begin
        Hashtbl.add seen d.key ();
        match SMap.find_opt d.key taint with
        | Some t when Taint.is_tainted t ->
          let src = SSet.min_elt t in
          let chain, loc =
            match witness summaries taint src d.key with
            | Some (path, site) -> (String.concat " -> " path, site)
            | None -> (d.key, d.def_loc)
          in
          (* Report at the definition in the marked module; the chain
             names the laundering path and the seeding site. *)
          add_diag ctx d.owner d.def_loc "det/taint"
            "%s is reachable from nondeterministic source %s in a \
             deterministic-marked module (%s => %s at %s); thread a seeded \
             Random.State / injected Obs.Clock, or add a justified \
             rodscan.allow entry"
            d.key src chain src (loc_string loc)
        | _ -> ()
      end)
    defs

(* ---------- pass 2: parallel race lint ---------- *)

let pool_fns =
  SSet.of_list [ "parallel_for"; "map_reduce"; "map_chunks"; "map_chunks_i"; "run" ]

let mutating_calls =
  [
    [ "Hashtbl"; "add" ]; [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "reset" ]; [ "Hashtbl"; "clear" ]; [ "Buffer"; "add_string" ];
    [ "Buffer"; "add_char" ]; [ "Buffer"; "add_bytes" ];
    [ "Buffer"; "add_buffer" ]; [ "Buffer"; "clear" ]; [ "Buffer"; "reset" ];
    [ "Queue"; "add" ]; [ "Queue"; "push" ]; [ "Queue"; "pop" ];
    [ "Queue"; "take" ]; [ "Queue"; "clear" ]; [ "Stack"; "push" ];
    [ "Stack"; "pop" ]; [ "Stack"; "clear" ];
  ]

let ident_comps (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> canon_of_path p
  | _ -> []

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: tl -> last2 tl
  | [] -> None

(* Idents bound anywhere inside the closure (parameters, lets, match
   patterns, for-loop indices): writes that involve them are chunk- or
   call-local by construction. *)
let bound_idents (clo : expression) =
  let acc = ref SSet.empty in
  let add id = acc := SSet.add (Ident.unique_name id) !acc in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.pat it p
  in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> add id
    | Texp_function { param; _ } -> add param
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it clo;
  !acc

(* A captured target: a local ident not bound inside the closure, or
   any module-qualified value (those live outside the closure by
   definition). *)
let captured bound (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
    if SSet.mem (Ident.unique_name id) bound then None else Some (Ident.name id)
  | Texp_ident (p, _, _) -> Some (String.concat "." (canon_of_path p))
  | _ -> None

let free_local_idents (e : expression) =
  let acc = ref SSet.empty in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      acc := SSet.add (Ident.unique_name id) !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

(* Closure-local lets whose right-hand side is captured state — an
   ident not bound inside the closure, or a record-field projection of
   one — smuggle the same mutable object under a fresh, closure-bound
   name.  [alias_map] chases those bindings (transitively) back to the
   captured root so mutations through the alias are reported as
   [race/aliased-ref] rather than slipping past the direct-capture
   checks above. *)
let alias_map bound (clo : expression) =
  let aliases = Hashtbl.create 7 in
  let rec root (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      let uname = Ident.unique_name id in
      if SSet.mem uname bound then Hashtbl.find_opt aliases uname
      else Some (Ident.name id)
    | Texp_ident (p, _, _) -> Some (String.concat "." (canon_of_path p))
    | Texp_field (subject, _, label) ->
      Option.map (fun r -> r ^ "." ^ label.lbl_name) (root subject)
    | _ -> None
  in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), (Texp_ident _ | Texp_field _) -> (
            match root vb.vb_expr with
            | Some r -> Hashtbl.replace aliases (Ident.unique_name id) r
            | None -> ())
          | _ -> ())
        vbs
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it clo;
  aliases

let aliased aliases (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
    match Hashtbl.find_opt aliases (Ident.unique_name id) with
    | Some r -> Some (Printf.sprintf "%s (alias of %s)" (Ident.name id) r)
    | None -> None)
  | _ -> None

let check_pool_closure ctx u poolfn (clo : expression) =
  let bound = bound_idents clo in
  let aliases = alias_map bound clo in
  let alias_mutation e target what =
    match aliased aliases target with
    | Some v ->
      add_diag ctx u e.exp_loc "race/aliased-ref"
        "%s through %s inside a Pool.%s closure; the alias shares the \
         captured object, so this races exactly like a direct capture"
        what v poolfn
    | None -> ()
  in
  let pos_args args =
    List.filter_map
      (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
      args
  in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply (fn, args) -> (
      let comps = ident_comps fn in
      match (comps, pos_args args) with
      | [ ":=" ], target :: _ -> (
        match captured bound target with
        | Some v ->
          add_diag ctx u e.exp_loc "race/captured-ref"
            "assignment to captured ref %s inside a Pool.%s closure; use \
             per-chunk accumulators combined in chunk order, or an Atomic"
            v poolfn
        | None -> alias_mutation e target "assignment to captured ref")
      | [ (("incr" | "decr") as f) ], target :: _ -> (
        match captured bound target with
        | Some v ->
          add_diag ctx u e.exp_loc "race/captured-ref"
            "%s of captured ref %s inside a Pool.%s closure; use per-chunk \
             accumulators combined in chunk order, or an Atomic"
            f v poolfn
        | None -> alias_mutation e target (f ^ " of captured ref"))
      | ( ([ "Array"; ("set" | "unsafe_set") ]
          | [ "Bytes"; ("set" | "unsafe_set") ]
          | [ "Float"; "Array"; ("set" | "unsafe_set") ]),
          arr :: idx :: _ ) -> (
        let chunk_independent =
          SSet.is_empty (SSet.inter (free_local_idents idx) bound)
        in
        match captured bound arr with
        | Some v when chunk_independent ->
          add_diag ctx u e.exp_loc "race/captured-array"
            "write to captured array %s at a chunk-independent index inside \
             a Pool.%s closure; index through a closure-bound variable (the \
             chunk range) or keep the buffer closure-local"
            v poolfn
        | Some _ -> ()
        | None ->
          if chunk_independent then
            alias_mutation e arr "write to captured array")
      | comps, target :: _ when List.mem comps mutating_calls -> (
        match captured bound target with
        | Some v ->
          add_diag ctx u e.exp_loc "race/captured-call"
            "%s mutates captured %s inside a Pool.%s closure; collect \
             per-chunk results and merge them after the parallel region"
            (String.concat "." comps) v poolfn
        | None ->
          alias_mutation e target (String.concat "." comps ^ " mutates captured container"))
      | _ -> ())
    | Texp_setfield (lhs, _, label, _) -> (
      match captured bound lhs with
      | Some v ->
        add_diag ctx u e.exp_loc "race/captured-field"
          "write to mutable field %s of captured %s inside a Pool.%s \
           closure; fold per-chunk results instead"
          label.lbl_name v poolfn
      | None ->
        alias_mutation e lhs
          (Printf.sprintf "write to mutable field %s of captured value"
             label.lbl_name))
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it clo

let rec list_literal_elems (e : expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, [ hd; tl ]) when cd.cstr_name = "::" ->
    hd :: list_literal_elems tl
  | _ -> []

let race_pass ctx d =
  let u = d.owner in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply (fn, args) -> (
      match last2 (ident_comps fn) with
      | Some ("Pool", poolfn) when SSet.mem poolfn pool_fns ->
        List.iter
          (fun ((label : Asttypes.arg_label), arg) ->
            match (label, arg) with
            | (Asttypes.Nolabel | Asttypes.Labelled "f"), Some a -> (
              match a.exp_desc with
              | Texp_function _ -> check_pool_closure ctx u poolfn a
              | _ ->
                (* Pool.run takes a literal list of thunks. *)
                List.iter
                  (fun elem ->
                    match elem.exp_desc with
                    | Texp_function _ -> check_pool_closure ctx u poolfn elem
                    | _ -> ())
                  (list_literal_elems a))
            | Asttypes.Labelled "map", Some a -> (
              match a.exp_desc with
              | Texp_function _ -> check_pool_closure ctx u poolfn a
              | _ -> ())
            | _ -> ())
          args
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it d.body

(* ---------- pass 3: hot-path allocation check ---------- *)

(* The steady-state path is a loop body inside a function of a
   hot-marked module (module-level initialization loops run once and
   are exempt).  An alloc-ok hatch comment on the same or the preceding
   line suppresses one site; a hatch that suppresses nothing is itself
   a finding, so hatches cannot rot.  (The marker spellings are spelled
   out in [Lint.hot_marker]/[alloc_ok_marker], never in comments — this file
   is scanned too.) *)

let add_alloc ctx (u : unit_info) (loc : Location.t) rule fmt =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let hatch =
    match Hashtbl.find_opt u.alloc_ok line with
    | Some used -> Some used
    | None -> Hashtbl.find_opt u.alloc_ok (line - 1)
  in
  match hatch with
  | Some used ->
    Printf.ksprintf
      (fun _ ->
        used := true;
        ctx.hatches_used <- ctx.hatches_used + 1)
      fmt
  | None -> add_diag ctx u loc rule fmt

let returns_float (e : expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, [], _) -> Path.name p = "float"
  | _ -> false

let is_partial_apply (e : expression) =
  match Types.get_desc e.exp_type with Types.Tarrow _ -> true | _ -> false

(* Heads whose calls never allocate a float box on return: compiler
   primitives ([Float.*], [Array.get] on a float array) compile to
   unboxed loads, and sub-inline-threshold accessors in the repo's own
   [Vec]/[Mat] kernels are inlined cross-module from the .cmx. *)
let boxed_float_exempt_heads = SSet.of_list [ "Float"; "Array"; "Bigarray"; "Atomic" ]

let alloc_pass ctx d =
  let u = d.owner in
  let rec walk ~in_loop ~in_fun (e : expression) =
    let flagging = in_loop && in_fun in
    let children ~in_loop ~in_fun e =
      let expr _ e' = walk ~in_loop ~in_fun e' in
      let it = { Tast_iterator.default_iterator with expr } in
      Tast_iterator.default_iterator.expr it e
    in
    match e.exp_desc with
    | Texp_for (_, _, lo, hi, _, body) ->
      walk ~in_loop ~in_fun lo;
      walk ~in_loop ~in_fun hi;
      walk ~in_loop:true ~in_fun body
    | Texp_while (cond, body) ->
      walk ~in_loop:true ~in_fun cond;
      walk ~in_loop:true ~in_fun body
    | Texp_function _ ->
      if flagging then
        add_alloc ctx u e.exp_loc "alloc/closure"
          "closure allocated on every iteration of a hot loop; hoist it out \
           of the loop";
      (* A closure body is a fresh steady-state context: its own loops
         count, the enclosing loop does not. *)
      children ~in_loop:false ~in_fun:true e
    | Texp_tuple _ ->
      if flagging then
        add_alloc ctx u e.exp_loc "alloc/literal"
          "tuple allocated on every iteration of a hot loop; use scratch \
           buffers or split the values";
      children ~in_loop ~in_fun e
    | Texp_record _ ->
      if flagging then
        add_alloc ctx u e.exp_loc "alloc/literal"
          "record allocated on every iteration of a hot loop; mutate a \
           scratch record or split the fields";
      children ~in_loop ~in_fun e
    | Texp_array _ ->
      if flagging then
        add_alloc ctx u e.exp_loc "alloc/literal"
          "array literal allocated on every iteration of a hot loop; hoist a \
           scratch buffer";
      children ~in_loop ~in_fun e
    | Texp_construct (_, cd, (_ :: _ as _args)) ->
      if flagging then
        add_alloc ctx u e.exp_loc "alloc/literal"
          "constructor %s allocated on every iteration of a hot loop%s"
          cd.cstr_name
          (if List.exists returns_float (match e.exp_desc with
              | Texp_construct (_, _, args) -> args
              | _ -> [])
           then " (and it boxes its float argument)"
           else "");
      children ~in_loop ~in_fun e
    | Texp_apply (fn, _) ->
      (if flagging then
         let comps = ident_comps fn in
         match comps with
         | [ "ref" ] ->
           add_alloc ctx u e.exp_loc "alloc/ref"
             "ref cell allocated on every iteration of a hot loop; hoist it \
              or use a mutable local"
         | _ ->
           if is_partial_apply e then
             add_alloc ctx u e.exp_loc "alloc/partial-apply"
               "partial application%s builds a closure on every iteration of \
                a hot loop; apply all arguments or hoist the partial \
                application"
               (match comps with
               | [] -> ""
               | c -> Printf.sprintf " of %s" (String.concat "." c))
           else if
             returns_float e
             && List.length comps >= 2
             && not (SSet.mem (List.hd comps) boxed_float_exempt_heads)
           then
             add_alloc ctx u e.exp_loc "alloc/boxed-float"
               "call to %s returns a boxed float on every iteration of a hot \
                loop; use an *_into scratch variant or justify with an \
                alloc-ok hatch comment"
               (String.concat "." comps));
      children ~in_loop ~in_fun e
    | _ -> children ~in_loop ~in_fun e
  in
  walk ~in_loop:false ~in_fun:false d.body

let unused_hatches ctx (u : unit_info) =
  Hashtbl.fold (fun line used acc -> if !used then acc else line :: acc) u.alloc_ok []
  |> List.sort compare
  |> List.iter (fun line ->
         ctx.diags <-
           {
             Lint.file = u.source;
             line;
             col = 0;
             rule = "alloc/unused-hatch";
             message =
               "this alloc-ok hatch suppresses nothing; remove it (stale \
                hatches hide future regressions)";
           }
           :: ctx.diags)

(* ---------- orchestration ---------- *)

let compare_diag (a : Lint.diag) (b : Lint.diag) =
  match String.compare a.file b.file with
  | 0 -> (
    match compare a.line b.line with
    | 0 -> (
      match compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let scan_units units =
  let units =
    List.sort (fun a b -> String.compare a.canon b.canon) units
  in
  let per_unit = List.map defs_of_unit units in
  let all_defs = List.concat_map fst per_unit in
  let index = build_index all_defs in
  let summaries =
    List.fold_left2
      (fun acc (defs, idtbl) _u ->
        List.fold_left
          (fun acc d ->
            let s = summarize ~index ~idtbl d in
            SMap.update d.key
              (function
                | None -> Some s | Some prev -> Some (merge_summary prev s))
              acc)
          acc defs)
      SMap.empty per_unit units
  in
  let taint = fixpoint summaries in
  let ctx = { diags = []; hatches_used = 0 } in
  det_pass ctx all_defs summaries taint;
  List.iter (fun d -> race_pass ctx d) all_defs;
  List.iter (fun d -> if d.owner.hot then alloc_pass ctx d) all_defs;
  List.iter (fun u -> unused_hatches ctx u) units;
  let diags = List.sort_uniq compare_diag ctx.diags in
  ( diags,
    {
      units_scanned = List.length units;
      defs_analyzed = List.length all_defs;
      hatches_used = ctx.hatches_used;
    } )

(* ---------- exported call-graph surface ----------

   Proto (rodproto) resolves `gated-by` hatches against the same
   suffix-indexed definition table the taint pass uses; exposing the
   enumeration + index here keeps the two analyzers' notion of "which
   function does this dotted name denote" identical. *)

let defs_of_units units = List.concat_map (fun u -> fst (defs_of_unit u)) units

type dindex = {
  by_suffix : string list SMap.t;
  by_key : (string, def list) Hashtbl.t;
}

let index_defs defs =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let prev = Option.value (Hashtbl.find_opt by_key d.key) ~default:[] in
      Hashtbl.replace by_key d.key (prev @ [ d ]))
    defs;
  { by_suffix = build_index defs; by_key }

let resolve_defs idx name =
  resolve idx.by_suffix (canon_components name)
  |> List.concat_map (fun key ->
         Option.value (Hashtbl.find_opt idx.by_key key) ~default:[])
