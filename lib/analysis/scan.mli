(** [rodscan]: interprocedural static analysis over compiler-libs
    {e typedtrees} — the [.cmt] files dune produces — proving the
    properties the parse-tree linter ({!Lint}) can only assert
    syntactically.  Every identifier in a typedtree carries its fully
    resolved [Path.t], so a [Random.float] three calls deep, or a plain
    [ref] captured by a [Parallel.Pool.parallel_for] closure behind a
    module alias, is visible regardless of spelling.

    Three passes share one call-graph/summary infrastructure:

    {b Determinism taint} ([det/taint]): taint is seeded at
    nondeterministic sources (global [Random.*] state,
    [Random.State.make_self_init], [Unix.gettimeofday]/[Unix.time],
    [Sys.time], [Domain.self], and [Hashtbl.iter]/[fold]/[to_seq] whose
    traversal order is unspecified), joined through per-function
    summaries over the whole call graph, and reported wherever it
    reaches a function of a module carrying a
    [(* rodlint: deterministic *)] marker.  The message names the
    shortest laundering chain and the seeding site.

    {b Parallel race lint} ([race/captured-ref], [race/captured-array],
    [race/captured-field], [race/captured-call]): every closure handed
    to [Parallel.Pool.{parallel_for,map_reduce,map_chunks,run]} is
    checked for mutation of captured state that is neither an
    [Atomic.t] (Atomic operations are never flagged) nor provably
    chunk-local — a write to a captured array is allowed exactly when
    its index involves a closure-bound variable, the disjoint-slice
    idiom of the repo's kernels.  Captured state smuggled through a
    closure-local alias ([let slot = total in slot := ...], including
    record-field projections, transitively) is chased back to its
    captured root and reported as [race/aliased-ref].

    {b Hot-path allocation} ([alloc/closure], [alloc/literal],
    [alloc/ref], [alloc/partial-apply], [alloc/boxed-float]): inside
    loop bodies of functions in [(* rodlint: hot *)] modules —
    the steady-state path; module-level init loops run once and are
    exempt — allocating constructs are rejected: closure creation,
    tuple/record/array/constructor literals, [ref] cells, partial
    applications, and cross-module calls returning boxed floats.
    [(* rodscan: alloc-ok <why> *)] on the same or preceding line is
    the per-site escape hatch; a hatch that suppresses nothing is
    itself reported ([alloc/unused-hatch]) so hatches cannot rot.

    Findings reuse {!Lint.diag} and the {!Lint.allowlist} machinery
    (path-suffix/rule-prefix entries with justifications; stale entries
    fail), so [rodscan.allow] works exactly like [rodlint.allow]. *)

val deterministic_marker : string
(** ["rodlint: deterministic"] — marks a module whose results must be
    replayable; the taint pass guards every function in it. *)

val alloc_ok_marker : string
(** ["rodscan: alloc-ok"] — per-site allocation escape hatch. *)

val expect_marker : string
(** ["rodscan-expect:"] — declares a fixture's expected rule ids (used
    by [tools/rodscan --fixtures]). *)

val passes : string list
(** Names of the analysis passes, for [--stats]. *)

val rules : (string * string) list
(** [(rule id, short description)] catalogue, for SARIF and docs. *)

val sarif_rules : Sarif.rule list
(** [rules] lifted to SARIF rule metadata (DESIGN.md §10 help URI). *)

type unit_info = {
  canon : string;  (** Canonical unit name, e.g. ["Feasible.Volume"]. *)
  source : string;  (** Normalized source path; may not exist on disk. *)
  text : string;  (** Raw source text ([""] when the file is gone). *)
  str : Typedtree.structure;
  hot : bool;
  deterministic : bool;
  alloc_ok : (int, bool ref) Hashtbl.t;
      (** Line -> used? for every [alloc-ok] hatch in the source. *)
  expect : string list;  (** Rule ids from [rodscan-expect:] comments. *)
}

val unit_of_cmt : string -> unit_info option
(** Load one compilation unit from a [.cmt] file.  [None] for
    interfaces, packs, partial implementations, or unreadable files.
    Markers and hatches are read from the source file named inside the
    cmt when it exists (it does under dune's [_build/default]). *)

val unit_of_source : filename:string -> string -> unit_info
(** Parse {e and typecheck} source text against the ambient toolchain's
    stdlib (via [Compmisc]), for tests and single-file experiments.
    @raise Failure when the text does not typecheck. *)

(** The taint lattice: a finite powerset of source names with union as
    join — bottom is "deterministic", anything else carries the set of
    nondeterministic sources that can reach the value.  Join is
    commutative, associative and idempotent (QCheck-verified), which is
    what makes the summary fixpoint order-independent. *)
module Taint : sig
  type t

  val bottom : t
  val source : string -> t
  val of_list : string list -> t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val is_tainted : t -> bool
  val to_list : t -> string list
end

val solve : (string * string list * string list) list -> (string * string list) list
(** Pure taint solver over an explicit graph, for property tests:
    [(node, direct sources, callees)] triples in, [(node, sorted taint
    sources)] out (sorted by node name).  Unknown callees are treated
    as pure; duplicate node entries merge.  The result is independent
    of input order. *)

type scan_stats = {
  units_scanned : int;
  defs_analyzed : int;
  hatches_used : int;
}

val scan_units : unit_info list -> Lint.diag list * scan_stats
(** Run all three passes over the units {e together} (the taint pass is
    interprocedural across units).  Diagnostics are sorted by
    [(file, line, col, rule)] and deduplicated; allowlist filtering is
    the caller's job via {!Lint.split_allowed}. *)

(** {2 Call-graph surface shared with {!Proto}}

    [rodproto] resolves its [gated-by] hatches against the same
    definition table the taint pass builds, so both analyzers agree on
    what a dotted name denotes. *)

type def = {
  key : string;  (** Dotted definition key, e.g. ["Deploy.finish"]. *)
  def_loc : Location.t;
  body : Typedtree.expression;
  owner : unit_info;
}

val defs_of_units : unit_info list -> def list
(** Enumerate every top-level (and nested-module) binding as a
    call-graph node, in source order per unit. *)

type dindex

val index_defs : def list -> dindex
(** Index definitions by every module-path suffix of >= 2 components
    (so ["Deploy.finish"], ["Dynamic.Controller.create"] and their
    dune-mangled spellings all resolve). *)

val resolve_defs : dindex -> string -> def list
(** All definitions a dotted name may denote ([] when unknown). *)

val canon_components : string -> string list
(** Canonical components of a dotted name: split on [.] and dune's
    [__], drop a leading [Stdlib]. *)

val canon_of_path : Path.t -> string list
(** [canon_components] of [Path.name]. *)

val compare_diag : Lint.diag -> Lint.diag -> int
(** The [(file, line, col, rule, message)] diagnostic order used by
    {!scan_units}; exported so sibling analyzers sort identically. *)
