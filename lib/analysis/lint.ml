(* The linter walks compiler-libs parsetrees (no typing pass: every
   rule is syntactic, which keeps a full-repo run well under a second).
   See lint.mli for the rule catalogue. *)

open Parsetree
module SSet = Set.Make (String)

type diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let hot_marker = "rodlint: hot"
let obs_marker = "rodlint: obs"

type ctx = {
  file : string;
  hot : bool;
  obs : bool;
  mutable diags : diag list;
  mutable loop_depth : int;
}

let add ctx (loc : Location.t) rule fmt =
  let p = loc.loc_start in
  Printf.ksprintf
    (fun message ->
      ctx.diags <-
        {
          file = ctx.file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        }
        :: ctx.diags)
    fmt

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

(* --- determinism rules (and the hot/obs per-identifier rules), fired
   on every identifier use --- *)

(* Console side-channels flagged in obs-instrumented modules.  String
   renderers ([sprintf], [ksprintf], [Format.asprintf], buffer/channel
   [fprintf]) are deliberately absent: only writes to the process's
   stdout/stderr bypass the registry. *)
let console_printers =
  SSet.of_list
    [ "print_string"; "print_endline"; "print_newline"; "print_int";
      "print_float"; "print_char"; "print_bytes"; "prerr_string";
      "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_float";
      "prerr_char"; "prerr_bytes" ]

let check_ident ctx loc lid =
  match flatten_lid lid with
  | [ ("Printf" | "Format"); (("printf" | "eprintf") as f) ] when ctx.obs ->
    add ctx loc "obs/print-telemetry"
      "%s.%s writes to a console stream from an obs-instrumented module; \
       record telemetry through the Obs registry (counters, gauges, spans) \
       and let an exporter render it"
      (List.hd (flatten_lid lid))
      f
  | ([ f ] | [ "Stdlib"; f ]) when ctx.obs && SSet.mem f console_printers ->
    add ctx loc "obs/print-telemetry"
      "%s writes to a console stream from an obs-instrumented module; \
       record telemetry through the Obs registry (counters, gauges, spans) \
       and let an exporter render it"
      f
  | [ "Random"; "self_init" ] ->
    add ctx loc "determinism/self-init"
      "Random.self_init seeds from the environment; derive a seed and use \
       Random.State.make instead"
  | [ "Random"; f ] ->
    add ctx loc "determinism/global-random"
      "Random.%s uses the global generator state; thread an explicit seeded \
       Random.State.t"
      f
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    add ctx loc "determinism/wallclock"
      "wall-clock read (%s): results would depend on when the code runs"
      (String.concat "." (flatten_lid lid))
  | ([ "compare" ] | [ "Stdlib"; "compare" ]) when ctx.hot ->
    add ctx loc "hot/poly-compare"
      "polymorphic compare in a hot module; use Float.compare / Int.compare \
       or an explicit comparator"
  | _ -> ()

(* --- parallel-safety: closures handed to the domain pool --- *)

let pool_functions = [ "parallel_for"; "map_reduce"; "map_chunks"; "map_chunks_i" ]

let pat_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> acc := txt :: !acc
          | Parsetree.Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !acc

let expr_idents e =
  let acc = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt = Longident.Lident v; _ } ->
            acc := SSet.add v !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_lid txt
  | _ -> []

let first_nolabel args =
  List.find_map
    (function Asttypes.Nolabel, a -> Some a | _ -> None)
    args

(* In a pool closure, mutation of captured state is safe only through
   the chunk-index idiom: a captured array written at an index that
   involves a closure-bound variable (the [for s = lo to hi - 1] loop
   variable) touches a range no other chunk touches. *)
let check_pool_mutation ctx bound (e : Parsetree.expression) fn args =
  match ident_path fn with
  | [ ":=" ] | [ "Stdlib"; ":=" ] -> (
    match first_nolabel args with
    | Some { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }
      when not (SSet.mem v bound) ->
      add ctx e.pexp_loc "parallel/captured-mutation"
        "assignment to captured ref %s inside a pool closure; use per-chunk \
         accumulators combined by map_reduce, or an Atomic"
        v
    | _ -> ())
  | [ ("incr" | "decr") ] | [ "Stdlib"; ("incr" | "decr") ] -> (
    match first_nolabel args with
    | Some { pexp_desc = Pexp_ident { txt = Longident.Lident v; _ }; _ }
      when not (SSet.mem v bound) ->
      add ctx e.pexp_loc "parallel/captured-mutation"
        "incr/decr of captured ref %s inside a pool closure; use per-chunk \
         accumulators combined by map_reduce, or an Atomic"
        v
    | _ -> ())
  | [ "Array"; ("set" | "unsafe_set") ] -> (
    match args with
    | [ (_, arr); (_, idx); _ ] -> (
      match arr.pexp_desc with
      | Pexp_ident { txt = Longident.Lident v; _ }
        when (not (SSet.mem v bound))
             && SSet.is_empty (SSet.inter (expr_idents idx) bound) ->
        add ctx e.pexp_loc "parallel/captured-mutation"
          "write to captured array %s at a chunk-independent index inside a \
           pool closure; index through the chunk range or keep the buffer \
           local"
          v
      | _ -> ())
    | _ -> ())
  | _ -> ()

let rec walk_closure ctx bound (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (walk_closure ctx bound) default;
    walk_closure ctx (SSet.union bound (SSet.of_list (pat_vars pat))) body
  | Pexp_function cases -> List.iter (walk_case ctx bound) cases
  | Pexp_let (rec_flag, vbs, body) ->
    let names =
      List.concat_map (fun vb -> pat_vars vb.Parsetree.pvb_pat) vbs
    in
    let inner = SSet.union bound (SSet.of_list names) in
    let rhs_bound =
      match rec_flag with Asttypes.Recursive -> inner | Nonrecursive -> bound
    in
    List.iter (fun vb -> walk_closure ctx rhs_bound vb.Parsetree.pvb_expr) vbs;
    walk_closure ctx inner body
  | Pexp_for (pat, lo, hi, _, body) ->
    walk_closure ctx bound lo;
    walk_closure ctx bound hi;
    walk_closure ctx (SSet.union bound (SSet.of_list (pat_vars pat))) body
  | Pexp_match (scrutinee, cases) | Pexp_try (scrutinee, cases) ->
    walk_closure ctx bound scrutinee;
    List.iter (walk_case ctx bound) cases
  | Pexp_setfield (lhs, _, rhs) ->
    (match lhs.pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } when not (SSet.mem v bound) ->
      add ctx e.pexp_loc "parallel/captured-mutation"
        "mutable-field write on captured %s inside a pool closure; fold \
         per-chunk results instead"
        v
    | _ -> ());
    walk_closure ctx bound lhs;
    walk_closure ctx bound rhs
  | Pexp_apply (fn, args) ->
    check_pool_mutation ctx bound e fn args;
    walk_closure ctx bound fn;
    List.iter (fun (_, a) -> walk_closure ctx bound a) args
  | _ ->
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ e' -> walk_closure ctx bound e');
      }
    in
    Ast_iterator.default_iterator.expr it e

and walk_case ctx bound (c : Parsetree.case) =
  let bound = SSet.union bound (SSet.of_list (pat_vars c.pc_lhs)) in
  Option.iter (walk_closure ctx bound) c.pc_guard;
  walk_closure ctx bound c.pc_rhs

(* --- hot-path hygiene helpers --- *)

let float_functions =
  SSet.of_list
    [ "sqrt"; "exp"; "log"; "log10"; "float_of_int"; "abs_float"; "cos"; "sin";
      "tan"; "atan"; "atan2"; "ceil"; "floor"; "mod_float" ]

let is_float_operator name =
  String.length name > 1
  && name.[String.length name - 1] = '.'
  && String.contains "+-*/*" name.[0]

let looks_float (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
    match flatten_lid txt with
    | [ ("infinity" | "neg_infinity" | "nan" | "epsilon_float" | "max_float"
        | "min_float") ] ->
      true
    | "Float" :: _ :: _ -> true
    | _ -> false)
  | Pexp_apply (fn, _) -> (
    match ident_path fn with
    | [ op ] when is_float_operator op -> true
    | [ f ] when SSet.mem f float_functions -> true
    | "Float" :: _ :: _ -> true
    | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ })
    ->
    true
  | _ -> false

(* --- the main per-file iterator --- *)

let main_iterator ctx =
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc txt
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply (fn, args) ->
      (match List.rev (ident_path fn) with
      | name :: _ when List.mem name pool_functions ->
        List.iter
          (fun ((label : Asttypes.arg_label), arg) ->
            let is_closure =
              match arg.Parsetree.pexp_desc with
              | Pexp_fun _ | Pexp_function _ -> true
              | _ -> false
            in
            let relevant =
              match label with
              | Nolabel | Labelled "map" -> true
              | Labelled _ | Optional _ -> false
            in
            if relevant && is_closure then walk_closure ctx SSet.empty arg)
          args
      | _ -> ());
      (if ctx.hot then
         match (ident_path fn, args) with
         | [ (("=" | "<>") as op) ], [ (_, a); (_, b) ]
           when looks_float a || looks_float b ->
           add ctx e.pexp_loc "hot/float-eq"
             "polymorphic %s on floats in a hot module; use Float.compare \
              (or an epsilon) — float equality also mishandles nan"
             op
         | _ -> ());
      Ast_iterator.default_iterator.expr it e
    | Pexp_for (_, _, _, _, _) | Pexp_while (_, _) ->
      ctx.loop_depth <- ctx.loop_depth + 1;
      Ast_iterator.default_iterator.expr it e;
      ctx.loop_depth <- ctx.loop_depth - 1
    | Pexp_fun _ | Pexp_function _ when ctx.hot && ctx.loop_depth > 0 ->
      add ctx e.pexp_loc "hot/closure-in-loop"
        "function literal inside a loop body in a hot module allocates one \
         closure per iteration; hoist it out of the loop";
      let saved = ctx.loop_depth in
      ctx.loop_depth <- 0;
      Ast_iterator.default_iterator.expr it e;
      ctx.loop_depth <- saved
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  { Ast_iterator.default_iterator with expr }

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let lint_string ?hot ?obs ~filename source =
  let hot =
    match hot with Some h -> h | None -> contains_substring source hot_marker
  in
  let obs =
    match obs with Some o -> o | None -> contains_substring source obs_marker
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | structure ->
    let ctx = { file = filename; hot; obs; diags = []; loop_depth = 0 } in
    let it = main_iterator ctx in
    it.structure it structure;
    List.rev ctx.diags
  | exception exn -> (
    let fallback message =
      [ { file = filename; line = 1; col = 0; rule = "parse/error"; message } ]
    in
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      let loc = report.Location.main.loc in
      [
        {
          file = filename;
          line = loc.loc_start.Lexing.pos_lnum;
          col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol;
          rule = "parse/error";
          message = Format.asprintf "%t" report.Location.main.txt;
        };
      ]
    | Some `Already_displayed | None -> fallback (Printexc.to_string exn))

let lint_file ?hot ?obs path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string ?hot ?obs ~filename:path source

(* --- allowlist ---

   The machinery itself lives in {!Allowlist} (it is shared by all four
   analyzer drivers); these are compatibility delegations so existing
   callers and tests of the original Lint API keep working. *)

type allowlist = Allowlist.t

let empty_allowlist = Allowlist.empty
let allowlist_of_string = Allowlist.of_string
let load_allowlist = Allowlist.load
let normalize_path = Allowlist.normalize_path

let split_allowed allowlist diags =
  Allowlist.split
    ~file:(fun (d : diag) -> d.file)
    ~rule:(fun (d : diag) -> d.rule)
    allowlist diags

let unused_entries = Allowlist.unused
let prune = Allowlist.prune

let render (d : diag) =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message
