(* rodunits' engine: dimensional analysis over typedtrees.  Dimension
   facts are seeded from marker comments in interfaces, propagated
   interprocedurally through Scan's def-index (mul/div compose
   dimensions, add/compare require equal ones, literals adapt), and
   checked at every arithmetic site.  Like Scan and Proto, the marker
   strings are assembled at runtime so this file's own source never
   matches them — and the doc comments here spell the marker without
   its colon for the same reason. *)

open Typedtree

let units_marker = "rod" ^ "units:"
let expect_marker = "rod" ^ "units-expect:"
let passes = [ "interface-seeding"; "dimension-propagation" ]

let rules =
  [
    ( "units/mixed-add",
      "values of two different dimensions are added or subtracted" );
    ( "units/mixed-compare",
      "values of two different dimensions are compared (ordering, \
       min/max, compare)" );
    ( "units/dim-mismatch-call",
      "an argument, record field, or function body disagrees with the \
       declared dimension" );
    ( "units/unannotated-boundary",
      "an exported float in a dimension-annotated interface carries no \
       marker" );
    ( "units/bad-marker",
      "a dimension marker that does not parse or binds no declaration" );
    ("units/unused-hatch", "an ok-hatch suppresses nothing");
  ]

let sarif_rules =
  Sarif.rules_of_catalogue
    ~help_uri:"DESIGN.md#15-dimensional-analysis-rodunits" rules

(* ---------- the dimension group ---------- *)

module Dim = struct
  (* Exponent vector over the base units, index-aligned with
     [bases].  All operations are pure and return fresh arrays. *)
  type t = int array

  let bases = [| "tuple"; "cpu-sec"; "sim-sec"; "byte"; "node-cap" |]
  let n = Array.length bases
  let base_names = Array.to_list bases
  let one = Array.make n 0

  let base name =
    let rec find i =
      if i >= n then None
      else if String.equal bases.(i) name then
        Some (Array.init n (fun j -> if j = i then 1 else 0))
      else find (i + 1)
    in
    find 0

  let mul a b = Array.init n (fun i -> a.(i) + b.(i))
  let inv a = Array.map (fun e -> -e) a
  let div a b = mul a (inv b)
  let pow a k = Array.map (fun e -> e * k) a
  let equal (a : t) (b : t) = a = b

  let to_string d =
    let parts = ref [] in
    for i = n - 1 downto 0 do
      if d.(i) <> 0 then
        parts :=
          (if d.(i) = 1 then bases.(i)
           else Printf.sprintf "%s^%d" bases.(i) d.(i))
          :: !parts
    done;
    match !parts with [] -> "1" | parts -> String.concat "*" parts

  (* The composite quantities the repo talks about constantly get
     names; everything else is spelled out in base units. *)
  let alias name =
    let b s = Option.get (base s) in
    match name with
    | "1" | "ratio" -> Some one
    | "rate" -> Some (div (b "tuple") (b "sim-sec"))
    | "load-coeff" -> Some (div (b "cpu-sec") (b "tuple"))
    | _ -> None

  let parse_factor tok =
    let name, exp =
      match String.index_opt tok '^' with
      | None -> (tok, Ok 1)
      | Some i ->
        let e = String.sub tok (i + 1) (String.length tok - i - 1) in
        ( String.sub tok 0 i,
          match int_of_string_opt e with
          | Some k -> Ok k
          | None -> Error (Printf.sprintf "bad exponent %S" e) )
    in
    match exp with
    | Error _ as err -> err |> Result.map (fun _ -> one)
    | Ok k -> (
      match alias name with
      | Some d -> Ok (pow d k)
      | None -> (
        match base name with
        | Some d -> Ok (pow d k)
        | None ->
          Error
            (Printf.sprintf "unknown unit %S (bases: %s; aliases: rate, \
                             load-coeff, ratio, 1)"
               name
               (String.concat ", " base_names))))

  let parse s =
    let s = String.trim s in
    if s = "" then Error "empty dimension expression"
    else begin
      (* Split into signed factors: the first is positive, each
         subsequent factor's sign comes from its separator, so
         [a/b*c] means a·b⁻¹·c and [a/b/c] means a·b⁻¹·c⁻¹. *)
      let factors = ref [] and buf = Buffer.create 16 and sign = ref 1 in
      let flush next_sign =
        factors := (!sign, String.trim (Buffer.contents buf)) :: !factors;
        Buffer.clear buf;
        sign := next_sign
      in
      String.iter
        (fun c ->
          match c with
          | '*' -> flush 1
          | '/' -> flush (-1)
          | c -> Buffer.add_char buf c)
        s;
      flush 1;
      List.fold_left
        (fun acc (sg, tok) ->
          match acc with
          | Error _ -> acc
          | Ok d ->
            if tok = "" then Error "empty factor in dimension expression"
            else
              Result.map
                (fun f -> mul d (if sg = 1 then f else inv f))
                (parse_factor tok))
        (Ok one) (List.rev !factors)
    end
end

(* ---------- the abstract-value lattice ---------- *)

module Abs = struct
  type t = Poly | Unknown | Dim of Dim.t | Conflict

  let equal a b =
    match (a, b) with
    | Poly, Poly | Unknown, Unknown | Conflict, Conflict -> true
    | Dim x, Dim y -> Dim.equal x y
    | _ -> false

  (* Poly ⊑ Unknown ⊑ Dim d ⊑ Conflict, distinct dims incomparable.
     This is both the branch merge and the add/min/max transfer: a
     literal adapts to anything, an unknown stays consistent with any
     single dimension, and two different concrete dimensions conflict
     — exactly the condition the mixed-add check fires on. *)
  let join a b =
    match (a, b) with
    | Conflict, _ | _, Conflict -> Conflict
    | Dim x, Dim y -> if Dim.equal x y then Dim x else Conflict
    | (Dim _ as d), _ | _, (Dim _ as d) -> d
    | Unknown, _ | _, Unknown -> Unknown
    | Poly, Poly -> Poly

  let leq a b = equal (join a b) b

  (* Multiplication: Poly is the identity, Unknown absorbs (a product
     with an unknown factor is unknown — claiming otherwise is how
     false positives happen), Conflict absorbs everything. *)
  let mul a b =
    match (a, b) with
    | Conflict, _ | _, Conflict -> Conflict
    | Unknown, _ | _, Unknown -> Unknown
    | Poly, x | x, Poly -> x
    | Dim x, Dim y -> Dim (Dim.mul x y)

  let inv = function Dim d -> Dim (Dim.inv d) | x -> x
  let div a b = mul a (inv b)

  let to_string = function
    | Poly -> "a literal"
    | Unknown -> "unknown"
    | Dim d -> Dim.to_string d
    | Conflict -> "conflicting"
end

(* ---------- text helpers (shared idiom with Proto) ---------- *)

let find_substring line needle =
  let hl = String.length line and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then None
    else if String.sub line i nl = needle then Some i
    else scan (i + 1)
  in
  scan 0

let rest_after line marker =
  match find_substring line marker with
  | None -> None
  | Some i ->
    let rest =
      String.sub line
        (i + String.length marker)
        (String.length line - i - String.length marker)
    in
    Some
      (match find_substring rest "*)" with
      | Some j -> String.sub rest 0 j
      | None -> rest)

(* Split on a multi-char separator (the spec's arrow). *)
let split_on_sub sep s =
  let rec go acc s =
    match find_substring s sep with
    | None -> List.rev (s :: acc)
    | Some i ->
      let before = String.sub s 0 i in
      let after =
        String.sub s
          (i + String.length sep)
          (String.length s - i - String.length sep)
      in
      go (before :: acc) after
  in
  go [] s

(* ---------- interface seeding ---------- *)

type vannot = {
  va_params : (string * Dim.t) list;  (* labelled parameter -> dim *)
  va_result : Dim.t option;
}

type iface = {
  if_marked : bool;
  if_annots : (string * vannot) list;  (* "Canon.path.name" -> annot *)
  if_fields : (string * Dim.t) list;  (* "Canon.path.type.label" -> dim *)
  if_diags : Lint.diag list;
  if_vals : int;
  if_fields_n : int;
}

(* A spec is [(label:dim -> )* (dim | _)]; fields take the bare tail
   form only. *)
let parse_spec ~allow_params spec =
  let segs = split_on_sub "->" spec |> List.map String.trim in
  match List.rev segs with
  | [] -> Error "empty marker"
  | last :: rev_init ->
    let result =
      if last = "_" then Ok None
      else Result.map Option.some (Dim.parse last)
    in
    let params =
      List.fold_left
        (fun acc seg ->
          match acc with
          | Error _ -> acc
          | Ok ps -> (
            match String.index_opt seg ':' with
            | None ->
              Error
                (Printf.sprintf
                   "parameter segment %S is not of the form label:dim" seg)
            | Some i ->
              let label = String.trim (String.sub seg 0 i) in
              let dim =
                String.sub seg (i + 1) (String.length seg - i - 1)
              in
              if label = "" then Error "empty parameter label"
              else Result.map (fun d -> (label, d) :: ps) (Dim.parse dim)))
        (Ok []) (List.rev rev_init)
    in
    (match (params, result) with
    | Error e, _ | _, Error e -> Error e
    | Ok ps, Ok r ->
      if ps <> [] && not allow_params then
        Error "record fields take a bare dimension, not parameter segments"
      else Ok { va_params = List.rev ps; va_result = r })

let rec final_result (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> final_result r
  | Ptyp_poly (_, r) -> final_result r
  | _ -> t

let is_float_type (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
  | _ -> false

let parse_iface ~canon ~file text =
  (* line -> (spec, standalone).  A standalone marker (the line holds
     nothing but the comment) may bind the declaration ending on the
     line above — the shape long signatures force; a trailing marker
     binds the declaration on its own line. *)
  let markers = Hashtbl.create 16 in
  List.iteri
    (fun idx line ->
      match find_substring line units_marker with
      | None -> ()
      | Some i ->
        let rest = Option.get (rest_after line units_marker) in
        let standalone =
          match String.trim (String.sub line 0 i) with
          | "(*" | "(**" -> true
          | _ -> false
        in
        Hashtbl.replace markers (idx + 1) (String.trim rest, standalone))
    (String.split_on_char '\n' text);
  let marked = Hashtbl.length markers > 0 in
  let consumed = Hashtbl.create 16 in
  let diags = ref [] and annots = ref [] and fields = ref [] in
  let vals = ref 0 and fields_n = ref 0 in
  let diag line rule message =
    diags := { Lint.file; line; col = 0; rule; message } :: !diags
  in
  let consume line spec =
    Hashtbl.replace consumed line ();
    Some (line, spec)
  in
  (* Binding order: trailing on the declaration's first line, trailing
     on its last line, standalone on the line directly after. *)
  let marker_for (loc : Location.t) =
    let first = loc.Location.loc_start.Lexing.pos_lnum in
    let last = loc.Location.loc_end.Lexing.pos_lnum in
    match Hashtbl.find_opt markers first with
    | Some (spec, _) -> consume first spec
    | None -> (
      match (if last <> first then Hashtbl.find_opt markers last else None) with
      | Some (spec, _) -> consume last spec
      | None -> (
        match Hashtbl.find_opt markers (last + 1) with
        | Some (spec, true) -> consume (last + 1) spec
        | _ -> None))
  in
  let bind_value path (name : string Location.loc) full_loc ty =
    let line = name.loc.Location.loc_start.Lexing.pos_lnum in
    match marker_for full_loc with
    | Some (mline, spec) -> (
      match parse_spec ~allow_params:true spec with
      | Ok va ->
        incr vals;
        annots :=
          (String.concat "." (canon :: (path @ [ name.txt ])), va) :: !annots
      | Error e -> diag mline "units/bad-marker" e)
    | None ->
      if marked && is_float_type (final_result ty) then
        diag line "units/unannotated-boundary"
          (Printf.sprintf
             "exported float %s carries no dimension marker in an annotated \
              interface; annotate it or add a units/unannotated-boundary \
              allow entry"
             name.txt)
  in
  let bind_field path tyname (ld : Parsetree.label_declaration) =
    let line = ld.pld_name.loc.Location.loc_start.Lexing.pos_lnum in
    match marker_for ld.pld_loc with
    | Some (mline, spec) -> (
      match parse_spec ~allow_params:false spec with
      | Ok { va_result = Some d; _ } ->
        incr fields_n;
        fields :=
          ( String.concat "."
              (canon :: (path @ [ tyname; ld.pld_name.txt ])),
            d )
          :: !fields
      | Ok { va_result = None; _ } ->
        diag mline "units/bad-marker"
          "a record-field marker needs a concrete dimension, not _"
      | Error e -> diag mline "units/bad-marker" e)
    | None ->
      if marked && is_float_type ld.pld_type then
        diag line "units/unannotated-boundary"
          (Printf.sprintf
             "exported float field %s carries no dimension marker in an \
              annotated interface; annotate it or add a \
              units/unannotated-boundary allow entry"
             ld.pld_name.txt)
  in
  let rec items path sigs =
    List.iter
      (fun (si : Parsetree.signature_item) ->
        match si.psig_desc with
        | Psig_value vd -> bind_value path vd.pval_name vd.pval_loc vd.pval_type
        | Psig_type (_, decls) ->
          List.iter
            (fun (td : Parsetree.type_declaration) ->
              match td.ptype_kind with
              | Ptype_record lds ->
                List.iter (bind_field path td.ptype_name.txt) lds
              | _ -> ())
            decls
        | Psig_module { pmd_name = { txt = Some m; _ }; pmd_type; _ } -> (
          match pmd_type.pmty_desc with
          | Pmty_signature sigs -> items (path @ [ m ]) sigs
          | _ -> ())
        | _ -> ())
      sigs
  in
  (match Parse.interface (Lexing.from_string text) with
  | sigs -> items [] sigs
  | exception _ ->
    if marked then
      diag 1 "units/bad-marker"
        "this interface carries dimension markers but does not parse; the \
         markers cannot be bound");
  Hashtbl.iter
    (fun line _ ->
      if not (Hashtbl.mem consumed line) then
        diag line "units/bad-marker"
          "this dimension marker binds no declaration; put it on the line \
           declaring the val or record label")
    markers;
  {
    if_marked = marked;
    if_annots = !annots;
    if_fields = !fields;
    if_diags = !diags;
    if_vals = !vals;
    if_fields_n = !fields_n;
  }

(* ---------- implementation-side metadata (hatches) ---------- *)

type hatch = { hline : int; mutable used : bool }

type meta = {
  hatches : (int, hatch) Hashtbl.t;
  bad_lines : (int * string) list;
}

let meta_of_unit (u : Scan.unit_info) =
  let hatches = Hashtbl.create 7 and bad = ref [] in
  List.iteri
    (fun idx line ->
      let ln = idx + 1 in
      match rest_after line units_marker with
      | None -> ()
      | Some rest -> (
        match
          String.split_on_char ' ' (String.trim rest)
          |> List.filter (fun t -> t <> "")
        with
        | "ok" :: _ :: _ -> Hashtbl.replace hatches ln { hline = ln; used = false }
        | [ "ok" ] ->
          bad := (ln, "an ok-hatch needs a justification after the ok") :: !bad
        | _ ->
          bad :=
            ( ln,
              "dimension markers belong in the interface (.mli); in \
               implementations only ok-hatches are recognized" )
            :: !bad))
    (String.split_on_char '\n' u.Scan.text);
  { hatches; bad_lines = List.rev !bad }

let expect_of_unit (u : Scan.unit_info) =
  String.split_on_char '\n' u.Scan.text
  |> List.concat_map (fun line ->
         match rest_after line expect_marker with
         | None -> []
         | Some rest ->
           String.split_on_char ' ' rest
           |> List.concat_map (String.split_on_char ',')
           |> List.filter (fun t -> t <> ""))

(* ---------- diagnostics ---------- *)

type ctx = {
  mutable diags : Lint.diag list;
  mutable hatches_used : int;
  mutable report : bool;
}

let add_line_diag ctx file line rule message =
  ctx.diags <- { Lint.file; line; col = 0; rule; message } :: ctx.diags

(* ---------- resolution tables ---------- *)

type genv = {
  dindex : Scan.dindex;
  annot_by_key : (string, vannot) Hashtbl.t;
  field_sfx : (string, string list) Hashtbl.t;  (* suffix -> full keys *)
  field_by_key : (string, Dim.t) Hashtbl.t;
  summaries : (string, Abs.t) Hashtbl.t;  (* constants only *)
  ctx : ctx;
}

(* Index every >= 2-component suffix of a dotted key, mirroring Scan's
   def index, so [move.cost], [Replanner.move.cost] and the
   dune-mangled spelling all resolve to the same field. *)
let sfx_add tbl key =
  let comps = String.split_on_char '.' key in
  let rec go = function
    | [] | [ _ ] -> ()
    | l ->
      let s = String.concat "." l in
      let prev = Option.value (Hashtbl.find_opt tbl s) ~default:[] in
      if not (List.mem key prev) then Hashtbl.replace tbl s (key :: prev);
      go (List.tl l)
  in
  go comps

type env = {
  g : genv;
  u : Scan.unit_info;
  meta : meta;
  locals : (string, Abs.t) Hashtbl.t;
}

(* Keys a dotted use may denote: a sibling in the same unit first
   (single-component names never reach the >= 2-component index),
   otherwise whatever Scan's def index resolves. *)
let resolve_keys env comps =
  match comps with
  | [] -> []
  | _ ->
    let name = String.concat "." comps in
    let same_unit = env.u.Scan.canon ^ "." ^ name in
    if
      Hashtbl.mem env.g.annot_by_key same_unit
      || Hashtbl.mem env.g.summaries same_unit
    then [ same_unit ]
    else
      List.map
        (fun (d : Scan.def) -> d.Scan.key)
        (Scan.resolve_defs env.g.dindex name)

let annot_of_keys g keys =
  match List.filter_map (Hashtbl.find_opt g.annot_by_key) keys with
  | [] -> None
  | a :: rest -> if List.for_all (fun a' -> a' = a) rest then Some a else None

let result_of_keys g keys =
  match annot_of_keys g keys with
  | Some { va_result = Some d; _ } -> Abs.Dim d
  | Some { va_result = None; _ } -> Abs.Unknown
  | None -> (
    match List.filter_map (Hashtbl.find_opt g.summaries) keys with
    | [] -> Abs.Unknown
    | v :: rest ->
      if List.for_all (Abs.equal v) rest then v else Abs.Unknown)

(* The dimension of a record label, resolved through the label's
   record type so same-named fields of different records (a move's
   cost in seconds vs an operator's cost coefficient) stay distinct. *)
let field_dim g (label : Types.label_description) =
  match Types.get_desc label.lbl_res with
  | Types.Tconstr (p, _, _) -> (
    let key =
      String.concat "." (Scan.canon_of_path p @ [ label.lbl_name ])
    in
    match Hashtbl.find_opt g.field_sfx key with
    | None -> None
    | Some keys -> (
      match List.filter_map (Hashtbl.find_opt g.field_by_key) keys with
      | [] -> None
      | d :: rest ->
        if List.for_all (Dim.equal d) rest then Some d else None))
  | _ -> None

(* ---------- reporting with hatches ---------- *)

let hatch_at env line =
  match Hashtbl.find_opt env.meta.hatches line with
  | Some h -> Some h
  | None -> Hashtbl.find_opt env.meta.hatches (line - 1)

let report env (loc : Location.t) rule fmt =
  let p = loc.Location.loc_start in
  Printf.ksprintf
    (fun message ->
      if env.g.ctx.report then
        match hatch_at env p.Lexing.pos_lnum with
        | Some h ->
          if not h.used then begin
            h.used <- true;
            env.g.ctx.hatches_used <- env.g.ctx.hatches_used + 1
          end
        | None ->
          env.g.ctx.diags <-
            {
              Lint.file = env.u.Scan.source;
              line = p.Lexing.pos_lnum;
              col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
              rule;
              message;
            }
            :: env.g.ctx.diags)
    fmt

(* ---------- the walk ---------- *)

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let ident_comps (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Scan.canon_of_path p
  | _ -> []

(* Operator classification on canonical components (Stdlib is already
   dropped, so [Stdlib.(+.)] arrives as ["+."]). *)
let op_kind = function
  | [ ("+." | "-." | "+" | "-") as op ] -> `Add op
  | [ ("*." | "*") ] -> `Mul
  | [ ("/." | "/") ] -> `Div
  | [ ("~-." | "~-" | "abs_float" | "float_of_int" | "int_of_float"
      | "truncate" | "floor" | "ceil") ]
  | [ "Float"; ("abs" | "neg" | "of_int" | "to_int" | "round" | "floor"
               | "ceil" | "succ" | "pred") ]
  | [ "Int"; ("abs" | "neg" | "of_float" | "to_float") ] ->
    `Pass
  | [ (("min" | "max") as op) ]
  | [ "Float"; (("min" | "max" | "min_num" | "max_num") as op) ]
  | [ "Int"; (("min" | "max") as op) ] ->
    `Minmax op
  | [ (("<" | "<=" | ">" | ">=" | "=" | "<>" | "compare") as op) ]
  | [ "Float"; (("compare" | "equal") as op) ]
  | [ "Int"; (("compare" | "equal") as op) ] ->
    `Cmp op
  | _ -> `Call

let check_field env loc (label : Types.label_description) v =
  match (field_dim env.g label, v) with
  | Some d, Abs.Dim d' when not (Dim.equal d d') ->
    report env loc "units/dim-mismatch-call"
      "field %s is %s but receives %s" label.lbl_name (Dim.to_string d)
      (Dim.to_string d')
  | _ -> ()

let bind_local env id v = Hashtbl.replace env.locals (Ident.unique_name id) v

(* Shallow pattern binding: plain vars and aliases take the matched
   value; record-pattern vars take their field's dimension.  Deeper
   shapes stay unbound (Unknown on lookup) — conservative. *)
let rec bind_pattern : type k. env -> k general_pattern -> Abs.t -> unit =
 fun env p v ->
  match p.pat_desc with
  | Tpat_value arg -> bind_pattern env (arg :> value general_pattern) v
  | Tpat_var (id, _) -> bind_local env id v
  | Tpat_alias (q, id, _) ->
    bind_local env id v;
    bind_pattern env q v
  | Tpat_record (fields, _) ->
    List.iter
      (fun (_, label, pat) ->
        let fv =
          match field_dim env.g label with
          | Some d -> Abs.Dim d
          | None -> Abs.Unknown
        in
        bind_pattern env pat fv)
      fields
  | _ -> ()

let rec eval env (e : expression) : Abs.t =
  match e.exp_desc with
  | Texp_constant _ -> Abs.Poly
  | Texp_ident (p, _, _) ->
    if is_arrow e.exp_type then Abs.Unknown
    else begin
      let local =
        match p with
        | Path.Pident id -> Hashtbl.find_opt env.locals (Ident.unique_name id)
        | _ -> None
      in
      match local with
      | Some v -> v
      | None -> result_of_keys env.g (resolve_keys env (Scan.canon_of_path p))
    end
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun vb ->
        let v = eval env vb.vb_expr in
        bind_pattern env vb.vb_pat v)
      vbs;
    eval env body
  | Texp_function { cases; _ } ->
    List.iter (fun c -> ignore (eval env c.c_rhs)) cases;
    Abs.Unknown
  | Texp_apply (fn, args) -> eval_apply env e fn args
  | Texp_match (scrut, cases, _) ->
    let sv = eval env scrut in
    List.fold_left
      (fun acc c ->
        bind_pattern env c.c_lhs sv;
        (match c.c_guard with Some g -> ignore (eval env g) | None -> ());
        Abs.join acc (eval env c.c_rhs))
      Abs.Poly cases
  | Texp_try (body, cases) ->
    let bv = eval env body in
    List.fold_left
      (fun acc c ->
        bind_pattern env c.c_lhs Abs.Unknown;
        Abs.join acc (eval env c.c_rhs))
      bv cases
  | Texp_ifthenelse (cond, thn, els) -> (
    ignore (eval env cond);
    let tv = eval env thn in
    match els with
    | Some e2 -> Abs.join tv (eval env e2)
    | None -> Abs.Unknown)
  | Texp_sequence (a, b) ->
    ignore (eval env a);
    eval env b
  | Texp_field (r, _, label) -> (
    ignore (eval env r);
    match field_dim env.g label with
    | Some d -> Abs.Dim d
    | None -> Abs.Unknown)
  | Texp_setfield (r, _, label, v) ->
    ignore (eval env r);
    let a = eval env v in
    check_field env v.exp_loc label a;
    Abs.Unknown
  | Texp_record { fields; extended_expression; _ } ->
    Option.iter (fun ex -> ignore (eval env ex)) extended_expression;
    Array.iter
      (fun (label, def) ->
        match def with
        | Overridden (_, ex) ->
          let a = eval env ex in
          check_field env ex.exp_loc label a
        | Kept _ -> ())
      fields;
    Abs.Unknown
  | _ ->
    (* Anything else: walk the children for findings, value unknown. *)
    let expr _it child = ignore (eval env child) in
    let it = { Tast_iterator.default_iterator with expr } in
    Tast_iterator.default_iterator.expr it e;
    Abs.Unknown

and eval_apply env (e : expression) fn args =
  (match fn.exp_desc with
  | Texp_ident _ -> ()
  | _ -> ignore (eval env fn));
  let evargs =
    List.map
      (fun (l, a) -> (l, Option.map (fun a -> (a, eval env a)) a))
      args
  in
  let pos =
    List.filter_map
      (function Asttypes.Nolabel, Some (_, v) -> Some v | _ -> None)
      evargs
  in
  let comps = ident_comps fn in
  match (op_kind comps, pos) with
  | `Add op, [ a; b ] ->
    (match (a, b) with
    | Abs.Dim x, Abs.Dim y when not (Dim.equal x y) ->
      report env e.exp_loc "units/mixed-add"
        "operands of %s have different dimensions: %s vs %s" op
        (Dim.to_string x) (Dim.to_string y)
    | _ -> ());
    Abs.join a b
  | `Mul, [ a; b ] -> Abs.mul a b
  | `Div, [ a; b ] -> Abs.div a b
  | `Pass, [ a ] -> a
  | `Minmax op, [ a; b ] ->
    (match (a, b) with
    | Abs.Dim x, Abs.Dim y when not (Dim.equal x y) ->
      report env e.exp_loc "units/mixed-compare"
        "operands of %s have different dimensions: %s vs %s" op
        (Dim.to_string x) (Dim.to_string y)
    | _ -> ());
    Abs.join a b
  | `Cmp op, [ a; b ] ->
    (match (a, b) with
    | Abs.Dim x, Abs.Dim y when not (Dim.equal x y) ->
      report env e.exp_loc "units/mixed-compare"
        "comparing %s against %s with %s" (Dim.to_string x) (Dim.to_string y)
        op
    | _ -> ());
    Abs.Unknown
  | _ -> (
    let keys = resolve_keys env comps in
    match annot_of_keys env.g keys with
    | Some va ->
      List.iter
        (fun (l, a) ->
          match (l, a) with
          | Asttypes.Labelled lbl, Some ((arg : expression), v) -> (
            match (List.assoc_opt lbl va.va_params, v) with
            | Some d, Abs.Dim d' when not (Dim.equal d d') ->
              report env arg.exp_loc "units/dim-mismatch-call"
                "argument ~%s of %s is %s but receives %s" lbl
                (String.concat "." comps) (Dim.to_string d)
                (Dim.to_string d')
            | _ -> ())
          | _ -> ())
        evargs;
      if is_arrow e.exp_type then Abs.Unknown
      else (
        match va.va_result with
        | Some d -> Abs.Dim d
        | None -> Abs.Unknown)
    | None ->
      if is_arrow e.exp_type then Abs.Unknown else result_of_keys env.g keys)

(* Evaluate a def's fully-applied result: peel the function layers,
   binding annotated labelled parameters to their declared dimensions
   on the way down. *)
let eval_def env annot_params (d : Scan.def) =
  Hashtbl.reset env.locals;
  let rec strip (e : expression) =
    match e.exp_desc with
    | Texp_function { arg_label; cases; _ } ->
      let pv =
        match arg_label with
        | Asttypes.Labelled l -> (
          match List.assoc_opt l annot_params with
          | Some d -> Abs.Dim d
          | None -> Abs.Unknown)
        | _ -> Abs.Unknown
      in
      List.fold_left
        (fun acc c ->
          bind_pattern env c.c_lhs pv;
          (match c.c_guard with Some g -> ignore (eval env g) | None -> ());
          Abs.join acc (strip c.c_rhs))
        Abs.Poly cases
    | _ -> eval env e
  in
  strip d.Scan.body

(* ---------- orchestration ---------- *)

type units_stats = {
  ifaces_annotated : int;
  vals_annotated : int;
  fields_annotated : int;
  defs_walked : int;
  hatches_used : int;
}

let default_read_mli path =
  if Sys.file_exists path then Some (Allowlist.read_file path) else None

let check_units ?(read_mli = default_read_mli) units =
  let units =
    List.sort (fun a b -> String.compare a.Scan.canon b.Scan.canon) units
  in
  let ctx = { diags = []; hatches_used = 0; report = false } in
  let ifaces_annotated = ref 0
  and vals_annotated = ref 0
  and fields_annotated = ref 0
  and defs_walked = ref 0 in
  let annot_by_key = Hashtbl.create 64
  and field_sfx = Hashtbl.create 64
  and field_by_key = Hashtbl.create 64
  and summaries = Hashtbl.create 256 in
  (* Interface seeding. *)
  List.iter
    (fun (u : Scan.unit_info) ->
      let mli = u.Scan.source ^ "i" in
      match read_mli mli with
      | None -> ()
      | Some text ->
        let iface = parse_iface ~canon:u.Scan.canon ~file:mli text in
        if iface.if_marked then incr ifaces_annotated;
        vals_annotated := !vals_annotated + iface.if_vals;
        fields_annotated := !fields_annotated + iface.if_fields_n;
        ctx.diags <- iface.if_diags @ ctx.diags;
        List.iter
          (fun (key, va) -> Hashtbl.replace annot_by_key key va)
          iface.if_annots;
        List.iter
          (fun (key, d) ->
            Hashtbl.replace field_by_key key d;
            sfx_add field_sfx key)
          iface.if_fields)
    units;
  let defs = Scan.defs_of_units units in
  let dindex = Scan.index_defs defs in
  let g = { dindex; annot_by_key; field_sfx; field_by_key; summaries; ctx } in
  let metas = Hashtbl.create 64 in
  List.iter
    (fun (u : Scan.unit_info) ->
      let meta = meta_of_unit u in
      Hashtbl.replace metas u.Scan.canon (u, meta);
      List.iter
        (fun (ln, msg) -> add_line_diag ctx u.Scan.source ln "units/bad-marker" msg)
        meta.bad_lines)
    units;
  let env_of (u : Scan.unit_info) =
    let _, meta = Hashtbl.find metas u.Scan.canon in
    { g; u; meta; locals = Hashtbl.create 32 }
  in
  (* Annotated results are pinned facts; they participate in constant
     resolution directly. *)
  Hashtbl.iter
    (fun key (va : vannot) ->
      match va.va_result with
      | Some d -> Hashtbl.replace summaries key (Abs.Dim d)
      | None -> ())
    annot_by_key;
  let pinned = Hashtbl.copy summaries in
  (* Constants fixpoint: module-level non-function bindings get their
     dimensions inferred from their bodies (functions do not — a
     result that depends on unannotated parameters would infer
     garbage; calls resolve through interface annotations instead).
     Join-monotone updates over a finite lattice, so this
     terminates; the iteration cap is belt and braces. *)
  let consts =
    List.filter
      (fun (d : Scan.def) ->
        (match d.Scan.body.exp_desc with
        | Texp_function _ -> false
        | _ -> true)
        && not (Hashtbl.mem pinned d.Scan.key))
      defs
  in
  ctx.report <- false;
  let changed = ref true and iters = ref 0 in
  while !changed && !iters < 10 do
    changed := false;
    incr iters;
    List.iter
      (fun (d : Scan.def) ->
        let env = env_of d.Scan.owner in
        let v = eval_def env [] d in
        let old =
          Option.value
            (Hashtbl.find_opt summaries d.Scan.key)
            ~default:Abs.Poly
        in
        let nv = Abs.join old v in
        if not (Abs.equal nv old) then begin
          Hashtbl.replace summaries d.Scan.key nv;
          changed := true
        end)
      consts
  done;
  (* Reporting pass: every def once, with hatch accounting live. *)
  ctx.report <- true;
  List.iter
    (fun (d : Scan.def) ->
      incr defs_walked;
      let env = env_of d.Scan.owner in
      let annot = Hashtbl.find_opt annot_by_key d.Scan.key in
      let params = match annot with Some a -> a.va_params | None -> [] in
      let v = eval_def env params d in
      match annot with
      | Some { va_result = Some dd; _ } -> (
        match v with
        | Abs.Dim di when not (Dim.equal di dd) ->
          report env d.Scan.def_loc "units/dim-mismatch-call"
            "%s is declared %s in its interface but its body evaluates to %s"
            d.Scan.key (Dim.to_string dd) (Dim.to_string di)
        | _ -> ())
      | _ -> ())
    defs;
  (* Anti-rot: a hatch that suppressed nothing is itself a finding. *)
  Hashtbl.iter
    (fun _ ((u : Scan.unit_info), (meta : meta)) ->
      Hashtbl.iter
        (fun _ h ->
          if not h.used then
            add_line_diag ctx u.Scan.source h.hline "units/unused-hatch"
              "this ok-hatch suppresses nothing; remove it (stale hatches \
               hide future regressions)")
        meta.hatches)
    metas;
  let diags = List.sort_uniq Scan.compare_diag ctx.diags in
  ( diags,
    {
      ifaces_annotated = !ifaces_annotated;
      vals_annotated = !vals_annotated;
      fields_annotated = !fields_annotated;
      defs_walked = !defs_walked;
      hatches_used = ctx.hatches_used;
    } )
