(* The allow-file machinery shared by every analyzer driver.  Formerly
   private to Lint and copy-pasted across the rodlint/rodscan/rodproto
   mains; extracted so the parse/normalize/stale/prune semantics are
   defined exactly once. *)

type entry = {
  path_suffix : string;
  rule_prefix : string;
  line : int;
  mutable used : bool;
}

type t = entry list

let empty = []

(* Malformed lines are collected and reported together: an allowlist
   with three typos should cost one run to fix, not three. *)
let of_string ~source text =
  let entries = ref [] in
  let malformed = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun idx line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         with
         | [] -> ()
         | [ path_suffix; rule_prefix ] ->
           entries :=
             { path_suffix; rule_prefix; line = idx + 1; used = false }
             :: !entries
         | _ ->
           malformed :=
             Printf.sprintf
               "%s:%d: malformed allowlist entry (want: <path> <rule> # why)"
               source (idx + 1)
             :: !malformed);
  if !malformed <> [] then failwith (String.concat "\n" (List.rev !malformed));
  List.rev !entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string ~source:path (read_file path)

let load_or_exit ~tool = function
  | None -> empty
  | Some file -> (
    try load file
    with Failure msg ->
      Printf.eprintf "%s: %s\n" tool msg;
      exit 2)

let suffix_matches ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  lx <= ls && String.sub s (ls - lx) lx = suffix

let prefix_matches ~prefix s =
  let ls = String.length s and lx = String.length prefix in
  lx <= ls && String.sub s 0 lx = prefix

(* Paths reach the allowlist from two spellings of the same file:
   [dune build @lint] hands the linter build-relative paths
   ([lib/x.ml], or [_build/default/lib/x.ml] when someone points it at
   the build tree), while a direct [tools/rodlint ./lib] invocation
   produces [./lib/x.ml].  Strip both decorations before matching so an
   entry written one way cannot silently stop matching the other. *)
let normalize_path p =
  let strip prefix s =
    if prefix_matches ~prefix s then
      Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  let rec go s =
    match strip "./" s with
    | Some s -> go s
    | None -> (
      match strip "_build/default/" s with Some s -> go s | None -> s)
  in
  go p

let matches entry ~file ~rule =
  suffix_matches ~suffix:(normalize_path entry.path_suffix) (normalize_path file)
  && prefix_matches ~prefix:entry.rule_prefix rule

let allows t ~file ~rule =
  List.exists
    (fun entry ->
      if matches entry ~file ~rule then begin
        entry.used <- true;
        true
      end
      else false)
    t

let split ~file ~rule t findings =
  List.partition (fun d -> not (allows t ~file:(file d) ~rule:(rule d))) findings

let unused t =
  List.filter_map
    (fun e -> if e.used then None else Some (e.path_suffix, e.rule_prefix))
    t

(* Drop the source lines of unused entries, preserving everything else
   byte-for-byte (comments, blank lines, entry justifications).  Call
   after [split] has marked live entries as used. *)
let prune t text =
  let stale = List.filter_map (fun e -> if e.used then None else Some e.line) t in
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> not (List.mem (i + 1) stale))
  |> String.concat "\n"

let fix_exit ~tool ~allow_file t ~rendered_kept =
  match allow_file with
  | None ->
    Printf.eprintf "%s: --fix requires --allow FILE\n" tool;
    exit 2
  | Some file ->
    (* Pruned allowlist to stdout (so the caller can redirect it over
       the stale file); diagnostics to stderr. *)
    print_string (prune t (read_file file));
    List.iter prerr_endline rendered_kept;
    List.iter
      (fun (path, rule) ->
        Printf.eprintf "pruned stale allowlist entry: %s %s\n" path rule)
      (unused t);
    exit (if rendered_kept <> [] then 1 else 0)

let print_stale t =
  List.iter
    (fun (path, rule) ->
      Printf.printf "stale allowlist entry: %s %s (suppresses nothing)\n" path
        rule)
    (unused t)
