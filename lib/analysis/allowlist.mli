(** Shared allow-file machinery for the four analyzer drivers
    (rodlint, rodscan, rodproto, rodunits).

    One entry per line, [<path-suffix> <rule-prefix> # justification]; a
    finding is suppressed when some entry's path is a suffix of the
    finding's (normalized) path and its rule a prefix of the finding's
    rule.  Entries that suppress nothing are stale — every driver fails
    on them and prunes them under [--fix] — so an allowlist cannot rot.

    The module is deliberately finding-type-agnostic: matching works on
    [(file, rule)] strings, and {!split} is parameterized by projection
    functions, so {!Lint.diag} and any future finding record both fit. *)

type t
(** A loaded allowlist; entries carry a mutable used-bit set by
    {!allows} / {!split}. *)

val empty : t

val of_string : source:string -> string -> t
(** Parse allowlist text: one [<path> <rule> # justification] entry per
    line; blank lines and [#]-leading comment lines ignored.
    @raise Failure listing {e every} malformed line (with [source] and
    line numbers), one per output line, so a broken file costs one run
    to fix. *)

val load : string -> t
(** {!of_string} over a file's contents, [source] = the path. *)

val load_or_exit : tool:string -> string option -> t
(** Driver entry point: [None] is {!empty}; [Some file] is {!load},
    printing the aggregated malformed-line failure to stderr and
    exiting 2 on a broken file. *)

val normalize_path : string -> string
(** Strip leading [./] and [_build/default/] decorations (repeatedly,
    in any order) so the same file matches the same allowlist entry
    under [dune build @lint], a direct [tools/rodlint ./lib] run, and a
    build-tree invocation. *)

val allows : t -> file:string -> rule:string -> bool
(** Does some entry suppress a finding at [(file, rule)]?  Marks the
    first matching entry used. *)

val split : file:('a -> string) -> rule:('a -> string) -> t -> 'a list -> 'a list * 'a list
(** [(kept, suppressed)] over any finding type, given projections. *)

val unused : t -> (string * string) list
(** Entries that suppressed nothing since loading, as
    [(path, rule)] pairs — stale allowlist hygiene. *)

val prune : t -> string -> string
(** [prune t text] returns [text] (the allowlist file's raw contents)
    with the source line of every {e unused} entry removed and
    everything else untouched.  Backs the drivers' [--fix] flag; call
    after {!split} so live entries are marked used. *)

val read_file : string -> string

val fix_exit : tool:string -> allow_file:string option -> t -> rendered_kept:string list -> 'a
(** The drivers' [--fix] mode: requires [allow_file] (exit 2
    otherwise); prints the pruned allowlist to stdout (so the caller
    can redirect it over the stale file), the kept findings and the
    pruned-entry notes to stderr; exits 1 when findings remain, else
    0.  Never returns. *)

val print_stale : t -> unit
(** One ["stale allowlist entry: <path> <rule> (suppresses nothing)"]
    line per unused entry, to stdout — the non-[--fix] report. *)
