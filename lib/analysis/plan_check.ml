module Vec = Linalg.Vec
module Mat = Linalg.Mat

type severity =
  | Error
  | Warning

type diag = {
  severity : severity;
  code : string;
  message : string;
}

type report = {
  diags : diag list;
  axis_bound : float array;
}

let rules =
  [
    ("bad-capacity", "a node capacity is non-finite or non-positive, or the cluster is empty");
    ("dimension-mismatch", "the load matrix width disagrees with the expected variable count");
    ("empty-plan", "the plan has no operators");
    ("nan-coefficient", "a load coefficient is NaN or infinite");
    ("negative-coefficient", "a load coefficient is negative");
    ("dead-operator", "an operator's load row is all zero");
    ("unloaded-variable", "a rate variable carries no load anywhere");
    ("starved-operator", "every input of an operator has statically-zero rate");
    ("infeasible-operator", "an operator cannot sustain unit rate on any node");
    ("resiliency-capped", "a per-axis Theorem-1 bound caps the feasible-set ratio below threshold");
  ]

let sarif_rules =
  Sarif.rules_of_catalogue
    ~help_uri:"DESIGN.md#8-static-analysis-rodanalysis" rules

let errors r = List.filter (fun d -> d.severity = Error) r.diags

let warnings r = List.filter (fun d -> d.severity = Warning) r.diags

let ok r = errors r = []

let finite x = Float.is_finite x

let check_matrix ?(threshold = 0.5) ?expect_vars ?op_name ?var_name ~lo ~caps ()
    =
  let m = Mat.rows lo and d = Mat.cols lo in
  let n = Vec.dim caps in
  let op_name =
    match op_name with Some f -> f | None -> Printf.sprintf "operator %d"
  in
  let var_name =
    match var_name with Some f -> f | None -> Printf.sprintf "variable %d"
  in
  let rev_diags = ref [] in
  let add severity code fmt =
    Printf.ksprintf
      (fun message -> rev_diags := { severity; code; message } :: !rev_diags)
      fmt
  in
  (* Well-formedness. *)
  if n = 0 then add Error "bad-capacity" "the cluster has no nodes";
  for i = 0 to n - 1 do
    let c = caps.(i) in
    if not (finite c) then
      add Error "bad-capacity" "node %d has a non-finite capacity" i
    else if c <= 0. then
      add Error "bad-capacity" "node %d has non-positive capacity %g" i c
  done;
  (match expect_vars with
  | Some expected when expected <> d ->
    add Error "dimension-mismatch"
      "the load matrix has %d rate variables but the model declares %d" d
      expected
  | Some _ | None -> ());
  if m = 0 then add Warning "empty-plan" "the plan has no operators";
  let values_ok = ref true in
  for j = 0 to m - 1 do
    for k = 0 to d - 1 do
      let v = Mat.get lo j k in
      if not (finite v) then begin
        values_ok := false;
        add Error "nan-coefficient" "%s has a non-finite load coefficient on %s"
          (op_name j) (var_name k)
      end
      else if v < 0. then begin
        values_ok := false;
        add Error "negative-coefficient"
          "%s has negative load coefficient %g on %s (load cannot shrink \
           when rates grow)"
          (op_name j) v (var_name k)
      end
    done
  done;
  (* Structural checks: dead rows, unloaded columns. *)
  if !values_ok then begin
    for j = 0 to m - 1 do
      let row = Mat.row lo j in
      if m > 0 && Vec.for_all (fun v -> v <= 0.) row then
        add Warning "dead-operator"
          "%s carries no load on any variable: it is dead weight in the model"
          (op_name j)
    done;
    for k = 0 to d - 1 do
      if m > 0 && Vec.for_all (fun v -> v <= 0.) (Mat.col lo k) then
        add Warning "unloaded-variable"
          "%s carries no load on any operator: the feasible set is unbounded \
           along it"
          (var_name k)
    done
  end;
  (* Feasibility and the per-axis Theorem-1 bound, only meaningful on
     clean values and a non-empty positive-capacity cluster. *)
  let caps_ok =
    n > 0 && Vec.for_all (fun c -> finite c && c > 0.) caps
  in
  let axis_bound =
    if not (!values_ok && caps_ok) then [||]
    else begin
      let cap_max = Vec.max_elt caps in
      let c_total = Vec.sum caps in
      let l = Mat.col_sums lo in
      Array.init d (fun k ->
          (* Extent of any assignment's feasible set along axis k: every
             operator loading the axis must fit alone on the largest
             node.  The binding operator is the heaviest one. *)
          let heaviest = ref (-1) in
          for j = 0 to m - 1 do
            let v = Mat.get lo j k in
            if v > 0. && (!heaviest < 0 || v > Mat.get lo !heaviest k) then
              heaviest := j
          done;
          if !heaviest < 0 then 1.
          else begin
            let lo_max = Mat.get lo !heaviest k in
            if lo_max > cap_max then
              add Error "infeasible-operator"
                "%s needs %g capacity per unit rate of %s but the largest \
                 node offers %g: no placement sustains even unit rate"
                (op_name !heaviest) lo_max (var_name k) cap_max;
            let extent = cap_max /. lo_max in
            let ideal_extent = c_total /. l.(k) in
            let frac = Float.min 1. (extent /. ideal_extent) in
            let bound = 1. -. ((1. -. frac) ** float_of_int d) in
            if bound < threshold then
              add Warning "resiliency-capped"
                "%s caps the feasible-set ratio along %s at %.3f (< %.2f): \
                 it reaches only %.3g of the ideal extent %.3g"
                (op_name !heaviest) (var_name k) bound threshold extent
                ideal_extent;
            bound
          end)
    end
  in
  { diags = List.rev !rev_diags; axis_bound }

let model_var_name model k =
  let origins = model.Query.Load_model.var_origins in
  if k < 0 || k >= Array.length origins then Printf.sprintf "variable %d" k
  else
    match origins.(k) with
    | Query.Load_model.System s -> Printf.sprintf "input rate r%d" s
    | Query.Load_model.Join_pairs j ->
      Printf.sprintf "pair rate of join op %d" j
    | Query.Load_model.Cut_output j ->
      Printf.sprintf "output rate of op %d" j

let check_model ?threshold model ~caps =
  let graph = model.Query.Load_model.graph in
  let lo = Query.Load_model.load_coefficients model in
  let names = Query.Graph.restrict_names graph in
  let op_name j =
    if j >= 0 && j < Array.length names then
      Printf.sprintf "operator %d (%s)" j names.(j)
    else Printf.sprintf "operator %d" j
  in
  let report =
    check_matrix ?threshold
      ~expect_vars:(Array.length model.Query.Load_model.var_origins)
      ~op_name ~var_name:(model_var_name model) ~lo ~caps ()
  in
  (* Graph-aware structural check: an operator is starved when every one
     of its inputs is an operator stream with statically-zero rate (the
     linearized out-rate row of the producer is all zero).  System
     inputs can always carry tuples, so they never starve a consumer. *)
  let out_rate = model.Query.Load_model.out_rate in
  let stream_is_dead = function
    | Query.Graph.Sys_input _ -> false
    | Query.Graph.Op_output u -> Vec.for_all (fun v -> v <= 0.) (Mat.row out_rate u)
  in
  let starved = ref [] in
  for j = Query.Graph.n_ops graph - 1 downto 0 do
    let sources = Query.Graph.sources graph j in
    if sources <> [] && List.for_all stream_is_dead sources then
      starved :=
        {
          severity = Warning;
          code = "starved-operator";
          message =
            Printf.sprintf
              "%s only consumes streams with statically-zero rate: it will \
               never receive a tuple"
              (op_name j);
        }
        :: !starved
  done;
  { report with diags = report.diags @ !starved }

let check_graph ?threshold graph ~caps =
  check_model ?threshold (Query.Load_model.derive graph) ~caps

let assert_ok ?(what = "plan") report =
  match errors report with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "%s rejected by static analysis: %s" what
         (String.concat "; " (List.map (fun d -> d.message) errs)))

let pp fmt report =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) report.diags) in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun d ->
      Format.fprintf fmt "%s: [%s] %s@,"
        (match d.severity with Error -> "error" | Warning -> "warning")
        d.code d.message)
    report.diags;
  if Array.length report.axis_bound > 0 then begin
    Format.fprintf fmt "axis resiliency bounds:";
    Array.iter (fun b -> Format.fprintf fmt " %.3f" b) report.axis_bound;
    Format.fprintf fmt "@,"
  end;
  Format.fprintf fmt "static analysis: %s (%d errors, %d warnings)@]"
    (if ok report then "ok" else "REJECTED")
    (count Error) (count Warning)

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let to_json report =
  let buffer = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "{\n  \"schema\": \"rod-plan-check/1\",\n";
  out "  \"ok\": %b,\n" (ok report);
  out "  \"diagnostics\": [\n";
  List.iteri
    (fun idx d ->
      out "    { \"severity\": %S, \"code\": %S, \"message\": \"%s\" }%s\n"
        (match d.severity with Error -> "error" | Warning -> "warning")
        d.code (json_escape d.message)
        (if idx = List.length report.diags - 1 then "" else ","))
    report.diags;
  out "  ],\n";
  out "  \"axis_bound\": [%s]\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun b -> if Float.is_nan b then "null" else Printf.sprintf "%.6g" b)
             report.axis_bound)));
  out "}\n";
  Buffer.contents buffer
