(** [rodunits]: dimensional analysis of the load-model arithmetic, the
    fourth typedtree-level analyzer (after {!Lint}, {!Scan} and
    {!Proto}).  The whole ROD reproduction is float arithmetic over
    physically distinct quantities — load coefficients (cpu-sec per
    tuple), stream rates (tuples per simulated second), node
    capacities, dimensionless utilizations / volume ratios / margins,
    simulated seconds, state-size bytes — and nothing in the type
    system stops a margin from being added to a latency.  This pass
    checks exactly that.

    {b Dimensions} form a free abelian group over five base units:
    [tuple], [cpu-sec], [sim-sec], [byte], [node-cap]; see {!Dim}.
    Three aliases name the recurring composites: [rate] (tuple per
    sim-sec), [load-coeff] (cpu-sec per tuple) and [ratio] / [1] (the
    identity — utilizations, margins, shares, scale factors).

    {b Seeding}: dimension facts are declared in {e interfaces} with a
    marker comment — the tool's name, a colon, then a spec — trailing
    on the first or last line of the [val] or record-field declaration
    it annotates, or standalone on the line directly after (the shape
    long signatures force).
    The spec grammar (the marker prefix is omitted here so this
    interface never matches its own analyzer):

    {v
      spec  ::= (label ":" dim " -> ")* (dim | "_")
      dim   ::= factor (("*" | "/") factor)*
      factor::= name ("^" int)?
      name  ::= tuple | cpu-sec | sim-sec | byte | node-cap
              | rate | load-coeff | ratio | 1
    v}

    The final [dim] gives the fully-applied result's dimension ([_]
    when the result carries none); each [label:dim] binds a labelled
    parameter.  Record-field markers are a bare [dim].  In [.ml] files
    only the escape hatch is legal: the marker followed by [ok <why>]
    on (or directly above) the offending line suppresses one site.

    {b Propagation} is interprocedural through {!Scan}'s def-index:
    mul/div compose dimensions, add/sub/min/max/comparisons require
    equal dimensions, literals are polymorphic, and module-level
    constants get their dimensions inferred from their bodies.
    Everything unknown stays silent — like {!Proto}'s Top state, the
    analysis only asserts where both sides are concrete.

    {b Rules}: [units/mixed-add], [units/mixed-compare],
    [units/dim-mismatch-call], [units/unannotated-boundary] (an
    exported float in an annotated interface with no marker),
    [units/bad-marker], [units/unused-hatch].  Findings reuse
    {!Lint.diag} and the {!Allowlist} machinery, so [rodunits.allow]
    works exactly like its three siblings. *)

val units_marker : string
(** The marker prefix (tool name + colon), assembled at runtime so this
    analyzer's own sources never match it. *)

val expect_marker : string
(** Declares a fixture's expected rule ids (used by
    [tools/rodunits --fixtures]). *)

val expect_of_unit : Scan.unit_info -> string list
(** The rule ids a fixture expects, from its {!expect_marker} comments
    (comma- or space-separated, all occurrences concatenated). *)

val passes : string list
(** Names of the analysis passes, for [--stats]. *)

val rules : (string * string) list
(** [(rule id, short description)] catalogue, for SARIF and docs. *)

val sarif_rules : Sarif.rule list
(** [rules] lifted to SARIF rule metadata (DESIGN.md §15 help URI). *)

(** The dimension algebra: a free abelian group over the five base
    units, represented as integer exponent vectors.  [mul] adds
    exponents, [inv] negates, [one] is the identity (dimensionless).
    Group laws are QCheck-pinned in [test/test_units.ml]. *)
module Dim : sig
  type t

  val one : t
  val base_names : string list
  val base : string -> t option
  (** [base "tuple"], [base "sim-sec"], ... — [None] for unknown names
      (aliases are handled by {!parse}, not here). *)

  val mul : t -> t -> t
  val inv : t -> t
  val div : t -> t -> t
  val pow : t -> int -> t
  val equal : t -> t -> bool
  val to_string : t -> string
  (** Canonical rendering: base factors in declaration order with [^k]
      exponents, ["1"] for the identity. *)

  val parse : string -> (t, string) result
  (** Parse a [dim] expression per the grammar above, including the
      [rate] / [load-coeff] / [ratio] / [1] aliases. *)
end

(** The abstract-value lattice the propagation runs over:
    [Poly ⊑ Unknown ⊑ Dim d ⊑ Conflict], with distinct dimensions
    incomparable.  [Poly] is a polymorphic literal (adapts to any
    dimension: the identity of {!mul}, absorbed by anything under
    {!join}); [Unknown] is an unannotated quantity (silent in checks,
    absorbing under {!mul} — multiplying by an unknown yields an
    unknown); [Conflict] is the absorbing top.  [join] is the
    branch-merge {e and} the add/min/max transfer function: two
    concrete unequal dimensions join to [Conflict], which is precisely
    when mixed-add/mixed-compare fire.  Lattice and monoid laws are
    QCheck-pinned. *)
module Abs : sig
  type t = Poly | Unknown | Dim of Dim.t | Conflict

  val join : t -> t -> t
  val equal : t -> t -> bool
  val leq : t -> t -> bool
  val mul : t -> t -> t
  val inv : t -> t
  val div : t -> t -> t
  val to_string : t -> string
end

type units_stats = {
  ifaces_annotated : int;  (** Interfaces carrying at least one marker. *)
  vals_annotated : int;
  fields_annotated : int;
  defs_walked : int;
  hatches_used : int;
}

val check_units :
  ?read_mli:(string -> string option) ->
  Scan.unit_info list ->
  Lint.diag list * units_stats
(** Run the analysis over the units {e together} (propagation is
    interprocedural across units).  Each unit's interface is read from
    [u.source ^ "i"] via [read_mli] (defaults to the filesystem;
    in-memory tests inject a closure).  Interface-side findings
    (boundary, bad markers) carry the [.mli] path.  Diagnostics are
    sorted by [(file, line, col, rule)] and deduplicated; allowlist
    filtering is the caller's job via {!Lint.split_allowed}. *)
