module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Problem = Rod.Problem
module Metrics = Dsim.Sim_metrics

let name = "EXPCHAOS survival curves under chaos injection"

(* Every placer faces the SAME chaos: the schedule generator is seeded
   per (crash count, draw) and crash nodes are picked uniformly among
   the live ones — a draw that does not depend on the assignment — so
   crash times and victims are identical across placers; only the
   recoveries (and hence the surviving volume) differ. *)
let schedule_for ~seed ~k ~problem ~assignment ~horizon =
  let rng = Random.State.make [| 0xC4A0; seed; k |] in
  let spec =
    { Chaos.Inject.default with crashes = k; crash_window = (0.2, 0.7) }
  in
  Chaos.Inject.schedule ~rng ~spec ~problem ~assignment ~horizon

let final_state ~n ~assignment schedule =
  let dead = Array.make n false in
  let current = ref assignment in
  List.iter
    (fun (_, node, recovery) ->
      dead.(node) <- true;
      current := recovery)
    (Dsim.Fault.crashes schedule);
  (dead, !current)

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "Survival curves: place once per algorithm, then inject k node\n\
     crashes (identical victims and times for every placer; orphans are\n\
     re-placed by the incremental ROD greedy without moving survivors)\n\
     and measure what remains — the feasible volume against the FULL\n\
     cluster's ideal simplex (so columns are directly comparable and\n\
     bounded by ((n-k)/n)^d), and the p99 end-to-end latency of the\n\
     simulated run under the same schedule.";
  let d = 3 and n_nodes = 6 and ops_per_tree = 10 in
  let samples = if quick then 2048 else 8192 in
  let draws = if quick then 2 else 4 in
  let kmax = 3 in
  let horizon = if quick then 10. else 20. in
  let rate = 120. in
  let graph =
    Query.Randgraph.generate_trees
      ~rng:(Random.State.make [| 77; 13 |])
      ~n_inputs:d ~ops_per_tree
  in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let placers = [ Placers.Rod_placer; Placers.Llf; Placers.Random_placer ] in
  let rng_place = Random.State.make [| 77; 29 |] in
  let assignments =
    List.map
      (fun alg -> (alg, Placers.place ~rng:rng_place ~graph ~problem alg))
      placers
  in
  (* One arrival set per draw, shared by every placer; engine capacities
     calibrated so ROD's predicted hottest node runs at 60%. *)
  let arrivals_of_draw =
    Array.init draws (fun i ->
        let rng = Random.State.make [| 77; 41; i |] in
        let trace =
          Workload.Generators.constant
            ~n:(int_of_float horizon)
            ~dt:1. ~rate
        in
        Array.init d (fun _ ->
            Workload.Generators.poisson_arrivals ~rng ~trace))
  in
  let caps =
    let model = Query.Load_model.derive graph in
    let vars =
      Query.Load_model.eval_vars model ~sys_rates:(Vec.create d rate)
    in
    let rod_assignment = List.assoc Placers.Rod_placer assignments in
    let ln = Rod.Plan.node_loads (Rod.Plan.make problem rod_assignment) in
    let predicted =
      Vec.max_elt (Vec.init n_nodes (fun i -> Vec.dot (Mat.row ln i) vars))
    in
    Vec.create n_nodes (Float.max 1e-9 (predicted /. 0.6))
  in
  let until = horizon +. 4. in
  let survival = Hashtbl.create 16 in
  let latency = Hashtbl.create 16 in
  List.iter
    (fun (alg, assignment) ->
      for k = 0 to kmax do
        let vol_total = ref 0. and p99_total = ref 0. in
        for draw = 0 to draws - 1 do
          let schedule =
            if k = 0 then Dsim.Fault.none
            else
              schedule_for ~seed:draw ~k ~problem ~assignment ~horizon
          in
          let dead, final = final_state ~n:n_nodes ~assignment schedule in
          let est =
            Chaos.Oracle.degraded_volume ~samples ~problem ~assignment:final
              ~dead ()
          in
          vol_total := !vol_total +. est.Feasible.Volume.ratio;
          let metrics =
            Dsim.Engine.run ~graph ~assignment ~caps
              ~arrivals:arrivals_of_draw.(draw)
              ~config:{ Dsim.Engine.default_config with faults = schedule }
              ~until ()
          in
          p99_total :=
            !p99_total +. Metrics.Samples.percentile metrics.Metrics.latencies 99.
        done;
        let f = float_of_int draws in
        Hashtbl.replace survival (alg, k) (!vol_total /. f);
        Hashtbl.replace latency (alg, k) (!p99_total /. f)
      done)
    assignments;
  let headers =
    "placement" :: List.init (kmax + 1) (fun k -> Printf.sprintf "k=%d" k)
  in
  let table_of tbl =
    List.map
      (fun (alg, _) ->
        Placers.name alg
        :: List.init (kmax + 1) (fun k ->
               Report.fcell (Hashtbl.find tbl (alg, k))))
      assignments
  in
  Report.note fmt "Feasible volume vs the full ideal (higher is better):";
  Report.table fmt ~headers ~rows:(table_of survival);
  Report.note fmt "p99 end-to-end latency, seconds (lower is better):";
  Report.table fmt ~headers ~rows:(table_of latency);
  let bound k =
    (float_of_int (n_nodes - k) /. float_of_int n_nodes) ** float_of_int d
  in
  Report.note fmt
    (Printf.sprintf "capacity ceilings ((n-k)/n)^d: %s"
       (String.concat "  "
          (List.init (kmax + 1) (fun k ->
               Printf.sprintf "k=%d: %.3f" k (bound k)))));
  (* Shape check: the curve must not rise with k, and ROD must dominate
     at least one baseline at every k > 0 (the acceptance criterion the
     chaos tests key on). *)
  let rod k = Hashtbl.find survival (Placers.Rod_placer, k) in
  let monotone =
    List.for_all (fun k -> rod k <= rod (k - 1) +. 1e-9)
      (List.init kmax (fun k -> k + 1))
  in
  let dominates alg =
    List.for_all
      (fun k -> rod k >= Hashtbl.find survival (alg, k) -. 1e-9)
      (List.init kmax (fun k -> k + 1))
  in
  Report.note fmt
    (Printf.sprintf
       "shape check: ROD survival nonincreasing in k: %s; ROD >= LLF at \
        every k>0: %s; ROD >= Random at every k>0: %s"
       (if monotone then "yes" else "NO")
       (if dominates Placers.Llf then "yes" else "no")
       (if dominates Placers.Random_placer then "yes" else "no"))
