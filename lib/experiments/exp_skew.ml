module Vec = Linalg.Vec
module Problem = Rod.Problem
module Generators = Workload.Generators

let name = "EXPSKEW skew-aware keyed parallelism at 10^6 keys"

(* The fixture: a five-operator graph whose middle operator ("hotAgg",
   a grouped aggregate in SPE terms) dominates the total cost.  Unsplit,
   the whole operator must sit on one node and caps that node; split
   into replicas, ROD can spread the load — but only as evenly as the
   partitioner's key-mass shares allow, which is what the experiment
   measures under Zipf skew. *)
let fixture () =
  let open Query in
  Graph.create ~n_inputs:2
    ~ops:
      [
        (Op.filter ~name:"preA" ~cost:2e-5 ~sel:0.9 (), [ Graph.Sys_input 0 ]);
        (Op.delay ~name:"hotAgg" ~cost:4e-4 ~sel:0.2 (), [ Graph.Op_output 0 ]);
        (Op.filter ~name:"post" ~cost:3e-5 ~sel:0.8 (), [ Graph.Op_output 1 ]);
        (Op.map ~name:"preB" ~cost:5e-5 (), [ Graph.Sys_input 1 ]);
        (Op.filter ~name:"slim" ~cost:2e-5 ~sel:0.5 (), [ Graph.Op_output 3 ]);
      ]
    ()

let hot_op = 1

(* Six nodes for four replicas: each replica can sit on its own node,
   so the binding node load tracks the partitioner's max replica share
   instead of bin-packing artifacts (on a barely-sufficient cluster,
   two well-balanced replicas forced to share a node can out-weigh one
   skewed replica sitting alone, which would invert the comparison). *)
let n_nodes = 6
let default_replicas = 4
let alpha = 1.2

type scheme_result = {
  label : string;
  max_share : float;  (** Largest replica key-mass share (1 unsplit). *)
  estimate : Feasible.Volume.estimate;
}

type analysis = {
  quick : bool;
  n_keys : int;
  draws : int;
  replicas : int;
  distinct_exact : int;
  distinct_hll : float;
  hot_count : int;
  schemes : scheme_result list;  (** unsplit, uniform, pkg, hybrid. *)
}

let exact_distinct ~n_keys keys =
  let seen = Bytes.make n_keys '\000' in
  let count = ref 0 in
  Array.iter
    (fun k ->
      if Bytes.get seen k = '\000' then begin
        Bytes.set seen k '\001';
        incr count
      end)
    keys;
  !count

let scheme_of ?pool ~samples ~caps label part =
  let shares = Keyed.Partitioner.shares part in
  let split =
    Keyed.Split.split (fixture ()) ~op:hot_op ~shares ~route_cost:1e-6
      ~merge_cost:1e-6
  in
  let problem = Problem.of_graph split.Keyed.Split.graph ~caps in
  let plan = Rod.Rod_algorithm.plan problem in
  let estimate =
    Feasible.Volume.ratio_qmc ?pool ~ln:(Rod.Plan.node_loads plan) ~caps
      ~samples ()
  in
  { label; max_share = Keyed.Partitioner.max_share part; estimate }

let analyze ?(quick = false) ?pool () =
  let n_keys = if quick then 100_000 else 1_000_000 in
  let draws = if quick then 200_000 else 1_000_000 in
  let samples = if quick then 4096 else 16384 in
  let replicas = default_replicas in
  let rng = Random.State.make [| 0x5EED; 42 |] in
  let keys = Generators.zipf_keys ~rng ~alpha ~n_keys ~n:draws in
  let distinct_exact = exact_distinct ~n_keys keys in
  let profile = Keyed.Estimator.profile ~min_share:0.005 keys in
  let hot_count = Keyed.Estimator.choose_hot_count ~replicas profile in
  let seed = 0x5EED in
  let caps = Problem.homogeneous_caps ~n:n_nodes ~cap:1. in
  let warmed part =
    Keyed.Partitioner.warm part keys;
    part
  in
  let unsplit =
    let problem = Problem.of_graph (fixture ()) ~caps in
    let plan = Rod.Rod_algorithm.plan problem in
    let estimate =
      Feasible.Volume.ratio_qmc ?pool ~ln:(Rod.Plan.node_loads plan) ~caps
        ~samples ()
    in
    { label = "unsplit"; max_share = 1.; estimate }
  in
  let schemes =
    [
      unsplit;
      scheme_of ?pool ~samples ~caps "uniform"
        (warmed (Keyed.Partitioner.uniform ~replicas ~seed ()));
      scheme_of ?pool ~samples ~caps "pkg"
        (warmed (Keyed.Partitioner.pkg ~replicas ~seed ()));
      scheme_of ?pool ~samples ~caps "hybrid"
        (warmed (Keyed.Estimator.hybrid_of_profile ~replicas ~seed profile));
    ]
  in
  {
    quick;
    n_keys;
    draws;
    replicas;
    distinct_exact;
    distinct_hll = profile.Keyed.Estimator.distinct;
    hot_count;
    schemes;
  }

let find_scheme a label =
  List.find (fun s -> s.label = label) a.schemes

let ratio_of a label = (find_scheme a label).estimate.Feasible.Volume.ratio

let hybrid_beats a =
  let h = ratio_of a "hybrid" in
  (h > ratio_of a "unsplit", h > ratio_of a "uniform")

let summary_json a =
  let buf = Buffer.create 1024 in
  let beats_unsplit, beats_uniform = hybrid_beats a in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"experiment\": \"expskew\",\n";
  Printf.bprintf buf "  \"quick\": %b,\n" a.quick;
  Printf.bprintf buf "  \"alpha\": %.1f,\n" alpha;
  Printf.bprintf buf "  \"n_keys\": %d,\n" a.n_keys;
  Printf.bprintf buf "  \"draws\": %d,\n" a.draws;
  Printf.bprintf buf "  \"replicas\": %d,\n" a.replicas;
  Printf.bprintf buf "  \"distinct_exact\": %d,\n" a.distinct_exact;
  Printf.bprintf buf "  \"distinct_hll\": %.6f,\n" a.distinct_hll;
  Printf.bprintf buf "  \"hot_count\": %d,\n" a.hot_count;
  Buffer.add_string buf "  \"schemes\": [\n";
  List.iteri
    (fun i s ->
      Printf.bprintf buf
        "    { \"label\": \"%s\", \"max_share\": %.9f, \"ratio\": %.9f, \
         \"std_error\": %.9f }%s\n"
        s.label s.max_share s.estimate.Feasible.Volume.ratio
        s.estimate.Feasible.Volume.std_error
        (if i = List.length a.schemes - 1 then "" else ","))
    a.schemes;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"hybrid_beats_unsplit\": %b,\n" beats_unsplit;
  Printf.bprintf buf "  \"hybrid_beats_uniform\": %b\n" beats_uniform;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "A Zipf(1.2) key stream concentrates a fifth of the load on the\n\
     single hottest key.  The hot aggregate is split into replicas under\n\
     three partitioners; each split graph is an ordinary placement\n\
     problem, so the feasible-set ratio of its ROD plan measures how\n\
     much resiliency the partitioner's balance buys.  The hybrid scheme\n\
     isolates sketch-identified heavy hitters on dedicated replicas and\n\
     hashes the long tail over the rest.";
  let a = analyze ~quick () in
  let err = abs_float (a.distinct_hll -. float_of_int a.distinct_exact) in
  Report.note fmt
    (Printf.sprintf
       "%d draws over %d keys: %d distinct (exact), %.0f estimated by\n\
        HyperLogLog (%.2f%% error); hybrid isolates %d hot key(s) across\n\
        %d replicas."
       a.draws a.n_keys a.distinct_exact a.distinct_hll
       (100. *. err /. float_of_int a.distinct_exact)
       a.hot_count a.replicas);
  Report.table fmt
    ~headers:[ "scheme"; "max replica share"; "feasible ratio"; "std err" ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.label;
             Report.fcell s.max_share;
             Report.fcell s.estimate.Feasible.Volume.ratio;
             Report.fcell s.estimate.Feasible.Volume.std_error;
           ])
         a.schemes);
  let beats_unsplit, beats_uniform = hybrid_beats a in
  Report.note fmt
    (Printf.sprintf
       "hybrid ratio %s the unsplit plan and %s uniform hashing at equal\n\
        replica count.  Sticky PKG balances best but pays one routing-table\n\
        entry per distinct key (%d here); hybrid stores only the hot list\n\
        (%d key(s)) and the hash seed."
       (if beats_unsplit then "beats" else "does NOT beat")
       (if beats_uniform then "beats" else "does NOT beat")
       a.distinct_exact a.hot_count)
