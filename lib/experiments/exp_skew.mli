(** EXPSKEW: skew-aware keyed parallelism.  A Zipf(1.2) key stream at
    [10^6] keys is profiled with the [rod.keyed] sketches; the fixture's
    hot operator is split under uniform, sticky-PKG, and hybrid hot-key
    partitioners; and each split graph's ROD plan is scored by its
    QMC feasible-set ratio against the unsplit plan.  The hybrid split
    must strictly beat both the unsplit plan and uniform hashing. *)

val name : string

type scheme_result = {
  label : string;
  max_share : float; (* rodunits: 1 *)
  estimate : Feasible.Volume.estimate;
}

type analysis = {
  quick : bool;
  n_keys : int;
  draws : int;
  replicas : int;
  distinct_exact : int;
  distinct_hll : float; (* rodunits: tuple *)
  hot_count : int;
  schemes : scheme_result list;
}

val analyze : ?quick:bool -> ?pool:Parallel.Pool.t -> unit -> analysis
(** Deterministic (fixed seeds); the QMC estimates are bit-identical
    for every [pool] size. *)

val ratio_of : analysis -> string -> float
(* rodunits: 1 *)
(** Feasible ratio of a scheme by label ("unsplit", "uniform", "pkg",
    "hybrid").  @raise Not_found on unknown labels. *)

val hybrid_beats : analysis -> bool * bool
(** Whether the hybrid ratio strictly exceeds (unsplit, uniform). *)

val summary_json : analysis -> string
(** Stable JSON rendering (golden-tested byte-for-byte). *)

val run : ?quick:bool -> Format.formatter -> unit
