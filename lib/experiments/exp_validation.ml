module Vec = Linalg.Vec
module Graph = Query.Graph
module Sop = Spe.Sop
module Tuple = Spe.Tuple
module Value = Spe.Value

let name = "EXPSPE simulator vs semantic engine"

(* A linear pipeline (filters + windowed aggregates + merge): the load
   of every operator is per-tuple, so the cost abstraction should track
   the real engine tightly. *)
let linear_network () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        ( Sop.aggregate ~name:"volA" ~window:1. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes") ],
          [ Graph.Op_output 0 ] );
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        ( Sop.aggregate ~name:"volB" ~window:1. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes") ],
          [ Graph.Op_output 2 ] );
        ( Sop.union ~name:"report" ~arity:2 (),
          [ Graph.Op_output 1; Graph.Op_output 3 ] );
      ]
    ()

(* The same pipeline with a cross-feed join: windows emit synchronized
   bursts at boundary instants, and a quadratic operator downstream
   amplifies that correlation — the stress case for the independence
   assumptions of the cost abstraction. *)
let join_network () =
  Spe.Network.create ~n_inputs:2
    ~ops:
      [
        ( Sop.filter ~name:"cleanA" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 0 ] );
        ( Sop.aggregate ~name:"volA" ~window:1. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes") ],
          [ Graph.Op_output 0 ] );
        ( Sop.filter ~name:"cleanB" (fun t ->
              Value.to_string (Tuple.find t "proto") <> "icmp"),
          [ Graph.Sys_input 1 ] );
        ( Sop.aggregate ~name:"volB" ~window:1. ~group_by:"src"
            [ ("bytes", Sop.Sum "bytes") ],
          [ Graph.Op_output 2 ] );
        ( Sop.equi_join ~name:"correlate" ~window:2. ~left_key:"group"
            ~right_key:"group" (),
          [ Graph.Op_output 1; Graph.Op_output 3 ] );
      ]
    ()

type comparison = {
  label : string;
  sim_util : float array;
  engine_util : float array;
  sim_outputs : int;
  engine_outputs : int;
  gap : float;
}

let compare_network ~horizon ~rng ~label ~profile_rate ~test_rate network =
  let sample_trace = Workload.Trace.create ~dt:1. (Array.make 10 profile_rate) in
  let sample_inputs =
    [|
      Spe.Datagen.packets ~rng ~trace:sample_trace ~hosts:12 ();
      Spe.Datagen.packets ~rng ~trace:sample_trace ~hosts:12 ();
    |]
  in
  let profile = Spe.Profiler.profile network ~inputs:sample_inputs in
  let graph = profile.Spe.Profiler.graph in
  let problem =
    Rod.Problem.of_graph graph ~caps:(Rod.Problem.homogeneous_caps ~n:2 ~cap:1.)
  in
  let assignment = Rod.Rod_algorithm.place problem in
  let model = Query.Load_model.derive graph in
  (* Scale capacities so the predicted hottest node sits at 60% at the
     profiling rate (measured nanosecond costs are tiny otherwise). *)
  let predicted =
    let vars =
      Query.Load_model.eval_vars model
        ~sys_rates:(Vec.of_list [ profile_rate; profile_rate ])
    in
    let ln = Rod.Plan.node_loads (Rod.Plan.make problem assignment) in
    Vec.max_elt (Vec.init 2 (fun i -> Vec.dot (Linalg.Mat.row ln i) vars))
  in
  let caps = Vec.create 2 (predicted /. 0.6) in
  let test_trace = Workload.Trace.create ~dt:horizon [| test_rate |] in
  let test_inputs =
    [|
      Spe.Datagen.packets ~rng ~trace:test_trace ~hosts:12 ();
      Spe.Datagen.packets ~rng ~trace:test_trace ~hosts:12 ();
    |]
  in
  let semantic =
    Spe.Dist_executor.run ~network ~assignment ~caps
      ~cost:(Spe.Dist_executor.cost_model_of_graph graph)
      ~inputs:test_inputs
      ~config:{ Spe.Dist_executor.default_config with warmup = 1. }
      ~until:horizon ()
  in
  let arrivals = Array.map (List.map Tuple.ts) test_inputs in
  let abstract =
    Dsim.Engine.run ~graph ~assignment ~caps ~arrivals
      ~config:{ Dsim.Engine.default_config with warmup = 1. }
      ~until:horizon ()
  in
  let au = abstract.Dsim.Sim_metrics.utilization in
  let su = semantic.Spe.Dist_executor.utilization in
  {
    label;
    sim_util = au;
    engine_util = su;
    sim_outputs = abstract.Dsim.Sim_metrics.outputs;
    engine_outputs = List.length semantic.Spe.Dist_executor.outputs;
    gap =
      100.
      *. Float.max
           (abs_float (au.(0) -. su.(0)))
           (abs_float (au.(1) -. su.(1)));
  }

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "The same placed network under identical arrivals, executed by the\n\
     cost-abstraction simulator (Bernoulli selectivities) and by the\n\
     semantic engine (real tuples, profiled costs) — the paper validated\n\
     its simulator against Borealis the same way.  Linear pipelines\n\
     track tightly; two failure modes are quantified below: a windowed\n\
     aggregate's selectivity saturates (so it does not extrapolate to\n\
     other rates), and synchronized window emissions feeding a join\n\
     violate the model's independence assumption.";
  let horizon = if quick then 20. else 60. in
  let rng = Random.State.make [| 606 |] in
  let rows = ref [] in
  let add c =
    rows :=
      [
        c.label;
        Printf.sprintf "%s / %s" (Report.pct c.sim_util.(0))
          (Report.pct c.sim_util.(1));
        Printf.sprintf "%s / %s" (Report.pct c.engine_util.(0))
          (Report.pct c.engine_util.(1));
        string_of_int c.sim_outputs;
        string_of_int c.engine_outputs;
        Printf.sprintf "%.1f pts" c.gap;
      ]
      :: !rows
  in
  add
    (compare_network ~horizon ~rng ~label:"linear @ profiled rate"
       ~profile_rate:400. ~test_rate:400. (linear_network ()));
  add
    (compare_network ~horizon ~rng ~label:"linear, extrapolated 4x down"
       ~profile_rate:400. ~test_rate:100. (linear_network ()));
  add
    (compare_network ~horizon ~rng ~label:"with join @ profiled rate"
       ~profile_rate:400. ~test_rate:400. (join_network ()));
  Report.table fmt
    ~headers:
      [ "scenario"; "sim util n0/n1"; "engine util n0/n1"; "sim outputs";
        "engine outputs"; "max gap" ]
    ~rows:(List.rev !rows);
  Report.note fmt
    "Linear pipelines: utilizations agree to fractions of a point even\n\
     when extrapolated — per-tuple costs are exactly what the model\n\
     assumes.  The saturating selectivity of windowed aggregates shows\n\
     in the OUTPUT column when extrapolating (the model predicts 4x\n\
     fewer outputs; the engine still emits one per group per window) —\n\
     the non-constant-selectivity case Section 6.2's cut variables\n\
     model.  The join row adds burst-correlation error: window\n\
     boundaries emit all groups at one instant, so the join examines\n\
     more pairs (and emits more matches) than the w*r_l*r_r\n\
     independence estimate."
