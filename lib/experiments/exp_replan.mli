(** EXPREPLAN: a slow rate drift makes the static ROD placement
    infeasible; the [rod.dynamic] margin controller replans under a
    move budget and migrates live, recovering a positive feasible-set
    margin at the drifted rate point. *)

val name : string
val run : ?quick:bool -> Format.formatter -> unit
