type t = {
  id : string;
  name : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

let all =
  [
    { id = "fig2"; name = Fig2_traces.name; run = Fig2_traces.run };
    { id = "fig5"; name = Fig5_example.name; run = Fig5_example.run };
    { id = "fig9"; name = Fig9_distance.name; run = Fig9_distance.run };
    { id = "fig14"; name = Fig14_resiliency.name; run = Fig14_resiliency.run };
    { id = "fig15"; name = Fig15_inputs.name; run = Fig15_inputs.run };
    { id = "tblopt"; name = Tbl_optimal.name; run = Tbl_optimal.run };
    { id = "explat"; name = Exp_latency.name; run = Exp_latency.run };
    { id = "explb"; name = Exp_lowerbound.name; run = Exp_lowerbound.run };
    { id = "expclu"; name = Exp_clustering.name; run = Exp_clustering.run };
    { id = "expnl"; name = Exp_nonlinear.name; run = Exp_nonlinear.run };
    { id = "expdyn"; name = Exp_dynamic.name; run = Exp_dynamic.run };
    { id = "expcal"; name = Exp_calibration.name; run = Exp_calibration.run };
    { id = "expabl"; name = Exp_ablation.name; run = Exp_ablation.run };
    { id = "exphet"; name = Exp_heterogeneous.name; run = Exp_heterogeneous.run };
    { id = "expspe"; name = Exp_validation.name; run = Exp_validation.run };
    { id = "exppar"; name = Exp_partition.name; run = Exp_partition.run };
    { id = "expinc"; name = Exp_incremental.name; run = Exp_incremental.run };
    { id = "expfail"; name = Exp_failure.name; run = Exp_failure.run };
    { id = "expchaos"; name = Exp_chaos.name; run = Exp_chaos.run };
    { id = "expreplan"; name = Exp_replan.name; run = Exp_replan.run };
    { id = "expskew"; name = Exp_skew.name; run = Exp_skew.run };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all
