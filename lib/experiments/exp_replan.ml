module Vec = Linalg.Vec
module Problem = Rod.Problem
module Trace = Workload.Trace
module Controller = Dynamic.Controller
module Margin = Dynamic.Margin

let name = "EXPREPLAN online replanning under rate drift"

(* The drift profile: stream 0 ramps up while stream 1 fades away —
   the "closing of a stock market" regime change of §1, slow enough
   that a budgeted replan pays for itself.  Factors are relative to the
   per-stream mean rate. *)
let drift_factor ~n_steps k t =
  let s = float_of_int t /. float_of_int (max 1 (n_steps - 1)) in
  if k = 0 then 1. +. 1.9 *. s else 1. -. 0.85 *. s

let run ?(quick = false) fmt =
  Report.section fmt name;
  Report.note fmt
    "A slow regime drift strands the static placement: stream 0 nearly\n\
     triples while stream 1 fades, pushing some node past capacity.  The\n\
     margin controller watches the engine's per-tick rate gauges, replans\n\
     under a move budget when the modeled margin erodes below threshold,\n\
     and migrates live through the pause-drain-resume protocol.  The\n\
     final-margin column is the modeled feasible-set margin of each\n\
     system's closing placement at the drifted rate point.";
  let d = 2 and n_nodes = 4 in
  let horizon = if quick then 48. else 120. in
  let rng = Random.State.make [| 7207 |] in
  let graph =
    Query.Randgraph.generate_trees ~rng ~n_inputs:d ~ops_per_tree:12
  in
  let problem =
    Problem.of_graph graph ~caps:(Problem.homogeneous_caps ~n:n_nodes ~cap:1.)
  in
  let l = Problem.total_coefficients problem in
  let c_total = Problem.total_capacity problem in
  let mean_rate k = 0.6 *. c_total /. (float_of_int d *. l.(k)) in
  let n_steps = int_of_float horizon in
  let traces =
    Array.init d (fun k ->
        Trace.create ~dt:1.
          (Array.init n_steps (fun t ->
               mean_rate k *. drift_factor ~n_steps k t)))
  in
  let final_rates =
    Vec.init d (fun k -> mean_rate k *. drift_factor ~n_steps k (n_steps - 1))
  in
  let static_assignment = Rod.Rod_algorithm.place problem in
  let run_engine ?dynamic () =
    let arrivals =
      Array.map
        (fun trace -> Workload.Generators.deterministic_arrivals ~trace)
        traces
    in
    Dsim.Engine.run ~graph ~assignment:static_assignment
      ~caps:problem.Problem.caps ~arrivals
      ~config:{ Dsim.Engine.default_config with warmup = 2. }
      ?dynamic ~until:horizon ()
  in
  let static_metrics = run_engine () in
  let config =
    {
      Controller.default_config with
      Controller.samples = (if quick then 512 else 2048);
      cooldown = 4.;
    }
  in
  let ctl =
    Controller.create ~config
      ~cost_of:(Dynamic.Statesize.graph_cost graph)
      problem ~assignment:static_assignment
  in
  let ctl_metrics = run_engine ~dynamic:(Controller.engine_config ctl) () in
  let replans, rejects, total_moves, max_moves =
    List.fold_left
      (fun (a, r, m, mx) (dec : Controller.decision) ->
        match dec.Controller.action with
        | Controller.Replanned o ->
          let n = List.length o.Dynamic.Replanner.moves in
          (a + 1, r, m + n, max mx n)
        | Controller.Rejected _ -> (a, r + 1, m, mx)
        | Controller.Hold -> (a, r, m, mx))
      (0, 0, 0, 0) (Controller.decisions ctl)
  in
  let margin_row label assignment metrics =
    let m = Margin.of_assignment problem ~assignment ~rates:final_rates in
    [
      label;
      Report.fcell m.Margin.margin;
      Report.fcell m.Margin.utilization;
      string_of_int metrics.Dsim.Sim_metrics.migrations;
      Printf.sprintf "%.1f" (1e3 *. Dsim.Sim_metrics.mean_latency metrics);
      Printf.sprintf "%.1f" (1e3 *. Dsim.Sim_metrics.p95_latency metrics);
      string_of_int metrics.Dsim.Sim_metrics.backlog;
    ]
  in
  Report.table fmt
    ~headers:
      [ "system"; "final margin"; "final max util"; "migrations";
        "mean lat (ms)"; "p95 lat (ms)"; "backlog" ]
    ~rows:
      [
        margin_row "static ROD" static_assignment static_metrics;
        margin_row "ROD + controller" (Controller.assignment ctl) ctl_metrics;
      ];
  Report.note fmt
    (Printf.sprintf
       "controller: %d replans accepted, %d rejected, %d total moves\n\
        (largest replan %d moves, budget %d)."
       replans rejects total_moves max_moves config.Controller.budget)
