(** Dense row-major float matrices.

    A matrix is an array of row vectors, all of equal length.  Used for
    operator/node load-coefficient matrices ([m x d] and [n x d]) and
    0/1 allocation matrices ([n x m]). *)

type t = float array array

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows x cols] matrix filled with [x]. *)

val zeros : int -> int -> t

val identity : int -> t

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val of_rows : Vec.t list -> t
(** Build from a non-empty list of equal-length rows (rows are copied). *)

val of_arrays : float array array -> t
(** Validates rectangularity and copies. *)

val rows : t -> int

val cols : t -> int

val row : t -> int -> Vec.t
(** [row m i] is the [i]-th row, shared (not copied). *)

val row_copy : t -> int -> Vec.t

val col : t -> int -> Vec.t
(** [col m k] is a fresh vector holding column [k]. *)

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val transpose : t -> t

val matmul : t -> t -> t
(** [matmul a b] with [cols a = rows b]. *)

val matvec : t -> Vec.t -> Vec.t
(** [matvec a x] is [a x]. *)

val dot_rows : t -> int -> t -> int -> float
(** [dot_rows a i b j] is the inner product of row [i] of [a] with row
    [j] of [b], computed without extracting either row — the fused
    kernel the per-sample load tables are built from. *)

val col_sums : t -> Vec.t
(** Vector of per-column sums — for load matrices this is [l_k], the
    total load coefficient of each input stream. *)

val row_sums : t -> Vec.t

val map : (float -> float) -> t -> t

val scale : float -> t -> t

val add : t -> t -> t

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
