type t = float array

let create n x = Array.make n x

let zeros n = create n 0.

let ones n = create n 1.

let init = Array.init

let init_into dst f =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- f i
  done

let basis n k =
  if k < 0 || k >= n then invalid_arg "Vec.basis: axis out of range";
  let v = zeros n in
  v.(k) <- 1.;
  v

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let check_dims name x y =
  if dim x <> dim y then
    invalid_arg (Printf.sprintf "Vec.%s: dimensions %d <> %d" name (dim x) (dim y))

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to dim x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm1 x = Array.fold_left (fun acc v -> acc +. abs_float v) 0. x

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (abs_float v)) 0. x

let map2 f x y =
  check_dims "map2" x y;
  Array.init (dim x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y

let sub x y = map2 ( -. ) x y

let scale a x = Array.map (fun v -> a *. v) x

let mul x y = map2 ( *. ) x y

let div x y = map2 ( /. ) x y

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to dim x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let add_inplace x y = axpy 1. x y

let sum x = Array.fold_left ( +. ) 0. x

let mean x =
  if dim x = 0 then invalid_arg "Vec.mean: empty vector";
  sum x /. float_of_int (dim x)

let min_elt x =
  if dim x = 0 then invalid_arg "Vec.min_elt: empty vector";
  Array.fold_left Float.min x.(0) x

let max_elt x =
  if dim x = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max x.(0) x

let arg_best better x =
  if dim x = 0 then invalid_arg "Vec.argmin/argmax: empty vector";
  let best = ref 0 in
  for i = 1 to dim x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let argmin x = arg_best ( < ) x

let argmax x = arg_best ( > ) x

let for_all = Array.for_all

let exists = Array.exists

let map = Array.map

let equal ?(eps = 1e-9) x y =
  dim x = dim y && Array.for_all2 (fun a b -> abs_float (a -. b) <= eps) x y

let pp fmt x =
  Format.fprintf fmt "[@[<hov>";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%.4g" v)
    x;
  Format.fprintf fmt "@]]"

let to_string x = Format.asprintf "%a" pp x
