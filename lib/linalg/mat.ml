type t = float array array

let create rows cols x = Array.init rows (fun _ -> Array.make cols x)

let zeros rows cols = create rows cols 0.

let identity n = Array.init n (fun i -> Vec.basis n i)

let init rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let of_rows = function
  | [] -> invalid_arg "Mat.of_rows: empty row list"
  | first :: _ as rows ->
    let cols = Vec.dim first in
    let check r =
      if Vec.dim r <> cols then invalid_arg "Mat.of_rows: ragged rows";
      Array.copy r
    in
    Array.of_list (List.map check rows)

let of_arrays a = of_rows (Array.to_list a)

let rows m = Array.length m

let cols m = if rows m = 0 then 0 else Array.length m.(0)

let row m i = m.(i)

let row_copy m i = Array.copy m.(i)

let col m k = Array.map (fun r -> r.(k)) m

let copy m = Array.map Array.copy m

let get m i j = m.(i).(j)

let set m i j x = m.(i).(j) <- x

let transpose m =
  let r = rows m and c = cols m in
  init c r (fun i j -> m.(j).(i))

let matmul a b =
  if cols a <> rows b then
    invalid_arg
      (Printf.sprintf "Mat.matmul: inner dimensions %d <> %d" (cols a) (rows b));
  let n = rows a and p = cols b and k = cols a in
  init n p (fun i j ->
      let acc = ref 0. in
      for t = 0 to k - 1 do
        acc := !acc +. (a.(i).(t) *. b.(t).(j))
      done;
      !acc)

let dot_rows a i b j =
  let ra = a.(i) and rb = b.(j) in
  if Array.length ra <> Array.length rb then
    invalid_arg "Mat.dot_rows: row dimension mismatch";
  let acc = ref 0. in
  for k = 0 to Array.length ra - 1 do
    acc := !acc +. (ra.(k) *. rb.(k))
  done;
  !acc

let matvec a x =
  if cols a <> Vec.dim x then
    invalid_arg
      (Printf.sprintf "Mat.matvec: dimensions %d <> %d" (cols a) (Vec.dim x));
  Array.map (fun r -> Vec.dot r x) a

let col_sums m =
  let acc = Vec.zeros (cols m) in
  Array.iter (fun r -> Vec.add_inplace r acc) m;
  acc

let row_sums m = Array.map Vec.sum m

let map f m = Array.map (Array.map f) m

let scale a m = map (fun x -> a *. x) m

let add a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Mat.add: dimension mismatch";
  init (rows a) (cols a) (fun i j -> a.(i).(j) +. b.(i).(j))

let equal ?(eps = 1e-9) a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun ra rb -> Vec.equal ~eps ra rb) a b

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i r ->
      if i > 0 then Format.fprintf fmt "@,";
      Vec.pp fmt r)
    m;
  Format.fprintf fmt "@]"

let to_string m = Format.asprintf "%a" pp m
