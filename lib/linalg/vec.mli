(** Dense float vectors.

    Thin wrappers around [float array] with the handful of operations the
    placement algorithms need: dot products, norms, element-wise
    arithmetic.  All binary operations require equal dimensions and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is the [n]-vector with every component equal to [x]. *)

val zeros : int -> t
(** [zeros n] is the [n]-vector of zeros. *)

val ones : int -> t
(** [ones n] is the [n]-vector of ones. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val init_into : t -> (int -> float) -> unit
(** [init_into dst f] writes [f i] into [dst.(i)] for every index — the
    scratch-reusing form of {!init} for allocation-free hot loops. *)

val basis : int -> int -> t
(** [basis n k] is the [n]-dimensional unit vector along axis [k]. *)

val dim : t -> int
(** Number of components. *)

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val dot : t -> t -> float
(** Inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm1 : t -> float
(** Sum of absolute values. *)

val norm_inf : t -> float
(** Maximum absolute component. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Element-wise (Hadamard) product. *)

val div : t -> t -> t
(** Element-wise quotient; the caller must ensure the divisor has no
    zero component. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val add_inplace : t -> t -> unit
(** [add_inplace x y] performs [y <- x + y] in place. *)

val sum : t -> float

val mean : t -> float

val min_elt : t -> float

val max_elt : t -> float

val argmin : t -> int
(** Index of a minimal component (lowest index on ties). *)

val argmax : t -> int
(** Index of a maximal component (lowest index on ties). *)

val for_all : (float -> bool) -> t -> bool

val exists : (float -> bool) -> t -> bool

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison within absolute tolerance [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]] with 4 significant digits. *)

val to_string : t -> string
